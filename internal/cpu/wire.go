// On-disk codec for CoreState. ROB slots serialize by position —
// restore reattaches completion closures per slot (they capture
// &rob[i]), so slot identity is the durable name of an in-flight load.
package cpu

import "encoding/json"

type robWire struct {
	DoneAt  int64
	Pending bool
	IsLoad  bool
	IsStore bool
}

type coreWire struct {
	Rob     []robWire
	Head, N int
	Stores  int
	Loads   int

	Stalled  Instr
	HasStall bool

	Look   []Instr
	LookH  int
	LookN  int
	Pend   int
	PendAt int64

	Blocked    bool
	ProbeStall bool
	Wake       int64
	Dirty      bool

	Retired int64
	Cycles  int64
}

// MarshalJSON encodes the snapshot for the durable checkpoint file.
func (st *CoreState) MarshalJSON() ([]byte, error) {
	w := coreWire{
		Head: st.head, N: st.n, Stores: st.stores, Loads: st.loads,
		Stalled: st.stalled, HasStall: st.hasStall,
		Look: st.look, LookH: st.lookH, LookN: st.lookN,
		Pend: st.pend, PendAt: st.pendAt,
		Blocked: st.blocked, ProbeStall: st.probeStall, Wake: st.wake, Dirty: st.dirty,
		Retired: st.retired, Cycles: st.cycles,
	}
	w.Rob = make([]robWire, len(st.rob))
	for i, e := range st.rob {
		w.Rob[i] = robWire{DoneAt: e.doneAt, Pending: e.pending, IsLoad: e.isLoad, IsStore: e.isStore}
	}
	return json.Marshal(w)
}

// UnmarshalJSON rebuilds the snapshot written by MarshalJSON.
func (st *CoreState) UnmarshalJSON(b []byte) error {
	var w coreWire
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	st.rob = make([]robEntry, len(w.Rob))
	for i, e := range w.Rob {
		st.rob[i] = robEntry{doneAt: e.DoneAt, pending: e.Pending, isLoad: e.IsLoad, isStore: e.IsStore}
	}
	st.head, st.n, st.stores, st.loads = w.Head, w.N, w.Stores, w.Loads
	st.stalled, st.hasStall = w.Stalled, w.HasStall
	st.look, st.lookH, st.lookN = w.Look, w.LookH, w.LookN
	st.pend, st.pendAt = w.Pend, w.PendAt
	st.blocked, st.probeStall, st.wake, st.dirty = w.Blocked, w.ProbeStall, w.Wake, w.Dirty
	st.retired, st.cycles = w.Retired, w.Cycles
	return nil
}
