// Package dram implements a cycle-level DDR4 memory device model: banks,
// bank groups, ranks, and channels with the full command timing set used by
// the Chopim paper (Table II), including bank-group aware tCCD/tRRD/tWTR,
// the tFAW activation window, and read/write bus-turnaround penalties.
//
// The model distinguishes external (host) column accesses, which occupy the
// channel data bus, from internal (NDA) column accesses, which use the
// rank's internal data path but share all bank- and rank-level timing state
// with host accesses. That shared state is exactly the contention that
// Chopim's mechanisms manage.
//
// All times are in DRAM bus-clock cycles (1.2 GHz for DDR4-2400).
package dram

import "fmt"

// Command is a DRAM command type.
type Command int

// DRAM commands. Auto-precharge variants are not modeled because the
// simulated controllers use an open-page policy with explicit precharge.
const (
	CmdACT Command = iota
	CmdPRE
	CmdRD
	CmdWR
	CmdREF
)

// String returns the conventional mnemonic for the command.
func (c Command) String() string {
	switch c {
	case CmdACT:
		return "ACT"
	case CmdPRE:
		return "PRE"
	case CmdRD:
		return "RD"
	case CmdWR:
		return "WR"
	case CmdREF:
		return "REF"
	}
	return fmt.Sprintf("Command(%d)", int(c))
}

// Addr identifies one column-granularity location in the memory system.
// Col is in units of 64-byte blocks (one burst across the rank's chips).
type Addr struct {
	Channel   int
	Rank      int
	BankGroup int
	Bank      int // bank index within the bank group
	Row       int
	Col       int
}

// GlobalBank returns the rank-local flat bank index.
func (a Addr) GlobalBank(g Geometry) int { return a.BankGroup*g.BanksPerGroup + a.Bank }

// Geometry describes the organization of the memory system.
type Geometry struct {
	Channels      int
	Ranks         int // ranks per channel
	BankGroups    int // bank groups per rank
	BanksPerGroup int
	Rows          int // rows per bank
	Cols          int // 64-byte blocks per row
}

// DefaultGeometry returns the paper's baseline organization: 2 channels x
// 2 ranks of 8Gb x8 DDR4 chips (16 banks in 4 groups, 64K rows, 8KB rank
// rows = 128 blocks).
func DefaultGeometry() Geometry {
	return Geometry{Channels: 2, Ranks: 2, BankGroups: 4, BanksPerGroup: 4, Rows: 65536, Cols: 128}
}

// BanksPerRank returns the number of banks in one rank.
func (g Geometry) BanksPerRank() int { return g.BankGroups * g.BanksPerGroup }

// RowBytes returns the size in bytes of one rank row (DRAM page across all
// chips of the rank).
func (g Geometry) RowBytes() int { return g.Cols * BlockBytes }

// Capacity returns the total byte capacity of the memory system.
func (g Geometry) Capacity() uint64 {
	return uint64(g.Channels) * uint64(g.Ranks) * uint64(g.BanksPerRank()) *
		uint64(g.Rows) * uint64(g.RowBytes())
}

// SystemRowBytes returns the size of one "system row": one DRAM row in
// every bank of the system (the paper's coarse allocation granularity,
// 2 MiB for the baseline).
func (g Geometry) SystemRowBytes() int {
	return g.Channels * g.Ranks * g.BanksPerRank() * g.RowBytes()
}

// Validate reports an error if the geometry is not usable.
func (g Geometry) Validate() error {
	for _, v := range []struct {
		name string
		n    int
	}{
		{"Channels", g.Channels}, {"Ranks", g.Ranks}, {"BankGroups", g.BankGroups},
		{"BanksPerGroup", g.BanksPerGroup}, {"Rows", g.Rows}, {"Cols", g.Cols},
	} {
		if v.n <= 0 || v.n&(v.n-1) != 0 {
			return fmt.Errorf("dram: geometry field %s = %d must be a positive power of two", v.name, v.n)
		}
	}
	return nil
}

// BlockBytes is the data transferred by one column command: an 8-beat burst
// of the 64-bit rank interface (or 8 bytes per chip for internal access).
const BlockBytes = 64

// Timing holds DDR4 timing parameters in bus-clock cycles.
type Timing struct {
	BL   int // data burst length on the bus (4 clock cycles for BL8 DDR)
	CCDS int // column-to-column, different bank group
	CCDL int // column-to-column, same bank group
	RTRS int // rank-to-rank switch (bus)
	CL   int // read latency (CAS)
	RCD  int // ACT to column command
	RP   int // PRE to ACT
	CWL  int // write latency
	RAS  int // ACT to PRE
	RC   int // ACT to ACT, same bank
	RTP  int // read to PRE
	WTRS int // write to read, different bank group
	WTRL int // write to read, same bank group
	WR   int // write recovery (end of write data to PRE)
	RRDS int // ACT to ACT, different bank group
	RRDL int // ACT to ACT, same bank group
	FAW  int // four-activation window
	REFI int // refresh interval (0 disables refresh)
	RFC  int // refresh cycle time
}

// DDR42400 returns the paper's Table II DDR4 timing parameters.
// Refresh is disabled by default to match the paper's configuration; set
// REFI/RFC explicitly to enable it.
func DDR42400() Timing {
	return Timing{
		BL: 4, CCDS: 4, CCDL: 6, RTRS: 2, CL: 16, RCD: 16,
		RP: 16, CWL: 12, RAS: 39, RC: 55, RTP: 9, WTRS: 3,
		WTRL: 9, WR: 18, RRDS: 4, RRDL: 6, FAW: 26,
	}
}

// Validate reports an error for inconsistent timing parameters.
func (t Timing) Validate() error {
	if t.BL <= 0 || t.CL <= 0 || t.CWL <= 0 || t.RCD <= 0 || t.RP <= 0 {
		return fmt.Errorf("dram: timing has non-positive core parameters: %+v", t)
	}
	if t.RC < t.RAS {
		return fmt.Errorf("dram: tRC (%d) < tRAS (%d)", t.RC, t.RAS)
	}
	if t.CCDL < t.CCDS || t.WTRL < t.WTRS || t.RRDL < t.RRDS {
		return fmt.Errorf("dram: same-bank-group timings must dominate: %+v", t)
	}
	if t.ReadToWrite() < t.CL-t.CWL {
		// The mc calendar queue relies on the channel-bus horizon
		// (chanState.extCol) being monotone nondecreasing under legal
		// command sequences; a read-to-write turnaround shorter than
		// CL-CWL would let a WR's burst end before the preceding RD's,
		// moving dataBusyUntil backwards.
		return fmt.Errorf("dram: ReadToWrite (%d) < CL-CWL (%d): bus horizon not monotone", t.ReadToWrite(), t.CL-t.CWL)
	}
	return nil
}

// ReadToWrite returns the minimum command spacing from a RD to a WR sharing
// a data path (bus turnaround).
func (t Timing) ReadToWrite() int { return t.CL + t.BL + 2 - t.CWL }

// WriteToReadSameBG returns WR->RD command spacing within one bank group.
func (t Timing) WriteToReadSameBG() int { return t.CWL + t.BL + t.WTRL }

// WriteToReadDiffBG returns WR->RD command spacing across bank groups of
// the same rank.
func (t Timing) WriteToReadDiffBG() int { return t.CWL + t.BL + t.WTRS }
