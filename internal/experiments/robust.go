// Per-point fault isolation for the sharded runner: a panicking point —
// any of the simulator's internal impossible-state panics, an armed
// invariant checker, or an injected fault — is recovered into a
// PointError and quarantined instead of killing the process, transient
// I/O failures retry with exponential backoff, and deadline expiries
// are counted separately. Under Options.KeepGoing a sweep completes
// every healthy point and reports the failures together as a
// SweepError; the default remains fail-fast on the lowest-index error.
package experiments

import (
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
	"syscall"
	"time"

	"chopim/internal/faults"
	"chopim/internal/sim"
)

// PointError describes one failed sweep point. Panic carries the
// recovered value (with Stack) when the point crashed rather than
// returning an error.
type PointError struct {
	Index int
	Err   error  // underlying error; nil when the point panicked
	Panic any    // recovered panic value; nil for plain errors
	Stack []byte // goroutine stack at recovery (panics only)
}

func (e *PointError) Error() string {
	if e.Panic != nil {
		return fmt.Sprintf("point %d: quarantined after panic: %v\n%s", e.Index, e.Panic, e.Stack)
	}
	return fmt.Sprintf("point %d: %v", e.Index, e.Err)
}

func (e *PointError) Unwrap() error { return e.Err }

// SweepError aggregates every failed point of a KeepGoing sweep. The
// healthy points' results are complete and valid alongside it.
type SweepError struct {
	Total    int
	Failures []*PointError // ascending by index
}

func (e *SweepError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sweep: %d of %d points failed (failures quarantined; healthy points completed)",
		len(e.Failures), e.Total)
	for _, f := range e.Failures {
		b.WriteString("\n  ")
		b.WriteString(f.Error())
	}
	return b.String()
}

func (e *SweepError) Unwrap() []error {
	out := make([]error, len(e.Failures))
	for i, f := range e.Failures {
		out[i] = f
	}
	return out
}

// asPointError wraps a plain point failure with its index, passing an
// existing PointError through.
func asPointError(i int, err error) *PointError {
	var pe *PointError
	if errors.As(err, &pe) {
		return pe
	}
	return &PointError{Index: i, Err: err}
}

// guardedJob runs one point attempt with panic isolation: a panic
// anywhere below — simulator internals, an armed invariant checker, an
// injected fault — comes back as a PointError carrying the stack. The
// fault-injection sites for the runner live here too, inside the
// recovery scope, so injected panics exercise the same path real ones
// take.
func guardedJob[T any](i int, job func(int) (T, error)) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PointError{Index: i, Panic: r, Stack: debug.Stack()}
		}
	}()
	if faults.Active() {
		faults.Adjust(faults.RunnerPoint, int64(i)) // an armed panic hook fires here
		if ferr := faults.FireErr(faults.RunnerPointErr, int64(i)); ferr != nil {
			return v, ferr
		}
	}
	return job(i)
}

// isTransient classifies an error as worth retrying: anything
// advertising Temporary() (injected faults do), or the interrupted/
// try-again syscall failures a journaling sweep can hit under I/O
// pressure. Simulation errors are deterministic and never retried.
func isTransient(err error) bool {
	var t interface{ Temporary() bool }
	if errors.As(err, &t) && t.Temporary() {
		return true
	}
	return errors.Is(err, syscall.EINTR) || errors.Is(err, syscall.EAGAIN)
}

// runPoint executes one sweep point with isolation, classification, and
// bounded retry: panics quarantine immediately (retrying corrupt state
// re-crashes), deadline expiries count and fail without retry (the
// point would time out again), and transient errors retry up to
// Options.PointRetries times with exponential backoff.
func runPoint[T any](opt Options, i int, job func(int) (T, error)) (T, error) {
	var zero T
	for attempt := 0; ; attempt++ {
		v, err := timedJob(i, func(i int) (T, error) { return guardedJob(i, job) })
		if err == nil {
			return v, nil
		}
		var pe *PointError
		if errors.As(err, &pe) && pe.Panic != nil {
			statPanics.Add(1)
			statQuarantined.Add(1)
			return zero, err
		}
		var de *sim.DeadlineError
		if errors.As(err, &de) {
			statTimeouts.Add(1)
			return zero, err
		}
		var ce *sim.CanceledError
		if errors.As(err, &ce) {
			// Cooperative cancel is deliberate, not a fault: count it,
			// surface it, never retry (the flag is sticky).
			statCanceled.Add(1)
			return zero, err
		}
		if attempt < opt.PointRetries && isTransient(err) {
			statRetries.Add(1)
			time.Sleep(time.Duration(1<<uint(attempt)) * time.Millisecond)
			continue
		}
		return zero, err
	}
}
