// Package osmem models the OS physical-memory services Chopim relies on
// (Section III-A/C): a buddy allocator over physical frames, coarse
// system-row-aligned allocation, frame coloring that keeps NDA operands
// rank-aligned, and the host-only versus shared address-space split that
// backs bank partitioning.
package osmem

import (
	"fmt"

	"chopim/internal/addrmap"
	"chopim/internal/dram"
)

// Allocator manages a physical address range with a binary-buddy scheme.
// The zero value is not usable; call NewAllocator.
type Allocator struct {
	base      uint64
	size      uint64
	minOrder  uint // log2 of the smallest block (the system-row size)
	free      map[uint][]uint64
	allocated map[uint64]uint // base -> order
}

// NewAllocator manages [base, base+size) with blocks no smaller than
// minBlock bytes. base must be minBlock-aligned and size a multiple of
// minBlock; both must be powers of two times minBlock.
func NewAllocator(base, size uint64, minBlock uint64) (*Allocator, error) {
	if minBlock == 0 || minBlock&(minBlock-1) != 0 {
		return nil, fmt.Errorf("osmem: minBlock %d not a power of two", minBlock)
	}
	if base%minBlock != 0 || size%minBlock != 0 || size == 0 {
		return nil, fmt.Errorf("osmem: range %#x+%#x not aligned to %#x", base, size, minBlock)
	}
	a := &Allocator{
		base: base, size: size, minOrder: ulog2(minBlock),
		free:      make(map[uint][]uint64),
		allocated: make(map[uint64]uint),
	}
	// Seed the free lists with maximal aligned blocks.
	off := base
	remaining := size
	for remaining > 0 {
		o := maxOrderAt(off, remaining)
		a.free[o] = append(a.free[o], off)
		off += 1 << o
		remaining -= 1 << o
	}
	return a, nil
}

func ulog2(v uint64) uint {
	var k uint
	for 1<<(k+1) <= v {
		k++
	}
	return k
}

// maxOrderAt returns the largest power-of-two block order that is both
// aligned at off and no larger than remaining.
func maxOrderAt(off, remaining uint64) uint {
	o := ulog2(remaining)
	if off != 0 {
		// Alignment constraint: low set bit of off.
		align := ulog2(off & -off)
		if align < o {
			o = align
		}
	}
	return o
}

// Alloc returns a naturally-aligned block of at least n bytes.
func (a *Allocator) Alloc(n uint64) (uint64, error) {
	if n == 0 {
		return 0, fmt.Errorf("osmem: zero-size allocation")
	}
	order := a.minOrder
	for uint64(1)<<order < n {
		order++
	}
	o := order
	for ; ; o++ {
		if o > 63 {
			return 0, fmt.Errorf("osmem: out of memory for %d bytes", n)
		}
		if len(a.free[o]) > 0 {
			break
		}
	}
	// Split down to the requested order.
	blk := a.free[o][len(a.free[o])-1]
	a.free[o] = a.free[o][:len(a.free[o])-1]
	for o > order {
		o--
		a.free[o] = append(a.free[o], blk+(1<<o))
	}
	a.allocated[blk] = order
	return blk, nil
}

// Free returns a block obtained from Alloc, merging buddies.
func (a *Allocator) Free(base uint64) error {
	order, ok := a.allocated[base]
	if !ok {
		return fmt.Errorf("osmem: free of unallocated address %#x", base)
	}
	delete(a.allocated, base)
	for {
		buddy := base ^ (1 << order)
		merged := false
		fl := a.free[order]
		for i, b := range fl {
			if b == buddy {
				a.free[order] = append(fl[:i], fl[i+1:]...)
				if buddy < base {
					base = buddy
				}
				order++
				merged = true
				break
			}
		}
		if !merged {
			break
		}
	}
	a.free[order] = append(a.free[order], base)
	return nil
}

// FreeBytes reports the total unallocated capacity.
func (a *Allocator) FreeBytes() uint64 {
	var total uint64
	for o, blocks := range a.free {
		total += uint64(len(blocks)) << o
	}
	return total
}

// OS bundles the services the Chopim runtime needs: a host-only
// allocator, a shared-region allocator (when bank partitioning is on),
// and color-constrained allocation for NDA operand alignment.
type OS struct {
	mapper addrmap.Mapper
	geom   dram.Geometry

	host   *Allocator
	shared *Allocator // nil when not partitioned: shared == host space

	sysRow    uint64
	colorMask uint64
}

// NewOS builds the OS layer. When mapper is a *addrmap.PartitionedMap,
// the physical space is split into host-only and shared regions at the
// partition boundary; otherwise a single region serves both and the top
// quarter of memory is set aside as the "shared color pool" so host and
// NDA traffic meet in the same banks (the paper's Shared configuration).
func NewOS(mapper addrmap.Mapper) (*OS, error) {
	g := mapper.Geometry()
	o := &OS{mapper: mapper, geom: g, sysRow: uint64(g.SystemRowBytes())}
	for _, b := range mapper.ColorBits() {
		o.colorMask |= 1 << b
	}
	cap := g.Capacity()
	var err error
	if p, ok := mapper.(*addrmap.PartitionedMap); ok {
		if o.host, err = NewAllocator(0, p.HostCapacity(), o.sysRow); err != nil {
			return nil, err
		}
		if o.shared, err = NewAllocator(p.SharedBase(), cap-p.SharedBase(), o.sysRow); err != nil {
			return nil, err
		}
		return o, nil
	}
	// Unpartitioned: NDA-shared data comes from the top quarter of the
	// same space; host banks and shared banks fully overlap.
	split := cap / 4 * 3
	if o.host, err = NewAllocator(0, split, o.sysRow); err != nil {
		return nil, err
	}
	if o.shared, err = NewAllocator(split, cap-split, o.sysRow); err != nil {
		return nil, err
	}
	return o, nil
}

// SystemRowBytes returns the coarse allocation granularity.
func (o *OS) SystemRowBytes() uint64 { return o.sysRow }

// AllocHost grabs host-only memory (benchmark footprints).
func (o *OS) AllocHost(n uint64) (uint64, error) { return o.host.Alloc(n) }

// Color identifies a rank-alignment equivalence class of system rows.
type Color uint64

// ColorOf returns the color of a system-row-aligned physical address.
func (o *OS) ColorOf(pa uint64) Color { return Color(pa & o.colorMask) }

// ColorPeriod returns the address stride at which colors repeat: two
// shared allocations whose bases are congruent modulo the color period
// (equal colors) interleave identically at every common offset.
func (o *OS) ColorPeriod() uint64 {
	var max uint
	for _, b := range o.mapper.ColorBits() {
		if b > max {
			max = b
		}
	}
	return 1 << (max + 1)
}

// AllocShared allocates n contiguous bytes from the shared region whose
// base has the given color (page coloring, Section III-A). All
// allocations of equal color interleave identically across
// channels/ranks/banks at every common offset, keeping NDA operands
// aligned without copies. Note that a buddy block's natural alignment
// constrains which colors its base can take: callers should obtain a
// feasible color from PickColor(n) for the largest operand first and
// reuse it.
func (o *OS) AllocShared(n uint64, color Color) (uint64, error) {
	if n < o.sysRow {
		n = o.sysRow
	}
	// Grab candidate blocks until one's base matches the color; rejects
	// are held aside and returned. A real OS indexes free lists by
	// color; this keeps the buddy core simple.
	var reject []uint64
	defer func() {
		for _, r := range reject {
			_ = o.shared.Free(r)
		}
	}()
	for attempts := 0; attempts < 1<<16; attempts++ {
		blk, err := o.shared.Alloc(n)
		if err != nil {
			return 0, fmt.Errorf("osmem: shared region exhausted for color %#x: %w", uint64(color), err)
		}
		if o.ColorOf(blk) == color {
			return blk, nil
		}
		reject = append(reject, blk)
	}
	return 0, fmt.Errorf("osmem: no block with color %#x for %d bytes", uint64(color), n)
}

// AllocSharedAny allocates n contiguous shared bytes at whatever color
// the allocator yields (the naive, uncoordinated layout of Fig 3).
func (o *OS) AllocSharedAny(n uint64) (uint64, error) {
	if n < o.sysRow {
		n = o.sysRow
	}
	return o.shared.Alloc(n)
}

// PickColor returns a feasible color for an allocation of n bytes by
// probing the allocator, so subsequent AllocShared calls of size <= n
// can succeed with it.
func (o *OS) PickColor(n uint64) (Color, error) {
	if n < o.sysRow {
		n = o.sysRow
	}
	blk, err := o.shared.Alloc(n)
	if err != nil {
		return 0, err
	}
	c := o.ColorOf(blk)
	_ = o.shared.Free(blk)
	return c, nil
}

// FreeShared releases a shared allocation.
func (o *OS) FreeShared(base uint64) error { return o.shared.Free(base) }

// FreeHost releases a host allocation.
func (o *OS) FreeHost(base uint64) error { return o.host.Free(base) }

// Mapper exposes the address mapping in use.
func (o *OS) Mapper() addrmap.Mapper { return o.mapper }
