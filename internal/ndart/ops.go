package ndart

import (
	"fmt"

	"chopim/internal/dram"
	"chopim/internal/nda"
)

// Spec describes one NDA API call before splitting into per-rank
// primitive operations.
type Spec struct {
	Kind  nda.OpKind
	Reads []*Vector
	Write *Vector // nil for reductions
}

// validate checks operand counts, lengths, and bounds.
func (s Spec) validate() error {
	if len(s.Reads) != s.Kind.ReadOperands() {
		return fmt.Errorf("ndart: %v expects %d read operands, got %d", s.Kind, s.Kind.ReadOperands(), len(s.Reads))
	}
	if s.Kind.WritesResult() != (s.Write != nil) {
		return fmt.Errorf("ndart: %v result operand mismatch", s.Kind)
	}
	// GEMV's single streamed operand is the matrix; the small x vector
	// is scratchpad-resident and not length-matched.
	if s.Kind == nda.OpGEMV {
		return nil
	}
	n := s.Reads[0].Len()
	for _, v := range s.Reads[1:] {
		if v.Len() != n {
			return fmt.Errorf("ndart: operand length mismatch %d vs %d", v.Len(), n)
		}
	}
	if s.Write != nil && s.Write.Len() != n && s.Write.placement != Private {
		return fmt.Errorf("ndart: result length %d != operand length %d", s.Write.Len(), n)
	}
	return nil
}

// Blocking and asynchronous single-op API (Table I). Each returns a
// Handle; the simulator's Await drives it to completion. Scalars (alpha,
// beta...) do not affect traffic and are omitted.

// Axpy computes y += a*x.
func (rt *Runtime) Axpy(y, x *Vector) (*Handle, error) {
	return rt.Launch(Spec{Kind: nda.OpAXPY, Reads: []*Vector{x, y}, Write: y})
}

// Axpby computes z = a*x + b*y.
func (rt *Runtime) Axpby(z, x, y *Vector) (*Handle, error) {
	return rt.Launch(Spec{Kind: nda.OpAXPBY, Reads: []*Vector{x, y}, Write: z})
}

// Axpbypcz computes w = a*x + b*y + c*z.
func (rt *Runtime) Axpbypcz(w, x, y, z *Vector) (*Handle, error) {
	return rt.Launch(Spec{Kind: nda.OpAXPBYPCZ, Reads: []*Vector{x, y, z}, Write: w})
}

// Copy computes y = x.
func (rt *Runtime) Copy(y, x *Vector) (*Handle, error) {
	return rt.Launch(Spec{Kind: nda.OpCOPY, Reads: []*Vector{x}, Write: y})
}

// Dot computes x . y into per-PE scratchpads (host reduces).
func (rt *Runtime) Dot(x, y *Vector) (*Handle, error) {
	return rt.Launch(Spec{Kind: nda.OpDOT, Reads: []*Vector{x, y}})
}

// Nrm2 computes sqrt(x . x) into per-PE scratchpads.
func (rt *Runtime) Nrm2(x *Vector) (*Handle, error) {
	return rt.Launch(Spec{Kind: nda.OpNRM2, Reads: []*Vector{x}})
}

// Scal computes x = a*x.
func (rt *Runtime) Scal(x *Vector) (*Handle, error) {
	return rt.Launch(Spec{Kind: nda.OpSCAL, Reads: []*Vector{x}, Write: x})
}

// Xmy computes z = x (elementwise*) y.
func (rt *Runtime) Xmy(z, x, y *Vector) (*Handle, error) {
	return rt.Launch(Spec{Kind: nda.OpXMY, Reads: []*Vector{x, y}, Write: z})
}

// Gemv computes y = A*x, streaming A from memory with x resident in the
// PE scratchpads; y writeback is negligible and not modeled.
func (rt *Runtime) Gemv(y *Vector, a *Matrix, x *Vector) (*Handle, error) {
	return rt.Launch(Spec{Kind: nda.OpGEMV, Reads: []*Vector{&a.Vector}})
}

// Spec constructors for use with MacroFor.

// AxpySpec builds the y += a*x spec.
func AxpySpec(y, x *Vector) Spec {
	return Spec{Kind: nda.OpAXPY, Reads: []*Vector{x, y}, Write: y}
}

// CopySpec builds the y = x spec.
func CopySpec(y, x *Vector) Spec {
	return Spec{Kind: nda.OpCOPY, Reads: []*Vector{x}, Write: y}
}

// DotSpec builds the x . y spec.
func DotSpec(x, y *Vector) Spec {
	return Spec{Kind: nda.OpDOT, Reads: []*Vector{x, y}}
}

// Nrm2Spec builds the ||x|| spec.
func Nrm2Spec(x *Vector) Spec {
	return Spec{Kind: nda.OpNRM2, Reads: []*Vector{x}}
}

// GemvSpec builds the y = A*x spec.
func GemvSpec(a *Matrix) Spec {
	return Spec{Kind: nda.OpGEMV, Reads: []*Vector{&a.Vector}}
}

// AxpbySpec builds the z = a*x + b*y spec.
func AxpbySpec(z, x, y *Vector) Spec {
	return Spec{Kind: nda.OpAXPBY, Reads: []*Vector{x, y}, Write: z}
}

// AxpbypczSpec builds the w = a*x + b*y + c*z spec.
func AxpbypczSpec(w, x, y, z *Vector) Spec {
	return Spec{Kind: nda.OpAXPBYPCZ, Reads: []*Vector{x, y, z}, Write: w}
}

// ScalSpec builds the x = a*x spec.
func ScalSpec(x *Vector) Spec {
	return Spec{Kind: nda.OpSCAL, Reads: []*Vector{x}, Write: x}
}

// XmySpec builds the z = x .* y spec.
func XmySpec(z, x, y *Vector) Spec {
	return Spec{Kind: nda.OpXMY, Reads: []*Vector{x, y}, Write: z}
}

// Launch splits one API call into per-rank primitive NDA instructions of
// at most MaxBlocksPerInstr blocks per operand, modeling one
// control-register launch packet per instruction (Section V). Operands
// whose colors mismatch are first copied into aligned scratch space by
// the host (the data-copy cost Chopim's layout avoids).
func (rt *Runtime) Launch(spec Spec) (*Handle, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	h := &Handle{}
	spec, copies := rt.alignOperands(spec)
	if copies != nil {
		// Defer the launch until host-mediated copies complete.
		h.pending++ // hold the handle open
		copies.onDone = func() {
			rt.launchAligned(spec, h)
			h.complete(rt.now())
		}
		return h, nil
	}
	rt.launchAligned(spec, h)
	return h, nil
}

// MacroFor is the asynchronous macro operation of Section V
// (parallel_for): count iterations built by build are launched with a
// single control packet per rank, overlapping iterations and hiding
// per-launch load imbalance.
func (rt *Runtime) MacroFor(count int, build func(i int) Spec) (*Handle, error) {
	h := &Handle{}
	g := rt.geom
	work := make([][][]*opBP, g.Channels)
	for ch := range work {
		work[ch] = make([][]*opBP, g.Ranks)
	}
	var ctrl dram.Addr
	ctrlOK := false
	for i := 0; i < count; i++ {
		spec := build(i)
		if err := spec.validate(); err != nil {
			return nil, err
		}
		if c, ok := rt.alignedOrErr(spec); !ok {
			return nil, c
		}
		for ch := 0; ch < g.Channels; ch++ {
			for r := 0; r < g.Ranks; r++ {
				work[ch][r] = append(work[ch][r], rt.rankOpBPs(spec, ch, r, h)...)
			}
		}
		if !ctrlOK {
			if a, ok := spec.Reads[0].controlAddr(0, 0); ok {
				ctrl, ctrlOK = a, true
			}
		}
	}
	for ch := 0; ch < g.Channels; ch++ {
		for r := 0; r < g.Ranks; r++ {
			if len(work[ch][r]) == 0 {
				continue
			}
			rt.sendLaunch(ch, r, ctrl, work[ch][r])
		}
	}
	return h, nil
}

// alignedOrErr returns an error if operands are misaligned (MacroFor does
// not auto-copy).
func (rt *Runtime) alignedOrErr(spec Spec) (error, bool) {
	c0 := spec.Reads[0].color
	for _, v := range spec.Reads[1:] {
		if v.color != c0 {
			return fmt.Errorf("ndart: macro op operands misaligned (colors %#x vs %#x)", c0, v.color), false
		}
	}
	if spec.Write != nil && spec.Write.color != c0 {
		return fmt.Errorf("ndart: macro op result misaligned"), false
	}
	return nil, true
}

// alignOperands checks operand colors; mismatched read operands are
// copied into runtime-colored scratch vectors (counted in rt.Copies).
// It returns the possibly-rewritten spec and a pending copy job set.
func (rt *Runtime) alignOperands(spec Spec) (Spec, *copyGroup) {
	c0 := spec.Reads[0].color
	if spec.Write != nil && spec.Write.color != c0 {
		// Result misalignment also forces a copy-out; model the
		// dominant cost: allocate aligned scratch and write there.
		if w, err := rt.NewVector(spec.Write.Len(), spec.Write.placement); err == nil {
			spec.Write = w
		}
	}
	var group *copyGroup
	for i, v := range spec.Reads {
		if v.color == c0 {
			continue
		}
		scratch, err := rt.NewVector(v.Len(), v.placement)
		if err != nil {
			continue // out of aligned space: run misaligned (tests only)
		}
		if group == nil {
			group = &copyGroup{}
		}
		rt.Copies++
		group.pending++
		spec.Reads[i] = scratch
		rt.copier.add(&copyJob{
			src: v, dst: scratch,
			done: func() { group.finish() },
		})
	}
	return spec, group
}

// launchAligned fans an aligned spec out to every rank.
func (rt *Runtime) launchAligned(spec Spec, h *Handle) {
	g := rt.geom
	for ch := 0; ch < g.Channels; ch++ {
		for r := 0; r < g.Ranks; r++ {
			bps := rt.rankOpBPs(spec, ch, r, h)
			ctrl, ok := spec.Reads[0].controlAddr(ch, r)
			for _, bp := range bps {
				if !ok {
					rt.launchBP(bp)
					continue
				}
				rt.sendLaunch(ch, r, ctrl, []*opBP{bp})
			}
		}
	}
}

// opBP is the blueprint of one primitive NDA instruction: everything
// needed to (re)build its op. Ops carry their blueprint as nda.Op.Tag,
// which is what makes in-flight ops checkpointable — a blueprint plus
// the op's progress counters reconstructs the op exactly, because the
// operand iterators are pure functions of the blueprint.
type opBP struct {
	kind    nda.OpKind
	reads   []*Vector
	write   *Vector // nil for reductions
	ch, r   int
	from, n int
	total   int // exact read count across operands (for PeekRead)
	h       *Handle
}

// buildOp constructs a fresh op from its blueprint (fresh iterators,
// completion wiring included). Every op the engine sees is built here,
// whether launched live or replayed from a checkpoint.
func (rt *Runtime) buildOp(bp *opBP) *nda.Op {
	var reads []nda.Iter
	for _, v := range bp.reads {
		reads = append(reads, v.iterFor(bp.ch, bp.r, bp.from, bp.n))
	}
	var writes nda.Iter
	if bp.write != nil {
		writes = bp.write.iterFor(bp.ch, bp.r, bp.from, bp.n)
	}
	h := bp.h
	op := nda.NewOp(bp.kind, reads, writes, func(cycle int64) { h.complete(cycle) })
	op.TotalReads = bp.total
	op.Tag = bp
	if rt.GuardOps {
		op.Guard = rt.buildGuard(bp)
	}
	return op
}

// launchBP hands one blueprint to the engine.
func (rt *Runtime) launchBP(bp *opBP) {
	rt.eng.Launch(bp.ch, bp.r, func() *nda.Op { return rt.buildOp(bp) })
}

// rankOpBPs splits the rank's share into MaxBlocksPerInstr chunks,
// returning one blueprint per NDA instruction. The handle's pending
// count is incremented here, at API-call time.
func (rt *Runtime) rankOpBPs(spec Spec, ch, r int, h *Handle) []*opBP {
	share := len(spec.Reads[0].shareBlocks(ch, r))
	if share == 0 {
		return nil
	}
	chunk := rt.MaxBlocksPerInstr
	if chunk <= 0 {
		chunk = share
	}
	var out []*opBP
	for from := 0; from < share; from += chunk {
		n := chunk
		if from+n > share {
			n = share - from
		}
		h.pending++
		// Exact read count across operands (operand shares can differ
		// in the misaligned fallback), enabling side-effect-free
		// PeekRead during fast-forward.
		total := 0
		for _, v := range spec.Reads {
			c := len(v.shareBlocks(ch, r)) - from
			if c > n {
				c = n
			}
			if c > 0 {
				total += c
			}
		}
		out = append(out, &opBP{
			kind: spec.Kind, reads: append([]*Vector(nil), spec.Reads...),
			write: spec.Write, ch: ch, r: r, from: from, n: n, total: total, h: h,
		})
	}
	return out
}

// buildGuard returns the NDA-side bounds check for one instruction: the
// set of DRAM blocks the launch packet's operand descriptors cover. In
// hardware this is a base/bound comparison per operand; the simulator
// enumerates the chunk's blocks exactly.
func (rt *Runtime) buildGuard(bp *opBP) func(dram.Addr) bool {
	allowed := make(map[uint64]bool, bp.n*(len(bp.reads)+1))
	pack := func(a dram.Addr) uint64 {
		g := rt.geom
		k := uint64(a.BankGroup)
		k = k*uint64(g.BanksPerGroup) + uint64(a.Bank)
		k = k*uint64(g.Rows) + uint64(a.Row)
		k = k*uint64(g.Cols) + uint64(a.Col)
		return k
	}
	add := func(v *Vector) {
		it := v.iterFor(bp.ch, bp.r, bp.from, bp.n)
		for {
			a, ok := it()
			if !ok {
				return
			}
			allowed[pack(a)] = true
		}
	}
	for _, v := range bp.reads {
		add(v)
	}
	if bp.write != nil {
		add(bp.write)
	}
	return func(a dram.Addr) bool { return allowed[pack(a)] }
}

// sendLaunch models the control-register write carrying the given
// instructions to rank (ch, r). The payload is parked in the launch
// registry under a fresh tag; the write's completion launches it. The
// tag (not the closure) is what a checkpoint captures.
func (rt *Runtime) sendLaunch(ch, r int, ctrl dram.Addr, bps []*opBP) {
	rt.Launches++
	if !rt.ModelLaunches {
		for _, bp := range bps {
			rt.launchBP(bp)
		}
		return
	}
	ctrl.Channel = ch
	ctrl.Rank = r
	rt.launchID++
	id := rt.launchID
	rt.pendingLaunches[id] = &launchRec{ch: ch, r: r, bps: bps}
	rt.mcs[ch].EnqueueControlTagged(ctrl, rt.now(), id, rt.LaunchDone(id))
}

// finishLaunch delivers a completed launch packet's instructions.
func (rt *Runtime) finishLaunch(id uint64) {
	rec := rt.pendingLaunches[id]
	if rec == nil {
		panic(fmt.Sprintf("ndart: launch packet %d completed twice or never sent", id))
	}
	delete(rt.pendingLaunches, id)
	for _, bp := range rec.bps {
		rt.launchBP(bp)
	}
}

// LaunchDone returns the completion callback for the control write
// tagged id. Controller-queue restore uses it to reattach restored
// launch packets to the registry.
func (rt *Runtime) LaunchDone(id uint64) func(int64) {
	return func(int64) { rt.finishLaunch(id) }
}

// copyGroup joins several copy jobs before a deferred launch.
type copyGroup struct {
	pending int
	onDone  func()
}

func (g *copyGroup) finish() {
	g.pending--
	if g.pending == 0 && g.onDone != nil {
		g.onDone()
	}
}
