package experiments

import (
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

// TestParallelMatchesSerial proves the sharded runner's determinism
// contract: every figure table is identical whether its points run on
// one worker or eight. Run with -race this also exercises the runner
// for data races between concurrent systems.
func TestParallelMatchesSerial(t *testing.T) {
	serial := QuickOptions()
	serial.Parallel = 1
	parallel := QuickOptions()
	parallel.Parallel = 8

	t.Run("fig2", func(t *testing.T) {
		a, err := Fig2(serial)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Fig2(parallel)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("fig2 tables differ:\n serial:   %+v\n parallel: %+v", a, b)
		}
	})
	t.Run("fig10", func(t *testing.T) {
		a, err := Fig10(serial)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Fig10(parallel)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("fig10 tables differ:\n serial:   %+v\n parallel: %+v", a, b)
		}
	})
	t.Run("fig12", func(t *testing.T) {
		a, err := Fig12(serial)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Fig12(parallel)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("fig12 tables differ:\n serial:   %+v\n parallel: %+v", a, b)
		}
	})
	t.Run("power", func(t *testing.T) {
		a, err := Power(serial)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Power(parallel)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("power tables differ:\n serial:   %+v\n parallel: %+v", a, b)
		}
	})
}

// TestReferenceMatchesFastParallel is the end-to-end equivalence claim:
// a figure produced serially on the reference cycle-by-cycle path is
// byte-identical to the same figure with fast-forward and parallel
// sharding both enabled.
func TestReferenceMatchesFastParallel(t *testing.T) {
	ref := QuickOptions()
	ref.Parallel = 1
	ref.CycleByCycle = true
	fast := QuickOptions()
	fast.Parallel = 8

	a, err := Fig12(ref)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig12(fast)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("fig12 reference vs fast-parallel differ:\n ref:  %+v\n fast: %+v", a, b)
	}
}

// TestShardedOrderingAndErrors pins the runner's contract directly:
// results arrive in enumeration order and the lowest-index error wins
// regardless of worker count.
func TestShardedOrderingAndErrors(t *testing.T) {
	opt := Options{Parallel: 8}
	vals, err := sharded(opt, 64, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if v != i*i {
			t.Fatalf("result %d = %d, want %d", i, v, i*i)
		}
	}

	// The lowest-index failure wins regardless of worker count.
	boom := errors.New("boom")
	_, err = sharded(opt, 64, func(i int) (int, error) {
		if i == 5 {
			return 0, fmt.Errorf("point %d: %w", i, boom)
		}
		return i, nil
	})
	if err == nil || !errors.Is(err, boom) || err.Error() != "point 5: boom" {
		t.Fatalf("err = %v, want point 5 failure", err)
	}
}

// TestShardedAbortsSubmissionsOnFailure checks that a failing point
// stops new submissions instead of simulating every remaining point.
// Jobs carry a small sleep because real points are seconds-coarse —
// the abort check happens at submission time, so instant jobs can all
// be in flight before the failure lands.
func TestShardedAbortsSubmissionsOnFailure(t *testing.T) {
	var ran atomic.Int64
	_, err := sharded(Options{Parallel: 2}, 64, func(i int) (int, error) {
		ran.Add(1)
		time.Sleep(2 * time.Millisecond)
		if i == 0 {
			return 0, errors.New("first point exploded")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if n := ran.Load(); n >= 32 {
		t.Errorf("%d of 64 jobs ran despite the first point failing", n)
	}
}

// TestShardedStats checks the aggregate counters move.
func TestShardedStats(t *testing.T) {
	before := ReadRunnerStats()
	if _, err := sharded(Options{Parallel: 4}, 10, func(i int) (int, error) { return i, nil }); err != nil {
		t.Fatal(err)
	}
	after := ReadRunnerStats()
	if after.Jobs-before.Jobs != 10 {
		t.Errorf("jobs delta = %d, want 10", after.Jobs-before.Jobs)
	}
	if after.MaxShards < 4 {
		t.Errorf("max shards = %d, want >= 4", after.MaxShards)
	}
}
