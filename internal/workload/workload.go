// Package workload provides synthetic host traffic generators standing in
// for the SPEC CPU2006/2017 benchmarks of Table II, plus the paper's nine
// application mixes.
//
// Each benchmark is reduced to the traffic features the experiments
// depend on: memory intensity class (H/M/L MPKI), footprint relative to
// the 8 MiB LLC, streaming versus random access balance, and store
// fraction. See DESIGN.md for the substitution rationale.
package workload

import (
	"fmt"
	"math/rand"

	"chopim/internal/cpu"
)

// Class is the paper's memory-intensity label.
type Class int

// Memory-intensity classes from Table II.
const (
	Low Class = iota
	Medium
	High
)

// String returns the Table II letter.
func (c Class) String() string {
	switch c {
	case Low:
		return "L"
	case Medium:
		return "M"
	case High:
		return "H"
	}
	return "?"
}

// Profile characterizes one benchmark's synthetic traffic.
type Profile struct {
	Name       string
	Class      Class
	MemRatio   float64 // fraction of instructions that touch memory
	WriteFrac  float64 // fraction of memory ops that are stores
	Footprint  uint64  // working-set bytes
	StreamFrac float64 // fraction of memory ops on sequential streams
	Streams    int     // concurrent sequential streams

	// DepFrac, when positive, overrides the default dependency-chain
	// fraction (depFrac): the probability an instruction heads a chain
	// and issues alone. Values near 1 model serialize-heavy, low-ILP
	// code whose cores spend most of their time blocked on memory.
	DepFrac float64
}

// Profiles maps every benchmark named in Table II to its traffic model.
// Footprints are chosen relative to the 8 MiB LLC so that the H/M/L MPKI
// classes emerge from cache filtering.
var Profiles = map[string]Profile{
	// High: footprints far beyond the 8 MiB LLC; random-heavy or
	// wide-stream access defeats caching (MPKI ~30+).
	"mcf_r":     {Name: "mcf_r", Class: High, MemRatio: 0.33, WriteFrac: 0.15, Footprint: 96 << 20, StreamFrac: 0.15, Streams: 2},
	"lbm_r":     {Name: "lbm_r", Class: High, MemRatio: 0.30, WriteFrac: 0.40, Footprint: 128 << 20, StreamFrac: 0.92, Streams: 8},
	"omnetpp_r": {Name: "omnetpp_r", Class: High, MemRatio: 0.30, WriteFrac: 0.25, Footprint: 48 << 20, StreamFrac: 0.25, Streams: 2},
	"gemsFDTD":  {Name: "gemsFDTD", Class: High, MemRatio: 0.30, WriteFrac: 0.30, Footprint: 96 << 20, StreamFrac: 0.85, Streams: 6},
	"soplex":    {Name: "soplex", Class: High, MemRatio: 0.28, WriteFrac: 0.20, Footprint: 48 << 20, StreamFrac: 0.60, Streams: 4},
	// Medium: footprints near the LLC size; partially resident after
	// warm-up (MPKI ~8-15).
	"bwaves_r":     {Name: "bwaves_r", Class: Medium, MemRatio: 0.18, WriteFrac: 0.25, Footprint: 16 << 20, StreamFrac: 0.85, Streams: 6},
	"milc":         {Name: "milc", Class: Medium, MemRatio: 0.18, WriteFrac: 0.30, Footprint: 14 << 20, StreamFrac: 0.75, Streams: 4},
	"leslie3d":     {Name: "leslie3d", Class: Medium, MemRatio: 0.18, WriteFrac: 0.30, Footprint: 12 << 20, StreamFrac: 0.80, Streams: 6},
	"astar":        {Name: "astar", Class: Medium, MemRatio: 0.18, WriteFrac: 0.20, Footprint: 10 << 20, StreamFrac: 0.30, Streams: 2},
	"cactusBSSN_r": {Name: "cactusBSSN_r", Class: Medium, MemRatio: 0.17, WriteFrac: 0.30, Footprint: 12 << 20, StreamFrac: 0.80, Streams: 4},
	// Low: L2-resident working sets (MPKI ~0 after warm-up), immune to
	// LLC pollution from co-running streams.
	"leela_r":     {Name: "leela_r", Class: Low, MemRatio: 0.15, WriteFrac: 0.20, Footprint: 192 << 10, StreamFrac: 0.30, Streams: 2},
	"deepsjeng_r": {Name: "deepsjeng_r", Class: Low, MemRatio: 0.16, WriteFrac: 0.25, Footprint: 224 << 10, StreamFrac: 0.20, Streams: 2},
	"xchange2_r":  {Name: "xchange2_r", Class: Low, MemRatio: 0.14, WriteFrac: 0.25, Footprint: 160 << 10, StreamFrac: 0.30, Streams: 2},
}

// Mixes reproduces Table II's nine application mixes. Mix 0 runs eight
// cores (the under-provisioned bandwidth case); the rest run four.
var Mixes = [][]string{
	{"mcf_r", "lbm_r", "omnetpp_r", "gemsFDTD", "bwaves_r", "milc", "soplex", "leslie3d"},
	{"mcf_r", "lbm_r", "omnetpp_r", "gemsFDTD"},
	{"mcf_r", "lbm_r", "gemsFDTD", "soplex"},
	{"lbm_r", "omnetpp_r", "gemsFDTD", "soplex"},
	{"omnetpp_r", "gemsFDTD", "soplex", "milc"},
	{"gemsFDTD", "soplex", "milc", "bwaves_r"},
	{"soplex", "milc", "bwaves_r", "leslie3d"},
	{"milc", "bwaves_r", "astar", "cactusBSSN_r"},
	{"leslie3d", "leela_r", "deepsjeng_r", "xchange2_r"},
}

// MixName formats the canonical mix label.
func MixName(i int) string { return fmt.Sprintf("mix%d", i) }

// countedSource wraps a math/rand source and counts state advances, so
// a generator's RNG position can be snapshotted as a draw count and
// restored by replay. Both Int63 and Uint64 advance the underlying
// generator exactly once (Int63 is the masked Uint64), so replaying n
// Uint64 calls reproduces the state after any mix of n draws.
type countedSource struct {
	src   rand.Source64
	draws uint64
}

func newCountedSource(seed int64) *countedSource {
	return &countedSource{src: rand.NewSource(seed).(rand.Source64)}
}

func (c *countedSource) Int63() int64 {
	c.draws++
	return c.src.Int63()
}

func (c *countedSource) Uint64() uint64 {
	c.draws++
	return c.src.Uint64()
}

func (c *countedSource) Seed(seed int64) {
	c.draws = 0
	c.src.Seed(seed)
}

// replayTo reseeds and advances the source to an exact draw count.
func (c *countedSource) replayTo(seed int64, draws uint64) {
	c.src.Seed(seed)
	for i := uint64(0); i < draws; i++ {
		c.src.Uint64()
	}
	c.draws = draws
}

// Generator produces the synthetic instruction stream for one benchmark
// instance. It implements cpu.TraceSource deterministically from a seed.
type Generator struct {
	prof Profile
	rng  *rand.Rand
	src  *countedSource
	seed int64
	dep  float64

	base    uint64 // physical base of this instance's region
	size    uint64
	streams []uint64

	// Integer-comparison thresholds for NextFunctional's bit-packed
	// draws, precomputed from the profile fractions.
	serThresh32    uint32
	memThresh32    uint32
	streamThresh16 uint16
	writeThresh16  uint16
}

// NewGenerator builds a trace source over the physical region
// [base, base+size). The region should be at least the profile footprint;
// smaller regions wrap (the footprint is clipped).
func NewGenerator(prof Profile, base, size uint64, seed int64) *Generator {
	if size == 0 {
		panic("workload: zero-sized region")
	}
	src := newCountedSource(seed)
	g := &Generator{prof: prof, rng: rand.New(src), src: src, seed: seed, dep: depFrac, base: base, size: size}
	if prof.DepFrac > 0 {
		g.dep = prof.DepFrac
	}
	if g.prof.Footprint > size {
		g.prof.Footprint = size
	}
	n := prof.Streams
	if n <= 0 {
		n = 1
	}
	for i := 0; i < n; i++ {
		g.streams = append(g.streams, g.rng.Uint64()%g.prof.Footprint)
	}
	g.serThresh32 = thresh32(g.dep)
	g.memThresh32 = thresh32(g.prof.MemRatio)
	g.streamThresh16 = thresh16(g.prof.StreamFrac)
	g.writeThresh16 = thresh16(g.prof.WriteFrac)
	return g
}

// depFrac is the fraction of instructions heading a dependency chain;
// it bounds compute ILP at roughly 1/depFrac instructions per cycle,
// giving per-core IPC in the 2-3 range for cache-resident work.
const depFrac = 0.35

// Next implements cpu.TraceSource.
func (g *Generator) Next() cpu.Instr {
	ser := g.rng.Float64() < g.dep
	if g.rng.Float64() >= g.prof.MemRatio {
		return cpu.Instr{Serialize: ser}
	}
	var off uint64
	if g.rng.Float64() < g.prof.StreamFrac {
		i := g.rng.Intn(len(g.streams))
		g.streams[i] = (g.streams[i] + 8) % g.prof.Footprint
		off = g.streams[i]
	} else {
		off = g.rng.Uint64() % g.prof.Footprint
	}
	return cpu.Instr{
		Mem:       true,
		Write:     g.rng.Float64() < g.prof.WriteFrac,
		Serialize: ser,
		Addr:      g.base + off&^7,
	}
}

// NextFunctional implements cpu.FunctionalSource: the next instruction
// drawn from the same distribution as Next but with a bit-packed RNG
// recipe — one source advance for a non-memory instruction, two for a
// memory one, against Next's two and five. Sampled-mode fast-forward
// (DESIGN.md §2.11) retires millions of instructions through this path
// purely to warm cache and row state, so the draw cost is the budget;
// the sequence differs from Next's (fewer, differently-sliced draws),
// which is exactly the approximation sampled mode already accepts.
// Stream state advances identically, keeping the spatial-locality
// structure the warm path exists to reproduce.
func (g *Generator) NextFunctional() cpu.Instr {
	u := g.rng.Uint64()
	ser := uint32(u) < g.serThresh32
	if uint32(u>>32) >= g.memThresh32 {
		return cpu.Instr{Serialize: ser}
	}
	v := g.rng.Uint64()
	var off uint64
	if uint16(v>>16) < g.streamThresh16 {
		i := int((v >> 32) % uint64(len(g.streams)))
		g.streams[i] = (g.streams[i] + 8) % g.prof.Footprint
		off = g.streams[i]
	} else {
		off = (v >> 32) % g.prof.Footprint
	}
	return cpu.Instr{
		Mem:       true,
		Write:     uint16(v) < g.writeThresh16,
		Serialize: ser,
		Addr:      g.base + off&^7,
	}
}

// thresh32 and thresh16 convert a probability to a uniform-integer
// comparison threshold.
func thresh32(p float64) uint32 {
	if p >= 1 {
		return ^uint32(0)
	}
	return uint32(p * (1 << 32))
}

func thresh16(p float64) uint16 {
	if p >= 1 {
		return ^uint16(0)
	}
	return uint16(p * (1 << 16))
}

// StallHeavy returns the synthetic profile behind BenchmarkHostStallHeavy
// and the stall-window equivalence tests: serialize-heavy (DepFrac 0.9
// caps issue at ~1 instruction/cycle) and almost purely LLC-defeating
// random loads over a 64 MiB footprint (MemRatio 0.85), so a core fills
// its L1 MSHRs within a few cycles of each fill burst and then sits
// provably blocked on memory — the shape that maximizes the
// fully-stalled windows the fast-forward machinery can skip.
func StallHeavy() Profile {
	return Profile{Name: "stall_heavy", Class: High, MemRatio: 0.85, WriteFrac: 0.05,
		Footprint: 64 << 20, StreamFrac: 0.05, Streams: 2, DepFrac: 0.9}
}

// ComputeHeavy returns the synthetic profile behind
// BenchmarkHostComputeHeavy and the compute-heavy goldens: a high-IPC,
// cache-resident core. The 160 KiB footprint sits entirely inside the
// 256 KiB L2 after warm-up, MemRatio 0.04 makes most width-8 issue
// groups free of memory instructions, and DepFrac 0.1 keeps dependency
// chains long enough that issue runs near full width (per-core IPC in
// the 5-6 range) — the shape that maximizes the compute-bound windows
// the batched-retirement path can collapse, while still touching memory
// often enough to exercise the batch/issue boundary.
func ComputeHeavy() Profile {
	return Profile{Name: "compute_heavy", Class: Low, MemRatio: 0.04, WriteFrac: 0.2,
		Footprint: 160 << 10, StreamFrac: 0.6, Streams: 2, DepFrac: 0.1}
}

// MixProfiles resolves mix index i to its benchmark profiles.
func MixProfiles(i int) ([]Profile, error) {
	if i < 0 || i >= len(Mixes) {
		return nil, fmt.Errorf("workload: mix index %d out of range [0,%d]", i, len(Mixes)-1)
	}
	var out []Profile
	for _, name := range Mixes[i] {
		p, ok := Profiles[name]
		if !ok {
			return nil, fmt.Errorf("workload: unknown benchmark %q in mix %d", name, i)
		}
		out = append(out, p)
	}
	return out, nil
}
