package sim

import (
	"testing"

	"chopim/internal/apps"
	"chopim/internal/ndart"
	"chopim/internal/workload"
)

// TestTickLoopAllocFree pins the allocation-free steady-state contract
// of the tick loop: once a mixed host+NDA system is warmed (pools sized,
// caches filled, write drains established), advancing the clock performs
// zero heap allocations. Every hot-path allocation — controller request
// nodes, LLC MSHRs and their fill callbacks, core completion callbacks,
// the NDA write buffer — comes from a pool or a preallocated ring.
// CI fails on any regression here; the companion BenchmarkMixedHostNDA
// reports the same property as allocs/op.
func TestTickLoopAllocFree(t *testing.T) {
	s, err := New(Default(1))
	if err != nil {
		t.Fatal(err)
	}
	// COPY exercises both the NDA read and write-buffer paths; the
	// operand is sized so one launch outlives warm-up plus measurement.
	app, err := apps.NewMicroPlaced(s.RT, "copy", (4<<20)/4, ndart.Private)
	if err != nil {
		t.Fatal(err)
	}
	h, err := app.Iterate()
	if err != nil {
		t.Fatal(err)
	}
	s.Run(60_000)
	if h.Done() {
		t.Fatal("NDA op finished during warm-up; enlarge the operand")
	}
	allocs := testing.AllocsPerRun(5, func() { s.Run(5_000) })
	if allocs != 0 {
		t.Fatalf("steady-state tick loop allocated %.1f objects per 5k-cycle window, want 0", allocs)
	}
	if h.Done() {
		t.Fatal("NDA op finished during measurement; enlarge the operand")
	}
}

// TestComputeHeavyAllocFree extends the zero-allocs contract to the
// compute-heavy host path (BenchmarkHostComputeHeavy's shape): the
// window-batched retirement machinery — the per-core issue-group
// lookahead and the deferred ROB materialization — must run from
// fixed per-core state, never the heap.
func TestComputeHeavyAllocFree(t *testing.T) {
	cfg := Default(-1)
	p := workload.ComputeHeavy()
	cfg.HostProfiles = []workload.Profile{p, p, p, p}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.RunFast(50_000)
	allocs := testing.AllocsPerRun(5, func() { s.RunFast(20_000) })
	if allocs != 0 {
		t.Fatalf("compute-heavy steady state allocated %.1f objects per 20k-cycle window, want 0", allocs)
	}
}

// TestParallelFrontEndAllocFree extends the zero-allocs contract to
// the core-sharded front-end (DESIGN.md §2.10): with the executor
// running, every sub-cycle round — claims, core-local deferred ticks
// (AccessLocal probes and rollbacks), parked-tick commits — must run
// from preallocated state. The mixed workload keeps both round kinds
// hot: channel-domain memory phases and core rounds interleave every
// tick.
func TestParallelFrontEndAllocFree(t *testing.T) {
	cfg := Default(1)
	cfg.SimWorkers = 2
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	app, err := apps.NewMicroPlaced(s.RT, "copy", (4<<20)/4, ndart.Private)
	if err != nil {
		t.Fatal(err)
	}
	h, err := app.Iterate()
	if err != nil {
		t.Fatal(err)
	}
	s.RunFast(60_000)
	if h.Done() {
		t.Fatal("NDA op finished during warm-up; enlarge the operand")
	}
	allocs := testing.AllocsPerRun(5, func() { s.RunFast(5_000) })
	if allocs != 0 {
		t.Fatalf("core-sharded steady state allocated %.1f objects per 5k-cycle window, want 0", allocs)
	}
}

// TestStallHeavyAllocFree extends the zero-allocs contract to the
// stall-heavy host path (BenchmarkHostStallHeavy's shape): the 64 MiB
// random footprints warm the MSHR machinery much more slowly than the
// mixed workload, so this pins the config-bound pre-sizing of the
// waiter slices, the LLC pending map, the MSHR node pool, and the
// controller overflow ring — late growth in any of them fails here
// before it fails the CI bench gate.
func TestStallHeavyAllocFree(t *testing.T) {
	cfg := Default(-1)
	p := workload.StallHeavy()
	cfg.HostProfiles = []workload.Profile{p, p, p, p}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.RunFast(150_000)
	allocs := testing.AllocsPerRun(5, func() { s.RunFast(20_000) })
	if allocs != 0 {
		t.Fatalf("stall-heavy steady state allocated %.1f objects per 20k-cycle window, want 0", allocs)
	}
}
