package nda

import (
	"fmt"
	"math/rand"

	"chopim/internal/dram"
	"chopim/internal/mc"
	"chopim/internal/ring"
)

// Policy selects the NDA write-throttling mechanism (Section III-B).
type Policy int

// Write-issue policies.
const (
	// IssueIfIdle issues aggressively whenever the rank is idle from the
	// host's perspective (the baseline opportunistic policy).
	IssueIfIdle Policy = iota
	// Stochastic issues writes with probability StochasticProb per
	// attempt; requires no extra signaling.
	Stochastic
	// NextRank inhibits writes on a rank while the oldest outstanding
	// host read in the channel targets that rank (needs one signal pin).
	NextRank
)

// String names the policy as in Figure 12's legend.
func (p Policy) String() string {
	switch p {
	case IssueIfIdle:
		return "Issue_if_idle"
	case Stochastic:
		return "Stochastic_issue"
	case NextRank:
		return "Predict_next_rank"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Config tunes the NDA engine.
type Config struct {
	Policy         Policy
	StochasticProb float64 // write-issue probability under Stochastic
	WriteBufCap    int     // PE write buffer entries (blocks); Table II: 128
	Seed           int64
	// VerifyFSM additionally runs an independent host-side replica FSM
	// from host-visible inputs only and asserts cycle-exact agreement
	// with the NDA-side FSM (the Section III-D argument).
	VerifyFSM bool
}

// DefaultConfig returns the paper's NDA parameters with the robust
// next-rank predictor.
func DefaultConfig() Config {
	return Config{Policy: NextRank, StochasticProb: 0.25, WriteBufCap: 128, Seed: 42}
}

// RankStats aggregates one rank-NDA's activity.
type RankStats struct {
	BlocksRead    int64
	BlocksWritten int64
	RowActs       int64
	StallsHost    int64 // cycles skipped because the host used the rank
	StallsPolicy  int64 // write attempts inhibited by the policy
	OpsCompleted  int64
}

// wbEntry is one pending result block in the PE write buffer: its
// address and the op it belongs to.
type wbEntry struct {
	addr  dram.Addr
	owner *Op
}

// rankFSM is the deterministic per-rank NDA state machine. It is the
// unit that Section III-D replicates: every transition is a function of
// (launched op descriptors, host-visible DRAM timing state, host queue
// state, the shared clock), so a host-side copy stays in lock-step
// without any NDA-to-host signaling.
type rankFSM struct {
	ops      []*Op
	wb       ring.Ring[wbEntry] // pending result blocks (FIFO, allocation-free once warmed)
	draining bool
	readsRun int // reads completed toward the current batch
	rng      *rand.Rand
	rngSrc   *countedSource // rng's source, counted for snapshot replay
	rngSeed  int64

	stats RankStats
}

// snapshot summarizes observable FSM state for replica comparison.
func (f *rankFSM) snapshot() string {
	return fmt.Sprintf("ops=%d wb=%d drain=%v reads=%d rd=%d wr=%d",
		len(f.ops), f.wb.Len(), f.draining, f.readsRun,
		f.stats.BlocksRead, f.stats.BlocksWritten)
}

// RankNDA is one rank's PE cluster plus its NDA memory controller, with
// an optional host-side replica FSM.
type RankNDA struct {
	Channel, Rank int

	cfg  Config
	mem  *dram.Mem
	host *mc.Controller

	fsm     rankFSM
	replica *rankFSM

	// sleepUntil caches the FSM's next event: ticks before it are
	// provably no-ops and are skipped. Its validity contract has two
	// tiers, recorded at derivation time:
	//
	//   - sleepPure: the bound came from a pure timing wait (an open-row
	//     column or row command gated only on this rank's DRAM horizons,
	//     with no host-state read on the evaluation path). It stays
	//     valid under arbitrary host-queue churn; only a host command to
	//     this rank invalidates it — Issue moves horizons monotonically
	//     later and can close the row, and the engine provably steps the
	//     rank on that very cycle (the dispatcher forces a Tick whenever
	//     a host controller issues to a busy rank), marking the bound
	//     stale before it could ever be consumed again.
	//   - impure (sleepPure false): the evaluation read host controller
	//     state (oldest-read rank, per-bank demand), so the bound is
	//     valid only while the controller's per-rank queue counter
	//     (mc.Controller.NDAVer, recorded in derivedVer) is unmoved —
	//     it covers exactly the read-queue head and this rank's bucket
	//     zero-crossings, so churn on other ranks never invalidates;
	//     every branch that accrues per-cycle stall counters bounds
	//     itself at now and is never slept over.
	//
	// Bounds are derived lazily: a step marks sleepStale and the next
	// NextEvent query evaluates nextEvent — under sustained host traffic
	// every cycle executes anyway and eager evaluation would be waste.
	// A stale or invalid bound is never trusted; stepping instead is
	// always reference-exact.
	sleepUntil int64
	sleepPure  bool
	sleepStale bool
	derivedVer uint64

	// csink, when set, receives op completion callbacks instead of having
	// them invoked inline (see Engine.SetCompletionSink).
	csink func(done func(int64), at int64)
}

// Stats returns the rank's activity counters.
func (n *RankNDA) Stats() RankStats { return n.fsm.stats }

// Engine owns every RankNDA in the system and the host-side NDA
// controller logic that coordinates with the host memory controllers.
type Engine struct {
	cfg   Config
	mem   *dram.Mem
	hosts []*mc.Controller // per channel
	Ranks [][]*RankNDA     // [channel][rank]

	// fastForward arms the per-rank sleep cache (see RankNDA.tick).
	// Off by default so Tick remains the dumbest possible reference
	// implementation — the oracle fast-forward is verified against.
	fastForward bool
}

// SetFastForward toggles the per-rank idle-skip cache. Observable
// behavior is identical either way; only the work done on provably-idle
// cycles changes.
func (e *Engine) SetFastForward(on bool) { e.fastForward = on }

// NewEngine builds the NDA engine over the memory and host controllers.
func NewEngine(cfg Config, mem *dram.Mem, hosts []*mc.Controller) *Engine {
	if cfg.WriteBufCap <= 0 {
		cfg.WriteBufCap = 128
	}
	e := &Engine{cfg: cfg, mem: mem, hosts: hosts}
	for ch := 0; ch < mem.Geom.Channels; ch++ {
		var row []*RankNDA
		for r := 0; r < mem.Geom.Ranks; r++ {
			seed := cfg.Seed + int64(ch*64+r)
			src := newCountedSource(seed)
			n := &RankNDA{
				Channel: ch, Rank: r, cfg: cfg, mem: mem, host: hosts[ch],
				fsm: rankFSM{rng: rand.New(src), rngSrc: src, rngSeed: seed},
			}
			if cfg.VerifyFSM {
				rsrc := newCountedSource(seed)
				n.replica = &rankFSM{rng: rand.New(rsrc), rngSrc: rsrc, rngSeed: seed}
			}
			row = append(row, n)
		}
		e.Ranks = append(e.Ranks, row)
	}
	return e
}

// Launch enqueues an op on the given rank's NDA. makeOp must build a
// fresh op (fresh iterators) on each call: when FSM verification is on,
// a second instance feeds the host-side replica. In hardware the launch
// arrives through a control-register write; the runtime layer models that
// channel occupancy.
func (e *Engine) Launch(channel, rank int, makeOp func() *Op) {
	n := e.Ranks[channel][rank]
	n.sleepStale = true // re-derive: the new op changes the FSM's next action
	n.fsm.ops = append(n.fsm.ops, makeOp())
	if n.replica != nil {
		op := makeOp()
		op.Done = nil // completion is reported by the primary only
		n.replica.ops = append(n.replica.ops, op)
	}
}

// Busy reports whether any NDA still has work queued.
func (e *Engine) Busy() bool {
	for _, row := range e.Ranks {
		for _, n := range row {
			if len(n.fsm.ops) > 0 || n.fsm.wb.Len() > 0 {
				return true
			}
		}
	}
	return false
}

// Tick advances every rank NDA by one DRAM cycle. Must run after the
// host controllers' Tick for the same cycle (host priority). The
// fast-forward dispatcher must invoke it on every cycle where a host
// controller issued a command to a rank with NDA work (see
// RankBusy) — the rank's yield accounting happens on that very cycle.
func (e *Engine) Tick(now int64) {
	for ch := range e.Ranks {
		e.TickChannel(ch, now)
	}
}

// TickChannel advances one channel's rank NDAs by one DRAM cycle. A
// channel's NDAs read and write only that channel's state — its host
// controller (issued-rank, queue-demand, and version reads), its share
// of the DRAM timing model, and their own FSMs — so distinct channels
// may tick on concurrent workers. Op completion callbacks are the one
// exception, and they divert through the completion sink when set.
func (e *Engine) TickChannel(ch int, now int64) {
	host := e.hosts[ch]
	hostRank := host.HostIssuedRank()
	// Impure bounds revalidate against the per-rank queue counter, not
	// the controller-wide version: the host reads on the evaluation
	// path (OldestReadRank, HasDemandFor) observe only the read-queue
	// head and this rank's bucket occupancy — exactly what NDAVer(rank)
	// counts — and host row commands, which bump Ver but no queue
	// counter, reach this rank through the issued-rank forced step
	// instead. Queue churn confined to other ranks no longer disturbs
	// this rank's cached bound.
	for _, n := range e.Ranks[ch] {
		n.tick(now, hostRank, host.NDAVer(n.Rank), e.fastForward)
	}
}

// SetCompletionSink redirects op completion callbacks (Op.Done) of the
// given channel's rank NDAs into sink instead of invoking them inline
// during a tick. The sim package points each channel at its domain
// mailbox; deferred callbacks must run before the end of the cycle they
// were produced in. A nil sink restores inline invocation.
func (e *Engine) SetCompletionSink(ch int, sink func(done func(int64), at int64)) {
	for _, n := range e.Ranks[ch] {
		n.csink = sink
	}
}

// RankBusy reports whether the rank's NDA has queued work: the
// dispatcher uses it to force a Tick when a host command targets the
// rank.
func (e *Engine) RankBusy(channel, rank int) bool {
	n := e.Ranks[channel][rank]
	return len(n.fsm.ops) > 0 || n.fsm.wb.Len() > 0
}

// NextEvent returns the earliest DRAM cycle >= now at which any rank
// NDA can issue a command or mutate observable state, assuming no host
// command targets a busy rank before then (the dispatcher forces a Tick
// on any cycle where one does, so consuming the bound is sound). Stale
// or version-invalidated bounds are re-derived here from current state:
// between a rank's last step and this query nothing it reads can have
// changed without either bumping its channel's Ver (impure bounds
// revalidate against it) or issuing to the rank itself (which forced a
// step), so the lazy evaluation equals the one the step would have
// done. Stall counters that accrue per-cycle under host interference
// all live behind branches whose bound is now, and are never slept
// over.
func (e *Engine) NextEvent(now int64) int64 {
	next := dram.Never
	for ch := range e.Ranks {
		if w := e.ChannelNextEvent(ch, now); w < next {
			next = w
			if next <= now {
				return now
			}
		}
	}
	return next
}

// ChannelNextEvent is NextEvent restricted to one channel's rank NDAs.
// Its validity assumptions are per channel: a host command to a busy
// rank forces that channel's tick (RankBusy), and impure bounds
// revalidate against that channel's controller version — so one
// channel's host-queue churn never perturbs another channel's cached
// bounds. It reads and refreshes only channel-local state, making it
// safe to call from the channel's domain worker.
func (e *Engine) ChannelNextEvent(ch int, now int64) int64 {
	next := dram.Never
	host := e.hosts[ch]
	for _, n := range e.Ranks[ch] {
		if len(n.fsm.ops) == 0 && n.fsm.wb.Len() == 0 {
			continue
		}
		hv := host.NDAVer(n.Rank) // per-rank counter; see TickChannel
		if n.sleepStale || (!n.sleepPure && n.derivedVer != hv) {
			n.sleepUntil, n.sleepPure = n.nextEvent(now)
			n.derivedVer = hv
			n.sleepStale = false
		}
		if n.sleepUntil <= now {
			return now
		}
		if n.sleepUntil < next {
			next = n.sleepUntil
		}
	}
	return next
}

// nextEvent mirrors stepFSM's decision tree without mutating: every
// branch either proves the FSM idle until a computable timing horizon or
// returns now because the next tick performs work (an RNG draw, a
// policy-stall counter bump, a state-flag flip, or op completion). The
// second result reports purity: true when no host controller state was
// read on the evaluation path, so the bound survives host-queue churn
// (see sleepUntil).
func (n *RankNDA) nextEvent(now int64) (int64, bool) {
	f := &n.fsm
	if len(f.ops) == 0 && f.wb.Len() == 0 {
		return dram.Never, true
	}
	wantWrite := false
	switch {
	case f.wb.Len() >= n.cfg.WriteBufCap:
		wantWrite = true
	case f.draining && f.wb.Len() > 0:
		wantWrite = true
	case f.wb.Len() > 0 && (len(f.ops) == 0 || f.ops[0].exhausted):
		wantWrite = true
	}
	if wantWrite {
		switch n.cfg.Policy {
		case Stochastic:
			return now, false // every attempt draws from the FSM's RNG
		case NextRank:
			if r, ok := n.host.OldestReadRank(); ok && r == n.Rank {
				return now, false // StallsPolicy advances each inhibited cycle
			}
			// The inhibition read taints the bound even when the wait
			// itself is a pure timing one.
			b, _ := n.accessEvent(dram.CmdWR, f.wb.Front().addr, now)
			return b, false
		}
		return n.accessEvent(dram.CmdWR, f.wb.Front().addr, now)
	}
	op := f.ops[0]
	if op.Kind.WritesResult() && f.wb.Len() > n.cfg.WriteBufCap-BatchBlocks {
		return now, false // backpressure flips draining on the next tick
	}
	a, ok := op.PeekRead()
	if !ok {
		return now, false // exhaustion discovery, tail flush, or completion
	}
	return n.accessEvent(dram.CmdRD, a, now)
}

// accessEvent bounds when the FSM's pending column access (or the row
// command it needs first) can make progress, and whether the bound is
// pure (derived from this rank's own DRAM horizons alone).
func (n *RankNDA) accessEvent(col dram.Command, a dram.Addr, now int64) (int64, bool) {
	row, open := n.mem.OpenRow(a)
	if open && row == a.Row {
		return n.mem.NextIssue(col, a, now, true), true
	}
	if n.host.HasDemandFor(n.Rank, a.GlobalBank(n.mem.Geom)) {
		return now, false // StallsHost advances each blocked cycle
	}
	// The demand check taints the bound: demand arriving mid-wait turns
	// every remaining cycle into a StallsHost bump.
	if open {
		return n.mem.NextIssue(dram.CmdPRE, a, now, true), false
	}
	return n.mem.NextIssue(dram.CmdACT, a, now, true), false
}

// MarkAllStale invalidates every rank's cached sleep bound. The
// sampled-mode fast-forward jump calls it after functionally advancing
// FSMs and warming row state: the cached bounds were derived from
// pre-jump timing and queue state and must be re-derived before any
// NextEvent query trusts them (mirrors what Restore does per rank).
func (e *Engine) MarkAllStale() {
	for _, row := range e.Ranks {
		for _, n := range row {
			n.sleepStale = true
		}
	}
}

// DrainFunctional advances one rank's NDA by up to maxBlocks blocks of
// work at functional fidelity for sampled-mode fast-forward (DESIGN.md
// §2.11). Work retires in exact FSM order — reads, batch-boundary
// result-write emission, buffer drains, op completion — but without
// timing checks, policy throttles, or RNG draws: determinism across
// runs and worker counts requires the functional path to consume no
// randomness, and policy effects are timing artifacts the detailed
// windows re-measure. Row-buffer state warms through dram.Mem.WarmOpen
// exactly where the exact path would have activated, and the
// BlocksRead/BlocksWritten/RowActs counters advance so bandwidth
// accounting stays meaningful. Completion callbacks fire at cycle now
// (the post-jump cycle), through the completion sink when installed —
// the caller must flush its commit phase afterwards. Returns the
// blocks processed (< maxBlocks only when the rank ran dry).
//
// Incompatible with the FSM-verification replica: the replica predicts
// from timing state the functional path does not advance, so it would
// diverge in the next detailed window. RunSampled rejects VerifyFSM
// configurations; reaching here with a replica armed panics.
func (e *Engine) DrainFunctional(channel, rank, maxBlocks int, now int64) int {
	n := e.Ranks[channel][rank]
	if n.replica != nil {
		panic("nda: DrainFunctional with the VerifyFSM replica armed")
	}
	f := &n.fsm
	done := 0
	for done < maxBlocks {
		if len(f.ops) == 0 && f.wb.Len() == 0 {
			break
		}
		wantWrite := false
		switch {
		case f.wb.Len() >= n.cfg.WriteBufCap:
			f.draining = true
			wantWrite = true
		case f.draining && f.wb.Len() > 0:
			wantWrite = true
		case f.wb.Len() > 0 && (len(f.ops) == 0 || f.ops[0].exhausted):
			f.draining = true
			wantWrite = true
		default:
			f.draining = false
		}
		if wantWrite {
			front := f.wb.Front()
			n.warmRow(f, front.addr)
			f.wb.Pop()
			f.stats.BlocksWritten++
			front.owner.pendingWr--
			n.maybeComplete(f, front.owner, now)
			done++
			continue
		}
		op := f.ops[0]
		if op.Kind.WritesResult() && f.wb.Len() > n.cfg.WriteBufCap-BatchBlocks {
			f.draining = true // backpressure: next iteration drains
			continue
		}
		a, ok := op.nextRead()
		if !ok {
			// All reads done: flush remaining result writes (drained by
			// subsequent iterations) or complete the op outright.
			n.emitWrites(f, op, BatchBlocks)
			if op.pendingWr == 0 {
				n.maybeComplete(f, op, now)
			}
			continue
		}
		n.warmRow(f, a)
		f.stats.BlocksRead++
		f.readsRun++
		if f.readsRun >= op.batchReads() {
			f.readsRun = 0
			n.emitWrites(f, op, BatchBlocks)
		}
		done++
	}
	if done > 0 {
		n.sleepStale = true
	}
	return done
}

// warmRow opens the bank row a functional access targets, accounting
// the activation the exact path would have issued. The rank/channel
// protection assertion is kept; per-op Guard bounds are asserted on the
// exact path only.
func (n *RankNDA) warmRow(f *rankFSM, a dram.Addr) {
	if a.Channel != n.Channel || a.Rank != n.Rank {
		panic(fmt.Sprintf("nda: protection fault: ch%d/rk%d NDA accessed ch%d/rk%d",
			n.Channel, n.Rank, a.Channel, a.Rank))
	}
	if row, open := n.mem.OpenRow(a); !open || row != a.Row {
		f.stats.RowActs++
		n.mem.WarmOpen(a)
	}
}

// BytesMoved returns total NDA data movement in bytes.
func (e *Engine) BytesMoved() int64 {
	var b int64
	for _, row := range e.Ranks {
		for _, n := range row {
			b += (n.fsm.stats.BlocksRead + n.fsm.stats.BlocksWritten) * dram.BlockBytes
		}
	}
	return b
}

// TotalStats sums per-rank statistics.
func (e *Engine) TotalStats() RankStats {
	var t RankStats
	for _, row := range e.Ranks {
		for _, n := range row {
			s := n.fsm.stats
			t.BlocksRead += s.BlocksRead
			t.BlocksWritten += s.BlocksWritten
			t.RowActs += s.RowActs
			t.StallsHost += s.StallsHost
			t.StallsPolicy += s.StallsPolicy
			t.OpsCompleted += s.OpsCompleted
		}
	}
	return t
}

// tick attempts to issue at most one DRAM command for this rank's NDA.
// The replica, when present, is stepped first with apply=false so both
// FSMs evaluate against identical pre-issue DRAM state; their observable
// state must then agree.
//
// The fast path sleeps while the cached bound holds (see sleepUntil's
// validity contract): fresh, pure-or-version-valid, no host command to
// this rank this cycle. Everything else steps — stepping is what the
// reference does every cycle, so it is always exact.
func (n *RankNDA) tick(now int64, hostIssuedRank int, hostVer uint64, fastForward bool) {
	if len(n.fsm.ops) == 0 && n.fsm.wb.Len() == 0 {
		return
	}
	if fastForward {
		if !n.sleepStale && (n.sleepPure || n.derivedVer == hostVer) &&
			hostIssuedRank != n.Rank && now < n.sleepUntil {
			return
		}
		n.step(now, hostIssuedRank)
		n.sleepStale = true
		return
	}
	n.sleepStale = true
	n.step(now, hostIssuedRank)
}

// step runs one FSM transition (and the replica's, when armed).
func (n *RankNDA) step(now int64, hostIssuedRank int) {
	if n.replica != nil {
		n.stepFSM(n.replica, now, hostIssuedRank, false)
	}
	n.stepFSM(&n.fsm, now, hostIssuedRank, true)
	if n.replica != nil {
		if got, want := n.replica.snapshot(), n.fsm.snapshot(); got != want {
			panic(fmt.Sprintf("nda: replica FSM diverged on ch%d/rk%d at cycle %d: replica{%s} nda{%s}",
				n.Channel, n.Rank, now, got, want))
		}
	}
}

// stepFSM advances one FSM by one cycle. When apply is true, DRAM
// commands actually issue; the replica passes false and only predicts.
func (n *RankNDA) stepFSM(f *rankFSM, now int64, hostIssuedRank int, apply bool) {
	// Host accessed this rank this cycle: the NDA yields (fine-grain
	// interleaving with host priority). The replica sees the same host
	// command stream.
	if hostIssuedRank == n.Rank {
		f.stats.StallsHost++
		return
	}
	wantWrite := false
	switch {
	case f.wb.Len() >= n.cfg.WriteBufCap:
		f.draining = true
		wantWrite = true
	case f.draining && f.wb.Len() > 0:
		wantWrite = true
	case f.wb.Len() > 0 && (len(f.ops) == 0 || f.ops[0].exhausted):
		// Tail flush: no more reads to overlap with.
		f.draining = true
		wantWrite = true
	default:
		f.draining = false
	}
	if wantWrite {
		n.tryWrite(f, now, apply)
		return
	}
	if len(f.ops) > 0 {
		n.tryRead(f, now, apply)
	}
}

// tryWrite attempts to issue the head write-buffer entry.
func (n *RankNDA) tryWrite(f *rankFSM, now int64, apply bool) {
	front := f.wb.Front()
	a, owner := front.addr, front.owner
	// Policy throttling applies to writes only.
	switch n.cfg.Policy {
	case Stochastic:
		if f.rng.Float64() >= n.cfg.StochasticProb {
			f.stats.StallsPolicy++
			return
		}
	case NextRank:
		if r, ok := n.host.OldestReadRank(); ok && r == n.Rank {
			f.stats.StallsPolicy++
			return
		}
	}
	if !n.access(f, dram.CmdWR, a, now, apply) {
		return
	}
	f.wb.Pop()
	f.stats.BlocksWritten++
	owner.pendingWr--
	n.maybeComplete(f, owner, now)
}

// tryRead attempts the next read of the head op, producing result-write
// entries at batch boundaries.
func (n *RankNDA) tryRead(f *rankFSM, now int64, apply bool) {
	op := f.ops[0]
	// Backpressure: a full batch of results must fit in the buffer.
	if op.Kind.WritesResult() && f.wb.Len() > n.cfg.WriteBufCap-BatchBlocks {
		f.draining = true
		return
	}
	a, ok := op.nextRead()
	if !ok {
		// All reads done; flush any remaining result writes.
		n.emitWrites(f, op, BatchBlocks)
		if op.pendingWr == 0 {
			n.maybeComplete(f, op, now)
		}
		return
	}
	if !n.access(f, dram.CmdRD, a, now, apply) {
		op.pushback(a)
		return
	}
	f.stats.BlocksRead++
	f.readsRun++
	if f.readsRun >= op.batchReads() {
		f.readsRun = 0
		n.emitWrites(f, op, BatchBlocks)
	}
}

// emitWrites moves up to k result addresses of op into the write buffer.
func (n *RankNDA) emitWrites(f *rankFSM, op *Op, k int) {
	if op.Writes == nil {
		return
	}
	for i := 0; i < k; i++ {
		a, ok := op.Writes()
		if !ok {
			break
		}
		op.emitted++
		f.wb.Push(wbEntry{addr: a, owner: op})
		op.pendingWr++
	}
}

// maybeComplete retires the head op when fully done.
func (n *RankNDA) maybeComplete(f *rankFSM, op *Op, now int64) {
	if len(f.ops) == 0 || f.ops[0] != op {
		return
	}
	if !op.exhausted || op.pendingWr > 0 {
		return
	}
	if op.Writes != nil {
		// The write iterator must be fully drained too.
		if a, ok := op.Writes(); ok {
			op.emitted++
			f.wb.Push(wbEntry{addr: a, owner: op})
			op.pendingWr++
			return
		}
	}
	k := copy(f.ops, f.ops[1:])
	f.ops[k] = nil
	f.ops = f.ops[:k]
	f.readsRun = 0
	f.stats.OpsCompleted++
	if op.Done != nil {
		// Completion callbacks touch state shared across channels
		// (runtime handles); when a sink is installed they run in the
		// serial commit phase instead. The replica FSM never reaches
		// here with a Done (Launch clears it), so the primary and
		// replica stay comparable either way.
		if n.csink != nil {
			n.csink(op.Done, now)
		} else {
			op.Done(now)
		}
	}
}

// access performs row management and the column issue for one block.
// Returns true if the column command may issue this cycle (and issues it
// when apply is set).
func (n *RankNDA) access(f *rankFSM, col dram.Command, a dram.Addr, now int64, apply bool) bool {
	// NDA-side protection: every access must target this NDA's own rank
	// and pass the launch packet's bounds check.
	if a.Channel != n.Channel || a.Rank != n.Rank {
		panic(fmt.Sprintf("nda: protection fault: ch%d/rk%d NDA accessed ch%d/rk%d",
			n.Channel, n.Rank, a.Channel, a.Rank))
	}
	if len(f.ops) > 0 && f.ops[0].Guard != nil && !f.ops[0].Guard(a) {
		panic(fmt.Sprintf("nda: protection fault: access %+v outside operand bounds", a))
	}
	row, open := n.mem.OpenRow(a)
	if open && row == a.Row {
		if !n.mem.CanIssue(col, a, now, true) {
			return false
		}
		if apply {
			n.mem.Issue(col, a, now, true)
		}
		return true
	}
	// Row command needed: the host's pending requests to this bank take
	// priority over NDA row commands (Section III-B).
	if n.host.HasDemandFor(n.Rank, a.GlobalBank(n.mem.Geom)) {
		f.stats.StallsHost++
		return false
	}
	if open {
		if n.mem.CanIssue(dram.CmdPRE, a, now, true) && apply {
			n.mem.Issue(dram.CmdPRE, a, now, true)
		}
		return false
	}
	if n.mem.CanIssue(dram.CmdACT, a, now, true) {
		if apply {
			n.mem.Issue(dram.CmdACT, a, now, true)
		}
		f.stats.RowActs++
	}
	return false
}
