package experiments

import "testing"

func TestAllFigsQuick(t *testing.T) {
	opt := QuickOptions()
	if _, err := Fig10(opt); err != nil {
		t.Error("fig10:", err)
	}
	if _, err := Fig11(opt); err != nil {
		t.Error("fig11:", err)
	}
	if _, err := Fig12(opt); err != nil {
		t.Error("fig12:", err)
	}
	if _, err := Fig13(opt); err != nil {
		t.Error("fig13:", err)
	}
	if _, err := Fig14(opt); err != nil {
		t.Error("fig14:", err)
	}
	if _, _, err := Fig15a(opt); err != nil {
		t.Error("fig15a:", err)
	}
	if _, err := Fig15b(opt); err != nil {
		t.Error("fig15b:", err)
	}
	if _, err := Power(opt); err != nil {
		t.Error("power:", err)
	}
	if _, err := Ablations(opt); err != nil {
		t.Error("ablations:", err)
	}
}
