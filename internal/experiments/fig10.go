package experiments

import (
	"fmt"

	"chopim/internal/apps"
	"chopim/internal/dram"
	"chopim/internal/ndart"
	"chopim/internal/sim"
)

// Fig10Row is one point of the coarse-grain NDA operation sweep.
type Fig10Row struct {
	Ranks     int // ranks per channel
	BlocksPer int // cache blocks per NDA instruction (N)
	HostIPC   float64
	NDAUtil   float64
}

// Fig10 reproduces Figure 10: host IPC and NDA bandwidth utilization as
// the per-instruction vector width N grows, for 2x2, 2x4, and 2x8
// systems running the memory-intensive mix1 with bank partitioning and
// asynchronous NRM2 launches. Small N floods the channel with launch
// packets; the effect worsens with rank count.
func Fig10(opt Options) ([]Fig10Row, error) { return figCached(opt, "fig10", fig10Rows) }

func fig10Rows(opt Options) ([]Fig10Row, error) {
	ns := []int{1, 4, 16, 64, 256, 1024, 4096}
	rankCounts := []int{2, 4, 8}
	if opt.Quick {
		ns = []int{1, 64, 4096}
		rankCounts = []int{2, 4}
	}
	type point struct{ ranks, n int }
	var points []point
	for _, ranks := range rankCounts {
		for _, n := range ns {
			points = append(points, point{ranks, n})
		}
	}
	return sharded(opt, len(points), func(i int) (Fig10Row, error) {
		p := points[i]
		cfg := sim.Default(1)
		cfg.Geom = geomWithRanks(p.ranks)
		cfg.MaxBlocksPerInstr = p.n
		s, err := opt.newSystem(cfg)
		if err != nil {
			return Fig10Row{}, err
		}
		// Size the vector so each rank holds 4096 blocks: every N
		// divides evenly and the largest N is one instruction.
		perRank := 4096
		if opt.Quick {
			perRank = 1024
		}
		elems := perRank * dram.BlockBytes / 4
		app, err := apps.NewMicroPlaced(s.RT, "nrm2", elems, ndart.Private)
		if err != nil {
			return Fig10Row{}, err
		}
		res, err := measureConcurrent(s, app.Iterate,
			opt.withTag(fmt.Sprintf("fig10-r%d-n%d", p.ranks, p.n)))
		if err != nil {
			return Fig10Row{}, err
		}
		return Fig10Row{Ranks: p.ranks, BlocksPer: p.n, HostIPC: res.HostIPC, NDAUtil: res.NDAUtil}, nil
	})
}
