// Package ndart is the Chopim runtime and programmer API (Section V). It
// manages colored shared-region allocations so NDA operands stay
// rank-aligned, splits API calls into per-rank primitive NDA operations
// with a configurable vector granularity, models the control-register
// launch packets that occupy the host channel, supports blocking and
// asynchronous (macro) launches, and inserts host-mediated copies when
// operands' colors do not match.
package ndart

import (
	"fmt"
	"sync"

	"chopim/internal/addrmap"
	"chopim/internal/dram"
	"chopim/internal/mc"
	"chopim/internal/nda"
	"chopim/internal/osmem"
)

// Placement selects how a tensor is laid out.
type Placement int

// Placements mirror the paper's nda::SHARED / nda::PRIVATE.
const (
	// Shared stripes the tensor across all NDAs under one color; the
	// host sees it as ordinary memory.
	Shared Placement = iota
	// Private replicates capacity so each NDA holds a full-length local
	// copy (the paper's a_pvt accumulators).
	Private
)

// Handle tracks completion of one or more launched operations.
type Handle struct {
	pending  int
	doneAt   int64
	children []*Handle
}

// Done reports whether every operation under the handle completed.
func (h *Handle) Done() bool {
	if h.pending > 0 {
		return false
	}
	for _, c := range h.children {
		if !c.Done() {
			return false
		}
	}
	return true
}

// Join combines handles into one that completes when all do.
func Join(hs ...*Handle) *Handle {
	return &Handle{children: hs}
}

// DoneAt returns the DRAM cycle of the final completion (valid once Done).
func (h *Handle) DoneAt() int64 { return h.doneAt }

func (h *Handle) complete(cycle int64) {
	h.pending--
	if cycle > h.doneAt {
		h.doneAt = cycle
	}
}

// Runtime is the Chopim runtime instance.
type Runtime struct {
	os     *osmem.OS
	mapper addrmap.Mapper
	geom   dram.Geometry
	eng    *nda.Engine
	mcs    []*mc.Controller
	now    func() int64

	// MaxBlocksPerInstr caps the cache blocks one NDA instruction may
	// touch per operand (the paper's vector width N; Fig 10 sweeps it).
	// Zero means unlimited (one instruction per rank per API call).
	MaxBlocksPerInstr int

	// ModelLaunches models each NDA instruction launch as a control
	// write through the host channel. Disable only for idealized runs.
	ModelLaunches bool

	// GuardOps installs the NDA-side bounds checks (protection) on
	// every launched instruction. Off by default: the checks are an
	// assertion harness with per-op setup cost.
	GuardOps bool

	color    osmem.Color
	colorSet bool

	copier   copyPump
	Launches int64
	Copies   int64

	// decodeCache memoizes indexBlocks results per (base, bytes) span.
	// The decode depends only on the span and the runtime's fixed address
	// mapping, so views over the same blocks (Matrix.RowView on every
	// relaunch) share one immutable layout instead of re-decoding. It is
	// the lock-free first level in front of the process-global
	// globalDecode cache, which additionally shares layouts across
	// runtimes with the same mapping (checkpoint forks, sweep points over
	// one geometry).
	decodeCache map[layoutKey]*vecLayout

	// pendingLaunches tracks control-register writes still in flight in
	// the host controllers, keyed by the request tag; completion launches
	// the recorded blueprints. The registry is what makes launch packets
	// checkpointable: a tag round-trips through a snapshot, a closure
	// does not.
	pendingLaunches map[uint64]*launchRec
	launchID        uint64

	// handleMap, populated by Restore, maps pre-snapshot handles to
	// their rebuilt counterparts (see RestoredHandle).
	handleMap map[*Handle]*Handle

	// restored, also populated by Restore, holds the rebuilt handles in
	// encoder-table order. It is the cross-process counterpart of
	// handleMap: a driver that recorded a handle's table index at
	// snapshot time (SnapEncoder.RegisterHandle) recovers the handle in
	// a fresh process through RestoredHandleAt, where pointer identity
	// cannot survive.
	restored []*Handle
}

// layoutKey identifies one decoded span.
type layoutKey struct {
	base  uint64
	bytes uint64
}

// vecLayout is an immutable decoded layout shared between vectors.
type vecLayout struct {
	rankBlocks [][][]int32
	addrs      []dram.Addr
}

// globalLayoutKey identifies a decoded span across runtimes: the mapper
// fingerprint pins the mapping function, so equal keys imply identical
// decodes.
type globalLayoutKey struct {
	mapper      string
	base, bytes uint64
}

// globalDecode is the process-wide second level of the decode cache.
// Snapshot restores and sweep forks build fresh runtimes whose
// first-level caches start empty; without this level every fork
// re-decodes every operand block on its first relaunch. Entries are
// immutable, so sharing across concurrently running systems is safe.
var globalDecode = struct {
	sync.Mutex
	m map[globalLayoutKey]*vecLayout
}{m: make(map[globalLayoutKey]*vecLayout)}

// globalDecodeCap bounds the global cache. On overflow the whole map is
// dropped: entries are pure functions of their keys and cheap to
// rebuild, and a plain reset beats tracking recency for a cache that
// overflows only on pathological sweep diversity.
const globalDecodeCap = 4096

// launchRec is one in-flight launch packet's payload.
type launchRec struct {
	ch, r int
	bps   []*opBP
}

// New builds a runtime over the OS, NDA engine, and host controllers.
func New(os *osmem.OS, eng *nda.Engine, mcs []*mc.Controller, now func() int64) *Runtime {
	return &Runtime{
		os: os, mapper: os.Mapper(), geom: os.Mapper().Geometry(),
		eng: eng, mcs: mcs, now: now, ModelLaunches: true,
		decodeCache:     make(map[layoutKey]*vecLayout),
		pendingLaunches: make(map[uint64]*launchRec),
	}
}

// Tick advances runtime background activity (host-mediated copies).
// Call once per DRAM cycle.
func (rt *Runtime) Tick(now int64) { rt.copier.tick(rt, now) }

// NextEvent returns the earliest DRAM cycle >= now at which the runtime
// can change state. The copy pump retries enqueues every cycle while a
// job is live; all other runtime activity is driven by API calls and
// memory-controller callbacks, not the clock.
func (rt *Runtime) NextEvent(now int64) int64 {
	if rt.copier.Busy() {
		return now
	}
	return dram.Never
}

// NDACount returns the number of rank NDAs in the system.
func (rt *Runtime) NDACount() int { return rt.geom.Channels * rt.geom.Ranks }

// Vector is a float32 vector visible to both host and NDAs.
type Vector struct {
	rt        *Runtime
	base      uint64
	n         int // elements
	bytes     uint64
	placement Placement
	color     osmem.Color

	// rankBlocks[ch][rank] lists the vector-relative block indices
	// owned by that rank, in address order.
	rankBlocks [][][]int32
	// addrs caches the decoded DRAM address of every block (indexed by
	// vector-relative block number); the XOR decode is hot enough that
	// repeating it per access dominates NDA-side simulation time.
	addrs []dram.Addr
}

// Matrix is a row-major float32 matrix; it shares Vector's layout
// machinery through an embedded vector covering rows*cols elements.
type Matrix struct {
	Vector
	Rows, Cols int
}

// NewVector allocates an n-element vector.
func (rt *Runtime) NewVector(n int, p Placement) (*Vector, error) {
	if n <= 0 {
		return nil, fmt.Errorf("ndart: vector length %d", n)
	}
	bytes := uint64(n) * 4
	if p == Private {
		bytes *= uint64(rt.NDACount())
	}
	base, color, err := rt.allocColored(bytes)
	if err != nil {
		return nil, err
	}
	v := &Vector{rt: rt, base: base, n: n, bytes: bytes, placement: p, color: color}
	v.indexBlocks()
	return v, nil
}

// NewMatrix allocates a rows x cols row-major matrix.
func (rt *Runtime) NewMatrix(rows, cols int, p Placement) (*Matrix, error) {
	v, err := rt.NewVector(rows*cols, p)
	if err != nil {
		return nil, err
	}
	return &Matrix{Vector: *v, Rows: rows, Cols: cols}, nil
}

// allocColored obtains shared memory under the runtime's operand color,
// adopting the first allocation's color (Section III-A: the runtime
// specifies the same color for all operands).
func (rt *Runtime) allocColored(bytes uint64) (uint64, osmem.Color, error) {
	if !rt.colorSet {
		c, err := rt.os.PickColor(bytes)
		if err != nil {
			return 0, 0, err
		}
		rt.color = c
		rt.colorSet = true
	}
	base, err := rt.os.AllocShared(bytes, rt.color)
	if err != nil {
		return 0, 0, err
	}
	return base, rt.color, nil
}

// NewVectorUncolored allocates without color coordination (the naive
// layout of Fig 3, used by the layout ablation): operands may land
// misaligned and require copies before NDA execution.
func (rt *Runtime) NewVectorUncolored(n int) (*Vector, error) {
	bytes := uint64(n) * 4
	base, err := rt.os.AllocSharedAny(bytes)
	if err != nil {
		return nil, err
	}
	v := &Vector{rt: rt, base: base, n: n, bytes: bytes, color: rt.os.ColorOf(base)}
	v.indexBlocks()
	return v, nil
}

// Len returns the element count.
func (v *Vector) Len() int { return v.n }

// Base returns the physical base address.
func (v *Vector) Base() uint64 { return v.base }

// Color returns the vector's alignment color.
func (v *Vector) Color() osmem.Color { return v.color }

// indexBlocks precomputes each rank's share of the vector (block indices
// in processing order). This is the software view of the data layout of
// Section III-A: with color-aligned operands every rank's share covers
// the same element positions across operands.
func (v *Vector) indexBlocks() {
	key := layoutKey{base: v.base, bytes: v.bytes}
	if l, ok := v.rt.decodeCache[key]; ok {
		v.rankBlocks, v.addrs = l.rankBlocks, l.addrs
		return
	}
	gkey := globalLayoutKey{mapper: v.rt.mapper.Fingerprint(), base: v.base, bytes: v.bytes}
	globalDecode.Lock()
	l, ok := globalDecode.m[gkey]
	globalDecode.Unlock()
	if ok {
		v.rankBlocks, v.addrs = l.rankBlocks, l.addrs
		v.rt.decodeCache[key] = l
		return
	}
	g := v.rt.geom
	v.rankBlocks = make([][][]int32, g.Channels)
	for ch := range v.rankBlocks {
		v.rankBlocks[ch] = make([][]int32, g.Ranks)
	}
	nBlocks := int32((v.bytes + dram.BlockBytes - 1) / dram.BlockBytes)
	v.addrs = make([]dram.Addr, nBlocks)
	for b := int32(0); b < nBlocks; b++ {
		a := v.rt.mapper.Decode(v.base + uint64(b)*dram.BlockBytes)
		v.addrs[b] = a
		v.rankBlocks[a.Channel][a.Rank] = append(v.rankBlocks[a.Channel][a.Rank], b)
	}
	l = &vecLayout{rankBlocks: v.rankBlocks, addrs: v.addrs}
	v.rt.decodeCache[key] = l
	globalDecode.Lock()
	if len(globalDecode.m) >= globalDecodeCap {
		globalDecode.m = make(map[globalLayoutKey]*vecLayout)
	}
	globalDecode.m[gkey] = l
	globalDecode.Unlock()
}

// shareBlocks returns rank (ch,r)'s share, as vector block indices.
func (v *Vector) shareBlocks(ch, r int) []int32 { return v.rankBlocks[ch][r] }

// iterFor yields DRAM addresses for a slice [from, from+count) of the
// rank's share.
func (v *Vector) iterFor(ch, r int, from, count int) nda.Iter {
	blocks := v.rankBlocks[ch][r]
	end := from + count
	if end > len(blocks) {
		end = len(blocks)
	}
	i := from
	return func() (dram.Addr, bool) {
		if i >= end {
			return dram.Addr{}, false
		}
		a := v.addrs[blocks[i]]
		i++
		return a, true
	}
}

// RowView returns a Vector aliasing row i of the matrix (no allocation
// of new memory; block indices are computed for the row's span). Rows
// shorter than a cache block share blocks with neighbours; the view
// covers every block the row touches.
func (m *Matrix) RowView(i int) *Vector {
	if i < 0 || i >= m.Rows {
		panic(fmt.Sprintf("ndart: row %d out of range [0,%d)", i, m.Rows))
	}
	rowBytes := uint64(m.Cols) * 4
	start := m.base + uint64(i)*rowBytes
	firstBlock := start / dram.BlockBytes * dram.BlockBytes
	endBlock := (start + rowBytes + dram.BlockBytes - 1) / dram.BlockBytes * dram.BlockBytes
	// The view inherits the parent's color: it belongs to the parent's
	// colored allocation, so alignment with sibling operands holds.
	v := &Vector{
		rt: m.rt, base: firstBlock, n: m.Cols,
		bytes: endBlock - firstBlock, placement: m.placement, color: m.color,
	}
	v.indexBlocks()
	return v
}

// controlAddr returns a DRAM address on the rank for launch packets (the
// control-register region lives on each module).
func (v *Vector) controlAddr(ch, r int) (dram.Addr, bool) {
	blocks := v.rankBlocks[ch][r]
	if len(blocks) == 0 {
		return dram.Addr{}, false
	}
	return v.rt.mapper.Decode(v.base + uint64(blocks[0])*dram.BlockBytes), true
}
