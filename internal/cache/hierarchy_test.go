package cache

import (
	"fmt"
	"math/rand"
	"testing"
)

// fakeBackend records requests and completes reads on demand.
type fakeBackend struct {
	reads  []uint64
	writes []uint64
	dones  []func(int64)
	full   bool
}

func (f *fakeBackend) EnqueueRead(addr uint64, done func(int64)) bool {
	if f.full {
		return false
	}
	f.reads = append(f.reads, addr)
	f.dones = append(f.dones, done)
	return true
}

func (f *fakeBackend) EnqueueWrite(addr uint64) bool {
	f.writes = append(f.writes, addr)
	return true
}

func (f *fakeBackend) completeAll(at int64) {
	for _, d := range f.dones {
		d(at)
	}
	f.dones = nil
}

type fixedClock struct{}

func (fixedClock) CPUOfDRAM(d int64) int64 { return d * 10 / 3 }

func testHier(cores int) (*Hierarchy, *fakeBackend) {
	b := &fakeBackend{}
	cfg := DefaultHierarchyConfig(cores)
	cfg.PrefetchDegree = 0 // deterministic traffic in unit tests
	return NewHierarchy(cfg, b, fixedClock{}), b
}

func TestMissGoesToMemoryThenHits(t *testing.T) {
	h, b := testHier(1)
	var completed int64 = -1
	res, _ := h.Access(0, 0x1000, false, 0, func(c int64) { completed = c })
	if res != Queued {
		t.Fatalf("first access = %v, want Queued", res)
	}
	if len(b.reads) != 1 {
		t.Fatalf("reads = %d, want 1", len(b.reads))
	}
	b.completeAll(300)
	if completed != 300*10/3+h.cfg.LLC.LatencyCPU {
		t.Errorf("completion cycle = %d", completed)
	}
	res, lat := h.Access(0, 0x1000, false, 0, nil)
	if res != Hit || lat != h.cfg.L1.LatencyCPU {
		t.Errorf("second access = %v/%d, want L1 hit", res, lat)
	}
}

func TestMSHRMerging(t *testing.T) {
	h, b := testHier(2)
	n := 0
	h.Access(0, 0x2000, false, 0, func(int64) { n++ })
	h.Access(1, 0x2000, false, 0, func(int64) { n++ })
	if len(b.reads) != 1 {
		t.Fatalf("same-block misses issued %d memory reads, want 1 (merged)", len(b.reads))
	}
	b.completeAll(100)
	if n != 2 {
		t.Errorf("%d waiters completed, want 2", n)
	}
}

func TestStoreMissAllocatesAndReportsHit(t *testing.T) {
	h, b := testHier(1)
	res, _ := h.Access(0, 0x3000, true, 0, nil)
	if res != Hit {
		t.Fatalf("store miss = %v, want Hit (store buffer hides latency)", res)
	}
	if len(b.reads) != 1 {
		t.Fatalf("write-allocate fetch missing: %d reads", len(b.reads))
	}
	b.completeAll(50)
	// The filled line must be dirty: evicting it forces a writeback.
	blk := uint64(0x3000) / 64
	if d := h.l1[0].Invalidate(blk); !d {
		t.Error("store-allocated line not dirty in L1")
	}
}

func TestL1MSHRLimitStalls(t *testing.T) {
	h, b := testHier(1)
	limit := h.cfg.L1.MSHRs
	for i := 0; i < limit; i++ {
		res, _ := h.Access(0, uint64(0x100000+i*64), false, 0, nil)
		if res != Queued {
			t.Fatalf("access %d = %v, want Queued", i, res)
		}
	}
	res, _ := h.Access(0, 0x900000, false, 0, nil)
	if res != Stall {
		t.Errorf("access beyond L1 MSHR limit = %v, want Stall", res)
	}
	b.completeAll(10)
	res, _ = h.Access(0, 0x900000, false, 0, nil)
	if res != Queued {
		t.Errorf("after fills, access = %v, want Queued", res)
	}
}

func TestBackendFullStalls(t *testing.T) {
	h, b := testHier(1)
	b.full = true
	res, _ := h.Access(0, 0x4000, false, 0, nil)
	if res != Stall {
		t.Errorf("access with full controller queue = %v, want Stall", res)
	}
}

func TestDirtyEvictionReachesMemory(t *testing.T) {
	h, b := testHier(1)
	llcBlocks := uint64(h.cfg.LLC.SizeBytes / h.cfg.LLC.BlockBytes)
	// Dirty one block, then stream enough blocks through to evict it
	// from every level.
	h.Access(0, 0, true, 0, nil)
	b.completeAll(1)
	for i := uint64(1); i <= llcBlocks+llcBlocks/16; i++ {
		h.Access(0, i*64, false, 0, nil)
		b.completeAll(int64(i))
	}
	if len(b.writes) == 0 {
		t.Error("dirty block never written back to memory")
	}
}

func TestPrefetcherIssuesOnStride(t *testing.T) {
	b := &fakeBackend{}
	cfg := DefaultHierarchyConfig(1)
	cfg.PrefetchDegree = 2
	h := NewHierarchy(cfg, b, fixedClock{})
	// Three strided misses establish confidence; further misses prefetch.
	for i := 0; i < 6; i++ {
		h.Access(0, uint64(i)*64*4+0x10000, false, 0, nil)
		b.completeAll(int64(i))
	}
	if h.Prefetches == 0 {
		t.Error("stride prefetcher never fired on a regular stream")
	}
}

// TestL2PrivateHitKeepsEpoch pins the L2 half of the narrowed epoch
// argument (see ver): an L2 hit whose fill cascade stays inside the
// hitting core's private L1/L2 must not advance Ver — neither when the
// L1 absorbs the block into an invalid way, nor when the L1's dirty
// victim is re-absorbed in place by the core's own L2.
func TestL2PrivateHitKeepsEpoch(t *testing.T) {
	h, _ := testHier(1)

	// Invalid-way case: block resident in L2 only, L1 set empty.
	h.l2[0].Insert(100, false)
	v0 := h.Ver()
	res, lat := h.Access(0, 100*64, false, 0, nil)
	if res != Hit || lat != h.cfg.L2.LatencyCPU {
		t.Fatalf("access = %v/%d, want L2 hit", res, lat)
	}
	if h.Ver() != v0 {
		t.Fatalf("private L2 hit moved the epoch: %d -> %d", v0, h.Ver())
	}

	// Dirty-victim-absorbed case: the L1's victim is dirty but resident
	// in the core's own L2, so the castout updates it in place.
	l1sets := uint64(h.cfg.L1.Sets())
	dirty := uint64(200)              // will become the L1 victim
	b := dirty + l1sets               // same L1 set, different L2 set
	h.l2[0].Insert(dirty, false)      // castout target, in own L2
	h.l2[0].Insert(b, false)          // the block to hit
	h.l1[0].Insert(dirty, true)       // dirty, oldest in its L1 set
	for i := uint64(2); i <= 8; i++ { // fill the set; dirty is LRU
		h.l1[0].Insert(dirty+i*l1sets, false)
	}
	v0 = h.Ver()
	res, lat = h.Access(0, b*64, false, 0, nil)
	if res != Hit || lat != h.cfg.L2.LatencyCPU {
		t.Fatalf("access = %v/%d, want L2 hit", res, lat)
	}
	if h.Ver() != v0 {
		t.Fatalf("absorbed-castout L2 hit moved the epoch: %d -> %d", v0, h.Ver())
	}
	if !h.l1[0].Contains(b) || !h.l2[0].Contains(dirty) {
		t.Fatal("fill cascade did not land where expected")
	}
}

// TestL2SharedCascadeBumpsEpoch is the boundary of the narrowing: an L2
// hit whose castout chain spills a dirty L2 victim into the shared LLC
// must advance Ver exactly once — it changed LLC content, which a
// probe-stalled core's retry outcome can depend on.
func TestL2SharedCascadeBumpsEpoch(t *testing.T) {
	h, _ := testHier(1)
	l1sets := uint64(h.cfg.L1.Sets())
	l2sets := uint64(h.cfg.L2.Sets())

	dirty := uint64(300)  // L1's dirty victim, NOT in L2
	b := dirty + l1sets*2 // same L1 set (and a different L2 set)
	h.l2[0].Insert(b, false)
	h.l1[0].Insert(dirty, true)
	for i := uint64(1); i <= 7; i++ { // fill the rest; dirty is LRU
		h.l1[0].Insert(b+i*l1sets, false)
	}
	// Fill dirty's entire L2 set with dirty lines, so inserting the
	// castout must evict one into the LLC.
	for i := uint64(0); i < uint64(h.cfg.L2.Ways); i++ {
		h.l2[0].Insert(dirty+(i+1)*l2sets, true)
	}
	v0 := h.Ver()
	res, lat := h.Access(0, b*64, false, 0, nil)
	if res != Hit || lat != h.cfg.L2.LatencyCPU {
		t.Fatalf("access = %v/%d, want L2 hit", res, lat)
	}
	if h.Ver() != v0+1 {
		t.Fatalf("shared-cascade L2 hit moved the epoch by %d, want 1", h.Ver()-v0)
	}
}

// TestProbeRetrySkipAcrossPrivateL2Hits is the probe-retry regression
// the narrowing must uphold: while a core sits probe-stalled, another
// core's private L2 hits leave the epoch unmoved AND the stalled
// retry's outcome genuinely unchanged — so a scheduler that skips the
// retry while the epoch holds still is exact. A shared-path access
// then moves the epoch, signaling the retry must re-run.
func TestProbeRetrySkipAcrossPrivateL2Hits(t *testing.T) {
	h, b := testHier(2)

	// Core 1 probe-stalls: the backend refuses its demand read.
	b.full = true
	res, _ := h.Access(1, 0x40000, false, 0, nil)
	if res != Stall {
		t.Fatalf("access with full backend = %v, want Stall", res)
	}
	v0 := h.Ver()

	// Core 0 performs private L2 hits; the epoch must hold still and
	// core 1's retry must still stall (skipping it was sound).
	h.l2[0].Insert(7, false)
	h.l2[0].Insert(8, false)
	for _, blk := range []uint64{7, 8} {
		if res, _ := h.Access(0, blk*64, false, 0, nil); res != Hit {
			t.Fatalf("core 0 access = %v, want Hit", res)
		}
	}
	if h.Ver() != v0 {
		t.Fatalf("private L2 hits moved the epoch: %d -> %d", v0, h.Ver())
	}
	if res, _ := h.Access(1, 0x40000, false, 0, nil); res != Stall {
		t.Fatalf("retry after private hits = %v, want Stall", res)
	}

	// A shared-path access (an LLC miss that queues) moves the epoch.
	b.full = false
	if res, _ := h.Access(0, 0x80000, false, 0, nil); res != Queued {
		t.Fatal("expected a queued LLC miss")
	}
	if h.Ver() == v0 {
		t.Fatal("shared-path access left the epoch unmoved")
	}
}

// TestAccessLocalMatchesAccess differentially pins the split API
// (DESIGN.md §2.10): replaying a random two-core access stream through
// AccessLocal-then-AccessReplay-on-Defer (the split front-end's exact
// commit sequence, including the memoized private-miss skip) must leave
// a hierarchy bit-identical to replaying it through Access alone — same
// results and latencies, same hit/miss counters, same epoch, same
// backend traffic. Prefetch stays enabled so deferred demand accesses
// merge into in-flight prefetch MSHRs.
func TestAccessLocalMatchesAccess(t *testing.T) {
	build := func() (*Hierarchy, *fakeBackend) {
		b := &fakeBackend{}
		return NewHierarchy(DefaultHierarchyConfig(2), b, fixedClock{}), b
	}
	ha, ba := build()
	hb, bb := build()
	snap := func(h *Hierarchy, b *fakeBackend) string {
		out := ""
		for c := 0; c < 2; c++ {
			out += fmt.Sprintf("l1[%d]=%d/%d l2[%d]=%d/%d ", c, h.l1[c].Hits, h.l1[c].Misses, c, h.l2[c].Hits, h.l2[c].Misses)
		}
		return out + fmt.Sprintf("llc=%d/%d ver=%d demand=%d pref=%d reads=%d writes=%d",
			h.llc.Hits, h.llc.Misses, h.Ver(), h.Demand, h.Prefetches, len(b.reads), len(b.writes))
	}
	rng := rand.New(rand.NewSource(0xACCE55))
	for i := 0; i < 20_000; i++ {
		core := rng.Intn(2)
		addr := uint64(rng.Intn(1<<20)) &^ 7
		write := rng.Intn(4) == 0
		ra, la := ha.Access(core, addr, write, 0, nil)
		rb, lb := hb.AccessLocal(core, addr, write)
		if rb == Defer {
			rb, lb = hb.AccessReplay(core, addr, write, 0, nil)
		}
		if ra != rb || la != lb {
			t.Fatalf("access %d (core %d addr %#x write %v): Access=%v/%d split=%v/%d",
				i, core, addr, write, ra, la, rb, lb)
		}
		if i%512 == 0 {
			ba.completeAll(int64(i))
			bb.completeAll(int64(i))
			if sa, sb := snap(ha, ba), snap(hb, bb); sa != sb {
				t.Fatalf("state diverged at access %d:\n direct: %s\n split:  %s", i, sa, sb)
			}
		}
	}
	ba.completeAll(1 << 30)
	bb.completeAll(1 << 30)
	if sa, sb := snap(ha, ba), snap(hb, bb); sa != sb {
		t.Fatalf("final state diverged:\n direct: %s\n split:  %s", sa, sb)
	}
}
