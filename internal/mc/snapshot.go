package mc

import (
	"chopim/internal/dram"
	"chopim/internal/stats"
)

// reqState is one serialized queue entry. Done closures are not
// serialized; restore rebuilds them through the caller's resolver from
// (write, addr, tag) — a host read belongs to exactly one pending LLC
// miss, and a tagged write is an NDA launch packet.
type reqState struct {
	addr    uint64
	daddr   dram.Addr
	write   bool
	arrive  int64
	seq     int64
	tag     uint64
	hasDone bool
}

func reqStateOf(r *Request) reqState {
	return reqState{
		addr: r.Addr, daddr: r.DAddr, write: r.Write, arrive: r.Arrive,
		seq: r.seq, tag: r.Tag, hasDone: r.Done != nil,
	}
}

// ControllerState is an opaque deep copy of a Controller's mutable
// state: both transaction queues in age order, the overflow ring,
// drain/sequence/version scalars, statistics, and the idle histograms.
// The scheduling caches (calendar, bank entries, fused horizon hint)
// are NOT serialized: they only control which cycles may be skipped,
// every skip is individually proven a no-op, and a restored queue
// rebuilds them conservatively (all banks parked ready, stamps forcing
// resync), so the restored controller makes decision-identical choices.
type ControllerState struct {
	rq, wq   []reqState
	overflow []reqState

	drain       bool
	seqGen      int64
	ver, qver   uint64
	issuedRank  int
	issuedIsCol bool
	cross       bool

	idleHists []stats.IdleHist

	readsIssued, writesIssued int64
	actsIssued, presIssued    int64
	readLatencySum            int64
	drains, refreshes         int64
	nextRefresh               int64
}

// Snapshot captures the controller's full mutable state. It must be
// taken between ticks (with any completion sink drained).
func (c *Controller) Snapshot() *ControllerState {
	st := &ControllerState{
		drain: c.drain, seqGen: c.seqGen, ver: c.ver, qver: c.qver,
		issuedRank: c.issuedRank, issuedIsCol: c.issuedIsCol, cross: c.cross,
		idleHists:   append([]stats.IdleHist(nil), c.IdleHists...),
		readsIssued: c.ReadsIssued, writesIssued: c.WritesIssued,
		actsIssued: c.ActsIssued, presIssued: c.PresIssued,
		readLatencySum: c.ReadLatencySum,
		drains:         c.Drains, refreshes: c.Refreshes, nextRefresh: c.nextRefresh,
	}
	for r := c.rq.head; r != nil; r = r.qnext {
		st.rq = append(st.rq, reqStateOf(r))
	}
	for r := c.wq.head; r != nil; r = r.qnext {
		st.wq = append(st.wq, reqStateOf(r))
	}
	for i := 0; i < c.overflow.Len(); i++ {
		st.overflow = append(st.overflow, reqStateOf(c.overflow.At(i)))
	}
	return st
}

// Restore overwrites the controller's state with the snapshot. The
// controller must have been built with the same config and geometry.
// resolve maps a request that had a Done closure back to one: reads
// resolve through the cache hierarchy's pending-miss table, tagged
// writes through the NDA runtime's launch registry (the sim package
// wires both). Requests whose snapshot recorded no Done get nil.
func (c *Controller) Restore(st *ControllerState, resolve func(write bool, addr uint64, tag uint64) func(int64)) {
	// Release any live requests, then rebuild the queues from scratch
	// (re-init reallocates the bucket/calendar arrays; restore is not a
	// steady-state path).
	for r := c.rq.head; r != nil; {
		next := r.qnext
		c.release(r)
		r = next
	}
	for r := c.wq.head; r != nil; {
		next := r.qnext
		c.release(r)
		r = next
	}
	for c.overflow.Len() > 0 {
		c.release(c.overflow.Pop())
	}
	c.rq = reqQueue{}
	c.wq = reqQueue{}
	c.rq.init(c.mem.Geom.Channels*c.mem.Geom.Ranks, c.bpr, c.mem.Geom.Ranks)
	c.wq.init(c.mem.Geom.Channels*c.mem.Geom.Ranks, c.bpr, c.mem.Geom.Ranks)

	fill := func(q *reqQueue, reqs []reqState) {
		for i := range reqs {
			s := &reqs[i]
			var done func(int64)
			if s.hasDone && resolve != nil {
				done = resolve(s.write, s.addr, s.tag)
			}
			r := c.alloc(s.addr, s.daddr, s.write, s.arrive, done)
			r.seq = s.seq
			r.Tag = s.tag
			q.push(r)
		}
	}
	fill(&c.rq, st.rq)
	fill(&c.wq, st.wq)
	for i := range st.overflow {
		s := &st.overflow[i]
		var done func(int64)
		if s.hasDone && resolve != nil {
			done = resolve(s.write, s.addr, s.tag)
		}
		r := c.alloc(s.addr, s.daddr, s.write, s.arrive, done)
		r.seq = s.seq
		r.Tag = s.tag
		c.overflow.Push(r)
	}

	c.drain, c.seqGen, c.ver, c.qver = st.drain, st.seqGen, st.ver, st.qver
	c.issuedRank, c.issuedIsCol, c.cross = st.issuedRank, st.issuedIsCol, st.cross
	copy(c.IdleHists, st.idleHists)
	c.ReadsIssued, c.WritesIssued = st.readsIssued, st.writesIssued
	c.ActsIssued, c.PresIssued = st.actsIssued, st.presIssued
	c.ReadLatencySum = st.readLatencySum
	c.Drains, c.Refreshes, c.nextRefresh = st.drains, st.refreshes, st.nextRefresh
	c.hintValid = false // horizons re-derive from the rebuilt calendar
}
