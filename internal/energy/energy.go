// Package energy estimates memory-system power and energy from event
// counts using the paper's Table II constants (originally derived from
// CACTI, CACTI-3DD, and CACTI-IO).
package energy

import "chopim/internal/dram"

// Constants from Table II.
const (
	ActivateJ     = 1.0e-9   // per ACT
	PEBitJ        = 11.3e-12 // PE (internal) read/write, per bit
	HostBitJ      = 25.7e-12 // host (channel) read/write, per bit
	FMAJ          = 20e-12   // per PE FMA operation
	BufferAccessJ = 20e-12   // per PE buffer access
	BufferLeakW   = 11e-3    // per PE buffer (scratchpad identical)
)

// Counts are the event totals of one simulation window.
type Counts struct {
	Acts       int64
	HostBlocks int64 // host column commands (64B each)
	NDABlocks  int64 // NDA column commands (64B each)
	FMAs       int64 // PE fused multiply-adds
	BufAccess  int64 // PE buffer accesses
	PEs        int   // rank NDAs with buffers powered
	Seconds    float64
}

// FromMem extracts DRAM event counts from the device model, leaving the
// PE-side counters for the caller.
func FromMem(m *dram.Mem, seconds float64, pes int) Counts {
	return FromCmdCounts(m.Counts(), seconds, pes)
}

// FromCmdCounts builds Counts from an explicit command-counter snapshot
// (useful for windows measured as deltas of dram.Mem.Counts, and for
// tests).
func FromCmdCounts(c dram.CmdCounts, seconds float64, pes int) Counts {
	return Counts{
		Acts:       c.ACT,
		HostBlocks: c.RD + c.WR,
		NDABlocks:  c.NDARD + c.NDAWR,
		PEs:        pes,
		Seconds:    seconds,
	}
}

// Breakdown reports energy per component in joules plus average power.
type Breakdown struct {
	ActivateJ float64
	HostIOJ   float64
	NDAIOJ    float64
	ComputeJ  float64
	BufferJ   float64
	LeakageJ  float64
	TotalJ    float64
	AvgPowerW float64
}

// Compute evaluates the model.
func Compute(c Counts) Breakdown {
	const bitsPerBlock = dram.BlockBytes * 8
	b := Breakdown{
		ActivateJ: float64(c.Acts) * ActivateJ,
		HostIOJ:   float64(c.HostBlocks) * bitsPerBlock * HostBitJ,
		NDAIOJ:    float64(c.NDABlocks) * bitsPerBlock * PEBitJ,
		ComputeJ:  float64(c.FMAs) * FMAJ,
		BufferJ:   float64(c.BufAccess) * BufferAccessJ,
	}
	// Buffer + scratchpad leakage per PE.
	b.LeakageJ = 2 * BufferLeakW * float64(c.PEs) * c.Seconds
	b.TotalJ = b.ActivateJ + b.HostIOJ + b.NDAIOJ + b.ComputeJ + b.BufferJ + b.LeakageJ
	if c.Seconds > 0 {
		b.AvgPowerW = b.TotalJ / c.Seconds
	}
	return b
}
