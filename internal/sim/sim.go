// Package sim composes the full simulated system of the paper's
// methodology section: multi-core host with cache hierarchy, per-channel
// FR-FCFS memory controllers, the DDR4 device model, the NDA engine, and
// the Chopim runtime, all advanced on the 1.2 GHz DRAM bus clock with
// cores credited 10/3 CPU cycles per DRAM cycle (4 GHz / 1.2 GHz).
package sim

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync/atomic"
	"time"

	"chopim/internal/addrmap"
	"chopim/internal/cache"
	"chopim/internal/cpu"
	"chopim/internal/dram"
	"chopim/internal/faults"
	"chopim/internal/mc"
	"chopim/internal/nda"
	"chopim/internal/ndart"
	"chopim/internal/osmem"
	"chopim/internal/workload"
)

// CPUCyclesPerDRAM expresses the 4 GHz : 1.2 GHz clock ratio as the
// rational 10/3.
const (
	cpuCredit  = 10
	cpuDivisor = 3
)

// notSurveyed marks a stashed wake bound the survey did not derive
// (it early-outed on an active core); the tick recomputes it.
const notSurveyed = int64(-1)

// DRAMHz is the DDR4-2400 bus clock.
const DRAMHz = 1.2e9

// Config assembles one system instance.
type Config struct {
	Geom   dram.Geometry
	Timing dram.Timing

	// Partitioned selects the proposed Fig 4b mapping with
	// ReservedBanks banks per rank set aside for the shared region.
	Partitioned   bool
	ReservedBanks int

	// MixIndex selects the Table II host application mix; -1 disables
	// host traffic entirely.
	MixIndex int

	// HostProfiles, when non-empty, overrides MixIndex with an explicit
	// per-core workload list (one core per profile). Used by stress and
	// equivalence harnesses that need traffic shapes outside Table II.
	HostProfiles []workload.Profile

	Core cpu.Config
	MC   mc.Config
	NDA  nda.Config

	// MaxBlocksPerInstr is the NDA vector-instruction granularity
	// (cache blocks per operand per instruction; 0 = unlimited).
	MaxBlocksPerInstr int
	// ModelLaunches models control-register launch packets.
	ModelLaunches bool

	// SimWorkers sets the executor's worker count for the fast path
	// (RunFast/StepFast). Workers fan both parallel phases of each
	// executed tick: the per-channel memory phase (one domain at a time
	// per worker) and the core-local part of every CPU sub-cycle in
	// the front-end (one core at a time per worker; DESIGN.md §2.10).
	// 0 or 1 runs everything inline, negative means one worker per
	// available CPU (the same convention as the experiment runner's
	// Parallel), and values above max(channels, cores) are clamped.
	// Results are bit-identical for every worker count — domains share
	// no mutable state during the memory phase, cores touch only their
	// private ROB/L1/L2 during the local sub-cycle part, and all
	// cross-channel and shared-path effects are applied in a canonical
	// order at the serial commit points. The reference Run path never
	// uses workers. Call Close when done with a system built with
	// SimWorkers > 1 to release the worker goroutines.
	SimWorkers int

	// ProfileDomains enables cheap per-domain phase-span counters on the
	// fast path: every executed tick's per-channel memory phase and
	// front end (commit, runtime, CPU-credit loop) record their
	// wall-clock span into power-of-two-nanosecond histograms
	// (PhaseSpans), with each CPU sub-cycle additionally split into its
	// core-local and shared-commit parts — the directly measured
	// parallelizable fraction of the front end. The executor's ceiling
	// is the slowest domain (or core) per round, so the histograms show
	// whether a workload is bounded by one hot channel, by the
	// sub-cycle commit loop, or by nothing the workers can help with.
	// Profiled runs take the split front-end path even at one worker
	// (bit-identical by construction, pinned by
	// TestProfileDomainsNeutral). Off by default: the tick loop then
	// pays a single nil check per phase.
	ProfileDomains bool

	Seed int64

	// CheckInvariants validates cross-layer conservation invariants at
	// every commit-phase barrier (MSHR accounting vs the LLC pending
	// table, controller queue occupancy vs bank buckets vs calendar
	// membership, calendar lower-bound soundness against the rescan
	// oracle, mailboxes drained empty). A violation panics with an
	// *InvariantError — corrupted state is not recoverable — which the
	// experiment runner's per-point recovery quarantines. Zero cost when
	// off: the commit path pays one bool check per tick.
	CheckInvariants bool

	// WatchdogWindow arms the forward-progress watchdog on the fast
	// path: if this many simulated cycles elapse across executed ticks
	// with no retirement, command issue, or NDA progress while work is
	// pending, StepFast returns a LivelockError with a diagnostic dump.
	// 0 disables the watchdog (the Never-with-pending-work detector is
	// always on — it costs nothing).
	WatchdogWindow int64

	// MaxCycles, when positive, is an absolute DRAM-cycle deadline:
	// StepFast returns a DeadlineError once Now() reaches it, leaving
	// all counters readable for partial statistics.
	MaxCycles int64

	// MaxWallClock, when positive, bounds the run's host wall-clock
	// time; checked every few hundred wakes (one time.Now per check).
	MaxWallClock time.Duration

	// Cancel, when non-nil, is a cooperative stop flag: once it reads
	// true, StepFast returns a sticky *CanceledError, leaving all
	// counters readable for partial statistics and the system at a
	// quiescent (checkpointable) boundary. Checked on the same
	// rate-limited cadence as MaxWallClock, so arming it does not
	// perturb the steady-state fast path. Drivers set the flag from
	// signal handlers or peer goroutines; the field itself is ignored
	// by snapshots, fingerprints, and cache keys.
	Cancel *atomic.Bool
}

// PhaseSpans is the domain-phase profiling result (Config.
// ProfileDomains): per-channel memory-phase tick-span histograms and
// front-end span histograms. Bucket i counts spans in [2^(i-1), 2^i)
// nanoseconds. Front covers the whole post-barrier tick portion
// (commit + runtime + CPU window) per executed tick; FrontLocal and
// FrontShared split each CPU sub-cycle of that window into its
// core-local part (private-hit ticks — the fraction the core-sharded
// executor parallelizes, DESIGN.md §2.10) and its serial commit part
// (deferred shared-path accesses plus probe-stall retries), one
// histogram entry per executed sub-cycle. Profiled runs always take
// the split front-end path — inline at one worker — so the split is
// measurable before and after sharding, on any machine.
type PhaseSpans struct {
	Domains     [][]int64 // [channel][bucket]
	Front       []int64   // commit + runtime + CPU phases, per tick
	FrontLocal  []int64   // core-local sub-cycle part, per sub-cycle
	FrontShared []int64   // sub-cycle commit loop, per sub-cycle
}

// phaseBuckets bounds the histograms: 2^24 ns ≈ 16 ms per tick-phase,
// far beyond any real span.
const phaseBuckets = 25

// bucketNS files a span into its power-of-two bucket.
func bucketNS(d time.Duration) int {
	b := bits.Len64(uint64(d.Nanoseconds()))
	if b >= phaseBuckets {
		b = phaseBuckets - 1
	}
	return b
}

// Merge accumulates o into p, growing the domain list as needed (the
// experiment runner merges points with differing channel counts).
func (p *PhaseSpans) Merge(o *PhaseSpans) {
	if o == nil {
		return
	}
	for len(p.Domains) < len(o.Domains) {
		p.Domains = append(p.Domains, make([]int64, phaseBuckets))
	}
	if p.Front == nil {
		p.Front = make([]int64, phaseBuckets)
	}
	if p.FrontLocal == nil {
		p.FrontLocal = make([]int64, phaseBuckets)
	}
	if p.FrontShared == nil {
		p.FrontShared = make([]int64, phaseBuckets)
	}
	for d, hist := range o.Domains {
		for b, n := range hist {
			p.Domains[d][b] += n
		}
	}
	for b, n := range o.Front {
		p.Front[b] += n
	}
	for b, n := range o.FrontLocal {
		p.FrontLocal[b] += n
	}
	for b, n := range o.FrontShared {
		p.FrontShared[b] += n
	}
}

// PhaseSpans returns the accumulated phase-span histograms, or nil when
// the system was built without Config.ProfileDomains. The system's
// workers write only their own domain's slots, so reading is safe once
// the system is quiescent (between Run/RunFast calls).
func (s *System) PhaseSpans() *PhaseSpans { return s.prof }

// Default returns the paper's baseline configuration running the given
// mix with bank partitioning enabled.
func Default(mix int) Config {
	return Config{
		Geom:          dram.DefaultGeometry(),
		Timing:        dram.DDR42400(),
		Partitioned:   true,
		ReservedBanks: 1,
		MixIndex:      mix,
		Core:          cpu.DefaultConfig(),
		MC:            mc.DefaultConfig(),
		NDA:           nda.DefaultConfig(),
		ModelLaunches: true,
		Seed:          1,
	}
}

// System is one composed simulation instance.
type System struct {
	Cfg    Config
	Mem    *dram.Mem
	Mapper addrmap.Mapper
	OS     *osmem.OS
	MCs    []*mc.Controller
	Router *mc.Router
	Hier   *cache.Hierarchy
	Cores  []*cpu.Core
	NDA    *nda.Engine
	RT     *ndart.Runtime

	// gens holds each core's trace generator (index-aligned with Cores);
	// retained for checkpointing — the cores themselves treat the
	// generator as an opaque instruction source.
	gens []*workload.Generator

	dramCycle int64
	cpuCycle  int64
	credit    int

	// Wake-schedule caches for the fast path (StepFast/RunFast); Run
	// never consults them. Each controller's next-event bound is cached
	// until the controller itself is ticked (mcStale), an external call
	// mutates it (Ver), or a DRAM command moves its channel's timing
	// horizons (Mem.ChVer — NDA traffic shifts horizons the controller
	// schedules against). coreDue is per-tick scratch for the dispatch
	// loop; coreEpoch records the memory epoch (hierarchy version plus
	// controller versions) under which each probe-stalled core last
	// evaluated its retry, so the retry re-runs only when the epoch
	// moves.
	mcWake    []int64
	mcVer     []uint64
	mcMemVer  []uint64
	mcStale   []bool
	coreDue   []bool
	coreEpoch []uint64

	// coreParked is per-sub-cycle scratch for the sharded front-end
	// (DESIGN.md §2.10): core i's slot is set when its TickDeferred
	// parked on a shared-path access and the sub-cycle commit loop owes
	// it a FinishTick. Written only by the goroutine running core i's
	// coreSubTick, read by the coordinator after the round barrier.
	coreParked []bool

	// doms holds one channel domain per memory channel: the unit of
	// parallelism in the memory phase. Domain d owns MCs[d], the rank
	// NDAs of channel d, and channel d's share of Mem; its mailbox
	// (outbox) collects the completion callbacks the domain's tick would
	// otherwise have invoked inline — fills into the shared cache
	// hierarchy, copy-pump read completions, control-launch
	// acknowledgements, NDA op completions — for the serial commit phase
	// to apply in canonical (channel, FIFO) order.
	doms []domain

	// stepNDAWake carries the survey's per-channel NDA bounds into the
	// same step's tick (notSurveyed when the survey early-outed before
	// deriving them); stepRTWake is the runtime bound.
	stepNDAWake []int64
	stepRTWake  int64

	// exec is the work-stealing worker pool (nil when SimWorkers <= 1
	// or the system has fewer than two domains AND fewer than two
	// cores); started lazily by the first fast-path tick. It fans both
	// the per-tick channel-domain memory phase and the per-sub-cycle
	// core-local front-end rounds. domOrder, when non-nil, permutes the
	// serial memory-phase dispatch order (test hook: domains are
	// independent, so any order must be bit-identical); coreOrder does
	// the same for the core-local part of each CPU sub-cycle (and, like
	// the profiler, forces the split front-end path at one worker).
	exec      *domainExec
	execInit  bool
	domOrder  []int
	coreOrder []int

	// prof collects phase-span histograms when Config.ProfileDomains is
	// set (nil otherwise; see PhaseSpans).
	prof *PhaseSpans

	// robust holds the watchdog/deadline bookkeeping (robust.go); not
	// part of checkpointed state.
	robust robustState

	measStartDRAM int64
	measStartCPU  int64
	retiredAtMeas []int64
}

// domain is one channel's execution domain (see System.doms).
type domain struct {
	outbox []doneEv
}

// doneEv is one deferred completion callback and the cycle argument it
// must be invoked with.
type doneEv struct {
	fn func(int64)
	at int64
}

// push appends a deferred completion (the mailbox write side; called
// only from the owning domain's memory-phase tick).
func (d *domain) push(fn func(int64), at int64) {
	d.outbox = append(d.outbox, doneEv{fn: fn, at: at})
}

// New builds and wires a system. Invalid user-reachable configuration
// (geometry, timing, controller queues, partition reservation) is
// returned as an error, not a panic: every figure point flows through
// here, and a sweep must be able to reject a bad point without dying.
func New(cfg Config) (*System, error) {
	base, err := addrmap.NewSkylakeLikeChecked(cfg.Geom)
	if err != nil {
		return nil, fmt.Errorf("sim: invalid config: %w", err)
	}
	var mapper addrmap.Mapper = base
	if cfg.Partitioned {
		rb := cfg.ReservedBanks
		if rb <= 0 {
			rb = 1
		}
		part, err := addrmap.NewPartitionedChecked(base, rb)
		if err != nil {
			return nil, fmt.Errorf("sim: invalid config: %w", err)
		}
		mapper = part
	}
	if err := cfg.MC.Validate(); err != nil {
		return nil, fmt.Errorf("sim: invalid config: %w", err)
	}
	mem, err := dram.NewChecked(cfg.Geom, cfg.Timing)
	if err != nil {
		return nil, fmt.Errorf("sim: invalid config: %w", err)
	}
	os, err := osmem.NewOS(mapper)
	if err != nil {
		return nil, err
	}
	s := &System{Cfg: cfg, Mem: mem, Mapper: mapper, OS: os}

	for ch := 0; ch < cfg.Geom.Channels; ch++ {
		s.MCs = append(s.MCs, mc.NewController(cfg.MC, s.Mem, mapper, ch))
	}
	s.Router = mc.NewRouter(s.MCs, mapper, func() int64 { return s.dramCycle })

	if cfg.MixIndex >= 0 || len(cfg.HostProfiles) > 0 {
		profs := cfg.HostProfiles
		if len(profs) == 0 {
			var err error
			if profs, err = workload.MixProfiles(cfg.MixIndex); err != nil {
				return nil, err
			}
		}
		hcfg := cache.DefaultHierarchyConfig(len(profs))
		if err := hcfg.Validate(); err != nil {
			return nil, fmt.Errorf("sim: invalid config: %w", err)
		}
		s.Hier = cache.NewHierarchy(hcfg, s.Router, s)
		for i, p := range profs {
			fp := p.Footprint
			region, err := os.AllocHost(fp)
			if err != nil {
				return nil, fmt.Errorf("sim: core %d footprint: %w", i, err)
			}
			gen := workload.NewGenerator(p, region, fp, cfg.Seed+int64(i)*7919)
			s.gens = append(s.gens, gen)
			s.Cores = append(s.Cores, cpu.NewCore(i, cfg.Core, gen, s.Hier))
		}
	}

	s.NDA = nda.NewEngine(cfg.NDA, s.Mem, s.MCs)
	s.RT = ndart.New(os, s.NDA, s.MCs, func() int64 { return s.dramCycle })
	s.RT.MaxBlocksPerInstr = cfg.MaxBlocksPerInstr
	s.RT.ModelLaunches = cfg.ModelLaunches
	s.retiredAtMeas = make([]int64, len(s.Cores))
	s.mcWake = make([]int64, len(s.MCs))
	s.mcVer = make([]uint64, len(s.MCs))
	s.mcMemVer = make([]uint64, len(s.MCs))
	s.mcStale = make([]bool, len(s.MCs))
	for i := range s.mcStale {
		s.mcStale[i] = true
	}
	s.coreDue = make([]bool, len(s.Cores))
	s.coreEpoch = make([]uint64, len(s.Cores))
	s.coreParked = make([]bool, len(s.Cores))
	s.stepNDAWake = make([]int64, len(s.MCs))
	if cfg.ProfileDomains {
		s.prof = &PhaseSpans{
			Front:       make([]int64, phaseBuckets),
			FrontLocal:  make([]int64, phaseBuckets),
			FrontShared: make([]int64, phaseBuckets),
		}
		for range s.MCs {
			s.prof.Domains = append(s.prof.Domains, make([]int64, phaseBuckets))
		}
	}
	s.doms = make([]domain, len(s.MCs))
	for d := range s.doms {
		dom := &s.doms[d]
		s.MCs[d].SetCompletionSink(dom.push)
		s.NDA.SetCompletionSink(d, dom.push)
	}
	return s, nil
}

// Close releases the executor's worker goroutines (a no-op for systems
// without a started executor). The system stays usable afterwards;
// subsequent fast-path ticks run the memory phase and the front-end
// sub-cycles inline.
func (s *System) Close() {
	if s.exec != nil {
		s.exec.stop()
		s.exec = nil
	}
	s.execInit = true // closed: do not restart workers
}

// rdSum counts read dequeues across controllers: the only controller
// activity that can change a probe-stalled core's retry outcome (read-
// queue space frees on a read issue; writes are never refused). Row
// commands and write drains cannot unstall a core, so they do not move
// the epoch.
func (s *System) rdSum() uint64 {
	var e uint64
	for _, c := range s.MCs {
		e += uint64(c.ReadsIssued)
	}
	return e
}

// CPUOfDRAM implements cache.Clock.
func (s *System) CPUOfDRAM(d int64) int64 { return d * cpuCredit / cpuDivisor }

// Now returns the current DRAM cycle.
func (s *System) Now() int64 { return s.dramCycle }

// CPUNow returns the current CPU cycle.
func (s *System) CPUNow() int64 { return s.cpuCycle }

// Tick advances the system one DRAM cycle through the three
// barrier-separated phases of the domain architecture (DESIGN.md §2.5):
//
//  1. Per-channel memory phase: each channel domain ticks its
//     controller and then its rank NDAs. Domains read and write only
//     channel-local state — completion callbacks that would cross a
//     domain boundary (cache fills, copy-read completions, launch
//     acknowledgements, NDA op completions) are deferred into the
//     domain's mailbox — so the phase's result is independent of
//     domain execution order.
//  2. Cross-channel commit: the mailboxes drain in canonical (channel,
//     FIFO) order, applying fills to the shared hierarchy (whose
//     writebacks enqueue into any channel's queues), completing
//     handles, and acknowledging launches; then the runtime's copy
//     pump runs.
//  3. CPU/cache front-end: the CPU-credit loop ticks cores against the
//     shared hierarchy, exactly as many sub-cycles as the clock ratio
//     owes this DRAM cycle.
//
// Run executes the phases serially — it is the oracle the executor is
// measured against — and RunFast with any worker count must produce
// bit-identical state.
func (s *System) Tick() {
	now := s.dramCycle
	for d := range s.doms {
		s.MCs[d].Tick(now)
		s.NDA.TickChannel(d, now)
	}
	s.commit()
	s.RT.Tick(now)
	s.credit += cpuCredit
	for s.credit >= cpuDivisor {
		s.credit -= cpuDivisor
		for _, core := range s.Cores {
			core.Tick(s.cpuCycle)
		}
		s.cpuCycle++
	}
	s.dramCycle++
}

// commit drains every domain mailbox in canonical (channel, FIFO)
// order: the cross-channel phase of the cycle. Deferred callbacks may
// enqueue into any controller (cache writebacks, copy writes) and
// mutate shared front-end state (hierarchy fills, runtime handles,
// launch acknowledgements into the domain's own engine); they run here,
// after the memory-phase barrier, so their effects land identically
// regardless of how the memory phase was scheduled. Callbacks never
// produce new mailbox entries (only a controller or NDA tick does), but
// the index loop tolerates growth defensively.
func (s *System) commit() {
	if s.Cfg.CheckInvariants {
		s.commitChecked()
		return
	}
	for d := range s.doms {
		dom := &s.doms[d]
		for i := 0; i < len(dom.outbox); i++ {
			ev := &dom.outbox[i]
			ev.fn(ev.at)
			ev.fn = nil // drop the closure reference for GC
		}
		dom.outbox = dom.outbox[:0]
	}
}

// Run advances n DRAM cycles one tick at a time (the reference path;
// RunFast must produce bit-identical state).
func (s *System) Run(n int64) {
	for i := int64(0); i < n; i++ {
		s.Tick()
	}
}

// dramOfCPU returns the DRAM cycle whose Tick executes CPU cycle w —
// the inverse of the credit arithmetic in Tick and skipIdle. For
// w <= CPUNow() it returns the current DRAM cycle.
func (s *System) dramOfCPU(w int64) int64 {
	if w <= s.cpuCycle {
		return s.dramCycle
	}
	// After k DRAM ticks, (credit + k*cpuCredit) / cpuDivisor CPU ticks
	// have run; the smallest k covering w is the ceiling below.
	need := cpuDivisor*(w-s.cpuCycle+1) - int64(s.credit)
	k := (need + cpuCredit - 1) / cpuCredit
	if k < 1 {
		k = 1
	}
	return s.dramCycle + k - 1
}

// NextEvent returns the earliest DRAM cycle >= Now() at which any
// component can change state. Every cycle in [Now(), NextEvent()) is
// provably idle: executing Tick there would neither issue a command nor
// mutate any observable counter (blocked cores' cycle counters are
// reproduced arithmetically by skipIdle), so the clock may jump over
// the window. Blocked cores contribute their exact wake cycle; a core
// blocked on an outstanding miss or a hierarchy Stall is woken by the
// controller event that resolves it, which the controller bounds
// report. It delegates to the cache-maintained survey StepFast uses —
// one implementation, so the two cannot drift; touching the wake
// caches is safe from any caller (they revalidate by version), and the
// stashed NDA/runtime bounds are re-derived by StepFast's own survey
// before any tick consumes them.
func (s *System) NextEvent() int64 { return s.nextEventFast() }

// mcNext returns controller i's cached next-event bound, recomputing it
// only when a version it was derived from moved (the controller's own,
// or its channel's DRAM command counter) or the controller was ticked
// since. An unexpired cached bound is served as-is and an expired one
// clamps to now (the controller is due) — both without touching the
// controller, so the FR-FCFS horizon sweep runs once per blocked
// window, not once per cycle.
func (s *System) mcNext(i int, now int64) int64 {
	c := s.MCs[i]
	if !s.mcStale[i] && s.mcWake[i] <= now {
		return now // due regardless of newer mutations; the tick refreshes
	}
	if s.mcStale[i] || s.mcVer[i] != c.Ver() || s.mcMemVer[i] != s.Mem.ChVer(c.Channel()) {
		s.mcWake[i] = c.NextEvent(now)
		s.mcVer[i] = c.Ver()
		s.mcMemVer[i] = s.Mem.ChVer(c.Channel())
		s.mcStale[i] = false
	}
	if s.mcWake[i] < now {
		return now
	}
	return s.mcWake[i]
}

// nextEventFast is NextEvent over the incrementally maintained wake
// schedule: identical values, but controller bounds come from the
// per-controller cache. The NDA and runtime bounds it derives are
// stashed (stepNDAWake/stepRTWake) for the tick that follows, valid
// because nothing mutates between the survey and the tick; a survey
// that early-outs on an active core stashes the not-surveyed sentinel
// instead.
func (s *System) nextEventFast() int64 {
	now := s.dramCycle
	for d := range s.stepNDAWake {
		s.stepNDAWake[d] = notSurveyed
	}
	s.stepRTWake = notSurveyed
	next := dram.Never
	for _, core := range s.Cores {
		w := core.NextEvent(s.cpuCycle)
		if w <= s.cpuCycle {
			return now
		}
		if w < dram.Never {
			if d := s.dramOfCPU(w); d < next {
				next = d
			}
		}
	}
	for i := range s.MCs {
		if t := s.mcNext(i, now); t < next {
			next = t
		}
	}
	for d := range s.doms {
		w := s.NDA.ChannelNextEvent(d, now)
		s.stepNDAWake[d] = w
		if w < next {
			next = w
		}
	}
	s.stepRTWake = s.RT.NextEvent(now)
	if s.stepRTWake < next {
		next = s.stepRTWake
	}
	if next < now {
		next = now
	}
	return next
}

// skipIdle advances the clocks over k provably-idle DRAM cycles without
// ticking, reproducing Tick's CPU-credit arithmetic exactly. Every core
// is blocked across the window (an active core pins NextEvent to now),
// so their cycle counters advance by the skipped CPU tick count —
// exactly what executing the idle ticks would have done.
func (s *System) skipIdle(k int64) {
	s.dramCycle += k
	total := int64(s.credit) + k*cpuCredit
	dcpu := total / cpuDivisor
	s.cpuCycle += dcpu
	s.credit = int(total % cpuDivisor)
	if dcpu > 0 {
		for _, core := range s.Cores {
			core.SkipCycles(dcpu)
		}
	}
}

// domainTick advances one channel domain by one DRAM cycle, dispatching
// only due components off the survey's cached bounds. It touches only
// domain-local state — the domain's controller, its channel's DRAM
// state, its rank NDAs, and the domain's own slots of the wake-cache
// arrays — so distinct domains may run on concurrent workers; the skips
// are individually proven no-ops:
//
//   - A controller whose cached bound lies ahead cannot schedule
//     anything this cycle (the mc.NextEvent contract); only its
//     per-cycle issued-rank scratch must be reset for the NDA hooks.
//   - The channel's rank NDAs are skipped when their bound lies ahead —
//     unless this domain's controller issued a command to a rank with
//     NDA work: the rank's yield (and its StallsHost accounting)
//     happens on that very cycle, and pure sleep bounds rely on being
//     invalidated here (a host command moves the rank's horizons and
//     may close its row). The survey's stashed bound is reused only
//     when this domain's controller did not tick this cycle: a
//     controller tick can mutate the inputs an impure bound was derived
//     from (a dequeue flipping the oldest-read rank, say), and the
//     version revalidation must see the post-tick state. Cross-channel
//     coupling cannot occur mid-phase: every NDA bound reads only its
//     own channel's controller and timing state, and cross-channel
//     effects are mailboxed until commit.
func (s *System) domainTick(d int, now int64) {
	if s.prof != nil {
		t0 := time.Now()
		s.domainTickBody(d, now)
		s.prof.Domains[d][bucketNS(time.Since(t0))]++
		return
	}
	s.domainTickBody(d, now)
}

// domainTickBody is domainTick minus the optional span measurement.
func (s *System) domainTickBody(d int, now int64) {
	c := s.MCs[d]
	// Dispatch straight off the cached bound: due when it expired or
	// when any derivation input moved (ticking on a stale bound is
	// always exact — only skipping needs the proof).
	mcTicked := s.mcStale[d] || s.mcWake[d] <= now || s.mcVer[d] != c.Ver() ||
		s.mcMemVer[d] != s.Mem.ChVer(c.Channel())
	if mcTicked {
		c.Tick(now)
		s.mcStale[d] = true
	} else {
		c.ClearIssued()
	}
	ndaWake := s.stepNDAWake[d]
	if ndaWake == notSurveyed || mcTicked {
		ndaWake = s.NDA.ChannelNextEvent(d, now)
	}
	ndaDue := ndaWake <= now
	if !ndaDue {
		if r := c.HostIssuedRank(); r >= 0 && s.NDA.RankBusy(d, r) {
			ndaDue = true
		}
	}
	if ndaDue {
		s.NDA.TickChannel(d, now)
	}
}

// tickDue advances the system one DRAM cycle, dispatching only due
// components: the per-channel memory phase (on the executor when one is
// running, inline otherwise), the cross-channel commit, the runtime,
// then the CPU-credit loop — serial with cores in index order, or
// core-sharded per sub-cycle (coreWindow) when the executor, profiler,
// or order hook is active. Phase order matches Tick, with skips that
// are individually proven no-ops (see domainTick for the memory phase;
// blocked-core skipping is argued at the dispatch loop below).
func (s *System) tickDue() {
	now := s.dramCycle
	switch {
	case s.exec != nil:
		s.exec.round(now)
	case s.domOrder != nil:
		// Test hook: domains are independent, so any dispatch order
		// must be bit-identical to the canonical one.
		for _, d := range s.domOrder {
			s.domainTick(d, now)
		}
	default:
		for d := range s.doms {
			s.domainTick(d, now)
		}
	}
	// Front-end span (Config.ProfileDomains): everything after the
	// memory-phase barrier — commit, runtime, and the CPU-credit loop —
	// is the tick's serial portion, the Amdahl term of the executor.
	var profT0 time.Time
	if s.prof != nil {
		profT0 = time.Now()
	}
	s.commit()
	rtWake := s.stepRTWake
	if rtWake == notSurveyed {
		rtWake = s.RT.NextEvent(now)
	}
	if rtWake <= now {
		s.RT.Tick(now)
	}
	s.credit += cpuCredit
	m := int64(0)
	for s.credit >= cpuDivisor {
		s.credit -= cpuDivisor
		m++
	}
	cEnd := s.cpuCycle + m
	// Core dispatch. Active cores and cores whose wake falls inside this
	// tick's CPU window run every sub-cycle, exactly as in Tick. A
	// probe-stalled core runs a sub-cycle only when the memory epoch —
	// hierarchy version plus read dequeues, everything its retry probe
	// reads — moved since the epoch recorded just before its previous
	// probe; otherwise the probe provably re-stalls (the Stall contract)
	// and the sub-cycle reduces to its cycle counter. The epoch is
	// re-read per core per sub-cycle, so a mutation by an
	// earlier-dispatched core re-probes later cores in the same order
	// the reference interleaving would. Other blocked cores cannot
	// change state before their wake and skip the window arithmetically.
	rd := s.rdSum()
	anyDue := false
	nDue := 0
	for i, core := range s.Cores {
		due := !core.Blocked() || core.WakeCycle() < cEnd
		s.coreDue[i] = due
		anyDue = anyDue || due
		if due {
			nDue++
		}
	}
	if !anyDue {
		bulk := true
		e := uint64(0)
		if s.Hier != nil {
			e = rd + s.Hier.Ver()
		}
		for i, core := range s.Cores {
			if core.ProbeStalled() && e != s.coreEpoch[i] {
				// Leave the core to the sub-cycle probe branch below,
				// which re-probes and records the observed epoch.
				bulk = false
				break
			}
		}
		if bulk {
			// No core runs this window at all: no mid-window mutation
			// is possible, every sub-cycle of every core is a proven
			// no-op, and the whole window reduces to arithmetic.
			for _, core := range s.Cores {
				core.SkipCycles(m)
			}
			s.cpuCycle = cEnd
			s.dramCycle++
			if s.prof != nil {
				s.prof.Front[bucketNS(time.Since(profT0))]++
			}
			return
		}
	}
	if s.exec != nil || s.prof != nil || s.coreOrder != nil {
		// Core-sharded front-end (DESIGN.md §2.10): the split path runs
		// whenever the executor could fan sub-cycles — and under the
		// profiler or the order hook even at one worker, so the
		// local/shared split is measurable (and fuzzable) anywhere.
		s.coreWindow(cEnd, rd, nDue)
	} else {
		for cc := s.cpuCycle; cc < cEnd; cc++ {
			for i, core := range s.Cores {
				if s.coreDue[i] {
					// Window-batched retirement: a due core first attempts
					// the batched cycle (bit-exact to Tick, and touching no
					// shared state — so it cannot perturb other cores'
					// probes or the epoch within this lockstep sub-cycle);
					// cycles whose issue group reaches a memory instruction
					// fall back to the full Tick. Run never batches — it is
					// the instruction-at-a-time oracle.
					if !core.BatchTick(cc) {
						core.Tick(cc)
					}
					continue
				}
				if core.ProbeStalled() {
					e := rd + s.Hier.Ver()
					if e != s.coreEpoch[i] {
						core.Tick(cc)
						if core.Blocked() && core.ProbeStalled() {
							s.coreEpoch[i] = e
						} else {
							// Progressed or changed kind: reference
							// semantics for the rest of the window.
							s.coreDue[i] = true
						}
						continue
					}
				}
				core.SkipCycles(1)
			}
		}
	}
	s.cpuCycle = cEnd
	s.dramCycle++
	if s.prof != nil {
		s.prof.Front[bucketNS(time.Since(profT0))]++
	}
}

// minParCores bounds when a sub-cycle's core-local round is worth
// fanning across the executor: below two due cores the round is pure
// overhead and the window runs the split path inline.
const minParCores = 2

// coreWindow runs the tick's CPU sub-cycles on the split front-end
// path (DESIGN.md §2.10). Per sub-cycle, every due core's core-local
// part runs first — a batched compute cycle or a deferred tick whose
// shared-path access parks — fanned across the executor when enough
// cores are due, inline otherwise; then the serial commit loop visits
// cores in canonical index order, completing parked ticks
// (FinishTick: the deferred access replays through the full shared
// path) and running the epoch-gated probe-stall retries exactly where
// the serial window would. Bit-exactness does not depend on
// scheduling: local parts read and write only disjoint core-private
// state — the core's ROB/trace and its private L1/L2, which by the
// narrowed ver argument never move the memory epoch — so they commute
// with each other and with every other core's shared suffix, while
// the suffixes execute serially in the reference order, reading
// rd+Ver at their canonical positions.
func (s *System) coreWindow(cEnd int64, rd uint64, nDue int) {
	var t0 time.Time
	for cc := s.cpuCycle; cc < cEnd; cc++ {
		if s.prof != nil {
			t0 = time.Now()
		}
		switch {
		case s.exec != nil && nDue >= minParCores:
			s.exec.coreRound(cc)
		case s.coreOrder != nil:
			// Test hook: local parts are independent, so any dispatch
			// order must be bit-identical to the canonical one.
			for _, i := range s.coreOrder {
				s.coreSubTick(i, cc)
			}
		default:
			for i := range s.Cores {
				s.coreSubTick(i, cc)
			}
		}
		if s.prof != nil {
			s.prof.FrontLocal[bucketNS(time.Since(t0))]++
			t0 = time.Now()
		}
		for i, core := range s.Cores {
			if s.coreDue[i] {
				if s.coreParked[i] {
					s.coreParked[i] = false
					core.FinishTick(cc)
				}
				continue
			}
			if core.ProbeStalled() {
				e := rd + s.Hier.Ver()
				if e != s.coreEpoch[i] {
					core.Tick(cc)
					if core.Blocked() && core.ProbeStalled() {
						s.coreEpoch[i] = e
					} else {
						// Progressed or changed kind: reference
						// semantics (and due dispatch) for the rest of
						// the window.
						s.coreDue[i] = true
						nDue++
					}
					continue
				}
			}
			core.SkipCycles(1)
		}
		if s.prof != nil {
			s.prof.FrontShared[bucketNS(time.Since(t0))]++
		}
	}
}

// coreSubTick runs core i's core-local part of one CPU sub-cycle: a
// batched compute cycle when possible, otherwise a deferred tick that
// parks any shared-path access for the commit loop (coreParked).
// Non-due cores are left entirely to the commit loop — their
// epoch-gated probe retries and skip bookkeeping must happen at their
// canonical serial position. This runs on executor workers: it may
// touch only core i's state and core i's slots of coreDue/coreParked.
func (s *System) coreSubTick(i int, cc int64) {
	if !s.coreDue[i] {
		return
	}
	core := s.Cores[i]
	if !core.BatchTick(cc) {
		s.coreParked[i] = core.TickDeferred(cc)
	}
}

// StepFast advances the system to its next event (clamped to limit) and
// executes one wake-dispatched tick there if the event lies before
// limit. It always makes progress; state after reaching any cycle is
// bit-identical to ticking every cycle.
//
// A non-nil return reports a robustness failure — a LivelockError from
// the Never-with-pending-work detector or the forward-progress watchdog
// (Config.WatchdogWindow), or a DeadlineError from the per-run
// deadlines (Config.MaxCycles, Config.MaxWallClock) — and is sticky:
// every subsequent call returns the same error. On the livelock path
// the clock still advances to limit (the wake bound was wrong, so the
// only exact continuation is the idle skip the bound claims), keeping
// error-ignoring drivers terminating with unchanged state; on the
// deadline path the clock does not advance past the deadline.
func (s *System) StepFast(limit int64) error {
	if s.robust.err != nil {
		return s.robust.err
	}
	s.NDA.SetFastForward(true)
	if !s.execInit {
		s.execInit = true
		req := s.Cfg.SimWorkers
		if req < 0 {
			req = runtime.GOMAXPROCS(0)
		}
		// The pool is worth starting when either round kind can fan:
		// workers are clamped to the larger of the domain and core
		// counts (a 1-channel many-core system still shards its
		// front-end; extra workers no-op the smaller round kind).
		if nw := min(req, max(len(s.doms), len(s.Cores))); nw > 1 {
			s.exec = newDomainExec(s, nw)
		}
	}
	if s.Cfg.MaxCycles > 0 || s.Cfg.MaxWallClock > 0 || s.Cfg.Cancel != nil {
		if err := s.DeadlineExceeded(); err != nil {
			return err
		}
	}
	next := s.nextEventFast()
	if faults.Active() {
		next = faults.Adjust(faults.SimNextEvent, next)
	}
	if next >= dram.Never {
		if pend, what := s.workPending(); pend {
			s.fail(&LivelockError{
				Cycle:  s.dramCycle,
				Reason: "NextEvent reports Never while " + what,
				Dump:   s.DiagDump(),
			})
		}
	}
	if next > s.dramCycle {
		if next > limit {
			next = limit
		}
		s.skipIdle(next - s.dramCycle)
	}
	if s.dramCycle < limit {
		s.tickDue()
		if s.Cfg.WatchdogWindow > 0 {
			if err := s.watchdog(); err != nil {
				return err
			}
		}
	}
	return s.robust.err
}

// RunFast advances n DRAM cycles, jumping the clock over idle windows.
// It stops early and returns the failure when a watchdog or deadline
// fires (see StepFast).
func (s *System) RunFast(n int64) error {
	end := s.dramCycle + n
	for s.dramCycle < end {
		if err := s.StepFast(end); err != nil {
			return err
		}
	}
	return nil
}

// Await runs until every handle completes, up to maxCycles additional
// cycles, fast-forwarding over idle windows (handles and the copier can
// only change state on a tick, so checking after each executed tick is
// exact). It returns an error on timeout.
func (s *System) Await(maxCycles int64, hs ...*ndart.Handle) error {
	deadline := s.dramCycle + maxCycles
	for s.dramCycle < deadline {
		done := true
		for _, h := range hs {
			if !h.Done() {
				done = false
				break
			}
		}
		if done && !s.RT.CopierBusy() {
			return nil
		}
		if err := s.StepFast(deadline); err != nil {
			return err
		}
	}
	return fmt.Errorf("sim: Await timed out after %d cycles", maxCycles)
}

// BeginMeasurement snapshots counters at the end of warm-up.
func (s *System) BeginMeasurement() {
	s.measStartDRAM = s.dramCycle
	s.measStartCPU = s.cpuCycle
	for i, c := range s.Cores {
		s.retiredAtMeas[i] = c.Retired
	}
}

// HostIPC returns the aggregate (summed) host IPC since measurement
// began, matching the paper's per-figure host-performance metric.
func (s *System) HostIPC() float64 {
	cycles := s.cpuCycle - s.measStartCPU
	if cycles <= 0 {
		return 0
	}
	var retired int64
	for i, c := range s.Cores {
		retired += c.Retired - s.retiredAtMeas[i]
	}
	return float64(retired) / float64(cycles)
}

// MeasuredCycles returns DRAM cycles since measurement began.
func (s *System) MeasuredCycles() int64 { return s.dramCycle - s.measStartDRAM }

// Seconds converts DRAM cycles to seconds.
func Seconds(cycles int64) float64 { return float64(cycles) / DRAMHz }

// NDABandwidthGBs returns achieved NDA bandwidth in GB/s over the
// measurement window. Callers should snapshot engine bytes at
// BeginMeasurement time if NDAs ran during warm-up.
func (s *System) NDABandwidthGBs(bytes int64) float64 {
	sec := Seconds(s.MeasuredCycles())
	if sec <= 0 {
		return 0
	}
	return float64(bytes) / sec / 1e9
}

// NDAUtilization returns the fraction of host-idle rank bandwidth the
// NDAs captured during the measurement window: NDA data-bus cycles
// divided by cycles where ranks were not serving host traffic. busyHost
// and ndaBlocks are deltas over the window.
func (s *System) NDAUtilization(hostBusyCycles, ndaBlocks int64) float64 {
	ranks := int64(s.Cfg.Geom.Channels * s.Cfg.Geom.Ranks)
	idle := s.MeasuredCycles()*ranks - hostBusyCycles
	if idle <= 0 {
		return 0
	}
	used := ndaBlocks * int64(s.Cfg.Timing.BL)
	u := float64(used) / float64(idle)
	if u > 1 {
		u = 1
	}
	return u
}

// HostBusyCycles sums rank busy cycles across all controllers.
func (s *System) HostBusyCycles() int64 {
	var total int64
	for _, c := range s.MCs {
		for i := range c.IdleHists {
			total += c.IdleHists[i].BusyCycles()
		}
	}
	return total
}

// NDABlocks returns total NDA column accesses (read+write blocks).
func (s *System) NDABlocks() int64 {
	st := s.NDA.TotalStats()
	return st.BlocksRead + st.BlocksWritten
}
