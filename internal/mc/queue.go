package mc

import "chopim/internal/dram"

// Bucketed transaction queues. Each queue keeps its requests on two
// intrusive doubly-linked lists at once:
//
//   - an arrival list (head..tail, FR-FCFS age order, the order the old
//     slice-based scheduler scanned), and
//   - a per-(rank, flat-bank) bucket list, also age-ordered.
//
// Together with per-rank and per-bank occupancy counters this makes the
// per-cycle coordination hooks O(1) (HasDemandFor, HasAnyDemandFor,
// OldestReadRank) and both FR-FCFS passes O(occupied banks): pass 1's
// candidates are each bank's oldest row hit, pass 2's are the bucket
// heads, and rowWanted scans one bucket instead of both whole queues.
//
// Request nodes come from a per-controller free list, so the steady-state
// tick loop allocates nothing; unlinking is O(1) from any position (a
// column command retires a request from the middle of the age order).

// bankList is one (channel, rank, flat-bank) bucket: the queue's requests
// for that bank in age order.
type bankList struct {
	head, tail *Request
	n          int
}

// reqQueue is one transaction queue (read or write side).
type reqQueue struct {
	head, tail *Request
	n          int
	shift      uint // log2(banks per rank group): bankKey >> shift = rank group

	banks []bankList // indexed by Request.bankKey
	rankN []int      // queued requests per (channel, rank) group

	// headVer and demVer narrow the controller's qver for the NDA
	// engine's per-rank revalidation (Controller.NDAVer). headVer
	// advances exactly when the queue's age-order head changes — the
	// only input OldestReadRank reads. demVer[g] advances exactly when
	// some bucket of rank group g crosses between empty and occupied —
	// the only transitions that can flip a HasDemandFor answer for that
	// rank. Both are monotone; queue churn that moves neither (a push
	// behind an existing head into an already-occupied bucket, a remove
	// that leaves its bucket non-empty) is invisible to every per-rank
	// NDA branch and bumps neither counter.
	headVer uint64
	demVer  []uint64
	occ     []int32 // occupied bank keys, unordered (swap-removed)
	occPos  []int32 // bankKey -> index into occ, -1 when absent
	// sched is the per-bank scheduling cache, kept DENSE: sched[i] is
	// the entry for occ[i], maintained through the same swap-removal.
	// The calendar's examine loops resolve entries through occPos; the
	// packed layout keeps the stamp-resync walk streaming.
	sched []bankEntry

	// Per-rank-group occupied-bank lists: every occupied bank is on the
	// list of its (channel, rank) group, so a rank-stamp resync touches
	// only the changed rank's banks (see calendar.go). Linked by bankKey
	// (stable across occ swap-removal).
	rgHead []int32 // rank group -> first occupied bankKey, -1 when none
	rgNext []int32 // bankKey -> next occupied bankKey in the group
	rgPrev []int32

	// Calendar-queue state (see calendar.go). Every occupied bank is in
	// exactly one of: a ring bucket (future ready cycle), the ready
	// list (ready cycle <= the last synced tick, or pending
	// revalidation), or the overflow list (ready cycle beyond the ring
	// window). calKey holds the bank's bucket key; for ready/overflow
	// membership it is advisory only.
	calBase  int64    // smallest key the ring can hold
	calCount int      // banks currently in ring buckets
	calBits  []uint64 // calWords words: non-empty bucket slots
	calBkt   []int32  // calSlots slot heads (bankKey), -1 when empty
	calKey   []int64  // bankKey -> current key
	calNext  []int32  // bankKey -> calendar list links
	calPrev  []int32
	calWhere []uint8 // bankKey -> calAbsent/calBucket/calReady/calOver
	calReady int32   // ready-list head
	calOver  int32   // overflow-list head
	calStamp []int64 // local rank -> RankStamp at last resync (0 = never)
}

// Calendar geometry: the ring covers calSlots consecutive cycles, one
// exact key per slot (key & calMask). With refresh disabled every
// earliest-issue horizon lies within ~tRC of the cycle it was derived
// at, far inside the window; refresh pushes horizons by tRFC, which the
// overflow list absorbs.
const (
	calSlots = 256
	calMask  = calSlots - 1
	calWords = calSlots / 64
)

// Calendar membership states (reqQueue.calWhere).
const (
	calAbsent uint8 = iota
	calBucket
	calInReady
	calInOver
)

func (q *reqQueue) init(rankGroups, banksPerRank, localRanks int) {
	nb := rankGroups * banksPerRank
	for 1<<q.shift < banksPerRank {
		q.shift++ // geometry fields are validated powers of two
	}
	q.banks = make([]bankList, nb)
	q.sched = make([]bankEntry, 0, nb)
	q.rankN = make([]int, rankGroups)
	q.demVer = make([]uint64, rankGroups)
	q.occ = make([]int32, 0, nb)
	q.occPos = make([]int32, nb)
	q.rgHead = make([]int32, rankGroups)
	q.rgNext = make([]int32, nb)
	q.rgPrev = make([]int32, nb)
	q.calBits = make([]uint64, calWords)
	q.calBkt = make([]int32, calSlots)
	q.calKey = make([]int64, nb)
	q.calNext = make([]int32, nb)
	q.calPrev = make([]int32, nb)
	q.calWhere = make([]uint8, nb)
	q.calReady = -1
	q.calOver = -1
	q.calStamp = make([]int64, localRanks)
	for i := range q.occPos {
		q.occPos[i] = -1
	}
	for i := range q.rgHead {
		q.rgHead[i] = -1
	}
	for i := range q.calBkt {
		q.calBkt[i] = -1
	}
}

// push appends r to the queue (age order) and its bank bucket.
func (q *reqQueue) push(r *Request) {
	r.qnext, r.qprev = nil, q.tail
	if q.tail != nil {
		q.tail.qnext = r
	} else {
		q.head = r
		q.headVer++
	}
	q.tail = r
	q.n++
	q.rankN[r.bankKey>>q.shift]++

	bl := &q.banks[r.bankKey]
	r.bnext, r.bprev = nil, bl.tail
	if bl.tail != nil {
		bl.tail.bnext = r
		q.sched[q.occPos[r.bankKey]].dirty = true
		// The new request can add an earlier candidate (a row hit where
		// the entry only had a row command); park the bank in the ready
		// region so the next scan revalidates it.
		q.calForceReady(r.bankKey)
	} else {
		bl.head = r
		q.demVer[r.bankKey>>q.shift]++ // bucket empty -> occupied
		q.occPos[r.bankKey] = int32(len(q.occ))
		q.occ = append(q.occ, r.bankKey)
		q.sched = append(q.sched, bankEntry{dirty: true})
		q.rgLink(r.bankKey)
		q.calPushReady(r.bankKey)
	}
	bl.tail = r
	bl.n++
}

// remove unlinks r from the queue and its bank bucket.
func (q *reqQueue) remove(r *Request) {
	q.sched[q.occPos[r.bankKey]].dirty = true
	if r.qprev != nil {
		r.qprev.qnext = r.qnext
	} else {
		q.head = r.qnext
		q.headVer++
	}
	if r.qnext != nil {
		r.qnext.qprev = r.qprev
	} else {
		q.tail = r.qprev
	}
	q.n--
	q.rankN[r.bankKey>>q.shift]--

	bl := &q.banks[r.bankKey]
	if r.bprev != nil {
		r.bprev.bnext = r.bnext
	} else {
		bl.head = r.bnext
	}
	if r.bnext != nil {
		r.bnext.bprev = r.bprev
	} else {
		bl.tail = r.bprev
	}
	bl.n--
	if bl.n == 0 {
		q.demVer[r.bankKey>>q.shift]++ // bucket occupied -> empty
		// Swap-remove the bank (and its dense sched entry) from the
		// occupied set.
		i := q.occPos[r.bankKey]
		last := int32(len(q.occ) - 1)
		moved := q.occ[last]
		q.occ[i] = moved
		q.occPos[moved] = i
		q.occ = q.occ[:last]
		q.occPos[r.bankKey] = -1
		// Stale candidate pointers in the truncated tail are harmless:
		// request nodes are pooled for the controller's lifetime.
		q.sched[i] = q.sched[last]
		q.sched = q.sched[:last]
		q.rgUnlink(r.bankKey)
		q.calUnlink(r.bankKey)
	} else {
		// The bank head (pass-2 candidate) or oldest row hit may have
		// changed; revalidate on the next scan.
		q.calForceReady(r.bankKey)
	}
	r.qnext, r.qprev, r.bnext, r.bprev = nil, nil, nil, nil
}

// bankEntry is one bank's slot in a queue's scheduling cache: the
// bank's FR-FCFS candidates and the rank-side component of their exact
// earliest-issue cycles (dram.Mem.NextIssue over bank, bank-group, rank,
// tFAW, and refresh horizons). An entry is recomputed only when its
// bucket changes (dirty, set by push/remove) or a command issues to its
// rank (rkStamp versus dram.Mem.RankStamp — the only way the bank's row
// state or rank-side horizons move). The channel-bus component of
// column readiness deliberately stays out: it changes on every external
// column anywhere on the channel, so it is read per check from the O(1)
// per-channel cache (dram.Mem.ExtColReady). The cross-queue rowWanted
// input also stays out: PRE candidates are cached unconditionally and
// rowWanted is re-evaluated (an O(per-bank occupancy) bucket scan over
// both queues) only when a PRE is actually about to issue — the same
// cycle the rescan would have evaluated it. With clean entries, a
// timing-blocked cycle costs a handful of int64 compares per occupied
// bank; no CanIssue or OpenRow calls at all.
// bankEntry fields are ordered and sized to pack the struct into a
// single cache line: the dense sched array is streamed by the hottest
// loop in the controller.
type bankEntry struct {
	rkStamp int64

	// Pass 1: the bank's oldest row hit (nil when the bank is closed or
	// no queued request matches the open row) and the rank-side bound on
	// its column command.
	p1     *Request
	p1Rank int64

	// Pass 2: the bank head's row command (ACT on a closed bank, PRE on
	// a row conflict; nil when the head is itself the row hit), its
	// ready cycle, and the open row for PRE's issue-time rowWanted
	// re-check.
	p2     *Request
	p2Rank int64
	p2Row  int32
	p2Cmd  dram.Command

	// Identity cache: the candidates (which requests, which commands)
	// depend only on the bucket's content and the bank's row state, not
	// on timing horizons. While the bucket is clean and (idOpen, idRow)
	// match the bank, a stamp-invalidated entry refreshes only the two
	// ready cycles from the bank's cached horizons — no bucket scan.
	idRow   int32
	idValid bool
	idOpen  bool

	dirty bool
}
