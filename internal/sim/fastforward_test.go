package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"chopim/internal/apps"
	"chopim/internal/nda"
	"chopim/internal/ndart"
	"chopim/internal/workload"
)

// snapshot captures every observable counter of a system so the
// cycle-by-cycle and fast-forward paths can be compared exactly.
func snapshot(s *System) string {
	st := s.NDA.TotalStats()
	out := fmt.Sprintf("dram=%d cpu=%d credit=%d host-ipc=%v busy=%d blocks=%d "+
		"ACT=%d PRE=%d RD=%d WR=%d nRD=%d nWR=%d "+
		"br=%d bw=%d acts=%d sh=%d sp=%d ops=%d launches=%d copies=%d",
		s.Now(), s.CPUNow(), s.credit, s.HostIPC(), s.HostBusyCycles(), s.NDABlocks(),
		s.Mem.Counts().ACT, s.Mem.Counts().PRE, s.Mem.Counts().RD, s.Mem.Counts().WR, s.Mem.Counts().NDARD, s.Mem.Counts().NDAWR,
		st.BlocksRead, st.BlocksWritten, st.RowActs, st.StallsHost, st.StallsPolicy, st.OpsCompleted,
		s.RT.Launches, s.RT.Copies)
	for i, c := range s.MCs {
		out += fmt.Sprintf(" mc%d=%d/%d/%d/%d/%d/%d", i,
			c.ReadsIssued, c.WritesIssued, c.ActsIssued, c.PresIssued, c.ReadLatencySum, c.Drains)
	}
	for i, c := range s.Cores {
		out += fmt.Sprintf(" core%d=%d/%d", i, c.Retired, c.Cycles)
	}
	return out
}

// ffWorkload builds a relaunchable NDA workload on a fresh system, or
// nil for host-only runs.
type ffWorkload struct {
	name string
	cfg  func() Config
	app  func(s *System) (func() (*ndart.Handle, error), error)
}

func ffWorkloads() []ffWorkload {
	hostOnly := ffWorkload{
		name: "host-only",
		cfg:  func() Config { return Default(0) },
	}
	ndaOnly := ffWorkload{
		name: "nda-only-nrm2",
		cfg:  func() Config { return Default(-1) },
		app: func(s *System) (func() (*ndart.Handle, error), error) {
			a, err := apps.NewMicroPlaced(s.RT, "nrm2", (256<<10)/4, ndart.Private)
			if err != nil {
				return nil, err
			}
			return a.Iterate, nil
		},
	}
	ndaCopy := ffWorkload{
		name: "nda-only-copy-stochastic",
		cfg: func() Config {
			c := Default(-1)
			c.NDA.Policy = nda.Stochastic
			c.NDA.StochasticProb = 0.25
			return c
		},
		app: func(s *System) (func() (*ndart.Handle, error), error) {
			a, err := apps.NewMicroPlaced(s.RT, "copy", (128<<10)/4, ndart.Private)
			if err != nil {
				return nil, err
			}
			return a.Iterate, nil
		},
	}
	mixed := ffWorkload{
		name: "mixed-mix1-dot",
		cfg:  func() Config { return Default(1) },
		app: func(s *System) (func() (*ndart.Handle, error), error) {
			a, err := apps.NewMicroPlaced(s.RT, "dot", (128<<10)/4, ndart.Private)
			if err != nil {
				return nil, err
			}
			return a.Iterate, nil
		},
	}
	// Shared banks + write-heavy COPY exercises the scheduler paths a
	// partitioned DOT never hits: host/NDA bank conflicts (HasDemandFor
	// priority), write drains, and NDA write throttling.
	mixedShared := ffWorkload{
		name: "mixed-mix3-copy-shared",
		cfg: func() Config {
			c := Default(3)
			c.Partitioned = false
			return c
		},
		app: func(s *System) (func() (*ndart.Handle, error), error) {
			a, err := apps.NewMicroPlaced(s.RT, "copy", (128<<10)/4, ndart.Private)
			if err != nil {
				return nil, err
			}
			return a.Iterate, nil
		},
	}
	// Stress shapes for the core stall-skipping machinery: each profile
	// drives a different blocked-core cause (serialize-heavy low-MLP
	// stalls, store/writeback pressure, LSQ saturation), and the mixed
	// variant layers NDA traffic over the stall-heavy host.
	hostProfiles := func(p workload.Profile) func() Config {
		return func() Config {
			c := Default(-1)
			c.HostProfiles = []workload.Profile{p, p, p, p}
			return c
		}
	}
	stallHeavy := ffWorkload{name: "host-stall-heavy", cfg: hostProfiles(workload.StallHeavy())}
	storeHeavy := ffWorkload{
		name: "host-store-heavy",
		cfg: hostProfiles(workload.Profile{Name: "store_heavy", Class: workload.High,
			MemRatio: 0.4, WriteFrac: 0.8, Footprint: 32 << 20, StreamFrac: 0.5, Streams: 4}),
	}
	lsqSat := ffWorkload{
		name: "host-lsq-saturating",
		cfg: hostProfiles(workload.Profile{Name: "lsq_sat", Class: workload.High,
			MemRatio: 0.7, WriteFrac: 0.3, Footprint: 24 << 20, StreamFrac: 0.6, Streams: 8, DepFrac: 0.05}),
	}
	mixedStall := ffWorkload{
		name: "mixed-stall-heavy-copy",
		cfg:  hostProfiles(workload.StallHeavy()),
		app: func(s *System) (func() (*ndart.Handle, error), error) {
			a, err := apps.NewMicroPlaced(s.RT, "copy", (128<<10)/4, ndart.Private)
			if err != nil {
				return nil, err
			}
			return a.Iterate, nil
		},
	}
	// Compute-heavy shapes for the PR 5 window-batched retirement path:
	// high-IPC cache-resident cores whose issue groups are mostly free of
	// memory instructions (goldens pinned from the pre-refactor tree).
	// The mixed variant layers NDA COPY traffic over the compute cores so
	// batched windows interleave with fills, launches, and writebacks.
	computeHeavy := ffWorkload{name: "host-compute-heavy", cfg: hostProfiles(workload.ComputeHeavy())}
	mixedCompute := ffWorkload{
		name: "mixed-compute-copy",
		cfg:  hostProfiles(workload.ComputeHeavy()),
		app: func(s *System) (func() (*ndart.Handle, error), error) {
			a, err := apps.NewMicroPlaced(s.RT, "copy", (128<<10)/4, ndart.Private)
			if err != nil {
				return nil, err
			}
			return a.Iterate, nil
		},
	}
	return []ffWorkload{hostOnly, ndaOnly, ndaCopy, mixed, mixedShared,
		stallHeavy, storeHeavy, lsqSat, mixedStall, computeHeavy, mixedCompute}
}

// drive advances sys through segments cycles-long windows, relaunching
// the workload after every executed step exactly as the experiment
// harness does, and records a snapshot at each segment boundary.
func drive(t *testing.T, w ffWorkload, fast bool, segments int, segCycles int64) []string {
	t.Helper()
	s, err := New(w.cfg())
	if err != nil {
		t.Fatal(err)
	}
	var it func() (*ndart.Handle, error)
	if w.app != nil {
		if it, err = w.app(s); err != nil {
			t.Fatal(err)
		}
	}
	var h *ndart.Handle
	relaunch := func() {
		if it == nil {
			return
		}
		if h == nil || h.Done() {
			if h, err = it(); err != nil {
				t.Fatal(err)
			}
		}
	}
	relaunch()
	var snaps []string
	for seg := 0; seg < segments; seg++ {
		end := s.Now() + segCycles
		for s.Now() < end {
			if fast {
				s.StepFast(end)
			} else {
				s.Tick()
			}
			relaunch()
		}
		snaps = append(snaps, snapshot(s))
	}
	return snaps
}

// TestRunFastMatchesRun proves the fast-forward contract: for host-only,
// NDA-only, and mixed workloads, the skipping path reaches every segment
// boundary with counters bit-identical to the cycle-by-cycle baseline.
func TestRunFastMatchesRun(t *testing.T) {
	for _, w := range ffWorkloads() {
		t.Run(w.name, func(t *testing.T) {
			slow := drive(t, w, false, 8, 5_000)
			fast := drive(t, w, true, 8, 5_000)
			for i := range slow {
				if slow[i] != fast[i] {
					t.Fatalf("segment %d diverged:\n slow: %s\n fast: %s", i, slow[i], fast[i])
				}
			}
		})
	}
}

// TestRunFastMatchesRunRandomized fuzzes the equivalence with randomized
// segment boundaries: StepFast must land exactly on arbitrary limits
// (mid-stall-window, mid-burst, single-cycle segments) with state
// bit-identical to the single-stepped reference at every boundary. The
// stress trace profiles each drive a different blocked-core cause, so
// this exercises every wake class of the core-skip machinery: head-wake
// (ROB/LSQ), probe-stall epochs, controller hints, and NDA sleep
// bounds.
func TestRunFastMatchesRunRandomized(t *testing.T) {
	stress := map[string]bool{
		"host-stall-heavy":       true,
		"host-store-heavy":       true,
		"host-lsq-saturating":    true,
		"mixed-stall-heavy-copy": true,
		"mixed-mix3-copy-shared": true,
	}
	for wi, w := range ffWorkloads() {
		if !stress[w.name] {
			continue
		}
		t.Run(w.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(0xC0FFEE + int64(wi)))
			var bounds []int64
			cycle := int64(0)
			for i := 0; i < 40; i++ {
				cycle += 1 + rng.Int63n(2_500)
				bounds = append(bounds, cycle)
			}
			run := func(fast bool) []string {
				s, err := New(w.cfg())
				if err != nil {
					t.Fatal(err)
				}
				var it func() (*ndart.Handle, error)
				if w.app != nil {
					if it, err = w.app(s); err != nil {
						t.Fatal(err)
					}
				}
				var h *ndart.Handle
				relaunch := func() {
					if it == nil {
						return
					}
					if h == nil || h.Done() {
						if h, err = it(); err != nil {
							t.Fatal(err)
						}
					}
				}
				relaunch()
				var snaps []string
				for _, end := range bounds {
					for s.Now() < end {
						if fast {
							s.StepFast(end)
						} else {
							s.Tick()
						}
						relaunch()
					}
					if s.Now() != end {
						t.Fatalf("overshot boundary: at %d, want %d", s.Now(), end)
					}
					snaps = append(snaps, snapshot(s))
				}
				return snaps
			}
			slow := run(false)
			fast := run(true)
			for i := range slow {
				if slow[i] != fast[i] {
					t.Fatalf("random boundary %d (cycle %d) diverged:\n slow: %s\n fast: %s",
						i, bounds[i], slow[i], fast[i])
				}
			}
		})
	}
}

// TestRunFastAdvancesClock checks RunFast's bookkeeping on a fully idle
// system: the clock jumps without ticks and the CPU-credit arithmetic
// matches Tick's exactly.
func TestRunFastAdvancesClock(t *testing.T) {
	a, err := New(Default(-1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Default(-1))
	if err != nil {
		t.Fatal(err)
	}
	a.Run(12_345)
	b.RunFast(12_345)
	if a.Now() != b.Now() || a.CPUNow() != b.CPUNow() || a.credit != b.credit {
		t.Fatalf("clock skew: run=(%d,%d,%d) fast=(%d,%d,%d)",
			a.Now(), a.CPUNow(), a.credit, b.Now(), b.CPUNow(), b.credit)
	}
}
