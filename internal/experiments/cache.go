// Content-addressed result cache and sweep-resume journals. Figures are
// pure functions of their options (the runner and executor prove
// bit-identical tables for every worker count), so a figure's rows can
// be cached under a hash of everything they depend on and replayed
// without simulating. Long sweeps additionally journal each completed
// point as it finishes, so an interrupted run resumes at the last
// completed point instead of the first.
package experiments

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"

	"chopim/internal/atomicio"
	"chopim/internal/sim"
)

// cacheSchema names the simulation-model version baked into every cache
// key and journal header. Bump it whenever a change alters any figure's
// numbers, so entries written by older binaries can never satisfy a
// lookup.
const cacheSchema = "chopim-results-v1"

// cacheKey fingerprints everything a figure's rows depend on: the model
// version, the figure name, and the options that select simulated
// behavior. Parallel and SimWorkers are deliberately excluded — results
// are bit-identical for any worker count at either layer — as is
// ProfileDomains, which only observes.
func (o Options) cacheKey(fig string) string {
	k := struct {
		Schema        string
		Fig           string
		WarmCycles    int64
		MeasureCycles int64
		Quick         bool
		CycleByCycle  bool
		Sampled       bool
		Sample        sim.SampleConfig
	}{cacheSchema, fig, o.WarmCycles, o.MeasureCycles, o.Quick, o.CycleByCycle, o.Sampled, o.Sample}
	b, err := json.Marshal(k)
	if err != nil {
		panic("experiments: cache key not marshalable: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// figCached wraps a figure generator with the content-addressed cache
// and arms the resume journal. With no CacheDir the generator runs
// directly (journals still work); with one, a hit deserializes the
// stored rows and skips simulation entirely. Entries are written
// atomically (temp file + rename), so a killed run never leaves a
// torn cache file.
func figCached[T any](opt Options, fig string, gen func(Options) (T, error)) (T, error) {
	key := opt.cacheKey(fig)
	opt.journal = newJournalCtx(opt, fig, key)
	var zero T
	var path string
	if opt.CacheDir != "" {
		path = filepath.Join(opt.CacheDir, fig+"-"+key[:20]+".json")
		if b, err := os.ReadFile(path); err == nil {
			if v, ok := decodeCacheEntry[T](key, b); ok {
				statCacheHits.Add(1)
				return v, nil
			}
			// Corrupt or foreign entry: fall through and regenerate it.
		}
		statCacheMisses.Add(1)
	}
	v, err := gen(opt)
	if err != nil {
		return zero, err
	}
	// The figure completed: its journals are superseded (and, with a
	// cache, its rows are now replayable from there).
	opt.journal.finish()
	if path != "" {
		if b, ok := encodeCacheEntry(key, v); ok {
			writeFileAtomic(path, b)
		}
	}
	return v, nil
}

// cacheEnvelope wraps a cache entry's rows with everything needed to
// prove them trustworthy on read-back: the model schema, the full cache
// key (the filename only embeds a prefix), and a checksum of the rows.
// Any mismatch — truncation, bit flips, a hand-edited file, an entry
// written under a colliding filename — reads as a miss and the figure
// recomputes; a corrupt cache can slow a run but never change a table.
type cacheEnvelope struct {
	Schema string
	Key    string
	Sum    string // hex sha256 of Rows
	Rows   json.RawMessage
}

func encodeCacheEntry[T any](key string, v T) ([]byte, bool) {
	rows, err := json.Marshal(v)
	if err != nil {
		return nil, false
	}
	sum := sha256.Sum256(rows)
	b, err := json.Marshal(cacheEnvelope{
		Schema: cacheSchema,
		Key:    key,
		Sum:    hex.EncodeToString(sum[:]),
		Rows:   rows,
	})
	return b, err == nil
}

// decodeCacheEntry verifies an on-disk entry end to end before trusting
// it. Every failure mode is a miss, never an error: the cache is an
// accelerator, not a correctness dependency.
func decodeCacheEntry[T any](key string, b []byte) (T, bool) {
	var zero T
	var env cacheEnvelope
	if json.Unmarshal(b, &env) != nil ||
		env.Schema != cacheSchema || env.Key != key {
		return zero, false
	}
	sum := sha256.Sum256(env.Rows)
	if hex.EncodeToString(sum[:]) != env.Sum {
		return zero, false
	}
	var v T
	if json.Unmarshal(env.Rows, &v) != nil {
		return zero, false
	}
	return v, true
}

// writeFileAtomic writes b to path through the shared atomic-replace
// helper (temp file + fsync + rename). Errors are swallowed: the cache
// is an accelerator, never a correctness dependency.
func writeFileAtomic(path string, b []byte) {
	_ = atomicio.WriteFile(path, b)
}

// journalCtx is one figure's resume-journal state, created by figCached
// and threaded to every sharded call through Options. Each sweep the
// figure runs gets its own journal file, numbered in call order (the
// order is deterministic — figure bodies call sharded sequentially).
type journalCtx struct {
	dir    string
	fig    string
	key    string
	resume bool

	mu    sync.Mutex
	seq   int
	files []*journalFile
}

func newJournalCtx(opt Options, fig, key string) *journalCtx {
	if opt.JournalDir == "" {
		return nil
	}
	return &journalCtx{dir: opt.JournalDir, fig: fig, key: key, resume: opt.Resume}
}

// open starts (or, under resume, reopens) the journal for the next
// sweep of this figure. Nil-safe: journaling disabled returns nil.
func (j *journalCtx) open(n int) *journalFile {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	seq := j.seq
	j.seq++
	j.mu.Unlock()
	if err := os.MkdirAll(j.dir, 0o755); err != nil {
		return nil
	}
	jf := &journalFile{
		path:   filepath.Join(j.dir, fmt.Sprintf("%s-%d-%s.journal", j.fig, seq, j.key[:20])),
		key:    j.key,
		resume: j.resume,
	}
	j.mu.Lock()
	j.files = append(j.files, jf)
	j.mu.Unlock()
	return jf
}

// finish closes and removes every journal the figure opened: the run
// completed, so there is nothing left to resume.
func (j *journalCtx) finish() {
	if j == nil {
		return
	}
	j.mu.Lock()
	files := j.files
	j.files = nil
	j.mu.Unlock()
	for _, jf := range files {
		jf.mu.Lock()
		if jf.f != nil {
			jf.f.Close()
			jf.f = nil
		}
		jf.mu.Unlock()
		os.Remove(jf.path)
	}
}

// journalFile is one sweep's append-only point log: a header line
// binding it to the options fingerprint and sweep width, then one JSON
// line per completed point, written as points finish (any order under a
// parallel runner — replay is by index).
type journalFile struct {
	path   string
	key    string
	resume bool

	mu   sync.Mutex
	f    *os.File
	dead bool // a point failed to marshal; journaling disabled for this sweep
}

type journalHeader struct {
	Key string
	N   int
}

type journalLine struct {
	I int
	R json.RawMessage
	C uint32 // journalCRC(I, R); 0 in pre-checksum journals, which therefore never replay
}

// journalCRC checksums one journal record: the point index (little-
// endian, so index corruption is caught even when the row survives)
// followed by the row bytes.
func journalCRC(i int, r []byte) uint32 {
	var idx [8]byte
	binary.LittleEndian.PutUint64(idx[:], uint64(i))
	c := crc32.ChecksumIEEE(idx[:])
	return crc32.Update(c, crc32.IEEETable, r)
}

// journalLoad replays a journal into results and returns the
// completed-point mask, then leaves the file open for appending. A
// header mismatch (different options, different sweep width, older
// model version) discards the journal and starts fresh; a torn tail
// line — the point being written when the run was killed — truncates
// replay there.
func journalLoad[T any](jf *journalFile, results []T) []bool {
	if jf == nil {
		return nil
	}
	done := make([]bool, len(results))
	valid := false
	if jf.resume {
		if b, err := os.ReadFile(jf.path); err == nil {
			lines := bytes.Split(b, []byte("\n"))
			var hdr journalHeader
			if len(lines) > 0 && json.Unmarshal(lines[0], &hdr) == nil &&
				hdr.Key == jf.key && hdr.N == len(results) {
				valid = true
				for _, ln := range lines[1:] {
					if len(bytes.TrimSpace(ln)) == 0 {
						continue
					}
					var rec journalLine
					if json.Unmarshal(ln, &rec) != nil ||
						rec.I < 0 || rec.I >= len(results) ||
						rec.C != journalCRC(rec.I, rec.R) {
						break
					}
					var v T
					if json.Unmarshal(rec.R, &v) != nil {
						break
					}
					results[rec.I] = v
					if !done[rec.I] {
						done[rec.I] = true
						statResumed.Add(1)
					}
				}
			}
		}
	}
	flag := os.O_CREATE | os.O_WRONLY
	if valid {
		flag |= os.O_APPEND
	} else {
		flag |= os.O_TRUNC
	}
	f, err := os.OpenFile(jf.path, flag, 0o644)
	if err != nil {
		jf.dead = true
		return done
	}
	jf.f = f
	if !valid {
		hb, _ := json.Marshal(journalHeader{Key: jf.key, N: len(results)})
		f.Write(append(hb, '\n'))
	}
	return done
}

// journalRecord appends one completed point. A result type that cannot
// marshal disables journaling for the sweep (resume would replay
// garbage); simulation is unaffected.
func journalRecord[T any](jf *journalFile, i int, v T) {
	if jf == nil {
		return
	}
	rb, err := json.Marshal(v)
	if err != nil {
		jf.mu.Lock()
		jf.dead = true
		jf.mu.Unlock()
		return
	}
	line, _ := json.Marshal(journalLine{I: i, R: rb, C: journalCRC(i, rb)})
	jf.mu.Lock()
	defer jf.mu.Unlock()
	if jf.f == nil || jf.dead {
		return
	}
	jf.f.Write(append(line, '\n'))
	// A SIGKILL must not lose a point the sweep believes is journaled:
	// the crash-resume harness kills the process right after a
	// checkpoint lands, and the journal's view has to be at least as
	// fresh when it does.
	jf.f.Sync()
}
