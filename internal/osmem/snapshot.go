package osmem

// allocState is a deep copy of one Allocator's free lists and
// allocation table. Free-list slice order is preserved exactly: Alloc
// pops the last element, so the order is part of the allocator's
// deterministic behavior and a restored allocator must replay the same
// address choices as the snapshotted one.
type allocState struct {
	free      map[uint][]uint64
	allocated map[uint64]uint
}

func (a *Allocator) snapshot() allocState {
	st := allocState{
		free:      make(map[uint][]uint64, len(a.free)),
		allocated: make(map[uint64]uint, len(a.allocated)),
	}
	for o, blocks := range a.free {
		st.free[o] = append([]uint64(nil), blocks...)
	}
	for b, o := range a.allocated {
		st.allocated[b] = o
	}
	return st
}

func (a *Allocator) restore(st allocState) {
	a.free = make(map[uint][]uint64, len(st.free))
	for o, blocks := range st.free {
		a.free[o] = append([]uint64(nil), blocks...)
	}
	a.allocated = make(map[uint64]uint, len(st.allocated))
	for b, o := range st.allocated {
		a.allocated[b] = o
	}
}

// OSState is an opaque deep copy of the OS allocators' mutable state.
type OSState struct {
	host   allocState
	shared allocState
}

// Snapshot captures both allocators. The snapshot shares nothing with
// the live OS, so one snapshot can seed any number of restores.
func (o *OS) Snapshot() *OSState {
	return &OSState{host: o.host.snapshot(), shared: o.shared.snapshot()}
}

// Restore overwrites the allocators' state with the snapshot. The OS
// must have been built over the same mapper/geometry.
func (o *OS) Restore(st *OSState) {
	o.host.restore(st.host)
	o.shared.restore(st.shared)
}
