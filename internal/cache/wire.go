// On-disk codec for HierarchyState. Cache line arrays dominate a
// checkpoint's size (the LLC alone is >100k lines), so they pack into a
// varint-coded binary blob rather than per-line JSON objects: a line is
// flags(1) uvarint(tag) uvarint(lru), so an invalid line costs 3 bytes
// and a typical valid one under ten — the difference between a periodic
// checkpoint write costing milliseconds and costing a noticeable
// fraction of the simulation budget. The line count rides alongside the
// blob, so truncation is detected structurally (and the envelope digest
// covers the bytes anyway). MSHR waiters serialize as (core, slot) —
// the same durable identity the in-memory restore resolves through
// DoneFn.
package cache

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
)

func packLines(lines []line) []byte {
	b := make([]byte, 0, len(lines)*3)
	var tmp [2 * binary.MaxVarintLen64]byte
	for _, ln := range lines {
		var f byte
		if ln.valid {
			f |= 1
		}
		if ln.dirty {
			f |= 2
		}
		n := binary.PutUvarint(tmp[:], ln.tag)
		n += binary.PutUvarint(tmp[n:], ln.lru)
		b = append(append(b, f), tmp[:n]...)
	}
	return b
}

func unpackLines(b []byte, count int) ([]line, error) {
	if count < 0 {
		return nil, fmt.Errorf("cache: negative packed line count %d", count)
	}
	lines := make([]line, count)
	for i := range lines {
		if len(b) == 0 {
			return nil, fmt.Errorf("cache: packed line blob ends at line %d of %d", i, count)
		}
		f := b[0]
		b = b[1:]
		tag, n := binary.Uvarint(b)
		if n <= 0 {
			return nil, fmt.Errorf("cache: bad tag varint at line %d", i)
		}
		b = b[n:]
		lru, n := binary.Uvarint(b)
		if n <= 0 {
			return nil, fmt.Errorf("cache: bad lru varint at line %d", i)
		}
		b = b[n:]
		lines[i] = line{tag: tag, lru: lru, valid: f&1 != 0, dirty: f&2 != 0}
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("cache: %d trailing bytes after %d packed lines", len(b), count)
	}
	return lines, nil
}

type cacheWire struct {
	NLines int
	Lines  []byte // packLines
	Clock  uint64
	Hits   int64
	Misses int64
}

type waiterWire struct {
	Core, Slot int
	HasDone    bool
}

type mshrWire struct {
	Block    uint64
	Core     int
	Dirty    bool
	Prefetch bool
	Waiters  []waiterWire
}

type strideWire struct {
	LastBlock  uint64
	Stride     int64
	Confidence int
}

type hierarchyWire struct {
	L1, L2     []cacheWire
	LLC        cacheWire
	MSHRs      []mshrWire
	L1Pending  []int
	Prefetch   []strideWire
	Prefetches int64
	Demand     int64
	Ver        uint64
}

func cacheToWire(st *cacheState) cacheWire {
	return cacheWire{NLines: len(st.lines), Lines: packLines(st.lines), Clock: st.clock, Hits: st.hits, Misses: st.misses}
}

func cacheFromWire(w *cacheWire) (cacheState, error) {
	lines, err := unpackLines(w.Lines, w.NLines)
	if err != nil {
		return cacheState{}, err
	}
	return cacheState{lines: lines, clock: w.Clock, hits: w.Hits, misses: w.Misses}, nil
}

// MarshalJSON encodes the snapshot for the durable checkpoint file.
func (st *HierarchyState) MarshalJSON() ([]byte, error) {
	w := hierarchyWire{
		LLC:        cacheToWire(&st.llc),
		L1Pending:  st.l1Pending,
		Prefetches: st.prefetches, Demand: st.demand, Ver: st.ver,
	}
	for i := range st.l1 {
		w.L1 = append(w.L1, cacheToWire(&st.l1[i]))
	}
	for i := range st.l2 {
		w.L2 = append(w.L2, cacheToWire(&st.l2[i]))
	}
	for _, m := range st.mshrs {
		mw := mshrWire{Block: m.block, Core: m.core, Dirty: m.dirty, Prefetch: m.prefetch}
		for _, wt := range m.waiters {
			mw.Waiters = append(mw.Waiters, waiterWire{Core: wt.core, Slot: wt.slot, HasDone: wt.hasDone})
		}
		w.MSHRs = append(w.MSHRs, mw)
	}
	for _, p := range st.prefetch {
		w.Prefetch = append(w.Prefetch, strideWire{LastBlock: p.lastBlock, Stride: p.stride, Confidence: p.confidence})
	}
	return json.Marshal(w)
}

// UnmarshalJSON rebuilds the snapshot written by MarshalJSON.
func (st *HierarchyState) UnmarshalJSON(b []byte) error {
	var w hierarchyWire
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	var err error
	if st.llc, err = cacheFromWire(&w.LLC); err != nil {
		return err
	}
	st.l1, st.l2 = nil, nil
	for i := range w.L1 {
		cs, err := cacheFromWire(&w.L1[i])
		if err != nil {
			return err
		}
		st.l1 = append(st.l1, cs)
	}
	for i := range w.L2 {
		cs, err := cacheFromWire(&w.L2[i])
		if err != nil {
			return err
		}
		st.l2 = append(st.l2, cs)
	}
	st.mshrs = nil
	for _, mw := range w.MSHRs {
		m := mshrState{block: mw.Block, core: mw.Core, dirty: mw.Dirty, prefetch: mw.Prefetch}
		for _, wt := range mw.Waiters {
			m.waiters = append(m.waiters, waiterState{core: wt.Core, slot: wt.Slot, hasDone: wt.HasDone})
		}
		st.mshrs = append(st.mshrs, m)
	}
	st.l1Pending = w.L1Pending
	st.prefetch = nil
	for _, p := range w.Prefetch {
		st.prefetch = append(st.prefetch, strideState{lastBlock: p.LastBlock, stride: p.Stride, confidence: p.Confidence})
	}
	st.prefetches, st.demand, st.ver = w.Prefetches, w.Demand, w.Ver
	return nil
}
