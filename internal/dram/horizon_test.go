package dram

import (
	"math/rand"
	"testing"
)

// randAddr draws a uniformly random in-range address.
func randAddr(rng *rand.Rand, g Geometry) Addr {
	return Addr{
		Channel:   rng.Intn(g.Channels),
		Rank:      rng.Intn(g.Ranks),
		BankGroup: rng.Intn(g.BankGroups),
		Bank:      rng.Intn(g.BanksPerGroup),
		Row:       rng.Intn(256),
		Col:       rng.Intn(g.Cols),
	}
}

var allCommands = []Command{CmdACT, CmdPRE, CmdRD, CmdWR, CmdREF}

// TestCanIssueCacheMatchesReference drives the device with random
// command streams (issuing whatever the reference check admits, host and
// NDA paths mixed) and asserts at every step that the horizon-cached
// CanIssue and the uncached canIssueRef agree for a battery of random
// (cmd, addr, now, internal) probes, and that NextIssue is consistent
// with both: no issue opportunity before the bound, an admitted issue at
// the bound for non-structurally-blocked commands.
func TestCanIssueCacheMatchesReference(t *testing.T) {
	g := DefaultGeometry()
	g.Rows = 256
	for _, refi := range []int{0, 700} {
		tm := DDR42400()
		tm.REFI = refi
		tm.RFC = 420
		m := New(g, tm)
		rng := rand.New(rand.NewSource(int64(7 + refi)))
		now := int64(0)
		for step := 0; step < 30_000; step++ {
			now += int64(rng.Intn(3))
			cmd := allCommands[rng.Intn(len(allCommands))]
			a := randAddr(rng, g)
			internal := rng.Intn(2) == 0
			if m.canIssueRef(cmd, a, now, internal) {
				m.Issue(cmd, a, now, internal)
				now++ // one command per cycle per channel at most
			}
			for probe := 0; probe < 4; probe++ {
				pc := allCommands[rng.Intn(len(allCommands))]
				pa := randAddr(rng, g)
				pn := now + int64(rng.Intn(64))
				pi := rng.Intn(2) == 0
				got := m.CanIssue(pc, pa, pn, pi)
				want := m.canIssueRef(pc, pa, pn, pi)
				if got != want {
					t.Fatalf("step %d: CanIssue(%v,%+v,%d,%v) cached=%v ref=%v",
						step, pc, pa, pn, pi, got, want)
				}
				ni := m.NextIssue(pc, pa, pn, pi)
				if ni > pn && m.canIssueRef(pc, pa, ni-1, pi) {
					t.Fatalf("step %d: %v %+v issuable at %d before NextIssue=%d",
						step, pc, pa, ni-1, ni)
				}
			}
		}
	}
}
