package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// domainExec is the phase-barriered channel-domain executor: a pool of
// persistent worker goroutines that, once per executed tick, claim due
// channel domains off a shared counter and run System.domainTick on
// them, with the calling goroutine (the coordinator) participating. The
// round ends when every domain has completed — the barrier behind which
// the serial commit phase runs.
//
// Determinism does not depend on the executor at all: domains touch no
// shared mutable state during the memory phase (dram.Mem, the
// controllers, and the rank NDAs are all channel-sharded, and
// cross-channel completion callbacks divert into per-domain
// mailboxes), so any assignment of domains to workers produces
// bit-identical state. The work-stealing claim counter is purely a
// load-balancing choice; it also guarantees progress when workers are
// descheduled (an oversubscribed or single-CPU machine): the
// coordinator drains whatever remains itself.
//
// Workers spin briefly between rounds (ticks in a hot RunFast loop
// arrive microseconds apart), yield for a while, then park on a
// condition variable; the coordinator wakes sleepers at the start of a
// round. The steady-state handoff is a few atomic operations per tick
// and allocates nothing.
type domainExec struct {
	s  *System
	nw int // total workers including the coordinator

	seq     atomic.Uint64 // round number; bumped to release workers
	next    atomic.Int32  // domain claim counter for the current round
	pending atomic.Int32  // domains not yet completed this round
	now     int64         // the round's DRAM cycle (published before next/seq)

	sleepers atomic.Int32
	stopped  atomic.Bool
	mu       sync.Mutex
	cond     *sync.Cond
	wg       sync.WaitGroup
}

// Spin tuning: hot spins poll the round counter back to back; yield
// spins Gosched between polls (so an oversubscribed coordinator can
// run); past the budget the worker parks.
const (
	execHotSpins   = 256
	execYieldSpins = 4096
)

// newDomainExec starts nw-1 worker goroutines (the caller is the nw-th
// worker). Callers ensure nw >= 2.
func newDomainExec(s *System, nw int) *domainExec {
	e := &domainExec{s: s, nw: nw}
	e.cond = sync.NewCond(&e.mu)
	e.wg.Add(nw - 1)
	for w := 1; w < nw; w++ {
		go e.worker()
	}
	return e
}

// round runs one memory phase: all domains, each exactly once, fanned
// across the pool. It returns only after every domain completed.
func (e *domainExec) round(now int64) {
	e.now = now
	e.pending.Store(int32(len(e.s.doms)))
	e.next.Store(0) // release-publishes now/pending to claimers
	e.seq.Add(1)
	if e.sleepers.Load() > 0 {
		e.mu.Lock()
		e.cond.Broadcast()
		e.mu.Unlock()
	}
	e.drain()
	// Wait for straggler workers still inside a claimed domain. The
	// remaining work is at most nw-1 domain ticks, so spin tightly and
	// yield: parking here would cost more than the wait.
	for spins := 0; e.pending.Load() != 0; spins++ {
		if spins > execHotSpins {
			runtime.Gosched()
		}
	}
}

// drain claims and runs domains until the current round has none left.
// The claim is a plain atomic increment: a claim that lands after a new
// round opened simply executes one of the new round's domains (now is
// re-read after the claim), which is exactly what some goroutine had to
// do anyway — rounds are delimited by pending, not by who claims.
func (e *domainExec) drain() {
	nd := int32(len(e.s.doms))
	for {
		d := e.next.Add(1) - 1
		if d >= nd {
			return
		}
		e.s.domainTick(int(d), e.now)
		e.pending.Add(-1)
	}
}

// worker is the persistent loop of one pool goroutine.
func (e *domainExec) worker() {
	defer e.wg.Done()
	var last uint64
	spins := 0
	for {
		cur := e.seq.Load()
		if cur == last {
			if e.stopped.Load() {
				return
			}
			spins++
			switch {
			case spins < execHotSpins:
				// hot poll
			case spins < execYieldSpins:
				runtime.Gosched()
			default:
				e.park(last)
				spins = 0
			}
			continue
		}
		last = cur
		spins = 0
		e.drain()
	}
}

// park blocks the worker until a broadcast (or stop). The handshake is
// deliberately loose: the coordinator reads the sleeper count without
// the mutex, so a worker that checks seq just before a round opens can
// register as a sleeper just after the coordinator saw zero and miss
// that round's broadcast entirely. That is safe ONLY because rounds
// are work-conserving — the coordinator drains every unclaimed domain
// itself and the barrier is pending==0, never wait-for-workers — so a
// sleeping worker merely sits out rounds until the next broadcast
// reaches it. Any restructure that makes round completion depend on a
// specific worker waking must first tighten this handshake.
func (e *domainExec) park(last uint64) {
	e.mu.Lock()
	for e.seq.Load() == last && !e.stopped.Load() {
		e.sleepers.Add(1)
		e.cond.Wait()
		e.sleepers.Add(-1)
	}
	e.mu.Unlock()
}

// stop terminates the pool and waits for the workers to exit.
func (e *domainExec) stop() {
	e.stopped.Store(true)
	e.mu.Lock()
	e.cond.Broadcast()
	e.mu.Unlock()
	e.wg.Wait()
}
