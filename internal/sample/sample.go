// Package sample implements the statistics side of SMARTS-style sampled
// simulation (Wunderlich et al., ISCA'03, adapted to this simulator in
// DESIGN.md §2.11): systematic sampling of detailed measurement windows
// separated by functional fast-forward, with per-metric point estimates
// and standard-error-derived confidence intervals.
//
// The execution side lives in internal/sim (System.RunSampled); this
// package holds the schedule configuration and the CI math so they can
// be tested without a simulator instance.
package sample

import (
	"fmt"
	"math"
)

// Config parameterizes one sampled run. All cycle quantities are DRAM
// cycles. The schedule is:
//
//	prime (detailed, unmeasured)
//	repeat Windows times:
//	    FF (functional fast-forward)
//	    Warmup (detailed, unmeasured)
//	    Detail (detailed, measured)
//
// The prime segment serves two purposes: it warms microarchitectural
// state from cold exactly as an unsampled run's warm-up would, and it
// yields the initial per-core IPC and per-rank NDA-rate estimates the
// first fast-forward segment scales its functional work by.
type Config struct {
	Windows int   // measured detailed windows (n of the CLT estimate)
	Detail  int64 // measured cycles per window
	Warmup  int64 // detailed-but-unmeasured prefix of each window
	FF      int64 // functional fast-forward cycles between windows
	Prime   int64 // initial detailed-but-unmeasured segment

	// Z is the confidence z-score for the reported intervals
	// (default 1.96, a 95% normal CI).
	Z float64

	// SystematicErr is the relative systematic-error floor folded into
	// every CI in quadrature (default 0.02). Sampling error (the CLT
	// term) vanishes as Windows grows, but functional fast-forward has
	// fidelity limits that do not: frozen in-flight misses, untrained
	// prefetchers, policy-free NDA drains. The floor keeps the reported
	// interval honest when the per-window variance happens to be tiny.
	SystematicErr float64
}

// WithDefaults fills zero fields with the default sampled schedule:
// 8 windows of 1000 measured cycles behind 300 warm-up cycles, 20k
// fast-forwarded cycles between windows, and a 2000-cycle prime.
func (c Config) WithDefaults() Config {
	if c.Windows == 0 {
		c.Windows = 8
	}
	if c.Detail == 0 {
		c.Detail = 1000
	}
	if c.Warmup == 0 {
		c.Warmup = 300
	}
	if c.FF == 0 {
		c.FF = 20000
	}
	if c.Prime == 0 {
		c.Prime = 2000
	}
	if c.Z == 0 {
		c.Z = 1.96
	}
	if c.SystematicErr == 0 {
		c.SystematicErr = 0.02
	}
	return c
}

// Validate rejects unusable schedules.
func (c Config) Validate() error {
	if c.Windows < 1 {
		return fmt.Errorf("sample: Windows %d < 1", c.Windows)
	}
	if c.Detail < 1 {
		return fmt.Errorf("sample: Detail %d < 1", c.Detail)
	}
	if c.Warmup < 0 || c.FF < 0 || c.Prime < 0 {
		return fmt.Errorf("sample: negative segment length in %+v", c)
	}
	return nil
}

// TotalCycles returns the simulated-time span of the schedule.
func (c Config) TotalCycles() int64 {
	return c.Prime + int64(c.Windows)*(c.FF+c.Warmup+c.Detail)
}

// DetailedCycles returns the cycles executed through the exact machinery
// (the cost side of the speedup ratio).
func (c Config) DetailedCycles() int64 {
	return c.Prime + int64(c.Windows)*(c.Warmup+c.Detail)
}

// Metric is one sampled measurement: the per-window observations, their
// point estimate, and the derived confidence half-width.
type Metric struct {
	Mean float64
	Std  float64 // sample standard deviation across windows (n-1)
	CI   float64 // confidence half-width: Mean ± CI

	PerWindow []float64
}

// NewMetric summarizes per-window observations under the CI model of
// DESIGN.md §2.11: the sampling term z·s/√n from the CLT over window
// means, combined in quadrature with the relative systematic floor
// sysErr·|mean|.
func NewMetric(perWindow []float64, z, sysErr float64) Metric {
	m := Metric{PerWindow: perWindow}
	n := len(perWindow)
	if n == 0 {
		return m
	}
	var sum float64
	for _, v := range perWindow {
		sum += v
	}
	m.Mean = sum / float64(n)
	if n > 1 {
		var ss float64
		for _, v := range perWindow {
			d := v - m.Mean
			ss += d * d
		}
		m.Std = math.Sqrt(ss / float64(n-1))
	}
	sampling := 0.0
	if n > 1 {
		sampling = z * m.Std / math.Sqrt(float64(n))
	}
	systematic := sysErr * math.Abs(m.Mean)
	m.CI = math.Sqrt(sampling*sampling + systematic*systematic)
	return m
}

// Contains reports whether x lies inside the confidence interval.
func (m Metric) Contains(x float64) bool {
	return math.Abs(x-m.Mean) <= m.CI
}

// RelErr returns |Mean-x|/|x|, the relative error of the point estimate
// against a reference value (0 when both are zero).
func (m Metric) RelErr(x float64) float64 {
	if x == 0 {
		if m.Mean == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(m.Mean-x) / math.Abs(x)
}

// Result is one sampled run's output.
type Result struct {
	HostIPC   Metric // summed host IPC per window
	NDABWGBs  Metric // NDA bandwidth, GB/s, per window
	HostBWGBs Metric // host DRAM bandwidth, GB/s, per window
	AvgPowerW Metric // memory-system average power, W, per window
	NDAUtil   Metric // fraction of host-idle rank bandwidth captured

	// Schedule accounting: cycles simulated in each mode.
	DetailCycles int64 // exact cycles (prime + warm-ups + measured)
	FFCycles     int64 // functionally fast-forwarded cycles
	TotalCycles  int64 // full simulated span
}

// String renders the headline estimates.
func (r *Result) String() string {
	return fmt.Sprintf("IPC %.4f±%.4f  NDA %.2f±%.2f GB/s  host %.2f±%.2f GB/s  %.2f±%.2f W  (%d detailed / %d total cycles)",
		r.HostIPC.Mean, r.HostIPC.CI, r.NDABWGBs.Mean, r.NDABWGBs.CI,
		r.HostBWGBs.Mean, r.HostBWGBs.CI, r.AvgPowerW.Mean, r.AvgPowerW.CI,
		r.DetailCycles, r.TotalCycles)
}
