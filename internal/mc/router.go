package mc

import "chopim/internal/addrmap"

// Router fans requests out to per-channel controllers by decoded channel
// index. It adapts the controllers to the cache.Backend interface, using
// a clock source for arrival timestamps.
type Router struct {
	ctrls  []*Controller
	mapper addrmap.Mapper
	now    func() int64
}

// NewRouter builds a router over the per-channel controllers.
func NewRouter(ctrls []*Controller, mapper addrmap.Mapper, now func() int64) *Router {
	return &Router{ctrls: ctrls, mapper: mapper, now: now}
}

// EnqueueRead implements cache.Backend.
func (r *Router) EnqueueRead(addr uint64, done func(int64)) bool {
	ch := r.mapper.Decode(addr).Channel
	return r.ctrls[ch].EnqueueRead(addr, r.now(), done)
}

// EnqueueWrite implements cache.Backend.
func (r *Router) EnqueueWrite(addr uint64) bool {
	ch := r.mapper.Decode(addr).Channel
	return r.ctrls[ch].EnqueueWrite(addr, r.now())
}

// Controllers returns the underlying per-channel controllers.
func (r *Router) Controllers() []*Controller { return r.ctrls }
