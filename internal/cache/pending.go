package cache

// pendingTable is a fixed-capacity open-addressed hash table mapping
// block index -> in-flight MSHR. It replaces a Go map for the LLC
// pending set because the zero-allocs steady-state contract needs a
// structure that is genuinely pre-sized to its config bound: a map at
// steady occupancy still reorganizes eventually under insert/delete
// churn (overflow buckets accumulate until a same-size grow), which is
// a heap allocation in the middle of a measured window. The table is
// allocated once at 12.5% maximum load, uses linear probing with
// backward-shift deletion (no tombstones, so probe chains never decay),
// and performs zero allocations after construction.
type pendingTable struct {
	keys []uint64
	vals []*mshr // nil marks an empty slot
	mask uint64
	n    int
}

// newPendingTable builds a table for at most bound live entries (the
// LLC MSHR count). Sized at >= 8x the bound, probe chains stay a few
// slots even in the worst case; the arrays for the default 48-MSHR
// configuration total 6 KiB.
func newPendingTable(bound int) *pendingTable {
	size := 64
	for size < 8*bound {
		size <<= 1
	}
	return &pendingTable{
		keys: make([]uint64, size),
		vals: make([]*mshr, size),
		mask: uint64(size - 1),
	}
}

// home returns the key's preferred slot (Fibonacci hashing: block
// indices are sequential-ish, so multiplicative scrambling matters).
func (t *pendingTable) home(b uint64) uint64 {
	return (b * 0x9E3779B97F4A7C15) & t.mask
}

// dist returns how far slot i is from the resident key's home slot.
func (t *pendingTable) dist(i uint64) uint64 {
	return (i - t.home(t.keys[i])) & t.mask
}

// len returns the number of live entries.
func (t *pendingTable) len() int { return t.n }

// get returns the MSHR for block b, or nil.
func (t *pendingTable) get(b uint64) *mshr {
	for i := t.home(b); t.vals[i] != nil; i = (i + 1) & t.mask {
		if t.keys[i] == b {
			return t.vals[i]
		}
	}
	return nil
}

// put inserts b -> m. The caller ensures b is absent and the table has
// room (occupancy is bounded by the MSHR limit checks in Access).
func (t *pendingTable) put(b uint64, m *mshr) {
	i := t.home(b)
	for t.vals[i] != nil {
		i = (i + 1) & t.mask
	}
	t.keys[i], t.vals[i] = b, m
	t.n++
}

// del removes block b if present, closing the probe chain by shifting
// displaced successors back toward their home slots (the standard
// linear-probing deletion: scan forward from the freed slot; an element
// moves into it iff its own probe path passes through it — i.e. its
// displacement from home reaches at least back to the hole — and the
// scan ends at the first empty slot).
func (t *pendingTable) del(b uint64) {
	i := t.home(b)
	for {
		if t.vals[i] == nil {
			return
		}
		if t.keys[i] == b {
			break
		}
		i = (i + 1) & t.mask
	}
	t.n--
	j := i
	for {
		t.keys[i], t.vals[i] = 0, nil
		for {
			j = (j + 1) & t.mask
			if t.vals[j] == nil {
				return
			}
			if t.dist(j) >= ((j - i) & t.mask) {
				break // j's probe path passes through the hole at i
			}
		}
		t.keys[i], t.vals[i] = t.keys[j], t.vals[j]
		i = j
	}
}
