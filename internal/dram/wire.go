// On-disk codec for MemState. The snapshot types are deliberately
// opaque, so the durable checkpoint file (sim.WriteCheckpoint) encodes
// them through exported mirror structs: every field of the in-memory
// snapshot round-trips, and a decoded state feeds the ordinary Restore
// path unchanged.
package dram

import "encoding/json"

type bankWire struct {
	Open bool
	Row  int

	NextACT, NextPRE, NextRD, NextWR int64

	HzStamp                              int64
	ReadyACT, ReadyPRE, ReadyRD, ReadyWR int64
}

type bgWire struct {
	NextACT, NextRD, NextWR int64
}

type rankWire struct {
	Banks []bankWire
	BGs   []bgWire

	NextACT, NextRD, NextWR int64

	FAW    []int64
	FAWIdx int

	Stamp, RowStamp             int64
	DataBusyUntil, RefreshUntil int64
}

type chanWire struct {
	Ranks []rankWire

	LastColValid bool
	LastColRead  bool
	LastColRank  int
	LastColCycle int64

	DataBusyUntil int64
	NextRefresh   int64

	ColStamp, ExtStamp                         int64
	ExtRDSame, ExtRDDiff, ExtWRSame, ExtWRDiff int64
}

type memWire struct {
	Channels []chanWire
	Cnts     []CmdCounts
	ChVer    []uint64
}

// MarshalJSON encodes the snapshot for the durable checkpoint file.
func (st *MemState) MarshalJSON() ([]byte, error) {
	w := memWire{Cnts: st.cnts, ChVer: st.chVer}
	for c := range st.channels {
		ch := &st.channels[c]
		cw := chanWire{
			LastColValid: ch.lastColValid, LastColRead: ch.lastColRead,
			LastColRank: ch.lastColRank, LastColCycle: ch.lastColCycle,
			DataBusyUntil: ch.dataBusyUntil, NextRefresh: ch.nextRefresh,
			ColStamp: ch.colStamp, ExtStamp: ch.extStamp,
			ExtRDSame: ch.extRDSame, ExtRDDiff: ch.extRDDiff,
			ExtWRSame: ch.extWRSame, ExtWRDiff: ch.extWRDiff,
		}
		for r := range ch.ranks {
			rk := &ch.ranks[r]
			rw := rankWire{
				NextACT: rk.nextACT, NextRD: rk.nextRD, NextWR: rk.nextWR,
				FAW: rk.faw, FAWIdx: rk.fawIdx,
				Stamp: rk.stamp, RowStamp: rk.rowStamp,
				DataBusyUntil: rk.dataBusyUntil, RefreshUntil: rk.refreshUntil,
			}
			for _, b := range rk.banks {
				rw.Banks = append(rw.Banks, bankWire{
					Open: b.open, Row: b.row,
					NextACT: b.nextACT, NextPRE: b.nextPRE, NextRD: b.nextRD, NextWR: b.nextWR,
					HzStamp:  b.hzStamp,
					ReadyACT: b.readyACT, ReadyPRE: b.readyPRE, ReadyRD: b.readyRD, ReadyWR: b.readyWR,
				})
			}
			for _, g := range rk.bgs {
				rw.BGs = append(rw.BGs, bgWire{NextACT: g.nextACT, NextRD: g.nextRD, NextWR: g.nextWR})
			}
			cw.Ranks = append(cw.Ranks, rw)
		}
		w.Channels = append(w.Channels, cw)
	}
	return json.Marshal(w)
}

// UnmarshalJSON rebuilds the snapshot written by MarshalJSON.
func (st *MemState) UnmarshalJSON(b []byte) error {
	var w memWire
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	st.cnts, st.chVer = w.Cnts, w.ChVer
	st.channels = make([]chanState, len(w.Channels))
	for c := range w.Channels {
		cw := &w.Channels[c]
		ch := &st.channels[c]
		ch.lastColValid, ch.lastColRead = cw.LastColValid, cw.LastColRead
		ch.lastColRank, ch.lastColCycle = cw.LastColRank, cw.LastColCycle
		ch.dataBusyUntil, ch.nextRefresh = cw.DataBusyUntil, cw.NextRefresh
		ch.colStamp, ch.extStamp = cw.ColStamp, cw.ExtStamp
		ch.extRDSame, ch.extRDDiff = cw.ExtRDSame, cw.ExtRDDiff
		ch.extWRSame, ch.extWRDiff = cw.ExtWRSame, cw.ExtWRDiff
		ch.ranks = make([]rankState, len(cw.Ranks))
		for r := range cw.Ranks {
			rw := &cw.Ranks[r]
			rk := &ch.ranks[r]
			rk.nextACT, rk.nextRD, rk.nextWR = rw.NextACT, rw.NextRD, rw.NextWR
			rk.faw, rk.fawIdx = rw.FAW, rw.FAWIdx
			rk.stamp, rk.rowStamp = rw.Stamp, rw.RowStamp
			rk.dataBusyUntil, rk.refreshUntil = rw.DataBusyUntil, rw.RefreshUntil
			rk.banks = make([]bankState, len(rw.Banks))
			for i, bw := range rw.Banks {
				rk.banks[i] = bankState{
					open: bw.Open, row: bw.Row,
					nextACT: bw.NextACT, nextPRE: bw.NextPRE, nextRD: bw.NextRD, nextWR: bw.NextWR,
					hzStamp:  bw.HzStamp,
					readyACT: bw.ReadyACT, readyPRE: bw.ReadyPRE, readyRD: bw.ReadyRD, readyWR: bw.ReadyWR,
				}
			}
			rk.bgs = make([]bgState, len(rw.BGs))
			for i, gw := range rw.BGs {
				rk.bgs[i] = bgState{nextACT: gw.NextACT, nextRD: gw.NextRD, nextWR: gw.NextWR}
			}
		}
	}
	return nil
}
