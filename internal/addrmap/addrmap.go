// Package addrmap translates OS physical addresses into DRAM addresses
// (channel, rank, bank group, bank, row, column).
//
// It provides the paper's two mappings:
//
//   - A Skylake-style baseline (Fig 4a): fine-grain channel interleaving
//     and XOR hashing of bank/rank/channel bits with row bits, as reverse
//     engineered by Pessl et al. (DRAMA).
//   - The proposed mapping (Fig 4b) that additionally supports bank
//     partitioning compatible with huge pages and arbitrary hashing: the
//     most significant physical bits select only the row, and addresses
//     whose hashed bank lands in a reserved bank have their bank bits and
//     row MSBs swapped.
//
// It also exposes the PFN "color" bits that the OS/runtime use to keep NDA
// operands rank-aligned (Section III-A).
package addrmap

import (
	"fmt"

	"chopim/internal/dram"
)

// Mapper decodes a physical address into a DRAM location.
type Mapper interface {
	Decode(pa uint64) dram.Addr
	Geometry() dram.Geometry
	// ColorBits returns the physical-address bit positions (all above the
	// system-row offset) that influence channel/rank/bank selection. Two
	// system-row-aligned allocations whose addresses agree on these bits
	// interleave identically across the memory system.
	ColorBits() []uint
	// Fingerprint identifies the mapping function: two mappers with equal
	// fingerprints decode every physical address identically. Decoded-
	// layout caches key on it to share results across mapper instances
	// (e.g. forked simulations rebuilt from a snapshot).
	Fingerprint() string
}

// field describes one decoded output bit as the XOR of physical bits.
type field struct {
	bits [][]uint // per output bit, the physical bit positions XORed
}

func (f field) decode(pa uint64) int {
	v := 0
	for i, xs := range f.bits {
		b := uint64(0)
		for _, x := range xs {
			b ^= pa >> x
		}
		v |= int(b&1) << i
	}
	return v
}

// XORMap is a generic linear (XOR-based) address mapping.
type XORMap struct {
	geom dram.Geometry

	ch, rank, bg, bank, row, col field
	colorBits                    []uint
	rowMSBs                      []uint // top bank-field-width row physical bits
	fp                           string // immutable, set at construction
}

// log2 returns floor(log2(n)); n must be a positive power of two.
func log2(n int) uint {
	var k uint
	for 1<<(k+1) <= n {
		k++
	}
	if 1<<k != n {
		panic(fmt.Sprintf("addrmap: %d is not a power of two", n))
	}
	return k
}

// NewSkylakeLike builds the baseline mapping for the given geometry:
//
//	block offset (6b) | col[0:2] | channel (hashed) | col[2:] |
//	bank group (hashed) | bank (hashed) | rank (hashed) | row (direct)
//
// Channel, bank-group, bank, and rank bits are each XORed with low row
// bits so that strided host access patterns spread across banks (the
// permutation-based interleaving the paper assumes). The top row bits are
// direct physical MSBs, which the proposed partitioned mapping requires.
func NewSkylakeLike(g dram.Geometry) *XORMap {
	m, err := NewSkylakeLikeChecked(g)
	if err != nil {
		panic(err)
	}
	return m
}

// NewSkylakeLikeChecked is NewSkylakeLike returning invalid geometry as
// an error instead of panicking — the form sweep drivers use, where a
// bad point must be rejectable without killing the process. Geometry
// validation (positive powers of two everywhere) is the only failure
// mode; past it, construction cannot fail.
func NewSkylakeLikeChecked(g dram.Geometry) (*XORMap, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	m := &XORMap{geom: g}
	pos := uint(6) // 64B block offset

	nCol := log2(g.Cols)
	nCh := log2(g.Channels)
	nBG := log2(g.BankGroups)
	nBank := log2(g.BanksPerGroup)
	nRank := log2(g.Ranks)
	nRow := log2(g.Rows)

	// Row bits start after all interleave fields.
	rowBase := 6 + nCol + nCh + nBG + nBank + nRank
	hash := rowBase // next row-region bit used as an XOR partner

	take := func(n uint, hashed bool) field {
		f := field{}
		for i := uint(0); i < n; i++ {
			bits := []uint{pos}
			if hashed {
				bits = append(bits, hash)
				hash++
			}
			f.bits = append(f.bits, bits)
			pos++
		}
		return f
	}

	colLow := uint(2)
	if nCol < colLow {
		colLow = nCol
	}
	fcolLow := take(colLow, false)
	fch := take(nCh, true)
	fcolHigh := take(nCol-colLow, false)
	m.col = field{bits: append(fcolLow.bits, fcolHigh.bits...)}
	m.ch = fch
	m.bg = take(nBG, true)
	m.bank = take(nBank, true)
	m.rank = take(nRank, true)
	if pos != rowBase {
		panic("addrmap: internal layout error")
	}
	m.row = take(nRow, false)

	// Color bits: every physical bit above the system-row offset that
	// influences ch/rank/bg/bank. System row offset covers all bits below
	// rowBase plus the hash partners consumed (hash partners sit at the
	// bottom of the row region, inside the system-row span).
	sysRowBits := log2(g.SystemRowBytes())
	seen := map[uint]bool{}
	for _, f := range []field{m.ch, m.rank, m.bg, m.bank} {
		for _, xs := range f.bits {
			for _, x := range xs {
				if x >= sysRowBits && !seen[x] {
					seen[x] = true
					m.colorBits = append(m.colorBits, x)
				}
			}
		}
	}
	// Record the top bank-field-width row physical bits for partitioning.
	nBankField := nBG + nBank
	top := pos // one past the highest physical bit
	for i := uint(0); i < nBankField; i++ {
		m.rowMSBs = append(m.rowMSBs, top-nBankField+i)
	}
	// The Skylake-like layout is a pure function of the geometry, so the
	// geometry identifies the mapping exactly.
	m.fp = fmt.Sprintf("skylake/%dch-%drk-%dbg-%dbk-%drow-%dcol",
		g.Channels, g.Ranks, g.BankGroups, g.BanksPerGroup, g.Rows, g.Cols)
	return m, nil
}

// Decode implements Mapper.
func (m *XORMap) Decode(pa uint64) dram.Addr {
	return dram.Addr{
		Channel:   m.ch.decode(pa),
		Rank:      m.rank.decode(pa),
		BankGroup: m.bg.decode(pa),
		Bank:      m.bank.decode(pa),
		Row:       m.row.decode(pa),
		Col:       m.col.decode(pa),
	}
}

// Geometry implements Mapper.
func (m *XORMap) Geometry() dram.Geometry { return m.geom }

// ColorBits implements Mapper.
func (m *XORMap) ColorBits() []uint { return m.colorBits }

// Fingerprint implements Mapper.
func (m *XORMap) Fingerprint() string { return m.fp }

// AddressBits returns the number of physical address bits the mapping
// consumes (log2 of capacity).
func (m *XORMap) AddressBits() uint {
	return uint(len(m.row.bits)+len(m.col.bits)+len(m.ch.bits)+
		len(m.rank.bits)+len(m.bg.bits)+len(m.bank.bits)) + 6
}

// PartitionedMap implements the paper's proposed mapping (Fig 4b). The OS
// reserves the top ReservedBanks banks of every rank for the shared
// (host+NDA) region and the top slice of the physical address space to
// back them. Host-only addresses never carry the reserved patterns in
// their MSBs; when the base hash maps such an address onto a reserved
// bank, the bank field and the row MSBs are swapped, relocating the access
// into a host-only bank without aliasing.
type PartitionedMap struct {
	Base          *XORMap
	ReservedBanks int // banks per rank dedicated to the shared region
}

// NewPartitioned wraps base with reservedBanks top banks set aside per
// rank. reservedBanks must be in [1, banksPerRank-1].
func NewPartitioned(base *XORMap, reservedBanks int) *PartitionedMap {
	p, err := NewPartitionedChecked(base, reservedBanks)
	if err != nil {
		panic(err)
	}
	return p
}

// NewPartitionedChecked is NewPartitioned returning an out-of-range
// reservation as an error instead of panicking (the sweep-driver form:
// a bad point must be rejectable without killing the process).
func NewPartitionedChecked(base *XORMap, reservedBanks int) (*PartitionedMap, error) {
	n := base.geom.BanksPerRank()
	if reservedBanks < 1 || reservedBanks >= n {
		return nil, fmt.Errorf("addrmap: reservedBanks %d out of range [1,%d)", reservedBanks, n-1)
	}
	return &PartitionedMap{Base: base, ReservedBanks: reservedBanks}, nil
}

// HostCapacity returns the bytes of physical space usable for host-only
// allocations (the bottom of the address space).
func (p *PartitionedMap) HostCapacity() uint64 {
	g := p.Base.geom
	frac := uint64(g.BanksPerRank() - p.ReservedBanks)
	return g.Capacity() / uint64(g.BanksPerRank()) * frac
}

// SharedBase returns the first physical address of the shared region.
func (p *PartitionedMap) SharedBase() uint64 { return p.HostCapacity() }

// bankFieldWidth returns the combined bank-group+bank bit width.
func (p *PartitionedMap) bankFieldWidth() uint {
	return uint(len(p.Base.bg.bits) + len(p.Base.bank.bits))
}

// Decode implements Mapper with the reserved-bank swap. The swap fires
// when either the hash places the access in a reserved bank (relocating
// host data out of the shared banks) or the address MSBs carry a reserved
// pattern (pinning shared-region data into the reserved banks) — the two
// sides of the Fig 4b multiplexer. The four (bank reserved?, MSB
// reserved?) cases land in disjoint quadrants, so the mapping stays
// alias-free.
func (p *PartitionedMap) Decode(pa uint64) dram.Addr {
	a := p.Base.Decode(pa)
	g := p.Base.geom
	nb := g.BanksPerRank()
	thresh := nb - p.ReservedBanks
	flat := a.GlobalBank(g)
	msb := 0
	for i, bit := range p.Base.rowMSBs {
		msb |= int(pa>>bit&1) << i
	}
	if flat < thresh && msb < thresh {
		return a
	}
	// Swap the bank field with the row MSBs: new bank = MSBs, new row
	// MSBs = initial hashed bank.
	w := p.bankFieldWidth()
	rowMask := (1 << w) - 1
	rowShift := uint(len(p.Base.row.bits)) - w
	a.Row = a.Row&^(rowMask<<rowShift) | flat<<rowShift
	a.BankGroup = msb / g.BanksPerGroup
	a.Bank = msb % g.BanksPerGroup
	return a
}

// Geometry implements Mapper.
func (p *PartitionedMap) Geometry() dram.Geometry { return p.Base.geom }

// ColorBits implements Mapper.
func (p *PartitionedMap) ColorBits() []uint { return p.Base.ColorBits() }

// Fingerprint implements Mapper.
func (p *PartitionedMap) Fingerprint() string {
	return fmt.Sprintf("%s/part%d", p.Base.Fingerprint(), p.ReservedBanks)
}

// IsSharedBank reports whether the rank-local flat bank index belongs to
// the reserved (shared host+NDA) partition.
func (p *PartitionedMap) IsSharedBank(flatBank int) bool {
	return flatBank >= p.Base.geom.BanksPerRank()-p.ReservedBanks
}
