package nda

import (
	"errors"
	"fmt"
	"math/rand"

	"chopim/internal/dram"
)

// countedSource wraps math/rand's generator and counts state advances so
// a snapshot can record the stream position and a restore can replay to
// it. Int63 and Uint64 each advance the underlying generator exactly
// once (Int63 is the masked Uint64, matching math/rand's own source), so
// the emitted stream is identical to an uncounted source with the same
// seed.
type countedSource struct {
	src   rand.Source64
	draws uint64
}

func newCountedSource(seed int64) *countedSource {
	return &countedSource{src: rand.NewSource(seed).(rand.Source64)}
}

func (c *countedSource) Int63() int64 {
	c.draws++
	return int64(c.src.Uint64() &^ (1 << 63))
}

func (c *countedSource) Uint64() uint64 {
	c.draws++
	return c.src.Uint64()
}

func (c *countedSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.draws = 0
}

// replayTo reseeds and burns draws advances, leaving the source in the
// exact state a live run reached after that many draws.
func (c *countedSource) replayTo(seed int64, draws uint64) {
	c.src.Seed(seed)
	for i := uint64(0); i < draws; i++ {
		c.src.Uint64()
	}
	c.draws = draws
}

// opState records one in-flight op as (blueprint tag, progress). The
// iterators themselves are never serialized: they are pure deterministic
// streams, so replaying fetched reads and emitted writes against a
// freshly built op reproduces the exact internal cursor state.
type opState struct {
	tag       any
	fetched   int
	emitted   int
	exhausted bool
	pendingWr int
	pushed    dram.Addr
	hasPushed bool
}

// wbState is one pending result block; owner indexes the rank's ops
// slice (an entry's owner always has pendingWr > 0 and therefore is
// still queued).
type wbState struct {
	addr  dram.Addr
	owner int
}

type fsmState struct {
	ops      []opState
	wb       []wbState
	draining bool
	readsRun int
	rngDraws uint64
	stats    RankStats
}

// EngineState is an opaque deep copy of every rank FSM's mutable state.
// The sleep caches are not captured: restore marks every rank stale and
// the bounds re-derive from restored state.
type EngineState struct {
	ranks [][]fsmState // [channel][rank]
}

// Snapshot captures all rank FSMs. encodeTag, when non-nil, maps each
// op's launcher blueprint (Op.Tag) to a self-contained value the
// launcher can rebuild from on restore — the ndart runtime swaps its
// live pointers for table indices here. Snapshot fails under VerifyFSM
// (the replica FSM is not captured) and for ops launched without a tag.
func (e *Engine) Snapshot(encodeTag func(tag any) any) (*EngineState, error) {
	if e.cfg.VerifyFSM {
		return nil, errors.New("nda: snapshot unsupported with VerifyFSM")
	}
	st := &EngineState{ranks: make([][]fsmState, len(e.Ranks))}
	for ch, row := range e.Ranks {
		st.ranks[ch] = make([]fsmState, len(row))
		for ri, n := range row {
			f := &n.fsm
			fs := &st.ranks[ch][ri]
			fs.draining, fs.readsRun = f.draining, f.readsRun
			fs.rngDraws = f.rngSrc.draws
			fs.stats = f.stats
			ownerIdx := make(map[*Op]int, len(f.ops))
			for i, op := range f.ops {
				if op.Tag == nil {
					return nil, fmt.Errorf("nda: op %v on ch%d/rk%d has no snapshot tag", op.Kind, ch, ri)
				}
				tag := op.Tag
				if encodeTag != nil {
					tag = encodeTag(tag)
				}
				fs.ops = append(fs.ops, opState{
					tag: tag, fetched: op.fetched, emitted: op.emitted,
					exhausted: op.exhausted, pendingWr: op.pendingWr,
					pushed: op.pushed, hasPushed: op.hasPushed,
				})
				ownerIdx[op] = i
			}
			for i := 0; i < f.wb.Len(); i++ {
				ent := f.wb.At(i)
				oi, ok := ownerIdx[ent.owner]
				if !ok {
					return nil, fmt.Errorf("nda: write-buffer entry on ch%d/rk%d owned by a retired op", ch, ri)
				}
				fs.wb = append(fs.wb, wbState{addr: ent.addr, owner: oi})
			}
		}
	}
	return st, nil
}

// Restore overwrites every rank FSM with the snapshot. The engine must
// have been built with the same config and geometry. buildOp rebuilds a
// fresh op (fresh iterators, completion wiring included) from a tag
// produced by Snapshot's encodeTag.
func (e *Engine) Restore(st *EngineState, buildOp func(tag any) *Op) {
	if len(st.ranks) != len(e.Ranks) {
		panic("nda: restore onto an engine with different channel count")
	}
	for ch, row := range e.Ranks {
		if len(st.ranks[ch]) != len(row) {
			panic("nda: restore onto an engine with different rank count")
		}
		for ri, n := range row {
			fs := &st.ranks[ch][ri]
			f := &n.fsm
			f.ops = f.ops[:0]
			for _, os := range fs.ops {
				op := buildOp(os.tag)
				// Replay the deterministic streams to the recorded
				// position: fetched successful reads reproduce the
				// round-robin operand walk, emitted writes the result
				// cursor. The trailing exhaustion probe (if any) is not
				// replayed — once the flag is set the iterators are never
				// touched again.
				for i := 0; i < os.fetched; i++ {
					if _, ok := op.nextRead(); !ok {
						panic("nda: restore read replay ran dry")
					}
				}
				for i := 0; i < os.emitted; i++ {
					if _, ok := op.Writes(); !ok {
						panic("nda: restore write replay ran dry")
					}
				}
				op.emitted = os.emitted
				op.exhausted = os.exhausted
				op.pendingWr = os.pendingWr
				op.pushed, op.hasPushed = os.pushed, os.hasPushed
				f.ops = append(f.ops, op)
			}
			for f.wb.Len() > 0 {
				f.wb.Pop()
			}
			for _, ws := range fs.wb {
				f.wb.Push(wbEntry{addr: ws.addr, owner: f.ops[ws.owner]})
			}
			f.draining, f.readsRun = fs.draining, fs.readsRun
			f.rngSrc.replayTo(f.rngSeed, fs.rngDraws)
			f.stats = fs.stats
			n.sleepStale = true
		}
	}
}
