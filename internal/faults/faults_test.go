package faults

import (
	"errors"
	"testing"

	"chopim/internal/dram"
)

func TestDisarmedIsInert(t *testing.T) {
	if Active() {
		t.Fatal("registry reports armed with no hooks installed")
	}
	if got := Adjust(SimNextEvent, 42); got != 42 {
		t.Fatalf("disarmed Adjust changed value: got %d", got)
	}
	if err := FireErr(RunnerPointErr, 0); err != nil {
		t.Fatalf("disarmed FireErr returned %v", err)
	}
}

func TestArmAdjustAndDisarm(t *testing.T) {
	disarm := ArmAdjust(SimNextEvent, func(v int64) int64 { return v + 1 })
	if !Active() {
		t.Fatal("registry not active after arming")
	}
	if got := Adjust(SimNextEvent, 10); got != 11 {
		t.Fatalf("armed Adjust: got %d, want 11", got)
	}
	// Other sites are unaffected.
	if got := Adjust(RunnerPoint, 10); got != 10 {
		t.Fatalf("unrelated site adjusted: got %d", got)
	}
	disarm()
	if Active() {
		t.Fatal("registry still active after disarm")
	}
	if got := Adjust(SimNextEvent, 10); got != 10 {
		t.Fatalf("disarmed Adjust still firing: got %d", got)
	}
}

func TestArmErrAndDisarm(t *testing.T) {
	want := errors.New("boom")
	disarm := ArmErr(RunnerPointErr, func(v int64) error {
		if v == 3 {
			return want
		}
		return nil
	})
	defer disarm()
	if err := FireErr(RunnerPointErr, 2); err != nil {
		t.Fatalf("unmatched point fired: %v", err)
	}
	if err := FireErr(RunnerPointErr, 3); err != want {
		t.Fatalf("got %v, want %v", err, want)
	}
}

func TestInjectedErrorIsTemporary(t *testing.T) {
	err := error(&InjectedError{Site: RunnerPointErr, Point: 7})
	var tmp interface{ Temporary() bool }
	if !errors.As(err, &tmp) || !tmp.Temporary() {
		t.Fatal("InjectedError must advertise Temporary() true")
	}
}

func TestArmSpecPanicPoint(t *testing.T) {
	if err := ArmSpec("panic-point=2"); err != nil {
		t.Fatal(err)
	}
	defer drainHooks(t)
	if got := Adjust(RunnerPoint, 1); got != 1 {
		t.Fatalf("non-target point adjusted: %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("panic-point hook did not panic at its target")
		}
	}()
	Adjust(RunnerPoint, 2)
}

func TestArmSpecPointErrBudget(t *testing.T) {
	if err := ArmSpec("point-err=1:2"); err != nil {
		t.Fatal(err)
	}
	defer drainHooks(t)
	if err := FireErr(RunnerPointErr, 0); err != nil {
		t.Fatalf("non-target point errored: %v", err)
	}
	for i := 0; i < 2; i++ {
		var ie *InjectedError
		if err := FireErr(RunnerPointErr, 1); !errors.As(err, &ie) {
			t.Fatalf("attempt %d: got %v, want InjectedError", i, err)
		}
	}
	// The budget of 2 is spent; the point now succeeds (a transient
	// fault that a retry survives).
	if err := FireErr(RunnerPointErr, 1); err != nil {
		t.Fatalf("exhausted budget still firing: %v", err)
	}
}

func TestArmSpecStuckHorizon(t *testing.T) {
	if err := ArmSpec("stuck-horizon=1000"); err != nil {
		t.Fatal(err)
	}
	defer drainHooks(t)
	if got := Adjust(SimNextEvent, 500); got != 500 {
		t.Fatalf("below threshold adjusted: %d", got)
	}
	if got := Adjust(SimNextEvent, 1000); got != dram.Never {
		t.Fatalf("at threshold: got %d, want Never", got)
	}
}

func TestArmSpecRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{"panic-point", "panic-point=x", "point-err=a:b", "stuck-horizon=", "nonsense=1"} {
		if err := ArmSpec(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
			drainHooks(t)
		}
	}
}

// drainHooks removes everything ArmSpec installed (it returns no disarm
// closures — CLI hooks live for the process) so tests stay independent.
func drainHooks(t *testing.T) {
	t.Helper()
	DisarmAll()
	if Active() {
		t.Fatal("registry still armed after drain")
	}
}
