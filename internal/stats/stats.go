// Package stats collects simulation metrics: IPC, bandwidth utilization,
// and the rank idle-gap histograms behind the paper's Figure 2.
package stats

import "fmt"

// IdleBucket labels one bin of the idle-gap histogram (Fig 2).
type IdleBucket int

// Buckets follow the paper: cycles spent busy, then idle gaps binned by
// gap length in DRAM cycles.
const (
	Busy IdleBucket = iota
	Idle1To10
	Idle10To100
	Idle100To250
	Idle250To500
	Idle500To1000
	Idle1000Plus
	NumIdleBuckets
)

// String returns the figure legend label for the bucket.
func (b IdleBucket) String() string {
	switch b {
	case Busy:
		return "Busy"
	case Idle1To10:
		return "1-10"
	case Idle10To100:
		return "10-100"
	case Idle100To250:
		return "100-250"
	case Idle250To500:
		return "250-500"
	case Idle500To1000:
		return "500-1000"
	case Idle1000Plus:
		return "1000-"
	}
	return fmt.Sprintf("IdleBucket(%d)", int(b))
}

// bucketOf classifies a gap length in cycles.
func bucketOf(gap int64) IdleBucket {
	switch {
	case gap <= 10:
		return Idle1To10
	case gap <= 100:
		return Idle10To100
	case gap <= 250:
		return Idle100To250
	case gap <= 500:
		return Idle250To500
	case gap <= 1000:
		return Idle500To1000
	default:
		return Idle1000Plus
	}
}

// IdleHist accumulates a per-rank busy/idle cycle breakdown. Busy
// intervals must be reported in non-decreasing start order (as a memory
// controller naturally does).
type IdleHist struct {
	cycles  [NumIdleBuckets]int64
	start   int64 // observation window start
	busyEnd int64 // end of the latest busy interval seen
	started bool
}

// MarkBusy records that the rank was busy during [from, to).
func (h *IdleHist) MarkBusy(from, to int64) {
	if to <= from {
		return
	}
	if !h.started {
		h.started = true
		h.start = 0
		h.busyEnd = 0
	}
	if from > h.busyEnd {
		gap := from - h.busyEnd
		h.cycles[bucketOf(gap)] += gap
	}
	if from < h.busyEnd {
		from = h.busyEnd
	}
	if to > from {
		h.cycles[Busy] += to - from
		h.busyEnd = to
	}
}

// Finalize closes the observation window at cycle end, accounting the
// trailing idle gap.
func (h *IdleHist) Finalize(end int64) {
	if end > h.busyEnd {
		gap := end - h.busyEnd
		h.cycles[bucketOf(gap)] += gap
		h.busyEnd = end
	}
}

// Fractions returns each bucket's share of total observed cycles.
func (h *IdleHist) Fractions() [NumIdleBuckets]float64 {
	var out [NumIdleBuckets]float64
	var total int64
	for _, c := range h.cycles {
		total += c
	}
	if total == 0 {
		return out
	}
	for i, c := range h.cycles {
		out[i] = float64(c) / float64(total)
	}
	return out
}

// Cycles returns the raw per-bucket cycle counts.
func (h *IdleHist) Cycles() [NumIdleBuckets]int64 { return h.cycles }

// BusyCycles returns cycles the rank spent servicing host traffic.
func (h *IdleHist) BusyCycles() int64 { return h.cycles[Busy] }
