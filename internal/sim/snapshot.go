package sim

import (
	"errors"

	"chopim/internal/cache"
	"chopim/internal/cpu"
	"chopim/internal/dram"
	"chopim/internal/mc"
	"chopim/internal/nda"
	"chopim/internal/ndart"
	"chopim/internal/osmem"
	"chopim/internal/workload"
)

// Checkpoint is a deep copy of a System's full simulation state at a
// quiescent point (between ticks): DRAM bank/timing state, the OS
// allocator, every core's ROB and trace cursor, the cache hierarchy
// with its in-flight misses, the NDA engine's rank FSMs with their
// in-flight ops, the runtime's object graph and pending launch packets,
// every controller's queues, and the clock/measurement scalars.
//
// A checkpoint shares nothing mutable with the system it was taken
// from: it can outlive it, and it can seed any number of forks —
// RestoreSystem builds an independent system per call, so one warmed-up
// checkpoint fans out across figure points. Scheduling caches are not
// captured; restore marks them stale and they re-derive, which is
// behavior-identical because skips are individually proven no-ops.
type Checkpoint struct {
	dram  *dram.MemState
	os    *osmem.OSState
	mcs   []*mc.ControllerState
	hier  *cache.HierarchyState // nil when the system has no host cores
	cores []*cpu.CoreState
	gens  []*workload.GenState
	eng   *nda.EngineState
	rt    *ndart.RuntimeState

	dramCycle     int64
	cpuCycle      int64
	credit        int
	measStartDRAM int64
	measStartCPU  int64
	retiredAtMeas []int64
	coreEpoch     []uint64
}

// Cycle returns the DRAM cycle the checkpoint was taken at.
func (ck *Checkpoint) Cycle() int64 { return ck.dramCycle }

// Snapshot captures the system's full simulation state. It must be
// called between steps (Run/RunFast/StepFast boundaries — the domain
// mailboxes are drained there). It fails while host-mediated copies
// are in flight and under nda.Config.VerifyFSM; both are transient or
// debug-only conditions, not steady-state ones.
func (s *System) Snapshot() (*Checkpoint, error) {
	ck, _, err := s.SnapshotWithRoots(nil)
	return ck, err
}

// SnapshotWithRoots is Snapshot plus explicit root handles: each handle
// in roots is registered in the checkpoint's handle table even when no
// in-flight op references it, and its table index is returned in
// matching order. The indices are the durable names a driver persists
// alongside the checkpoint file; after restoring in a fresh process,
// RT.RestoredHandleAt(index) recovers the rebuilt handle (the old
// pointer, the in-memory RestoredHandle key, does not survive a process
// boundary).
func (s *System) SnapshotWithRoots(roots []*ndart.Handle) (*Checkpoint, []int, error) {
	for d := range s.doms {
		if len(s.doms[d].outbox) != 0 {
			return nil, nil, errors.New("sim: snapshot mid-tick (domain mailboxes not drained)")
		}
	}
	enc := s.RT.NewSnapshotEncoder()
	engSt, err := s.NDA.Snapshot(enc.EncodeTag)
	if err != nil {
		return nil, nil, err
	}
	var rootIdx []int
	for _, h := range roots {
		rootIdx = append(rootIdx, enc.RegisterHandle(h))
	}
	rtSt, err := s.RT.Snapshot(enc)
	if err != nil {
		return nil, nil, err
	}
	ck := &Checkpoint{
		dram: s.Mem.Snapshot(),
		os:   s.OS.Snapshot(),
		eng:  engSt,
		rt:   rtSt,

		dramCycle: s.dramCycle, cpuCycle: s.cpuCycle, credit: s.credit,
		measStartDRAM: s.measStartDRAM, measStartCPU: s.measStartCPU,
		retiredAtMeas: append([]int64(nil), s.retiredAtMeas...),
		coreEpoch:     append([]uint64(nil), s.coreEpoch...),
	}
	for _, c := range s.MCs {
		ck.mcs = append(ck.mcs, c.Snapshot())
	}
	if s.Hier != nil {
		ck.hier = s.Hier.Snapshot()
	}
	for i, c := range s.Cores {
		ck.cores = append(ck.cores, c.Snapshot())
		ck.gens = append(ck.gens, s.gens[i].Snapshot())
	}
	return ck, rootIdx, nil
}

// Restore overwrites the system's state with the checkpoint. The system
// must have been built from the same Config the checkpointed system was
// (SimWorkers and ProfileDomains may differ — they do not affect
// simulated state). Continuing a restored system is bit-identical to
// continuing the original, on both the reference and fast paths.
func (s *System) Restore(ck *Checkpoint) {
	if len(ck.mcs) != len(s.MCs) || len(ck.cores) != len(s.Cores) ||
		(ck.hier == nil) != (s.Hier == nil) {
		panic("sim: restore onto a system with a different configuration")
	}
	s.Mem.Restore(ck.dram)
	s.OS.Restore(ck.os)
	for i, c := range s.Cores {
		c.Restore(ck.cores[i])
		s.gens[i].Restore(ck.gens[i])
	}
	if s.Hier != nil {
		s.Hier.Restore(ck.hier, func(core, slot int) func(int64) {
			return s.Cores[core].DoneFn(slot)
		})
	}
	dec := s.RT.Restore(ck.rt)
	s.NDA.Restore(ck.eng, dec)
	// Requests that carried completion closures reattach through the
	// restored front-ends: a tagged write is a launch packet (registry
	// callback), a read with a callback is a host demand miss (its MSHR
	// fill). Copy-pump reads cannot appear — Snapshot refuses while the
	// copier is busy.
	resolve := func(write bool, addr uint64, tag uint64) func(int64) {
		if write {
			if tag == 0 {
				panic("sim: restored write with a completion but no launch tag")
			}
			return s.RT.LaunchDone(tag)
		}
		return s.Hier.FillFor(addr)
	}
	for i, c := range s.MCs {
		c.Restore(ck.mcs[i], resolve)
	}
	s.dramCycle, s.cpuCycle, s.credit = ck.dramCycle, ck.cpuCycle, ck.credit
	s.measStartDRAM, s.measStartCPU = ck.measStartDRAM, ck.measStartCPU
	copy(s.retiredAtMeas, ck.retiredAtMeas)
	copy(s.coreEpoch, ck.coreEpoch)
	// Wake caches re-derive from restored state on the next survey.
	for i := range s.mcStale {
		s.mcStale[i] = true
	}
	for d := range s.stepNDAWake {
		s.stepNDAWake[d] = notSurveyed
	}
	s.stepRTWake = notSurveyed
	for d := range s.doms {
		s.doms[d].outbox = s.doms[d].outbox[:0]
	}
}

// RestoreSystem builds a fresh system from cfg and restores the
// checkpoint into it: the fork primitive. Each call yields an
// independent system; the checkpoint is read-only throughout.
func RestoreSystem(cfg Config, ck *Checkpoint) (*System, error) {
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	s.Restore(ck)
	return s, nil
}
