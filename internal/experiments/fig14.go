package experiments

import (
	"fmt"

	"chopim/internal/apps"
	"chopim/internal/ndart"
	"chopim/internal/sim"
)

// Fig14Row compares Chopim with rank partitioning for one workload and
// rank count.
type Fig14Row struct {
	Ranks    int // ranks per channel in the Chopim configuration
	Workload string

	ChopimHostIPC float64
	ChopimNDABW   float64 // GB/s

	RPHostIPC float64 // host confined to half the ranks
	RPNDABW   float64 // NDAs confined to the other half
}

// Fig14 reproduces Figure 14: Chopim versus rank partitioning (RP) at
// 2x2 and 2x4, over DOT, COPY, the SVRG average-gradient kernel, CG, and
// streamcluster. Under RP, host and NDAs each own half the ranks and
// never interact — modeled as two independent half-size systems. Chopim
// shares all ranks and both sides exceed their RP counterparts; the gap
// widens with rank count because short idle periods grow.
func Fig14(opt Options) ([]Fig14Row, error) { return figCached(opt, "fig14", fig14Rows) }

func fig14Rows(opt Options) ([]Fig14Row, error) {
	workloads := []string{"dot", "copy", "svrg", "cg", "sc"}
	rankCounts := []int{2, 4}
	if opt.Quick {
		workloads = []string{"dot", "copy"}
		rankCounts = []int{2}
	}
	type point struct {
		ranks int
		wl    string
	}
	var points []point
	for _, ranks := range rankCounts {
		for _, wl := range workloads {
			points = append(points, point{ranks, wl})
		}
	}
	return sharded(opt, len(points), func(i int) (Fig14Row, error) {
		p := points[i]
		row := Fig14Row{Ranks: p.ranks, Workload: p.wl}

		// Chopim: full system, concurrent sharing.
		cfg := sim.Default(1)
		cfg.Geom = geomWithRanks(p.ranks)
		s, err := opt.newSystem(cfg)
		if err != nil {
			return row, err
		}
		it, err := fig14Workload(s, p.wl, opt)
		if err != nil {
			return row, fmt.Errorf("fig14 %s: %w", p.wl, err)
		}
		res, err := measureConcurrent(s, it,
			opt.withTag(fmt.Sprintf("fig14-chopim-r%d-%s", p.ranks, p.wl)))
		if err != nil {
			return row, err
		}
		row.ChopimHostIPC = res.HostIPC
		row.ChopimNDABW = res.NDABWGBs

		// Rank partitioning: host on half the ranks...
		hcfg := sim.Default(1)
		hcfg.Geom = geomWithRanks(p.ranks / 2)
		hs, err := opt.newSystem(hcfg)
		if err != nil {
			return row, err
		}
		hres, err := measureConcurrent(hs, nil,
			opt.withTag(fmt.Sprintf("fig14-rp-host-r%d-%s", p.ranks, p.wl)))
		if err != nil {
			return row, err
		}
		row.RPHostIPC = hres.HostIPC

		// ...and NDAs on the other half, alone.
		ncfg := sim.Default(-1)
		ncfg.Geom = geomWithRanks(p.ranks / 2)
		nsys, err := opt.newSystem(ncfg)
		if err != nil {
			return row, err
		}
		nit, err := fig14Workload(nsys, p.wl, opt)
		if err != nil {
			return row, err
		}
		nres, err := measureConcurrent(nsys, nit,
			opt.withTag(fmt.Sprintf("fig14-rp-nda-r%d-%s", p.ranks, p.wl)))
		if err != nil {
			return row, err
		}
		row.RPNDABW = nres.NDABWGBs
		return row, nil
	})
}

// fig14Workload builds the relaunchable NDA workload on a system.
func fig14Workload(s *sim.System, wl string, opt Options) (launcher, error) {
	switch wl {
	case "dot", "copy":
		perRank := 2 << 20
		if opt.Quick {
			perRank = 256 << 10
		}
		app, err := apps.NewMicroPlaced(s.RT, wl, perRank/4, ndart.Private)
		if err != nil {
			return nil, err
		}
		return app.Iterate, nil
	case "svrg":
		n, d := 2048, 512
		if opt.Quick {
			n = 512
		}
		ag, err := apps.NewAverageGradient(s.RT, apps.AverageGradientConfig{N: n, D: d})
		if err != nil {
			return nil, err
		}
		return ag.Run, nil
	case "cg":
		m := 1024
		if opt.Quick {
			m = 512
		}
		app, err := apps.NewCG(s.RT, m)
		if err != nil {
			return nil, err
		}
		return app.Iterate, nil
	case "sc":
		n, d, k := 16384, 64, 4
		if opt.Quick {
			n = 4096
		}
		app, err := apps.NewStreamcluster(s.RT, n, d, k)
		if err != nil {
			return nil, err
		}
		return app.Iterate, nil
	}
	return nil, fmt.Errorf("fig14: unknown workload %q", wl)
}
