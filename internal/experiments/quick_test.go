package experiments

import "testing"

// TestFig2Quick exercises the Fig 2 harness end to end on a reduced
// budget and checks the motivating property: most idle time falls in
// short gaps for memory-intensive mixes.
func TestFig2Quick(t *testing.T) {
	opt := QuickOptions()
	rows, err := Fig2(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("got %d rows, want 9", len(rows))
	}
	for _, r := range rows {
		var sum float64
		for _, f := range r.Fractions {
			sum += f
		}
		if sum < 0.99 || sum > 1.01 {
			t.Errorf("%s: fractions sum to %.3f", r.Mix, sum)
		}
	}
}
