// Quickstart: build the paper's baseline system (Table II), run an NDA
// COPY concurrently with the memory-intensive mix1 on the host, and
// print both sides' performance — the concurrent-access scenario Chopim
// enables.
package main

import (
	"fmt"
	"log"

	"chopim"
)

func main() {
	// Baseline: 2 channels x 2 ranks DDR4-2400, 4-core host running
	// mix1, bank partitioning + next-rank prediction on.
	sys, err := chopim.NewSystem(chopim.DefaultConfig(1))
	if err != nil {
		log.Fatal(err)
	}

	// Two 4 MiB vectors in the shared (host+NDA) region. The runtime
	// colors the allocations so both stripe identically across ranks —
	// no copies needed for NDA locality.
	const n = 1 << 20
	x, err := sys.RT.NewVector(n, chopim.Shared)
	if err != nil {
		log.Fatal(err)
	}
	y, err := sys.RT.NewVector(n, chopim.Shared)
	if err != nil {
		log.Fatal(err)
	}

	// Warm the host caches, then measure concurrent execution.
	// RunFast produces counters identical to Run, jumping any
	// provably-idle windows (none while host cores run, all of them in
	// NDA-only configurations).
	sys.RunFast(100_000)
	sys.BeginMeasurement()

	h, err := sys.RT.Copy(y, x) // NDA y = x
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Await(50_000_000, h); err != nil {
		log.Fatal(err)
	}

	st := sys.NDA.TotalStats()
	fmt.Printf("simulated %d DRAM cycles (%.3f ms)\n",
		sys.MeasuredCycles(), 1e3*float64(sys.MeasuredCycles())/1.2e9)
	fmt.Printf("host aggregate IPC while NDAs ran: %.2f\n", sys.HostIPC())
	fmt.Printf("NDA blocks moved: %d read, %d written (%.1f MB)\n",
		st.BlocksRead, st.BlocksWritten,
		float64(st.BlocksRead+st.BlocksWritten)*64/1e6)
	fmt.Printf("NDA yielded to host on %d cycles; launches: %d\n",
		st.StallsHost, sys.RT.Launches)
}
