package sim

import (
	"errors"
	"strings"
	"testing"
	"time"

	"chopim/internal/dram"
	"chopim/internal/faults"
)

// TestLivelockDetectedOnStuckHorizon injects the stuck-horizon bug class
// (NextEvent reporting Never while work is pending) and asserts the fast
// path fails with a structured LivelockError carrying a diagnostic dump
// instead of spinning or silently jumping to the end of the run.
func TestLivelockDetectedOnStuckHorizon(t *testing.T) {
	disarm := faults.ArmAdjust(faults.SimNextEvent, func(v int64) int64 {
		if v >= 2000 {
			return dram.Never
		}
		return v
	})
	defer disarm()
	s, err := New(Default(0))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	err = s.RunFast(50_000)
	var le *LivelockError
	if !errors.As(err, &le) {
		t.Fatalf("RunFast under stuck horizon: got %v, want LivelockError", err)
	}
	if le.Cycle < 2000 {
		t.Errorf("livelock reported at cycle %d, before the injected threshold", le.Cycle)
	}
	if le.Dump == "" || !strings.Contains(le.Dump, "mc[0]:") || !strings.Contains(le.Dump, "core[0]:") {
		t.Errorf("diagnostic dump missing scheduler state:\n%s", le.Dump)
	}
	if !strings.Contains(le.Reason, "holds") && !strings.Contains(le.Reason, "in flight") {
		t.Errorf("reason does not describe the pending work: %q", le.Reason)
	}
	// The failure is sticky: every later step reports the same error
	// rather than resuming a corrupt run.
	if err2 := s.StepFast(s.Now() + 1); !errors.As(err2, &le) {
		t.Errorf("post-failure StepFast: got %v, want the sticky LivelockError", err2)
	}
	if s.RunError() == nil {
		t.Error("RunError is nil after a detected livelock")
	}
}

// TestWatchdogWindow exercises the no-progress detector white-box: with
// work pending and the progress signature frozen past the window, the
// watchdog fails the run; with the system genuinely idle the same
// staleness just restarts the window (idle-by-design is not livelock).
func TestWatchdogWindow(t *testing.T) {
	cfg := Default(0)
	cfg.WatchdogWindow = 1_000
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Drive until some layer demonstrably holds work (host cores issue
	// misses within a few cycles).
	for i := 0; i < 10_000; i++ {
		s.Tick()
		if pend, _ := s.workPending(); pend {
			break
		}
	}
	if pend, _ := s.workPending(); !pend {
		t.Fatal("host-only workload never produced pending work")
	}
	s.robust.sig = s.progressSig()
	s.robust.sigCycle = s.dramCycle - cfg.WatchdogWindow - 1
	err = s.watchdog()
	var le *LivelockError
	if !errors.As(err, &le) {
		t.Fatalf("stale signature with pending work: got %v, want LivelockError", err)
	}
	if !strings.Contains(le.Reason, "no forward progress") {
		t.Errorf("unexpected reason: %q", le.Reason)
	}

	// Idle system: same staleness, no pending work, no error.
	idle, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()
	// A fresh system with host cores will generate work, so silence the
	// pending probe by checking before any tick: queues are empty.
	if pend, what := idle.workPending(); pend {
		t.Fatalf("fresh system reports pending work: %s", what)
	}
	idle.robust.sig = idle.progressSig()
	idle.robust.sigCycle = idle.dramCycle - cfg.WatchdogWindow - 1
	if err := idle.watchdog(); err != nil {
		t.Fatalf("idle-by-design tripped the watchdog: %v", err)
	}
	if idle.robust.sigCycle != idle.dramCycle {
		t.Error("idle watchdog pass did not restart the window")
	}
}

// TestCycleDeadline bounds a run by simulated cycles and checks the
// structured error plus readable partial state.
func TestCycleDeadline(t *testing.T) {
	cfg := Default(0)
	cfg.MaxCycles = 1_000
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	err = s.RunFast(50_000)
	var de *DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("got %v, want DeadlineError", err)
	}
	if de.Kind != "cycle" {
		t.Errorf("Kind = %q, want cycle", de.Kind)
	}
	if s.Now() < 1_000 || s.Now() >= 50_000 {
		t.Errorf("run stopped at cycle %d, want shortly after the 1000-cycle deadline", s.Now())
	}
	// Partial stats stay readable after the failure.
	if s.Mem.Counts().RD == 0 {
		t.Error("no commands issued before the deadline — partial stats lost?")
	}
}

// TestWallClockDeadline bounds a run by host time.
func TestWallClockDeadline(t *testing.T) {
	cfg := Default(0)
	cfg.MaxWallClock = time.Nanosecond // expires immediately; detected at the rate-limit stride
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	err = s.RunFast(5_000_000)
	var de *DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("got %v, want DeadlineError", err)
	}
	if de.Kind != "wall-clock" || de.Limit != time.Nanosecond {
		t.Errorf("got Kind=%q Limit=%v, want wall-clock/1ns", de.Kind, de.Limit)
	}
	if s.Now() >= 5_000_000 {
		t.Error("run completed despite an expired wall-clock budget")
	}
}

// TestInvalidConfigErrors pins the constructor's error path for every
// user-reachable configuration class (previously panics).
func TestInvalidConfigErrors(t *testing.T) {
	mut := []struct {
		name string
		mut  func(*Config)
	}{
		{"bad-geometry", func(c *Config) { c.Geom.Channels = 3 }},
		{"bad-timing", func(c *Config) { c.Timing.CL = 0 }},
		{"bad-mc-queues", func(c *Config) { c.MC.ReadQueue = 0 }},
		{"bad-drain-marks", func(c *Config) { c.MC.DrainLow = c.MC.WriteQueue + 5 }},
		{"bad-partition", func(c *Config) { c.Partitioned = true; c.ReservedBanks = 99 }},
	}
	for _, m := range mut {
		t.Run(m.name, func(t *testing.T) {
			cfg := Default(0)
			m.mut(&cfg)
			s, err := New(cfg)
			if err == nil {
				s.Close()
				t.Fatal("invalid config accepted")
			}
			if !strings.Contains(err.Error(), "invalid config") {
				t.Errorf("error %q does not identify itself as a config error", err)
			}
		})
	}
}

// TestMailboxConservationInvariant plants a commit callback that grows
// the mailbox mid-drain — forbidden: only memory-phase ticks produce
// completions — and asserts the checked commit panics with an
// *InvariantError naming the domain.
func TestMailboxConservationInvariant(t *testing.T) {
	cfg := Default(0)
	cfg.CheckInvariants = true
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	dom := &s.doms[0]
	dom.push(func(int64) {
		dom.push(func(int64) {}, 0) // illegal: commit produced new work
	}, 0)
	defer func() {
		r := recover()
		ie, ok := r.(*InvariantError)
		if !ok {
			t.Fatalf("recovered %v, want *InvariantError", r)
		}
		if !strings.Contains(ie.Msg, "mailbox grew") {
			t.Errorf("unexpected invariant message: %q", ie.Msg)
		}
	}()
	s.commitChecked()
}

// TestDeadlineErrorOnTickPath checks the reference-path contract: Tick
// never consults deadlines itself, so cycle-by-cycle drivers poll
// DeadlineExceeded; the result must match the fast path's classification.
func TestDeadlineErrorOnTickPath(t *testing.T) {
	cfg := Default(0)
	cfg.MaxCycles = 500
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for {
		if err := s.DeadlineExceeded(); err != nil {
			var de *DeadlineError
			if !errors.As(err, &de) || de.Kind != "cycle" {
				t.Fatalf("got %v, want cycle DeadlineError", err)
			}
			break
		}
		s.Tick()
		if s.Now() > 2_000 {
			t.Fatal("deadline never reported on the reference path")
		}
	}
}
