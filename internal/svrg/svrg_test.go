package svrg

import (
	"math"
	"testing"
)

func smallDataset() *Dataset { return Synthetic(256, 32, 4, 5) }

func TestSyntheticDeterministic(t *testing.T) {
	a := Synthetic(64, 8, 3, 9)
	b := Synthetic(64, 8, 3, 9)
	for i := range a.X {
		if a.X[i] != b.X[i] {
			t.Fatal("datasets differ for equal seeds")
		}
	}
	for i := range a.Y {
		if a.Y[i] < 0 || a.Y[i] >= 3 {
			t.Fatalf("label %d out of range", a.Y[i])
		}
	}
}

func TestLossDecreasesUnderTraining(t *testing.T) {
	ds := smallDataset()
	m := NewModel(ds.D, ds.K, 1e-3)
	l0 := m.Loss(ds)
	pts := Run(ds, 1e-3, RunConfig{
		Mode: HostOnly, Epoch: ds.N, LR: 0.05, Momentum: 0.9, Outers: 10, Seed: 3,
		Timing: Timing{SummarizeHost: 1e-3, InnerIter: 1e-6},
	})
	final := pts[len(pts)-1].Loss
	if final >= l0 {
		t.Errorf("loss did not decrease: %.4f -> %.4f", l0, final)
	}
	if final > 0.9*l0 {
		t.Errorf("loss barely moved: %.4f -> %.4f", l0, final)
	}
}

func TestFullGradientZeroAtOptimumDirection(t *testing.T) {
	// At the zero model on a balanced problem, the gradient must be
	// finite and nonzero.
	ds := smallDataset()
	m := NewModel(ds.D, ds.K, 1e-3)
	g := m.FullGradient(ds)
	var norm float64
	for _, v := range g {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("gradient has non-finite entries")
		}
		norm += v * v
	}
	if norm == 0 {
		t.Error("gradient identically zero at init")
	}
}

func TestGradientDescentDirection(t *testing.T) {
	ds := smallDataset()
	m := NewModel(ds.D, ds.K, 1e-3)
	g := m.FullGradient(ds)
	l0 := m.Loss(ds)
	for i := range m.W {
		m.W[i] -= 0.01 * g[i]
	}
	if m.Loss(ds) >= l0 {
		t.Error("step along negative gradient increased loss")
	}
}

func TestTimeAccounting(t *testing.T) {
	ds := smallDataset()
	tm := Timing{SummarizeHost: 1.0, SummarizeNDA: 0.1, InnerIter: 0.001}
	ho := Run(ds, 1e-3, RunConfig{Mode: HostOnly, Epoch: 100, LR: 0.05, Outers: 3, Seed: 1, Timing: tm})
	acc := Run(ds, 1e-3, RunConfig{Mode: Accelerated, Epoch: 100, LR: 0.05, Outers: 3, Seed: 1, Timing: tm})
	// Same iteration counts; ACC summarizes 10x faster, so total time
	// must be strictly smaller.
	if acc[len(acc)-1].Seconds >= ho[len(ho)-1].Seconds {
		t.Errorf("ACC time %.3f >= HO time %.3f", acc[len(acc)-1].Seconds, ho[len(ho)-1].Seconds)
	}
	// HO epoch: outer cost = epoch*inner + summarize.
	wantStep := 100*0.001 + 1.0
	got := ho[2].Seconds - ho[1].Seconds
	if math.Abs(got-wantStep) > 1e-9 {
		t.Errorf("HO outer step time %.6f, want %.6f", got, wantStep)
	}
}

func TestDelayedUpdateOverlaps(t *testing.T) {
	ds := smallDataset()
	tm := Timing{SummarizeNDA: 0.05, InnerIter: 0.001, Exchange: 0.002}
	du := Run(ds, 1e-3, RunConfig{Mode: DelayedUpdate, LR: 0.05, Outers: 4, Seed: 1, Timing: tm})
	// Per outer: summarize + exchange only (inner loop hidden).
	step := du[2].Seconds - du[1].Seconds
	if math.Abs(step-(0.05+0.002)) > 1e-9 {
		t.Errorf("delayed-update outer step %.6f, want %.6f", step, 0.052)
	}
	// And it still converges.
	if du[len(du)-1].Loss >= du[0].Loss {
		t.Error("delayed update failed to reduce loss")
	}
}

func TestTimeToReach(t *testing.T) {
	pts := []Point{{1, 10}, {2, 5}, {3, 1}, {4, 0.5}}
	if tt, ok := TimeToReach(pts, 0, 1); !ok || tt != 3 {
		t.Errorf("TimeToReach = (%v,%v), want (3,true)", tt, ok)
	}
	if _, ok := TimeToReach(pts, 0, 0.1); ok {
		t.Error("unreachable threshold reported reached")
	}
}

func TestOptimumBelowTrainedLoss(t *testing.T) {
	ds := smallDataset()
	opt := Optimum(ds, 1e-3, 2)
	pts := Run(ds, 1e-3, RunConfig{
		Mode: HostOnly, Epoch: ds.N, LR: 0.05, Momentum: 0.9, Outers: 5, Seed: 3,
		Timing: Timing{SummarizeHost: 1, InnerIter: 1e-6},
	})
	if opt > pts[len(pts)-1].Loss+1e-9 {
		t.Errorf("optimum %.6f above a short run's loss %.6f", opt, pts[len(pts)-1].Loss)
	}
}

func TestModeStrings(t *testing.T) {
	if HostOnly.String() != "HO" || Accelerated.String() != "ACC" || DelayedUpdate.String() != "DelayedUpdate" {
		t.Error("mode strings wrong")
	}
}
