package experiments

import (
	"chopim/internal/apps"
	"chopim/internal/sim"
	"chopim/internal/workload"
)

// Fig11Row compares shared versus partitioned banks for one mix.
type Fig11Row struct {
	Mix string
	// Host IPC and NDA utilization per configuration.
	SharedDOT, SharedCOPY Result
	PartDOT, PartCOPY     Result
	IdealHostIPC          float64 // host-only, no NDA contention
}

// Fig11 reproduces Figure 11: concurrent access with and without bank
// partitioning under read-intensive (DOT) and write-intensive (COPY)
// NDA operations across all mixes. Partitioning removes host-to-NDA bank
// conflicts and chiefly helps the read-intensive case; COPY also hurts
// host IPC through write turnarounds.
func Fig11(opt Options) ([]Fig11Row, error) {
	n := len(workload.Mixes)
	if opt.Quick {
		n = 2
	}
	mixes := make([]int, n)
	for i := range mixes {
		mixes[i] = i
	}
	return fig11Mixes(opt, mixes)
}

// fig11Mixes runs the Fig 11 comparison for selected mixes.
func fig11Mixes(opt Options, mixes []int) ([]Fig11Row, error) {
	perRankBytes := 2 << 20
	if opt.Quick {
		perRankBytes = 256 << 10
	}
	var rows []Fig11Row
	for _, mix := range mixes {
		row := Fig11Row{Mix: workload.MixName(mix)}
		for _, part := range []bool{false, true} {
			for _, op := range []string{"dot", "copy"} {
				cfg := sim.Default(mix)
				cfg.Partitioned = part
				s, err := sim.New(cfg)
				if err != nil {
					return nil, err
				}
				app, err := apps.NewMicroPlaced(s.RT, op, perRankBytes/4, ndartPrivate)
				if err != nil {
					return nil, err
				}
				res, err := measureConcurrent(s, app.Iterate, opt)
				if err != nil {
					return nil, err
				}
				switch {
				case !part && op == "dot":
					row.SharedDOT = res
				case !part && op == "copy":
					row.SharedCOPY = res
				case part && op == "dot":
					row.PartDOT = res
				default:
					row.PartCOPY = res
				}
			}
		}
		// Idealized: host alone (NDA assumed to soak all idle BW).
		s, err := sim.New(sim.Default(mix))
		if err != nil {
			return nil, err
		}
		res, err := measureConcurrent(s, nil, opt)
		if err != nil {
			return nil, err
		}
		row.IdealHostIPC = res.HostIPC
		rows = append(rows, row)
	}
	return rows, nil
}
