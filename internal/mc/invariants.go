package mc

import (
	"fmt"

	"chopim/internal/dram"
)

// Opt-in structural and conservation checks behind sim's
// Config.CheckInvariants. Everything here is cold-path: it runs at
// commit barriers when armed and never during normal scheduling, so it
// may allocate scratch freely.

// Validate rejects controller configurations the scheduler cannot run
// with. User-reachable (sweep points carry an mc.Config), so errors,
// not panics.
func (cfg Config) Validate() error {
	if cfg.ReadQueue <= 0 || cfg.WriteQueue <= 0 {
		return fmt.Errorf("mc: queue sizes must be positive (ReadQueue=%d WriteQueue=%d)",
			cfg.ReadQueue, cfg.WriteQueue)
	}
	if cfg.DrainLow < 0 || cfg.DrainHigh <= cfg.DrainLow || cfg.DrainHigh > cfg.WriteQueue {
		return fmt.Errorf("mc: drain watermarks must satisfy 0 <= DrainLow < DrainHigh <= WriteQueue (DrainLow=%d DrainHigh=%d WriteQueue=%d)",
			cfg.DrainLow, cfg.DrainHigh, cfg.WriteQueue)
	}
	return nil
}

// OverflowLen returns the write-overflow buffer's occupancy (writebacks
// accepted beyond the write queue, not yet drained into it).
func (c *Controller) OverflowLen() int { return c.overflow.Len() }

// CheckInvariants validates the controller's internal consistency: the
// arrival lists against the occupancy counters and per-bank buckets,
// the dense scheduling cache against the occupied set, calendar
// membership (every occupied bank in exactly one region, bitmap in sync
// with slot heads, keys inside their region's range), and — for banks
// whose rank stamp is current — calendar lower-bound soundness against
// a fresh rescan of the bank's candidates. Returns the first violation
// found, nil when consistent.
func (c *Controller) CheckInvariants() error {
	if err := c.checkQueue(&c.rq, "rq", c.cfg.ReadQueue, dram.CmdRD); err != nil {
		return err
	}
	return c.checkQueue(&c.wq, "wq", c.cfg.WriteQueue, dram.CmdWR)
}

func (c *Controller) checkQueue(q *reqQueue, name string, capacity int, cmd dram.Command) error {
	if q.n > capacity {
		return fmt.Errorf("%s occupancy %d exceeds capacity %d", name, q.n, capacity)
	}

	// Arrival list: length, link symmetry, FR-FCFS age order, and the
	// per-group / per-bank tallies every O(1) hook reads.
	perBank := make(map[int32]int)
	perGroup := make(map[int32]int)
	count := 0
	lastSeq := int64(-1)
	var prev *Request
	for r := q.head; r != nil; r = r.qnext {
		if r.qprev != prev {
			return fmt.Errorf("%s arrival list: broken qprev link at position %d", name, count)
		}
		if r.seq <= lastSeq {
			return fmt.Errorf("%s arrival list: seq %d not increasing at position %d", name, r.seq, count)
		}
		lastSeq = r.seq
		wantKey := int32((r.DAddr.Channel*c.nrank+r.DAddr.Rank)*c.bpr + r.DAddr.GlobalBank(c.mem.Geom))
		if r.bankKey != wantKey {
			return fmt.Errorf("%s request seq %d: bankKey %d != decoded %d", name, r.seq, r.bankKey, wantKey)
		}
		perBank[r.bankKey]++
		perGroup[r.bankKey>>q.shift]++
		prev = r
		count++
		if count > q.n+1 {
			return fmt.Errorf("%s arrival list longer than occupancy %d (cycle?)", name, q.n)
		}
	}
	if count != q.n {
		return fmt.Errorf("%s arrival list holds %d requests, occupancy counter says %d", name, count, q.n)
	}
	if q.tail != prev {
		return fmt.Errorf("%s arrival list tail does not match last element", name)
	}
	for g, n := range q.rankN {
		if n != perGroup[int32(g)] {
			return fmt.Errorf("%s rankN[%d]=%d but arrival list holds %d for the group", name, g, n, perGroup[int32(g)])
		}
	}

	// Occupied set: occ/occPos bijection, dense sched, bucket lists
	// consistent with the arrival tallies.
	if len(q.sched) != len(q.occ) {
		return fmt.Errorf("%s sched length %d != occupied banks %d", name, len(q.sched), len(q.occ))
	}
	for i, bk := range q.occ {
		if q.occPos[bk] != int32(i) {
			return fmt.Errorf("%s occPos[%d]=%d, expected %d", name, bk, q.occPos[bk], i)
		}
		bl := &q.banks[bk]
		if bl.n == 0 {
			return fmt.Errorf("%s bank %d listed occupied but bucket is empty", name, bk)
		}
		if bl.n != perBank[bk] {
			return fmt.Errorf("%s bank %d bucket count %d != arrival-list tally %d", name, bk, bl.n, perBank[bk])
		}
		bseq, bcount := int64(-1), 0
		for r := bl.head; r != nil; r = r.bnext {
			if r.bankKey != bk {
				return fmt.Errorf("%s bank %d bucket holds request with bankKey %d", name, bk, r.bankKey)
			}
			if r.seq <= bseq {
				return fmt.Errorf("%s bank %d bucket out of age order at seq %d", name, bk, r.seq)
			}
			bseq = r.seq
			bcount++
			if bcount > bl.n {
				return fmt.Errorf("%s bank %d bucket longer than its count %d", name, bk, bl.n)
			}
		}
		if bcount != bl.n {
			return fmt.Errorf("%s bank %d bucket holds %d requests, count says %d", name, bk, bcount, bl.n)
		}
	}
	for bk, n := range perBank {
		if q.occPos[bk] < 0 && n > 0 {
			return fmt.Errorf("%s bank %d holds %d requests but is not in the occupied set", name, bk, n)
		}
	}

	// Calendar membership: every occupied bank in exactly one region,
	// vacant banks absent, bitmap matching slot heads, keys inside their
	// region's window.
	seen := make(map[int32]string)
	mark := func(bk int32, where string) error {
		if w, dup := seen[bk]; dup {
			return fmt.Errorf("%s bank %d on both %s and %s calendar regions", name, bk, w, where)
		}
		seen[bk] = where
		return nil
	}
	for bk := q.calReady; bk != -1; bk = q.calNext[bk] {
		if q.calWhere[bk] != calInReady {
			return fmt.Errorf("%s bank %d on ready list with calWhere=%d", name, bk, q.calWhere[bk])
		}
		if err := mark(bk, "ready"); err != nil {
			return err
		}
	}
	for bk := q.calOver; bk != -1; bk = q.calNext[bk] {
		if q.calWhere[bk] != calInOver {
			return fmt.Errorf("%s bank %d on overflow list with calWhere=%d", name, bk, q.calWhere[bk])
		}
		if q.calKey[bk]-q.calBase < calSlots {
			return fmt.Errorf("%s bank %d on overflow with in-window key %d (base %d)", name, bk, q.calKey[bk], q.calBase)
		}
		if err := mark(bk, "overflow"); err != nil {
			return err
		}
	}
	inRing := 0
	for s := 0; s < calSlots; s++ {
		headSet := q.calBkt[s] != -1
		bitSet := q.calBits[s>>6]&(1<<uint(s&63)) != 0
		if headSet != bitSet {
			return fmt.Errorf("%s calendar slot %d: bitmap=%v but head set=%v", name, s, bitSet, headSet)
		}
		for bk := q.calBkt[s]; bk != -1; bk = q.calNext[bk] {
			if q.calWhere[bk] != calBucket {
				return fmt.Errorf("%s bank %d in ring slot %d with calWhere=%d", name, bk, s, q.calWhere[bk])
			}
			k := q.calKey[bk]
			if k < q.calBase || k-q.calBase >= calSlots {
				return fmt.Errorf("%s bank %d ring key %d outside window [%d,%d)", name, bk, k, q.calBase, q.calBase+calSlots)
			}
			if int(k)&calMask != s {
				return fmt.Errorf("%s bank %d key %d filed in slot %d, expected %d", name, bk, k, s, int(k)&calMask)
			}
			if err := mark(bk, "ring"); err != nil {
				return err
			}
			inRing++
		}
	}
	if inRing != q.calCount {
		return fmt.Errorf("%s calCount=%d but ring holds %d banks", name, q.calCount, inRing)
	}
	for _, bk := range q.occ {
		if _, ok := seen[bk]; !ok {
			return fmt.Errorf("%s occupied bank %d is on no calendar region", name, bk)
		}
	}
	if len(seen) != len(q.occ) {
		return fmt.Errorf("%s calendar tracks %d banks but %d are occupied", name, len(seen), len(q.occ))
	}

	// Lower-bound soundness, spot-checked against a fresh rescan of
	// each bank's candidates. Only banks whose rank row stamp is
	// current are bound: a pending resync (calSync runs it before any
	// decision) may legitimately leave a stale-high key behind. Ready
	// banks carry no key contract (the scan revalidates them), and the
	// rescan paths (cross-channel harnesses, reference scheduler) never
	// consult keys at all.
	if c.cross || c.refSched {
		return nil
	}
	for _, bk := range q.occ {
		if q.calWhere[bk] != calBucket && q.calWhere[bk] != calInOver {
			continue
		}
		rank := int(bk)/c.bpr - c.channel*c.nrank
		if q.calStamp[rank] != c.mem.RowStamp(c.channel, rank) {
			continue
		}
		if oracle := c.bankOracle(q, bk, cmd); q.calKey[bk] > oracle {
			return fmt.Errorf("%s bank %d calendar key %d exceeds rescan-oracle ready cycle %d (lower bound violated)",
				name, bk, q.calKey[bk], oracle)
		}
	}
	return nil
}

// bankOracle recomputes the bank's earliest candidate-ready cycle the
// way the rescan oracle would — a fresh bucket scan against fresh
// horizons, min(max(p1 column ready, channel bus), p2 row-command
// ready) — without touching the cached entry.
func (c *Controller) bankOracle(q *reqQueue, bk int32, cmd dram.Command) int64 {
	flat := int(bk) % c.bpr
	rank := int(bk)/c.bpr - c.channel*c.nrank
	row, open, readyACT, readyPRE, readyRD, readyWR := c.mem.BankSched(
		c.channel, rank, flat/c.bpg, flat)
	col := readyRD
	if cmd == dram.CmdWR {
		col = readyWR
	}
	bl := &q.banks[bk]
	k := dram.Never
	if !open {
		return readyACT
	}
	for r := bl.head; r != nil; r = r.bnext {
		if r.DAddr.Row == row {
			k = max(col, c.mem.ExtColReady(c.channel, cmd, rank))
			break
		}
	}
	if bl.head.DAddr.Row != row && readyPRE < k {
		k = readyPRE
	}
	return k
}
