package dram_test

import (
	"math/rand"
	"testing"

	"chopim/internal/addrmap"
	"chopim/internal/dram"
)

// TestRandomLegalSequencesKeepInvariants drives the device model with
// random command streams, issuing whatever CanIssue admits, and checks
// protocol invariants the scheduler relies on:
//
//   - data bursts on one rank's data path never overlap;
//   - a bank is never activated while open or accessed while closed;
//   - at most four ACTs land in any tFAW window per rank;
//   - command counters reconcile with issued commands.
func TestRandomLegalSequencesKeepInvariants(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		runRandomSequence(t, seed, 4000)
	}
}

func runRandomSequence(t *testing.T, seed int64, steps int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := dram.Geometry{Channels: 1, Ranks: 2, BankGroups: 2, BanksPerGroup: 2, Rows: 64, Cols: 16}
	m := dram.New(g, dram.DDR42400())

	type burst struct{ start, end int64 }
	lastBurst := make(map[int]burst) // per rank
	var actTimes [][]int64           // per rank, issue cycles
	actTimes = make([][]int64, g.Ranks)
	var issued int64

	now := int64(0)
	for s := 0; s < steps; s++ {
		cmd := dram.Command(rng.Intn(4))
		a := dram.Addr{
			Rank:      rng.Intn(g.Ranks),
			BankGroup: rng.Intn(g.BankGroups),
			Bank:      rng.Intn(g.BanksPerGroup),
			Row:       rng.Intn(g.Rows),
			Col:       rng.Intn(g.Cols),
		}
		internal := rng.Intn(2) == 0
		// Column commands must target the open row to be legal; steer
		// half of them there to get decent coverage.
		if (cmd == dram.CmdRD || cmd == dram.CmdWR) && rng.Intn(2) == 0 {
			if row, open := m.OpenRow(a); open {
				a.Row = row
			}
		}
		if m.CanIssue(cmd, a, now, internal) {
			// Invariant: ACT only on closed banks; RD/WR only on the
			// open row (CanIssue admitted it, cross-check state).
			row, open := m.OpenRow(a)
			switch cmd {
			case dram.CmdACT:
				if open {
					t.Fatalf("seed %d: ACT admitted on open bank at %d", seed, now)
				}
				actTimes[a.Rank] = append(actTimes[a.Rank], now)
			case dram.CmdRD, dram.CmdWR:
				if !open || row != a.Row {
					t.Fatalf("seed %d: column admitted on closed/mismatched row at %d", seed, now)
				}
			}
			m.Issue(cmd, a, now, internal)
			issued++
			if cmd == dram.CmdRD || cmd == dram.CmdWR {
				var start int64
				if cmd == dram.CmdRD {
					start = now + int64(m.T.CL)
				} else {
					start = now + int64(m.T.CWL)
				}
				end := start + int64(m.T.BL)
				if lb, ok := lastBurst[a.Rank]; ok && start < lb.end && lb.start < end {
					t.Fatalf("seed %d: overlapping data bursts on rank %d: [%d,%d) vs [%d,%d)",
						seed, a.Rank, lb.start, lb.end, start, end)
				}
				if b, ok := lastBurst[a.Rank]; !ok || b.end < end {
					lastBurst[a.Rank] = burst{start, end}
				}
			}
		}
		now += int64(rng.Intn(3))
	}

	for r, times := range actTimes {
		for i := 4; i < len(times); i++ {
			if times[i]-times[i-4] < int64(m.T.FAW) {
				t.Fatalf("seed %d: rank %d saw 5 ACTs within tFAW (%d..%d)",
					seed, r, times[i-4], times[i])
			}
		}
	}
	if got := m.Counts().ACT + m.Counts().PRE + m.Counts().RD + m.Counts().WR + m.Counts().NDARD + m.Counts().NDAWR; got != issued {
		t.Fatalf("seed %d: counter total %d != issued %d", seed, got, issued)
	}
}

// TestNDAAndHostInterleavingFairness issues host and NDA columns to the
// same open row alternately: both must make progress and the rank-level
// spacing must hold between mixed-source commands.
func TestNDAAndHostInterleavingFairness(t *testing.T) {
	m := dram.New(dram.DefaultGeometry(), dram.DDR42400())
	a := dram.Addr{Row: 5}
	m.Issue(dram.CmdACT, a, 0, false)
	now := int64(m.T.RCD)
	var host, ndas int
	var last int64 = -1 << 40
	for now < 3000 {
		internal := (host+ndas)%2 == 1
		if m.CanIssue(dram.CmdRD, a, now, internal) {
			m.Issue(dram.CmdRD, a, now, internal)
			if last > -1<<39 && now-last < int64(m.T.CCDL) {
				t.Fatalf("mixed-source columns %d cycles apart, tCCD_L=%d", now-last, m.T.CCDL)
			}
			last = now
			if internal {
				ndas++
			} else {
				host++
			}
		}
		now++
	}
	if host == 0 || ndas == 0 {
		t.Fatalf("progress: host=%d nda=%d", host, ndas)
	}
}

// fuzzGeometry is small enough that fuzzing sweeps a meaningful
// fraction of the address space while still exercising every field of
// the partitioned mapping (multi-channel, multi-rank, bank groups).
func fuzzGeometry() dram.Geometry {
	return dram.Geometry{Channels: 2, Ranks: 2, BankGroups: 2, BanksPerGroup: 2, Rows: 256, Cols: 16}
}

// flatten packs a decoded address into a unique integer for collision
// checks.
func flatten(g dram.Geometry, a dram.Addr) uint64 {
	k := uint64(a.Channel)
	k = k*uint64(g.Ranks) + uint64(a.Rank)
	k = k*uint64(g.BankGroups) + uint64(a.BankGroup)
	k = k*uint64(g.BanksPerGroup) + uint64(a.Bank)
	k = k*uint64(g.Rows) + uint64(a.Row)
	k = k*uint64(g.Cols) + uint64(a.Col)
	return k
}

// FuzzPartitionedMapping fuzzes the proposed Fig 4b mapping
// (addrmap.NewPartitioned) for its two load-bearing guarantees:
//
//   - map/unmap bijectivity: distinct block addresses within capacity
//     decode to distinct DRAM locations (with equal cardinality on both
//     sides, injectivity is bijectivity), so the reserved-bank swap
//     never aliases two physical blocks;
//   - partition isolation: host-region addresses (below HostCapacity)
//     never land in a reserved (shared) bank, and shared-region
//     addresses always do.
func FuzzPartitionedMapping(f *testing.F) {
	g := fuzzGeometry()
	capacity := g.Capacity()
	f.Add(uint64(0), uint64(64), uint8(1))
	f.Add(uint64(0), capacity-64, uint8(1))
	f.Add(capacity/2-64, capacity/2, uint8(2))
	f.Add(capacity-128, capacity-64, uint8(3))
	f.Fuzz(func(t *testing.T, pa1, pa2 uint64, rbRaw uint8) {
		nb := g.BanksPerRank()
		rb := int(rbRaw)%(nb-1) + 1 // reserved banks in [1, nb-1]
		m := addrmap.NewPartitioned(addrmap.NewSkylakeLike(g), rb)

		pa1 = pa1 % capacity / dram.BlockBytes * dram.BlockBytes
		pa2 = pa2 % capacity / dram.BlockBytes * dram.BlockBytes
		a1, a2 := m.Decode(pa1), m.Decode(pa2)

		if pa1 != pa2 && flatten(g, a1) == flatten(g, a2) {
			t.Fatalf("rb=%d: %#x and %#x alias to %+v", rb, pa1, pa2, a1)
		}
		for _, p := range []struct {
			pa uint64
			a  dram.Addr
		}{{pa1, a1}, {pa2, a2}} {
			shared := m.IsSharedBank(p.a.GlobalBank(g))
			if p.pa < m.HostCapacity() && shared {
				t.Fatalf("rb=%d: host address %#x landed in reserved bank %+v", rb, p.pa, p.a)
			}
			if p.pa >= m.SharedBase() && !shared {
				t.Fatalf("rb=%d: shared address %#x landed in host bank %+v", rb, p.pa, p.a)
			}
		}
	})
}
