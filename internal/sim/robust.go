// Robustness layer for the fast path: a forward-progress watchdog that
// turns wrong NextEvent bounds into structured LivelockErrors instead of
// silent hangs, per-run cycle and wall-clock deadlines, and the opt-in
// cross-layer invariant checker (Config.CheckInvariants). The detectors
// run at wake granularity — a handful of compares per executed step, not
// per simulated cycle — so the zero-allocs steady-state contract and the
// host-path benchmarks are unaffected with checks off.
package sim

import (
	"fmt"
	"strings"
	"time"

	"chopim/internal/dram"
)

// LivelockError reports that the fast path detected a state from which
// the simulation can make no further progress: NextEvent claims no
// component will ever change state while work is demonstrably pending
// (the bug class a wrong sleep bound produces), or the forward-progress
// watchdog saw Config.WatchdogWindow simulated cycles elapse with no
// retirement, command issue, or NDA progress while work was pending.
type LivelockError struct {
	Cycle  int64  // DRAM cycle at detection
	Reason string // which detector fired and why
	Dump   string // diagnostic state dump (see System.DiagDump)
}

func (e *LivelockError) Error() string {
	return fmt.Sprintf("sim: livelock detected at cycle %d: %s\n%s", e.Cycle, e.Reason, e.Dump)
}

// DeadlineError reports that a per-run deadline (Config.MaxCycles or
// Config.MaxWallClock) expired. The system's counters remain readable —
// drivers report partial statistics alongside the error.
type DeadlineError struct {
	Cycle int64
	Kind  string        // "cycle" or "wall-clock"
	Limit time.Duration // wall-clock budget (Kind "wall-clock" only)
}

func (e *DeadlineError) Error() string {
	if e.Kind == "wall-clock" {
		return fmt.Sprintf("sim: wall-clock deadline (%v) exceeded at cycle %d", e.Limit, e.Cycle)
	}
	return fmt.Sprintf("sim: cycle deadline exceeded at cycle %d", e.Cycle)
}

// CanceledError reports that the run's cooperative stop flag
// (Config.Cancel) was observed set. Like a DeadlineError it is sticky
// and leaves every counter readable; unlike one it is an orderly,
// driver-requested stop — the system sits at a quiescent step boundary,
// so the caller may Snapshot it for a durable checkpoint before
// discarding it.
type CanceledError struct {
	Cycle int64
}

func (e *CanceledError) Error() string {
	return fmt.Sprintf("sim: run canceled at cycle %d", e.Cycle)
}

// InvariantError reports a cross-layer conservation violation found by
// Config.CheckInvariants. It is delivered by panic — a violated
// invariant means simulator state is already corrupt, the same class as
// the internal impossible-state panics — and the experiment runner's
// per-point recovery converts it into a quarantined PointError.
type InvariantError struct {
	Cycle int64
	Msg   string
}

func (e *InvariantError) Error() string {
	return fmt.Sprintf("sim: invariant violated at cycle %d: %s", e.Cycle, e.Msg)
}

// wallCheckEvery rate-limits the wall-clock deadline's time.Now read to
// one per this many executed steps.
const wallCheckEvery = 256

// robustState is the watchdog/deadline bookkeeping on System. All of it
// is driver-level transience: checkpoints neither save nor restore it.
type robustState struct {
	err       error  // sticky first failure; every later StepFast returns it
	sig       uint64 // progress signature at the last observed progress
	sigCycle  int64  // cycle of the last observed progress
	wallStart time.Time
	wallSeen  uint32 // step counter for the rate-limited time.Now
}

// fail records the run's first failure and returns it; later failures
// are ignored (the first is the diagnosis, the rest are wreckage).
func (s *System) fail(err error) error {
	if s.robust.err == nil {
		s.robust.err = err
	}
	return s.robust.err
}

// RunError returns the sticky failure recorded by the watchdog or
// deadline checks (nil while the run is healthy).
func (s *System) RunError() error { return s.robust.err }

// workPending reports whether any component demonstrably holds
// unfinished work, with a description of the first found. Called only
// on the cold paths (a Never bound, a tripped watchdog window), never
// per wake.
func (s *System) workPending() (bool, string) {
	for i, c := range s.MCs {
		r, w := c.QueueOccupancy()
		if r+w > 0 {
			return true, fmt.Sprintf("controller %d holds %d reads and %d writes", i, r, w)
		}
	}
	if s.Hier != nil {
		if n := s.Hier.PendingMisses(); n > 0 {
			return true, fmt.Sprintf("%d LLC misses in flight", n)
		}
	}
	if s.NDA.Busy() {
		return true, "NDA operations queued"
	}
	if s.RT.CopierBusy() {
		return true, "runtime copier busy"
	}
	return false, ""
}

// progressSig folds every forward-progress counter into one value:
// DRAM commands issued (host and NDA), instructions retired, and
// refreshes. Any genuine progress moves at least one term. O(channels +
// cores) per executed wake.
func (s *System) progressSig() uint64 {
	cnt := s.Mem.Counts()
	sig := uint64(cnt.ACT + cnt.PRE + cnt.RD + cnt.WR + cnt.NDARD + cnt.NDAWR)
	for _, c := range s.MCs {
		sig += uint64(c.Refreshes)
	}
	for _, core := range s.Cores {
		sig += uint64(core.Retired)
	}
	return sig
}

// watchdog runs after each executed fast-path tick when
// Config.WatchdogWindow > 0: if the progress signature has not moved
// for more than the window of simulated cycles while work is pending,
// the run fails with a LivelockError. Windows spent provably idle
// (skipIdle jumps) never execute ticks, so they cannot trip it.
func (s *System) watchdog() error {
	sig := s.progressSig()
	if sig != s.robust.sig {
		s.robust.sig = sig
		s.robust.sigCycle = s.dramCycle
		return nil
	}
	if s.dramCycle-s.robust.sigCycle <= s.Cfg.WatchdogWindow {
		return nil
	}
	if pend, what := s.workPending(); pend {
		return s.fail(&LivelockError{
			Cycle: s.dramCycle,
			Reason: fmt.Sprintf("no forward progress for %d executed-tick cycles while %s",
				s.dramCycle-s.robust.sigCycle, what),
			Dump: s.DiagDump(),
		})
	}
	s.robust.sigCycle = s.dramCycle // idle by design; restart the window
	return nil
}

// DeadlineExceeded checks the per-run deadlines (Config.MaxCycles,
// Config.MaxWallClock) and the cooperative stop flag (Config.Cancel),
// recording a sticky DeadlineError or CanceledError when one fires.
// StepFast consults it once per wake; cycle-by-cycle drivers (the
// reference Tick path) call it directly. The wall-clock read and the
// cancel-flag load are rate-limited to one per wallCheckEvery calls.
func (s *System) DeadlineExceeded() error {
	if s.robust.err != nil {
		return s.robust.err
	}
	if s.Cfg.MaxCycles > 0 && s.dramCycle >= s.Cfg.MaxCycles {
		return s.fail(&DeadlineError{Cycle: s.dramCycle, Kind: "cycle"})
	}
	if s.Cfg.MaxWallClock > 0 || s.Cfg.Cancel != nil {
		if s.robust.wallStart.IsZero() {
			s.robust.wallStart = time.Now()
		}
		s.robust.wallSeen++
		if s.robust.wallSeen%wallCheckEvery == 0 {
			if s.Cfg.Cancel != nil && s.Cfg.Cancel.Load() {
				return s.fail(&CanceledError{Cycle: s.dramCycle})
			}
			if s.Cfg.MaxWallClock > 0 &&
				time.Since(s.robust.wallStart) > s.Cfg.MaxWallClock {
				return s.fail(&DeadlineError{Cycle: s.dramCycle, Kind: "wall-clock", Limit: s.Cfg.MaxWallClock})
			}
		}
	}
	return nil
}

// DiagDump renders the scheduler-relevant state for a livelock report:
// controller queue occupancies and wake horizons, per-domain mailbox
// and NDA survey state, core (ROB-head) status, and the in-flight miss
// count. It is diagnostic text for humans, built only on failure paths.
func (s *System) DiagDump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "  clock: dram=%d cpu=%d\n", s.dramCycle, s.cpuCycle)
	hz := func(v int64) string {
		if v >= dram.Never {
			return "never"
		}
		return fmt.Sprintf("%d", v)
	}
	for i, c := range s.MCs {
		r, w := c.QueueOccupancy()
		fmt.Fprintf(&b, "  mc[%d]: rq=%d wq=%d overflow=%d next=%s\n",
			i, r, w-c.OverflowLen(), c.OverflowLen(), hz(c.NextEvent(s.dramCycle)))
	}
	for d := range s.doms {
		fmt.Fprintf(&b, "  dom[%d]: outbox=%d ndaWake=%s ndaNext=%s\n",
			d, len(s.doms[d].outbox), hz(s.stepNDAWake[d]), hz(s.NDA.ChannelNextEvent(d, s.dramCycle)))
	}
	fmt.Fprintf(&b, "  rt: copierBusy=%v next=%s\n", s.RT.CopierBusy(), hz(s.RT.NextEvent(s.dramCycle)))
	if s.Hier != nil {
		fmt.Fprintf(&b, "  hier: pendingMisses=%d\n", s.Hier.PendingMisses())
	}
	for i, core := range s.Cores {
		fmt.Fprintf(&b, "  core[%d]: retired=%d blocked=%v probeStalled=%v wake=%s\n",
			i, core.Retired, core.Blocked(), core.ProbeStalled(), hz(core.WakeCycle()))
	}
	return strings.TrimRight(b.String(), "\n")
}

// commitChecked is commit with Config.CheckInvariants armed: the same
// canonical mailbox drain, plus the mailbox-conservation check (commit
// callbacks must not produce new mailbox entries — only a memory-phase
// tick does) and the cross-layer invariant sweep once every layer is
// quiescent.
func (s *System) commitChecked() {
	for d := range s.doms {
		dom := &s.doms[d]
		n0 := len(dom.outbox)
		for i := 0; i < len(dom.outbox); i++ {
			ev := &dom.outbox[i]
			ev.fn(ev.at)
			ev.fn = nil
		}
		if len(dom.outbox) != n0 {
			panic(&InvariantError{Cycle: s.dramCycle,
				Msg: fmt.Sprintf("domain %d mailbox grew from %d to %d entries during commit drain", d, n0, len(dom.outbox))})
		}
		dom.outbox = dom.outbox[:0]
	}
	s.verifyInvariants()
}

// verifyInvariants is the commit-barrier hook behind
// Config.CheckInvariants: it validates the cross-layer conservation
// invariants and panics with an *InvariantError on the first violation
// (see InvariantError for why panic). Checked here, at the end of the
// commit phase, every layer is quiescent: mailboxes drained, fills
// applied, controllers between ticks.
func (s *System) verifyInvariants() {
	if s.Hier != nil {
		if err := s.Hier.CheckInvariants(); err != nil {
			panic(&InvariantError{Cycle: s.dramCycle, Msg: err.Error()})
		}
	}
	for i, c := range s.MCs {
		if err := c.CheckInvariants(); err != nil {
			panic(&InvariantError{Cycle: s.dramCycle, Msg: fmt.Sprintf("controller %d: %v", i, err)})
		}
	}
}
