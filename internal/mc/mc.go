// Package mc implements the host-side memory controller: one FR-FCFS
// scheduler per channel with separate 32-entry read and write queues,
// watermark-based write draining, and an open-page policy (Table II).
//
// The controller also exposes the coordination hooks Chopim's NDA
// controller needs (Section III): per-cycle host activity per rank, the
// rank targeted by the oldest outstanding read (next-rank prediction),
// and pending-demand checks used to prioritize host row commands.
//
// Scheduling is event-driven: requests are bucketed per (rank, flat
// bank) at enqueue time (see queue.go), and the occupied banks are
// filed in a calendar queue keyed by each bank's exact earliest-issue
// cycle (see calendar.go), so a due tick examines only the ready
// candidates instead of sweeping every occupied bank; the NDA
// coordination hooks are O(1) counter reads. The calendar scheduler is
// decision-for-decision equivalent to the original full-rescan one; the
// rescan survives as scheduleRef, the oracle for the randomized
// equivalence tests (TestBucketedSchedulerMatchesReference,
// TestCalendarInvalidationMatchesReference).
package mc

import (
	"chopim/internal/addrmap"
	"chopim/internal/dram"
	"chopim/internal/ring"
	"chopim/internal/stats"
)

// Request is one block-granularity memory transaction.
type Request struct {
	Addr   uint64
	DAddr  dram.Addr
	Write  bool
	Arrive int64
	Done   func(dramDone int64) // nil for writes and prefetches
	// Tag carries a caller-assigned identity for requests whose Done
	// closure must be rebuilt after a checkpoint restore (NDA launch
	// packets; see EnqueueControlTagged). Zero for everything else.
	Tag uint64

	// bankKey is the request's (channel, rank, flat-bank) bucket index —
	// (Channel*Ranks+Rank)*BanksPerRank + DAddr.GlobalBank — decoded
	// once at enqueue (the scheduler and demand hooks read it every
	// cycle). The channel is folded in so buckets never mix channels:
	// the system router always routes one channel per controller, but
	// direct Enqueue* callers (unit harnesses) may not.
	bankKey int32
	// seq is the queue-insertion order FR-FCFS ages by. It is assigned
	// when the request enters its scheduling queue — an overflow-buffered
	// write is sequenced at drain-into-queue time, matching the append
	// order of the original slice-based queues.
	seq int64

	qnext, qprev *Request // arrival-ordered queue list; qnext doubles as the free-list link
	bnext, bprev *Request // (rank, bank) bucket list
}

// Config tunes one channel controller.
type Config struct {
	ReadQueue  int
	WriteQueue int
	// Write drain watermarks (occupancy counts on the write queue).
	DrainHigh int
	DrainLow  int
}

// DefaultConfig returns the paper's controller parameters.
func DefaultConfig() Config {
	return Config{ReadQueue: 32, WriteQueue: 32, DrainHigh: 24, DrainLow: 8}
}

// Controller schedules one channel.
type Controller struct {
	cfg     Config
	mem     *dram.Mem
	mapper  addrmap.Mapper
	channel int

	rq reqQueue
	wq reqQueue
	// overflow absorbs writebacks beyond the write queue (an unbounded
	// eviction buffer drained into wq as space frees).
	overflow ring.Ring[*Request]
	drain    bool

	bpr        int      // banks per rank (bankKey stride)
	bpg        int      // banks per group (flat bank -> bank group)
	nrank      int      // ranks per channel
	free       *Request // request node pool
	seqGen     int64
	stScratch  []int64 // per-rank stamp scratch for schedule sweeps
	busScratch []int64 // per-rank channel-bus horizon scratch

	// Fused horizon hint: a Tick that attempts both queues and issues
	// nothing records the min candidate horizon its failed sweeps
	// already computed (sweepHz per queue), saving NextEvent the
	// re-sweep. Valid while hintVer/hintMemVer match the live counters.
	sweepHz    int64
	hint       int64
	hintValid  bool
	hintVer    uint64
	hintMemVer uint64

	// cross is set when any request ever decoded to a foreign channel.
	// The system router routes one channel per controller, so this only
	// trips in unit harnesses that enqueue raw addresses; the controller
	// then runs the seed-exact rescan scheduler, whose per-request
	// evaluation (and channel-agnostic visited-bank marking) reproduces
	// the original behavior for mixed-channel queues.
	cross bool

	// refSched selects the original full-rescan FR-FCFS pass (the test
	// oracle); see SetReferenceScheduler.
	refSched bool

	// csink, when set, receives completion callbacks instead of having
	// them invoked inline at issue time (see SetCompletionSink). The sim
	// package points it at the controller's channel-domain mailbox so a
	// Tick on a worker goroutine never calls into shared state (the cache
	// hierarchy, the copy pump, runtime handles); the deferred callbacks
	// run in the serial cross-channel commit phase of the same cycle.
	csink func(done func(int64), at int64)

	// issuedRank is the rank the host issued a command to this cycle
	// (-1 if none); refreshed each Tick.
	issuedRank  int
	issuedIsCol bool

	// ver counts externally visible controller mutations: enqueues,
	// dequeues/issues (column and row commands, refresh), and overflow
	// refills. Anything caching conclusions drawn from controller state
	// — the system's per-controller wake cache — revalidates when it
	// changes. Pure bookkeeping invisible from outside (drain hysteresis
	// flips) does not bump it.
	ver uint64

	// qver counts only the mutations that move the controller's QUEUE
	// state: enqueues, overflow refills, and column issues (dequeues).
	// It deliberately excludes row/refresh commands (markRowCmd), which
	// bump ver but leave every queue-derived input unchanged. The NDA
	// engine's per-rank sleep bounds revalidate on the still-narrower
	// NDAVer(rank): the impure NDA branches read OldestReadRank (the rq
	// head) and HasDemandFor (bucket occupancy of the NDA's own rank),
	// and NDA timing checks are rank-local (nda=true NextIssue, no
	// channel bus) — so a host ACT/PRE elsewhere cannot change the
	// taken branch, queue churn confined to other ranks' buckets cannot
	// either, and a row/REF command to the NDA's own rank already
	// forces a tick through the dispatcher's RankBusy rule. This is the
	// same staleness split the calendar applies to bank entries
	// (rkStamp vs bucket dirtiness), applied to the engine's controller
	// inputs.
	qver uint64

	// seen/seenGen implement the reference scheduler's per-Tick
	// visited-bank set without per-cycle allocation.
	seen    []int64
	seenGen int64

	// Per-rank idle histograms (Fig 2) and bandwidth accounting.
	IdleHists []stats.IdleHist

	ReadsIssued, WritesIssued int64
	ActsIssued, PresIssued    int64
	ReadLatencySum            int64
	Drains, Refreshes         int64
	nextRefresh               int64
}

// NewController builds a controller for the given channel.
func NewController(cfg Config, mem *dram.Mem, mapper addrmap.Mapper, channel int) *Controller {
	nb := mem.Geom.Channels * mem.Geom.Ranks * mem.Geom.BanksPerRank()
	c := &Controller{
		cfg: cfg, mem: mem, mapper: mapper, channel: channel,
		bpr:        mem.Geom.BanksPerRank(),
		bpg:        mem.Geom.BanksPerGroup,
		nrank:      mem.Geom.Ranks,
		issuedRank: -1,
		seen:       make([]int64, nb),
		IdleHists:  make([]stats.IdleHist, mem.Geom.Ranks),
		stScratch:  make([]int64, mem.Geom.Ranks),
		busScratch: make([]int64, mem.Geom.Ranks),
	}
	c.rq.init(mem.Geom.Channels*mem.Geom.Ranks, c.bpr, mem.Geom.Ranks)
	c.wq.init(mem.Geom.Channels*mem.Geom.Ranks, c.bpr, mem.Geom.Ranks)
	for i := 0; i < cfg.ReadQueue+cfg.WriteQueue; i++ {
		c.free = &Request{qnext: c.free}
	}
	// The overflow buffer is unbounded by design, but its ring is
	// reserved to a generous high-water estimate up front: LLC-thrashing
	// hosts produce dirty-eviction bursts of several hundred writebacks,
	// and a mid-run ring doubling is the kind of late allocation the
	// zero-allocs steady-state gate exists to catch.
	c.overflow.Reserve(32 * cfg.WriteQueue)
	return c
}

// SetReferenceScheduler switches the controller to the original
// full-rescan FR-FCFS implementation. It exists as the oracle for the
// scheduler equivalence tests; the bucketed path is the production one.
func (c *Controller) SetReferenceScheduler(on bool) { c.refSched = on }

// SetCompletionSink redirects request completion callbacks (read fills,
// control-launch acknowledgements) into sink instead of invoking them
// inline at issue time. sink receives the request's Done function and
// the DRAM cycle it would have been invoked with; the caller must run
// every deferred callback before the end of the cycle it was produced
// in. A nil sink restores inline invocation (the default, which unit
// harnesses rely on).
func (c *Controller) SetCompletionSink(sink func(done func(int64), at int64)) {
	c.csink = sink
}

// Channel returns the channel index this controller owns.
func (c *Controller) Channel() int { return c.channel }

// Ver returns the externally-visible-mutation counter (see ver).
func (c *Controller) Ver() uint64 { return c.ver }

// QVer returns the queue-mutation counter (see qver).
func (c *Controller) QVer() uint64 { return c.qver }

// NDAVer returns a version counter over exactly the queue state the NDA
// engine's impure sleep bounds read for the given rank: the read-queue
// head identity (OldestReadRank's only input) and the rank's per-bank
// bucket-occupancy zero-crossings in both queues (the only transitions
// that can flip a HasDemandFor answer). It narrows qver the way qver
// narrows ver: queue churn that provably cannot change the rank's taken
// NDA branch — writes queued or drained against other ranks' banks,
// column issues that neither move the read-queue head nor empty a
// bucket of this rank — leaves it unchanged, so the rank's cached sleep
// bound survives. A sum of monotone counters, so equality means none of
// the covered inputs moved. O(channels) counter reads — effectively
// O(1).
func (c *Controller) NDAVer(rank int) uint64 {
	v := c.rq.headVer
	for g := rank; g < len(c.rq.demVer); g += c.nrank {
		v += c.rq.demVer[g] + c.wq.demVer[g]
	}
	return v
}

// ClearIssued resets the per-cycle issued-command scratch without
// running a Tick. The wake-driven system scheduler calls it on cycles
// where the controller is provably idle, so the NDA coordination hooks
// (HostIssuedRank) observe the same -1 a no-op Tick would have set.
func (c *Controller) ClearIssued() {
	c.issuedRank = -1
	c.issuedIsCol = false
}

// alloc pops a pooled request node (or grows the pool).
func (c *Controller) alloc(addr uint64, daddr dram.Addr, write bool, now int64, done func(int64)) *Request {
	r := c.free
	if r != nil {
		c.free = r.qnext
		*r = Request{}
	} else {
		r = &Request{}
	}
	r.Addr, r.DAddr, r.Write, r.Arrive, r.Done = addr, daddr, write, now, done
	r.bankKey = int32((daddr.Channel*c.nrank+daddr.Rank)*c.bpr + daddr.GlobalBank(c.mem.Geom))
	if daddr.Channel != c.channel {
		c.cross = true
	}
	return r
}

// release returns a retired request node to the pool.
func (c *Controller) release(r *Request) {
	*r = Request{qnext: c.free}
	c.free = r
}

// EnqueueRead adds a read; done fires at data-available time.
// It returns false when the read queue is full.
func (c *Controller) EnqueueRead(addr uint64, now int64, done func(int64)) bool {
	return c.EnqueueReadDecoded(addr, c.mapper.Decode(addr), now, done)
}

// EnqueueReadDecoded is EnqueueRead for callers that already decoded the
// address (the router decodes to route; re-decoding per request is
// measurable on the hot path).
func (c *Controller) EnqueueReadDecoded(addr uint64, daddr dram.Addr, now int64, done func(int64)) bool {
	if c.rq.n >= c.cfg.ReadQueue {
		return false
	}
	r := c.alloc(addr, daddr, false, now, done)
	r.seq = c.seqGen
	c.seqGen++
	c.rq.push(r)
	c.ver++
	c.qver++
	return true
}

// EnqueueWrite adds a writeback. Overflow beyond the write queue is
// buffered (never refused) to keep eviction handling simple.
func (c *Controller) EnqueueWrite(addr uint64, now int64) bool {
	c.EnqueueWriteDecoded(addr, c.mapper.Decode(addr), now)
	return true
}

// EnqueueWriteDecoded is EnqueueWrite with a pre-decoded address.
func (c *Controller) EnqueueWriteDecoded(addr uint64, daddr dram.Addr, now int64) {
	c.pushWrite(c.alloc(addr, daddr, true, now, nil))
}

// EnqueueControl submits an NDA launch packet: a write transaction to the
// rank's control registers that occupies the command/data channel like
// any host write (Section V). done fires when the write issues.
func (c *Controller) EnqueueControl(daddr dram.Addr, now int64, done func(int64)) {
	c.EnqueueControlTagged(daddr, now, 0, done)
}

// EnqueueControlTagged is EnqueueControl with a caller-assigned identity
// tag, so checkpoint restore can rebuild the done closure (launch
// acknowledgements) for in-flight packets.
func (c *Controller) EnqueueControlTagged(daddr dram.Addr, now int64, tag uint64, done func(int64)) {
	r := c.alloc(0, daddr, true, now, done)
	r.Tag = tag
	c.pushWrite(r)
}

// pushWrite routes a write into the write queue or the overflow buffer.
func (c *Controller) pushWrite(r *Request) {
	c.ver++
	c.qver++
	if c.wq.n >= c.cfg.WriteQueue {
		c.overflow.Push(r)
		return
	}
	r.seq = c.seqGen
	c.seqGen++
	c.wq.push(r)
}

// QueueOccupancy returns current read/write queue lengths.
func (c *Controller) QueueOccupancy() (reads, writes int) {
	return c.rq.n, c.wq.n + c.overflow.Len()
}

// HostIssuedRank returns the rank the host issued any command to this
// cycle, or -1. Valid after Tick for the same cycle.
func (c *Controller) HostIssuedRank() int { return c.issuedRank }

// OldestReadRank implements the next-rank predictor input: the rank of
// the oldest outstanding read in this channel's transaction queue.
func (c *Controller) OldestReadRank() (rank int, ok bool) {
	if c.rq.head == nil {
		return 0, false
	}
	return c.rq.head.DAddr.Rank, true
}

// HasDemandFor reports whether any queued host request targets the given
// rank and bank on any channel (used to give host row commands priority
// over NDA row commands, Section III-B). O(channels) bucket-occupancy
// reads — effectively O(1).
func (c *Controller) HasDemandFor(rank, flatBank int) bool {
	for key := rank*c.bpr + flatBank; key < len(c.rq.banks); key += c.nrank * c.bpr {
		if c.rq.banks[key].n > 0 || c.wq.banks[key].n > 0 {
			return true
		}
	}
	return false
}

// HasAnyDemandFor reports whether any queued request targets the rank.
// O(channels) counter reads — effectively O(1).
func (c *Controller) HasAnyDemandFor(rank int) bool {
	for g := rank; g < len(c.rq.rankN); g += c.nrank {
		if c.rq.rankN[g] > 0 || c.wq.rankN[g] > 0 {
			return true
		}
	}
	return false
}

// NextEvent returns the earliest DRAM cycle >= now at which the
// controller can change observable state. With all queues empty only the
// refresh deadline (when refresh is enabled) can wake it. With requests
// queued it reports the earliest cycle any FR-FCFS candidate's command
// can legally issue — when every queued request is timing-blocked that
// horizon lies beyond now, and every cycle before it is provably a
// scheduler no-op, extending fast-forward into write-drain and
// launch-heavy windows. Cycles where Tick performs internal bookkeeping
// (overflow refill, drain-watermark flips, refresh interleaving) report
// now.
func (c *Controller) NextEvent(now int64) int64 {
	if c.rq.n == 0 && c.wq.n == 0 && c.overflow.Len() == 0 {
		if c.mem.T.REFI > 0 {
			if c.nextRefresh > now {
				return c.nextRefresh
			}
			return now
		}
		return dram.Never
	}
	if c.mem.T.REFI > 0 || c.cross || c.refSched {
		// Refresh interleaves with scheduling, and the rescan paths
		// (mixed-channel queues, oracle mode) derive no horizons; stay
		// cycle-exact.
		return now
	}
	if c.issuedRank >= 0 {
		// The controller issued on its most recent executed cycle;
		// report due. The common case is more ready work immediately
		// after an issue, so horizon derivation is deferred until a
		// cycle proves the pipeline drained (a Tick that issues nothing
		// clears issuedRank and leaves a fused horizon hint behind).
		return now
	}
	if c.overflow.Len() > 0 && c.wq.n < c.cfg.WriteQueue {
		return now // next Tick refills the write queue
	}
	if (!c.drain && c.wq.n >= c.cfg.DrainHigh) || (c.drain && c.wq.n <= c.cfg.DrainLow) {
		return now // next Tick flips drain hysteresis (Drains counter)
	}
	// A Tick that attempted both queues and issued nothing already
	// derived the horizon as a byproduct of its failed scans; serve it
	// while nothing it was derived from has moved (no enqueue or
	// dequeue — ver — and no command on the channel — ChVer). The
	// horizon covers only candidates that can mature on their own
	// (future timing bounds): ready-but-rowWanted-blocked row commands
	// are excluded, because their state is provably frozen until a
	// queue mutation or command issue — events that bump ver or ChVer
	// and re-derive this bound. Never therefore means "no timing-driven
	// wake at all": the controller sleeps until such an event.
	h := dram.Never
	if c.hintValid && c.hintVer == c.ver && c.hintMemVer == c.mem.ChVer(c.channel) {
		h = c.hint
	} else {
		h = min(c.queueHorizon(&c.rq, false, now), c.queueHorizon(&c.wq, true, now))
	}
	if h <= now {
		return now
	}
	return h
}

// queueHorizon bounds when any of the queue's FR-FCFS candidates (pass-1
// row hits and pass-2 row commands) can first issue, assuming no
// intervening commands. It runs the same calendar scan the scheduler
// uses (ready region validated exactly, future banks contribute their
// lower-bound keys), so the bound is sound — never beyond the true
// earliest issue — and tightens to exact as candidates approach
// readiness. Requests blocked structurally on another request's
// progress (row kept open for an older hit) are covered by that
// request's own candidate horizon.
func (c *Controller) queueHorizon(q *reqQueue, writes bool, now int64) int64 {
	if q.n == 0 {
		return dram.Never
	}
	cmd := dram.CmdRD
	if writes {
		cmd = dram.CmdWR
	}
	best, best2, hzFuture := c.calScan(q, cmd, now)
	if best != nil || c.readyRow(q, now, best2) != nil {
		// A ready column or an issuable row command: the controller is
		// due this very cycle. (Ready row commands that are rowWanted-
		// blocked are NOT due — their state is frozen until a ver/ChVer
		// event re-derives this bound — which is what lets the
		// controller sleep through blocked windows instead of polling.)
		return now
	}
	return c.calHorizon(q, cmd, now, hzFuture)
}

// readyRow returns the oldest ready pass-2 entry whose row command can
// actually issue this cycle: ACTs unconditionally, PREs only when the
// open row is no longer wanted by any queued request. The rowWanted
// re-check and oldest-first resume mirror the rescan's pass 2 exactly;
// candidates are drawn from the calendar's ready region, which calScan
// left validated and holding every bank with a ready candidate. It
// evaluates without mutating, so both schedule (to issue) and
// queueHorizon (to decide due-ness) share it.
func (c *Controller) readyRow(q *reqQueue, now int64, best2 *bankEntry) *bankEntry {
	lastSeq := int64(-1)
	for best2 != nil {
		r := best2.p2
		if best2.p2Cmd == dram.CmdPRE && c.rowWanted(r.DAddr, int(best2.p2Row)) {
			lastSeq = r.seq
			best2 = nil
			for bk := q.calReady; bk != -1; bk = q.calNext[bk] {
				e := &q.sched[q.occPos[bk]]
				if e.p2 == nil || e.p2Rank > now || e.p2.seq <= lastSeq {
					continue
				}
				if best2 == nil || e.p2.seq < best2.p2.seq {
					best2 = e
				}
			}
			continue
		}
		return best2
	}
	return nil
}

// recomputeEntry re-derives one bank's candidates (see bankEntry). All
// timing inputs come from one BankSched read; ready cycles are raw
// horizons (the callers' <= now compares make clamping unnecessary).
// When only timing moved — the bucket is clean and the bank's row state
// matches the identity cache — the candidates themselves are reused and
// just their ready cycles refresh, skipping the bucket scan.
func (c *Controller) recomputeEntry(q *reqQueue, e *bankEntry, bk int32, cmd dram.Command, st int64) {
	// Bank coordinates come from the key, not the bucket head: the
	// identity-fast branch must not touch the request at all (a pointer
	// chase the packed entry layout exists to avoid).
	flat := int(bk) % c.bpr
	rank := int(bk)/c.bpr - c.channel*c.nrank
	row, open, readyACT, readyPRE, readyRD, readyWR := c.mem.BankSched(
		c.channel, rank, flat/c.bpg, flat)
	if !e.dirty && e.idValid && e.idOpen == open && (!open || e.idRow == int32(row)) {
		if e.p1 != nil {
			if cmd == dram.CmdRD {
				e.p1Rank = readyRD
			} else {
				e.p1Rank = readyWR
			}
		}
		if e.p2 != nil {
			switch e.p2Cmd {
			case dram.CmdACT:
				e.p2Rank = readyACT
			default:
				e.p2Rank = readyPRE
			}
		}
		e.rkStamp = st
		return
	}
	bl := &q.banks[bk]
	head := bl.head
	a := &head.DAddr
	e.p1, e.p2 = nil, nil
	if !open {
		e.p2, e.p2Cmd = head, dram.CmdACT
		e.p2Rank = readyACT
	} else {
		for r := bl.head; r != nil; r = r.bnext {
			if r.DAddr.Row == row {
				// Rank-side bound only; the channel bus is checked per
				// cycle through ExtColReady.
				e.p1 = r
				if cmd == dram.CmdRD {
					e.p1Rank = readyRD
				} else {
					e.p1Rank = readyWR
				}
				break
			}
		}
		if a.Row != row {
			e.p2, e.p2Cmd, e.p2Row = head, dram.CmdPRE, int32(row)
			e.p2Rank = readyPRE
		}
	}
	e.dirty = false
	e.idValid, e.idOpen, e.idRow = true, open, int32(row)
	e.rkStamp = st
}

// Tick advances the controller one DRAM cycle, issuing at most one
// command on the channel.
func (c *Controller) Tick(now int64) {
	c.issuedRank = -1
	c.issuedIsCol = false

	// Refresh scheduling (disabled when tREFI is zero, the paper's
	// configuration): every tREFI, close the due rank and issue REF.
	if c.mem.T.REFI > 0 && c.refresh(now) {
		return
	}

	// Refill the write queue from the overflow buffer.
	for c.overflow.Len() > 0 && c.wq.n < c.cfg.WriteQueue {
		r := c.overflow.Pop()
		r.seq = c.seqGen
		c.seqGen++
		c.wq.push(r)
		c.ver++
		c.qver++
	}

	// Write-drain mode hysteresis.
	if !c.drain && c.wq.n >= c.cfg.DrainHigh {
		c.drain = true
		c.Drains++
	}
	if c.drain && c.wq.n <= c.cfg.DrainLow {
		c.drain = false
	}

	useWrites := c.drain || (c.rq.n == 0 && c.wq.n > 0)
	if useWrites {
		if c.schedule(&c.wq, now, true) {
			return
		}
		h := c.sweepHz
		// Fall through: if no write can issue, try reads anyway.
		if !c.schedule(&c.rq, now, false) {
			c.setHint(min(h, c.sweepHz))
		}
		return
	}
	if c.schedule(&c.rq, now, false) {
		return
	}
	h := c.sweepHz
	// Opportunistic writes when no read can make progress.
	if !c.schedule(&c.wq, now, true) {
		c.setHint(min(h, c.sweepHz))
	}
}

// setHint publishes the fused horizon derived by a no-issue Tick's
// failed sweeps (see NextEvent), stamped with the state versions it was
// derived under.
func (c *Controller) setHint(h int64) {
	c.hint = h
	c.hintValid = true
	c.hintVer = c.ver
	c.hintMemVer = c.mem.ChVer(c.channel)
}

// schedule applies FR-FCFS to the given queue: first a ready row-hit
// column command in oldest-first order, then a row command (ACT or PRE)
// for the oldest request per bank. Returns true if a command issued.
//
// Candidate selection runs off the calendar queue (calendar.go): the
// per-bank entries are unchanged (pass 1's only viable requests are
// each open bank's oldest row hit, pass 2's are the bucket heads —
// exactly the requests the rescan's visited-bank set selected), but
// only the ready region is examined per due tick instead of every
// occupied bank. A candidate is ready iff now has reached its exact
// horizon — the cached rank-side bound plus, for columns, the O(1)
// channel-bus bound — so "oldest ready" equals the rescan's "first in
// arrival order passing CanIssue".
func (c *Controller) schedule(q *reqQueue, now int64, writes bool) bool {
	c.sweepHz = dram.Never
	if q.n == 0 {
		return false
	}
	if c.refSched || c.cross {
		// The rescan derives no horizon; a Never hint makes NextEvent
		// report due (cycle-exact), which oracle mode wants anyway.
		return c.scheduleRef(q, now, writes)
	}
	cmd := dram.CmdRD
	if writes {
		cmd = dram.CmdWR
	}
	// The scan finds both passes' oldest ready candidates (the row hit
	// — pass 1 — always wins over a row command, pass 2). The exact min
	// candidate horizon (sweepHz, the fused hint NextEvent serves) is
	// derived only on the no-issue paths below — an issuing tick's
	// horizon is never consumed.
	best, best2, hzReady := c.calScan(q, cmd, now)
	c.sweepHz = hzReady
	if best != nil {
		c.issueColumn(cmd, best, q, now, writes)
		return true
	}
	// Pass 2: row commands in age order among the ready candidates. A
	// PRE re-checks rowWanted at issue time (the open-page policy may
	// have gained a waiter from the other queue since the entry was
	// derived); on a skip readyRow resumes at the next-oldest ready
	// candidate — still within the ready region, which calScan left
	// holding every bank with a ready candidate, validated.
	if e := c.readyRow(q, now, best2); e != nil {
		c.mem.Issue(e.p2Cmd, e.p2.DAddr, now, false)
		if e.p2Cmd == dram.CmdPRE {
			c.PresIssued++
		} else {
			c.ActsIssued++
		}
		c.markRowCmd(e.p2.DAddr, now)
		return true
	}
	c.sweepHz = c.calHorizon(q, cmd, now, hzReady)
	return false
}

// scheduleRef is the original O(queue)-per-cycle FR-FCFS rescan, kept as
// the oracle for the scheduler equivalence tests.
func (c *Controller) scheduleRef(q *reqQueue, now int64, writes bool) bool {
	// Pass 1: ready column commands (row hits), in arrival order.
	for r := q.head; r != nil; r = r.qnext {
		row, open := c.mem.OpenRow(r.DAddr)
		if !open || row != r.DAddr.Row {
			continue
		}
		cmd := dram.CmdRD
		if writes {
			cmd = dram.CmdWR
		}
		if !c.mem.CanIssue(cmd, r.DAddr, now, false) {
			continue
		}
		c.issueColumn(cmd, r, q, now, writes)
		return true
	}
	// Pass 2: row commands for the oldest request in each conflicting
	// bank, in arrival order.
	c.seenGen++
	for r := q.head; r != nil; r = r.qnext {
		// The seed's visited-bank key deliberately omits the channel;
		// mixed-channel behavior (cross harnesses) depends on it.
		seedKey := r.DAddr.Rank*c.bpr + r.DAddr.GlobalBank(c.mem.Geom)
		if c.seen[seedKey] == c.seenGen {
			continue
		}
		c.seen[seedKey] = c.seenGen
		row, open := c.mem.OpenRow(r.DAddr)
		if open && row == r.DAddr.Row {
			continue // column blocked only by timing; wait
		}
		if open {
			if c.rowWantedRef(r.DAddr, row) {
				continue
			}
			if c.mem.CanIssue(dram.CmdPRE, r.DAddr, now, false) {
				c.mem.Issue(dram.CmdPRE, r.DAddr, now, false)
				c.PresIssued++
				c.markRowCmd(r.DAddr, now)
				return true
			}
			continue
		}
		if c.mem.CanIssue(dram.CmdACT, r.DAddr, now, false) {
			c.mem.Issue(dram.CmdACT, r.DAddr, now, false)
			c.ActsIssued++
			c.markRowCmd(r.DAddr, now)
			return true
		}
	}
	return false
}

// rowWanted reports whether any queued request still targets the open row
// of the same bank (open-page policy keeps it open for them). It scans
// the bank's buckets in both queues — O(per-bank occupancy).
func (c *Controller) rowWanted(a dram.Addr, openRow int) bool {
	key := int32((a.Channel*c.nrank+a.Rank)*c.bpr + a.GlobalBank(c.mem.Geom))
	for r := c.rq.banks[key].head; r != nil; r = r.bnext {
		if r.DAddr.Row == openRow {
			return true
		}
	}
	for r := c.wq.banks[key].head; r != nil; r = r.bnext {
		if r.DAddr.Row == openRow {
			return true
		}
	}
	return false
}

// rowWantedRef is the original whole-queue scan, used by scheduleRef.
func (c *Controller) rowWantedRef(a dram.Addr, openRow int) bool {
	match := func(r *Request) bool {
		return r.DAddr.Rank == a.Rank && r.DAddr.BankGroup == a.BankGroup &&
			r.DAddr.Bank == a.Bank && r.DAddr.Row == openRow
	}
	for r := c.rq.head; r != nil; r = r.qnext {
		if match(r) {
			return true
		}
	}
	for r := c.wq.head; r != nil; r = r.qnext {
		if match(r) {
			return true
		}
	}
	return false
}

func (c *Controller) issueColumn(cmd dram.Command, r *Request, q *reqQueue, now int64, write bool) {
	c.mem.Issue(cmd, r.DAddr, now, false)
	c.ver++
	c.qver++
	c.issuedRank = r.DAddr.Rank
	c.issuedIsCol = true
	q.remove(r)
	var dataStart, dataEnd int64
	if write {
		c.WritesIssued++
		dataStart = now + int64(c.mem.T.CWL)
		dataEnd = now + c.mem.WriteLatency()
	} else {
		c.ReadsIssued++
		dataStart = now + int64(c.mem.T.CL)
		dataEnd = now + c.mem.ReadLatency()
		c.ReadLatencySum += dataEnd - r.Arrive
	}
	// The rank counts as host-busy during the data burst; the CAS-wait
	// window remains available to NDA column commands.
	c.IdleHists[r.DAddr.Rank].MarkBusy(dataStart, dataEnd)
	done := r.Done
	c.release(r)
	if done != nil {
		if c.csink != nil {
			c.csink(done, dataEnd)
		} else {
			done(dataEnd)
		}
	}
}

// markRowCmd records host activity on a rank for a row command.
func (c *Controller) markRowCmd(a dram.Addr, now int64) {
	c.ver++
	c.issuedRank = a.Rank
	c.IdleHists[a.Rank].MarkBusy(now, now+1)
}

// refresh issues PREs and REF for ranks whose tREFI deadline passed.
// Returns true if it consumed this cycle's command slot. Note: with
// refresh enabled and NDAs active on the same rank, quiescing can take
// longer because NDA activates race the controller's precharges; the
// paper's configuration (and every experiment here) runs refresh
// disabled, matching Table II.
func (c *Controller) refresh(now int64) bool {
	if now < c.nextRefresh {
		return false
	}
	rank := int(now/int64(c.mem.T.REFI)) % c.mem.Geom.Ranks
	a := dram.Addr{Channel: c.channel, Rank: rank}
	if c.mem.CanIssue(dram.CmdREF, a, now, false) {
		c.mem.Issue(dram.CmdREF, a, now, false)
		c.markRowCmd(a, now)
		c.nextRefresh = now + int64(c.mem.T.REFI)
		c.Refreshes++
		return true
	}
	// Close any open bank in the rank so REF becomes legal.
	for bg := 0; bg < c.mem.Geom.BankGroups; bg++ {
		for bk := 0; bk < c.mem.Geom.BanksPerGroup; bk++ {
			b := dram.Addr{Channel: c.channel, Rank: rank, BankGroup: bg, Bank: bk}
			if _, open := c.mem.OpenRow(b); open && c.mem.CanIssue(dram.CmdPRE, b, now, false) {
				c.mem.Issue(dram.CmdPRE, b, now, false)
				c.PresIssued++
				c.markRowCmd(b, now)
				return true
			}
		}
	}
	return true // hold the slot until the rank quiesces
}

// FinalizeStats closes the idle histograms at simulation end.
func (c *Controller) FinalizeStats(end int64) {
	for i := range c.IdleHists {
		c.IdleHists[i].Finalize(end)
	}
}
