package chopim_test

import (
	"testing"

	"chopim"
)

// TestPublicAPIQuickstart exercises the README quickstart end to end
// through the public facade.
func TestPublicAPIQuickstart(t *testing.T) {
	sys, err := chopim.NewSystem(chopim.DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	x, err := sys.RT.NewVector(1<<18, chopim.Shared)
	if err != nil {
		t.Fatal(err)
	}
	y, err := sys.RT.NewVector(1<<18, chopim.Shared)
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.RT.Copy(y, x)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Await(50_000_000, h); err != nil {
		t.Fatal(err)
	}
	if sys.HostIPC() <= 0 {
		t.Error("host made no progress")
	}
	if sys.NDABlocks() == 0 {
		t.Error("NDAs moved no data")
	}
}

// TestConfigKnobs verifies the ablation switches exist and compose.
func TestConfigKnobs(t *testing.T) {
	cfg := chopim.DefaultConfig(-1)
	cfg.Partitioned = false
	cfg.NDA.Policy = chopim.Stochastic
	cfg.NDA.StochasticProb = 0.5
	cfg.MaxBlocksPerInstr = 32
	cfg.ModelLaunches = false
	cfg.Geom.Ranks = 4
	sys, err := chopim.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	x, err := sys.RT.NewVector(1<<18, chopim.Private)
	if err != nil {
		t.Fatal(err)
	}
	h, err := sys.RT.Nrm2(x)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Await(50_000_000, h); err != nil {
		t.Fatal(err)
	}
}

// TestGeometryPresets sanity-checks the exported constructors.
func TestGeometryPresets(t *testing.T) {
	g := chopim.DefaultGeometry()
	if g.Channels != 2 || g.Ranks != 2 {
		t.Errorf("baseline geometry = %+v", g)
	}
	tm := chopim.DDR42400()
	if tm.CL != 16 || tm.FAW != 26 {
		t.Errorf("Table II timing = %+v", tm)
	}
}
