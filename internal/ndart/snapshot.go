package ndart

import (
	"errors"
	"sort"

	"chopim/internal/nda"
	"chopim/internal/osmem"
)

// SnapEncoder collects the transitive closure of runtime objects an
// in-flight checkpoint references — vectors, handles, and op blueprints
// — deduplicated by pointer into stable table indices. The NDA engine's
// snapshot walk feeds it through EncodeTag; Snapshot then adds the
// pending launch packets and serializes the tables.
type SnapEncoder struct {
	vecIdx map[*Vector]int
	vecs   []*Vector
	hIdx   map[*Handle]int
	hs     []*Handle
	bpIdx  map[*opBP]int
	bps    []*opBP
}

// NewSnapshotEncoder starts a snapshot of this runtime's object graph.
func (rt *Runtime) NewSnapshotEncoder() *SnapEncoder {
	return &SnapEncoder{
		vecIdx: make(map[*Vector]int),
		hIdx:   make(map[*Handle]int),
		bpIdx:  make(map[*opBP]int),
	}
}

// EncodeTag is the nda engine's tag encoder: it registers an op's
// blueprint (and transitively its vectors and handle) and returns the
// blueprint's table index.
func (e *SnapEncoder) EncodeTag(tag any) any { return e.bp(tag.(*opBP)) }

func (e *SnapEncoder) bp(bp *opBP) int {
	if i, ok := e.bpIdx[bp]; ok {
		return i
	}
	for _, v := range bp.reads {
		e.vec(v)
	}
	e.vec(bp.write)
	e.handle(bp.h)
	i := len(e.bps)
	e.bpIdx[bp] = i
	e.bps = append(e.bps, bp)
	return i
}

func (e *SnapEncoder) vec(v *Vector) int {
	if v == nil {
		return -1
	}
	if i, ok := e.vecIdx[v]; ok {
		return i
	}
	i := len(e.vecs)
	e.vecIdx[v] = i
	e.vecs = append(e.vecs, v)
	return i
}

// RegisterHandle adds a handle (and its children) to the encoder's
// table and returns its stable index. Drivers call it for root join
// handles they hold across a checkpoint: a root may not be reachable
// from any in-flight op's blueprint walk, and the returned index is the
// durable name that survives a process boundary (RestoredHandleAt).
// Register roots before Snapshot finalizes the tables.
func (e *SnapEncoder) RegisterHandle(h *Handle) int { return e.handle(h) }

func (e *SnapEncoder) handle(h *Handle) int {
	if i, ok := e.hIdx[h]; ok {
		return i
	}
	i := len(e.hs)
	e.hIdx[h] = i
	e.hs = append(e.hs, h)
	for _, c := range h.children {
		e.handle(c)
	}
	return i
}

// vecState rebuilds a vector from scratch: the layout is a pure
// function of (base, bytes) under the runtime's fixed address mapping.
type vecState struct {
	base      uint64
	n         int
	bytes     uint64
	placement Placement
	color     osmem.Color
}

type handleState struct {
	pending  int
	doneAt   int64
	children []int
}

type bpState struct {
	kind    nda.OpKind
	reads   []int
	write   int // -1 when none
	ch, r   int
	from, n int
	total   int
	h       int
}

// launchState is one in-flight control-register write's payload; id
// matches the tagged request sitting in a controller queue.
type launchState struct {
	id    uint64
	ch, r int
	bps   []int
}

// RuntimeState is an opaque deep copy of the runtime's snapshot-visible
// state. Vectors, handles, and blueprints are serialized as index
// tables; live ops and queued launch packets reference into them.
type RuntimeState struct {
	vecs       []vecState
	handles    []handleState
	oldHandles []*Handle // encoder order; keys for RestoredHandle
	bps        []bpState
	launches   []launchState
	launchID   uint64
	color      osmem.Color
	colorSet   bool
	copies     int64
	nLaunches  int64
}

// Snapshot finalizes the encoder (whose EncodeTag the engine snapshot
// already ran) into a serialized runtime state. It fails while
// host-mediated copies are in flight: copy jobs hold completion
// closures with no replayable description, and they are short-lived —
// callers snapshot at a quiescent point instead.
func (rt *Runtime) Snapshot(enc *SnapEncoder) (*RuntimeState, error) {
	if rt.copier.Busy() {
		return nil, errors.New("ndart: snapshot with host-mediated copies in flight")
	}
	st := &RuntimeState{
		launchID: rt.launchID, color: rt.color, colorSet: rt.colorSet,
		copies: rt.Copies, nLaunches: rt.Launches,
	}
	ids := make([]uint64, 0, len(rt.pendingLaunches))
	for id := range rt.pendingLaunches {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		rec := rt.pendingLaunches[id]
		ls := launchState{id: id, ch: rec.ch, r: rec.r}
		for _, bp := range rec.bps {
			ls.bps = append(ls.bps, enc.bp(bp))
		}
		st.launches = append(st.launches, ls)
	}
	for _, v := range enc.vecs {
		st.vecs = append(st.vecs, vecState{
			base: v.base, n: v.n, bytes: v.bytes,
			placement: v.placement, color: v.color,
		})
	}
	for _, h := range enc.hs {
		hs := handleState{pending: h.pending, doneAt: h.doneAt}
		for _, c := range h.children {
			hs.children = append(hs.children, enc.hIdx[c])
		}
		st.handles = append(st.handles, hs)
	}
	st.oldHandles = append([]*Handle(nil), enc.hs...)
	for _, bp := range enc.bps {
		bs := bpState{
			kind: bp.kind, write: -1, ch: bp.ch, r: bp.r,
			from: bp.from, n: bp.n, total: bp.total, h: enc.hIdx[bp.h],
		}
		for _, v := range bp.reads {
			bs.reads = append(bs.reads, enc.vecIdx[v])
		}
		if bp.write != nil {
			bs.write = enc.vecIdx[bp.write]
		}
		st.bps = append(st.bps, bs)
	}
	return st, nil
}

// Restore overwrites the runtime's snapshot-visible state and returns
// the op decoder for the NDA engine's Restore. The runtime must be
// freshly built over an OS whose allocator state was restored first
// (the vectors' memory must already be allocated there).
func (rt *Runtime) Restore(st *RuntimeState) func(tag any) *nda.Op {
	vecs := make([]*Vector, len(st.vecs))
	for i, vs := range st.vecs {
		v := &Vector{
			rt: rt, base: vs.base, n: vs.n, bytes: vs.bytes,
			placement: vs.placement, color: vs.color,
		}
		v.indexBlocks()
		vecs[i] = v
	}
	hs := make([]*Handle, len(st.handles))
	for i := range st.handles {
		hs[i] = &Handle{}
	}
	rt.handleMap = make(map[*Handle]*Handle, len(hs))
	for i := range st.handles {
		s := &st.handles[i]
		hs[i].pending, hs[i].doneAt = s.pending, s.doneAt
		for _, c := range s.children {
			hs[i].children = append(hs[i].children, hs[c])
		}
		rt.handleMap[st.oldHandles[i]] = hs[i]
	}
	bps := make([]*opBP, len(st.bps))
	for i := range st.bps {
		bs := &st.bps[i]
		bp := &opBP{
			kind: bs.kind, ch: bs.ch, r: bs.r,
			from: bs.from, n: bs.n, total: bs.total, h: hs[bs.h],
		}
		for _, vi := range bs.reads {
			bp.reads = append(bp.reads, vecs[vi])
		}
		if bs.write >= 0 {
			bp.write = vecs[bs.write]
		}
		bps[i] = bp
	}
	rt.pendingLaunches = make(map[uint64]*launchRec, len(st.launches))
	for _, ls := range st.launches {
		rec := &launchRec{ch: ls.ch, r: ls.r}
		for _, bi := range ls.bps {
			rec.bps = append(rec.bps, bps[bi])
		}
		rt.pendingLaunches[ls.id] = rec
	}
	rt.launchID = st.launchID
	rt.color, rt.colorSet = st.color, st.colorSet
	rt.Copies, rt.Launches = st.copies, st.nLaunches
	rt.restored = hs
	return func(tag any) *nda.Op { return rt.buildOp(bps[tag.(int)]) }
}

// RestoredHandleAt returns the rebuilt handle at encoder-table index i
// after a Restore, or nil when out of range. It is the cross-process
// form of RestoredHandle for roots registered with RegisterHandle.
func (rt *Runtime) RestoredHandleAt(i int) *Handle {
	if i < 0 || i >= len(rt.restored) {
		return nil
	}
	return rt.restored[i]
}

// RestoredHandle maps a handle obtained before a snapshot to its
// counterpart in this restored runtime. A handle that had no in-flight
// work at snapshot time has no counterpart and maps to itself (it was
// complete and stays so). Join handles map structurally through their
// children.
func (rt *Runtime) RestoredHandle(h *Handle) *Handle {
	if nh, ok := rt.handleMap[h]; ok {
		return nh
	}
	if len(h.children) == 0 {
		return h
	}
	mapped := make([]*Handle, len(h.children))
	changed := false
	for i, c := range h.children {
		mapped[i] = rt.RestoredHandle(c)
		if mapped[i] != c {
			changed = true
		}
	}
	if !changed {
		return h
	}
	return &Handle{pending: h.pending, doneAt: h.doneAt, children: mapped}
}
