package sample

import (
	"math"
	"testing"
)

func TestConfigDefaultsAndAccounting(t *testing.T) {
	c := Config{}.WithDefaults()
	if err := c.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if c.Windows != 8 || c.Detail != 1000 || c.Warmup != 300 || c.FF != 20000 || c.Prime != 2000 {
		t.Fatalf("unexpected defaults: %+v", c)
	}
	wantTotal := int64(2000 + 8*(20000+300+1000))
	if got := c.TotalCycles(); got != wantTotal {
		t.Errorf("TotalCycles = %d, want %d", got, wantTotal)
	}
	wantDetail := int64(2000 + 8*(300+1000))
	if got := c.DetailedCycles(); got != wantDetail {
		t.Errorf("DetailedCycles = %d, want %d", got, wantDetail)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Windows: 0, Detail: 1},
		{Windows: 1, Detail: 0},
		{Windows: 1, Detail: 1, FF: -1},
		{Windows: 1, Detail: 1, Warmup: -5},
		{Windows: 1, Detail: 1, Prime: -5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d (%+v): want error, got nil", i, c)
		}
	}
	ok := Config{Windows: 1, Detail: 1}
	if err := ok.Validate(); err != nil {
		t.Errorf("minimal config rejected: %v", err)
	}
}

func TestMetricStats(t *testing.T) {
	// Known values: mean 2, sample std 1 over {1,2,3}... use {1,2,3}.
	m := NewMetric([]float64{1, 2, 3}, 1.96, 0)
	if m.Mean != 2 {
		t.Errorf("Mean = %v, want 2", m.Mean)
	}
	if math.Abs(m.Std-1) > 1e-12 {
		t.Errorf("Std = %v, want 1", m.Std)
	}
	wantCI := 1.96 / math.Sqrt(3)
	if math.Abs(m.CI-wantCI) > 1e-12 {
		t.Errorf("CI = %v, want %v", m.CI, wantCI)
	}
}

func TestMetricSystematicFloor(t *testing.T) {
	// Zero variance: the CI must still be sysErr*|mean|, not zero.
	m := NewMetric([]float64{4, 4, 4, 4}, 1.96, 0.02)
	if m.Std != 0 {
		t.Fatalf("Std = %v, want 0", m.Std)
	}
	if math.Abs(m.CI-0.08) > 1e-12 {
		t.Errorf("CI = %v, want 0.08 (systematic floor)", m.CI)
	}
	if !m.Contains(4.07) || m.Contains(4.1) {
		t.Errorf("Contains misbehaves around the floor: CI=%v", m.CI)
	}
}

func TestMetricQuadrature(t *testing.T) {
	// Both terms active: CI^2 = sampling^2 + systematic^2.
	per := []float64{1, 3}
	m := NewMetric(per, 2, 0.1)
	sampling := 2 * m.Std / math.Sqrt(2)
	systematic := 0.1 * 2
	want := math.Sqrt(sampling*sampling + systematic*systematic)
	if math.Abs(m.CI-want) > 1e-12 {
		t.Errorf("CI = %v, want %v", m.CI, want)
	}
}

func TestMetricRelErr(t *testing.T) {
	m := NewMetric([]float64{2, 2}, 1.96, 0.02)
	if got := m.RelErr(2.5); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("RelErr(2.5) = %v, want 0.2", got)
	}
	zero := NewMetric([]float64{0, 0}, 1.96, 0.02)
	if got := zero.RelErr(0); got != 0 {
		t.Errorf("RelErr(0) on zero metric = %v, want 0", got)
	}
	if got := m.RelErr(0); !math.IsInf(got, 1) {
		t.Errorf("RelErr(0) on nonzero metric = %v, want +Inf", got)
	}
}

func TestMetricEmpty(t *testing.T) {
	m := NewMetric(nil, 1.96, 0.02)
	if m.Mean != 0 || m.Std != 0 || m.CI != 0 {
		t.Errorf("empty metric not zero: %+v", m)
	}
}
