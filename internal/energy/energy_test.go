package energy

import (
	"math"
	"testing"

	"chopim/internal/dram"
)

func TestComputeComponents(t *testing.T) {
	c := Counts{
		Acts:       1000,
		HostBlocks: 10000,
		NDABlocks:  10000,
		FMAs:       1_000_000,
		BufAccess:  20000,
		PEs:        4,
		Seconds:    1e-3,
	}
	b := Compute(c)
	if got, want := b.ActivateJ, 1000*ActivateJ; math.Abs(got-want) > 1e-12 {
		t.Errorf("ActivateJ = %g, want %g", got, want)
	}
	bits := float64(dram.BlockBytes * 8)
	if got, want := b.HostIOJ, 10000*bits*HostBitJ; math.Abs(got-want)/want > 1e-9 {
		t.Errorf("HostIOJ = %g, want %g", got, want)
	}
	if got, want := b.NDAIOJ, 10000*bits*PEBitJ; math.Abs(got-want)/want > 1e-9 {
		t.Errorf("NDAIOJ = %g, want %g", got, want)
	}
	if got, want := b.LeakageJ, 2*BufferLeakW*4*1e-3; math.Abs(got-want)/want > 1e-9 {
		t.Errorf("LeakageJ = %g, want %g", got, want)
	}
	sum := b.ActivateJ + b.HostIOJ + b.NDAIOJ + b.ComputeJ + b.BufferJ + b.LeakageJ
	if math.Abs(sum-b.TotalJ)/sum > 1e-12 {
		t.Errorf("TotalJ = %g, sum = %g", b.TotalJ, sum)
	}
	if got, want := b.AvgPowerW, b.TotalJ/1e-3; math.Abs(got-want) > 1e-9 {
		t.Errorf("AvgPowerW = %g, want %g", got, want)
	}
}

// TestNDACheaperThanHost verifies the premise behind Takeaway 7: moving
// the same blocks over the NDA's internal path costs less energy than
// over the host channel.
func TestNDACheaperThanHost(t *testing.T) {
	host := Compute(Counts{HostBlocks: 1 << 20, Seconds: 1})
	ndas := Compute(Counts{NDABlocks: 1 << 20, Seconds: 1})
	if ndas.NDAIOJ >= host.HostIOJ {
		t.Errorf("NDA IO energy %g >= host IO energy %g", ndas.NDAIOJ, host.HostIOJ)
	}
}

func TestZeroSecondsNoPower(t *testing.T) {
	b := Compute(Counts{Acts: 10})
	if b.AvgPowerW != 0 {
		t.Error("power computed with zero duration")
	}
}

func TestFromCmdCounts(t *testing.T) {
	cc := dram.CmdCounts{ACT: 5, RD: 7, WR: 3, NDARD: 11, NDAWR: 2}
	c := FromCmdCounts(cc, 2.0, 4)
	if c.Acts != 5 || c.HostBlocks != 10 || c.NDABlocks != 13 || c.PEs != 4 || c.Seconds != 2.0 {
		t.Errorf("FromCmdCounts = %+v", c)
	}
	// FromMem on a fresh device reports all-zero counters.
	m := dram.New(dram.DefaultGeometry(), dram.DDR42400())
	if got := FromMem(m, 1.0, 4); got.Acts != 0 || got.HostBlocks != 0 || got.NDABlocks != 0 {
		t.Errorf("FromMem on fresh Mem = %+v", got)
	}
}
