package experiments

import (
	"chopim/internal/apps"
	"chopim/internal/nda"
	"chopim/internal/sim"
	"chopim/internal/workload"
)

// PolicyPoint labels one write-throttling configuration.
type PolicyPoint struct {
	Label string
	Res   Result
}

// Fig12Row holds every policy's result for one mix.
type Fig12Row struct {
	Mix    string
	Points []PolicyPoint
}

// Fig12 reproduces Figure 12: the write-intensive COPY under four NDA
// write-issue policies — stochastic 1/16, stochastic 1/4, next-rank
// prediction, and unthrottled issue-if-idle. Throttling trades NDA
// bandwidth for host IPC; next-rank prediction sits near the tuned
// stochastic point without tuning.
func Fig12(opt Options) ([]Fig12Row, error) { return figCached(opt, "fig12", fig12Rows) }

func fig12Rows(opt Options) ([]Fig12Row, error) {
	type policyCfg struct {
		label string
		pol   nda.Policy
		prob  float64
	}
	policies := []policyCfg{
		{"Stochastic_issue(1/16)", nda.Stochastic, 1.0 / 16},
		{"Stochastic_issue(1/4)", nda.Stochastic, 1.0 / 4},
		{"Predict_next_rank", nda.NextRank, 0},
		{"Issue_if_idle", nda.IssueIfIdle, 0},
	}
	perRankBytes := 2 << 20
	mixes := len(workload.Mixes)
	if opt.Quick {
		perRankBytes = 256 << 10
		mixes = 2
	}
	type point struct {
		mix int
		p   policyCfg
	}
	var points []point
	for mix := 0; mix < mixes; mix++ {
		for _, p := range policies {
			points = append(points, point{mix, p})
		}
	}
	results, err := sharded(opt, len(points), func(i int) (Result, error) {
		pt := points[i]
		cfg := sim.Default(pt.mix)
		cfg.NDA.Policy = pt.p.pol
		cfg.NDA.StochasticProb = pt.p.prob
		s, err := opt.newSystem(cfg)
		if err != nil {
			return Result{}, err
		}
		app, err := apps.NewMicroPlaced(s.RT, "copy", perRankBytes/4, ndartPrivate)
		if err != nil {
			return Result{}, err
		}
		return measureConcurrent(s, app.Iterate,
			opt.withTag("fig12-"+workload.MixName(pt.mix)+"-"+pt.p.label))
	})
	if err != nil {
		return nil, err
	}
	var rows []Fig12Row
	for mix := 0; mix < mixes; mix++ {
		row := Fig12Row{Mix: workload.MixName(mix)}
		for j, p := range policies {
			row.Points = append(row.Points, PolicyPoint{Label: p.label, Res: results[mix*len(policies)+j]})
		}
		rows = append(rows, row)
	}
	return rows, nil
}
