package mc

import "chopim/internal/addrmap"

// Router fans requests out to per-channel controllers by decoded channel
// index. It adapts the controllers to the cache.Backend interface, using
// a clock source for arrival timestamps.
type Router struct {
	ctrls  []*Controller
	mapper addrmap.Mapper
	now    func() int64
}

// NewRouter builds a router over the per-channel controllers.
func NewRouter(ctrls []*Controller, mapper addrmap.Mapper, now func() int64) *Router {
	return &Router{ctrls: ctrls, mapper: mapper, now: now}
}

// EnqueueRead implements cache.Backend. The routing decode is passed
// through to the controller so the address is decoded once per request.
func (r *Router) EnqueueRead(addr uint64, done func(int64)) bool {
	d := r.mapper.Decode(addr)
	return r.ctrls[d.Channel].EnqueueReadDecoded(addr, d, r.now(), done)
}

// EnqueueWrite implements cache.Backend.
func (r *Router) EnqueueWrite(addr uint64) bool {
	d := r.mapper.Decode(addr)
	r.ctrls[d.Channel].EnqueueWriteDecoded(addr, d, r.now())
	return true
}

// Controllers returns the underlying per-channel controllers.
func (r *Router) Controllers() []*Controller { return r.ctrls }
