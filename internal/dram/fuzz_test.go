package dram

import (
	"math/rand"
	"testing"
)

// TestRandomLegalSequencesKeepInvariants drives the device model with
// random command streams, issuing whatever CanIssue admits, and checks
// protocol invariants the scheduler relies on:
//
//   - data bursts on one rank's data path never overlap;
//   - a bank is never activated while open or accessed while closed;
//   - at most four ACTs land in any tFAW window per rank;
//   - command counters reconcile with issued commands.
func TestRandomLegalSequencesKeepInvariants(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		runRandomSequence(t, seed, 4000)
	}
}

func runRandomSequence(t *testing.T, seed int64, steps int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := Geometry{Channels: 1, Ranks: 2, BankGroups: 2, BanksPerGroup: 2, Rows: 64, Cols: 16}
	m := New(g, DDR42400())

	type burst struct{ start, end int64 }
	lastBurst := make(map[int]burst) // per rank
	var actTimes [][]int64           // per rank, issue cycles
	actTimes = make([][]int64, g.Ranks)
	var issued int64

	now := int64(0)
	for s := 0; s < steps; s++ {
		cmd := Command(rng.Intn(4))
		a := Addr{
			Rank:      rng.Intn(g.Ranks),
			BankGroup: rng.Intn(g.BankGroups),
			Bank:      rng.Intn(g.BanksPerGroup),
			Row:       rng.Intn(g.Rows),
			Col:       rng.Intn(g.Cols),
		}
		internal := rng.Intn(2) == 0
		// Column commands must target the open row to be legal; steer
		// half of them there to get decent coverage.
		if (cmd == CmdRD || cmd == CmdWR) && rng.Intn(2) == 0 {
			if row, open := m.OpenRow(a); open {
				a.Row = row
			}
		}
		if m.CanIssue(cmd, a, now, internal) {
			// Invariant: ACT only on closed banks; RD/WR only on the
			// open row (CanIssue admitted it, cross-check state).
			row, open := m.OpenRow(a)
			switch cmd {
			case CmdACT:
				if open {
					t.Fatalf("seed %d: ACT admitted on open bank at %d", seed, now)
				}
				actTimes[a.Rank] = append(actTimes[a.Rank], now)
			case CmdRD, CmdWR:
				if !open || row != a.Row {
					t.Fatalf("seed %d: column admitted on closed/mismatched row at %d", seed, now)
				}
			}
			m.Issue(cmd, a, now, internal)
			issued++
			if cmd == CmdRD || cmd == CmdWR {
				var start int64
				if cmd == CmdRD {
					start = now + int64(m.T.CL)
				} else {
					start = now + int64(m.T.CWL)
				}
				end := start + int64(m.T.BL)
				if lb, ok := lastBurst[a.Rank]; ok && start < lb.end && lb.start < end {
					t.Fatalf("seed %d: overlapping data bursts on rank %d: [%d,%d) vs [%d,%d)",
						seed, a.Rank, lb.start, lb.end, start, end)
				}
				if b, ok := lastBurst[a.Rank]; !ok || b.end < end {
					lastBurst[a.Rank] = burst{start, end}
				}
			}
		}
		now += int64(rng.Intn(3))
	}

	for r, times := range actTimes {
		for i := 4; i < len(times); i++ {
			if times[i]-times[i-4] < int64(m.T.FAW) {
				t.Fatalf("seed %d: rank %d saw 5 ACTs within tFAW (%d..%d)",
					seed, r, times[i-4], times[i])
			}
		}
	}
	if got := m.NumACT + m.NumPRE + m.NumRD + m.NumWR + m.NumNDARD + m.NumNDAWR; got != issued {
		t.Fatalf("seed %d: counter total %d != issued %d", seed, got, issued)
	}
}

// TestNDAAndHostInterleavingFairness issues host and NDA columns to the
// same open row alternately: both must make progress and the rank-level
// spacing must hold between mixed-source commands.
func TestNDAAndHostInterleavingFairness(t *testing.T) {
	m := New(DefaultGeometry(), DDR42400())
	a := Addr{Row: 5}
	m.Issue(CmdACT, a, 0, false)
	now := int64(m.T.RCD)
	var host, ndas int
	var last int64 = -1 << 40
	for now < 3000 {
		internal := (host+ndas)%2 == 1
		if m.CanIssue(CmdRD, a, now, internal) {
			m.Issue(CmdRD, a, now, internal)
			if last > -1<<39 && now-last < int64(m.T.CCDL) {
				t.Fatalf("mixed-source columns %d cycles apart, tCCD_L=%d", now-last, m.T.CCDL)
			}
			last = now
			if internal {
				ndas++
			} else {
				host++
			}
		}
		now++
	}
	if host == 0 || ndas == 0 {
		t.Fatalf("progress: host=%d nda=%d", host, ndas)
	}
}
