package sim

import (
	"math/rand"
	"runtime"
	"testing"

	"chopim/internal/ndart"
)

// parallelWorkloads returns the workload shapes the domain-executor
// equivalence tests run: the standard 2-channel mixed golden and a
// 4-channel variant that gives a 4-worker pool one domain per worker.
func parallelWorkloads() []ffWorkload {
	ws := ffWorkloads()
	var out []ffWorkload
	for _, w := range ws {
		if w.name == "mixed-mix1-dot" || w.name == "mixed-mix3-copy-shared" {
			out = append(out, w)
		}
	}
	wide := ffWorkload{
		name: "mixed-mix1-dot-4ch",
		cfg: func() Config {
			c := Default(1)
			c.Geom.Channels = 4
			return c
		},
	}
	for _, w := range ws {
		if w.name == "mixed-mix1-dot" {
			wide.app = w.app
		}
	}
	out = append(out, wide)
	return out
}

// driveWorkers is drive (fastforward_test.go) with a SimWorkers setting
// and executor cleanup. On a single-P runtime the executor parks its
// pool and runs rounds inline (exec.go), so the tests raise GOMAXPROCS
// for the system's lifetime to force the full cross-goroutine claim
// machinery — that is what -race must see, even on 1-CPU machines.
func driveWorkers(t *testing.T, w ffWorkload, workers int, segments int, segCycles int64) []string {
	t.Helper()
	if old := runtime.GOMAXPROCS(0); workers > 1 && old < workers {
		runtime.GOMAXPROCS(workers)
		defer runtime.GOMAXPROCS(old)
	}
	cfg := w.cfg()
	cfg.SimWorkers = workers
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var it func() (*ndart.Handle, error)
	if w.app != nil {
		if it, err = w.app(s); err != nil {
			t.Fatal(err)
		}
	}
	var h *ndart.Handle
	relaunch := func() {
		if it == nil {
			return
		}
		if h == nil || h.Done() {
			if h, err = it(); err != nil {
				t.Fatal(err)
			}
		}
	}
	relaunch()
	var snaps []string
	for seg := 0; seg < segments; seg++ {
		end := s.Now() + segCycles
		for s.Now() < end {
			s.StepFast(end)
			relaunch()
		}
		snaps = append(snaps, snapshot(s))
	}
	return snaps
}

// TestParallelDomainsMatchSerial is the domain-determinism contract: a
// mixed host+NDA run on the channel-domain executor produces counters
// bit-identical to the serial fast path for every worker count. Under
// -race this also proves the memory phase free of data races: domains
// share no mutable state mid-phase, and every cross-channel effect is
// mailboxed to the serial commit. Budgets are short because the CI race
// step runs this on every push.
func TestParallelDomainsMatchSerial(t *testing.T) {
	for _, w := range parallelWorkloads() {
		t.Run(w.name, func(t *testing.T) {
			serial := driveWorkers(t, w, 1, 4, 5_000)
			for _, workers := range []int{2, 4} {
				par := driveWorkers(t, w, workers, 4, 5_000)
				for i := range serial {
					if serial[i] != par[i] {
						t.Fatalf("workers=%d diverged at segment %d:\n serial: %s\n par:    %s",
							workers, i, serial[i], par[i])
					}
				}
			}
		})
	}
}

// TestParallelDomainsMatchReference cross-checks the executor against
// the restructured reference Tick path (the oracle): Run and
// RunFast(workers=4) must agree at every segment boundary.
func TestParallelDomainsMatchReference(t *testing.T) {
	w := parallelWorkloads()[0]
	slow := drive(t, w, false, 4, 5_000)
	par := driveWorkers(t, w, 4, 4, 5_000)
	for i := range slow {
		if slow[i] != par[i] {
			t.Fatalf("segment %d diverged:\n reference: %s\n workers=4: %s", i, slow[i], par[i])
		}
	}
}

// TestDomainOrderFuzz randomizes the serial memory-phase dispatch order
// (the mailbox-ordering argument's other half): since domains are
// mutually independent and mailboxes drain in canonical order at
// commit, any permutation of domain execution within the phase must be
// bit-identical to the canonical ascending order.
func TestDomainOrderFuzz(t *testing.T) {
	for _, w := range parallelWorkloads() {
		t.Run(w.name, func(t *testing.T) {
			canonical := driveWorkers(t, w, 1, 4, 5_000)

			cfg := w.cfg()
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			var it func() (*ndart.Handle, error)
			if w.app != nil {
				if it, err = w.app(s); err != nil {
					t.Fatal(err)
				}
			}
			var h *ndart.Handle
			relaunch := func() {
				if it == nil {
					return
				}
				if h == nil || h.Done() {
					if h, err = it(); err != nil {
						t.Fatal(err)
					}
				}
			}
			relaunch()
			rng := rand.New(rand.NewSource(0xD0A7))
			s.domOrder = make([]int, len(s.doms))
			for seg := 0; seg < 4; seg++ {
				end := s.Now() + 5_000
				for s.Now() < end {
					// Fresh permutation per executed step.
					for i := range s.domOrder {
						s.domOrder[i] = i
					}
					rng.Shuffle(len(s.domOrder), func(i, j int) {
						s.domOrder[i], s.domOrder[j] = s.domOrder[j], s.domOrder[i]
					})
					s.StepFast(end)
					relaunch()
				}
				if got := snapshot(s); got != canonical[seg] {
					t.Fatalf("segment %d diverged under permuted domain order:\n canonical: %s\n permuted:  %s",
						seg, canonical[seg], got)
				}
			}
		})
	}
}
