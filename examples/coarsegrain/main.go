// Coarse-grain NDA operations (Fig 10): sweep the vector width N (cache
// blocks per NDA instruction) and watch launch-packet contention on the
// host channel starve both sides at fine granularity — the motivation
// for Chopim's coarse-grain ops and the colored data layout that makes
// them possible.
package main

import (
	"fmt"
	"log"

	"chopim"
	"chopim/internal/apps"
)

func main() {
	fmt.Println("blocks/instr  host IPC  NDA idle-BW utilization  launches")
	for _, n := range []int{1, 16, 256, 4096} {
		cfg := chopim.DefaultConfig(1)
		cfg.MaxBlocksPerInstr = n
		sys, err := chopim.NewSystem(cfg)
		if err != nil {
			log.Fatal(err)
		}
		app, err := apps.NewMicroPlaced(sys.RT, "nrm2", 4096*64/4, chopim.Private)
		if err != nil {
			log.Fatal(err)
		}
		h, err := app.Iterate()
		if err != nil {
			log.Fatal(err)
		}
		warmEnd := sys.Now() + 100_000
		for sys.Now() < warmEnd {
			sys.StepFast(warmEnd)
			if h.Done() {
				if h, err = app.Iterate(); err != nil {
					log.Fatal(err)
				}
			}
		}
		sys.BeginMeasurement()
		busy0, blocks0 := sys.HostBusyCycles(), sys.NDABlocks()
		launches0 := sys.RT.Launches
		measEnd := sys.Now() + 200_000
		for sys.Now() < measEnd {
			sys.StepFast(measEnd)
			if h.Done() {
				if h, err = app.Iterate(); err != nil {
					log.Fatal(err)
				}
			}
		}
		util := sys.NDAUtilization(sys.HostBusyCycles()-busy0, sys.NDABlocks()-blocks0)
		fmt.Printf("%12d  %8.2f  %23.2f  %8d\n", n, sys.HostIPC(), util, sys.RT.Launches-launches0)
	}
}
