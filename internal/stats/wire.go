// On-disk codec for IdleHist: the histogram rides inside controller
// checkpoints, so it round-trips through JSON via an exported mirror of
// its unexported accumulator state.
package stats

import "encoding/json"

// idleHistWire mirrors IdleHist's unexported fields for serialization.
type idleHistWire struct {
	Cycles  [NumIdleBuckets]int64
	Start   int64
	BusyEnd int64
	Started bool
}

// MarshalJSON encodes the histogram's full accumulator state.
func (h IdleHist) MarshalJSON() ([]byte, error) {
	return json.Marshal(idleHistWire{
		Cycles: h.cycles, Start: h.start, BusyEnd: h.busyEnd, Started: h.started,
	})
}

// UnmarshalJSON restores the accumulator state written by MarshalJSON.
func (h *IdleHist) UnmarshalJSON(b []byte) error {
	var w idleHistWire
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	h.cycles, h.start, h.busyEnd, h.started = w.Cycles, w.Start, w.BusyEnd, w.Started
	return nil
}
