// On-disk codec for OSState. Free-list slice order is behavior (Alloc
// pops the last element), so the wire form preserves each order's block
// list verbatim; encoding/json writes map keys sorted, which keeps the
// encoded bytes deterministic for a given state.
package osmem

import "encoding/json"

type allocWire struct {
	Free      map[uint][]uint64
	Allocated map[uint64]uint
}

type osWire struct {
	Host   allocWire
	Shared allocWire
}

func (a *allocState) wire() allocWire {
	return allocWire{Free: a.free, Allocated: a.allocated}
}

func (a *allocState) fromWire(w allocWire) {
	a.free = w.Free
	if a.free == nil {
		a.free = map[uint][]uint64{}
	}
	a.allocated = w.Allocated
	if a.allocated == nil {
		a.allocated = map[uint64]uint{}
	}
}

// MarshalJSON encodes the snapshot for the durable checkpoint file.
func (st *OSState) MarshalJSON() ([]byte, error) {
	return json.Marshal(osWire{Host: st.host.wire(), Shared: st.shared.wire()})
}

// UnmarshalJSON rebuilds the snapshot written by MarshalJSON.
func (st *OSState) UnmarshalJSON(b []byte) error {
	var w osWire
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	st.host.fromWire(w.Host)
	st.shared.fromWire(w.Shared)
	return nil
}
