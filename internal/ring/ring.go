// Package ring provides a growable FIFO ring buffer. The simulator's
// hot loops (controller write-overflow, NDA write buffer) use it so
// steady-state enqueue/dequeue never allocates or re-slices: capacity
// grows geometrically on demand and is then reused forever.
package ring

// Ring is a FIFO of T. The zero value is ready to use.
type Ring[T any] struct {
	buf  []T
	head int
	n    int
}

// Len returns the number of queued elements.
func (r *Ring[T]) Len() int { return r.n }

// Reserve grows the backing array to hold at least n elements, so a
// caller that knows its occupancy bound (or a generous high-water
// estimate) can move the growth allocations to construction time.
func (r *Ring[T]) Reserve(n int) {
	if n <= len(r.buf) {
		return
	}
	grown := make([]T, n)
	for i := 0; i < r.n; i++ {
		grown[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf, r.head = grown, 0
}

// Push appends v, growing the backing array when full.
func (r *Ring[T]) Push(v T) {
	if r.n == len(r.buf) {
		r.Reserve(max(64, len(r.buf)*2))
	}
	r.buf[(r.head+r.n)%len(r.buf)] = v
	r.n++
}

// Front returns the oldest element; it panics on an empty ring.
func (r *Ring[T]) Front() T {
	if r.n == 0 {
		panic("ring: Front on empty ring")
	}
	return r.buf[r.head]
}

// At returns the i-th queued element (0 = oldest) without removing it;
// it panics when i is out of range. Snapshot code walks the ring with
// it in FIFO order.
func (r *Ring[T]) At(i int) T {
	if i < 0 || i >= r.n {
		panic("ring: At index out of range")
	}
	return r.buf[(r.head+i)%len(r.buf)]
}

// Pop removes and returns the oldest element, zeroing its slot so the
// ring never retains references past dequeue.
func (r *Ring[T]) Pop() T {
	v := r.Front()
	var zero T
	r.buf[r.head] = zero
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return v
}
