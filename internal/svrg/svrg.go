// Package svrg implements the paper's Section IV case study: 10-class
// logistic regression trained with stochastic variance-reduced gradient
// descent, in three execution modes — host-only, NDA-accelerated
// (serialized summarization), and the paper's delayed-update variant that
// runs summarization on the NDAs concurrently with the host's inner loop
// using one-epoch-stale correction terms.
//
// The optimization math is real (losses are actually minimized); the
// execution times attached to each phase come from the performance
// simulation (see internal/experiments), so convergence-versus-time
// curves reflect the simulated machine.
package svrg

import (
	"math"
	"math/rand"
)

// Dataset is a dense multi-class classification problem.
type Dataset struct {
	N, D, K int
	X       []float32 // N x D row-major
	Y       []int     // labels in [0, K)
}

// Synthetic generates a deterministic Gaussian-mixture dataset standing
// in for CIFAR-10 (see DESIGN.md substitutions).
func Synthetic(n, d, k int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := &Dataset{N: n, D: d, K: k, X: make([]float32, n*d), Y: make([]int, n)}
	// Class centers.
	centers := make([]float64, k*d)
	for i := range centers {
		centers[i] = rng.NormFloat64()
	}
	for i := 0; i < n; i++ {
		c := i % k
		ds.Y[i] = c
		for j := 0; j < d; j++ {
			ds.X[i*d+j] = float32(centers[c*d+j] + 2.0*rng.NormFloat64())
		}
	}
	// Normalize so E||x||^2 ~= 1: keeps a single learning-rate range
	// stable across dataset scales (CIFAR pipelines normalize too).
	var sum float64
	for _, v := range ds.X {
		sum += float64(v) * float64(v)
	}
	scale := math.Sqrt(float64(n) / sum)
	for i := range ds.X {
		ds.X[i] = float32(float64(ds.X[i]) * scale)
	}
	return ds
}

// Model is the softmax-regression parameter matrix (D x K) with L2
// regularization lambda.
type Model struct {
	D, K   int
	W      []float64 // D x K row-major
	Lambda float64
}

// NewModel builds a zero-initialized model.
func NewModel(d, k int, lambda float64) *Model {
	return &Model{D: d, K: k, W: make([]float64, d*k), Lambda: lambda}
}

// Clone deep-copies the model parameters.
func (m *Model) Clone() *Model {
	w := make([]float64, len(m.W))
	copy(w, m.W)
	return &Model{D: m.D, K: m.K, W: w, Lambda: m.Lambda}
}

// logits computes x*W into out (length K).
func (m *Model) logits(x []float32, out []float64) {
	for c := 0; c < m.K; c++ {
		out[c] = 0
	}
	for j := 0; j < m.D; j++ {
		xj := float64(x[j])
		if xj == 0 {
			continue
		}
		row := m.W[j*m.K : j*m.K+m.K]
		for c := 0; c < m.K; c++ {
			out[c] += xj * row[c]
		}
	}
}

// softmax converts logits to probabilities in place, returning logsumexp.
func softmax(z []float64) float64 {
	max := z[0]
	for _, v := range z[1:] {
		if v > max {
			max = v
		}
	}
	var sum float64
	for i, v := range z {
		e := math.Exp(v - max)
		z[i] = e
		sum += e
	}
	for i := range z {
		z[i] /= sum
	}
	return max + math.Log(sum)
}

// Loss returns the regularized mean cross-entropy over the dataset.
func (m *Model) Loss(ds *Dataset) float64 {
	z := make([]float64, m.K)
	var total float64
	for i := 0; i < ds.N; i++ {
		x := ds.X[i*m.D : (i+1)*m.D]
		m.logits(x, z)
		softmax(z)
		p := z[ds.Y[i]]
		if p < 1e-300 {
			p = 1e-300
		}
		total += -math.Log(p)
	}
	var reg float64
	for _, w := range m.W {
		reg += w * w
	}
	return total/float64(ds.N) + 0.5*m.Lambda*reg
}

// FullGradient computes the exact regularized gradient at the model (the
// summarization task the NDAs accelerate).
func (m *Model) FullGradient(ds *Dataset) []float64 {
	g := make([]float64, m.D*m.K)
	z := make([]float64, m.K)
	for i := 0; i < ds.N; i++ {
		x := ds.X[i*m.D : (i+1)*m.D]
		m.logits(x, z)
		softmax(z)
		z[ds.Y[i]] -= 1
		for j := 0; j < m.D; j++ {
			xj := float64(x[j])
			if xj == 0 {
				continue
			}
			row := g[j*m.K : j*m.K+m.K]
			for c := 0; c < m.K; c++ {
				row[c] += xj * z[c]
			}
		}
	}
	inv := 1 / float64(ds.N)
	for i := range g {
		g[i] = g[i]*inv + m.Lambda*m.W[i]
	}
	return g
}

// sampleGradInto writes sample i's regularized gradient contribution
// into buf (D*K), reusing z for probabilities.
func (m *Model) sampleGradInto(ds *Dataset, i int, z, buf []float64) {
	x := ds.X[i*m.D : (i+1)*m.D]
	m.logits(x, z)
	softmax(z)
	z[ds.Y[i]] -= 1
	for j := 0; j < m.D; j++ {
		xj := float64(x[j])
		row := buf[j*m.K : j*m.K+m.K]
		for c := 0; c < m.K; c++ {
			row[c] = xj * z[c]
		}
	}
}

// Timing carries the simulated execution times (seconds) of each SVRG
// phase, measured by the performance simulation.
type Timing struct {
	SummarizeNDA  float64 // full-gradient pass on the NDAs
	SummarizeHost float64 // full-gradient pass on the host
	InnerIter     float64 // one host inner-loop iteration
	Exchange      float64 // s/g exchange + fence (delayed update)
}

// Mode selects the execution strategy.
type Mode int

// Execution modes of Figure 15.
const (
	HostOnly Mode = iota
	Accelerated
	DelayedUpdate
)

// String returns the figure legend prefix.
func (m Mode) String() string {
	switch m {
	case HostOnly:
		return "HO"
	case Accelerated:
		return "ACC"
	case DelayedUpdate:
		return "DelayedUpdate"
	}
	return "?"
}

// Point is one convergence sample.
type Point struct {
	Seconds float64
	Loss    float64
}

// RunConfig controls one training run.
type RunConfig struct {
	Mode     Mode
	Epoch    int     // inner iterations per outer loop (HostOnly/Accelerated)
	LR       float64 // learning rate
	Momentum float64
	Outers   int // outer-loop iterations to run
	Seed     int64
	Timing   Timing
}

// Run trains and returns the convergence trajectory (loss after each
// outer iteration against cumulative simulated time).
func Run(ds *Dataset, lambda float64, cfg RunConfig) []Point {
	m := NewModel(ds.D, ds.K, lambda)
	rng := rand.New(rand.NewSource(cfg.Seed))
	dk := ds.D * ds.K

	snap := m.Clone()          // s: snapshot the correction is computed at
	g := snap.FullGradient(ds) // g: correction term for snap
	prevSnap := snap           // delayed update: one epoch behind
	prevG := g
	vel := make([]float64, dk) // momentum buffer

	z := make([]float64, ds.K)
	gw := make([]float64, dk)
	gs := make([]float64, dk)

	var now float64
	// Initial summarization cost.
	switch cfg.Mode {
	case HostOnly:
		now += cfg.Timing.SummarizeHost
	default:
		now += cfg.Timing.SummarizeNDA
	}
	pts := []Point{{now, m.Loss(ds)}}

	for outer := 0; outer < cfg.Outers; outer++ {
		epoch := cfg.Epoch
		useSnap, useG := snap, g
		if cfg.Mode == DelayedUpdate {
			// Summarization of `snap` runs on the NDAs concurrently;
			// the host iterates with the stale (prevSnap, prevG) for
			// as long as the summarization takes.
			epoch = int(cfg.Timing.SummarizeNDA/cfg.Timing.InnerIter) + 1
			useSnap, useG = prevSnap, prevG
		}
		for it := 0; it < epoch; it++ {
			i := rng.Intn(ds.N)
			m.sampleGradInto(ds, i, z, gw)
			useSnap.sampleGradInto(ds, i, z, gs)
			for j := 0; j < dk; j++ {
				grad := gw[j] - gs[j] + useG[j] + m.Lambda*(m.W[j]-useSnap.W[j])
				vel[j] = cfg.Momentum*vel[j] - cfg.LR*grad
				m.W[j] += vel[j]
			}
		}

		// Outer boundary: take a new snapshot and its correction term.
		switch cfg.Mode {
		case HostOnly:
			now += float64(epoch)*cfg.Timing.InnerIter + cfg.Timing.SummarizeHost
			snap = m.Clone()
			g = snap.FullGradient(ds)
		case Accelerated:
			// Serialized: host idles while NDAs summarize.
			now += float64(epoch)*cfg.Timing.InnerIter + cfg.Timing.SummarizeNDA
			snap = m.Clone()
			g = snap.FullGradient(ds)
		case DelayedUpdate:
			// Parallel: the epoch's wall time is the summarization
			// time (inner loop fully overlapped) plus the exchange.
			now += cfg.Timing.SummarizeNDA + cfg.Timing.Exchange
			prevSnap, prevG = snap, snap.FullGradient(ds)
			snap = m.Clone()
			g = prevG // not used until promoted
		}
		pts = append(pts, Point{now, m.Loss(ds)})
	}
	return pts
}

// TimeToReach returns the first time at which the trajectory's loss gap
// to optimum drops below eps, or ok=false.
func TimeToReach(pts []Point, optimum, eps float64) (float64, bool) {
	for _, p := range pts {
		if p.Loss-optimum <= eps {
			return p.Seconds, true
		}
	}
	return 0, false
}

// Optimum estimates the minimal loss by running a long, small-step
// host-only configuration.
func Optimum(ds *Dataset, lambda float64, seed int64) float64 {
	pts := Run(ds, lambda, RunConfig{
		Mode: HostOnly, Epoch: 2 * ds.N, LR: 0.05, Momentum: 0.9,
		Outers: 40, Seed: seed,
		Timing: Timing{SummarizeHost: 1, InnerIter: 1e-6},
	})
	min := math.Inf(1)
	for _, p := range pts {
		if p.Loss < min {
			min = p.Loss
		}
	}
	return min
}
