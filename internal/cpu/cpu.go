// Package cpu models the host processor: simplified out-of-order cores
// with a reorder buffer, load/store queue, and configurable issue/retire
// width (Table II: 4 GHz, fetch/issue width 8, LSQ 64, ROB 224).
//
// Cores are trace-driven. The model captures what the paper's experiments
// depend on: memory-level parallelism bounded by ROB/LSQ/MSHR capacity,
// IPC sensitivity to memory latency and bandwidth, and bursty rank-level
// access patterns. It does not model x86 semantics.
package cpu

import "chopim/internal/cache"

// Instr is one trace instruction. Non-memory instructions execute in one
// cycle; memory instructions access the cache hierarchy. Serialize marks
// the head of a dependency chain: it cannot issue in the same cycle as
// earlier instructions, bounding compute ILP like real dependence chains
// do.
type Instr struct {
	Mem       bool
	Write     bool
	Serialize bool
	Addr      uint64
}

// TraceSource supplies an (endless) instruction stream.
type TraceSource interface {
	Next() Instr
}

// Config sizes one core.
type Config struct {
	Width   int // issue and retire width
	ROBSize int
	LSQSize int
}

// DefaultConfig returns the paper's core parameters.
func DefaultConfig() Config { return Config{Width: 8, ROBSize: 224, LSQSize: 64} }

// robEntry tracks one in-flight instruction.
type robEntry struct {
	doneAt  int64 // CPU cycle at which the instruction may retire
	pending bool  // completion arrives via callback
	isLoad  bool
	isStore bool
}

// Core is one out-of-order core.
type Core struct {
	ID    int
	cfg   Config
	trace TraceSource
	hier  *cache.Hierarchy

	rob      []robEntry
	doneFns  []func(cpuDone int64) // per-ROB-slot completion callbacks
	head, n  int
	stores   int // stores in flight (LSQ occupancy, with loads)
	loads    int
	stalled  Instr
	hasStall bool

	Retired int64
	Cycles  int64
}

// NewCore builds a core over the shared hierarchy. Completion callbacks
// are created once per ROB slot (each captures only its slot index), so
// issuing a memory instruction allocates nothing; a slot cannot be
// reused while its access is outstanding (a pending entry blocks retire).
func NewCore(id int, cfg Config, trace TraceSource, hier *cache.Hierarchy) *Core {
	c := &Core{ID: id, cfg: cfg, trace: trace, hier: hier, rob: make([]robEntry, cfg.ROBSize)}
	c.doneFns = make([]func(int64), cfg.ROBSize)
	for i := range c.doneFns {
		e := &c.rob[i]
		c.doneFns[i] = func(cpuDone int64) {
			e.pending = false
			e.doneAt = cpuDone
		}
	}
	return c
}

// IPC returns retired instructions per CPU cycle so far.
func (c *Core) IPC() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.Retired) / float64(c.Cycles)
}

// ResetStats clears retirement counters (end of warm-up).
func (c *Core) ResetStats() { c.Retired, c.Cycles = 0, 0 }

// NextEvent returns the earliest CPU cycle >= now at which the core can
// change state. Trace-driven cores always have an instruction to retire
// or issue, and even a structurally-stalled core re-probes the cache
// hierarchy every cycle (updating replacement state), so a core is
// never skippable: the next event is always the current cycle.
func (c *Core) NextEvent(now int64) int64 { return now }

// Tick advances the core by one CPU cycle.
func (c *Core) Tick(now int64) {
	c.Cycles++
	c.retire(now)
	c.issue(now)
}

func (c *Core) retire(now int64) {
	for retired := 0; retired < c.cfg.Width && c.n > 0; retired++ {
		e := &c.rob[c.head]
		if e.pending || e.doneAt > now {
			return
		}
		if e.isLoad {
			c.loads--
		}
		if e.isStore {
			c.stores--
		}
		c.head = (c.head + 1) % len(c.rob)
		c.n--
		c.Retired++
	}
}

func (c *Core) issue(now int64) {
	for issued := 0; issued < c.cfg.Width && c.n < len(c.rob); issued++ {
		var in Instr
		if c.hasStall {
			in = c.stalled
		} else {
			in = c.trace.Next()
		}
		if in.Serialize && issued > 0 {
			// Dependency chain head: wait for the next cycle.
			c.stalled = in
			c.hasStall = true
			return
		}
		if !c.tryIssue(in, now) {
			c.stalled = in
			c.hasStall = true
			return
		}
		c.hasStall = false
	}
}

// tryIssue places one instruction into the ROB, accessing memory if
// needed. It returns false if a structural hazard requires a retry.
func (c *Core) tryIssue(in Instr, now int64) bool {
	slot := (c.head + c.n) % len(c.rob)
	e := &c.rob[slot]
	*e = robEntry{}

	if !in.Mem {
		e.doneAt = now + 1
		c.n++
		return true
	}
	if c.loads+c.stores >= c.cfg.LSQSize {
		return false
	}
	res, lat := c.hier.Access(c.ID, in.Addr, in.Write, c.doneFns[slot])
	switch res {
	case cache.Stall:
		return false
	case cache.Hit:
		e.doneAt = now + lat
	case cache.Queued:
		e.pending = true
	}
	if in.Write {
		e.isStore = true
		c.stores++
	} else {
		e.isLoad = true
		c.loads++
	}
	c.n++
	return true
}
