package cache

import (
	"math/rand"
	"testing"
)

// TestPendingTableMatchesMap churns the fixed-capacity table against a
// reference map through bounded-occupancy insert/delete/lookup traffic
// shaped like the LLC pending set (sequential-ish block keys, including
// block 0), checking every lookup and the length on every step.
func TestPendingTableMatchesMap(t *testing.T) {
	const bound = 48
	pt := newPendingTable(bound)
	ref := make(map[uint64]*mshr)
	rng := rand.New(rand.NewSource(1))
	var live []uint64
	for step := 0; step < 200_000; step++ {
		b := uint64(rng.Intn(512)) // dense keys: heavy collisions
		if rng.Intn(4) < 1 {
			b = uint64(rng.Intn(1 << 30)) // occasionally far away
		}
		switch {
		case len(ref) < bound && rng.Intn(2) == 0:
			if ref[b] == nil {
				m := &mshr{block: b}
				ref[b] = m
				pt.put(b, m)
				live = append(live, b)
			}
		case len(live) > 0 && rng.Intn(2) == 0:
			i := rng.Intn(len(live))
			k := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			delete(ref, k)
			pt.del(k)
		default:
			if got, want := pt.get(b), ref[b]; got != want {
				t.Fatalf("step %d: get(%d) = %p, want %p", step, b, got, want)
			}
		}
		if pt.len() != len(ref) {
			t.Fatalf("step %d: len = %d, want %d", step, pt.len(), len(ref))
		}
	}
	for k, want := range ref {
		if got := pt.get(k); got != want {
			t.Fatalf("final: get(%d) = %p, want %p", k, got, want)
		}
	}
}
