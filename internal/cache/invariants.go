package cache

import "fmt"

// Opt-in conservation checks behind sim's Config.CheckInvariants.
// Cold-path only: runs at commit barriers when armed, never during
// normal access processing, so scratch allocation is fine.

// Validate rejects hierarchy configurations the construction path
// cannot run with. User-reachable (sweep points may carry cache
// geometry), so errors, not panics.
func (cfg HierarchyConfig) Validate() error {
	if cfg.Cores <= 0 {
		return fmt.Errorf("cache: hierarchy needs at least one core (Cores=%d)", cfg.Cores)
	}
	if cfg.PrefetchDegree < 0 {
		return fmt.Errorf("cache: PrefetchDegree %d must be >= 0", cfg.PrefetchDegree)
	}
	for _, lvl := range []struct {
		name string
		c    Config
	}{{"L1", cfg.L1}, {"L2", cfg.L2}, {"LLC", cfg.LLC}} {
		if err := lvl.c.Validate(); err != nil {
			return fmt.Errorf("cache: %s: %w", lvl.name, err)
		}
	}
	return nil
}

// PendingMisses returns the number of LLC misses currently in flight
// (occupied MSHRs).
func (h *Hierarchy) PendingMisses() int { return h.pending.len() }

// CheckInvariants validates MSHR conservation across the hierarchy: the
// pending table's structure (probe chains intact, occupancy matching
// its counter), every MSHR filed under its own block, occupancy within
// the LLC MSHR bound, and the per-core L1 pending counters equal to the
// per-core waiter tallies across all in-flight misses (every waiter
// holds exactly one l1Pending slot). Returns the first violation, nil
// when consistent.
func (h *Hierarchy) CheckInvariants() error {
	if err := h.pending.check(); err != nil {
		return err
	}
	if n := h.pending.len(); n > h.cfg.LLC.MSHRs {
		return fmt.Errorf("cache: %d MSHRs in flight exceeds LLC bound %d", n, h.cfg.LLC.MSHRs)
	}
	perCore := make([]int, h.cfg.Cores)
	var walkErr error
	h.pending.each(func(block uint64, m *mshr) bool {
		if m.block != block {
			walkErr = fmt.Errorf("cache: MSHR for block %#x filed under table key %#x", m.block, block)
			return false
		}
		if len(m.waiters) > h.maxWaiters {
			walkErr = fmt.Errorf("cache: MSHR for block %#x holds %d waiters, bound is %d", block, len(m.waiters), h.maxWaiters)
			return false
		}
		for _, w := range m.waiters {
			if w.core < 0 || w.core >= h.cfg.Cores {
				walkErr = fmt.Errorf("cache: MSHR for block %#x holds waiter for core %d of %d", block, w.core, h.cfg.Cores)
				return false
			}
			perCore[w.core]++
		}
		return true
	})
	if walkErr != nil {
		return walkErr
	}
	for core, n := range perCore {
		if h.l1Pending[core] != n {
			return fmt.Errorf("cache: core %d l1Pending=%d but %d waiters are in flight", core, h.l1Pending[core], n)
		}
	}
	for core, n := range h.l1Pending {
		if n < 0 || n > h.cfg.L1.MSHRs {
			return fmt.Errorf("cache: core %d l1Pending=%d outside [0,%d]", core, n, h.cfg.L1.MSHRs)
		}
	}
	return nil
}

// each visits every live entry until fn returns false.
func (t *pendingTable) each(fn func(block uint64, m *mshr) bool) {
	for i, m := range t.vals {
		if m == nil {
			continue
		}
		if !fn(t.keys[i], m) {
			return
		}
	}
}

// check validates the table's open-addressing structure: the occupancy
// counter against the live slots, and every resident's probe chain —
// home slot through resident slot — free of empty gaps (the property
// backward-shift deletion maintains and get() relies on to terminate).
func (t *pendingTable) check() error {
	live := 0
	for i := range t.vals {
		if t.vals[i] == nil {
			continue
		}
		live++
		for j := t.home(t.keys[i]); j != uint64(i); j = (j + 1) & t.mask {
			if t.vals[j] == nil {
				return fmt.Errorf("cache: pending table: block %#x at slot %d unreachable (empty slot %d on its probe chain)",
					t.keys[i], i, j)
			}
		}
	}
	if live != t.n {
		return fmt.Errorf("cache: pending table holds %d entries, counter says %d", live, t.n)
	}
	return nil
}
