package mc

import (
	"fmt"
	"math/rand"
	"testing"

	"chopim/internal/addrmap"
	"chopim/internal/dram"
)

// ctrlState reduces a controller (and its device) to the durable
// observable scheduling state compared cycle by cycle. HostIssuedRank is
// deliberately excluded: it is per-cycle transient state, valid only for
// the cycle just ticked (the A/B comparison checks it separately).
func ctrlState(c *Controller, mem *dram.Mem) string {
	rdQ, wrQ := c.QueueOccupancy()
	oldRank, oldOK := c.OldestReadRank()
	return fmt.Sprintf("rd=%d wr=%d acts=%d pres=%d lat=%d drains=%d ref=%d q=%d/%d old=%d/%v "+
		"ACT=%d PRE=%d RD=%d WR=%d",
		c.ReadsIssued, c.WritesIssued, c.ActsIssued, c.PresIssued, c.ReadLatencySum,
		c.Drains, c.Refreshes, rdQ, wrQ, oldRank, oldOK,
		mem.Counts().ACT, mem.Counts().PRE, mem.Counts().RD, mem.Counts().WR)
}

// TestBucketedSchedulerMatchesReference drives the bucketed production
// scheduler and the original full-rescan oracle (SetReferenceScheduler)
// from identical random request streams on identical device models, and
// asserts identical issue traces: every counter, queue occupancy, the
// per-cycle issued rank, every read's completion cycle, and the NDA
// coordination hooks (HasDemandFor / HasAnyDemandFor) over all banks,
// cycle by cycle.
func TestBucketedSchedulerMatchesReference(t *testing.T) {
	for _, tc := range []struct {
		name string
		refi int
	}{
		{"no-refresh", 0},
		{"with-refresh", 2400},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := dram.DefaultGeometry()
			tm := dram.DDR42400()
			if tc.refi > 0 {
				tm.REFI = tc.refi
				tm.RFC = 420
			}
			mapper := addrmap.NewSkylakeLike(g)
			memA := dram.New(g, tm)
			memB := dram.New(g, tm)
			ctlA := NewController(DefaultConfig(), memA, mapper, 0)
			ctlB := NewController(DefaultConfig(), memB, mapper, 0)
			ctlB.SetReferenceScheduler(true)

			var doneA, doneB []int64
			rng := rand.New(rand.NewSource(99))
			// A handful of hot rows plus random spray: drives row hits,
			// conflicts, rowWanted keep-open decisions, and drains.
			hot := make([]uint64, 8)
			for i := range hot {
				hot[i] = uint64(rng.Intn(1<<22) * dram.BlockBytes)
			}
			nextAddr := func() uint64 {
				if rng.Intn(100) < 60 {
					return hot[rng.Intn(len(hot))] + uint64(rng.Intn(64))*dram.BlockBytes
				}
				return uint64(rng.Intn(1<<26)) * dram.BlockBytes
			}
			for cyc := int64(0); cyc < 30_000; cyc++ {
				// Identical enqueue attempts against both controllers.
				for rng.Intn(100) < 30 {
					addr := nextAddr()
					if mapper.Decode(addr).Channel != 0 {
						continue
					}
					if rng.Intn(100) < 35 {
						ctlA.EnqueueWrite(addr, cyc)
						ctlB.EnqueueWrite(addr, cyc)
					} else {
						okA := ctlA.EnqueueRead(addr, cyc, func(d int64) { doneA = append(doneA, d) })
						okB := ctlB.EnqueueRead(addr, cyc, func(d int64) { doneB = append(doneB, d) })
						if okA != okB {
							t.Fatalf("cycle %d: enqueue accept diverged: bucketed=%v ref=%v", cyc, okA, okB)
						}
					}
				}
				ctlA.Tick(cyc)
				ctlB.Tick(cyc)
				if a, b := ctrlState(ctlA, memA), ctrlState(ctlB, memB); a != b {
					t.Fatalf("cycle %d: state diverged:\n bucketed: %s\n ref:      %s", cyc, a, b)
				}
				if ctlA.HostIssuedRank() != ctlB.HostIssuedRank() {
					t.Fatalf("cycle %d: HostIssuedRank diverged: %d vs %d",
						cyc, ctlA.HostIssuedRank(), ctlB.HostIssuedRank())
				}
				if len(doneA) != len(doneB) {
					t.Fatalf("cycle %d: completion counts diverged: %d vs %d", cyc, len(doneA), len(doneB))
				}
				for r := 0; r < g.Ranks; r++ {
					if ctlA.HasAnyDemandFor(r) != ctlB.HasAnyDemandFor(r) {
						t.Fatalf("cycle %d: HasAnyDemandFor(%d) diverged", cyc, r)
					}
					for b := 0; b < g.BanksPerRank(); b++ {
						if ctlA.HasDemandFor(r, b) != ctlB.HasDemandFor(r, b) {
							t.Fatalf("cycle %d: HasDemandFor(%d,%d) diverged", cyc, r, b)
						}
					}
				}
			}
			for i := range doneA {
				if doneA[i] != doneB[i] {
					t.Fatalf("read completion %d diverged: %d vs %d", i, doneA[i], doneB[i])
				}
			}
			if ctlA.ReadsIssued == 0 || ctlA.WritesIssued == 0 || ctlA.PresIssued == 0 {
				t.Fatalf("degenerate stream: reads=%d writes=%d pres=%d",
					ctlA.ReadsIssued, ctlA.WritesIssued, ctlA.PresIssued)
			}
		})
	}
}

// TestNextEventHorizonSound checks the strengthened NextEvent contract
// directly: whenever NextEvent reports a horizon beyond now, ticking
// every cycle up to that horizon must issue nothing and mutate no
// observable counter, and the controller must still make progress once
// the horizon arrives (no lost wakeups: all queued requests eventually
// retire).
func TestNextEventHorizonSound(t *testing.T) {
	g := dram.DefaultGeometry()
	mapper := addrmap.NewSkylakeLike(g)
	mem := dram.New(g, dram.DDR42400())
	c := NewController(DefaultConfig(), mem, mapper, 0)
	rng := rand.New(rand.NewSource(5))

	pending := 0
	skips := 0
	for cyc := int64(0); cyc < 60_000; cyc++ {
		for rng.Intn(100) < 10 {
			addr := uint64(rng.Intn(1<<24)) * dram.BlockBytes
			if mapper.Decode(addr).Channel != 0 {
				continue
			}
			if rng.Intn(2) == 0 {
				c.EnqueueWrite(addr, cyc)
			} else if c.EnqueueRead(addr, cyc, func(int64) { pending-- }) {
				pending++
			}
		}
		next := c.NextEvent(cyc)
		if next > cyc && next != dram.Never {
			skips++
			before := ctrlState(c, mem)
			for w := cyc; w < next; w++ {
				c.Tick(w)
				if got := ctrlState(c, mem); got != before {
					t.Fatalf("cycle %d: state changed inside idle window [%d,%d):\n before: %s\n after:  %s",
						w, cyc, next, before, got)
				}
			}
			cyc = next - 1 // loop increment lands on the horizon
			continue
		}
		c.Tick(cyc)
	}
	if skips == 0 {
		t.Fatal("NextEvent never reported a skippable window; horizon path untested")
	}
	// Drain: every queued request must retire without further enqueues.
	for cyc := int64(60_000); ; cyc++ {
		r, w := c.QueueOccupancy()
		if r == 0 && w == 0 {
			break
		}
		if cyc > 300_000 {
			t.Fatalf("queues failed to drain: %d reads, %d writes left", r, w)
		}
		c.Tick(cyc)
	}
	if pending != 0 {
		t.Fatalf("%d read completions lost", pending)
	}
}
