// Package apps builds the paper's NDA application kernels on top of the
// Chopim runtime API: the SVRG average-gradient summarization of Fig 8,
// a conjugate-gradient solver (the paper's CG, Eigen-based in the
// original), and a streamcluster-style distance kernel (NU-MineBench SC).
// Fig 14 uses CG and SC as op mixes whose behaviour falls between the
// DOT and COPY extremes.
package apps

import (
	"fmt"

	"chopim/internal/ndart"
)

// App is a relaunchable NDA workload: Iterate schedules one outer
// iteration's operations and returns a completion handle, so experiment
// drivers can keep the NDAs busy for a whole measurement window.
type App struct {
	Name    string
	Iterate func() (*ndart.Handle, error)
}

// NewCG allocates a conjugate-gradient solve of an m x m dense system
// and returns its iteration kernel: q = A*p, two dots, and three
// AXPY-family updates per iteration (read-heavy with moderate writes).
func NewCG(rt *ndart.Runtime, m int) (*App, error) {
	a, err := rt.NewMatrix(m, m, ndart.Shared)
	if err != nil {
		return nil, fmt.Errorf("apps: CG matrix: %w", err)
	}
	vecs := make([]*ndart.Vector, 4) // x, r, p, q
	for i := range vecs {
		if vecs[i], err = rt.NewVector(m, ndart.Shared); err != nil {
			return nil, fmt.Errorf("apps: CG vector %d: %w", i, err)
		}
	}
	x, r, p, q := vecs[0], vecs[1], vecs[2], vecs[3]
	return &App{
		Name: "CG",
		Iterate: func() (*ndart.Handle, error) {
			hs := make([]*ndart.Handle, 0, 6)
			add := func(h *ndart.Handle, err error) error {
				if err != nil {
					return err
				}
				hs = append(hs, h)
				return nil
			}
			if err := add(rt.Gemv(q, a, p)); err != nil { // q = A p
				return nil, err
			}
			if err := add(rt.Dot(p, q)); err != nil { // p . q
				return nil, err
			}
			if err := add(rt.Dot(r, r)); err != nil { // r . r
				return nil, err
			}
			if err := add(rt.Axpy(x, p)); err != nil { // x += alpha p
				return nil, err
			}
			if err := add(rt.Axpy(r, q)); err != nil { // r -= alpha q
				return nil, err
			}
			if err := add(rt.Axpby(p, r, p)); err != nil { // p = r + beta p
				return nil, err
			}
			return ndart.Join(hs...), nil
		},
	}, nil
}

// NewStreamcluster allocates an n-point, d-dimensional clustering kernel
// (points vs. k centers): per iteration it streams the point matrix for
// distance evaluation (GEMV-like), squares via XMY, and updates per-point
// assignment weights (AXPY) — read-dominant with light writes.
func NewStreamcluster(rt *ndart.Runtime, n, d, k int) (*App, error) {
	points, err := rt.NewMatrix(n, d, ndart.Shared)
	if err != nil {
		return nil, fmt.Errorf("apps: SC points: %w", err)
	}
	dist, err := rt.NewVector(n, ndart.Shared)
	if err != nil {
		return nil, err
	}
	best, err := rt.NewVector(n, ndart.Shared)
	if err != nil {
		return nil, err
	}
	weight, err := rt.NewVector(n, ndart.Shared)
	if err != nil {
		return nil, err
	}
	return &App{
		Name: "SC",
		Iterate: func() (*ndart.Handle, error) {
			hs := make([]*ndart.Handle, 0, k+2)
			for c := 0; c < k; c++ {
				h, err := rt.Gemv(dist, points, nil)
				if err != nil {
					return nil, err
				}
				hs = append(hs, h)
			}
			h, err := rt.Xmy(best, dist, dist)
			if err != nil {
				return nil, err
			}
			hs = append(hs, h)
			if h, err = rt.Axpy(weight, best); err != nil {
				return nil, err
			}
			hs = append(hs, h)
			return ndart.Join(hs...), nil
		},
	}, nil
}

// NewMicro returns a relaunchable single-op microbenchmark over Shared
// vectors of n elements (the DOT / COPY extremes of Figs 11-14).
func NewMicro(rt *ndart.Runtime, name string, n int) (*App, error) {
	return NewMicroPlaced(rt, name, n, ndart.Shared)
}

// NewMicroPlaced is NewMicro with an explicit placement; Private gives
// every rank NDA an n-element local share (Fig 13's per-rank sizing).
func NewMicroPlaced(rt *ndart.Runtime, name string, n int, p ndart.Placement) (*App, error) {
	x, err := rt.NewVector(n, p)
	if err != nil {
		return nil, err
	}
	y, err := rt.NewVector(n, p)
	if err != nil {
		return nil, err
	}
	var iter func() (*ndart.Handle, error)
	switch name {
	case "dot":
		iter = func() (*ndart.Handle, error) { return rt.Dot(x, y) }
	case "copy":
		iter = func() (*ndart.Handle, error) { return rt.Copy(y, x) }
	case "nrm2":
		iter = func() (*ndart.Handle, error) { return rt.Nrm2(x) }
	case "scal":
		iter = func() (*ndart.Handle, error) { return rt.Scal(x) }
	case "axpy":
		iter = func() (*ndart.Handle, error) { return rt.Axpy(y, x) }
	case "xmy":
		iter = func() (*ndart.Handle, error) { return rt.Xmy(y, x, x) }
	case "axpby":
		iter = func() (*ndart.Handle, error) { return rt.Axpby(y, x, y) }
	case "axpbypcz":
		z, err := rt.NewVector(n, p)
		if err != nil {
			return nil, err
		}
		iter = func() (*ndart.Handle, error) { return rt.Axpbypcz(z, x, y, z) }
	default:
		return nil, fmt.Errorf("apps: unknown micro op %q", name)
	}
	return &App{Name: name, Iterate: iter}, nil
}

// MicroSpec allocates Private operands of n elements per rank and
// returns the op's Spec for use with asynchronous macro launches.
func MicroSpec(rt *ndart.Runtime, name string, n int) (ndart.Spec, error) {
	x, err := rt.NewVector(n, ndart.Private)
	if err != nil {
		return ndart.Spec{}, err
	}
	y, err := rt.NewVector(n, ndart.Private)
	if err != nil {
		return ndart.Spec{}, err
	}
	switch name {
	case "dot":
		return ndart.DotSpec(x, y), nil
	case "copy":
		return ndart.CopySpec(y, x), nil
	case "nrm2":
		return ndart.Nrm2Spec(x), nil
	case "scal":
		return ndart.ScalSpec(x), nil
	case "axpy":
		return ndart.AxpySpec(y, x), nil
	case "xmy":
		return ndart.XmySpec(y, x, x), nil
	case "axpby":
		return ndart.AxpbySpec(y, x, y), nil
	case "axpbypcz":
		z, err := rt.NewVector(n, ndart.Private)
		if err != nil {
			return ndart.Spec{}, err
		}
		return ndart.AxpbypczSpec(z, x, y, z), nil
	}
	return ndart.Spec{}, fmt.Errorf("apps: unknown micro op %q", name)
}

// AverageGradientConfig sizes the Fig 8 summarization kernel.
type AverageGradientConfig struct {
	N, D int // dataset rows and features
}

// AverageGradient builds the Fig 8 kernel: gemv over X, two elementwise
// passes, a scal, and the asynchronous per-row AXPY macro loop that
// streams X a second time into per-NDA private accumulators.
type AverageGradient struct {
	rt   *ndart.Runtime
	x    *ndart.Matrix
	wVec *ndart.Vector
	y    *ndart.Vector
	v    *ndart.Vector
	a    *ndart.Vector
	apvt *ndart.Vector
	cfg  AverageGradientConfig
}

// NewAverageGradient allocates the kernel's operands per Fig 8.
func NewAverageGradient(rt *ndart.Runtime, cfg AverageGradientConfig) (*AverageGradient, error) {
	ag := &AverageGradient{rt: rt, cfg: cfg}
	var err error
	if ag.x, err = rt.NewMatrix(cfg.N, cfg.D, ndart.Shared); err != nil {
		return nil, err
	}
	if ag.wVec, err = rt.NewVector(cfg.D, ndart.Shared); err != nil {
		return nil, err
	}
	if ag.y, err = rt.NewVector(cfg.N, ndart.Shared); err != nil {
		return nil, err
	}
	if ag.v, err = rt.NewVector(cfg.N, ndart.Shared); err != nil {
		return nil, err
	}
	if ag.a, err = rt.NewVector(cfg.D, ndart.Shared); err != nil {
		return nil, err
	}
	if ag.apvt, err = rt.NewVector(cfg.D, ndart.Private); err != nil {
		return nil, err
	}
	return ag, nil
}

// Run schedules one full summarization and returns its handle. The
// sigmoid and final reduce run on the host; their memory traffic (y and
// a_pvt sized) is carried by the runtime's host copier.
func (ag *AverageGradient) Run() (*ndart.Handle, error) {
	rt := ag.rt
	hs := make([]*ndart.Handle, 0, 6)
	h, err := rt.Gemv(ag.y, ag.x, ag.wVec) // y = X w
	if err != nil {
		return nil, err
	}
	hs = append(hs, h)
	if h, err = rt.Xmy(ag.v, ag.v, ag.y); err != nil {
		return nil, err
	}
	hs = append(hs, h)
	// host::sigmoid(v, v) is compute on the host over v (cache-resident
	// after the xmy); no DRAM traffic modeled.
	if h, err = rt.Xmy(ag.v, ag.v, ag.y); err != nil {
		return nil, err
	}
	hs = append(hs, h)
	if h, err = rt.Scal(ag.v); err != nil {
		return nil, err
	}
	hs = append(hs, h)
	// Macro loop: a_pvt += v[i] * X[i] for every row, streaming X again.
	// Launched asynchronously with one packet per rank (Section V).
	h, err = rt.MacroFor(ag.cfg.N, func(i int) ndart.Spec {
		return ndart.AxpySpec(ag.apvt, ag.x.RowView(i))
	})
	if err != nil {
		return nil, err
	}
	hs = append(hs, h)
	// host::reduce(a, a_pvt) then nda::axpy(a, lambda, w).
	if h, err = rt.Axpy(ag.a, ag.wVec); err != nil {
		return nil, err
	}
	hs = append(hs, h)
	return ndart.Join(hs...), nil
}
