// Package experiments regenerates every table and figure of the paper's
// evaluation (Section VII). Each FigNN function returns printable rows;
// cmd/chopim renders them and bench_test.go wraps them as benchmarks.
// EXPERIMENTS.md records paper-versus-measured outcomes.
package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"chopim/internal/dram"
	"chopim/internal/ndart"
	"chopim/internal/sim"
)

// Options sets the simulation budget. Quick shrinks runs for tests.
// Parallel fans each figure's independent simulation points across that
// many workers (0/1 serial, negative = GOMAXPROCS); results are
// identical for every worker count. SimWorkers is the second
// parallelism layer, *within* each simulation point: it sets
// sim.Config.SimWorkers, fanning every executed tick's per-channel
// memory phase across that many goroutines (also bit-identical for any
// value; see DESIGN.md §2.5). The two layers compose — point-level
// sharding scales with independent points, domain workers with channels
// per point — but multiplying them oversubscribes small machines, so
// sweeps typically raise one at a time. CycleByCycle forces the
// reference Tick path instead of fast-forward — counters are identical
// either way (the sim package proves it), so it exists for
// cross-checking and speedup benchmarks.
type Options struct {
	WarmCycles    int64
	MeasureCycles int64
	Quick         bool
	Parallel      int
	SimWorkers    int
	CycleByCycle  bool

	// Sampled switches every measurement point to SMARTS-style sampled
	// execution (sim.System.RunSampled, DESIGN.md §2.11): short detailed
	// windows separated by functional fast-forward, with metrics
	// reported as per-window means. Sample is the schedule; zero fields
	// take the sim defaults. WarmCycles and MeasureCycles are ignored on
	// sampled points — the schedule's prime segment is the warm-up and
	// its windows are the measurement — as are the mid-point checkpoint
	// and warm-pool machinery (sampled points are cheap by
	// construction). Mutually exclusive with CycleByCycle; the figure
	// cache keys on both the flag and the schedule, so sampled rows
	// never satisfy exact lookups.
	Sampled bool
	Sample  sim.SampleConfig

	// ProfileDomains enables sim.Config.ProfileDomains on every point
	// this harness builds; the per-point histograms are merged
	// process-wide as points complete (ReadPhaseSpans). Spans are only
	// recorded on the fast path (CycleByCycle points contribute
	// nothing), and concurrent points on a sharded runner time-slice
	// one machine, so the histograms are a profile of where simulated
	// time goes, not a cycle-exact measurement.
	ProfileDomains bool

	// CacheDir, when set, enables the content-addressed figure result
	// cache: each figure's rows are stored under a hash of the model
	// version and the behavior-selecting options, and a later run with
	// the same fingerprint replays the stored rows without simulating
	// (see cache.go; figures are deterministic so the replay is exact).
	CacheDir string

	// JournalDir, when set, checkpoints sweep progress: every sharded
	// sweep appends each completed point to a journal file as it
	// finishes. Resume then makes an interrupted run pick up at the
	// last completed point — journals with a stale fingerprint are
	// discarded, and a figure that completes removes its journals.
	JournalDir string
	Resume     bool

	// CheckInvariants arms sim.Config.CheckInvariants on every point:
	// cross-layer conservation invariants validated at each commit
	// barrier, violations quarantining the point. Results are
	// bit-identical with it on or off.
	CheckInvariants bool

	// PointTimeout, when positive, bounds each point's wall-clock time
	// (sim.Config.MaxWallClock): an expired point fails with a
	// DeadlineError, counted in RunnerStats.Timeouts, and under
	// KeepGoing the rest of the sweep still completes.
	PointTimeout time.Duration

	// PointRetries bounds retry-with-backoff for transient point
	// failures (I/O interruptions, injected transient faults). 0
	// disables retry; simulation errors are deterministic and are never
	// retried regardless.
	PointRetries int

	// KeepGoing switches a sweep from fail-fast to partial-failure
	// mode: every healthy point completes, and the failures are
	// reported together as a *SweepError.
	KeepGoing bool

	// CheckpointEvery, when positive (and JournalDir is set),
	// periodically persists each in-flight point's state to a durable
	// checkpoint file every that-many simulated cycles. A resumed run
	// (Resume) restores the newest valid checkpoint and continues from
	// its cycle instead of recomputing from zero — the mid-point
	// complement to the per-point journal. Corrupt or torn files
	// degrade to recompute; results are bit-identical with
	// checkpointing on, off, or resumed (see ckpt.go).
	CheckpointEvery int64

	// Cancel, when set, lets a signal handler or peer goroutine drain
	// the sweep cooperatively: stop admitting points, or additionally
	// cut every in-flight point at its next quiescent boundary (a final
	// checkpoint is persisted when CheckpointEvery is armed). A
	// canceled sweep returns an error — partial results are never
	// cached as complete — with the completed points journaled.
	Cancel *Canceler

	// journal carries the figure's resume-journal context from
	// figCached into its sharded sweeps.
	journal *journalCtx

	// pointTag discriminates a sweep point's durable checkpoint when
	// the config and budget alone do not (sweeps whose points differ
	// only in workload). Sweep closures set it via withTag.
	pointTag string
}

// withTag returns a copy of the options carrying the point's durable
// checkpoint tag (see Options.pointTag).
func (o Options) withTag(tag string) Options {
	o.pointTag = tag
	return o
}

// newSystem builds one simulation point's system with the options'
// per-simulation settings applied. Points that use the fast path should
// release it with sim.System.Close (measureConcurrent does).
func (o Options) newSystem(cfg sim.Config) (*sim.System, error) {
	cfg.SimWorkers = o.SimWorkers
	cfg.ProfileDomains = o.ProfileDomains
	cfg.CheckInvariants = o.CheckInvariants
	cfg.MaxWallClock = o.PointTimeout
	if o.Cancel != nil {
		cfg.Cancel = o.Cancel.simFlag()
	}
	return sim.New(cfg)
}

// Process-wide phase-span aggregate (see Options.ProfileDomains).
var (
	phaseMu    sync.Mutex
	phaseSpans sim.PhaseSpans
)

// Warm-state pool: host-only figure points that share a configuration
// also share their warm-up work. The first point to warm a given config
// snapshots the system at the end of warm-up; every later point with
// the same fingerprint restores that checkpoint instead of re-simulating
// the warm window. Restore is bit-identical to having warmed (the sim
// package proves it), so pooled and unpooled runs produce the same
// tables. One checkpoint fans out to any number of forks — sim.Restore
// never mutates it.
var (
	warmMu   sync.Mutex
	warmPool = map[string]*sim.Checkpoint{}
)

// warmPoolKey fingerprints a point's warm-up: the full simulation
// config with the state-free knobs zeroed (SimWorkers, ProfileDomains,
// and the robustness knobs do not affect simulated state; sim.Restore
// accepts any of them differing) plus the warm-cycle budget.
func warmPoolKey(cfg sim.Config, warm int64) (string, bool) {
	cfg.SimWorkers = 0
	cfg.ProfileDomains = false
	cfg.CheckInvariants = false
	cfg.WatchdogWindow = 0
	cfg.MaxCycles = 0
	cfg.MaxWallClock = 0
	cfg.Cancel = nil
	b, err := json.Marshal(struct {
		Schema string
		Cfg    sim.Config
		Warm   int64
	}{cacheSchema, cfg, warm})
	if err != nil {
		return "", false
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), true
}

// mergePhaseSpans folds one completed point's histograms into the
// process-wide aggregate.
func mergePhaseSpans(p *sim.PhaseSpans) {
	if p == nil {
		return
	}
	phaseMu.Lock()
	phaseSpans.Merge(p)
	phaseMu.Unlock()
}

// ReadPhaseSpans returns a copy of the process-wide phase-span
// aggregate (empty histograms when no profiled point has completed).
func ReadPhaseSpans() sim.PhaseSpans {
	phaseMu.Lock()
	defer phaseMu.Unlock()
	var out sim.PhaseSpans
	out.Merge(&phaseSpans)
	return out
}

// DefaultOptions returns the full-fidelity budget. Warm-up must be long
// enough to fill the 8 MiB LLC so steady-state hit rates and writeback
// traffic are established before measurement.
func DefaultOptions() Options {
	return Options{WarmCycles: 250_000, MeasureCycles: 400_000}
}

// QuickOptions returns a reduced budget for tests.
func QuickOptions() Options {
	return Options{WarmCycles: 5_000, MeasureCycles: 40_000, Quick: true}
}

// Result is one concurrent-execution measurement.
type Result struct {
	HostIPC   float64
	NDAUtil   float64 // fraction of host-idle rank bandwidth captured
	NDABWGBs  float64 // absolute NDA bandwidth
	HostBWGBs float64
	NDABlocks int64
	HostBusy  int64
	Cycles    int64
}

// launcher produces a fresh completion handle each time the previous one
// finishes, keeping NDAs busy through the window (the paper relaunches
// NDA workloads until host simulation ends).
type launcher func() (*ndart.Handle, error)

// measureConcurrent drives a system with an optional NDA relaunch loop
// through warm-up and measurement. It releases the system's domain
// executor (if one was started) before returning; the system stays
// readable for post-run counter extraction.
func measureConcurrent(s *sim.System, it launcher, opt Options) (Result, error) {
	if opt.Sampled {
		return measureSampled(s, it, opt)
	}
	defer s.Close()
	defer mergePhaseSpans(s.PhaseSpans())
	var h *ndart.Handle
	var err error
	relaunch := func() error {
		if it == nil {
			return nil
		}
		if h == nil || h.Done() {
			if h, err = it(); err != nil {
				return err
			}
		}
		return nil
	}
	// Drive the system with fast-forward: StepFast jumps provably-idle
	// windows and produces counters bit-identical to Tick-ing every
	// cycle; handles only complete on executed ticks, so relaunching
	// after each step reproduces the cycle-exact relaunch schedule.
	// Errors (deadline, livelock, sticky failures) abort the point; the
	// reference path checks the deadline itself since Tick never does.
	step := func(end int64) error {
		if opt.CycleByCycle {
			if err := s.DeadlineExceeded(); err != nil {
				return err
			}
			s.Tick()
			return nil
		}
		return s.StepFast(end)
	}
	warmEnd := s.Now() + opt.WarmCycles
	measEnd := warmEnd + opt.MeasureCycles
	// Mid-point durable checkpoints (Options.CheckpointEvery): resume
	// restores the newest valid cut — driver handle recovered by table
	// index, measurement baselines from the metadata line — before the
	// first launch touches the fresh system, then the loops below
	// persist a new cut each time the cadence comes due. Restore is
	// bit-identical to having simulated (the sim package proves it), so
	// a resumed point's rows match an uninterrupted run's exactly.
	ckpt := openPointCkpt(s, opt)
	// Every exit must drain the background writer: an abandoned worker
	// goroutine would leak, and an in-flight write racing the caller's
	// teardown could land after the point is gone.
	defer ckpt.flush()
	measuring := false
	var busy0, blocks0 int64
	if opt.Resume {
		if meta, ok := ckpt.load(s); ok {
			measuring = meta.Measuring
			busy0, blocks0 = meta.Busy0, meta.Blocks0
			if meta.HandleIdx >= 0 {
				h = s.RT.RestoredHandleAt(meta.HandleIdx)
			}
		}
	}
	// ckptOnErr persists a final cut when a step error is a cooperative
	// cancel: the point's progress survives the shutdown, and a resumed
	// sweep picks up from this exact boundary. Other errors (livelock,
	// deadline, invariant) leave any previous checkpoint in place.
	ckptOnErr := func(err error) {
		var ce *sim.CanceledError
		if errors.As(err, &ce) {
			// Drain pending periodic cuts first so an older one cannot
			// land after this final, newest cut; then write it
			// synchronously — the process may exit right after.
			ckpt.flush()
			ckpt.write(s, h, measuring, busy0, blocks0)
		}
	}
	if err := relaunch(); err != nil {
		return Result{}, err
	}
	// Host-only points on the fast path share warm-up state through the
	// pool: fork from a warmed checkpoint when one exists, seed it
	// otherwise. NDA-driving points are excluded (their launcher holds
	// handles bound to this system), as are profiled points (a restored
	// warm-up records no spans) and the cycle-by-cycle cross-check path.
	if it == nil && !opt.CycleByCycle && !opt.ProfileDomains &&
		opt.WarmCycles > 0 && s.Now() == 0 {
		if key, ok := warmPoolKey(s.Cfg, opt.WarmCycles); ok {
			warmMu.Lock()
			ck := warmPool[key]
			warmMu.Unlock()
			if ck != nil {
				s.Restore(ck)
				statWarmForks.Add(1)
			} else {
				for s.Now() < warmEnd {
					if err := step(warmEnd); err != nil {
						return Result{}, err
					}
				}
				if ck, err := s.Snapshot(); err == nil {
					warmMu.Lock()
					if _, dup := warmPool[key]; !dup {
						warmPool[key] = ck
					}
					warmMu.Unlock()
				}
			}
		}
	}
	for s.Now() < warmEnd {
		if err := step(warmEnd); err != nil {
			ckptOnErr(err)
			return Result{}, err
		}
		if err := relaunch(); err != nil {
			return Result{}, err
		}
		if ckpt.due(s.Now()) {
			ckpt.writeAsync(s, h, measuring, busy0, blocks0)
		}
	}
	if !measuring {
		s.BeginMeasurement()
		busy0, blocks0 = s.HostBusyCycles(), s.NDABlocks()
		measuring = true
	}
	// finalize folds whatever has been measured so far into a Result —
	// the complete window normally, a truncated one when a deadline or
	// livelock aborts mid-measurement (the partial stats ride back
	// alongside the error so callers can report how far the point got).
	finalize := func() Result {
		for _, c := range s.MCs {
			c.FinalizeStats(s.Now())
		}
		blocks := s.NDABlocks() - blocks0
		busy := s.HostBusyCycles() - busy0
		res := Result{
			HostIPC:   s.HostIPC(),
			NDAUtil:   s.NDAUtilization(busy, blocks),
			NDABWGBs:  s.NDABandwidthGBs(blocks * dram.BlockBytes),
			NDABlocks: blocks,
			HostBusy:  busy,
			Cycles:    s.MeasuredCycles(),
		}
		hostBlocks := float64(busy) / float64(s.Cfg.Timing.BL) // approx: busy cycles are data bursts
		if mc := s.MeasuredCycles(); mc > 0 {
			res.HostBWGBs = hostBlocks * dram.BlockBytes / sim.Seconds(mc) / 1e9
		}
		return res
	}
	for s.Now() < measEnd {
		if err := step(measEnd); err != nil {
			ckptOnErr(err)
			return finalize(), err
		}
		if err := relaunch(); err != nil {
			return Result{}, err
		}
		if ckpt.due(s.Now()) {
			ckpt.writeAsync(s, h, measuring, busy0, blocks0)
		}
	}
	// The point completed: the journal (and cache) now own its result,
	// so the mid-point file has nothing left to resume.
	ckpt.remove()
	return finalize(), nil
}

// measureSampled is measureConcurrent's sampled-execution twin: it
// drives the point through sim.RunSampled and maps the per-window means
// onto the exact path's Result shape, so every figure renders sampled
// rows without change. NDA work relaunches at window boundaries — the
// schedule's only quiescent points — rather than cycle-exactly, one of
// the sampled mode's documented approximations. NDABlocks and HostBusy
// are whole-run totals (blocks include functionally-drained work; busy
// cycles accumulate only in detailed segments), kept for rough scale,
// not cross-mode comparison.
func measureSampled(s *sim.System, it launcher, opt Options) (Result, error) {
	defer s.Close()
	defer mergePhaseSpans(s.PhaseSpans())
	if opt.CycleByCycle {
		return Result{}, fmt.Errorf("experiments: Sampled and CycleByCycle are mutually exclusive")
	}
	var h *ndart.Handle
	relaunch := func() error {
		if it == nil {
			return nil
		}
		if h == nil || h.Done() {
			var err error
			if h, err = it(); err != nil {
				return err
			}
		}
		return nil
	}
	if err := relaunch(); err != nil {
		return Result{}, err
	}
	res, err := s.RunSampledFunc(opt.Sample, func(int) error { return relaunch() })
	if err != nil {
		return Result{}, err
	}
	for _, c := range s.MCs {
		c.FinalizeStats(s.Now())
	}
	return Result{
		HostIPC:   res.HostIPC.Mean,
		NDAUtil:   res.NDAUtil.Mean,
		NDABWGBs:  res.NDABWGBs.Mean,
		HostBWGBs: res.HostBWGBs.Mean,
		NDABlocks: s.NDABlocks(),
		HostBusy:  s.HostBusyCycles(),
		Cycles:    res.TotalCycles,
	}, nil
}

// microVectorElems returns a Private vector length giving each rank
// roughly bytesPerRank of data.
func microVectorElems(bytesPerRank int) int { return bytesPerRank / 4 }

// scaleForQuick shrinks a size under Quick options.
func scaleForQuick(opt Options, n int) int {
	if opt.Quick && n > 1<<16 {
		return n / 8
	}
	return n
}

// geomWithRanks returns the baseline geometry with the given ranks per
// channel.
func geomWithRanks(ranks int) dram.Geometry {
	g := dram.DefaultGeometry()
	g.Ranks = ranks
	return g
}

// fmtF renders a float for table output.
func fmtF(v float64) string { return fmt.Sprintf("%.3f", v) }

// Placement aliases so figure files read cleanly.
const (
	ndartShared  = ndart.Shared
	ndartPrivate = ndart.Private
)
