// Package nda implements the near-data accelerator hardware: per-rank
// processing-element clusters with the Fig 9 batch pipeline, per-rank NDA
// memory controllers that opportunistically interleave with host traffic,
// the write-throttling policies (stochastic issue and next-rank
// prediction), and the replicated finite-state machines that let a
// host-side controller track NDA activity without signaling (Section
// III-D).
package nda

import (
	"fmt"

	"chopim/internal/dram"
)

// OpKind enumerates the paper's Table I NDA operations.
type OpKind int

// Table I operations.
const (
	OpAXPBY    OpKind = iota // z = a*x + b*y
	OpAXPBYPCZ               // w = a*x + b*y + c*z
	OpAXPY                   // y = a*y + x
	OpCOPY                   // y = x
	OpDOT                    // c = x . y
	OpNRM2                   // c = sqrt(x . x)
	OpSCAL                   // x = a*x
	OpXMY                    // z = x (elementwise) y
	OpGEMV                   // y = A x
)

// String returns the BLAS-style mnemonic.
func (k OpKind) String() string {
	switch k {
	case OpAXPBY:
		return "axpby"
	case OpAXPBYPCZ:
		return "axpbypcz"
	case OpAXPY:
		return "axpy"
	case OpCOPY:
		return "copy"
	case OpDOT:
		return "dot"
	case OpNRM2:
		return "nrm2"
	case OpSCAL:
		return "scal"
	case OpXMY:
		return "xmy"
	case OpGEMV:
		return "gemv"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// ReadOperands returns how many vectors the op streams per batch.
func (k OpKind) ReadOperands() int {
	switch k {
	case OpNRM2, OpSCAL, OpCOPY, OpGEMV:
		return 1
	case OpAXPY, OpDOT, OpAXPBY, OpXMY:
		return 2
	case OpAXPBYPCZ:
		return 3
	}
	return 1
}

// WritesResult reports whether the op writes a result vector back to
// memory (reductions accumulate in the PE scratchpad instead).
func (k OpKind) WritesResult() bool {
	switch k {
	case OpDOT, OpNRM2, OpGEMV:
		// GEMV's result is one element per matrix row; its writeback
		// traffic is negligible and modeled as none.
		return false
	}
	return true
}

// Iter lazily yields the DRAM block addresses of one operand's share on a
// rank, in processing order. It returns ok=false when exhausted.
type Iter func() (a dram.Addr, ok bool)

// SliceIter adapts a precomputed address list to an Iter.
func SliceIter(addrs []dram.Addr) Iter {
	i := 0
	return func() (dram.Addr, bool) {
		if i >= len(addrs) {
			return dram.Addr{}, false
		}
		a := addrs[i]
		i++
		return a, true
	}
}

// BatchBlocks is the number of 64-byte blocks in one PE batch: the 1 KB
// per-chip buffer of Fig 9 spans 16 blocks across an 8-chip rank... per
// chip 1KB = 128 x 8B bursts; at rank level a 1KB batch per chip equals
// 16 cache blocks of the interleaved vector share handled per pipeline
// turn.
const BatchBlocks = 16

// Op is one primitive NDA operation executing on a single rank's PEs.
// The read iterators are drained round-robin in batches of BatchBlocks;
// after each full batch of reads, BatchBlocks result blocks enter the
// write buffer (if the op writes).
type Op struct {
	Kind   OpKind
	Reads  []Iter
	Writes Iter
	// Guard, when non-nil, is the NDA-side bounds check (Section II,
	// Address Translation): the host performs translation, the NDA only
	// verifies each access stays inside the operand regions named in
	// the launch packet. Violations abort the op via panic — hardware
	// would raise a protection fault.
	Guard func(a dram.Addr) bool
	// Done fires at the DRAM cycle when the op fully completes
	// (including write-buffer drain of its results).
	Done func(cycle int64)

	// TotalReads, when set, is the exact number of addresses the read
	// iterators yield in total. It lets PeekRead prove an iterator is
	// not yet dry without probing it, which keeps fast-forward peeks
	// free of early-exhaustion side effects. It must never exceed the
	// true yield count; zero disables peeking (conservative).
	TotalReads int

	// Tag carries the launcher's blueprint for this op (the ndart
	// runtime attaches its build recipe). Checkpointing replays it: the
	// iterators are pure deterministic streams, so (Tag, fetched,
	// emitted) reconstructs the op's exact internal state on restore.
	Tag any

	// progress
	operand   int // which read iterator is active
	inOperand int // blocks consumed from the active iterator this batch
	fetched   int // addresses pulled from the read iterators so far
	emitted   int // addresses pulled from the write iterator so far
	exhausted bool
	pendingWr int // writes of this op still in the write buffer
	pushed    dram.Addr
	hasPushed bool
}

// NewOp builds an operation; reads must have one iterator per
// Kind.ReadOperands(), and writes must be non-nil iff the kind writes.
func NewOp(kind OpKind, reads []Iter, writes Iter, done func(int64)) *Op {
	if len(reads) != kind.ReadOperands() {
		panic(fmt.Sprintf("nda: %v expects %d read operands, got %d", kind, kind.ReadOperands(), len(reads)))
	}
	if kind.WritesResult() != (writes != nil) {
		panic(fmt.Sprintf("nda: %v writes=%v but writes iterator nil=%v", kind, kind.WritesResult(), writes == nil))
	}
	return &Op{Kind: kind, Reads: reads, Writes: writes, Done: done}
}

// pushback returns an address obtained from nextRead that could not be
// issued; the next nextRead call re-delivers it.
func (o *Op) pushback(a dram.Addr) {
	o.pushed = a
	o.hasPushed = true
}

// PeekRead returns the next read address without logically consuming it
// (the address is re-delivered by the following nextRead call, exactly
// as after a blocked issue attempt). ok=false means the reads are
// exhausted, or exhaustion cannot be ruled out without probing a
// possibly-dry iterator — callers must then treat the current cycle as
// the op's next event.
func (o *Op) PeekRead() (dram.Addr, bool) {
	if o.hasPushed {
		return o.pushed, true
	}
	if o.exhausted || o.TotalReads <= 0 || o.fetched >= o.TotalReads {
		return dram.Addr{}, false
	}
	a, ok := o.nextRead()
	if !ok {
		// TotalReads overcounted; stay conservative.
		return dram.Addr{}, false
	}
	o.pushback(a)
	return a, true
}

// nextRead yields the next read access, advancing the round-robin batch
// schedule. ok=false means all reads are exhausted.
func (o *Op) nextRead() (dram.Addr, bool) {
	if o.hasPushed {
		o.hasPushed = false
		return o.pushed, true
	}
	if o.exhausted {
		return dram.Addr{}, false
	}
	for tries := 0; tries < len(o.Reads); tries++ {
		a, ok := o.Reads[o.operand]()
		if ok {
			o.fetched++
			o.inOperand++
			if o.inOperand >= BatchBlocks {
				o.inOperand = 0
				o.operand = (o.operand + 1) % len(o.Reads)
			}
			return a, true
		}
		// Iterator dry: move to the next operand stream.
		o.inOperand = 0
		o.operand = (o.operand + 1) % len(o.Reads)
	}
	o.exhausted = true
	return dram.Addr{}, false
}

// batchReads returns reads per full batch across all operands.
func (o *Op) batchReads() int { return len(o.Reads) * BatchBlocks }
