package apps

import (
	"testing"

	"chopim/internal/ndart"
	"chopim/internal/sim"
)

func newSys(t *testing.T) *sim.System {
	t.Helper()
	s, err := sim.New(sim.Default(-1))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCGIterationRuns(t *testing.T) {
	s := newSys(t)
	app, err := NewCG(s.RT, 256)
	if err != nil {
		t.Fatal(err)
	}
	h, err := app.Iterate()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Await(50_000_000, h); err != nil {
		t.Fatal(err)
	}
	st := s.NDA.TotalStats()
	// GEMV dominates: at least the matrix (256x256 floats) is streamed.
	if min := int64(256 * 256 * 4 / 64); st.BlocksRead < min {
		t.Errorf("CG iteration read %d blocks, want >= %d", st.BlocksRead, min)
	}
	if st.BlocksWritten == 0 {
		t.Error("CG's AXPY updates wrote nothing")
	}
}

func TestStreamclusterRuns(t *testing.T) {
	s := newSys(t)
	app, err := NewStreamcluster(s.RT, 2048, 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	h, err := app.Iterate()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Await(50_000_000, h); err != nil {
		t.Fatal(err)
	}
	st := s.NDA.TotalStats()
	if st.BlocksRead == 0 {
		t.Error("SC read nothing")
	}
	// SC is read-dominant.
	if st.BlocksWritten >= st.BlocksRead {
		t.Errorf("SC wrote %d >= read %d; should be read-dominant", st.BlocksWritten, st.BlocksRead)
	}
}

func TestMicroOpsAllKinds(t *testing.T) {
	for _, op := range []string{"dot", "copy", "nrm2", "scal", "axpy", "xmy", "axpby", "axpbypcz"} {
		s := newSys(t)
		app, err := NewMicroPlaced(s.RT, op, 4096, ndart.Private)
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		h, err := app.Iterate()
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		if err := s.Await(20_000_000, h); err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		if s.NDA.TotalStats().BlocksRead == 0 {
			t.Errorf("%s read nothing", op)
		}
	}
}

func TestMicroUnknownOp(t *testing.T) {
	s := newSys(t)
	if _, err := NewMicro(s.RT, "fft", 1024); err == nil {
		t.Error("unknown op accepted")
	}
	if _, err := MicroSpec(s.RT, "fft", 1024); err == nil {
		t.Error("unknown spec accepted")
	}
}

func TestWriteIntensityOrdering(t *testing.T) {
	// COPY writes one block per block read; DOT writes none. The
	// micro-op traffic must reflect Table I semantics.
	ratios := map[string]float64{}
	for _, op := range []string{"dot", "copy"} {
		s := newSys(t)
		app, err := NewMicroPlaced(s.RT, op, 16384, ndart.Private)
		if err != nil {
			t.Fatal(err)
		}
		h, _ := app.Iterate()
		if err := s.Await(20_000_000, h); err != nil {
			t.Fatal(err)
		}
		st := s.NDA.TotalStats()
		ratios[op] = float64(st.BlocksWritten) / float64(st.BlocksRead)
	}
	if ratios["dot"] != 0 {
		t.Errorf("DOT write ratio = %.2f, want 0", ratios["dot"])
	}
	if ratios["copy"] < 0.95 || ratios["copy"] > 1.05 {
		t.Errorf("COPY write ratio = %.2f, want ~1", ratios["copy"])
	}
}

func TestAverageGradientKernel(t *testing.T) {
	s := newSys(t)
	ag, err := NewAverageGradient(s.RT, AverageGradientConfig{N: 512, D: 256})
	if err != nil {
		t.Fatal(err)
	}
	h, err := ag.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Await(100_000_000, h); err != nil {
		t.Fatal(err)
	}
	st := s.NDA.TotalStats()
	// X (512x256 floats = 8192 blocks) is streamed at least twice:
	// GEMV plus the macro AXPY loop.
	xBlocks := int64(512 * 256 * 4 / 64)
	if st.BlocksRead < 2*xBlocks {
		t.Errorf("average gradient read %d blocks, want >= %d (two X passes)", st.BlocksRead, 2*xBlocks)
	}
}
