// On-disk codec for EngineState. An in-flight op serializes as its
// encoded blueprint tag plus progress cursors — the blueprint+cursor
// replay identity the in-memory restore already rebuilds ops from — so
// a decoded engine state feeds the ordinary Restore path unchanged.
// Tags must already be table indices (the ndart SnapEncoder's
// EncodeTag); a snapshot taken without tag encoding cannot be made
// durable and encoding it reports an error.
package nda

import (
	"encoding/json"
	"fmt"

	"chopim/internal/dram"
)

type opWire struct {
	Tag       int
	Fetched   int
	Emitted   int
	Exhausted bool
	PendingWr int
	Pushed    dram.Addr
	HasPushed bool
}

type wbWire struct {
	Addr  dram.Addr
	Owner int
}

type fsmWire struct {
	Ops      []opWire
	WB       []wbWire
	Draining bool
	ReadsRun int
	RNGDraws uint64
	Stats    RankStats
}

type engineWire struct {
	Ranks [][]fsmWire
}

// MarshalJSON encodes the snapshot for the durable checkpoint file.
func (st *EngineState) MarshalJSON() ([]byte, error) {
	w := engineWire{Ranks: make([][]fsmWire, len(st.ranks))}
	for ch, row := range st.ranks {
		w.Ranks[ch] = make([]fsmWire, len(row))
		for ri := range row {
			fs := &row[ri]
			fw := &w.Ranks[ch][ri]
			fw.Draining, fw.ReadsRun = fs.draining, fs.readsRun
			fw.RNGDraws, fw.Stats = fs.rngDraws, fs.stats
			for _, op := range fs.ops {
				tag, ok := op.tag.(int)
				if !ok {
					return nil, fmt.Errorf("nda: op tag %T on ch%d/rk%d is not an encoded index; durable checkpoints need the runtime's tag encoder", op.tag, ch, ri)
				}
				fw.Ops = append(fw.Ops, opWire{
					Tag: tag, Fetched: op.fetched, Emitted: op.emitted,
					Exhausted: op.exhausted, PendingWr: op.pendingWr,
					Pushed: op.pushed, HasPushed: op.hasPushed,
				})
			}
			for _, wb := range fs.wb {
				fw.WB = append(fw.WB, wbWire{Addr: wb.addr, Owner: wb.owner})
			}
		}
	}
	return json.Marshal(w)
}

// UnmarshalJSON rebuilds the snapshot written by MarshalJSON.
func (st *EngineState) UnmarshalJSON(b []byte) error {
	var w engineWire
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	st.ranks = make([][]fsmState, len(w.Ranks))
	for ch, row := range w.Ranks {
		st.ranks[ch] = make([]fsmState, len(row))
		for ri := range row {
			fw := &row[ri]
			fs := &st.ranks[ch][ri]
			fs.draining, fs.readsRun = fw.Draining, fw.ReadsRun
			fs.rngDraws, fs.stats = fw.RNGDraws, fw.Stats
			for _, op := range fw.Ops {
				fs.ops = append(fs.ops, opState{
					tag: op.Tag, fetched: op.Fetched, emitted: op.Emitted,
					exhausted: op.Exhausted, pendingWr: op.PendingWr,
					pushed: op.Pushed, hasPushed: op.HasPushed,
				})
			}
			for _, wb := range fw.WB {
				fs.wb = append(fs.wb, wbState{addr: wb.Addr, owner: wb.Owner})
			}
		}
	}
	return nil
}
