package experiments

import (
	"fmt"

	"chopim/internal/apps"
	"chopim/internal/ndart"
	"chopim/internal/sim"
)

// AblationRow is one design-knob measurement.
type AblationRow struct {
	Study   string
	Setting string
	HostIPC float64
	NDAUtil float64
	Extra   string
}

// AblationLayout isolates the colored data layout (Section III-A):
// aligned operands run copy-free, while the naive layout forces
// host-mediated copies before every DOT — the cost Chopim's layout
// eliminates.
func AblationLayout(opt Options) ([]AblationRow, error) {
	const elems = 256 * 1024 // 1 MiB operands
	settings := []bool{true, false}
	return sharded(opt, len(settings), func(i int) (AblationRow, error) {
		aligned := settings[i]
		cfg := sim.Default(1)
		s, err := opt.newSystem(cfg)
		if err != nil {
			return AblationRow{}, err
		}
		mk := func() (*ndart.Vector, error) {
			if aligned {
				return s.RT.NewVector(elems, ndart.Shared)
			}
			return s.RT.NewVectorUncolored(elems)
		}
		x, err := s.RT.NewVector(elems, ndart.Shared)
		if err != nil {
			return AblationRow{}, err
		}
		y, err := mk()
		if err != nil {
			return AblationRow{}, err
		}
		it := func() (*ndart.Handle, error) { return s.RT.Dot(x, y) }
		res, err := measureConcurrent(s, it,
			opt.withTag(fmt.Sprintf("ablate-layout-aligned=%v", aligned)))
		if err != nil {
			return AblationRow{}, err
		}
		name := "proposed (colored)"
		if !aligned {
			name = "naive (uncolored)"
		}
		return AblationRow{
			Study: "layout", Setting: name,
			HostIPC: res.HostIPC, NDAUtil: res.NDAUtil,
			Extra: fmt.Sprintf("host copies=%d", s.RT.Copies),
		}, nil
	})
}

// AblationReservedBanks sweeps the bank-partition size: more reserved
// banks give the NDAs row-buffer locality across banks at the cost of
// host capacity/parallelism.
func AblationReservedBanks(opt Options) ([]AblationRow, error) {
	counts := []int{1, 2, 4}
	return sharded(opt, len(counts), func(i int) (AblationRow, error) {
		rb := counts[i]
		cfg := sim.Default(1)
		cfg.ReservedBanks = rb
		s, err := opt.newSystem(cfg)
		if err != nil {
			return AblationRow{}, err
		}
		app, err := apps.NewMicroPlaced(s.RT, "dot", (512<<10)/4, ndart.Private)
		if err != nil {
			return AblationRow{}, err
		}
		res, err := measureConcurrent(s, app.Iterate,
			opt.withTag(fmt.Sprintf("ablate-rb-%d", rb)))
		if err != nil {
			return AblationRow{}, err
		}
		return AblationRow{
			Study: "reserved-banks", Setting: fmt.Sprintf("%d banks/rank", rb),
			HostIPC: res.HostIPC, NDAUtil: res.NDAUtil,
		}, nil
	})
}

// AblationWriteBuffer sweeps the PE write-buffer capacity, which sets
// how long NDA writes can be deferred before a drain phase collides with
// host reads.
func AblationWriteBuffer(opt Options) ([]AblationRow, error) {
	caps := []int{16, 64, 128, 256}
	return sharded(opt, len(caps), func(i int) (AblationRow, error) {
		cfg := sim.Default(1)
		cfg.NDA.WriteBufCap = caps[i]
		s, err := opt.newSystem(cfg)
		if err != nil {
			return AblationRow{}, err
		}
		app, err := apps.NewMicroPlaced(s.RT, "copy", (512<<10)/4, ndart.Private)
		if err != nil {
			return AblationRow{}, err
		}
		res, err := measureConcurrent(s, app.Iterate,
			opt.withTag(fmt.Sprintf("ablate-wb-%d", caps[i])))
		if err != nil {
			return AblationRow{}, err
		}
		return AblationRow{
			Study: "write-buffer", Setting: fmt.Sprintf("%d entries", caps[i]),
			HostIPC: res.HostIPC, NDAUtil: res.NDAUtil,
		}, nil
	})
}

// AblationLaunchModel toggles launch-packet modeling at fine
// granularity, quantifying how much of the fine-grain penalty is channel
// occupancy by control writes versus scheduling effects.
func AblationLaunchModel(opt Options) ([]AblationRow, error) {
	settings := []bool{true, false}
	return sharded(opt, len(settings), func(i int) (AblationRow, error) {
		model := settings[i]
		cfg := sim.Default(1)
		cfg.MaxBlocksPerInstr = 16
		cfg.ModelLaunches = model
		s, err := opt.newSystem(cfg)
		if err != nil {
			return AblationRow{}, err
		}
		app, err := apps.NewMicroPlaced(s.RT, "nrm2", (512<<10)/4, ndart.Private)
		if err != nil {
			return AblationRow{}, err
		}
		res, err := measureConcurrent(s, app.Iterate,
			opt.withTag(fmt.Sprintf("ablate-launch-model=%v", model)))
		if err != nil {
			return AblationRow{}, err
		}
		setting := "launch packets modeled"
		if !model {
			setting = "free launches (idealized)"
		}
		return AblationRow{
			Study: "launch-model", Setting: setting,
			HostIPC: res.HostIPC, NDAUtil: res.NDAUtil,
			Extra: fmt.Sprintf("launches=%d", s.RT.Launches),
		}, nil
	})
}

// Ablations runs every ablation study.
func Ablations(opt Options) ([]AblationRow, error) { return figCached(opt, "ablate", ablationRows) }

func ablationRows(opt Options) ([]AblationRow, error) {
	var all []AblationRow
	for _, f := range []func(Options) ([]AblationRow, error){
		AblationLayout, AblationReservedBanks, AblationWriteBuffer, AblationLaunchModel,
	} {
		rows, err := f(opt)
		if err != nil {
			return nil, err
		}
		all = append(all, rows...)
	}
	return all, nil
}
