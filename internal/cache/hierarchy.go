package cache

import "chopim/internal/dram"

// Result classifies one access attempt against the hierarchy.
type Result int

const (
	// Hit: the access completes at the latency returned by Access.
	Hit Result = iota
	// Queued: the access missed to memory; the done callback fires later.
	Queued
	// Stall: no MSHR or controller queue space; the caller must retry.
	Stall
	// Defer: returned only by AccessLocal — the access needs the shared
	// LLC/MSHR layer and must be replayed through Access at the caller's
	// commit point. The hierarchy is left bit-identical to the state
	// AccessLocal found (the same rollback discipline as Stall).
	Defer
)

// Backend is the memory system below the LLC. It operates in DRAM cycles.
type Backend interface {
	// EnqueueRead submits a block read; done is called with the DRAM
	// cycle at which data is available. Returns false if full.
	EnqueueRead(addr uint64, done func(dramDone int64)) bool
	// EnqueueWrite submits a block writeback. Returns false if full.
	EnqueueWrite(addr uint64) bool
}

// Clock converts between the DRAM and CPU clock domains.
type Clock interface {
	CPUOfDRAM(dram int64) int64
}

// HierarchyConfig configures the full cache hierarchy.
type HierarchyConfig struct {
	L1, L2, LLC    Config
	Cores          int
	PrefetchDegree int // LLC stride prefetcher lookahead (0 disables)
}

// DefaultHierarchyConfig returns the paper's Table II cache setup.
func DefaultHierarchyConfig(cores int) HierarchyConfig {
	return HierarchyConfig{
		Cores:          cores,
		L1:             Config{SizeBytes: 32 << 10, Ways: 8, BlockBytes: dram.BlockBytes, LatencyCPU: 4, MSHRs: 12},
		L2:             Config{SizeBytes: 256 << 10, Ways: 4, BlockBytes: dram.BlockBytes, LatencyCPU: 12, MSHRs: 12},
		LLC:            Config{SizeBytes: 8 << 20, Ways: 16, BlockBytes: dram.BlockBytes, LatencyCPU: 38, MSHRs: 48},
		PrefetchDegree: 2,
	}
}

// mshr tracks one outstanding LLC miss and its waiting cores. Nodes are
// pooled on a free list: each carries a fill callback created once (it
// captures only the node), so the steady-state miss path allocates
// nothing.
type mshr struct {
	waiters  []waiter
	core     int
	dirty    bool // a store merged into the in-flight miss
	block    uint64
	prefetch bool // fills the LLC only
	fill     func(dramDone int64)
	next     *mshr // free-list link
}

type waiter struct {
	core int
	slot int // the waiting core's ROB slot (snapshot identity for done)
	done func(cpuDone int64)
}

// strideState is one core's prefetch stream detector.
type strideState struct {
	lastBlock  uint64
	stride     int64
	confidence int
}

// Hierarchy composes per-core L1/L2 caches and the shared LLC.
type Hierarchy struct {
	cfg HierarchyConfig
	l1  []*Cache
	l2  []*Cache
	llc *Cache

	backend Backend
	clock   Clock

	pending    *pendingTable // LLC MSHRs keyed by block (fixed-capacity)
	mshrFree   *mshr         // pooled MSHR nodes
	maxWaiters int           // waiter-slice capacity bound (see NewHierarchy)
	l1Pending  []int         // outstanding misses per core (L1 MSHR limit)
	prefetch   []strideState
	Prefetches int64
	Demand     int64

	// ver counts mutations that can change a blocked retry's outcome:
	// fills (cache content, MSHR and L1-pending occupancy) and every
	// Access that reached the shared LLC/MSHR layer (insertions, MSHR
	// allocation, merges). Together with the controllers' queue-space
	// versions it forms the memory epoch a probe-stalled core's retry
	// outcome depends on: while the epoch is unchanged, the retry
	// provably stalls again (the Stall contract on Access) and may be
	// skipped. Private hits deliberately do NOT advance it — neither
	// pure L1 hits nor L2 hits whose fill cascade stays inside the
	// hitting core's private L1/L2. The L1 argument extends to L2
	// unchanged: such a hit mutates only the hitting core's private
	// caches (LRU order, dirty bits, an L1 castout absorbed by its own
	// L2), none of which a retry probe reads — the probing core is
	// blocked, so the private state a hit touched belongs to a
	// different core, and a stalled access's outcome is decided by LLC
	// content and MSHR/queue occupancy, which only shared-path accesses
	// and fills move. An L2 hit whose cascade spills a dirty L2 victim
	// into the LLC DOES advance ver (it changed LLC content and may
	// have queued a writeback). This narrowing is also what makes L2
	// hits commutable across cores: AccessLocal commits them
	// core-locally with no epoch traffic at all.
	ver uint64

	// deferMiss[core] memoizes, between an AccessLocal that returned
	// Defer and the AccessReplay that commits it, that the access
	// provably misses the core's private L1 and L2 — so the replay can
	// apply the two miss lookups arithmetically instead of re-scanning
	// the sets. Sound because nothing can move a core's private caches
	// in that window: only the core itself touches them, the core is
	// parked on this very access, and the hierarchy performs no
	// cross-core back-invalidation. Transient within one CPU sub-cycle
	// (always false at quiescence, so snapshots ignore it); per-core
	// slots, so parallel AccessLocal calls write disjoint elements.
	deferMiss []bool
}

// Ver returns the hierarchy mutation counter (see ver).
func (h *Hierarchy) Ver() uint64 { return h.ver }

// allocMSHR pops a pooled MSHR node (or grows the pool).
func (h *Hierarchy) allocMSHR(core int, block uint64, dirty, prefetch bool) *mshr {
	m := h.mshrFree
	if m != nil {
		h.mshrFree = m.next
		m.next = nil
	} else {
		m = h.newMSHR()
	}
	m.core, m.block, m.dirty, m.prefetch = core, block, dirty, prefetch
	return m
}

// newMSHR builds one pool node with its fill callback and a waiter
// slice pre-sized to the config bound, so the node never allocates
// again: waiters per MSHR are capped by the per-core L1 MSHR budgets
// (every waiter holds one l1Pending slot).
func (h *Hierarchy) newMSHR() *mshr {
	m := &mshr{waiters: make([]waiter, 0, h.maxWaiters)}
	m.fill = func(dramDone int64) { h.onFill(m, dramDone) }
	return m
}

// freeMSHR returns a node to the pool, dropping waiter references.
func (h *Hierarchy) freeMSHR(m *mshr) {
	for i := range m.waiters {
		m.waiters[i] = waiter{}
	}
	m.waiters = m.waiters[:0]
	m.next = h.mshrFree
	h.mshrFree = m
}

// NewHierarchy builds the hierarchy over the given backend. The MSHR
// machinery is pre-sized to its config bounds — the pending map to the
// LLC MSHR count its occupancy can never exceed, the node pool to that
// same count, and each node's waiter slice to the per-core L1 MSHR
// budgets — so the miss path performs no late growth allocations even
// under slow-warming random footprints (the stall-heavy zero-allocs
// contract).
func NewHierarchy(cfg HierarchyConfig, backend Backend, clock Clock) *Hierarchy {
	h := &Hierarchy{
		cfg:        cfg,
		llc:        New(cfg.LLC),
		backend:    backend,
		clock:      clock,
		pending:    newPendingTable(cfg.LLC.MSHRs),
		maxWaiters: cfg.Cores * cfg.L1.MSHRs,
		l1Pending:  make([]int, cfg.Cores),
		prefetch:   make([]strideState, cfg.Cores),
		deferMiss:  make([]bool, cfg.Cores),
	}
	for i := 0; i < cfg.Cores; i++ {
		h.l1 = append(h.l1, New(cfg.L1))
		h.l2 = append(h.l2, New(cfg.L2))
	}
	for i := 0; i < cfg.LLC.MSHRs; i++ {
		m := h.newMSHR()
		m.next = h.mshrFree
		h.mshrFree = m
	}
	return h
}

// LLC returns the shared last-level cache (for tests and statistics).
func (h *Hierarchy) LLC() *Cache { return h.llc }

// block converts a byte address to a block index.
func (h *Hierarchy) block(addr uint64) uint64 { return addr / uint64(h.cfg.L1.BlockBytes) }

// Access issues one load or store from core. For Hit, the returned
// latency is the CPU cycles until completion. For Queued, done is invoked
// with the completing CPU cycle. Stores that miss allocate (fetch) the
// line but report Hit: the store buffer hides their latency from the
// core, while the fetch still generates memory traffic.
//
// Stall contract (the core-skip safety argument, DESIGN.md §2.4): an
// Access that returns Stall leaves the hierarchy bit-identical to the
// state it found — the three miss lookups it performed are rolled back
// (stall below), the MSHR pool round-trips through its LIFO free list,
// and no queue, counter, or replacement state changes. A blocked core
// therefore re-probes with identical outcome until some other component
// mutates hierarchy or controller state, so skipping its retry cycles
// is exact.
func (h *Hierarchy) Access(core int, addr uint64, write bool, slot int, done func(cpuDone int64)) (Result, int64) {
	b := h.block(addr)
	l1, l2 := h.l1[core], h.l2[core]

	if l1.Lookup(b, write) {
		return Hit, h.cfg.L1.LatencyCPU // private-L1 hit: epoch unmoved (see ver)
	}
	if l2.Lookup(b, write) {
		if h.fillFromL2(core, b, write) {
			h.ver++ // the cascade spilled into the shared LLC
		}
		return Hit, h.cfg.L2.LatencyCPU
	}
	return h.accessShared(core, addr, b, write, slot, done)
}

// accessShared is the shared-layer tail of Access: everything below the
// private L1/L2, entered after both missed (their Lookup effects already
// applied). Split out so AccessReplay can enter it directly when
// AccessLocal already proved — and rolled back — the private misses.
func (h *Hierarchy) accessShared(core int, addr uint64, b uint64, write bool, slot int, done func(cpuDone int64)) (Result, int64) {
	h.ver++ // rolled back on Stall; every deeper outcome mutates shared state
	if h.llc.Lookup(b, write) {
		h.fill(core, b, write, h.l1[core], h.l2[core])
		return Hit, h.cfg.LLC.LatencyCPU
	}

	// LLC miss. Merge into an existing MSHR if one covers the block.
	if m := h.pending.get(b); m != nil {
		if write {
			// The eventual fill will be marked dirty by this store.
			m.dirty = true
			return Hit, h.cfg.LLC.LatencyCPU
		}
		if h.l1Pending[core] >= h.cfg.L1.MSHRs {
			return h.stall(core)
		}
		h.l1Pending[core]++
		m.waiters = append(m.waiters, waiter{core: core, slot: slot, done: done})
		return Queued, 0
	}

	if h.pending.len() >= h.cfg.LLC.MSHRs {
		return h.stall(core)
	}
	if !write && h.l1Pending[core] >= h.cfg.L1.MSHRs {
		return h.stall(core)
	}

	m := h.allocMSHR(core, b, write, false)
	if !write {
		h.l1Pending[core]++
		m.waiters = append(m.waiters, waiter{core: core, slot: slot, done: done})
	}
	if !h.backend.EnqueueRead(addr, m.fill) {
		if !write {
			h.l1Pending[core]--
		}
		h.freeMSHR(m)
		return h.stall(core)
	}
	h.pending.put(b, m)
	h.Demand++
	h.maybePrefetch(core, addr)
	if write {
		return Hit, h.cfg.L1.LatencyCPU
	}
	return Queued, 0
}

// stall rolls back the three miss lookups a stalling Access performed
// (every Stall path misses L1, L2, and the LLC first) and reports Stall.
// See the Stall contract on Access.
func (h *Hierarchy) stall(core int) (Result, int64) {
	h.ver--
	h.l1[core].unMiss()
	h.l2[core].unMiss()
	h.llc.unMiss()
	return Stall, 0
}

// AccessLocal is the core-local half of the split Access API used by
// the parallel CPU front-end (DESIGN.md §2.10). It attempts core's
// access against the private L1/L2 only and commits it there when it
// provably never touches shared state: a pure L1 hit, or an L2 hit
// whose fill cascade stays inside the core's own L1/L2 (classified by
// a side-effect-free probe of both victim chains BEFORE any mutation).
// Every other access — LLC probe, MSHR merge/alloc, Stall
// classification, backend read, or an L2 hit whose cascade would spill
// a dirty victim into the LLC — returns Defer with the hierarchy
// bit-identical to the state it found; the caller replays it through
// Access at its commit point. Because committed-local outcomes mutate
// only h.l1[core] and h.l2[core] and never move ver, distinct cores'
// AccessLocal calls commute with each other and with any other core's
// full Access — the soundness base of the core-sharded sub-cycle.
func (h *Hierarchy) AccessLocal(core int, addr uint64, write bool) (Result, int64) {
	b := h.block(addr)
	l1 := h.l1[core]
	if l1.Lookup(b, write) {
		return Hit, h.cfg.L1.LatencyCPU
	}
	l2 := h.l2[core]
	if !l2.Contains(b) {
		l1.unMiss()
		h.deferMiss[core] = true // both private levels provably miss
		return Defer, 0
	}
	if !h.l2FillPrivate(core, b) {
		l1.unMiss()
		return Defer, 0 // L2 hit with a spilling cascade: replay in full
	}
	l2.Lookup(b, write) // contained above, so this commits a hit
	if h.fillFromL2(core, b, write) {
		panic("cache: private-classified L2 fill reached the LLC")
	}
	return Hit, h.cfg.L2.LatencyCPU
}

// AccessReplay commits a deferred access: it is Access, exactly, for
// the one access an immediately preceding AccessLocal returned Defer
// for. When that AccessLocal proved the private levels miss (deferMiss),
// the replay applies the two miss lookups arithmetically and enters the
// shared tail directly — the probes are guaranteed to repeat their
// outcome, so re-scanning the sets would only burn the cycles the split
// front-end is trying to save. Otherwise (an L2 hit whose cascade
// spills into the LLC) it falls through to the full Access.
func (h *Hierarchy) AccessReplay(core int, addr uint64, write bool, slot int, done func(cpuDone int64)) (Result, int64) {
	if !h.deferMiss[core] {
		return h.Access(core, addr, write, slot, done)
	}
	h.deferMiss[core] = false
	h.l1[core].missLookup()
	h.l2[core].missLookup()
	return h.accessShared(core, addr, h.block(addr), write, slot, done)
}

// l2FillPrivate reports whether an L2 hit on b would keep its fill
// cascade inside core's private L1/L2: the L1's victim for b is clean
// (cascade ends at the L1 insert) or lands in the core's own L2
// without spilling a dirty L2 victim. The L2 victim probe treats b as
// MRU because the real cascade runs after the L2 hit touches b.
func (h *Hierarchy) l2FillPrivate(core int, b uint64) bool {
	v, d := h.l1[core].dirtyVictim(b, 0, false)
	if !d {
		return true
	}
	_, d = h.l2[core].dirtyVictim(v, b, true)
	return !d
}

// fillFromL2 propagates an L2 hit on b into core's L1, cascading the
// castouts (exactly fill(core, b, dirty, l1, nil)), and reports whether
// the cascade reached the shared LLC — the ver classification Access
// and AccessLocal both key on.
func (h *Hierarchy) fillFromL2(core int, b uint64, dirty bool) bool {
	if v, vd := h.l1[core].Insert(b, dirty); vd {
		if ev, evd := h.l2[core].Insert(v, true); evd {
			if ev2, evd2 := h.llc.Insert(ev, true); evd2 {
				h.writeback(ev2)
			}
			return true
		}
	}
	return false
}

// onFill handles data arriving from memory for the MSHR's block at DRAM
// cycle dramDone. Demand fills propagate through every level; prefetch
// fills install in the LLC only. Waiters complete at the equivalent CPU
// cycle plus the LLC-to-core fill latency, releasing their L1 MSHR.
func (h *Hierarchy) onFill(m *mshr, dramDone int64) {
	h.ver++
	h.pending.del(m.block)
	if m.prefetch {
		if v, vd := h.llc.Insert(m.block, m.dirty); vd {
			h.writeback(v)
		}
	} else {
		h.insertAll(m.core, m.block, m.dirty)
	}
	cpuDone := h.clock.CPUOfDRAM(dramDone) + h.cfg.LLC.LatencyCPU
	for _, w := range m.waiters {
		h.l1Pending[w.core]--
		if w.done != nil {
			w.done(cpuDone)
		}
	}
	h.freeMSHR(m)
}

// fill propagates a block into upper levels after a lower-level hit.
func (h *Hierarchy) fill(core int, b uint64, dirty bool, l1, l2 *Cache) {
	if l2 != nil {
		if v, vd := l2.Insert(b, false); vd {
			if ev, evd := h.llc.Insert(v, true); evd {
				h.writeback(ev)
			}
		}
	}
	if v, vd := l1.Insert(b, dirty); vd {
		if ev, evd := h.l2[core].Insert(v, true); evd {
			if ev2, evd2 := h.llc.Insert(ev, true); evd2 {
				h.writeback(ev2)
			}
		}
	}
}

// insertAll fills a block into LLC, L2, and L1, cascading evictions.
func (h *Hierarchy) insertAll(core int, b uint64, dirty bool) {
	if v, vd := h.llc.Insert(b, dirty); vd {
		h.writeback(v)
	}
	if v, vd := h.l2[core].Insert(b, false); vd {
		if ev, evd := h.llc.Insert(v, true); evd {
			h.writeback(ev)
		}
	}
	if v, vd := h.l1[core].Insert(b, dirty); vd {
		if ev, evd := h.l2[core].Insert(v, true); evd {
			if ev2, evd2 := h.llc.Insert(ev, true); evd2 {
				h.writeback(ev2)
			}
		}
	}
}

// writeback sends a dirty LLC victim to memory. Write-queue overflow is
// absorbed by the backend (modeling an unbounded eviction buffer that the
// controller drains under its watermark policy).
func (h *Hierarchy) writeback(block uint64) {
	h.backend.EnqueueWrite(block * uint64(h.cfg.L1.BlockBytes))
}

// WarmAccess performs one access at functional fidelity for sampled-
// mode fast-forward (DESIGN.md §2.11). It maintains the long-lived
// shared state — LLC tags, LRU order, dirty bits — instantly: no MSHR
// is allocated, no latency accrues, and nothing reaches the backend.
// Dirty victims the exact path would have written back are handed to
// sink instead (nil drops them), so the caller can warm DRAM row-buffer
// state without bloating controller write queues mid-jump. The private
// L1/L2 are deliberately NOT warmed (the SMARTS compromise): their
// residency is hundreds of lines, so each window's detailed warm-up
// re-trains them from the warm LLC in well under the warm-up budget,
// and skipping the per-access three-level lookup/fill cascade is what
// makes fast-forward cheap enough to pay off. Blocks with in-flight
// MSHRs may be warm-filled early; the eventual onFill re-insert is an
// in-place LRU refresh, so the frozen miss completes harmlessly in the
// next detailed window. The stride prefetcher is deliberately not
// trained (its state is timing-coupled) and ver is not advanced per
// access — callers invalidate the probe epoch once per jump via
// AdvanceVer. Reports whether the access hit in the LLC (fidelity
// statistics; a warm "miss" is what touches DRAM row state).
func (h *Hierarchy) WarmAccess(core int, addr uint64, write bool, sink func(addr uint64)) bool {
	b := h.block(addr)
	if h.llc.Lookup(b, write) {
		return true
	}
	if v, vd := h.llc.Insert(b, write); vd && sink != nil {
		sink(v * uint64(h.cfg.L1.BlockBytes))
	}
	return false
}

// AdvanceVer advances the mutation counter. The fast-forward jump calls
// it once after warming: warm accesses move cache content without
// touching ver (no core is probing mid-jump), so the epoch a
// probe-stalled core stashed before the jump must be invalidated before
// detailed execution resumes.
func (h *Hierarchy) AdvanceVer() { h.ver++ }

// maybePrefetch trains the per-core stride detector on LLC demand misses
// and issues prefetches when confident.
func (h *Hierarchy) maybePrefetch(core int, addr uint64) {
	if h.cfg.PrefetchDegree == 0 {
		return
	}
	b := h.block(addr)
	st := &h.prefetch[core]
	stride := int64(b) - int64(st.lastBlock)
	if stride == st.stride && stride != 0 {
		if st.confidence < 4 {
			st.confidence++
		}
	} else {
		st.confidence = 0
		st.stride = stride
	}
	st.lastBlock = b
	if st.confidence < 2 {
		return
	}
	for d := 1; d <= h.cfg.PrefetchDegree; d++ {
		pb := int64(b) + st.stride*int64(d)
		if pb < 0 {
			continue
		}
		pblock := uint64(pb)
		if h.llc.Contains(pblock) {
			continue
		}
		if h.pending.get(pblock) != nil {
			continue
		}
		if h.pending.len() >= h.cfg.LLC.MSHRs {
			return
		}
		m := h.allocMSHR(core, pblock, false, true)
		paddr := pblock * uint64(h.cfg.L1.BlockBytes)
		if !h.backend.EnqueueRead(paddr, m.fill) {
			h.freeMSHR(m)
			return
		}
		h.pending.put(pblock, m)
		h.Prefetches++
	}
}
