package cache

import (
	"testing"
	"testing/quick"
)

func smallConfig() Config {
	return Config{SizeBytes: 4096, Ways: 4, BlockBytes: 64, LatencyCPU: 4, MSHRs: 4}
}

func TestConfigValidate(t *testing.T) {
	if err := smallConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := smallConfig()
	bad.SizeBytes = 4096 + 64
	if err := bad.Validate(); err == nil {
		t.Error("accepted non-divisible size")
	}
	bad = smallConfig()
	bad.Ways = 0
	if err := bad.Validate(); err == nil {
		t.Error("accepted zero ways")
	}
}

func TestLookupInsert(t *testing.T) {
	c := New(smallConfig())
	if c.Lookup(1, false) {
		t.Fatal("hit in empty cache")
	}
	c.Insert(1, false)
	if !c.Lookup(1, false) {
		t.Fatal("miss after insert")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", c.Hits, c.Misses)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(smallConfig()) // 16 sets, 4 ways
	sets := uint64(16)
	// Fill one set with 4 blocks, touch the first, insert a 5th:
	// the least-recently-used (second) must be evicted.
	blocks := []uint64{0, sets, 2 * sets, 3 * sets}
	for _, b := range blocks {
		c.Insert(b, false)
	}
	c.Lookup(0, false) // refresh block 0
	c.Insert(4*sets, false)
	if !c.Contains(0) {
		t.Error("recently-used block evicted")
	}
	if c.Contains(sets) {
		t.Error("LRU block survived eviction")
	}
}

func TestDirtyVictimReported(t *testing.T) {
	c := New(smallConfig())
	sets := uint64(16)
	c.Insert(0, true) // dirty
	for i := uint64(1); i <= 4; i++ {
		v, d := c.Insert(i*sets, false)
		if i < 4 {
			if d {
				t.Fatalf("unexpected dirty victim at fill %d", i)
			}
			continue
		}
		if !d || v != 0 {
			t.Errorf("victim = (%d, %v), want (0, true)", v, d)
		}
	}
}

func TestWriteMarksDirty(t *testing.T) {
	c := New(smallConfig())
	c.Insert(7, false)
	c.Lookup(7, true) // store hit dirties the line
	if d := c.Invalidate(7); !d {
		t.Error("store hit did not mark line dirty")
	}
}

func TestInvalidateMissingBlock(t *testing.T) {
	c := New(smallConfig())
	if c.Invalidate(99) {
		t.Error("invalidate of absent block reported dirty")
	}
}

func TestInsertExistingUpdatesNotEvicts(t *testing.T) {
	c := New(smallConfig())
	c.Insert(3, false)
	v, d := c.Insert(3, true)
	if d || v != 0 {
		t.Errorf("re-insert evicted (%d, %v)", v, d)
	}
	if !c.Contains(3) {
		t.Error("block lost on re-insert")
	}
}

// Property: a cache never holds more distinct blocks than its capacity.
func TestCapacityInvariant(t *testing.T) {
	f := func(seeds []uint64) bool {
		c := New(smallConfig())
		for _, s := range seeds {
			c.Insert(s%1024, s%2 == 0)
		}
		count := 0
		for b := uint64(0); b < 1024; b++ {
			if c.Contains(b) {
				count++
			}
		}
		return count <= 64 // 4 KiB / 64 B
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: after Insert(b), Lookup(b) hits until b is evicted by
// inserts into the same set.
func TestInsertThenLookupHits(t *testing.T) {
	f := func(b uint64) bool {
		c := New(smallConfig())
		c.Insert(b, false)
		return c.Lookup(b, false)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
