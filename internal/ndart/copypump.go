package ndart

import "chopim/internal/dram"

// copyJob streams one vector into another through the host memory
// controllers with cache bypass: block reads from src, block writes to
// dst on read completion. This is the host-mediated data movement that
// Chopim's colored layout avoids for aligned operands, and the exchange
// path used by collaborative applications (Section IV).
type copyJob struct {
	src, dst *Vector
	next     int // next block index to read
	inflight int
	done     func()
	finished bool
}

// copyPump drives copy jobs, keeping a bounded number of blocks in
// flight per cycle so copies contend with (rather than teleport past)
// regular traffic.
type copyPump struct {
	jobs []*copyJob
}

// maxInflight bounds outstanding copy reads (a host DMA engine's MLP).
const maxInflight = 16

func (p *copyPump) add(j *copyJob) { p.jobs = append(p.jobs, j) }

// Busy reports whether copies are still in flight.
func (p *copyPump) Busy() bool { return len(p.jobs) > 0 }

func (p *copyPump) tick(rt *Runtime, now int64) {
	if len(p.jobs) == 0 {
		return
	}
	j := p.jobs[0]
	total := int((j.src.bytes + dram.BlockBytes - 1) / dram.BlockBytes)
	for j.next < total && j.inflight < maxInflight {
		srcAddr := j.src.base + uint64(j.next)*dram.BlockBytes
		dstAddr := j.dst.base + uint64(j.next)*dram.BlockBytes
		ch := rt.mapper.Decode(srcAddr).Channel
		ok := rt.mcs[ch].EnqueueRead(srcAddr, now, func(int64) {
			j.inflight--
			dch := rt.mapper.Decode(dstAddr).Channel
			rt.mcs[dch].EnqueueWrite(dstAddr, rt.now())
		})
		if !ok {
			break
		}
		j.inflight++
		j.next++
	}
	if j.next >= total && j.inflight == 0 && !j.finished {
		j.finished = true
		p.jobs = p.jobs[1:]
		if j.done != nil {
			j.done()
		}
	}
}

// HostCopy schedules a cache-bypassing host copy of src into dst (the
// data-exchange step of delayed-update SVRG uses this with a fence).
// done fires when all blocks have been read and their writes enqueued.
func (rt *Runtime) HostCopy(dst, src *Vector, done func()) {
	rt.copier.add(&copyJob{src: src, dst: dst, done: done})
}

// CopierBusy reports whether host-mediated copies are outstanding.
func (rt *Runtime) CopierBusy() bool { return rt.copier.Busy() }
