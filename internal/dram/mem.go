package dram

import "fmt"

// bankState tracks one bank's row state and per-bank timing horizons.
// A horizon is the earliest cycle at which the named command may issue.
type bankState struct {
	open bool
	row  int

	nextACT int64
	nextPRE int64
	nextRD  int64
	nextWR  int64

	// Cached earliest-issue horizons folding the bank-group, rank, tFAW,
	// and refresh components (see rankState.horizons). Valid while
	// hzStamp equals the owning rank's stamp; every Issue touching the
	// rank bumps the stamp, invalidating all of its banks at once. With
	// the cache warm, CanIssue in a scheduler inner loop is a structural
	// check plus one int64 compare.
	hzStamp  int64
	readyACT int64
	readyPRE int64
	readyRD  int64
	readyWR  int64
}

// bgState tracks bank-group level horizons (tCCD_L, tRRD_L, tWTR_L).
type bgState struct {
	nextACT int64
	nextRD  int64
	nextWR  int64
}

// rankState tracks rank-level horizons shared by host and NDA accesses:
// cross-bank-group column spacing (tCCD_S), activation spacing (tRRD_S),
// the tFAW window, and internal data-path read/write turnaround.
type rankState struct {
	banks []bankState // flat: bg*BanksPerGroup + bank
	bgs   []bgState

	nextACT int64
	nextRD  int64
	nextWR  int64

	faw    []int64 // issue cycles of the last 4 ACTs (ring buffer)
	fawIdx int

	// stamp versions the rank's timing state for the per-bank horizon
	// cache. It starts at 1 (so zero-valued bank caches are invalid) and
	// is bumped by every Issue to the rank.
	stamp int64

	// rowStamp versions the rank's bank ROW state: it is bumped only by
	// commands that open or close a row (ACT, PRE) — the only commands
	// that can change which FR-FCFS candidates a bank has, or move a
	// candidate's earliest-issue cycle EARLIER (an ACT reassigns the
	// bank's column/PRE horizons outright). Column commands and REF only
	// push existing horizons forward, so conclusions of the form "bank b
	// has no candidate ready before cycle T" (the mc calendar's bucket
	// keys) stay sound across them and may be revalidated lazily.
	rowStamp int64

	// dataBusyUntil is when the rank's data pins/internal IO finish the
	// current burst. Used for statistics and NDA idle detection.
	dataBusyUntil int64
	refreshUntil  int64
}

// horizons returns the bank's cached earliest-issue horizons, recomputing
// them from the authoritative per-bank/bank-group/rank state when any
// command has issued to the rank since the last computation.
func (rk *rankState) horizons(t Timing, bgIdx, flat int) *bankState {
	b := &rk.banks[flat]
	if b.hzStamp == rk.stamp {
		return b
	}
	bg := &rk.bgs[bgIdx]
	ru := rk.refreshUntil
	b.readyACT = max(b.nextACT, bg.nextACT, rk.nextACT, rk.fawReady(t), ru)
	b.readyPRE = max(b.nextPRE, ru)
	b.readyRD = max(b.nextRD, bg.nextRD, rk.nextRD, ru)
	b.readyWR = max(b.nextWR, bg.nextWR, rk.nextWR, ru)
	b.hzStamp = rk.stamp
	return b
}

// chanState tracks channel-level constraints that apply only to external
// (host) accesses: the shared data bus and rank-switch penalties.
type chanState struct {
	ranks []rankState

	// Last external column command, for bus turnaround and tRTRS.
	lastColValid bool
	lastColRead  bool
	lastColRank  int
	lastColCycle int64

	dataBusyUntil int64
	nextRefresh   int64

	// Cached channel-bus horizons for external column commands, split by
	// whether the target rank matches the last column's rank. colStamp is
	// bumped by every external column issue; extStamp tracks the cached
	// values (colStamp starts at 1 so the zero cache is invalid).
	colStamp  int64
	extStamp  int64
	extRDSame int64
	extRDDiff int64
	extWRSame int64
	extWRDiff int64
}

// extCol returns the earliest cycle the channel bus admits an external
// column command of the given kind to the given rank (the channelColOK
// constraints folded into a single horizon).
func (ch *chanState) extCol(cmd Command, rank int, t Timing) int64 {
	if ch.extStamp != ch.colStamp {
		busy := ch.dataBusyUntil
		if !ch.lastColValid {
			ch.extRDSame = busy - int64(t.CL)
			ch.extRDDiff = ch.extRDSame
			ch.extWRSame = busy - int64(t.CWL)
			ch.extWRDiff = ch.extWRSame
		} else {
			ch.extRDSame = busy - int64(t.CL)
			ch.extRDDiff = busy + int64(t.RTRS) - int64(t.CL)
			if !ch.lastColRead {
				// Write-to-read across ranks: bus-only constraint.
				ch.extRDDiff = max(ch.extRDDiff, ch.lastColCycle+int64(t.CWL+t.BL+t.RTRS-t.CL))
			}
			ch.extWRSame = busy - int64(t.CWL)
			ch.extWRDiff = busy + int64(t.RTRS) - int64(t.CWL)
			if ch.lastColRead {
				// Read-to-write bus turnaround, any rank.
				rtw := ch.lastColCycle + int64(t.ReadToWrite())
				ch.extWRSame = max(ch.extWRSame, rtw)
				ch.extWRDiff = max(ch.extWRDiff, rtw)
			}
		}
		ch.extStamp = ch.colStamp
	}
	same := !ch.lastColValid || ch.lastColRank == rank
	if cmd == CmdRD {
		if same {
			return ch.extRDSame
		}
		return ch.extRDDiff
	}
	if same {
		return ch.extWRSame
	}
	return ch.extWRDiff
}

// CmdCounts aggregates issued-command counters for energy and
// statistics. RD/WR are external (host) column commands; NDARD/NDAWR
// are internal (NDA) column commands.
type CmdCounts struct {
	ACT, PRE     int64
	RD, WR       int64
	NDARD, NDAWR int64
}

// add accumulates o into c.
func (c *CmdCounts) add(o CmdCounts) {
	c.ACT += o.ACT
	c.PRE += o.PRE
	c.RD += o.RD
	c.WR += o.WR
	c.NDARD += o.NDARD
	c.NDAWR += o.NDAWR
}

// Mem is the DDR4 memory system state machine. It validates and applies
// command timing; it does not schedule. Controllers (host and NDA side)
// call CanIssue/Issue.
//
// All mutable state — timing horizons, row state, command counters, and
// the chVer versions — is held per channel, and Issue touches only the
// addressed channel's share. Channels are therefore free of write
// sharing, which is what lets the sim package tick channel domains on
// concurrent workers.
type Mem struct {
	Geom Geometry
	T    Timing

	channels []chanState

	// cnts holds per-channel command counters (see CmdCounts); sharded
	// so concurrent channel domains never write the same counter.
	cnts []CmdCounts

	// chVer counts issued commands per channel: a version for any
	// conclusion cached from timing state (the system's per-controller
	// wake cache keys on it, since NDA commands move horizons the
	// channel's controller schedules against). Channels are timing-
	// independent, so one channel's traffic never invalidates another's
	// cached conclusions. It advances on every Issue and nothing else.
	chVer []uint64
}

// Counts sums the per-channel command counters.
func (m *Mem) Counts() CmdCounts {
	var t CmdCounts
	for i := range m.cnts {
		t.add(m.cnts[i])
	}
	return t
}

// ChannelCounts returns one channel's command counters.
func (m *Mem) ChannelCounts(ch int) CmdCounts { return m.cnts[ch] }

// New builds a Mem with the given geometry and timing. It panics on
// invalid configuration; configurations are programmer-supplied constants.
// Sweep drivers, whose geometry/timing arrive from user-reachable config,
// use NewChecked.
func New(g Geometry, t Timing) *Mem {
	m, err := NewChecked(g, t)
	if err != nil {
		panic(err)
	}
	return m
}

// NewChecked is New returning invalid geometry or timing as an error
// instead of panicking.
func NewChecked(g Geometry, t Timing) (*Mem, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	m := &Mem{Geom: g, T: t, channels: make([]chanState, g.Channels),
		cnts: make([]CmdCounts, g.Channels), chVer: make([]uint64, g.Channels)}
	for c := range m.channels {
		ch := &m.channels[c]
		ch.ranks = make([]rankState, g.Ranks)
		ch.colStamp = 1
		for r := range ch.ranks {
			rk := &ch.ranks[r]
			rk.banks = make([]bankState, g.BanksPerRank())
			rk.bgs = make([]bgState, g.BankGroups)
			rk.faw = make([]int64, 4)
			rk.stamp = 1
			rk.rowStamp = 1
			for i := range rk.faw {
				rk.faw[i] = -(1 << 40) // far past: window initially empty
			}
		}
	}
	return m, nil
}

func (m *Mem) rank(a Addr) *rankState { return &m.channels[a.Channel].ranks[a.Rank] }
func (m *Mem) bank(a Addr) *bankState { return &m.rank(a).banks[a.GlobalBank(m.Geom)] }
func (m *Mem) checkAddr(a Addr) {
	g := m.Geom
	if a.Channel < 0 || a.Channel >= g.Channels || a.Rank < 0 || a.Rank >= g.Ranks ||
		a.BankGroup < 0 || a.BankGroup >= g.BankGroups || a.Bank < 0 || a.Bank >= g.BanksPerGroup ||
		a.Row < 0 || a.Row >= g.Rows || a.Col < 0 || a.Col >= g.Cols {
		panic(fmt.Sprintf("dram: address out of range: %+v for geometry %+v", a, g))
	}
}

// OpenRow reports whether the addressed bank is open and, if so, which row.
func (m *Mem) OpenRow(a Addr) (row int, open bool) {
	b := m.bank(a)
	return b.row, b.open
}

// WarmOpen sets the addressed bank's row state — open at a.Row — at
// functional fidelity, modeling the activation the exact path would
// have performed for this access during a sampled-mode fast-forward
// jump (DESIGN.md §2.11). Timing horizons are left alone: the jump
// lands past every pre-jump horizon, so they are already dead. The
// rank's stamp, its rowStamp, and the channel command version all
// advance so every cached scheduler conclusion derived from the old
// row state (per-bank horizon caches, mc calendar keys, NDA sleep
// bounds) is invalidated before detailed execution resumes.
func (m *Mem) WarmOpen(a Addr) {
	m.checkAddr(a)
	rk := m.rank(a)
	b := &rk.banks[a.GlobalBank(m.Geom)]
	b.open = true
	b.row = a.Row
	rk.stamp++
	rk.rowStamp++
	m.chVer[a.Channel]++
}

// OpenBanks counts banks currently holding an open row, across all
// channels and ranks. A coarse row-state summary for warm-state
// fidelity checks of the sampled fast-forward path.
func (m *Mem) OpenBanks() int {
	n := 0
	for c := range m.channels {
		for r := range m.channels[c].ranks {
			banks := m.channels[c].ranks[r].banks
			for b := range banks {
				if banks[b].open {
					n++
				}
			}
		}
	}
	return n
}

// RankDataBusyUntil returns the cycle at which the rank's data path is free.
func (m *Mem) RankDataBusyUntil(channel, rank int) int64 {
	return m.channels[channel].ranks[rank].dataBusyUntil
}

// ChannelDataBusyUntil returns the cycle at which the channel bus is free.
func (m *Mem) ChannelDataBusyUntil(channel int) int64 {
	return m.channels[channel].dataBusyUntil
}

// ChVer returns the channel's issued-command version (see chVer).
func (m *Mem) ChVer(channel int) uint64 { return m.chVer[channel] }

// RankStamp returns a version counter for the rank's timing and row
// state: it advances on every command issued to the rank and on nothing
// else. A scheduler caching per-bank conclusions ("request r's column is
// ready at cycle T", "bank b needs an ACT") may reuse them while the
// stamp is unchanged — commands to other ranks cannot move this rank's
// bank, bank-group, rank, tFAW, or refresh horizons. Channel-bus
// constraints are NOT covered; combine with ExtColReady.
func (m *Mem) RankStamp(channel, rank int) int64 {
	return m.channels[channel].ranks[rank].stamp
}

// RowStamp returns a version counter for the rank's bank row state: it
// advances exactly when a row opens or closes (ACT or PRE issued to the
// rank) and on nothing else. See rankState.rowStamp for the staleness
// contract this grants schedulers: while it is unchanged, no bank of
// the rank gained a candidate, and no candidate's earliest-issue cycle
// moved earlier — every other command only pushes horizons forward.
func (m *Mem) RowStamp(channel, rank int) int64 {
	return m.channels[channel].ranks[rank].rowStamp
}

// BankSched returns the addressed bank's row state together with every
// cached rank-side earliest-issue horizon (see rankState.horizons) in
// one call — the scheduler's per-bank recompute input. Horizons are raw
// (not clamped to any current cycle); callers compare them against now.
// Channel-bus constraints for external columns are separate
// (ExtColReady).
func (m *Mem) BankSched(channel, rank, bankGroup, flat int) (row int, open bool, readyACT, readyPRE, readyRD, readyWR int64) {
	b := m.channels[channel].ranks[rank].horizons(m.T, bankGroup, flat)
	return b.row, b.open, b.readyACT, b.readyPRE, b.readyRD, b.readyWR
}

// ExtColReady returns the earliest cycle the channel bus admits an
// external column command of the given kind to the given rank: the
// bus-occupancy, tRTRS rank-switch, and read/write turnaround horizons
// folded into one value (O(1), cached per channel). Together with the
// rank-side bound from NextIssue(cmd, a, now, true) it reconstructs the
// full external column horizon.
func (m *Mem) ExtColReady(channel int, cmd Command, rank int) int64 {
	return m.channels[channel].extCol(cmd, rank, m.T)
}

// fawReady returns the earliest cycle an ACT may issue under tFAW.
func (r *rankState) fawReady(t Timing) int64 {
	// The ring holds the last 4 ACT times; the next slot is the oldest.
	return r.faw[r.fawIdx] + int64(t.FAW)
}

// CanIssue reports whether cmd to address a may legally issue at cycle now.
// internal marks NDA-side column accesses, which skip channel-bus checks.
//
// The check runs off the per-bank horizon cache: a structural test on the
// bank's row state plus int64 compares against cached earliest-issue
// cycles. canIssueRef is the uncached oracle the cache is verified
// against (TestCanIssueCacheMatchesReference).
func (m *Mem) CanIssue(cmd Command, a Addr, now int64, internal bool) bool {
	m.checkAddr(a)
	ch := &m.channels[a.Channel]
	rk := &ch.ranks[a.Rank]
	flat := a.GlobalBank(m.Geom)

	switch cmd {
	case CmdACT:
		if rk.banks[flat].open {
			return false
		}
		return now >= rk.horizons(m.T, a.BankGroup, flat).readyACT

	case CmdPRE:
		if !rk.banks[flat].open {
			return false
		}
		return now >= rk.horizons(m.T, a.BankGroup, flat).readyPRE

	case CmdRD, CmdWR:
		if b := &rk.banks[flat]; !b.open || b.row != a.Row {
			return false
		}
		hz := rk.horizons(m.T, a.BankGroup, flat)
		if cmd == CmdRD {
			if now < hz.readyRD {
				return false
			}
		} else if now < hz.readyWR {
			return false
		}
		if internal {
			return true
		}
		return now >= ch.extCol(cmd, a.Rank, m.T)

	case CmdREF:
		if now < rk.refreshUntil {
			return false
		}
		// All banks of the rank must be precharged.
		for i := range rk.banks {
			if rk.banks[i].open {
				return false
			}
		}
		return now >= rk.nextACT
	}
	return false
}

// canIssueRef is the original uncached CanIssue, kept as the oracle for
// the horizon-cache equivalence tests.
func (m *Mem) canIssueRef(cmd Command, a Addr, now int64, internal bool) bool {
	m.checkAddr(a)
	ch := &m.channels[a.Channel]
	rk := &ch.ranks[a.Rank]
	bg := &rk.bgs[a.BankGroup]
	b := &rk.banks[a.GlobalBank(m.Geom)]
	if now < rk.refreshUntil {
		return false
	}

	switch cmd {
	case CmdACT:
		if b.open {
			return false
		}
		if now < b.nextACT || now < bg.nextACT || now < rk.nextACT {
			return false
		}
		return now >= rk.fawReady(m.T)

	case CmdPRE:
		if !b.open {
			return false
		}
		return now >= b.nextPRE

	case CmdRD, CmdWR:
		if !b.open || b.row != a.Row {
			return false
		}
		var bankNext, bgNext, rkNext int64
		if cmd == CmdRD {
			bankNext, bgNext, rkNext = b.nextRD, bg.nextRD, rk.nextRD
		} else {
			bankNext, bgNext, rkNext = b.nextWR, bg.nextWR, rk.nextWR
		}
		if now < bankNext || now < bgNext || now < rkNext {
			return false
		}
		if internal {
			return true
		}
		return m.channelColOK(ch, cmd, a, now)

	case CmdREF:
		// All banks of the rank must be precharged.
		for i := range rk.banks {
			if rk.banks[i].open {
				return false
			}
		}
		return now >= rk.nextACT
	}
	return false
}

// channelColOK checks external data-bus constraints: burst overlap on the
// shared bus, tRTRS rank switches, and read/write bus turnaround.
func (m *Mem) channelColOK(ch *chanState, cmd Command, a Addr, now int64) bool {
	t := m.T
	var start int64
	if cmd == CmdRD {
		start = now + int64(t.CL)
	} else {
		start = now + int64(t.CWL)
	}
	busFree := ch.dataBusyUntil
	if ch.lastColValid && ch.lastColRank != a.Rank {
		busFree += int64(t.RTRS)
	}
	if start < busFree {
		return false
	}
	if !ch.lastColValid {
		return true
	}
	gap := now - ch.lastColCycle
	switch {
	case ch.lastColRead && cmd == CmdWR:
		// Read-to-write bus turnaround, any rank.
		if gap < int64(t.ReadToWrite()) {
			return false
		}
	case !ch.lastColRead && cmd == CmdRD && ch.lastColRank != a.Rank:
		// Write-to-read across ranks: bus constraint only (same-rank
		// WTR is enforced by rank state).
		if gap < int64(t.CWL+t.BL+t.RTRS-t.CL) {
			return false
		}
	}
	return true
}

// Never is a sentinel cycle meaning "no upcoming event": components
// return it from NextEvent/NextIssue when they cannot act without new
// external stimulus.
const Never = int64(^uint64(0) >> 1)

// NextIssue returns the earliest cycle t >= now at which CanIssue(cmd,
// a, t, internal) can become true, assuming no further commands issue to
// the memory in the meantime. The bound is exact for column commands on
// both the internal (NDA) and external (host) paths — channel-bus
// turnaround and tRTRS are folded in for external accesses. Commands
// that are structurally blocked in the current bank state (ACT on an
// open bank, PRE or column on a closed or row-mismatched one)
// conservatively return now: they need an intervening command to become
// legal, which is itself an event.
func (m *Mem) NextIssue(cmd Command, a Addr, now int64, internal bool) int64 {
	m.checkAddr(a)
	ch := &m.channels[a.Channel]
	rk := &ch.ranks[a.Rank]
	flat := a.GlobalBank(m.Geom)
	b := &rk.banks[flat]

	switch cmd {
	case CmdACT:
		if b.open {
			return now
		}
		return max(now, rk.horizons(m.T, a.BankGroup, flat).readyACT)

	case CmdPRE:
		if !b.open {
			return now
		}
		return max(now, rk.horizons(m.T, a.BankGroup, flat).readyPRE)

	case CmdRD, CmdWR:
		if !b.open || b.row != a.Row {
			return now
		}
		hz := rk.horizons(m.T, a.BankGroup, flat)
		ready := hz.readyRD
		if cmd == CmdWR {
			ready = hz.readyWR
		}
		if !internal {
			ready = max(ready, ch.extCol(cmd, a.Rank, m.T))
		}
		return max(now, ready)

	case CmdREF:
		for i := range rk.banks {
			if rk.banks[i].open {
				return now
			}
		}
		return max(now, rk.refreshUntil, rk.nextACT)
	}
	return now
}

// Issue applies cmd at cycle now, updating all affected timing horizons.
// It panics if the command is illegal; callers must CanIssue first.
func (m *Mem) Issue(cmd Command, a Addr, now int64, internal bool) {
	if !m.CanIssue(cmd, a, now, internal) {
		panic(fmt.Sprintf("dram: illegal %v to %+v at cycle %d (internal=%v)", cmd, a, now, internal))
	}
	t := m.T
	ch := &m.channels[a.Channel]
	rk := &ch.ranks[a.Rank]
	b := &rk.banks[a.GlobalBank(m.Geom)]
	cn := &m.cnts[a.Channel]
	m.chVer[a.Channel]++
	rk.stamp++ // invalidate the rank's bank horizon caches

	maxi := func(p *int64, v int64) {
		if v > *p {
			*p = v
		}
	}

	switch cmd {
	case CmdACT:
		cn.ACT++
		rk.rowStamp++
		b.open = true
		b.row = a.Row
		b.nextRD = now + int64(t.RCD)
		b.nextWR = now + int64(t.RCD)
		b.nextPRE = now + int64(t.RAS)
		b.nextACT = now + int64(t.RC)
		for g := range rk.bgs {
			d := int64(t.RRDS)
			if g == a.BankGroup {
				d = int64(t.RRDL)
			}
			maxi(&rk.bgs[g].nextACT, now+d)
		}
		maxi(&rk.nextACT, now+int64(t.RRDS))
		rk.faw[rk.fawIdx] = now
		rk.fawIdx = (rk.fawIdx + 1) % 4

	case CmdPRE:
		cn.PRE++
		rk.rowStamp++
		b.open = false
		maxi(&b.nextACT, now+int64(t.RP))

	case CmdRD:
		if internal {
			cn.NDARD++
		} else {
			cn.RD++
		}
		maxi(&b.nextPRE, now+int64(t.RTP))
		for g := range rk.bgs {
			d := int64(t.CCDS)
			if g == a.BankGroup {
				d = int64(t.CCDL)
			}
			maxi(&rk.bgs[g].nextRD, now+d)
			maxi(&rk.bgs[g].nextWR, now+d)
		}
		// Read-to-write turnaround on the rank's data path applies to
		// both host and NDA accesses sharing that path.
		maxi(&rk.nextWR, now+int64(t.ReadToWrite()))
		end := now + int64(t.CL) + int64(t.BL)
		maxi(&rk.dataBusyUntil, end)
		if !internal {
			ch.dataBusyUntil = end
			ch.lastColValid = true
			ch.lastColRead = true
			ch.lastColRank = a.Rank
			ch.lastColCycle = now
			ch.colStamp++
		}

	case CmdWR:
		if internal {
			cn.NDAWR++
		} else {
			cn.WR++
		}
		maxi(&b.nextPRE, now+int64(t.CWL+t.BL+t.WR))
		for g := range rk.bgs {
			ccd := int64(t.CCDS)
			wtr := int64(t.WriteToReadDiffBG())
			if g == a.BankGroup {
				ccd = int64(t.CCDL)
				wtr = int64(t.WriteToReadSameBG())
			}
			maxi(&rk.bgs[g].nextWR, now+ccd)
			maxi(&rk.bgs[g].nextRD, now+wtr)
		}
		end := now + int64(t.CWL) + int64(t.BL)
		maxi(&rk.dataBusyUntil, end)
		if !internal {
			ch.dataBusyUntil = end
			ch.lastColValid = true
			ch.lastColRead = false
			ch.lastColRank = a.Rank
			ch.lastColCycle = now
			ch.colStamp++
		}

	case CmdREF:
		rk.refreshUntil = now + int64(t.RFC)
		maxi(&rk.nextACT, rk.refreshUntil)
	}
}

// ReadLatency returns cycles from RD issue to the end of the data burst.
func (m *Mem) ReadLatency() int64 { return int64(m.T.CL + m.T.BL) }

// WriteLatency returns cycles from WR issue to the end of the data burst.
func (m *Mem) WriteLatency() int64 { return int64(m.T.CWL + m.T.BL) }
