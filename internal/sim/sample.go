package sim

import (
	"fmt"

	"chopim/internal/dram"
	"chopim/internal/energy"
	"chopim/internal/sample"
)

// SampleConfig parameterizes System.RunSampled (see internal/sample).
type SampleConfig = sample.Config

// RunSampled executes the SMARTS-style sampled schedule (DESIGN.md
// §2.11): a detailed prime segment, then cfg.Windows repetitions of
// functional fast-forward, detailed warm-up, and a measured detailed
// window. Detailed segments run through the exact StepFast machinery —
// bit-identical to RunFast at any worker count — so the approximation
// lives entirely in the fast-forward jumps: host instructions retire
// functionally at the rate the previous detailed segment measured
// (warming cache tags, dirty bits, and DRAM row state along the way),
// and NDA FSMs drain functionally at their measured block rate. The
// returned result carries per-window observations and CLT-derived
// confidence intervals per metric.
//
// The whole schedule is deterministic: fast-forward consumes no
// randomness and detailed windows are bit-exact, so a fixed-seed config
// yields byte-identical results across runs and SimWorkers counts.
//
// Incompatible with Config.NDA.VerifyFSM (the host-side replica FSM
// predicts from timing state the functional drain does not advance) —
// such configs are rejected with an error.
func (s *System) RunSampled(cfg SampleConfig) (*sample.Result, error) {
	return s.RunSampledFunc(cfg, nil)
}

// RunSampledFunc is RunSampled with a per-window hook: onWindow runs
// at each window's start (with the window index), immediately after
// its fast-forward jump and before the detailed warm-up — a quiescent
// boundary where drivers may relaunch NDA work that completed mid-
// jump, inspect handles, or checkpoint. Relaunching here rather than
// after the measurement matters: the warm-up and measured window then
// see the same steady background NDA pressure the exact path would,
// instead of a lull between a mid-jump completion and the next
// boundary. A non-nil error from the hook aborts the run.
func (s *System) RunSampledFunc(cfg SampleConfig, onWindow func(window int) error) (*sample.Result, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if s.Cfg.NDA.VerifyFSM {
		return nil, fmt.Errorf("sim: sampled mode is incompatible with NDA.VerifyFSM (the replica FSM would diverge across functional fast-forward)")
	}

	st := newSampleState(s)
	res := &sample.Result{TotalCycles: cfg.TotalCycles()}

	// Prime: warm from cold through the exact path and derive the first
	// functional-rate estimates.
	st.beginSegment()
	if err := s.RunFast(cfg.Prime); err != nil {
		return nil, err
	}
	st.updateRates()
	res.DetailCycles += cfg.Prime

	ipcW := make([]float64, 0, cfg.Windows)
	ndaW := make([]float64, 0, cfg.Windows)
	hostW := make([]float64, 0, cfg.Windows)
	powW := make([]float64, 0, cfg.Windows)
	utilW := make([]float64, 0, cfg.Windows)
	for w := 0; w < cfg.Windows; w++ {
		ff := cfg.FF + ffJitter(w, cfg)
		s.jumpFF(ff, st)
		res.FFCycles += ff

		if onWindow != nil {
			if err := onWindow(w); err != nil {
				return nil, err
			}
		}

		// Detailed warm-up plus measured window; rates for the next jump
		// are re-derived over the full detailed segment.
		st.beginSegment()
		if err := s.RunFast(cfg.Warmup); err != nil {
			return nil, err
		}
		m := st.mark()
		if err := s.RunFast(cfg.Detail); err != nil {
			return nil, err
		}
		ipc, ndaBW, hostBW, pow, util := st.window(m)
		ipcW = append(ipcW, ipc)
		ndaW = append(ndaW, ndaBW)
		hostW = append(hostW, hostBW)
		powW = append(powW, pow)
		utilW = append(utilW, util)
		st.updateRates()
		res.DetailCycles += cfg.Warmup + cfg.Detail
	}
	res.HostIPC = sample.NewMetric(ipcW, cfg.Z, cfg.SystematicErr)
	res.NDABWGBs = sample.NewMetric(ndaW, cfg.Z, cfg.SystematicErr)
	res.HostBWGBs = sample.NewMetric(hostW, cfg.Z, cfg.SystematicErr)
	res.AvgPowerW = sample.NewMetric(powW, cfg.Z, cfg.SystematicErr)
	res.NDAUtil = sample.NewMetric(utilW, cfg.Z, cfg.SystematicErr)
	return res, nil
}

// ffJitter is the deterministic offset added to window w's fast-forward
// length. Strictly periodic schedules alias with the equally periodic
// relaunch-driven workloads — every window can land on the same phase
// of the NDA launch/drain cycle and the per-window mean stops being an
// unbiased estimate of the span mean. Spreading the jump lengths over
// [3/4·FF, 5/4·FF] breaks the resonance. The offsets come in (+j, −j)
// pairs (an odd trailing window gets 0), so the schedule's total span
// is exactly Windows·FF and Config.TotalCycles stays an identity, and
// they depend only on the window index, so sampled runs remain
// byte-identical across runs and worker counts.
func ffJitter(w int, cfg SampleConfig) int64 {
	amp := cfg.FF / 4
	if cfg.Windows < 2 || amp == 0 {
		return 0
	}
	if w == cfg.Windows-1 && cfg.Windows%2 == 1 {
		return 0
	}
	j := int64((uint64(w/2)*2654435761 + 1013904223) % uint64(amp+1))
	if w%2 == 1 {
		return -j
	}
	return j
}

// sampleState carries the functional-rate estimates and measurement
// snapshots across one sampled run.
type sampleState struct {
	s *System

	// Per-core IPC and per-(channel,rank) NDA block rates measured over
	// the last detailed segment; the scale factors of the next jump.
	ipc     []float64
	ndaRate [][]float64

	// Segment-start snapshots for rate derivation.
	segCPU     int64
	segDRAM    int64
	segRetired []int64
	segBlocks  [][]int64

	// warmFns[i] is core i's warm callback (allocated once; the per-
	// instruction fast-forward path must not allocate). filt/filtD are
	// a per-core direct-mapped recent-block filter standing in for the
	// private L1/L2 during a jump: an access whose block hits the
	// filter would have hit a private level on the exact path, so it
	// must neither probe the LLC (that would over-refresh shared LRU
	// state and bias the next window warm) nor touch DRAM row state.
	// Entries hold block+1 (0 = empty) with one dirty bit each — the
	// first write to a resident block still reaches the LLC to set its
	// dirty bit, exactly as a write-back eventually would. The filter
	// is cleared at each jump start (jumpFF): it models only intra-jump
	// reuse, the part of private-cache behavior that is knowable
	// without timing.
	warmFns []func(addr uint64, write bool)
	filt    [][]uint64
	filtD   [][]bool

	// rowTick subsamples demand-miss row warming 1-in-rowWarmStride:
	// row-buffer state is last-writer-wins per bank, so only the final
	// pre-window access to each bank matters, and with thousands of
	// misses per jump a strided sample leaves every bank's row at most
	// a few accesses stale while cutting the address-decode cost of
	// the warm path by the stride. Dirty-victim writeback rows (the
	// sink) are not subsampled — they are far rarer.
	rowTick uint64
}

// rowWarmStride is the demand-miss row-warming subsample stride.
const rowWarmStride = 4

// warmFilterSize is the per-core warm-filter reach in blocks (a power
// of two; 512×64B = 32KB, the L1 capacity). Conflict misses make the
// effective reach smaller, which errs on the side of touching the LLC
// too often — the same direction as the exact path's L2 being bigger
// than the filter.
const warmFilterSize = 512

// sampleMark is one measured window's starting counters.
type sampleMark struct {
	cpu     int64
	dram    int64
	retired int64
	nda     int64
	busy    int64
	cnts    dram.CmdCounts
}

func newSampleState(s *System) *sampleState {
	st := &sampleState{
		s:          s,
		ipc:        make([]float64, len(s.Cores)),
		segRetired: make([]int64, len(s.Cores)),
		warmFns:    make([]func(uint64, bool), len(s.Cores)),
		filt:       make([][]uint64, len(s.Cores)),
		filtD:      make([][]bool, len(s.Cores)),
	}
	sink := func(addr uint64) { s.Mem.WarmOpen(s.Mapper.Decode(addr)) }
	for i := range s.Cores {
		core := i
		st.filt[i] = make([]uint64, warmFilterSize)
		st.filtD[i] = make([]bool, warmFilterSize)
		st.warmFns[i] = func(addr uint64, write bool) {
			b := addr / dram.BlockBytes
			idx := b & (warmFilterSize - 1)
			if st.filt[core][idx] == b+1 {
				if !write || st.filtD[core][idx] {
					return // private-level hit on the exact path
				}
				st.filtD[core][idx] = true // first write: set LLC dirty bit
			} else {
				st.filt[core][idx] = b + 1
				st.filtD[core][idx] = write
			}
			if !s.Hier.WarmAccess(core, addr, write, sink) {
				// LLC miss: the demand fill's column access would have
				// activated this row (subsampled; see rowTick).
				if st.rowTick++; st.rowTick%rowWarmStride == 0 {
					s.Mem.WarmOpen(s.Mapper.Decode(addr))
				}
			}
		}
	}
	st.ndaRate = make([][]float64, len(s.MCs))
	st.segBlocks = make([][]int64, len(s.MCs))
	for ch := range st.ndaRate {
		st.ndaRate[ch] = make([]float64, s.Cfg.Geom.Ranks)
		st.segBlocks[ch] = make([]int64, s.Cfg.Geom.Ranks)
	}
	return st
}

// beginSegment snapshots counters at the start of a detailed segment.
func (st *sampleState) beginSegment() {
	st.segCPU = st.s.cpuCycle
	st.segDRAM = st.s.dramCycle
	for i, c := range st.s.Cores {
		st.segRetired[i] = c.Retired
	}
	for ch := range st.segBlocks {
		for r := range st.segBlocks[ch] {
			stats := st.s.NDA.Ranks[ch][r].Stats()
			st.segBlocks[ch][r] = stats.BlocksRead + stats.BlocksWritten
		}
	}
}

// updateRates derives the functional rates from the detailed segment
// that just ran (since beginSegment).
func (st *sampleState) updateRates() {
	dcpu := st.s.cpuCycle - st.segCPU
	if dcpu > 0 {
		for i, c := range st.s.Cores {
			st.ipc[i] = float64(c.Retired-st.segRetired[i]) / float64(dcpu)
		}
	}
	ddram := st.s.dramCycle - st.segDRAM
	if ddram <= 0 {
		return
	}
	for ch := range st.ndaRate {
		for r := range st.ndaRate[ch] {
			stats := st.s.NDA.Ranks[ch][r].Stats()
			st.ndaRate[ch][r] = float64(stats.BlocksRead+stats.BlocksWritten-st.segBlocks[ch][r]) / float64(ddram)
		}
	}
}

// mark snapshots the counters a measured window is a delta over.
func (st *sampleState) mark() sampleMark {
	var retired, nda int64
	for _, c := range st.s.Cores {
		retired += c.Retired
	}
	t := st.s.NDA.TotalStats()
	nda = t.BlocksRead + t.BlocksWritten
	return sampleMark{
		cpu: st.s.cpuCycle, dram: st.s.dramCycle,
		retired: retired, nda: nda, busy: st.s.HostBusyCycles(),
		cnts: st.s.Mem.Counts(),
	}
}

// window evaluates one measured window against its mark: summed host
// IPC, NDA and host DRAM bandwidth in GB/s, average memory-system power
// from the energy model, and NDA utilization of host-idle rank
// bandwidth (the NDAUtilization formula over the window's deltas).
func (st *sampleState) window(m sampleMark) (ipc, ndaBW, hostBW, powerW, util float64) {
	s := st.s
	dcpu := s.cpuCycle - m.cpu
	if dcpu > 0 {
		var retired int64
		for _, c := range s.Cores {
			retired += c.Retired
		}
		ipc = float64(retired-m.retired) / float64(dcpu)
	}
	ddram := s.dramCycle - m.dram
	sec := Seconds(ddram)
	if sec <= 0 {
		return
	}
	t := s.NDA.TotalStats()
	blocks := t.BlocksRead + t.BlocksWritten - m.nda
	ndaBW = float64(blocks) * dram.BlockBytes / sec / 1e9
	ranks := int64(s.Cfg.Geom.Channels * s.Cfg.Geom.Ranks)
	if idle := ddram*ranks - (s.HostBusyCycles() - m.busy); idle > 0 {
		util = float64(blocks*int64(s.Cfg.Timing.BL)) / float64(idle)
		if util > 1 {
			util = 1
		}
	}
	c := s.Mem.Counts()
	d := dram.CmdCounts{
		ACT: c.ACT - m.cnts.ACT, PRE: c.PRE - m.cnts.PRE,
		RD: c.RD - m.cnts.RD, WR: c.WR - m.cnts.WR,
		NDARD: c.NDARD - m.cnts.NDARD, NDAWR: c.NDAWR - m.cnts.NDAWR,
	}
	hostBW = float64(d.RD+d.WR) * dram.BlockBytes / sec / 1e9
	pes := s.Cfg.Geom.Channels * s.Cfg.Geom.Ranks
	powerW = energy.Compute(energy.FromCmdCounts(d, sec, pes)).AvgPowerW
	return
}

// jumpFF advances the clocks k DRAM cycles at functional fidelity: the
// fast-forward half of the sampled schedule. Host cores retire
// ipc·Δcpu instructions in exact trace order through the tag-only warm
// path (cache state and row buffers warm; in-flight misses stay
// frozen), each rank NDA drains rate·k blocks of FSM work (row buffers
// warm, completions fire through the mailboxes), and the CPU-credit
// arithmetic advances exactly as skipIdle's would. Afterwards every
// cached scheduler conclusion is invalidated — controller wake bounds,
// NDA sleep bounds, the probe-stall epoch — mirroring what Restore
// does after a snapshot, so the next detailed segment re-derives
// everything from the post-jump state.
func (s *System) jumpFF(k int64, st *sampleState) {
	if k <= 0 {
		return
	}
	// The warm filter models only intra-jump reuse; private-cache
	// contents from before the last detailed segment are unknowable.
	for i := range st.filt {
		clear(st.filt[i])
		clear(st.filtD[i])
	}
	total := int64(s.credit) + k*cpuCredit
	dcpu := total / cpuDivisor
	s.credit = int(total % cpuDivisor)
	for i, core := range s.Cores {
		if n := int64(st.ipc[i] * float64(dcpu)); n > 0 {
			core.RetireFunctional(n, st.warmFns[i])
		}
		core.SkipCycles(dcpu)
	}
	s.cpuCycle += dcpu
	end := s.dramCycle + k
	s.dramCycle = end
	for ch := range s.doms {
		for r := 0; r < s.Cfg.Geom.Ranks; r++ {
			budget := int64(st.ndaRate[ch][r] * float64(k))
			if budget <= 0 && s.NDA.RankBusy(ch, r) {
				// Work arrived too late in the last segment to measure a
				// rate; assume the unblocked data-bus rate rather than
				// stalling the rank across the whole jump.
				budget = k / int64(s.Cfg.Timing.BL)
			}
			if budget > 0 {
				s.NDA.DrainFunctional(ch, r, int(budget), end)
			}
		}
	}
	// Op completions were mailboxed by the drains; apply them in
	// canonical order (they may launch follow-on work and enqueue
	// control packets, exactly as a commit phase would).
	s.commit()

	// Invalidate every cached scheduler conclusion derived pre-jump.
	for i := range s.mcStale {
		s.mcStale[i] = true
	}
	for d := range s.stepNDAWake {
		s.stepNDAWake[d] = notSurveyed
	}
	s.stepRTWake = notSurveyed
	s.NDA.MarkAllStale()
	if s.Hier != nil {
		s.Hier.AdvanceVer()
	}
}
