// Command chopim regenerates the tables and figures of "Near Data
// Acceleration with Concurrent Host Access" (ISCA 2020) on the simulated
// system. Each subcommand prints the rows/series the paper reports.
//
// Usage:
//
//	chopim [-quick] [-warm N] [-measure N] [-parallel N] [-sim-workers N]
//	       [-profile-domains] [-cache-dir D] [-checkpoint D [-resume]]
//	       [-checkpoint-every N] [-on-interrupt=checkpoint|drain|abort]
//	       [-check-invariants] [-deadline D] [-point-retries N] [-fail-fast]
//	       [-cpuprofile F] [-memprofile F] <experiment>
//
// Experiments: fig2 fig10 fig11 fig12 fig13 fig14 fig15a fig15b power
// config all
//
// -cache-dir D keeps a content-addressed result cache: every figure's
// rows are stored under a hash of the model version and the
// behavior-selecting options, and a later run whose fingerprint matches
// replays the stored rows without simulating (figures are deterministic,
// so the replay is exact). -checkpoint D journals each completed
// simulation point of every sweep as it finishes; -resume makes an
// interrupted run pick up at the last completed point. A run with
// either flag reports cache hits/misses and resumed points at exit.
//
// -parallel N shards each figure's independent simulation points across
// N workers (-1 = all CPUs). -sim-workers N additionally parallelizes
// *within* each simulation point: every executed tick fans its
// per-channel memory phase AND the core-local part of every CPU
// sub-cycle of the front-end across N goroutines (see DESIGN.md §2.5
// and §2.10). Tables are identical for every setting of both flags;
// they compose, but multiplying them oversubscribes small machines, so
// raise one at a time.
//
// -profile-domains records each executed tick's per-channel memory-phase
// span and front-end span (cheap counters inside the simulator;
// sim.Config.ProfileDomains), splitting every CPU sub-cycle into its
// core-local part and its serial shared-commit part, and prints the
// aggregated power-of-two histograms after the experiment — the quick
// way to see whether a workload is bounded by one hot channel, by the
// sub-cycle commit loop, or by neither before reaching for
// -sim-workers.
//
// Robustness flags: -check-invariants arms the simulator's cross-layer
// conservation checker on every point (results are bit-identical with
// it on or off; violations quarantine the point instead of corrupting
// the table). -deadline D bounds each point's wall-clock time;
// -point-retries N retries transient point failures with backoff.
// Sweeps run in partial-failure mode by default — healthy points
// complete and the failures are reported together — while -fail-fast
// restores abort-on-first-error. -inject arms a named fault for the
// fault-injection smoke tests (see internal/faults).
//
// Interrupt & resume: -checkpoint-every N additionally persists each
// in-flight point's full simulator state every N cycles into the
// -checkpoint directory, so a kill -9 costs at most N cycles of one
// point; the next -resume run restores the newest valid mid-point
// checkpoint and continues bit-identically. SIGINT/SIGTERM cancel the
// sweep cooperatively per -on-interrupt — checkpoint (default: stop
// every point at its next quiescent boundary and persist it), drain
// (finish in-flight points, admit no more), or abort — then exit 130;
// a second signal force-exits immediately.
//
// -cpuprofile / -memprofile write pprof profiles covering the selected
// experiment (see README.md, "Profiling").
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"sync/atomic"
	"syscall"
	"text/tabwriter"
	"time"

	"chopim/internal/dram"
	"chopim/internal/experiments"
	"chopim/internal/faults"
	"chopim/internal/sim"
	"chopim/internal/stats"
)

func main() { os.Exit(run()) }

// run executes the CLI; profile writers installed here flush on every
// return path (os.Exit would skip deferred writes).
func run() (code int) {
	// Last-resort boundary: the runner quarantines per-point panics, but
	// a panic outside any point (flag handling, table rendering, a bug
	// in the harness itself) should still exit with a diagnostic and a
	// distinct code rather than a bare crash.
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(os.Stderr, "chopim: internal panic: %v\n%s", r, debug.Stack())
			code = 3
		}
	}()
	quick := flag.Bool("quick", false, "reduced simulation budget")
	warm := flag.Int64("warm", 0, "warm-up cycles (0 = default)")
	measure := flag.Int64("measure", 0, "measurement cycles (0 = default)")
	parallel := flag.Int("parallel", -1, "workers for independent simulation points (-1 = all CPUs, 1 = serial)")
	simWorkers := flag.Int("sim-workers", 1, "workers inside each simulation, fanning channel domains and the core-sharded CPU front-end (1 = inline, -1 = all CPUs, clamped to max(channels, cores))")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	profileDomains := flag.Bool("profile-domains", false,
		"record per-channel memory-phase and serial front-end tick spans and print the histograms after the experiment")
	cacheDir := flag.String("cache-dir", "",
		"content-addressed figure result cache: replay figures whose options fingerprint matches a stored entry, store the rest")
	checkpoint := flag.String("checkpoint", "",
		"sweep progress journal directory: record each completed simulation point as it finishes")
	resume := flag.Bool("resume", false,
		"pick an interrupted sweep up at the last completed point recorded in the -checkpoint journals")
	checkInvariants := flag.Bool("check-invariants", false,
		"validate cross-layer conservation invariants at every commit barrier (bit-identical results, slower; violations quarantine the point)")
	deadline := flag.Duration("deadline", 0,
		"per-point wall-clock deadline (0 = none); an expired point fails with partial stats and the sweep continues")
	pointRetries := flag.Int("point-retries", 0,
		"retries with exponential backoff for transient per-point failures")
	failFast := flag.Bool("fail-fast", false,
		"abort a sweep at the first failing point instead of completing the healthy ones")
	inject := flag.String("inject", "",
		"arm a fault for smoke testing: panic-point=K, point-err=K:N, stuck-horizon=C, ckpt-torn=K, ckpt-badsum=K, or die-after-ckpt=N")
	ckptEvery := flag.Int64("checkpoint-every", 0,
		"cycles between durable mid-point checkpoints of each in-flight simulation (0 = off; requires -checkpoint DIR)")
	onInterrupt := flag.String("on-interrupt", "checkpoint",
		"first SIGINT/SIGTERM behavior: checkpoint (cancel points at a quiescent boundary and persist them), drain (finish in-flight points, admit no more), abort (exit immediately)")
	sampled := flag.Bool("sampled", false,
		"SMARTS-style sampled execution: short detailed windows separated by functional fast-forward, reporting per-window means (approximate; see DESIGN.md §2.11)")
	sampleWindows := flag.Int("sample-windows", 0,
		"sampled mode: measured detailed windows per point (0 = default 8; implies -sampled)")
	sampleDetail := flag.Int64("sample-detail", 0,
		"sampled mode: measured cycles per window (0 = default 1000; implies -sampled)")
	sampleFF := flag.Int64("sample-ff", 0,
		"sampled mode: functionally fast-forwarded cycles between windows (0 = default 20000; implies -sampled)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: chopim [flags] <fig2|fig10|fig11|fig12|fig13|fig14|fig15a|fig15b|power|config|all>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		return 2
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chopim: -cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "chopim: -cpuprofile: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "chopim: -memprofile: %v\n", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "chopim: -memprofile: %v\n", err)
			}
			f.Close()
		}()
	}

	opt := experiments.DefaultOptions()
	if *quick {
		opt = experiments.QuickOptions()
	}
	if *warm > 0 {
		opt.WarmCycles = *warm
	}
	if *measure > 0 {
		opt.MeasureCycles = *measure
	}
	opt.Parallel = *parallel
	opt.SimWorkers = *simWorkers
	opt.ProfileDomains = *profileDomains
	if *profileDomains {
		defer printPhaseSpans()
	}
	if *resume && *checkpoint == "" {
		fmt.Fprintf(os.Stderr, "chopim: -resume requires -checkpoint DIR (the journals to resume from)\n")
		return 2
	}
	if *ckptEvery > 0 && *checkpoint == "" {
		fmt.Fprintf(os.Stderr, "chopim: -checkpoint-every requires -checkpoint DIR (where the checkpoints live)\n")
		return 2
	}
	switch *onInterrupt {
	case "checkpoint", "drain", "abort":
	default:
		fmt.Fprintf(os.Stderr, "chopim: -on-interrupt=%q (want checkpoint, drain, or abort)\n", *onInterrupt)
		return 2
	}
	opt.CacheDir = *cacheDir
	opt.JournalDir = *checkpoint
	opt.Resume = *resume
	opt.CheckInvariants = *checkInvariants
	opt.PointTimeout = *deadline
	opt.PointRetries = *pointRetries
	opt.KeepGoing = !*failFast
	if *inject != "" {
		if err := faults.ArmSpec(*inject); err != nil {
			fmt.Fprintf(os.Stderr, "chopim: -inject: %v\n", err)
			return 2
		}
	}
	opt.CheckpointEvery = *ckptEvery
	if *sampleWindows > 0 || *sampleDetail > 0 || *sampleFF > 0 {
		*sampled = true
	}
	if *sampled {
		opt.Sampled = true
		opt.Sample.Windows = *sampleWindows
		opt.Sample.Detail = *sampleDetail
		opt.Sample.FF = *sampleFF
	}
	cancel := &experiments.Canceler{}
	opt.Cancel = cancel
	var interrupted atomic.Bool
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	go func() {
		for range sigCh {
			if interrupted.Swap(true) {
				fmt.Fprintln(os.Stderr, "chopim: second signal, forcing exit")
				os.Exit(130)
			}
			switch *onInterrupt {
			case "drain":
				fmt.Fprintln(os.Stderr, "chopim: interrupt: draining in-flight points (signal again to force exit)")
				cancel.CancelAdmission()
			case "abort":
				os.Exit(130)
			default: // checkpoint
				fmt.Fprintln(os.Stderr, "chopim: interrupt: stopping (checkpointing in-flight points; signal again to force exit)")
				cancel.CancelPoints()
			}
		}
	}()
	if *cacheDir != "" || *checkpoint != "" {
		defer printCacheStats()
	}
	defer printSweepHealth()

	cmds := map[string]func(experiments.Options) error{
		"fig2":   runFig2,
		"fig10":  runFig10,
		"fig11":  runFig11,
		"fig12":  runFig12,
		"fig13":  runFig13,
		"fig14":  runFig14,
		"fig15a": runFig15a,
		"fig15b": runFig15b,
		"power":  runPower,
		"config": runConfig,
		"ablate": runAblate,
	}
	name := flag.Arg(0)
	if name == "all" {
		for _, n := range []string{"config", "fig2", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15a", "fig15b", "power"} {
			fmt.Printf("\n===== %s =====\n", n)
			if err := cmds[n](opt); err != nil {
				fmt.Fprintf(os.Stderr, "chopim %s: %v\n", n, err)
				if canceledRun(err) {
					return 130
				}
				return 1
			}
		}
		st := experiments.ReadRunnerStats()
		fmt.Printf("\nrunner: %d points (%d failed), %s simulation time across <=%d workers\n",
			st.Jobs, st.Errors, st.BusyTime.Round(time.Millisecond), st.MaxShards)
		return 0
	}
	cmd, ok := cmds[name]
	if !ok {
		flag.Usage()
		return 2
	}
	if err := cmd(opt); err != nil {
		fmt.Fprintf(os.Stderr, "chopim %s: %v\n", name, err)
		if canceledRun(err) {
			return 130
		}
		return 1
	}
	if interrupted.Load() {
		// The signal landed after the last point finished: the tables
		// above are complete, but a cancel-requested run still reports
		// the conventional interrupted exit status.
		return 130
	}
	return 0
}

// canceledRun classifies an experiment error as cooperative
// cancellation — a drained sweep (ErrSweepCanceled) or a point cut by
// the stop flag (*sim.CanceledError) — so the process exits 130, the
// conventional interrupted status, rather than 1.
func canceledRun(err error) bool {
	if errors.Is(err, experiments.ErrSweepCanceled) {
		return true
	}
	var ce *sim.CanceledError
	return errors.As(err, &ce)
}

func tw() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

// printCacheStats reports result-cache and resume activity after a run
// with -cache-dir or -checkpoint (CI greps this line to assert the
// second run of a cached figure hits).
func printCacheStats() {
	st := experiments.ReadRunnerStats()
	fmt.Printf("\ncache: %d hits, %d misses; resumed %d points; %d warm forks\n",
		st.CacheHits, st.CacheMisses, st.Resumed, st.WarmForks)
}

// printSweepHealth reports fault-handling activity on stderr after any
// run where it occurred: panics quarantined, transient retries, or
// deadline expiries. Quiet on healthy runs; CI's fault-injection smoke
// greps for it.
func printSweepHealth() {
	st := experiments.ReadRunnerStats()
	if st.Panics != 0 || st.Retries != 0 || st.Timeouts != 0 || st.Quarantined != 0 {
		fmt.Fprintf(os.Stderr, "sweep health: %d panics (%d points quarantined), %d retries, %d deadline expiries\n",
			st.Panics, st.Quarantined, st.Retries, st.Timeouts)
	}
	if st.Canceled != 0 || st.CkptWrites != 0 || st.CkptRestores != 0 {
		fmt.Fprintf(os.Stderr, "interrupt: %d points canceled, %d checkpoints written, %d points resumed mid-flight\n",
			st.Canceled, st.CkptWrites, st.CkptRestores)
	}
}

// printPhaseSpans renders the -profile-domains histograms: span counts
// per power-of-two-nanosecond bucket, one row per channel domain plus
// the per-tick front-end and its per-sub-cycle split — the core-local
// part (front-local: what SimWorkers parallelizes) and the serial
// commit part (front-shared: deferred shared-path accesses plus
// probe-stall retries). The executor's per-round ceiling is the
// slowest domain or core, so a single hot channel row — or a
// front-shared row dominating front-local — says where SimWorkers
// scaling stops.
func printPhaseSpans() {
	p := experiments.ReadPhaseSpans()
	if len(p.Domains) == 0 {
		fmt.Println("\nprofile-domains: no fast-path ticks recorded")
		return
	}
	// Trim to the occupied bucket range across all rows.
	lo, hi := len(p.Front), 0
	rows := append(append([][]int64{}, p.Domains...), p.Front, p.FrontLocal, p.FrontShared)
	for _, hist := range rows {
		for b, n := range hist {
			if n > 0 {
				if b < lo {
					lo = b
				}
				if b > hi {
					hi = b
				}
			}
		}
	}
	if lo > hi {
		fmt.Println("\nprofile-domains: no fast-path ticks recorded")
		return
	}
	fmt.Println("\nprofile-domains: executed-tick phase spans (count per <=2^k ns bucket)")
	w := tw()
	fmt.Fprint(w, "phase")
	for b := lo; b <= hi; b++ {
		fmt.Fprintf(w, "\t2^%d", b)
	}
	fmt.Fprintln(w)
	for d, hist := range p.Domains {
		fmt.Fprintf(w, "ch%d-memory", d)
		for b := lo; b <= hi; b++ {
			fmt.Fprintf(w, "\t%d", hist[b])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprint(w, "front-end")
	for b := lo; b <= hi; b++ {
		fmt.Fprintf(w, "\t%d", p.Front[b])
	}
	fmt.Fprintln(w)
	fmt.Fprint(w, "front-local")
	for b := lo; b <= hi; b++ {
		fmt.Fprintf(w, "\t%d", p.FrontLocal[b])
	}
	fmt.Fprintln(w)
	fmt.Fprint(w, "front-shared")
	for b := lo; b <= hi; b++ {
		fmt.Fprintf(w, "\t%d", p.FrontShared[b])
	}
	fmt.Fprintln(w)
	w.Flush()
}

func runFig2(opt experiments.Options) error {
	rows, err := experiments.Fig2(opt)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprint(w, "mix")
	for b := stats.IdleBucket(0); b < stats.NumIdleBuckets; b++ {
		fmt.Fprintf(w, "\t%s", b)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprint(w, r.Mix)
		for _, f := range r.Fractions {
			fmt.Fprintf(w, "\t%.3f", f)
		}
		fmt.Fprintln(w)
	}
	return w.Flush()
}

func runFig10(opt experiments.Options) error {
	rows, err := experiments.Fig10(opt)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "ranks/ch\tblocks/instr\thost IPC\tNDA BW util")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%d\t%.3f\t%.3f\n", r.Ranks, r.BlocksPer, r.HostIPC, r.NDAUtil)
	}
	return w.Flush()
}

func runFig11(opt experiments.Options) error {
	rows, err := experiments.Fig11(opt)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "mix\tconfig\thost IPC\tNDA BW util")
	for _, r := range rows {
		for _, c := range []struct {
			name string
			res  experiments.Result
		}{
			{"Shared+DOT", r.SharedDOT}, {"Shared+COPY", r.SharedCOPY},
			{"Partitioned+DOT", r.PartDOT}, {"Partitioned+COPY", r.PartCOPY},
		} {
			fmt.Fprintf(w, "%s\t%s\t%.3f\t%.3f\n", r.Mix, c.name, c.res.HostIPC, c.res.NDAUtil)
		}
		fmt.Fprintf(w, "%s\tIdealized\t%.3f\t1.000\n", r.Mix, r.IdealHostIPC)
	}
	return w.Flush()
}

func runFig12(opt experiments.Options) error {
	rows, err := experiments.Fig12(opt)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "mix\tpolicy\thost IPC\tNDA BW util")
	for _, r := range rows {
		for _, p := range r.Points {
			fmt.Fprintf(w, "%s\t%s\t%.3f\t%.3f\n", r.Mix, p.Label, p.Res.HostIPC, p.Res.NDAUtil)
		}
	}
	return w.Flush()
}

func runFig13(opt experiments.Options) error {
	rows, err := experiments.Fig13(opt)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "op\tsize\thost IPC\tNDA BW util")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%.3f\t%.3f\n", r.Op, r.Size, r.HostIPC, r.NDAUtil)
	}
	return w.Flush()
}

func runFig14(opt experiments.Options) error {
	rows, err := experiments.Fig14(opt)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "ranks/ch\tworkload\tChopim IPC\tChopim NDA GB/s\tRP IPC\tRP NDA GB/s")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%s\t%.3f\t%.2f\t%.3f\t%.2f\n",
			r.Ranks, r.Workload, r.ChopimHostIPC, r.ChopimNDABW, r.RPHostIPC, r.RPNDABW)
	}
	return w.Flush()
}

func runFig15a(opt experiments.Options) error {
	curves, optimum, err := experiments.Fig15a(opt)
	if err != nil {
		return err
	}
	fmt.Printf("optimum loss: %.9f\n", optimum)
	w := tw()
	fmt.Fprintln(w, "curve\ttime(s)\tloss-optimum")
	for _, c := range curves {
		for _, p := range c.Points {
			fmt.Fprintf(w, "%s\t%.4f\t%.3e\n", c.Label, p.Seconds, p.Loss-optimum)
		}
	}
	return w.Flush()
}

func runFig15b(opt experiments.Options) error {
	rows, err := experiments.Fig15b(opt)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "NDAs\tACC_Best speedup\tDelayedUpdate speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%.2f\t%.2f\n", r.NDAs, r.SpeedupACCBest, r.SpeedupDelayed)
	}
	return w.Flush()
}

func runPower(opt experiments.Options) error {
	rows, err := experiments.Power(opt)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "scenario\tavg power (W)\tACT (J)\thost IO (J)\tNDA IO (J)\tcompute (J)")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.3f\t%.3e\t%.3e\t%.3e\t%.3e\n",
			r.Scenario, r.AvgPowerW, r.Breakdown.ActivateJ, r.Breakdown.HostIOJ,
			r.Breakdown.NDAIOJ, r.Breakdown.ComputeJ)
	}
	return w.Flush()
}

func runAblate(opt experiments.Options) error {
	rows, err := experiments.Ablations(opt)
	if err != nil {
		return err
	}
	w := tw()
	fmt.Fprintln(w, "study\tsetting\thost IPC\tNDA BW util\tnotes")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%.3f\t%.3f\t%s\n", r.Study, r.Setting, r.HostIPC, r.NDAUtil, r.Extra)
	}
	return w.Flush()
}

func runConfig(experiments.Options) error {
	g := dram.DefaultGeometry()
	t := dram.DDR42400()
	fmt.Printf("Table II system configuration\n")
	fmt.Printf("geometry: %d channels x %d ranks, %d bank groups x %d banks, %d rows x %d blocks (%.0f GiB)\n",
		g.Channels, g.Ranks, g.BankGroups, g.BanksPerGroup, g.Rows, g.Cols,
		float64(g.Capacity())/(1<<30))
	fmt.Printf("timing: %+v\n", t)
	return nil
}
