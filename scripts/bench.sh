#!/usr/bin/env bash
# bench.sh — run the host-path benchmarks and emit a machine-readable
# snapshot of the perf trajectory (BENCH_PR<N>.json).
#
# Usage: scripts/bench.sh [benchtime] [pr-number|output.json]
#   benchtime       go test -benchtime value (default 5x; CI smoke uses 1x)
#   pr-number       PR the snapshot belongs to; the output name is derived
#                   as BENCH_PR<N>.json (default: 4). An argument ending
#                   in .json is used as the output path verbatim (its PR
#                   number is parsed from the name when possible).
#
# Each benchmark runs -count ${BENCH_COUNT:-3} times and the snapshot
# records the per-benchmark MINIMUM ns/op — the noise-robust statistic
# on the shared containers these snapshots come from, where load spikes
# inflate individual samples by 20%+ and a single unlucky pair would
# randomly trip the ratio gates below.
#
# The snapshot records three blocks:
#   benchmarks  the suite at 1 worker (the serial trajectory numbers),
#               including CalibrationSpin, a pure-CPU spin that anchors
#               cross-machine normalization in bench_check.sh;
#   workers4    MixedHostNDA (sim-internal executor fanning channel
#               domains and the core-sharded CPU front-end,
#               SimWorkers=4) and Fig11BankPartitioning (point-level
#               runner sharding, Parallel=4) re-run at 4 workers via
#               CHOPIM_BENCH_WORKERS, with per-benchmark speedups.
#               Parallel speedup requires free CPUs: the block records
#               workers_sweep_valid (cpus > 1); when false the speedup
#               numbers measure executor overhead, not scaling, and
#               the executor is instead gated at <=1.15x serial via
#               MixedHostNDAWorkers4, which rides in the serial suite
#               so both sides of the ratio come from the same
#               invocation (seconds apart, not minutes).
#
# The baseline block comes from the newest committed BENCH_PR*.json
# older than the target PR (so each PR's snapshot carries its
# predecessor's numbers), except PR 3, whose baseline is the
# interleaved same-machine PR2-vs-PR3 measurement recorded below.
#
# The script fails if BenchmarkMixedHostNDA, BenchmarkHostStallHeavy,
# or BenchmarkHostComputeHeavy report any steady-state allocations in
# the tick loop (the allocation-free contract also pinned by
# TestTickLoopAllocFree, TestStallHeavyAllocFree, and
# TestComputeHeavyAllocFree), if the durable-checkpoint cadence
# (BenchmarkMixedHostNDACheckpointed) costs more than 5% per simulated
# cycle over the un-checkpointed MixedHostNDA, or if sampled mode
# (BenchmarkFig11Sampled) simulates cycles less than 10x faster than
# the exact Figure 11 benchmark (ns per simulated cycle; see the
# sampled gate below).
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${1:-5x}"
TARGET="${2:-4}"
case "$TARGET" in
*.json) OUT="$TARGET"; PR="$(echo "$TARGET" | sed -n 's/.*BENCH_PR\([0-9][0-9]*\).*/\1/p')" ;;
*) PR="$TARGET"; OUT="BENCH_PR${PR}.json" ;;
esac
RAW="$(mktemp)"
RAW4="$(mktemp)"
trap 'rm -f "$RAW" "$RAW4"' EXIT

COUNT="${BENCH_COUNT:-3}"

go test -run '^$' \
    -bench 'BenchmarkMixedHostNDA$|BenchmarkMixedHostNDAWorkers4$|BenchmarkMixedHostNDACheckpointed$|BenchmarkHostStallHeavy$|BenchmarkHostComputeHeavy$|BenchmarkFig14Wide8Ranks$|BenchmarkFig11BankPartitioning$|BenchmarkFig11Sampled$|BenchmarkFig12WriteThrottling$|BenchmarkFig12CachedRegen$|BenchmarkCalibrationSpin$' \
    -benchtime "$BENCHTIME" -count "$COUNT" . | tee "$RAW"

CHOPIM_BENCH_WORKERS=4 go test -run '^$' \
    -bench 'BenchmarkMixedHostNDA$|BenchmarkFig11BankPartitioning$' \
    -benchtime "$BENCHTIME" -count "$COUNT" . | tee "$RAW4"

BENCH_RAW="$RAW" BENCH_RAW4="$RAW4" BENCH_OUT="$OUT" BENCH_PR="$PR" BENCH_TIME="$BENCHTIME" \
    BENCH_GIT="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
    BENCH_CPUS="$(nproc 2>/dev/null || echo unknown)" \
    python3 - <<'EOF'
import glob, json, os, re, sys

out = os.environ["BENCH_OUT"]
pr = os.environ["BENCH_PR"]
pr = int(pr) if pr else None

def parse(path):
    # Multiple -count repetitions of each benchmark: keep the minimum
    # ns/op (see the header) and the worst allocs/op (allocations are
    # deterministic, so any disagreement is itself a bug worth failing).
    cpu = ""
    benches = {}
    order = []
    for line in open(path).read().splitlines():
        if line.startswith("cpu:"):
            cpu = line[len("cpu:"):].strip()
        m = re.match(r"^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(\d+(?:\.\d+)?) ns/op(.*)$", line)
        if m:
            name = m.group(1)[len("Benchmark"):]
            ns = int(float(m.group(2)))
            allocs = None
            am = re.search(r"(\d+) allocs/op", m.group(3))
            if am:
                allocs = int(am.group(1))
            cycles = None
            cm = re.search(r"(\d+(?:e\+?\d+)?(?:\.\d+)?) sim-cycles", m.group(3))
            if cm:
                cycles = int(float(cm.group(1)))
            if name not in benches:
                benches[name] = {"ns_per_op": ns, "allocs_per_op": allocs}
                if cycles:
                    benches[name]["sim_cycles"] = cycles
                order.append(name)
            else:
                e = benches[name]
                e["ns_per_op"] = min(e["ns_per_op"], ns)
                if allocs is not None:
                    e["allocs_per_op"] = max(e["allocs_per_op"] or 0, allocs)
    return cpu, benches, order

cpu, benches, order = parse(os.environ["BENCH_RAW"])
_, benches4, order4 = parse(os.environ["BENCH_RAW4"])
if not benches:
    sys.exit("bench.sh: no benchmark results parsed")

# PR 3's baseline is the interleaved same-machine PR2-vs-PR3 run (PR2
# code c3a05e4; HostStallHeavy did not exist at PR2 — its number is the
# same workload on the pre-refactor PR3 tree). Later PRs inherit the
# newest committed snapshot older than them.
PR3_BASELINE = {
    "note": "PR2 code (c3a05e4) interleaved with PR3 on the same machine/flags, "
            "benchtime 5x; MixedHostNDA is directly comparable (same workload and "
            "cycle count). HostStallHeavy did not exist at PR2 — its baseline is "
            "the same workload measured on the pre-refactor PR3 tree.",
    "MixedHostNDA": {"ns_per_op": 225623026, "allocs_per_op": 0},
    "HostStallHeavy": {"ns_per_op": 222278725, "allocs_per_op": None},
    "Fig11BankPartitioning": {"ns_per_op": 1335775276, "allocs_per_op": None},
}

def committed_before(pr):
    best = None
    for f in glob.glob("BENCH_PR*.json"):
        if os.path.abspath(f) == os.path.abspath(out):
            continue
        m = re.match(r"BENCH_PR(\d+)\.json$", os.path.basename(f))
        if not m:
            continue
        n = int(m.group(1))
        if (pr is None or n < pr) and (best is None or n > best[0]):
            best = (n, f)
    return best

baseline = None
if pr == 3:
    baseline = PR3_BASELINE
else:
    prev = committed_before(pr)
    if prev:
        n, f = prev
        snap = json.load(open(f))
        baseline = {"note": f"benchmarks of the latest committed snapshot, {f} "
                            f"(PR {n}, cpu: {snap.get('cpu', 'unknown')}); raw ns/op "
                            f"is only comparable on the same machine"}
        baseline.update(snap.get("benchmarks", {}))

doc = {
    "pr": pr,
    "description": "host-path perf trajectory snapshot"
                   + (f" at PR {pr}" if pr is not None else "")
                   + " (see CHANGES.md for what each PR changed)",
    "git": os.environ["BENCH_GIT"],
    "benchtime": os.environ["BENCH_TIME"],
    "cpu": cpu,
    "cpus": os.environ["BENCH_CPUS"],
}
if baseline:
    doc["baseline"] = baseline
doc["benchmarks"] = {name: benches[name] for name in order}
if benches4:
    cpus = os.environ.get("BENCH_CPUS", "unknown")
    sweep_valid = cpus.isdigit() and int(cpus) > 1
    w4 = {"note": "same suite at CHOPIM_BENCH_WORKERS=4: MixedHostNDA uses the "
                  "sim-internal executor (SimWorkers=4) fanning both the channel "
                  "domains (2 on the default geometry) and the core-sharded CPU "
                  "front-end, Fig11BankPartitioning point-level runner sharding "
                  "(Parallel=4). Speedup needs free CPUs: workers_sweep_valid "
                  "records whether this machine has them; when false the numbers "
                  "measure scheduling overhead, not scaling.",
          "workers_sweep_valid": sweep_valid}
    if not sweep_valid:
        w4["note"] += (f" This run had cpus={cpus}: the workers sweep is labeled "
                       "invalid and speedups here are overhead measurements.")
    for name in order4:
        e = dict(benches4[name])
        base = benches.get(name, {}).get("ns_per_op")
        if base and e["ns_per_op"]:
            e["speedup_vs_1worker"] = round(base / e["ns_per_op"], 3)
        w4[name] = e
    doc["workers4"] = w4

with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")

# Cached-regeneration block: replaying Figure 12 from the
# content-addressed result cache must beat simulating it by >=10x
# (in practice it is thousands of times faster — a JSON read).
uncached = benches.get("Fig12WriteThrottling", {}).get("ns_per_op")
cached = benches.get("Fig12CachedRegen", {}).get("ns_per_op")
if uncached and cached:
    speedup = round(uncached / cached, 1)
    doc["cache"] = {
        "note": "Fig12 regenerated from the -cache-dir result cache versus "
                "simulated; rows are byte-identical (TestFigureCacheRoundTrip)",
        "uncached_ns_per_op": uncached,
        "cached_ns_per_op": cached,
        "speedup": speedup,
    }
    with open(out, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    if speedup < 10:
        sys.exit(f"bench.sh: FAIL: cached regeneration only {speedup}x faster, want >=10x")

# Sampled-simulation gate: Fig11 in SMARTS-style sampled mode must
# simulate cycles >=10x faster than the exact Fig11 benchmark. The
# metric is simulation throughput (ns per simulated cycle): the sampled
# benchmark covers 165k cycles per point (its sim-cycles metric) while
# the exact quick budget covers 45k (QuickOptions: 5k warm + 40k
# measured), so a raw ns/op ratio would mix span with speed.
EXACT_FIG11_CYCLES = 45000
exact = benches.get("Fig11BankPartitioning", {}).get("ns_per_op")
samp = benches.get("Fig11Sampled", {})
if exact and samp.get("ns_per_op") and samp.get("sim_cycles"):
    exact_per_cyc = exact / EXACT_FIG11_CYCLES
    samp_per_cyc = samp["ns_per_op"] / samp["sim_cycles"]
    speedup = round(exact_per_cyc / samp_per_cyc, 1)
    doc["sampled"] = {
        "note": "Fig11 regenerated in sampled mode (8 windows x 300 measured "
                "cycles over a 165k-cycle span) versus exact simulation of the "
                "45k-cycle quick budget; speedup is the ns-per-simulated-cycle "
                "ratio, gated at >=10x. Accuracy is pinned separately by "
                "TestSampledCICoverage (exact IPC inside the reported CI, "
                "<=3% relative error, on every golden workload).",
        "exact_ns_per_cycle": round(exact_per_cyc, 1),
        "sampled_ns_per_cycle": round(samp_per_cyc, 1),
        "speedup": speedup,
    }
    with open(out, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    if speedup < 10:
        sys.exit(f"bench.sh: FAIL: sampled mode only {speedup}x exact throughput, want >=10x")

# Checkpoint-overhead gate: MixedHostNDACheckpointed runs the same
# workload with one durable checkpoint per 100k-cycle cadence interval
# (snapshot on the measurement loop, encode+fsync on the background
# writer) over a 200k-cycle window — twice the plain benchmark's — so
# the per-cycle ratio is ckpt_ns / (2 * base_ns). Gate at <=1.05: a
# live checkpoint cadence must cost no more than 5% of the simulation.
base = benches.get("MixedHostNDA", {}).get("ns_per_op")
ckpt = benches.get("MixedHostNDACheckpointed", {}).get("ns_per_op")
if base and ckpt:
    ratio = round(ckpt / (2 * base), 3)
    doc["checkpoint"] = {
        "note": "MixedHostNDA with one durable checkpoint write per 100k-cycle "
                "cadence interval, measured over a 200k-cycle window; "
                "per_cycle_ratio is ns-per-cycle versus the un-checkpointed "
                "benchmark, gated at <=1.05",
        "ckpt_ns_per_op": ckpt,
        "base_ns_per_op": base,
        "per_cycle_ratio": ratio,
    }
    with open(out, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    if ratio > 1.05:
        sys.exit(f"bench.sh: FAIL: checkpoint cadence costs {ratio}x per cycle, want <=1.05")

# Zero-allocs gate: every host-path benchmark's steady-state loop must
# stay allocation-free — including the 4-worker run, where the
# core-sharded front-end's claims, deferred ticks, and parked-tick
# commits must all come from preallocated state.
bad = []
for name in ("MixedHostNDA", "MixedHostNDAWorkers4", "HostStallHeavy",
             "HostComputeHeavy", "Fig14Wide8Ranks"):
    allocs = benches.get(name, {}).get("allocs_per_op")
    if allocs not in (None, 0):
        bad.append(f"{name}: {allocs} allocs/op, want 0")
allocs4 = benches4.get("MixedHostNDA", {}).get("allocs_per_op")
if allocs4 not in (None, 0):
    bad.append(f"MixedHostNDA @4 workers: {allocs4} allocs/op, want 0")
if bad:
    sys.exit("bench.sh: FAIL: steady-state loop allocates: " + "; ".join(bad))

# Overhead gate on machines without free CPUs: with no parallelism to
# win, the 4-worker executor (channel-domain rounds plus the
# core-sharded front-end) must stay within 15% of the serial path.
# The 4-worker side is MixedHostNDAWorkers4 from the SAME go test
# invocation as the serial benchmark (the two run seconds apart), not
# the separate CHOPIM_BENCH_WORKERS=4 invocation minutes later: on a
# shared container the two invocations can land in different load
# eras, which turns a cross-invocation ratio into a lottery.
#
# Threshold history: PR 9 gated at 1.05 when the serial floor was
# ~235ms/100k cycles. PR 10's power-of-two set-index cut the serial
# floor to ~200-215ms while the executor's fixed handoff cost
# (~18ms/100k cycles, ~60ns per phase barrier) is unchanged —
# interleaved A/B of the PR 9 and PR 10 binaries measured 4-worker
# floors of 233.8ms vs 232.9ms in the same run — so the *ratio*
# drifted to ~1.08 purely through the faster denominator. 1.15 keeps
# the tripwire (a real executor regression still fails) without
# demanding the fixed barrier cost shrink whenever the serial
# front-end gets faster.
if benches4 and not doc["workers4"]["workers_sweep_valid"]:
    base = benches.get("MixedHostNDA", {}).get("ns_per_op")
    par = benches.get("MixedHostNDAWorkers4", {}).get("ns_per_op")
    if base and par:
        ratio = round(par / base, 3)
        doc["workers4"]["overhead_ratio_vs_serial"] = ratio
        with open(out, "w") as f:
            json.dump(doc, f, indent=2)
            f.write("\n")
        if ratio > 1.15:
            sys.exit(f"bench.sh: FAIL: 4-worker executor costs {ratio}x the serial "
                     "front-end on a machine without free CPUs, want <=1.15")
EOF

echo "bench.sh: wrote $OUT"
