package experiments

import (
	"fmt"

	"chopim/internal/apps"
	"chopim/internal/sim"
	"chopim/internal/workload"
)

// Fig11Row compares shared versus partitioned banks for one mix.
type Fig11Row struct {
	Mix string
	// Host IPC and NDA utilization per configuration.
	SharedDOT, SharedCOPY Result
	PartDOT, PartCOPY     Result
	IdealHostIPC          float64 // host-only, no NDA contention
}

// Fig11 reproduces Figure 11: concurrent access with and without bank
// partitioning under read-intensive (DOT) and write-intensive (COPY)
// NDA operations across all mixes. Partitioning removes host-to-NDA bank
// conflicts and chiefly helps the read-intensive case; COPY also hurts
// host IPC through write turnarounds.
func Fig11(opt Options) ([]Fig11Row, error) { return figCached(opt, "fig11", fig11Rows) }

func fig11Rows(opt Options) ([]Fig11Row, error) {
	n := len(workload.Mixes)
	if opt.Quick {
		n = 2
	}
	mixes := make([]int, n)
	for i := range mixes {
		mixes[i] = i
	}
	return fig11Mixes(opt, mixes)
}

// fig11Mixes runs the Fig 11 comparison for selected mixes: five
// independent simulation points per mix (four shared/partitioned x
// DOT/COPY combinations plus the idealized host-only run), sharded
// across the runner and reassembled per mix.
func fig11Mixes(opt Options, mixes []int) ([]Fig11Row, error) {
	perRankBytes := 2 << 20
	if opt.Quick {
		perRankBytes = 256 << 10
	}
	type point struct {
		mix  int
		part bool
		op   string // "" = idealized host-only run
	}
	var points []point
	for _, mix := range mixes {
		points = append(points,
			point{mix, false, "dot"}, point{mix, false, "copy"},
			point{mix, true, "dot"}, point{mix, true, "copy"},
			point{mix, false, ""})
	}
	results, err := sharded(opt, len(points), func(i int) (Result, error) {
		p := points[i]
		cfg := sim.Default(p.mix)
		if p.op != "" {
			cfg.Partitioned = p.part
		}
		s, err := opt.newSystem(cfg)
		if err != nil {
			return Result{}, err
		}
		var it launcher
		if p.op != "" {
			app, err := apps.NewMicroPlaced(s.RT, p.op, perRankBytes/4, ndartPrivate)
			if err != nil {
				return Result{}, err
			}
			it = app.Iterate
		}
		tag := fmt.Sprintf("fig11-%s-part=%v-%s", workload.MixName(p.mix), p.part, p.op)
		return measureConcurrent(s, it, opt.withTag(tag))
	})
	if err != nil {
		return nil, err
	}
	var rows []Fig11Row
	for i, mix := range mixes {
		base := i * 5
		rows = append(rows, Fig11Row{
			Mix:          workload.MixName(mix),
			SharedDOT:    results[base],
			SharedCOPY:   results[base+1],
			PartDOT:      results[base+2],
			PartCOPY:     results[base+3],
			IdealHostIPC: results[base+4].HostIPC,
		})
	}
	return rows, nil
}
