package cpu

import (
	"testing"

	"chopim/internal/cache"
)

// scriptTrace yields a fixed instruction sequence then repeats the last.
type scriptTrace struct {
	instrs []Instr
	i      int
}

func (s *scriptTrace) Next() Instr {
	if s.i < len(s.instrs) {
		in := s.instrs[s.i]
		s.i++
		return in
	}
	return Instr{}
}

type fakeBackend struct {
	dones []func(int64)
	full  bool
}

func (f *fakeBackend) EnqueueRead(addr uint64, done func(int64)) bool {
	if f.full {
		return false
	}
	f.dones = append(f.dones, done)
	return true
}
func (f *fakeBackend) EnqueueWrite(addr uint64) bool { return true }

type fixedClock struct{}

func (fixedClock) CPUOfDRAM(d int64) int64 { return d }

func newCoreWith(trace TraceSource) (*Core, *fakeBackend) {
	b := &fakeBackend{}
	h := cache.NewHierarchy(cache.DefaultHierarchyConfig(1), b, fixedClock{})
	return NewCore(0, DefaultConfig(), trace, h), b
}

func TestComputeIPCBounded(t *testing.T) {
	c, _ := newCoreWith(&scriptTrace{})
	for cyc := int64(0); cyc < 1000; cyc++ {
		c.Tick(cyc)
	}
	ipc := c.IPC()
	if ipc < 1 || ipc > float64(DefaultConfig().Width) {
		t.Errorf("compute-only IPC = %.2f, want within [1, %d]", ipc, DefaultConfig().Width)
	}
}

func TestSerializeLimitsILP(t *testing.T) {
	all := &scriptTrace{}
	c1, _ := newCoreWith(all)
	for cyc := int64(0); cyc < 2000; cyc++ {
		c1.Tick(cyc)
	}
	serial := &serTrace{}
	c2, _ := newCoreWith(serial)
	for cyc := int64(0); cyc < 2000; cyc++ {
		c2.Tick(cyc)
	}
	if c2.IPC() >= c1.IPC() {
		t.Errorf("fully-serialized IPC %.2f not below unconstrained %.2f", c2.IPC(), c1.IPC())
	}
	if c2.IPC() > 1.1 {
		t.Errorf("fully-serialized IPC %.2f, want ~1", c2.IPC())
	}
}

type serTrace struct{}

func (serTrace) Next() Instr { return Instr{Serialize: true} }

func TestLoadMissBlocksRetirement(t *testing.T) {
	tr := &scriptTrace{instrs: []Instr{{Mem: true, Addr: 0x5000}}}
	c, b := newCoreWith(tr)
	for cyc := int64(0); cyc < 50; cyc++ {
		c.Tick(cyc)
	}
	// The load is outstanding; ROB head blocked, but younger compute
	// instructions continue to fill the ROB.
	if len(b.dones) != 1 {
		t.Fatalf("expected 1 outstanding miss, got %d", len(b.dones))
	}
	retiredBefore := c.Retired
	if retiredBefore != 0 {
		t.Errorf("retired %d instructions past an incomplete load at ROB head", retiredBefore)
	}
	b.dones[0](60)
	for cyc := int64(50); cyc < 300; cyc++ {
		c.Tick(cyc)
	}
	if c.Retired == 0 {
		t.Error("no retirement after load completion")
	}
}

func TestMLPMultipleOutstandingLoads(t *testing.T) {
	var instrs []Instr
	for i := 0; i < 8; i++ {
		instrs = append(instrs, Instr{Mem: true, Addr: uint64(0x10000 + i*4096)})
	}
	tr := &scriptTrace{instrs: instrs}
	c, b := newCoreWith(tr)
	for cyc := int64(0); cyc < 10; cyc++ {
		c.Tick(cyc)
	}
	if len(b.dones) < 4 {
		t.Errorf("only %d overlapping misses; OoO core should expose MLP", len(b.dones))
	}
	_ = c
}

func TestResetStats(t *testing.T) {
	c, _ := newCoreWith(&scriptTrace{})
	for cyc := int64(0); cyc < 100; cyc++ {
		c.Tick(cyc)
	}
	c.ResetStats()
	if c.Retired != 0 || c.Cycles != 0 {
		t.Error("ResetStats did not clear counters")
	}
}

func TestIPCZeroBeforeRun(t *testing.T) {
	c, _ := newCoreWith(&scriptTrace{})
	if c.IPC() != 0 {
		t.Error("IPC nonzero before any cycle")
	}
}
