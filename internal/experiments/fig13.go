package experiments

import (
	"fmt"

	"chopim/internal/apps"
	"chopim/internal/ndart"
	"chopim/internal/sim"
)

// Fig13Row is one (operation, operand-size) measurement.
type Fig13Row struct {
	Op      string
	Size    string // Small, Medium, Large, Small+Async
	HostIPC float64
	NDAUtil float64
}

// Fig13 reproduces Figure 13: every Table I NDA operation under three
// per-rank operand sizes (8 KB, 128 KB, 8 MB) plus asynchronous launch
// at the small size, concurrent with mix1 under next-rank prediction.
// Short ops suffer launch overhead and load imbalance; asynchronous
// macro launches recover most of the loss.
func Fig13(opt Options) ([]Fig13Row, error) { return figCached(opt, "fig13", fig13Rows) }

func fig13Rows(opt Options) ([]Fig13Row, error) {
	sizes := []struct {
		name  string
		bytes int
		async bool
	}{
		{"Small", 8 << 10, false},
		{"Medium", 128 << 10, false},
		{"Large", 8 << 20, false},
		{"Small+Async", 8 << 10, true},
	}
	ops := []string{"axpby", "axpbypcz", "axpy", "copy", "dot", "gemv", "nrm2", "scal"}
	if opt.Quick {
		ops = []string{"copy", "dot", "nrm2"}
		sizes = []struct {
			name  string
			bytes int
			async bool
		}{sizes[0], sizes[1], sizes[3]}
	}
	type point struct {
		op    string
		name  string
		bytes int
		async bool
	}
	var points []point
	for _, op := range ops {
		for _, sz := range sizes {
			if sz.bytes == 8<<20 && opt.Quick {
				continue
			}
			points = append(points, point{op, sz.name, sz.bytes, sz.async})
		}
	}
	return sharded(opt, len(points), func(i int) (Fig13Row, error) {
		p := points[i]
		res, err := runFig13Point(p.op, p.bytes, p.async,
			opt.withTag("fig13-"+p.op+"-"+p.name))
		if err != nil {
			return Fig13Row{}, fmt.Errorf("fig13 %s/%s: %w", p.op, p.name, err)
		}
		return Fig13Row{Op: p.op, Size: p.name, HostIPC: res.HostIPC, NDAUtil: res.NDAUtil}, nil
	})
}

func runFig13Point(op string, bytesPerRank int, async bool, opt Options) (Result, error) {
	cfg := sim.Default(1)
	s, err := opt.newSystem(cfg)
	if err != nil {
		return Result{}, err
	}
	if op == "gemv" {
		// GEMV: 128 rows, columns sized to the per-rank operand.
		cols := bytesPerRank / 4
		m, err := s.RT.NewMatrix(128, cols, ndart.Shared)
		if err != nil {
			return Result{}, err
		}
		it := func() (*ndart.Handle, error) { return s.RT.Gemv(nil, m, nil) }
		return measureConcurrent(s, it, opt)
	}
	app, err := apps.NewMicroPlaced(s.RT, op, bytesPerRank/4, ndart.Private)
	if err != nil {
		return Result{}, err
	}
	it := app.Iterate
	if async {
		// Asynchronous macro launch: 32 iterations per launch packet.
		spec, err := apps.MicroSpec(s.RT, op, bytesPerRank/4)
		if err != nil {
			return Result{}, err
		}
		it = func() (*ndart.Handle, error) {
			return s.RT.MacroFor(32, func(int) ndart.Spec { return spec })
		}
	}
	return measureConcurrent(s, it, opt)
}
