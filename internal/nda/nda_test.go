package nda

import (
	"testing"

	"chopim/internal/addrmap"
	"chopim/internal/dram"
	"chopim/internal/mc"
)

func testSetup(cfg Config) (*Engine, *dram.Mem, []*mc.Controller) {
	g := dram.DefaultGeometry()
	mem := dram.New(g, dram.DDR42400())
	m := addrmap.NewSkylakeLike(g)
	var mcs []*mc.Controller
	for ch := 0; ch < g.Channels; ch++ {
		mcs = append(mcs, mc.NewController(mc.DefaultConfig(), mem, m, ch))
	}
	return NewEngine(cfg, mem, mcs), mem, mcs
}

// seqAddrs builds n sequential column addresses in one rank/bank row(s).
func seqAddrs(ch, rank, row, n int) []dram.Addr {
	out := make([]dram.Addr, n)
	g := dram.DefaultGeometry()
	for i := range out {
		out[i] = dram.Addr{
			Channel: ch, Rank: rank, BankGroup: 0, Bank: 0,
			Row: row + i/g.Cols, Col: i % g.Cols,
		}
	}
	return out
}

func tickAll(e *Engine, mcs []*mc.Controller, from, cycles int64) int64 {
	for c := from; c < from+cycles; c++ {
		for _, h := range mcs {
			h.Tick(c)
		}
		e.Tick(c)
	}
	return from + cycles
}

func TestOpKindProperties(t *testing.T) {
	cases := []struct {
		k      OpKind
		reads  int
		writes bool
	}{
		{OpCOPY, 1, true}, {OpDOT, 2, false}, {OpNRM2, 1, false},
		{OpSCAL, 1, true}, {OpAXPY, 2, true}, {OpAXPBY, 2, true},
		{OpAXPBYPCZ, 3, true}, {OpXMY, 2, true}, {OpGEMV, 1, false},
	}
	for _, c := range cases {
		if got := c.k.ReadOperands(); got != c.reads {
			t.Errorf("%v.ReadOperands() = %d, want %d", c.k, got, c.reads)
		}
		if got := c.k.WritesResult(); got != c.writes {
			t.Errorf("%v.WritesResult() = %v, want %v", c.k, got, c.writes)
		}
	}
}

func TestNewOpValidation(t *testing.T) {
	it := SliceIter(nil)
	mustPanic(t, func() { NewOp(OpDOT, []Iter{it}, nil, nil) })
	mustPanic(t, func() { NewOp(OpCOPY, []Iter{it}, nil, nil) })
	mustPanic(t, func() { NewOp(OpDOT, []Iter{it, it}, it, nil) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

func TestCopyOpMovesAllBlocks(t *testing.T) {
	e, mem, mcs := testSetup(DefaultConfig())
	const n = 256
	var doneAt int64 = -1
	e.Launch(0, 0, func() *Op {
		return NewOp(OpCOPY,
			[]Iter{SliceIter(seqAddrs(0, 0, 0, n))},
			SliceIter(seqAddrs(0, 0, 1000, n)),
			func(c int64) { doneAt = c })
	})
	tickAll(e, mcs, 0, 50000)
	if doneAt < 0 {
		t.Fatal("COPY never completed")
	}
	if mem.Counts().NDARD != n || mem.Counts().NDAWR != n {
		t.Errorf("NDA RD/WR = %d/%d, want %d/%d", mem.Counts().NDARD, mem.Counts().NDAWR, n, n)
	}
	if e.Busy() {
		t.Error("engine still busy after completion")
	}
}

func TestDotReadsRoundRobinBatches(t *testing.T) {
	e, mem, mcs := testSetup(DefaultConfig())
	const n = 64
	done := false
	e.Launch(0, 0, func() *Op {
		return NewOp(OpDOT,
			[]Iter{SliceIter(seqAddrs(0, 0, 0, n)), SliceIter(seqAddrs(0, 0, 500, n))},
			nil, func(int64) { done = true })
	})
	tickAll(e, mcs, 0, 20000)
	if !done {
		t.Fatal("DOT never completed")
	}
	if mem.Counts().NDARD != 2*n || mem.Counts().NDAWR != 0 {
		t.Errorf("NDA RD/WR = %d/%d, want %d/0", mem.Counts().NDARD, mem.Counts().NDAWR, 2*n)
	}
}

func TestWriteBufferBackpressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WriteBufCap = 32
	e, _, mcs := testSetup(cfg)
	done := false
	e.Launch(0, 0, func() *Op {
		return NewOp(OpCOPY,
			[]Iter{SliceIter(seqAddrs(0, 0, 0, 512))},
			SliceIter(seqAddrs(0, 0, 2000, 512)),
			func(int64) { done = true })
	})
	tickAll(e, mcs, 0, 100000)
	if !done {
		t.Error("COPY with small write buffer never completed")
	}
}

func TestNDAYieldsToHostRank(t *testing.T) {
	e, mem, mcs := testSetup(Config{Policy: IssueIfIdle, WriteBufCap: 128, Seed: 1})
	// Saturate host channel 0 rank 0 with reads while NDA works on the
	// same rank: NDA must still finish, but record host-yield stalls.
	m := addrmap.NewSkylakeLike(dram.DefaultGeometry())
	hostAddr := uint64(0)
	for ; ; hostAddr += dram.BlockBytes {
		if d := m.Decode(hostAddr); d.Channel == 0 && d.Rank == 0 {
			break
		}
	}
	done := false
	e.Launch(0, 0, func() *Op {
		return NewOp(OpNRM2, []Iter{SliceIter(seqAddrs(0, 0, 100, 256))}, nil,
			func(int64) { done = true })
	})
	var cyc int64
	for ; cyc < 200000 && !done; cyc++ {
		mcs[0].EnqueueRead(hostAddr+uint64(cyc%64)*4096*64, cyc, nil)
		for _, h := range mcs {
			h.Tick(cyc)
		}
		e.Tick(cyc)
	}
	if !done {
		t.Fatal("NDA starved forever under host load")
	}
	st := e.Ranks[0][0].Stats()
	if st.StallsHost == 0 {
		t.Error("no host-priority stalls recorded under contention")
	}
	if mem.Counts().RD == 0 {
		t.Error("host reads never issued")
	}
}

func TestNextRankPredictionInhibitsWrites(t *testing.T) {
	e, _, mcs := testSetup(Config{Policy: NextRank, WriteBufCap: 128, Seed: 1})
	// A standing host read to rank 0 never issued (we never tick the
	// host MC) keeps the oldest-read predictor pointed at rank 0.
	m := addrmap.NewSkylakeLike(dram.DefaultGeometry())
	var hostAddr uint64
	for ; ; hostAddr += dram.BlockBytes {
		if d := m.Decode(hostAddr); d.Channel == 0 && d.Rank == 0 {
			break
		}
	}
	mcs[0].EnqueueRead(hostAddr, 0, nil)
	// Place the NDA operands in a bank group the standing host read does
	// not touch, so only the write policy (not host row-command
	// priority) can throttle it.
	hostBank := m.Decode(hostAddr)
	bg := (hostBank.BankGroup + 1) % dram.DefaultGeometry().BankGroups
	mk := func(row, n int) []dram.Addr {
		out := seqAddrs(0, 0, row, n)
		for i := range out {
			out[i].BankGroup = bg
		}
		return out
	}
	e.Launch(0, 0, func() *Op {
		return NewOp(OpCOPY,
			[]Iter{SliceIter(mk(0, 64))},
			SliceIter(mk(900, 64)), nil)
	})
	// Tick only the NDA engine so the host queue stays populated.
	for c := int64(0); c < 5000; c++ {
		e.Tick(c)
	}
	st := e.Ranks[0][0].Stats()
	if st.BlocksWritten != 0 {
		t.Errorf("NDA wrote %d blocks while next-rank predictor targeted its rank", st.BlocksWritten)
	}
	if st.StallsPolicy == 0 {
		t.Error("no policy stalls recorded")
	}
	if st.BlocksRead == 0 {
		t.Error("reads should proceed under write-only throttling")
	}
}

func TestStochasticThrottlesWrites(t *testing.T) {
	slow, _, mcsSlow := testSetup(Config{Policy: Stochastic, StochasticProb: 1.0 / 64, WriteBufCap: 128, Seed: 1})
	fast, _, mcsFast := testSetup(Config{Policy: Stochastic, StochasticProb: 1.0, WriteBufCap: 128, Seed: 1})
	mk := func() *Op {
		return NewOp(OpCOPY,
			[]Iter{SliceIter(seqAddrs(0, 0, 0, 256))},
			SliceIter(seqAddrs(0, 0, 800, 256)), nil)
	}
	slow.Launch(0, 0, mk)
	fast.Launch(0, 0, mk)
	tickAll(slow, mcsSlow, 0, 4000)
	tickAll(fast, mcsFast, 0, 4000)
	ws, wf := slow.Ranks[0][0].Stats().BlocksWritten, fast.Ranks[0][0].Stats().BlocksWritten
	if ws >= wf {
		t.Errorf("stochastic 1/64 wrote %d >= prob-1.0's %d", ws, wf)
	}
	if slow.Ranks[0][0].Stats().StallsPolicy == 0 {
		t.Error("low-probability stochastic issue recorded no stalls")
	}
}

func TestReplicaVerificationAcrossPolicies(t *testing.T) {
	for _, pol := range []Policy{IssueIfIdle, Stochastic, NextRank} {
		cfg := Config{Policy: pol, StochasticProb: 0.25, WriteBufCap: 64, Seed: 3, VerifyFSM: true}
		e, _, mcs := testSetup(cfg)
		done := false
		e.Launch(0, 0, func() *Op {
			return NewOp(OpCOPY,
				[]Iter{SliceIter(seqAddrs(0, 0, 0, 128))},
				SliceIter(seqAddrs(0, 0, 700, 128)),
				func(int64) { done = true })
		})
		tickAll(e, mcs, 0, 30000) // panics on divergence
		if !done {
			t.Errorf("policy %v: op did not complete under verification", pol)
		}
	}
}

func TestPolicyStrings(t *testing.T) {
	for _, p := range []Policy{IssueIfIdle, Stochastic, NextRank} {
		if p.String() == "" {
			t.Error("empty policy name")
		}
	}
	for k := OpAXPBY; k <= OpGEMV; k++ {
		if k.String() == "" {
			t.Error("empty op name")
		}
	}
}

// TestProtectionFaultOnForeignRank: an op whose pattern strays off its
// own rank must trip the NDA-side protection check.
func TestProtectionFaultOnForeignRank(t *testing.T) {
	e, _, mcs := testSetup(DefaultConfig())
	bad := seqAddrs(0, 0, 0, 4)
	bad[2].Rank = 1 // foreign rank mid-stream
	e.Launch(0, 0, func() *Op {
		return NewOp(OpNRM2, []Iter{SliceIter(bad)}, nil, nil)
	})
	defer func() {
		if recover() == nil {
			t.Error("foreign-rank access did not fault")
		}
	}()
	tickAll(e, mcs, 0, 10000)
}

// TestProtectionFaultOnGuardViolation: a Guard rejecting an access
// faults the op.
func TestProtectionFaultOnGuardViolation(t *testing.T) {
	e, _, mcs := testSetup(DefaultConfig())
	addrs := seqAddrs(0, 0, 0, 4)
	e.Launch(0, 0, func() *Op {
		op := NewOp(OpNRM2, []Iter{SliceIter(addrs)}, nil, nil)
		op.Guard = func(a dram.Addr) bool { return a.Col < 2 } // rejects later blocks
		return op
	})
	defer func() {
		if recover() == nil {
			t.Error("guard violation did not fault")
		}
	}()
	tickAll(e, mcs, 0, 10000)
}
