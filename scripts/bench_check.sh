#!/usr/bin/env bash
# bench_check.sh — compare a fresh bench.sh snapshot against the latest
# committed BENCH_PR*.json and fail on per-benchmark ns/op regressions
# beyond a generous threshold.
#
# Usage: scripts/bench_check.sh <fresh.json> [threshold]
#   fresh.json   snapshot produced by scripts/bench.sh on this machine
#   threshold    allowed relative slowdown (default 1.25 = +25%)
#
# CI machines differ in speed from the machine that produced the
# committed snapshot, so raw ns/op is not comparable. The check
# normalizes by machine speed, anchored on CalibrationSpin — a pure-CPU
# integer spin with no memory traffic, so its fresh/committed ratio is
# the machine factor and nothing else. Unlike the old median-of-ratios
# anchor, a *uniform* regression of the whole simulator suite cannot
# hide inside the calibration ratio: the spin does not run simulator
# code. When either snapshot predates the calibration benchmark the
# check falls back to the median ratio across shared benchmarks (which
# deliberately passes uniform slowdowns). After normalization, any
# benchmark whose ratio exceeds the threshold fails.
set -euo pipefail
cd "$(dirname "$0")/.."

FRESH="${1:?usage: bench_check.sh <fresh.json> [threshold]}"
THRESH="${2:-1.25}"
LATEST="$(ls BENCH_PR*.json 2>/dev/null | sort -V | tail -1 || true)"
if [ -z "$LATEST" ]; then
    echo "bench_check.sh: no committed BENCH_PR*.json to compare against; skipping"
    exit 0
fi

python3 - "$FRESH" "$LATEST" "$THRESH" <<'EOF'
import json, statistics, sys

fresh, committed, thresh = sys.argv[1], sys.argv[2], float(sys.argv[3])
f = json.load(open(fresh))["benchmarks"]
c = json.load(open(committed))["benchmarks"]

CALIB = "CalibrationSpin"
shared = sorted(set(f) & set(c))
ratios = {}
for name in shared:
    fn, cn = f[name].get("ns_per_op"), c[name].get("ns_per_op")
    if fn and cn:
        ratios[name] = fn / cn
if not ratios:
    print(f"bench_check.sh: no shared benchmarks between {fresh} and {committed}; skipping")
    sys.exit(0)

if CALIB in ratios:
    factor = ratios[CALIB]
    anchor = "calibration"
else:
    factor = statistics.median(ratios.values())
    anchor = "median"
print(f"bench_check.sh: comparing {fresh} vs {committed} "
      f"(machine factor {factor:.2f} [{anchor}], threshold +{(thresh - 1) * 100:.0f}%)")
bad = False
for name, r in sorted(ratios.items()):
    norm = r / factor
    flag = "FAIL" if norm > thresh else "ok"
    print(f"  {name}: raw x{r:.2f}, normalized x{norm:.2f} [{flag}]")
    if norm > thresh:
        bad = True

# The allocation gate is absolute: every host-path benchmark's
# steady-state loop must stay allocation-free on any machine. The
# checkpointed-cadence benchmark is exempt — its durable encode
# allocates by design on the background writer; the zero-allocs
# contract covers the tick loop with checkpointing off, and its cost
# is gated separately by bench.sh's per-cycle ratio.
ALLOC_EXEMPT = {"MixedHostNDACheckpointed"}
for name in sorted(f):
    if name in ALLOC_EXEMPT:
        continue
    allocs = f[name].get("allocs_per_op")
    if allocs not in (None, 0):
        print(f"  {name}: {allocs} allocs/op, want 0 [FAIL]")
        bad = True

# So is the cached-regeneration gate: replaying a figure from the
# result cache is a JSON read and must beat simulating it by >=10x.
cache = json.load(open(fresh)).get("cache")
if cache:
    speedup = cache.get("speedup", 0)
    flag = "FAIL" if speedup < 10 else "ok"
    print(f"  cached regeneration: x{speedup} vs simulated, want >=10 [{flag}]")
    if speedup < 10:
        bad = True

sys.exit(1 if bad else 0)
EOF
