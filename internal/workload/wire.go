// On-disk codec for GenState: the RNG draw count and stream cursors are
// already durable identities (restore replays the seeded source).
package workload

import "encoding/json"

type genWire struct {
	Draws   uint64
	Streams []uint64
}

// MarshalJSON encodes the snapshot for the durable checkpoint file.
func (st *GenState) MarshalJSON() ([]byte, error) {
	return json.Marshal(genWire{Draws: st.draws, Streams: st.streams})
}

// UnmarshalJSON rebuilds the snapshot written by MarshalJSON.
func (st *GenState) UnmarshalJSON(b []byte) error {
	var w genWire
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	st.draws, st.streams = w.Draws, w.Streams
	return nil
}
