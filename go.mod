module chopim

go 1.22
