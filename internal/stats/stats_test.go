package stats

import (
	"testing"
	"testing/quick"
)

func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		gap  int64
		want IdleBucket
	}{
		{1, Idle1To10}, {10, Idle1To10}, {11, Idle10To100}, {100, Idle10To100},
		{101, Idle100To250}, {250, Idle100To250}, {251, Idle250To500},
		{500, Idle250To500}, {501, Idle500To1000}, {1000, Idle500To1000},
		{1001, Idle1000Plus}, {1 << 40, Idle1000Plus},
	}
	for _, c := range cases {
		if got := bucketOf(c.gap); got != c.want {
			t.Errorf("bucketOf(%d) = %v, want %v", c.gap, got, c.want)
		}
	}
}

func TestIdleHistAccounting(t *testing.T) {
	var h IdleHist
	h.MarkBusy(0, 10)    // 10 busy
	h.MarkBusy(15, 20)   // 5-cycle gap, 5 busy
	h.MarkBusy(320, 330) // 300-cycle gap, 10 busy
	h.Finalize(340)      // 10-cycle trailing gap
	c := h.Cycles()
	if c[Busy] != 25 {
		t.Errorf("busy = %d, want 25", c[Busy])
	}
	if c[Idle1To10] != 15 { // 5 + trailing 10
		t.Errorf("1-10 bucket = %d, want 15", c[Idle1To10])
	}
	if c[Idle250To500] != 300 {
		t.Errorf("250-500 bucket = %d, want 300", c[Idle250To500])
	}
}

func TestOverlappingBusyMerged(t *testing.T) {
	var h IdleHist
	h.MarkBusy(0, 20)
	h.MarkBusy(10, 30) // overlaps; only 10 new busy cycles
	h.Finalize(30)
	if got := h.BusyCycles(); got != 30 {
		t.Errorf("busy = %d, want 30", got)
	}
}

func TestFractionsSumToOne(t *testing.T) {
	f := func(spans []uint8) bool {
		var h IdleHist
		var at int64
		for _, s := range spans {
			at += int64(s%50) + 1
			h.MarkBusy(at, at+int64(s%7)+1)
			at += int64(s%7) + 1
		}
		h.Finalize(at + 100)
		fr := h.Fractions()
		var sum float64
		for _, v := range fr {
			sum += v
		}
		return sum > 0.999 && sum < 1.001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEmptyHistogram(t *testing.T) {
	var h IdleHist
	fr := h.Fractions()
	for _, v := range fr {
		if v != 0 {
			t.Error("fractions nonzero on empty histogram")
		}
	}
}

func TestBucketStrings(t *testing.T) {
	for b := IdleBucket(0); b < NumIdleBuckets; b++ {
		if b.String() == "" {
			t.Errorf("bucket %d has empty label", b)
		}
	}
}
