package cpu

// CoreState is an opaque deep copy of a Core's mutable state: the ROB
// contents, LSQ occupancy, batch lookahead, blocked-state tracking, and
// retirement counters. Completion callbacks are not serialized — they
// are per-slot closures the constructor rebuilds, and restored MSHR
// waiters reattach through DoneFn.
type CoreState struct {
	rob      []robEntry
	head, n  int
	stores   int
	loads    int
	stalled  Instr
	hasStall bool

	look   []Instr
	lookH  int
	lookN  int
	pend   int
	pendAt int64

	blocked    bool
	probeStall bool
	wake       int64
	dirty      bool

	retired int64
	cycles  int64
}

// Snapshot captures the core's mutable state.
func (c *Core) Snapshot() *CoreState {
	return &CoreState{
		rob:  append([]robEntry(nil), c.rob...),
		head: c.head, n: c.n, stores: c.stores, loads: c.loads,
		stalled: c.stalled, hasStall: c.hasStall,
		look: append([]Instr(nil), c.look...), lookH: c.lookH, lookN: c.lookN,
		pend: c.pend, pendAt: c.pendAt,
		blocked: c.blocked, probeStall: c.probeStall, wake: c.wake, dirty: c.dirty,
		retired: c.Retired, cycles: c.Cycles,
	}
}

// Restore overwrites the core's mutable state with the snapshot. The
// core must have been built with the same Config. The ROB is copied in
// place: the per-slot completion closures capture &c.rob[i], so the
// backing array must not be replaced.
func (c *Core) Restore(st *CoreState) {
	if len(st.rob) != len(c.rob) {
		panic("cpu: restore onto a core with different ROB size")
	}
	copy(c.rob, st.rob)
	c.head, c.n, c.stores, c.loads = st.head, st.n, st.stores, st.loads
	c.stalled, c.hasStall = st.stalled, st.hasStall
	copy(c.look, st.look)
	c.lookH, c.lookN = st.lookH, st.lookN
	c.pend, c.pendAt = st.pend, st.pendAt
	c.blocked, c.probeStall, c.wake, c.dirty = st.blocked, st.probeStall, st.wake, st.dirty
	c.Retired, c.Cycles = st.retired, st.cycles
}
