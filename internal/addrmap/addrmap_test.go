package addrmap

import (
	"math/rand"
	"testing"
	"testing/quick"

	"chopim/internal/dram"
)

func encodeKey(g dram.Geometry, a dram.Addr) uint64 {
	k := uint64(a.Channel)
	k = k*uint64(g.Ranks) + uint64(a.Rank)
	k = k*uint64(g.BankGroups) + uint64(a.BankGroup)
	k = k*uint64(g.BanksPerGroup) + uint64(a.Bank)
	k = k*uint64(g.Rows) + uint64(a.Row)
	k = k*uint64(g.Cols) + uint64(a.Col)
	return k
}

func TestSkylakeLikeCoversAddressBits(t *testing.T) {
	g := dram.DefaultGeometry()
	m := NewSkylakeLike(g)
	// 32 GiB => 35 address bits.
	if got, want := m.AddressBits(), uint(35); got != want {
		t.Errorf("AddressBits() = %d, want %d", got, want)
	}
}

// TestSkylakeLikeBijective: distinct block addresses decode to distinct
// DRAM locations (sampled; the mapping is linear so random sampling plus
// the basis test below gives high confidence).
func TestSkylakeLikeBijective(t *testing.T) {
	g := dram.Geometry{Channels: 2, Ranks: 2, BankGroups: 2, BanksPerGroup: 2, Rows: 256, Cols: 16}
	m := NewSkylakeLike(g)
	seen := make(map[uint64]uint64)
	n := g.Capacity()
	for pa := uint64(0); pa < n; pa += dram.BlockBytes {
		k := encodeKey(g, m.Decode(pa))
		if prev, dup := seen[k]; dup {
			t.Fatalf("alias: %#x and %#x decode to same location", prev, pa)
		}
		seen[k] = pa
	}
}

// TestPartitionedBijective exhaustively verifies the swap keeps the
// mapping alias-free on a reduced geometry.
func TestPartitionedBijective(t *testing.T) {
	g := dram.Geometry{Channels: 2, Ranks: 2, BankGroups: 2, BanksPerGroup: 2, Rows: 256, Cols: 16}
	for _, reserved := range []int{1, 2, 3} {
		m := NewPartitioned(NewSkylakeLike(g), reserved)
		seen := make(map[uint64]uint64)
		for pa := uint64(0); pa < g.Capacity(); pa += dram.BlockBytes {
			k := encodeKey(g, m.Decode(pa))
			if prev, dup := seen[k]; dup {
				t.Fatalf("reserved=%d: alias between %#x and %#x", reserved, prev, pa)
			}
			seen[k] = pa
		}
	}
}

// TestPartitionIsolation: host-region addresses never land in reserved
// banks, and shared-region addresses always do.
func TestPartitionIsolation(t *testing.T) {
	g := dram.Geometry{Channels: 2, Ranks: 2, BankGroups: 2, BanksPerGroup: 2, Rows: 256, Cols: 16}
	for _, reserved := range []int{1, 2} {
		m := NewPartitioned(NewSkylakeLike(g), reserved)
		for pa := uint64(0); pa < g.Capacity(); pa += dram.BlockBytes {
			a := m.Decode(pa)
			flat := a.GlobalBank(g)
			inShared := pa >= m.SharedBase()
			if inShared && !m.IsSharedBank(flat) {
				t.Fatalf("reserved=%d: shared addr %#x landed in host bank %d", reserved, pa, flat)
			}
			if !inShared && m.IsSharedBank(flat) {
				t.Fatalf("reserved=%d: host addr %#x landed in reserved bank %d", reserved, pa, flat)
			}
		}
	}
}

// TestPartitionIsolationFullGeometry samples the real 32 GiB geometry.
func TestPartitionIsolationFullGeometry(t *testing.T) {
	g := dram.DefaultGeometry()
	m := NewPartitioned(NewSkylakeLike(g), 1)
	rng := rand.New(rand.NewSource(1))
	cap := g.Capacity()
	for i := 0; i < 200000; i++ {
		pa := rng.Uint64() % cap &^ (dram.BlockBytes - 1)
		a := m.Decode(pa)
		flat := a.GlobalBank(g)
		if (pa >= m.SharedBase()) != m.IsSharedBank(flat) {
			t.Fatalf("isolation violated at %#x: bank %d, shared base %#x", pa, flat, m.SharedBase())
		}
	}
}

// TestColorAlignment: two system-row-aligned addresses agreeing on all
// color bits decode to the same channel/rank/bank at every common offset.
func TestColorAlignment(t *testing.T) {
	g := dram.DefaultGeometry()
	m := NewSkylakeLike(g)
	sysRow := uint64(g.SystemRowBytes())

	// Color stride: smallest address delta preserving all color bits.
	var colorMask uint64
	for _, b := range m.ColorBits() {
		colorMask |= 1 << b
	}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		base1 := (rng.Uint64() % (g.Capacity() / sysRow)) * sysRow
		// Find another system row with identical color bits.
		base2 := base1
		for attempts := 0; attempts < 10000; attempts++ {
			cand := (rng.Uint64() % (g.Capacity() / sysRow)) * sysRow
			if cand != base1 && cand&colorMask == base1&colorMask {
				base2 = cand
				break
			}
		}
		if base2 == base1 {
			continue
		}
		for i := 0; i < 64; i++ {
			off := rng.Uint64() % sysRow &^ (dram.BlockBytes - 1)
			a1 := m.Decode(base1 + off)
			a2 := m.Decode(base2 + off)
			if a1.Channel != a2.Channel || a1.Rank != a2.Rank ||
				a1.BankGroup != a2.BankGroup || a1.Bank != a2.Bank {
				t.Fatalf("color-aligned bases %#x/%#x diverge at offset %#x: %+v vs %+v",
					base1, base2, off, a1, a2)
			}
		}
	}
}

// TestChannelInterleavingIsFine: consecutive blocks should spread across
// channels with fine granularity (within a few blocks).
func TestChannelInterleavingIsFine(t *testing.T) {
	g := dram.DefaultGeometry()
	m := NewSkylakeLike(g)
	seen := map[int]bool{}
	for pa := uint64(0); pa < 8*dram.BlockBytes; pa += dram.BlockBytes {
		seen[m.Decode(pa).Channel] = true
	}
	if len(seen) != g.Channels {
		t.Errorf("first 8 blocks touch %d channels, want %d", len(seen), g.Channels)
	}
}

// TestRowHashingSpreadsBanks: walking rows at a fixed column should visit
// many distinct banks (the permutation interleaving the paper relies on).
func TestRowHashingSpreadsBanks(t *testing.T) {
	g := dram.DefaultGeometry()
	m := NewSkylakeLike(g)
	rowStride := uint64(g.RowBytes()) * uint64(g.Channels) * uint64(g.Ranks) * uint64(g.BanksPerRank())
	banks := map[int]bool{}
	for i := uint64(0); i < 64; i++ {
		a := m.Decode(i * rowStride)
		banks[a.GlobalBank(g)] = true
	}
	if len(banks) < 4 {
		t.Errorf("row-strided walk hit only %d distinct banks; hashing ineffective", len(banks))
	}
}

func TestScaledGeometries(t *testing.T) {
	for _, ranks := range []int{2, 4, 8} {
		g := dram.DefaultGeometry()
		g.Ranks = ranks
		m := NewSkylakeLike(g)
		// Decode of the last valid address must stay in range.
		a := m.Decode(g.Capacity() - dram.BlockBytes)
		if a.Rank >= ranks || a.Row >= g.Rows || a.Col >= g.Cols {
			t.Errorf("ranks=%d: decode out of range: %+v", ranks, a)
		}
		p := NewPartitioned(m, 1)
		if p.HostCapacity() != g.Capacity()/16*15 {
			t.Errorf("ranks=%d: HostCapacity = %d", ranks, p.HostCapacity())
		}
	}
}

func TestNewPartitionedRejectsBadCounts(t *testing.T) {
	m := NewSkylakeLike(dram.DefaultGeometry())
	for _, bad := range []int{0, 16, -1} {
		func() {
			defer func() { recover() }()
			NewPartitioned(m, bad)
			t.Errorf("NewPartitioned(%d) did not panic", bad)
		}()
	}
}

// Property: decode is deterministic and in-range for random addresses.
func TestDecodeInRange(t *testing.T) {
	g := dram.DefaultGeometry()
	m := NewPartitioned(NewSkylakeLike(g), 2)
	f := func(raw uint64) bool {
		pa := raw % g.Capacity() &^ (dram.BlockBytes - 1)
		a := m.Decode(pa)
		return a.Channel >= 0 && a.Channel < g.Channels &&
			a.Rank >= 0 && a.Rank < g.Ranks &&
			a.BankGroup >= 0 && a.BankGroup < g.BankGroups &&
			a.Bank >= 0 && a.Bank < g.BanksPerGroup &&
			a.Row >= 0 && a.Row < g.Rows &&
			a.Col >= 0 && a.Col < g.Cols
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
