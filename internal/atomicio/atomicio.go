// Package atomicio is the one place the repo writes a file atomically
// and durably: temp file in the target directory, write, fsync, rename
// over the destination, fsync the directory. Readers therefore observe
// either the previous complete file or the new complete file — never a
// torn intermediate — and a rename that was observed survives power
// loss (the directory entry is forced out with the data).
//
// The figure result cache, the sweep journals' directory creation, and
// the checkpoint writers all route through here; before this package
// each had its own temp-file+rename variant with no fsync, so a crash
// at the wrong instant could publish a rename whose data blocks were
// still in the page cache.
package atomicio

import (
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with b. The temp file lives in
// path's directory (rename must not cross filesystems) and is removed
// on any failure; the destination is never left torn.
func WriteFile(path string, b []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(b); err != nil {
		return cleanup(err)
	}
	// fsync before rename: the rename is the commit point, so the data
	// must be durable before the new directory entry can be.
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	syncDir(dir)
	return nil
}

// syncDir forces the directory entry out. Best-effort: some filesystems
// refuse fsync on directories, and the rename itself is already atomic
// against crashes that don't lose power.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
