package ring

import "testing"

// TestFIFOAcrossGrowthAndWrap checks ordering through interleaved
// push/pop cycles that force both wrap-around and mid-stream growth.
func TestFIFOAcrossGrowthAndWrap(t *testing.T) {
	var r Ring[int]
	next, want := 0, 0
	push := func(k int) {
		for i := 0; i < k; i++ {
			r.Push(next)
			next++
		}
	}
	pop := func(k int) {
		t.Helper()
		for i := 0; i < k; i++ {
			if got := r.Front(); got != want {
				t.Fatalf("Front = %d, want %d", got, want)
			}
			if got := r.Pop(); got != want {
				t.Fatalf("Pop = %d, want %d", got, want)
			}
			want++
		}
	}
	push(10)
	pop(7) // head advances: subsequent pushes wrap
	push(60)
	pop(20)
	push(200) // forces growth with a wrapped head
	pop(r.Len())
	if r.Len() != 0 {
		t.Fatalf("Len = %d after draining, want 0", r.Len())
	}
	if next != want {
		t.Fatalf("popped %d values, pushed %d", want, next)
	}
}

// TestZeroOnPop ensures dequeued slots drop their references.
func TestZeroOnPop(t *testing.T) {
	var r Ring[*int]
	v := new(int)
	r.Push(v)
	if r.Pop() != v {
		t.Fatal("Pop returned wrong element")
	}
	if r.buf[0] != nil {
		t.Fatal("Pop left a reference in the vacated slot")
	}
}
