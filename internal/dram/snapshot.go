package dram

// MemState is an opaque deep copy of a Mem's mutable state — bank/row
// state, every timing horizon, the refresh and bus occupancy clocks,
// command counters, and the chVer versions. It contains no pointers
// into the live Mem, so one snapshot can seed any number of restores
// (checkpoint forking).
type MemState struct {
	channels []chanState
	cnts     []CmdCounts
	chVer    []uint64
}

// Snapshot captures the Mem's full mutable state.
func (m *Mem) Snapshot() *MemState {
	st := &MemState{
		channels: make([]chanState, len(m.channels)),
		cnts:     append([]CmdCounts(nil), m.cnts...),
		chVer:    append([]uint64(nil), m.chVer...),
	}
	for c := range m.channels {
		copyChanState(&st.channels[c], &m.channels[c])
	}
	return st
}

// Restore overwrites the Mem's mutable state with the snapshot. The Mem
// must have been built with the same Geometry as the snapshotted one
// (callers restore onto a freshly constructed same-config system).
func (m *Mem) Restore(st *MemState) {
	if len(m.channels) != len(st.channels) {
		panic("dram: restore onto a Mem with different geometry")
	}
	copy(m.cnts, st.cnts)
	copy(m.chVer, st.chVer)
	for c := range m.channels {
		copyChanState(&m.channels[c], &st.channels[c])
	}
}

// copyChanState deep-copies src into dst, allocating dst's nested
// slices when they are missing (snapshot) and reusing them when they
// match (restore).
func copyChanState(dst, src *chanState) {
	ranks := dst.ranks
	*dst = *src
	if len(ranks) != len(src.ranks) {
		ranks = make([]rankState, len(src.ranks))
	}
	dst.ranks = ranks
	for r := range src.ranks {
		s, d := &src.ranks[r], &dst.ranks[r]
		banks, bgs, faw := d.banks, d.bgs, d.faw
		*d = *s
		if len(banks) != len(s.banks) {
			banks = make([]bankState, len(s.banks))
		}
		if len(bgs) != len(s.bgs) {
			bgs = make([]bgState, len(s.bgs))
		}
		if len(faw) != len(s.faw) {
			faw = make([]int64, len(s.faw))
		}
		d.banks, d.bgs, d.faw = banks, bgs, faw
		copy(d.banks, s.banks)
		copy(d.bgs, s.bgs)
		copy(d.faw, s.faw)
	}
}
