package experiments

import (
	"errors"
	"os"
	"reflect"
	"testing"

	"chopim/internal/sim"
)

// TestFigureCacheRoundTrip proves the content-addressed cache replays a
// figure exactly: the second run with the same options returns identical
// rows without simulating, and a changed budget misses (different key).
func TestFigureCacheRoundTrip(t *testing.T) {
	opt := QuickOptions()
	opt.WarmCycles, opt.MeasureCycles = 2_000, 8_000
	opt.CacheDir = t.TempDir()

	before := ReadRunnerStats()
	first, err := Fig2(opt)
	if err != nil {
		t.Fatal(err)
	}
	mid := ReadRunnerStats()
	if hits, misses := mid.CacheHits-before.CacheHits, mid.CacheMisses-before.CacheMisses; hits != 0 || misses != 1 {
		t.Fatalf("first run: %d hits, %d misses; want 0, 1", hits, misses)
	}
	second, err := Fig2(opt)
	if err != nil {
		t.Fatal(err)
	}
	after := ReadRunnerStats()
	if hits := after.CacheHits - mid.CacheHits; hits != 1 {
		t.Fatalf("second run: %d cache hits; want 1", hits)
	}
	if jobs := after.Jobs - mid.Jobs; jobs != 0 {
		t.Fatalf("second run simulated %d points; want 0 (cache hit)", jobs)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("cached rows differ from generated rows:\n gen: %+v\n hit: %+v", first, second)
	}

	// A different measurement budget must key differently.
	opt2 := opt
	opt2.MeasureCycles = 9_000
	if opt2.cacheKey("fig2") == opt.cacheKey("fig2") {
		t.Fatal("cache key ignores MeasureCycles")
	}
	// Worker counts must NOT key differently (results are identical).
	opt3 := opt
	opt3.Parallel, opt3.SimWorkers = 7, 3
	if opt3.cacheKey("fig2") != opt.cacheKey("fig2") {
		t.Fatal("cache key depends on worker counts")
	}
}

// TestResumeJournal interrupts a sweep (an injected point failure) and
// proves the resumed run replays the completed points and recomputes
// only the rest, with the final rows identical to an uninterrupted run.
func TestResumeJournal(t *testing.T) {
	opt := QuickOptions()
	opt.JournalDir = t.TempDir()
	opt.Parallel = 1 // deterministic completion order up to the failure

	boom := errors.New("injected point failure")
	n := 6
	gen := func(fail int) func(Options) ([]int, error) {
		return func(opt Options) ([]int, error) {
			return sharded(opt, n, func(i int) (int, error) {
				if i == fail {
					return 0, boom
				}
				return 100 + i, nil
			})
		}
	}
	if _, err := figCached(opt, "resume-test", gen(4)); !errors.Is(err, boom) {
		t.Fatalf("interrupted run: got %v, want injected failure", err)
	}
	before := ReadRunnerStats()
	opt.Resume = true
	rows, err := figCached(opt, "resume-test", gen(-1))
	if err != nil {
		t.Fatal(err)
	}
	after := ReadRunnerStats()
	if res := after.Resumed - before.Resumed; res != 4 {
		t.Fatalf("resumed %d points; want 4 (points 0-3 completed before the failure)", res)
	}
	if jobs := after.Jobs - before.Jobs; jobs != 2 {
		t.Fatalf("resumed run simulated %d points; want 2", jobs)
	}
	want := []int{100, 101, 102, 103, 104, 105}
	if !reflect.DeepEqual(rows, want) {
		t.Fatalf("resumed rows = %v, want %v", rows, want)
	}
	// The completed figure removes its journals.
	ents, err := os.ReadDir(opt.JournalDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("journal dir not cleaned after completion: %v", ents)
	}
}

// TestWarmPoolFork proves host-only points share warm-up state: the
// second point with the same configuration forks from the pooled
// checkpoint and still measures the same result as warming afresh.
func TestWarmPoolFork(t *testing.T) {
	opt := QuickOptions()
	opt.WarmCycles, opt.MeasureCycles = 3_000, 10_000
	// A config no other test warms at this budget (distinct pool key).
	cfg := sim.Default(5)

	measure := func() Result {
		s, err := opt.newSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := measureConcurrent(s, nil, opt)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	before := ReadRunnerStats()
	first := measure()
	second := measure()
	after := ReadRunnerStats()
	if after.WarmForks-before.WarmForks < 1 {
		t.Fatal("second identical point did not fork from the warm pool")
	}
	if first != second {
		t.Fatalf("pooled warm-up changed the measurement:\n warm: %+v\n fork: %+v", first, second)
	}
}
