package mc

import (
	"strings"
	"testing"

	"chopim/internal/dram"
)

// loadedController returns a ticked controller with reads still pending
// across several banks — live queue, buckets, and calendar state for
// the corruption tests to mutilate.
func loadedController(t *testing.T) *Controller {
	t.Helper()
	c, _, m := testController()
	a := addrOnChannel0(m, 0)
	for i := 0; i < 24; i++ {
		// Spread across rows/banks so multiple buckets populate.
		if !c.EnqueueRead(a+uint64(i)*(1<<14)*dram.BlockBytes, 0, nil) {
			t.Fatalf("enqueue %d refused", i)
		}
	}
	for cyc := int64(0); cyc < 40; cyc++ {
		c.Tick(cyc)
	}
	if r, _ := c.QueueOccupancy(); r == 0 {
		t.Fatal("all reads completed before the corruption tests could run")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("healthy controller fails its own invariants: %v", err)
	}
	return c
}

// TestCheckInvariantsHealthy drives a controller through enqueues,
// completions, drains, and refreshes, validating at every stride: a
// legitimately-operating scheduler must never trip the checker.
func TestCheckInvariantsHealthy(t *testing.T) {
	c, _, m := testController()
	a := addrOnChannel0(m, 0)
	next := uint64(0)
	for cyc := int64(0); cyc < 4_000; cyc++ {
		if cyc%7 == 0 {
			c.EnqueueRead(a+next*(1<<13)*dram.BlockBytes, cyc, nil)
			next++
		}
		if cyc%13 == 0 {
			c.EnqueueWrite(a+(next+1000)*(1<<13)*dram.BlockBytes, cyc)
		}
		c.Tick(cyc)
		if cyc%50 == 0 {
			if err := c.CheckInvariants(); err != nil {
				t.Fatalf("cycle %d: %v", cyc, err)
			}
		}
	}
}

func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(t *testing.T, c *Controller)
		want    string
	}{
		{"occupancy-counter", func(t *testing.T, c *Controller) {
			c.rq.n++
		}, "arrival list holds"},
		{"bank-key", func(t *testing.T, c *Controller) {
			c.rq.head.bankKey++
		}, "bankKey"},
		{"bucket-count", func(t *testing.T, c *Controller) {
			c.rq.banks[c.rq.occ[0]].n++
		}, "bucket count"},
		{"calendar-bitmap", func(t *testing.T, c *Controller) {
			for s := 0; s < calSlots; s++ {
				if c.rq.calBkt[s] == -1 && c.rq.calBits[s>>6]&(1<<uint(s&63)) == 0 {
					c.rq.calBits[s>>6] |= 1 << uint(s&63)
					return
				}
			}
			t.Skip("no empty calendar slot to corrupt")
		}, "bitmap"},
		{"calendar-count", func(t *testing.T, c *Controller) {
			c.rq.calCount++
		}, "calCount"},
		{"age-order", func(t *testing.T, c *Controller) {
			if c.rq.head == nil || c.rq.head.qnext == nil {
				t.Skip("need two queued requests")
			}
			c.rq.head.qnext.seq = c.rq.head.seq - 1
		}, "not increasing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := loadedController(t)
			tc.corrupt(t, c)
			err := c.CheckInvariants()
			if err == nil {
				t.Fatal("corruption not detected")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestCheckInvariantsDetectsUnsoundKey files an occupied bank under a
// far-future calendar key — breaking the lower-bound contract the lazy
// scheduler depends on — and asserts the rescan-oracle spot check
// catches it. Only banks whose rank stamp is current carry the
// contract, so the test picks one of those.
func TestCheckInvariantsDetectsUnsoundKey(t *testing.T) {
	c := loadedController(t)
	q := &c.rq
	for _, bk := range q.occ {
		rank := int(bk)/c.bpr - c.channel*c.nrank
		if q.calStamp[rank] != c.mem.RowStamp(c.channel, rank) {
			continue
		}
		q.calPlace(bk, q.calBase+calSlots+100_000, q.calBase-1)
		err := c.CheckInvariants()
		if err == nil {
			t.Fatal("unsound far-future key not detected")
		}
		if !strings.Contains(err.Error(), "lower bound violated") {
			t.Errorf("error %q does not identify the soundness violation", err)
		}
		return
	}
	t.Skip("no occupied bank with a current rank stamp")
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.ReadQueue = 0 },
		func(c *Config) { c.WriteQueue = -1 },
		func(c *Config) { c.DrainLow = c.DrainHigh },
		func(c *Config) { c.DrainHigh = c.WriteQueue + 1 },
	}
	for i, mut := range bad {
		cfg := DefaultConfig()
		mut(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}
