// Sharded experiment runner: every figure of the evaluation is a set of
// independent (mix x policy x configuration) simulation points, so the
// harness fans them across a bounded worker pool. Each point builds its
// own System whose RNGs are seeded from its configuration alone (no
// state is shared between systems), results are returned in enumeration
// order, and errors surface deterministically (the lowest-index failure
// wins) — so any worker count, including 1, yields byte-identical
// figure tables.
package experiments

import (
	"errors"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"chopim/internal/apps"
	"chopim/internal/sim"
)

// Parallelism resolves an Options.Parallel value: 0 means serial, any
// negative value means one worker per available CPU.
func (o Options) parallelism() int {
	p := o.Parallel
	if p < 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p < 1 {
		p = 1
	}
	return p
}

// RunnerStats aggregates sharded-runner activity process-wide (cmd
// surfaces it after a sweep).
type RunnerStats struct {
	Jobs      int64         // simulation points executed
	Errors    int64         // points that returned an error
	BusyTime  time.Duration // summed per-point wall time across workers
	MaxShards int64         // largest worker pool used

	CacheHits   int64 // figures replayed from the result cache
	CacheMisses int64 // figures simulated and stored (CacheDir set)
	Resumed     int64 // points replayed from resume journals
	WarmForks   int64 // points forked from a pooled warm checkpoint

	Panics      int64 // points that panicked (recovered and quarantined)
	Retries     int64 // point attempts retried after a transient error
	Timeouts    int64 // points that hit their deadline (Options.PointTimeout)
	Quarantined int64 // points abandoned after a panic

	Canceled     int64 // points cut by cooperative cancellation
	CkptWrites   int64 // mid-point checkpoint files persisted
	CkptRestores int64 // points resumed from a mid-point checkpoint
}

var (
	statJobs        atomic.Int64
	statErrs        atomic.Int64
	statBusy        atomic.Int64
	statShard       atomic.Int64
	statCacheHits   atomic.Int64
	statCacheMisses atomic.Int64
	statResumed     atomic.Int64
	statWarmForks   atomic.Int64
	statPanics      atomic.Int64
	statRetries     atomic.Int64
	statTimeouts    atomic.Int64
	statQuarantined atomic.Int64
)

// ReadRunnerStats returns the aggregated runner statistics.
func ReadRunnerStats() RunnerStats {
	return RunnerStats{
		Jobs:      statJobs.Load(),
		Errors:    statErrs.Load(),
		BusyTime:  time.Duration(statBusy.Load()),
		MaxShards: statShard.Load(),

		CacheHits:   statCacheHits.Load(),
		CacheMisses: statCacheMisses.Load(),
		Resumed:     statResumed.Load(),
		WarmForks:   statWarmForks.Load(),

		Panics:      statPanics.Load(),
		Retries:     statRetries.Load(),
		Timeouts:    statTimeouts.Load(),
		Quarantined: statQuarantined.Load(),

		Canceled:     statCanceled.Load(),
		CkptWrites:   statCkptWrites.Load(),
		CkptRestores: statCkptRestores.Load(),
	}
}

// ErrSweepCanceled reports that admission stopped before every point
// ran. It always surfaces as the sweep's error — a drained sweep's
// partial results must never be journaled as finished or cached as a
// complete figure.
var ErrSweepCanceled = errors.New("experiments: sweep canceled before all points ran")

// sharded runs n independent jobs with the worker count opt implies and
// returns the results in index order. Every attempt runs under panic
// isolation with retry/quarantine classification (see runPoint). The
// default is fail-fast: the first error by index aborts the figure
// (matching the serial harness, which stops at the first failing
// point); later jobs already in flight are still drained, and pending
// submissions are cancelled both before and after the worker-slot
// acquire, so a failure never admits a stale submission that was
// already parked on the semaphore. Under Options.KeepGoing every point
// runs regardless of failures and the failed ones come back together
// as a *SweepError; quarantined points are never journaled as done, so
// a resumed sweep recomputes exactly them.
func sharded[T any](opt Options, n int, job func(i int) (T, error)) ([]T, error) {
	workers := opt.parallelism()
	if prev := statShard.Load(); int64(workers) > prev {
		statShard.CompareAndSwap(prev, int64(workers))
	}
	results := make([]T, n)
	// Resume journal (Options.JournalDir): replay points a previous run
	// completed, log each point this run completes. Replayed points skip
	// simulation entirely; a figure's points are independent, so the
	// remaining ones compute exactly what they would have.
	jf := opt.journal.open(n)
	done := journalLoad(jf, results)
	runOne := func(i int) error {
		if done != nil && done[i] {
			return nil
		}
		v, err := runPoint(opt, i, job)
		if err != nil {
			return err
		}
		results[i] = v
		journalRecord(jf, i, v)
		return nil
	}
	if workers == 1 || n <= 1 {
		var fails []*PointError
		for i := 0; i < n; i++ {
			if opt.Cancel.AdmissionStopped() {
				return results, ErrSweepCanceled
			}
			if err := runOne(i); err != nil {
				if !opt.KeepGoing {
					return nil, err
				}
				fails = append(fails, asPointError(i, err))
			}
		}
		if len(fails) > 0 {
			return results, &SweepError{Total: n, Failures: fails}
		}
		return results, nil
	}
	errs := make([]error, n)
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	var failed atomic.Bool
	admissionStopped := false
	for i := 0; i < n; i++ {
		if opt.Cancel.AdmissionStopped() {
			admissionStopped = true
			break // drain: in-flight points finish, no new ones start
		}
		if !opt.KeepGoing && failed.Load() {
			break // abort before queueing on a worker slot
		}
		sem <- struct{}{}
		if opt.Cancel.AdmissionStopped() {
			admissionStopped = true
			<-sem
			break
		}
		if !opt.KeepGoing && failed.Load() {
			// The failure landed while this submission waited on the
			// semaphore; release the slot and abort.
			<-sem
			break
		}
		wg.Add(1)
		go func(i int) {
			defer func() { <-sem; wg.Done() }()
			errs[i] = runOne(i)
			if errs[i] != nil {
				failed.Store(true)
			}
		}(i)
	}
	wg.Wait()
	if opt.KeepGoing {
		if admissionStopped {
			return results, ErrSweepCanceled
		}
		var fails []*PointError
		for i, err := range errs {
			if err != nil {
				fails = append(fails, asPointError(i, err))
			}
		}
		if len(fails) > 0 {
			return results, &SweepError{Total: n, Failures: fails}
		}
		return results, nil
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if admissionStopped {
		return results, ErrSweepCanceled
	}
	return results, nil
}

func timedJob[T any](i int, job func(int) (T, error)) (T, error) {
	start := time.Now()
	v, err := job(i)
	statBusy.Add(int64(time.Since(start)))
	statJobs.Add(1)
	if err != nil {
		statErrs.Add(1)
	}
	return v, err
}

// NDAOnlyRow is one point of the NDA-only throughput sweep.
type NDAOnlyRow struct {
	Op        string
	NDABlocks int64
	BWGBs     float64
}

// NDAOnlySweep measures NDA-only (no host cores) throughput for a set
// of Table I operations through the sharded runner. It doubles as the
// speed benchmark workload: NDA-only points are where fast-forward
// skips the most cycles, and the points are fully independent, so the
// sweep exercises both layers of the speed subsystem at once.
func NDAOnlySweep(opt Options, ops []string) ([]NDAOnlyRow, error) {
	return figCached(opt, "ndaonly-"+strings.Join(ops, "+"),
		func(opt Options) ([]NDAOnlyRow, error) { return ndaOnlyRows(opt, ops) })
}

func ndaOnlyRows(opt Options, ops []string) ([]NDAOnlyRow, error) {
	perRank := 1 << 20
	if opt.Quick {
		perRank = 256 << 10
	}
	return sharded(opt, len(ops), func(i int) (NDAOnlyRow, error) {
		s, err := opt.newSystem(sim.Default(-1))
		if err != nil {
			return NDAOnlyRow{}, err
		}
		app, err := apps.NewMicroPlaced(s.RT, ops[i], perRank/4, ndartPrivate)
		if err != nil {
			return NDAOnlyRow{}, err
		}
		// Every point of this sweep shares one config; the tag is the
		// only thing telling their checkpoints apart.
		res, err := measureConcurrent(s, app.Iterate, opt.withTag("ndaonly-"+ops[i]))
		if err != nil {
			return NDAOnlyRow{}, err
		}
		return NDAOnlyRow{Op: ops[i], NDABlocks: res.NDABlocks, BWGBs: res.NDABWGBs}, nil
	})
}
