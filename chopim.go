// Package chopim is a from-scratch reproduction of "Near Data
// Acceleration with Concurrent Host Access" (Cho, Kwon, Lym, Erez — ISCA
// 2020): a cycle-level simulation of DDR4 main memory shared, at
// fine temporal granularity, between a multi-core host and near-data
// accelerators (NDAs) integrated on the memory modules.
//
// The package re-exports the system builder, configuration presets, the
// NDA runtime API (vectors, matrices, Table I operations, asynchronous
// macro launches), and the experiment harness that regenerates every
// figure of the paper's evaluation. Implementation subsystems live under
// internal/; see DESIGN.md for the full inventory.
//
// The simulator is organized as channel-sharded execution domains:
// each DRAM channel's controller, device timing state, and rank NDAs
// form one domain, and the fast path (RunFast) can tick due domains on
// concurrent worker goroutines (Config.SimWorkers; DESIGN.md §2.5).
// Results are bit-identical for every worker count; call System.Close
// to release the workers of a parallel system when done.
//
// Quickstart:
//
//	sys, err := chopim.NewSystem(chopim.DefaultConfig(1)) // host mix1
//	x, _ := sys.RT.NewVector(1<<20, chopim.Shared)
//	y, _ := sys.RT.NewVector(1<<20, chopim.Shared)
//	h, _ := sys.RT.Copy(y, x) // NDA copy concurrent with host traffic
//	_ = sys.Await(10_000_000, h)
//	fmt.Println(sys.HostIPC(), sys.NDABlocks())
package chopim

import (
	"chopim/internal/dram"
	"chopim/internal/nda"
	"chopim/internal/ndart"
	"chopim/internal/sim"
)

// System is the composed simulation: host cores, caches, memory
// controllers, DDR4 devices, NDAs, and the Chopim runtime.
type System = sim.System

// Config assembles one system instance.
type Config = sim.Config

// Geometry describes the memory organization.
type Geometry = dram.Geometry

// Timing holds the DDR4 timing parameters.
type Timing = dram.Timing

// Handle tracks completion of launched NDA operations.
type Handle = ndart.Handle

// Vector is a float32 vector shared between host and NDAs.
type Vector = ndart.Vector

// Matrix is a row-major float32 matrix shared between host and NDAs.
type Matrix = ndart.Matrix

// Runtime is the Chopim runtime and NDA API.
type Runtime = ndart.Runtime

// Placements for NDA tensors.
const (
	Shared  = ndart.Shared
	Private = ndart.Private
)

// NDA write-throttling policies (Section III-B).
const (
	IssueIfIdle = nda.IssueIfIdle
	Stochastic  = nda.Stochastic
	NextRank    = nda.NextRank
)

// NewSystem builds a system from the configuration.
func NewSystem(cfg Config) (*System, error) { return sim.New(cfg) }

// DefaultConfig returns the paper's baseline (Table II) running host
// application mix (0-8), with bank partitioning and next-rank
// prediction enabled. Pass mix = -1 for an NDA-only system.
func DefaultConfig(mix int) Config { return sim.Default(mix) }

// DefaultGeometry returns the 2-channel x 2-rank DDR4 baseline.
func DefaultGeometry() Geometry { return dram.DefaultGeometry() }

// DDR42400 returns the Table II timing parameters.
func DDR42400() Timing { return dram.DDR42400() }
