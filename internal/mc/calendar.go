package mc

import (
	"math/bits"

	"chopim/internal/dram"
)

// Calendar-queue candidate selection (DESIGN.md §2.6). Instead of
// sweeping every occupied bank on every due tick, each occupied bank is
// bucketed by a key that lower-bounds the earliest cycle any of its
// FR-FCFS candidates can issue:
//
//	key = min( max(p1Rank, ExtColReady), p2Rank )
//
// A due tick then examines only the ready region — banks whose key has
// reached now — plus the banks whose rank stamp moved since they were
// keyed. The lower-bound property is what makes lazy keys sound:
//
//   - The candidate structure (which request is the row hit, whether
//     the bank needs ACT or PRE) and the direction of horizon movement
//     split by command class. ACT and PRE change row state: they can
//     create candidates or reassign a bank's horizons outright
//     (earlier included), and they bump the rank's RowStamp — calSync
//     eagerly re-keys every occupied bank of a row-stamp-changed rank
//     before any decision or horizon is derived, so a structural
//     change can never leave a bank keyed beyond its true ready cycle.
//     Column commands and REF only push horizons forward (dram.Issue
//     maxi semantics), so keys staled by them under-estimate and the
//     banks are revalidated lazily when their old key comes due.
//   - The channel-bus horizon folded into column keys moves only on
//     this controller's own external columns (internal NDA columns skip
//     the bus). An issue to the key's own rank is covered by the stamp
//     resync above; for other ranks ExtColReady is monotone
//     nondecreasing under legal command sequences (bus occupancy ends
//     only move forward, and every branch switch adds at least the
//     turnaround the issue itself had to respect — requires
//     ReadToWrite >= CL-CWL, which Timing.Validate pins), so a stale
//     bus component only under-estimates.
//   - Bucket mutations (enqueue, dequeue-with-survivors) park the bank
//     in the ready region for unconditional revalidation at the next
//     scan.
//
// Keys at or below the synced tick live on the ready list; keys inside
// the ring window live in their exact slot (one key per slot); keys
// beyond the window (refresh pushes horizons by tRFC) live on the
// overflow list and re-enter the ring as the base advances. The ring's
// occupied slots are tracked in a bitmap so advancing to the next
// non-empty key is a handful of word scans, independent of occupancy.

// rgLink adds an occupied bank to its rank group's list.
func (q *reqQueue) rgLink(bk int32) {
	g := bk >> q.shift
	q.rgPrev[bk] = -1
	q.rgNext[bk] = q.rgHead[g]
	if h := q.rgHead[g]; h != -1 {
		q.rgPrev[h] = bk
	}
	q.rgHead[g] = bk
}

// rgUnlink removes a vacated bank from its rank group's list.
func (q *reqQueue) rgUnlink(bk int32) {
	p, n := q.rgPrev[bk], q.rgNext[bk]
	if n != -1 {
		q.rgPrev[n] = p
	}
	if p != -1 {
		q.rgNext[p] = n
	} else {
		q.rgHead[bk>>q.shift] = n
	}
}

// calUnlink detaches a bank from whichever calendar list holds it.
func (q *reqQueue) calUnlink(bk int32) {
	switch q.calWhere[bk] {
	case calAbsent:
		return
	case calBucket:
		q.calCount--
	}
	p, n := q.calPrev[bk], q.calNext[bk]
	if n != -1 {
		q.calPrev[n] = p
	}
	if p != -1 {
		q.calNext[p] = n
	} else {
		switch q.calWhere[bk] {
		case calBucket:
			s := int(q.calKey[bk]) & calMask
			q.calBkt[s] = n
			if n == -1 {
				q.calBits[s>>6] &^= 1 << uint(s&63)
			}
		case calInReady:
			q.calReady = n
		case calInOver:
			q.calOver = n
		}
	}
	q.calWhere[bk] = calAbsent
}

// calPushReady prepends a bank to the ready list (no key needed: ready
// banks are revalidated by every scan).
func (q *reqQueue) calPushReady(bk int32) {
	q.calPrev[bk] = -1
	q.calNext[bk] = q.calReady
	if h := q.calReady; h != -1 {
		q.calPrev[h] = bk
	}
	q.calReady = bk
	q.calWhere[bk] = calInReady
}

// calForceReady moves a bank to the ready region for unconditional
// revalidation (bucket-content mutations: enqueue, partial dequeue).
func (q *reqQueue) calForceReady(bk int32) {
	if q.calWhere[bk] == calInReady {
		return
	}
	q.calUnlink(bk)
	q.calPushReady(bk)
}

// calPlace files a bank under key k relative to the synced tick now.
// Callers run after calAdvance(now), so calBase == now+1 and any future
// key inside the window maps to its exact slot.
func (q *reqQueue) calPlace(bk int32, k, now int64) {
	if k <= now {
		if q.calWhere[bk] == calInReady {
			return
		}
		q.calUnlink(bk)
		q.calPushReady(bk)
		return
	}
	if q.calWhere[bk] == calBucket && q.calKey[bk] == k {
		return
	}
	q.calUnlink(bk)
	q.calKey[bk] = k
	if k-q.calBase >= calSlots {
		q.calPrev[bk] = -1
		q.calNext[bk] = q.calOver
		if h := q.calOver; h != -1 {
			q.calPrev[h] = bk
		}
		q.calOver = bk
		q.calWhere[bk] = calInOver
		return
	}
	s := int(k) & calMask
	q.calPrev[bk] = -1
	q.calNext[bk] = q.calBkt[s]
	if h := q.calBkt[s]; h != -1 {
		q.calPrev[h] = bk
	} else {
		q.calBits[s>>6] |= 1 << uint(s&63)
	}
	q.calBkt[s] = bk
	q.calWhere[bk] = calBucket
	q.calCount++
}

// calFirstKey returns the smallest key currently in the ring, or Never
// when the ring is empty. Slots are scanned in key order: the base
// slot's word from the base bit up, the following words whole, then the
// base word's wrapped low bits.
func (q *reqQueue) calFirstKey() int64 {
	if q.calCount == 0 {
		return dram.Never
	}
	sBase := int(q.calBase) & calMask
	wi, bi := sBase>>6, uint(sBase&63)
	slot := -1
	if v := q.calBits[wi] &^ (1<<bi - 1); v != 0 {
		slot = wi<<6 + bits.TrailingZeros64(v)
	} else {
		for i := 1; i < calWords; i++ {
			w := (wi + i) & (calWords - 1)
			if v := q.calBits[w]; v != 0 {
				slot = w<<6 + bits.TrailingZeros64(v)
				break
			}
		}
		if slot < 0 {
			if v := q.calBits[wi] & (1<<bi - 1); v != 0 {
				slot = wi<<6 + bits.TrailingZeros64(v)
			}
		}
	}
	return q.calBase + int64((slot-sBase)&calMask)
}

// calAdvance moves the ring base to now+1, draining every bucket whose
// key has come due into the ready list and re-filing overflow entries
// that fit the new window.
func (q *reqQueue) calAdvance(now int64) {
	if now < q.calBase {
		return
	}
	for q.calCount > 0 {
		k := q.calFirstKey()
		if k > now {
			break
		}
		s := int(k) & calMask
		for bk := q.calBkt[s]; bk != -1; {
			nx := q.calNext[bk]
			q.calCount--
			q.calPushReady(bk)
			bk = nx
		}
		q.calBkt[s] = -1
		q.calBits[s>>6] &^= 1 << uint(s&63)
		q.calBase = k + 1
	}
	q.calBase = now + 1
	if q.calOver != -1 {
		for bk := q.calOver; bk != -1; {
			nx := q.calNext[bk]
			if k := q.calKey[bk]; k-q.calBase < calSlots {
				q.calUnlink(bk)
				q.calPlace(bk, k, now)
			}
			bk = nx
		}
	}
}

// calSync brings the queue's calendar current at now: due buckets drain
// to the ready list, and every occupied bank of a rank whose ROW state
// moved (RowStamp: an ACT or PRE issued) since its last keying is
// revalidated and re-filed — the only commands that can create a
// candidate or move one earlier. Column commands and REF deliberately
// do not trigger a resync: they only push horizons forward, so the
// affected banks' keys go stale LOW and the banks merely surface for
// revalidation a few cycles early when their old key comes due (the
// scan re-files them at the fresh horizon). calSync also loads the
// per-rank timing-stamp and channel-bus scratch the scan reads. After
// calSync, every bank outside the ready region provably has no
// candidate ready at or before its key (the lower-bound invariant at
// the head of this file), so the scan may ignore it.
func (c *Controller) calSync(q *reqQueue, cmd dram.Command, now int64) {
	q.calAdvance(now)
	for r := 0; r < c.nrank; r++ {
		st := c.mem.RankStamp(c.channel, r)
		c.stScratch[r] = st
		c.busScratch[r] = c.mem.ExtColReady(c.channel, cmd, r)
		rs := c.mem.RowStamp(c.channel, r)
		if q.calStamp[r] == rs {
			continue
		}
		q.calStamp[r] = rs
		bus := c.busScratch[r]
		for bk := q.rgHead[c.channel*c.nrank+r]; bk != -1; bk = q.rgNext[bk] {
			e := &q.sched[q.occPos[bk]]
			if e.dirty || e.rkStamp != st {
				c.recomputeEntry(q, e, bk, cmd, st)
			}
			k := dram.Never
			if e.p1 != nil {
				k = max(e.p1Rank, bus)
			}
			if e.p2 != nil && e.p2Rank < k {
				k = e.p2Rank
			}
			q.calPlace(bk, k, now)
		}
	}
}

// calScan is the calendar replacement for the per-tick occupied-bank
// sweep: it validates only the ready region and returns the same
// decision outputs the sweep derived — the oldest ready pass-1 request
// and the oldest ready pass-2 entry — plus the min FUTURE candidate
// horizon among the banks it examined (hzFuture: horizons strictly
// beyond now). Ready candidates deliberately do not contribute to the
// horizon: a ready pass-1 or unblocked pass-2 candidate issues this
// very tick, and a no-issue tick therefore proves every ready pass-2
// candidate rowWanted-blocked — a state that cannot change without a
// queue mutation or a command issue, each of which bumps ver or ChVer
// and re-dispatches the controller. The controller consequently SLEEPS
// through rowWanted-blocked windows instead of polling them cycle by
// cycle (the scan-on-tick cost the calendar exists to remove). Banks
// found not ready are re-filed at their true ready cycle on the way
// through, so a saturated channel's scan touches O(ready candidates)
// banks per due tick. Decision equivalence with the rescan oracle is
// inherited from the sweep's argument: the ready region provably
// contains every bank with a ready candidate (calSync), readiness per
// candidate is the same exact horizon compare, and oldest-first
// selection by seq is order-independent.
func (c *Controller) calScan(q *reqQueue, cmd dram.Command, now int64) (best *Request, best2 *bankEntry, hzFuture int64) {
	c.calSync(q, cmd, now)
	base := int32(c.channel * c.nrank)
	hzFuture = dram.Never
	for bk := q.calReady; bk != -1; {
		nx := q.calNext[bk]
		rank := (bk >> q.shift) - base
		e := &q.sched[q.occPos[bk]]
		if e.dirty || e.rkStamp != c.stScratch[rank] {
			c.recomputeEntry(q, e, bk, cmd, c.stScratch[rank])
		}
		ready1, ready2 := dram.Never, dram.Never
		if e.p1 != nil {
			ready1 = max(e.p1Rank, c.busScratch[rank])
		}
		if e.p2 != nil {
			ready2 = e.p2Rank
		}
		k := min(ready1, ready2)
		if k > now {
			if k < hzFuture {
				hzFuture = k
			}
			q.calPlace(bk, k, now)
			bk = nx
			continue
		}
		// A ready bank can still carry one future-side candidate (an
		// open bank whose PRE is ready but whose row hit matures later);
		// its maturation needs a wake of its own.
		if ready1 > now && ready1 < hzFuture {
			hzFuture = ready1
		}
		if ready2 > now && ready2 < hzFuture {
			hzFuture = ready2
		}
		if ready1 <= now && (best == nil || e.p1.seq < best.seq) {
			best = e.p1
		}
		if ready2 <= now && (best2 == nil || e.p2.seq < best2.p2.seq) {
			best2 = e
		}
		bk = nx
	}
	return best, best2, hzFuture
}

// calHorizon returns the exact min candidate horizon of the queue after
// a calScan found nothing to issue: the fresh horizons of the examined
// ready region, min'd with the validated first future bucket. Bucket
// keys staled by column traffic are lower bounds, so the min bucket is
// validated (and its banks re-filed at their fresh, later cycles) until
// one survives — its key is then the true minimum over the whole ring:
// every deeper bank's true readiness is bounded below by its own stale
// key, which is >= the surviving bucket's. Overflow keys (refresh-far
// horizons) contribute their stale lower bounds, which only costs an
// extra no-op wake in the rare refresh case. The result feeds the
// fused NextEvent hint, so a no-issue tick leaves an exact wake bound
// behind and the controller sleeps until a candidate truly matures.
func (c *Controller) calHorizon(q *reqQueue, cmd dram.Command, now int64, hzReady int64) int64 {
	base := int32(c.channel * c.nrank)
	for q.calCount > 0 {
		k := q.calFirstKey()
		if k >= hzReady {
			break
		}
		stable := true
		s := int(k) & calMask
		for bk := q.calBkt[s]; bk != -1; {
			nx := q.calNext[bk]
			rank := (bk >> q.shift) - base
			e := &q.sched[q.occPos[bk]]
			if e.dirty || e.rkStamp != c.stScratch[rank] {
				c.recomputeEntry(q, e, bk, cmd, c.stScratch[rank])
			}
			k2 := dram.Never
			if e.p1 != nil {
				k2 = max(e.p1Rank, c.busScratch[rank])
			}
			if e.p2 != nil && e.p2Rank < k2 {
				k2 = e.p2Rank
			}
			if k2 != k {
				// Keys are lower bounds, so a fresh key only moves
				// later; re-file and keep validating the new minimum.
				stable = false
				q.calPlace(bk, k2, now)
			}
			bk = nx
		}
		if stable {
			if k < hzReady {
				hzReady = k
			}
			break
		}
	}
	for bk := q.calOver; bk != -1; bk = q.calNext[bk] {
		if q.calKey[bk] < hzReady {
			hzReady = q.calKey[bk]
		}
	}
	return hzReady
}
