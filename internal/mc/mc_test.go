package mc

import (
	"testing"

	"chopim/internal/addrmap"
	"chopim/internal/dram"
)

func testController() (*Controller, *dram.Mem, addrmap.Mapper) {
	g := dram.DefaultGeometry()
	mem := dram.New(g, dram.DDR42400())
	m := addrmap.NewSkylakeLike(g)
	return NewController(DefaultConfig(), mem, m, 0), mem, m
}

// addrOnChannel0 finds a block address decoding to channel 0.
func addrOnChannel0(m addrmap.Mapper, start uint64) uint64 {
	for a := start; ; a += dram.BlockBytes {
		if m.Decode(a).Channel == 0 {
			return a
		}
	}
}

func TestReadCompletesWithDRAMLatency(t *testing.T) {
	c, mem, m := testController()
	addr := addrOnChannel0(m, 0)
	var doneAt int64 = -1
	if !c.EnqueueRead(addr, 0, func(d int64) { doneAt = d }) {
		t.Fatal("enqueue refused on empty queue")
	}
	for cyc := int64(0); cyc < 200 && doneAt < 0; cyc++ {
		c.Tick(cyc)
	}
	if doneAt < 0 {
		t.Fatal("read never completed")
	}
	// ACT + RD: at least tRCD + CL + BL.
	min := int64(mem.T.RCD + mem.T.CL + mem.T.BL)
	if doneAt < min {
		t.Errorf("read completed at %d, faster than tRCD+CL+BL=%d", doneAt, min)
	}
	if c.ReadsIssued != 1 || mem.Counts().RD != 1 {
		t.Errorf("read accounting: mc=%d dram=%d", c.ReadsIssued, mem.Counts().RD)
	}
}

func TestReadQueueCapacity(t *testing.T) {
	c, _, m := testController()
	a := addrOnChannel0(m, 0)
	for i := 0; i < DefaultConfig().ReadQueue; i++ {
		if !c.EnqueueRead(a+uint64(i)*4096*64, 0, nil) {
			t.Fatalf("queue refused entry %d", i)
		}
	}
	if c.EnqueueRead(a+1<<30, 0, nil) {
		t.Error("queue accepted entry beyond capacity")
	}
}

func TestWriteOverflowNeverRefused(t *testing.T) {
	c, _, m := testController()
	a := addrOnChannel0(m, 0)
	for i := 0; i < 3*DefaultConfig().WriteQueue; i++ {
		if !c.EnqueueWrite(a+uint64(i)*64*128, 0) {
			t.Fatalf("writeback %d refused", i)
		}
	}
	r, w := c.QueueOccupancy()
	if r != 0 || w != 3*DefaultConfig().WriteQueue {
		t.Errorf("occupancy = %d/%d", r, w)
	}
}

func TestWriteDrainServesWrites(t *testing.T) {
	c, mem, m := testController()
	a := addrOnChannel0(m, 0)
	for i := 0; i < DefaultConfig().DrainHigh+2; i++ {
		c.EnqueueWrite(a+uint64(i)*64*97, 0)
	}
	for cyc := int64(0); cyc < 3000; cyc++ {
		c.Tick(cyc)
	}
	if mem.Counts().WR == 0 {
		t.Error("drain mode issued no writes")
	}
	if c.Drains == 0 {
		t.Error("drain mode never triggered above high watermark")
	}
}

func TestRowHitPriorityFRFCFS(t *testing.T) {
	c, mem, m := testController()
	// Two reads to the same row (hit after ACT), one to a different row
	// of the same bank enqueued between them: FR-FCFS should serve both
	// same-row reads before the conflicting one.
	base := addrOnChannel0(m, 0)
	d0 := m.Decode(base)
	var sameRow, otherRow uint64
	found := 0
	for a := base + dram.BlockBytes; found < 2; a += dram.BlockBytes {
		d := m.Decode(a)
		if d.Channel != 0 || d.Rank != d0.Rank || d.BankGroup != d0.BankGroup || d.Bank != d0.Bank {
			continue
		}
		if d.Row == d0.Row && sameRow == 0 {
			sameRow = a
			found++
		}
		if d.Row != d0.Row && otherRow == 0 {
			otherRow = a
			found++
		}
	}
	var order []uint64
	mk := func(addr uint64) func(int64) {
		return func(int64) { order = append(order, addr) }
	}
	c.EnqueueRead(base, 0, mk(base))
	c.EnqueueRead(otherRow, 0, mk(otherRow))
	c.EnqueueRead(sameRow, 0, mk(sameRow))
	for cyc := int64(0); cyc < 1000 && len(order) < 3; cyc++ {
		c.Tick(cyc)
	}
	if len(order) != 3 {
		t.Fatalf("only %d reads completed", len(order))
	}
	if order[2] != otherRow {
		t.Errorf("row conflict served before row hits: order=%v (conflict=%#x)", order, otherRow)
	}
	_ = mem
}

func TestOldestReadRank(t *testing.T) {
	c, _, m := testController()
	if _, ok := c.OldestReadRank(); ok {
		t.Error("OldestReadRank reported a rank on empty queue")
	}
	a := addrOnChannel0(m, 0)
	c.EnqueueRead(a, 0, nil)
	r, ok := c.OldestReadRank()
	if !ok || r != m.Decode(a).Rank {
		t.Errorf("OldestReadRank = (%d,%v)", r, ok)
	}
}

func TestHasDemandFor(t *testing.T) {
	c, mem, m := testController()
	a := addrOnChannel0(m, 0)
	d := m.Decode(a)
	c.EnqueueRead(a, 0, nil)
	if !c.HasDemandFor(d.Rank, d.GlobalBank(mem.Geom)) {
		t.Error("demand not visible for queued read's bank")
	}
	if c.HasDemandFor(d.Rank, (d.GlobalBank(mem.Geom)+1)%mem.Geom.BanksPerRank()) {
		t.Error("phantom demand on other bank")
	}
	if !c.HasAnyDemandFor(d.Rank) {
		t.Error("HasAnyDemandFor missed the rank")
	}
}

func TestHostIssuedRankTracksCycle(t *testing.T) {
	c, _, m := testController()
	a := addrOnChannel0(m, 0)
	c.EnqueueRead(a, 0, nil)
	c.Tick(0) // ACT issues
	if c.HostIssuedRank() != m.Decode(a).Rank {
		t.Errorf("HostIssuedRank = %d after ACT", c.HostIssuedRank())
	}
	// Drain the queue, then an idle cycle reports no rank.
	for cyc := int64(1); cyc < 200; cyc++ {
		c.Tick(cyc)
	}
	if c.HostIssuedRank() != -1 {
		t.Errorf("HostIssuedRank = %d when idle, want -1", c.HostIssuedRank())
	}
}

func TestRefreshScheduling(t *testing.T) {
	g := dram.DefaultGeometry()
	tm := dram.DDR42400()
	tm.REFI = 2000
	tm.RFC = 420
	mem := dram.New(g, tm)
	m := addrmap.NewSkylakeLike(g)
	c := NewController(DefaultConfig(), mem, m, 0)
	// Keep a stream of reads flowing while refreshes interleave.
	a := addrOnChannel0(m, 0)
	for cyc := int64(0); cyc < 20000; cyc++ {
		if cyc%10 == 0 {
			c.EnqueueRead(a+uint64(cyc%512)*64*64, cyc, nil)
		}
		c.Tick(cyc)
	}
	if c.Refreshes < 5 {
		t.Errorf("only %d refreshes in 10 tREFI intervals", c.Refreshes)
	}
	if c.ReadsIssued == 0 {
		t.Error("reads starved by refresh")
	}
}

// addrOnChRank finds a block address decoding to channel 0 and the
// given rank.
func addrOnChRank(m addrmap.Mapper, rank int, start uint64) uint64 {
	for a := start; ; a += dram.BlockBytes {
		if d := m.Decode(a); d.Channel == 0 && d.Rank == rank {
			return a
		}
	}
}

// TestNDAVerNarrowsQVer pins the per-rank staleness contract the NDA
// engine relies on: NDAVer(r) moves exactly when rank r's sleep-bound
// inputs (read-queue head identity, rank-r bucket occupancy in either
// queue) can have moved, even while QVer churns on unrelated traffic.
func TestNDAVerNarrowsQVer(t *testing.T) {
	c, _, m := testController()
	a0 := addrOnChRank(m, 0, 0)
	a1 := addrOnChRank(m, 1, 0)

	v0, q := c.NDAVer(0), c.QVer()
	// A write to rank 1 must churn QVer but stay invisible to rank 0.
	c.EnqueueWrite(a1, 0)
	if c.QVer() == q {
		t.Fatal("write did not move QVer")
	}
	if c.NDAVer(0) != v0 {
		t.Error("rank-1 write moved NDAVer(0)")
	}
	// It occupies a rank-1 bucket, so rank 1 must see it...
	v1 := c.NDAVer(1)
	if v1 == v0 {
		t.Error("rank-1 write invisible to NDAVer(1)")
	}
	// ...but a second write into the same occupied bucket changes no
	// HasDemandFor answer and must be invisible to both ranks.
	c.EnqueueWrite(a1, 0)
	if c.NDAVer(0) != v0 || c.NDAVer(1) != v1 {
		t.Error("same-bucket write moved a per-rank version")
	}

	// A read into the empty read queue changes the head identity, which
	// OldestReadRank on any rank observes.
	c.EnqueueRead(a0, 0, nil)
	if c.NDAVer(0) == v0 || c.NDAVer(1) == v1 {
		t.Error("read-head change invisible to a rank")
	}
	v0, v1 = c.NDAVer(0), c.NDAVer(1)
	// A second read behind the head into the same occupied bucket moves
	// neither the head nor any bucket occupancy.
	c.EnqueueRead(a0, 0, nil)
	if c.NDAVer(0) != v0 || c.NDAVer(1) != v1 {
		t.Error("same-bucket tail read moved a per-rank version")
	}
}
