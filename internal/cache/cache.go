// Package cache implements the host cache hierarchy: set-associative
// write-back caches with LRU replacement and MSHR-limited non-blocking
// misses, composed into per-core L1/L2 levels under a shared LLC with a
// stride prefetcher (Table II configuration).
//
// The hierarchy is a latency/filter model: lookups resolve immediately
// with a hit latency, LLC misses are forwarded to a memory backend and
// complete through callbacks. Cache levels operate in CPU cycles; the
// backend operates in DRAM cycles and reports completion through the
// clock-converting callback installed by the hierarchy.
package cache

import (
	"fmt"
	"math/bits"
)

// Config sizes one cache level.
type Config struct {
	SizeBytes  int
	Ways       int
	BlockBytes int
	LatencyCPU int64 // hit latency in CPU cycles
	MSHRs      int
}

// Sets returns the number of sets implied by the configuration.
func (c Config) Sets() int { return c.SizeBytes / (c.Ways * c.BlockBytes) }

// Validate reports an error for impossible configurations.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.BlockBytes <= 0 {
		return fmt.Errorf("cache: non-positive size field in %+v", c)
	}
	if c.SizeBytes%(c.Ways*c.BlockBytes) != 0 {
		return fmt.Errorf("cache: size %d not divisible into %d ways of %dB blocks",
			c.SizeBytes, c.Ways, c.BlockBytes)
	}
	s := c.Sets()
	if s&(s-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", s)
	}
	return nil
}

// line is one cache line's tag state.
type line struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64 // last-touch counter
}

// Cache is a single set-associative level. Lines live in one flat
// array (set-major) — the per-access way scan is the hottest loop in
// the whole simulator, and the flat layout spares it an indirection.
type Cache struct {
	cfg   Config
	lines []line
	nsets uint64
	smask uint64 // nsets-1; Validate guarantees nsets is a power of two
	shift uint   // log2(nsets)
	ways  int
	clock uint64

	// One-entry MRU filter: the last block that hit and the line that
	// held it. Streaming cores touch the same 64-byte block for several
	// consecutive accesses, and the repeat hits skip the way scan. The
	// filter is validated against the line's live tag (a replacement
	// that reuses the slot fails the check), and the filtered path
	// performs exactly the state updates the scan would — clock, LRU,
	// dirty, Hits — so behavior is bit-identical.
	lastBlock uint64
	lastTag   uint64
	lastLine  *line

	Hits, Misses int64
}

// New builds a cache level. It panics on invalid configuration.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Cache{
		cfg:   cfg,
		lines: make([]line, cfg.Sets()*cfg.Ways),
		nsets: uint64(cfg.Sets()),
		smask: uint64(cfg.Sets()) - 1,
		shift: uint(bits.TrailingZeros64(uint64(cfg.Sets()))),
		ways:  cfg.Ways,
	}
}

// Config returns the level's configuration.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) index(block uint64) (set int, tag uint64) {
	// Sets() is validated to be a power of two, so mask/shift compute
	// exactly block%nsets and block/nsets without two 64-bit divisions
	// on the hottest path in the simulator.
	return int(block & c.smask), block >> c.shift
}

// set returns the set's ways as a subslice of the flat line array.
func (c *Cache) set(set int) []line {
	return c.lines[set*c.ways : set*c.ways+c.ways]
}

// Lookup probes for the block (address divided by block size), updating
// LRU and hit/miss counters. If write, a hit marks the line dirty.
func (c *Cache) Lookup(block uint64, write bool) bool {
	if block == c.lastBlock {
		if l := c.lastLine; l != nil && l.valid && l.tag == c.lastTag {
			c.clock++
			l.lru = c.clock
			if write {
				l.dirty = true
			}
			c.Hits++
			return true
		}
	}
	set, tag := c.index(block)
	c.clock++
	ways := c.set(set)
	for i := range ways {
		l := &ways[i]
		if l.valid && l.tag == tag {
			l.lru = c.clock
			if write {
				l.dirty = true
			}
			c.Hits++
			c.lastBlock, c.lastTag, c.lastLine = block, tag, l
			return true
		}
	}
	c.Misses++
	return false
}

// missLookup applies the exact effects of a Lookup known to miss: one
// clock advance and one Misses increment — a missed Lookup touches no
// line and leaves the MRU filter alone. The hierarchy uses it to replay
// a deferred access whose private misses were already proven by
// AccessLocal (and rolled back), without re-scanning the sets.
func (c *Cache) missLookup() {
	c.clock++
	c.Misses++
}

// unMiss reverses the counter effects of an immediately preceding Lookup
// that missed (one Misses increment and one clock advance; a missed
// Lookup touches no line, so nothing else changed). The hierarchy uses it
// to keep stalled accesses side-effect-free: an Access that returns Stall
// is retried every cycle by a blocked core, and those retry probes must
// leave the caches in exactly the state they found them for the
// fast-forward machinery to skip the retries.
func (c *Cache) unMiss() {
	c.Misses--
	c.clock--
}

// Contains probes without side effects.
func (c *Cache) Contains(block uint64) bool {
	set, tag := c.index(block)
	ways := c.set(set)
	for i := range ways {
		l := &ways[i]
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// Insert fills the block, returning any evicted dirty victim.
func (c *Cache) Insert(block uint64, dirty bool) (victim uint64, victimDirty bool) {
	set, tag := c.index(block)
	c.clock++
	ways := c.set(set)
	// Reuse an existing or invalid way first.
	vi := 0
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].dirty = ways[i].dirty || dirty
			ways[i].lru = c.clock
			return 0, false
		}
		if !ways[i].valid {
			vi = i
		} else if ways[vi].valid && ways[i].lru < ways[vi].lru {
			vi = i
		}
	}
	v := ways[vi]
	ways[vi] = line{tag: tag, valid: true, dirty: dirty, lru: c.clock}
	if v.valid && v.dirty {
		return v.tag*c.nsets + uint64(set), true
	}
	return 0, false
}

// dirtyVictim reports the dirty victim an immediate Insert(block, ·)
// would evict, without mutating anything. ok is false when the insert
// would evict nothing dirty: the block is already resident (in-place
// update), an invalid way absorbs it, or the LRU victim is clean. The
// scan mirrors Insert's victim selection exactly — the last invalid
// way wins when one exists, otherwise the strict-< argmin of the lru
// stamps (unique among valid lines, so the argmin is unambiguous).
//
// When haveMRU is set, the line holding mruBlock is treated as
// most-recently-used: the hierarchy probes the L2's victim for an L1
// castout BEFORE committing the L2 hit that will touch mruBlock, and
// the probe must see the lru order the real Insert will.
func (c *Cache) dirtyVictim(block, mruBlock uint64, haveMRU bool) (victim uint64, ok bool) {
	set, tag := c.index(block)
	var mruTag uint64
	if haveMRU {
		mruSet, mt := c.index(mruBlock)
		if mruSet != set {
			haveMRU = false // different set: the demotion cannot matter
		}
		mruTag = mt
	}
	ways := c.set(set)
	vi := 0
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			return 0, false
		}
		if !ways[i].valid {
			vi = i
		} else if ways[vi].valid {
			li, lv := ways[i].lru, ways[vi].lru
			if haveMRU {
				if ways[i].tag == mruTag {
					li = ^uint64(0)
				}
				if ways[vi].tag == mruTag {
					lv = ^uint64(0)
				}
			}
			if li < lv {
				vi = i
			}
		}
	}
	v := &ways[vi]
	if !v.valid || !v.dirty {
		return 0, false
	}
	return v.tag*c.nsets + uint64(set), true
}

// ValidLines counts resident lines (the warm-state fidelity metric the
// sampled-mode fuzz compares between functional and exact warming).
func (c *Cache) ValidLines() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid {
			n++
		}
	}
	return n
}

// Invalidate drops the block if present, reporting whether it was dirty.
func (c *Cache) Invalidate(block uint64) (wasDirty bool) {
	set, tag := c.index(block)
	ways := c.set(set)
	for i := range ways {
		l := &ways[i]
		if l.valid && l.tag == tag {
			d := l.dirty
			*l = line{}
			return d
		}
	}
	return false
}
