package osmem

import (
	"testing"
	"testing/quick"

	"chopim/internal/addrmap"
	"chopim/internal/dram"
)

func TestBuddyAllocFree(t *testing.T) {
	a, err := NewAllocator(0, 1<<20, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.FreeBytes(); got != 1<<20 {
		t.Fatalf("FreeBytes = %d", got)
	}
	p1, err := a.Alloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := a.Alloc(8192)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Fatal("overlapping allocations")
	}
	if p2%8192 != 0 {
		t.Errorf("8KiB allocation at %#x not naturally aligned", p2)
	}
	if err := a.Free(p1); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p2); err != nil {
		t.Fatal(err)
	}
	if got := a.FreeBytes(); got != 1<<20 {
		t.Errorf("FreeBytes after frees = %d, want full", got)
	}
}

func TestBuddyMergeRestoresLargeBlocks(t *testing.T) {
	a, _ := NewAllocator(0, 1<<16, 1<<12)
	var ptrs []uint64
	for {
		p, err := a.Alloc(4096)
		if err != nil {
			break
		}
		ptrs = append(ptrs, p)
	}
	if len(ptrs) != 16 {
		t.Fatalf("allocated %d x 4KiB from 64KiB", len(ptrs))
	}
	for _, p := range ptrs {
		if err := a.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	// Buddies merged: a full-size allocation must succeed.
	if _, err := a.Alloc(1 << 16); err != nil {
		t.Errorf("full-size alloc after merge: %v", err)
	}
}

func TestDoubleFreeRejected(t *testing.T) {
	a, _ := NewAllocator(0, 1<<16, 1<<12)
	p, _ := a.Alloc(4096)
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p); err == nil {
		t.Error("double free accepted")
	}
	if err := a.Free(0xdead000); err == nil {
		t.Error("free of never-allocated address accepted")
	}
}

func TestAllocatorRejectsBadConfig(t *testing.T) {
	if _, err := NewAllocator(0, 1<<20, 3000); err == nil {
		t.Error("non-power-of-two minBlock accepted")
	}
	if _, err := NewAllocator(100, 1<<20, 1<<12); err == nil {
		t.Error("misaligned base accepted")
	}
	if _, err := NewAllocator(0, 0, 1<<12); err == nil {
		t.Error("zero size accepted")
	}
}

// Property: allocations never overlap and stay in range.
func TestAllocNoOverlap(t *testing.T) {
	f := func(sizes []uint16) bool {
		a, _ := NewAllocator(0, 1<<22, 1<<12)
		type span struct{ base, size uint64 }
		var spans []span
		for _, s := range sizes {
			n := uint64(s)%(64<<10) + 1
			p, err := a.Alloc(n)
			if err != nil {
				continue
			}
			rounded := uint64(1 << 12)
			for rounded < n {
				rounded <<= 1
			}
			if p+rounded > 1<<22 {
				return false
			}
			for _, sp := range spans {
				if p < sp.base+sp.size && sp.base < p+rounded {
					return false
				}
			}
			spans = append(spans, span{p, rounded})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func newTestOS(t *testing.T, partitioned bool) *OS {
	t.Helper()
	g := dram.DefaultGeometry()
	base := addrmap.NewSkylakeLike(g)
	var m addrmap.Mapper = base
	if partitioned {
		m = addrmap.NewPartitioned(base, 1)
	}
	o, err := NewOS(m)
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestOSPartitionedRegions(t *testing.T) {
	o := newTestOS(t, true)
	host, err := o.AllocHost(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	p := o.Mapper().(*addrmap.PartitionedMap)
	if host >= p.SharedBase() {
		t.Error("host allocation landed in the shared region")
	}
	c, err := o.PickColor(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := o.AllocShared(1<<20, c)
	if err != nil {
		t.Fatal(err)
	}
	if sh < p.SharedBase() {
		t.Error("shared allocation below the shared base")
	}
	if o.ColorOf(sh) != c {
		t.Errorf("allocation color %#x != requested %#x", uint64(o.ColorOf(sh)), uint64(c))
	}
}

func TestColoredAllocationsAlign(t *testing.T) {
	o := newTestOS(t, true)
	c, err := o.PickColor(2 << 20)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := o.AllocShared(2<<20, c)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := o.AllocShared(2<<20, c)
	if err != nil {
		t.Fatal(err)
	}
	m := o.Mapper()
	for off := uint64(0); off < 2<<20; off += 64 << 10 {
		d1, d2 := m.Decode(a1+off), m.Decode(a2+off)
		if d1.Channel != d2.Channel || d1.Rank != d2.Rank ||
			d1.BankGroup != d2.BankGroup || d1.Bank != d2.Bank {
			t.Fatalf("equal-color allocations diverge at +%#x: %+v vs %+v", off, d1, d2)
		}
	}
}

func TestSharedExhaustion(t *testing.T) {
	o := newTestOS(t, true)
	c, _ := o.PickColor(1 << 30)
	var allocs []uint64
	for {
		a, err := o.AllocShared(1<<30, c)
		if err != nil {
			break
		}
		allocs = append(allocs, a)
	}
	if len(allocs) == 0 {
		t.Fatal("no 1 GiB shared allocations possible")
	}
	// Free one and retry: must succeed again.
	if err := o.FreeShared(allocs[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := o.AllocShared(1<<30, c); err != nil {
		t.Errorf("allocation after free failed: %v", err)
	}
}

func TestColorPeriod(t *testing.T) {
	o := newTestOS(t, false)
	p := o.ColorPeriod()
	if p == 0 || p&(p-1) != 0 {
		t.Errorf("ColorPeriod = %d, want a power of two", p)
	}
	if p <= o.SystemRowBytes() {
		t.Errorf("ColorPeriod %d not above system row %d", p, o.SystemRowBytes())
	}
}
