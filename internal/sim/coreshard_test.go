package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"chopim/internal/ndart"
	"chopim/internal/workload"
)

// coreShardWorkloads returns the workload shapes the core-sharded
// front-end equivalence tests run: multi-core hosts covering the three
// front-end regimes — batched compute cycles, private-hit ticks, and
// shared-path storms with NDA traffic underneath.
func coreShardWorkloads() []ffWorkload {
	var out []ffWorkload
	for _, w := range ffWorkloads() {
		switch w.name {
		case "mixed-mix1-dot", "host-stall-heavy", "host-compute-heavy", "mixed-mix3-copy-shared":
			out = append(out, w)
		}
	}
	return out
}

// TestCoreOrderFuzz randomizes the dispatch order of the core-local
// part of every CPU sub-cycle (mirror of TestDomainOrderFuzz): since a
// core's local part touches only its own ROB/trace and private L1/L2 —
// and, by the narrowed ver argument, never the memory epoch — while
// every shared-path effect defers to the commit loop's canonical core
// order, any permutation must be bit-identical to the plain serial
// window. Setting coreOrder also forces the split front-end path at
// one worker, so this doubles as the split-vs-serial equivalence pin.
func TestCoreOrderFuzz(t *testing.T) {
	for _, w := range coreShardWorkloads() {
		t.Run(w.name, func(t *testing.T) {
			canonical := driveWorkers(t, w, 1, 4, 5_000)

			s, err := New(w.cfg())
			if err != nil {
				t.Fatal(err)
			}
			var it func() (*ndart.Handle, error)
			if w.app != nil {
				if it, err = w.app(s); err != nil {
					t.Fatal(err)
				}
			}
			var h *ndart.Handle
			relaunch := func() {
				if it == nil {
					return
				}
				if h == nil || h.Done() {
					if h, err = it(); err != nil {
						t.Fatal(err)
					}
				}
			}
			relaunch()
			rng := rand.New(rand.NewSource(0xC04E))
			s.coreOrder = make([]int, len(s.Cores))
			for seg := 0; seg < 4; seg++ {
				end := s.Now() + 5_000
				for s.Now() < end {
					// Fresh permutation per executed step.
					for i := range s.coreOrder {
						s.coreOrder[i] = i
					}
					rng.Shuffle(len(s.coreOrder), func(i, j int) {
						s.coreOrder[i], s.coreOrder[j] = s.coreOrder[j], s.coreOrder[i]
					})
					s.StepFast(end)
					relaunch()
				}
				if got := snapshot(s); got != canonical[seg] {
					t.Fatalf("segment %d diverged under permuted core order:\n canonical: %s\n permuted:  %s",
						seg, canonical[seg], got)
				}
			}
		})
	}
}

// missStormWorkload builds one randomized 8-core miss-storm shape:
// memory-heavy cores with randomized footprints, stream fractions, and
// dependency mixes, layered under NDA COPY traffic. High MemRatio
// across 8 cores keeps the 48 LLC MSHRs saturated (Stall
// classification and rollback on the deferred path), streaming cores
// train the prefetcher so demand accesses merge into in-flight
// prefetch MSHRs, and the dependency fraction varies how often issue
// groups park mid-group at the commit barrier.
func missStormWorkload(rng *rand.Rand) ffWorkload {
	profs := make([]workload.Profile, 8)
	for i := range profs {
		profs[i] = workload.Profile{
			Name:       fmt.Sprintf("storm%d", i),
			Class:      workload.High,
			MemRatio:   0.55 + 0.4*rng.Float64(),
			WriteFrac:  0.05 + 0.5*rng.Float64(),
			Footprint:  uint64(8+rng.Intn(56)) << 20,
			StreamFrac: rng.Float64(),
			Streams:    1 + rng.Intn(8),
			DepFrac:    0.7 * rng.Float64(),
		}
	}
	seed := rng.Int63()
	var app func(s *System) (func() (*ndart.Handle, error), error)
	for _, w := range ffWorkloads() {
		if w.name == "mixed-mix1-dot" {
			app = w.app // the DOT kernel, for NDA traffic underneath
		}
	}
	return ffWorkload{
		name: "miss-storm",
		cfg: func() Config {
			c := Default(-1)
			c.HostProfiles = profs
			c.Seed = seed
			return c
		},
		app: app,
	}
}

// TestCoreShardMissStorm fuzzes the deferred shared path under MSHR
// pressure: randomized 8-core miss storms must produce counters
// bit-identical across the reference Run oracle, the serial fast path,
// and the core-sharded executor at 2 and 4 workers. The storm shapes
// drive every deferral class through the commit loop — LLC probes,
// MSHR merges (demand meeting its own in-flight prefetch), MSHR/queue
// Stall classification with rollback, and backend reads — interleaved
// with probe-stall retries whose epoch checks must land at their
// canonical serial positions.
func TestCoreShardMissStorm(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5707))
	iters := 3
	if testing.Short() {
		iters = 1
	}
	for it := 0; it < iters; it++ {
		w := missStormWorkload(rng)
		t.Run(fmt.Sprintf("storm-%d", it), func(t *testing.T) {
			ref := drive(t, w, false, 2, 4_000)
			for _, workers := range []int{1, 2, 4} {
				got := driveWorkers(t, w, workers, 2, 4_000)
				for i := range ref {
					if ref[i] != got[i] {
						t.Fatalf("workers=%d diverged from Run at segment %d:\n reference: %s\n fast:      %s",
							workers, i, ref[i], got[i])
					}
				}
			}
		})
	}
}
