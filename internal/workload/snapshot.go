package workload

// GenState is an opaque copy of a Generator's mutable state: the RNG
// position (as a draw count, replayed on restore) and the per-stream
// cursors. The profile, region, and seed are construction inputs and
// are not part of the snapshot — restore targets a generator built with
// the same arguments.
type GenState struct {
	draws   uint64
	streams []uint64
}

// Snapshot captures the generator's mutable state.
func (g *Generator) Snapshot() *GenState {
	return &GenState{draws: g.src.draws, streams: append([]uint64(nil), g.streams...)}
}

// Restore rewinds (or fast-forwards) the generator to the snapshotted
// state by replaying the RNG to the recorded draw count and copying the
// stream cursors. The generator must have been built with the same
// profile, region, and seed as the snapshotted one.
func (g *Generator) Restore(st *GenState) {
	if len(st.streams) != len(g.streams) {
		panic("workload: restore onto a generator with different stream count")
	}
	g.src.replayTo(g.seed, st.draws)
	copy(g.streams, st.streams)
}
