package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"chopim/internal/nda"
	"chopim/internal/ndart"
	"chopim/internal/workload"
)

// ckWorkload is one checkpointing scenario: a config plus an optional
// relaunchable single-op NDA workload built directly on vectors, so the
// driver can relaunch on a fork as well as on the original (vectors are
// immutable layout descriptors — the same operand set launches
// identically through any system's runtime).
type ckWorkload struct {
	name string
	cfg  func() Config
	op   string // "" = host-only
	n    int    // operand elements
}

func ckWorkloads() []ckWorkload {
	hostProfiles := func(p workload.Profile) func() Config {
		return func() Config {
			c := Default(-1)
			c.HostProfiles = []workload.Profile{p, p, p, p}
			return c
		}
	}
	return []ckWorkload{
		{name: "host-only", cfg: func() Config { return Default(0) }},
		{name: "host-stall-heavy", cfg: hostProfiles(workload.StallHeavy())},
		{name: "nda-only-nrm2", cfg: func() Config { return Default(-1) },
			op: "nrm2", n: (256 << 10) / 4},
		{name: "nda-only-copy-stochastic", cfg: func() Config {
			c := Default(-1)
			c.NDA.Policy = nda.Stochastic
			c.NDA.StochasticProb = 0.25
			return c
		}, op: "copy", n: (128 << 10) / 4},
		{name: "mixed-mix1-dot", cfg: func() Config { return Default(1) },
			op: "dot", n: (128 << 10) / 4},
		{name: "mixed-mix3-copy-shared", cfg: func() Config {
			c := Default(3)
			c.Partitioned = false
			return c
		}, op: "copy", n: (128 << 10) / 4},
	}
}

// ckApp holds the workload's operand vectors.
type ckApp struct {
	op   string
	x, y *ndart.Vector
}

func newCkApp(s *System, op string, n int) (*ckApp, error) {
	if op == "" {
		return nil, nil
	}
	x, err := s.RT.NewVector(n, ndart.Private)
	if err != nil {
		return nil, err
	}
	y, err := s.RT.NewVector(n, ndart.Private)
	if err != nil {
		return nil, err
	}
	return &ckApp{op: op, x: x, y: y}, nil
}

func (a *ckApp) launch(s *System) (*ndart.Handle, error) {
	switch a.op {
	case "copy":
		return s.RT.Copy(a.y, a.x)
	case "dot":
		return s.RT.Dot(a.x, a.y)
	case "nrm2":
		return s.RT.Nrm2(a.x)
	}
	return nil, fmt.Errorf("unknown op %q", a.op)
}

// ckDriver relaunches the workload whenever its handle completes,
// exactly as the experiment harness does. fork maps the in-flight
// handle into a restored system so the fork's relaunch decisions match
// the original's cycle for cycle.
type ckDriver struct {
	app *ckApp
	h   *ndart.Handle
}

func (d *ckDriver) relaunch(t *testing.T, s *System) {
	t.Helper()
	if d.app == nil {
		return
	}
	if d.h == nil || d.h.Done() {
		h, err := d.app.launch(s)
		if err != nil {
			t.Fatal(err)
		}
		d.h = h
	}
}

func (d *ckDriver) fork(s *System) *ckDriver {
	nd := &ckDriver{app: d.app}
	if d.h != nil {
		nd.h = s.RT.RestoredHandle(d.h)
	}
	return nd
}

// ckAdvance steps s to cycle end, relaunching after every step.
func ckAdvance(t *testing.T, s *System, d *ckDriver, end int64, fast bool) {
	t.Helper()
	for s.Now() < end {
		if fast {
			s.StepFast(end)
		} else {
			s.Tick()
		}
		d.relaunch(t, s)
	}
}

// TestSnapshotRestoreContinue proves the checkpoint contract: a system
// snapshotted mid-run and restored into a fresh instance continues
// bit-identically to the original, on the reference path and on the
// fast path at 1, 2, and 4 domain workers — with NDA ops in flight,
// launch packets queued, and misses outstanding at the cut.
func TestSnapshotRestoreContinue(t *testing.T) {
	const n1, n2 = 12_000, 10_000
	for _, w := range ckWorkloads() {
		t.Run(w.name, func(t *testing.T) {
			a, err := New(w.cfg())
			if err != nil {
				t.Fatal(err)
			}
			app, err := newCkApp(a, w.op, w.n)
			if err != nil {
				t.Fatal(err)
			}
			drv := &ckDriver{app: app}
			drv.relaunch(t, a)
			ckAdvance(t, a, drv, n1, false)
			ck, err := a.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			fpCut := snapshot(a)
			hCut := drv.h

			// Continue the original on the reference path: the oracle.
			ckAdvance(t, a, drv, n1+n2, false)
			want := snapshot(a)

			modes := []struct {
				name    string
				workers int
				fast    bool
			}{
				{"run", 1, false},
				{"fast-w1", 1, true},
				{"fast-w2", 2, true},
				{"fast-w4", 4, true},
			}
			for _, m := range modes {
				t.Run(m.name, func(t *testing.T) {
					cfg := w.cfg()
					cfg.SimWorkers = m.workers
					b, err := RestoreSystem(cfg, ck)
					if err != nil {
						t.Fatal(err)
					}
					defer b.Close()
					if got := snapshot(b); got != fpCut {
						t.Fatalf("restored state differs at the cut:\n orig: %s\n fork: %s", fpCut, got)
					}
					bd := &ckDriver{app: app}
					if hCut != nil {
						bd.h = b.RT.RestoredHandle(hCut)
					}
					ckAdvance(t, b, bd, n1+n2, m.fast)
					if got := snapshot(b); got != want {
						t.Fatalf("fork diverged after continue:\n orig: %s\n fork: %s", want, got)
					}
				})
			}
		})
	}
}

// TestSnapshotRestoreRandomized fuzzes the checkpoint cut point: the
// original runs fast through randomized boundaries; at every few
// boundaries a checkpoint forks (cycling the fork's worker count) and
// the fork is driven through the remaining boundaries, its fingerprint
// compared at each — so cuts land mid-stall-window, mid-burst, with
// write buffers part-drained and launch packets half-delivered.
func TestSnapshotRestoreRandomized(t *testing.T) {
	fuzz := map[string]bool{
		"nda-only-copy-stochastic": true,
		"mixed-mix3-copy-shared":   true,
		"host-stall-heavy":         true,
	}
	for wi, w := range ckWorkloads() {
		if !fuzz[w.name] {
			continue
		}
		t.Run(w.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(0xBEEF + int64(wi)))
			var bounds []int64
			cycle := int64(0)
			for i := 0; i < 20; i++ {
				cycle += 1 + rng.Int63n(2_000)
				bounds = append(bounds, cycle)
			}
			a, err := New(w.cfg())
			if err != nil {
				t.Fatal(err)
			}
			app, err := newCkApp(a, w.op, w.n)
			if err != nil {
				t.Fatal(err)
			}
			drv := &ckDriver{app: app}
			drv.relaunch(t, a)

			type forkPoint struct {
				ck    *Checkpoint
				h     *ndart.Handle
				bound int // index of the boundary the checkpoint was cut at
			}
			var forks []forkPoint
			fps := make([]string, len(bounds))
			for i, end := range bounds {
				ckAdvance(t, a, drv, end, true)
				if a.Now() != end {
					t.Fatalf("overshot boundary: at %d, want %d", a.Now(), end)
				}
				fps[i] = snapshot(a)
				if i%4 == 1 {
					ck, err := a.Snapshot()
					if err != nil {
						t.Fatal(err)
					}
					forks = append(forks, forkPoint{ck: ck, h: drv.h, bound: i})
				}
			}
			workers := []int{1, 2, 4}
			for fi, f := range forks {
				cfg := w.cfg()
				cfg.SimWorkers = workers[fi%len(workers)]
				b, err := RestoreSystem(cfg, f.ck)
				if err != nil {
					t.Fatal(err)
				}
				if got := snapshot(b); got != fps[f.bound] {
					t.Fatalf("fork at boundary %d differs at the cut:\n orig: %s\n fork: %s",
						f.bound, fps[f.bound], got)
				}
				bd := &ckDriver{app: app}
				if f.h != nil {
					bd.h = b.RT.RestoredHandle(f.h)
				}
				last := f.bound + 6
				if last > len(bounds)-1 {
					last = len(bounds) - 1
				}
				for j := f.bound + 1; j <= last; j++ {
					ckAdvance(t, b, bd, bounds[j], true)
					if got := snapshot(b); got != fps[j] {
						t.Fatalf("fork from boundary %d diverged at boundary %d:\n orig: %s\n fork: %s",
							f.bound, j, fps[j], got)
					}
				}
				b.Close()
			}
		})
	}
}
