package experiments

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"chopim/internal/faults"
	"chopim/internal/sim"
)

// TestPanicQuarantinedKeepGoing is the core isolation claim: a point
// that panics is recovered into a quarantined PointError, every other
// point completes with a valid result, and the failure surfaces as a
// SweepError rather than a process crash.
func TestPanicQuarantinedKeepGoing(t *testing.T) {
	before := ReadRunnerStats()
	vals, err := sharded(Options{Parallel: 4, KeepGoing: true}, 16, func(i int) (int, error) {
		if i == 7 {
			panic("simulated internal corruption")
		}
		return i * i, nil
	})
	var se *SweepError
	if !errors.As(err, &se) {
		t.Fatalf("got %v, want SweepError", err)
	}
	if len(se.Failures) != 1 || se.Failures[0].Index != 7 || se.Failures[0].Panic == nil {
		t.Fatalf("failures = %+v, want exactly point 7 quarantined after panic", se.Failures)
	}
	if len(se.Failures[0].Stack) == 0 {
		t.Error("quarantined point carries no stack trace")
	}
	if !strings.Contains(err.Error(), "quarantined") {
		t.Errorf("error text %q does not say quarantined", err.Error())
	}
	for i, v := range vals {
		want := i * i
		if i == 7 {
			want = 0 // quarantined: zero value
		}
		if v != want {
			t.Errorf("point %d = %d, want %d (healthy points must complete)", i, v, want)
		}
	}
	after := ReadRunnerStats()
	if after.Panics-before.Panics != 1 || after.Quarantined-before.Quarantined != 1 {
		t.Errorf("panic/quarantine counters moved by %d/%d, want 1/1",
			after.Panics-before.Panics, after.Quarantined-before.Quarantined)
	}
}

// TestPanicFailFastStillRecovers: without KeepGoing the sweep aborts,
// but the panic is still converted to an error — never a crash.
func TestPanicFailFastStillRecovers(t *testing.T) {
	_, err := sharded(Options{Parallel: 2}, 8, func(i int) (int, error) {
		if i == 0 {
			panic("boom")
		}
		return i, nil
	})
	var pe *PointError
	if !errors.As(err, &pe) || pe.Panic == nil || pe.Index != 0 {
		t.Fatalf("got %v, want point 0 PointError carrying the panic", err)
	}
}

// TestInjectedPanicViaRegistry drives the same path through the fault
// registry (what the CLI's -inject panic-point=K arms).
func TestInjectedPanicViaRegistry(t *testing.T) {
	if err := faults.ArmSpec("panic-point=3"); err != nil {
		t.Fatal(err)
	}
	defer disarmAll(t)
	vals, err := sharded(Options{Parallel: 2, KeepGoing: true}, 6, func(i int) (int, error) {
		return i + 100, nil
	})
	var se *SweepError
	if !errors.As(err, &se) || len(se.Failures) != 1 || se.Failures[0].Index != 3 {
		t.Fatalf("got %v, want SweepError quarantining point 3", err)
	}
	for i, v := range vals {
		if i != 3 && v != i+100 {
			t.Errorf("point %d = %d, want %d", i, v, i+100)
		}
	}
}

// TestTransientRetry: a point failing with a Temporary() error succeeds
// on a later attempt within Options.PointRetries, and the retries are
// counted.
func TestTransientRetry(t *testing.T) {
	if err := faults.ArmSpec("point-err=2:2"); err != nil {
		t.Fatal(err)
	}
	defer disarmAll(t)
	before := ReadRunnerStats()
	vals, err := sharded(Options{Parallel: 2, PointRetries: 3}, 4, func(i int) (int, error) {
		return i * 10, nil
	})
	if err != nil {
		t.Fatalf("sweep failed despite retry budget: %v", err)
	}
	if !reflect.DeepEqual(vals, []int{0, 10, 20, 30}) {
		t.Fatalf("results = %v", vals)
	}
	after := ReadRunnerStats()
	if after.Retries-before.Retries != 2 {
		t.Errorf("retry counter moved by %d, want 2", after.Retries-before.Retries)
	}
}

// TestTransientExhaustsBudget: more consecutive transient failures than
// the retry budget fails the point with the transient error.
func TestTransientExhaustsBudget(t *testing.T) {
	if err := faults.ArmSpec("point-err=1:10"); err != nil {
		t.Fatal(err)
	}
	defer disarmAll(t)
	_, err := sharded(Options{Parallel: 1, PointRetries: 2}, 3, func(i int) (int, error) {
		return i, nil
	})
	var ie *faults.InjectedError
	if !errors.As(err, &ie) {
		t.Fatalf("got %v, want the injected transient error after budget exhaustion", err)
	}
}

// TestDeterministicErrorNotRetried: plain simulation errors are
// deterministic; the runner must not burn retries on them.
func TestDeterministicErrorNotRetried(t *testing.T) {
	var calls atomic.Int64
	boom := errors.New("deterministic model error")
	_, err := sharded(Options{Parallel: 1, PointRetries: 5}, 1, func(i int) (int, error) {
		calls.Add(1)
		return 0, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want the model error", err)
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("deterministic failure attempted %d times, want 1", n)
	}
}

// TestDeadlineCounted: a point failing with a sim DeadlineError is
// classified as a timeout, not retried.
func TestDeadlineCounted(t *testing.T) {
	before := ReadRunnerStats()
	var calls atomic.Int64
	_, err := sharded(Options{Parallel: 1, PointRetries: 5, KeepGoing: true}, 2, func(i int) (int, error) {
		if i == 1 {
			calls.Add(1)
			return 0, &sim.DeadlineError{Cycle: 123, Kind: "wall-clock"}
		}
		return i, nil
	})
	var se *SweepError
	if !errors.As(err, &se) || len(se.Failures) != 1 {
		t.Fatalf("got %v, want SweepError with the timed-out point", err)
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("timed-out point attempted %d times, want 1 (deadline would expire again)", n)
	}
	after := ReadRunnerStats()
	if after.Timeouts-before.Timeouts != 1 {
		t.Errorf("timeout counter moved by %d, want 1", after.Timeouts-before.Timeouts)
	}
}

// TestPointTimeoutEndToEnd runs a real simulation point under an
// unmeetable wall-clock deadline and checks the structured failure
// propagates out of measureConcurrent.
func TestPointTimeoutEndToEnd(t *testing.T) {
	opt := QuickOptions()
	opt.PointTimeout = 1 // 1ns: expires at the first rate-limit stride
	s, err := opt.newSystem(sim.Default(0))
	if err != nil {
		t.Fatal(err)
	}
	_, err = measureConcurrent(s, nil, opt)
	var de *sim.DeadlineError
	if !errors.As(err, &de) || de.Kind != "wall-clock" {
		t.Fatalf("got %v, want wall-clock DeadlineError", err)
	}
}

// TestQuarantinedPointNotJournaled: a panicking point must not be
// journaled as done — a resumed sweep recomputes exactly it, and once
// the fault is gone the resumed table is byte-identical to a clean run.
func TestQuarantinedPointNotJournaled(t *testing.T) {
	dir := t.TempDir()
	fail := true
	job := func(i int) (int, error) {
		if i == 2 && fail {
			panic("transient corruption")
		}
		return i*i + 1, nil
	}
	mkOpt := func() Options {
		opt := Options{Parallel: 2, KeepGoing: true, JournalDir: dir, Resume: true}
		opt.journal = newJournalCtx(opt, "qfig", "deadbeefdeadbeefdeadbeef")
		return opt
	}
	_, err := sharded(mkOpt(), 5, job)
	var se *SweepError
	if !errors.As(err, &se) || len(se.Failures) != 1 || se.Failures[0].Index != 2 {
		t.Fatalf("got %v, want point 2 quarantined", err)
	}

	// The journal must hold every healthy point and not point 2.
	files, _ := filepath.Glob(filepath.Join(dir, "qfig-*.journal"))
	if len(files) != 1 {
		t.Fatalf("journal files = %v, want exactly one", files)
	}
	b, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), `"I":2,`) {
		t.Fatalf("quarantined point journaled as done:\n%s", b)
	}

	// Fault cleared: the resumed run replays the healthy points and
	// recomputes only the quarantined one.
	fail = false
	before := ReadRunnerStats()
	vals, err := sharded(mkOpt(), 5, job)
	if err != nil {
		t.Fatalf("resumed sweep failed: %v", err)
	}
	want := []int{1, 2, 5, 10, 17}
	if !reflect.DeepEqual(vals, want) {
		t.Fatalf("resumed results = %v, want %v", vals, want)
	}
	after := ReadRunnerStats()
	if after.Resumed-before.Resumed != 4 {
		t.Errorf("resumed %d points, want 4", after.Resumed-before.Resumed)
	}
}

// disarmAll clears hooks ArmSpec installed (it returns no disarm
// closures) so tests stay independent.
func disarmAll(t *testing.T) {
	t.Helper()
	faults.DisarmAll()
	if faults.Active() {
		t.Fatal("fault registry still armed after DisarmAll")
	}
}
