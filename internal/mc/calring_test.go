package mc

import (
	"math/rand"
	"testing"

	"chopim/internal/dram"
)

// calFutureHz lower-bounds the earliest future candidate: the ring's
// first key, min'd with any overflow keys (test-only model probe; the
// production horizon path is calHorizon, which additionally validates
// the earliest bucket).
func (q *reqQueue) calFutureHz() int64 {
	h := q.calFirstKey()
	for bk := q.calOver; bk != -1; bk = q.calNext[bk] {
		if q.calKey[bk] < h {
			h = q.calKey[bk]
		}
	}
	return h
}

// TestCalendarRingOps drives the raw ring with random place/advance
// sequences against a naive model, checking calFirstKey and ready-list
// membership after every operation.
func TestCalendarRingOps(t *testing.T) {
	var q reqQueue
	q.init(2, 16, 2)
	rng := rand.New(rand.NewSource(7))
	model := map[int32]int64{} // bankKey -> key (bucketed or overflow); absent = ready/absent
	inReady := map[int32]bool{}
	now := int64(0)
	q.calAdvance(now)
	for step := 0; step < 200000; step++ {
		switch rng.Intn(4) {
		case 0: // place a bank at a random future (or past) key
			bk := int32(rng.Intn(32))
			k := now + int64(rng.Intn(600)) - 20
			q.calPlace(bk, k, now)
			if k <= now {
				delete(model, bk)
				inReady[bk] = true
			} else {
				model[bk] = k
				delete(inReady, bk)
			}
		case 1: // unlink
			bk := int32(rng.Intn(32))
			q.calUnlink(bk)
			delete(model, bk)
			delete(inReady, bk)
		case 2: // force ready
			bk := int32(rng.Intn(32))
			if q.calWhere[bk] != calAbsent {
				q.calForceReady(bk)
				delete(model, bk)
				inReady[bk] = true
			}
		case 3: // advance
			now += int64(rng.Intn(120))
			q.calAdvance(now)
			for bk, k := range model {
				if k <= now {
					delete(model, bk)
					inReady[bk] = true
				}
			}
		}
		// Check first key.
		want := dram.Never
		for _, k := range model {
			if k < want {
				want = k
			}
		}
		got := q.calFutureHz()
		if got != want {
			t.Fatalf("step %d now=%d: first key %d, want %d (model %v)", step, now, got, want, model)
		}
		// Check ready membership.
		readySet := map[int32]bool{}
		for bk := q.calReady; bk != -1; bk = q.calNext[bk] {
			readySet[bk] = true
		}
		for bk := range inReady {
			if !readySet[bk] {
				t.Fatalf("step %d: bank %d should be ready", step, bk)
			}
		}
		for bk := range readySet {
			if !inReady[bk] {
				t.Fatalf("step %d: bank %d unexpectedly ready", step, bk)
			}
		}
	}
}
