// On-disk codec for RuntimeState. The index tables (vectors, handles,
// blueprints, launch packets) already are durable identities — they
// carry no pointers — so the wire form is a direct mirror. The one
// in-memory-only field is oldHandles: pre-snapshot pointer identities
// cannot cross a process boundary, so decode refills the table with
// fresh placeholder handles of matching length. That keeps Restore's
// handleMap indexing valid; a post-crash driver recovers handles by
// table index (RestoredHandleAt), not by old pointer.
package ndart

import (
	"encoding/json"

	"chopim/internal/nda"
	"chopim/internal/osmem"
)

type vecWire struct {
	Base      uint64
	N         int
	Bytes     uint64
	Placement Placement
	Color     osmem.Color
}

type handleWire struct {
	Pending  int
	DoneAt   int64
	Children []int
}

type bpWire struct {
	Kind    nda.OpKind
	Reads   []int
	Write   int
	Ch, R   int
	From, N int
	Total   int
	H       int
}

type launchWire struct {
	ID    uint64
	Ch, R int
	BPs   []int
}

type runtimeWire struct {
	Vecs      []vecWire
	Handles   []handleWire
	BPs       []bpWire
	Launches  []launchWire
	LaunchID  uint64
	Color     osmem.Color
	ColorSet  bool
	Copies    int64
	NLaunches int64
}

// MarshalJSON encodes the snapshot for the durable checkpoint file.
func (st *RuntimeState) MarshalJSON() ([]byte, error) {
	w := runtimeWire{
		LaunchID: st.launchID, Color: st.color, ColorSet: st.colorSet,
		Copies: st.copies, NLaunches: st.nLaunches,
	}
	for _, v := range st.vecs {
		w.Vecs = append(w.Vecs, vecWire{
			Base: v.base, N: v.n, Bytes: v.bytes,
			Placement: v.placement, Color: v.color,
		})
	}
	for _, h := range st.handles {
		w.Handles = append(w.Handles, handleWire{
			Pending: h.pending, DoneAt: h.doneAt, Children: h.children,
		})
	}
	for _, b := range st.bps {
		w.BPs = append(w.BPs, bpWire{
			Kind: b.kind, Reads: b.reads, Write: b.write,
			Ch: b.ch, R: b.r, From: b.from, N: b.n, Total: b.total, H: b.h,
		})
	}
	for _, l := range st.launches {
		w.Launches = append(w.Launches, launchWire{ID: l.id, Ch: l.ch, R: l.r, BPs: l.bps})
	}
	return json.Marshal(w)
}

// UnmarshalJSON rebuilds the snapshot written by MarshalJSON. The
// oldHandles table is refilled with fresh placeholders so Restore's
// per-index handleMap population stays well-defined.
func (st *RuntimeState) UnmarshalJSON(b []byte) error {
	var w runtimeWire
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*st = RuntimeState{
		launchID: w.LaunchID, color: w.Color, colorSet: w.ColorSet,
		copies: w.Copies, nLaunches: w.NLaunches,
	}
	for _, v := range w.Vecs {
		st.vecs = append(st.vecs, vecState{
			base: v.Base, n: v.N, bytes: v.Bytes,
			placement: v.Placement, color: v.Color,
		})
	}
	for _, h := range w.Handles {
		st.handles = append(st.handles, handleState{
			pending: h.Pending, doneAt: h.DoneAt, children: h.Children,
		})
	}
	st.oldHandles = make([]*Handle, len(st.handles))
	for i := range st.oldHandles {
		st.oldHandles[i] = &Handle{}
	}
	for _, bw := range w.BPs {
		st.bps = append(st.bps, bpState{
			kind: bw.Kind, reads: bw.Reads, write: bw.Write,
			ch: bw.Ch, r: bw.R, from: bw.From, n: bw.N, total: bw.Total, h: bw.H,
		})
	}
	for _, l := range w.Launches {
		st.launches = append(st.launches, launchState{id: l.ID, ch: l.Ch, r: l.R, bps: l.BPs})
	}
	return nil
}
