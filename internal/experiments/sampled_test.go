package experiments

import (
	"reflect"
	"strings"
	"testing"

	"chopim/internal/sim"
)

// sampledTestOptions is a quick budget with a small sampled schedule:
// fast enough for a unit test, long enough that every Fig 11 point
// fast-forwards most of its span.
func sampledTestOptions() Options {
	opt := QuickOptions()
	opt.Sampled = true
	opt.Sample = sim.SampleConfig{Windows: 4, Detail: 300, Warmup: 200, FF: 2000, Prime: 1000}
	return opt
}

// TestSampledFigureSmoke drives a whole figure through sampled
// execution: rows come back populated (nonzero host IPC, NDA
// utilization where NDA work runs, cycle accounting equal to the
// schedule) and a second run is byte-identical — sampled mode keeps
// the determinism contract of the exact path.
func TestSampledFigureSmoke(t *testing.T) {
	opt := sampledTestOptions()
	rows, err := Fig11(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r.SharedDOT.HostIPC <= 0 || r.IdealHostIPC <= 0 {
			t.Errorf("mix %s: non-positive sampled host IPC: %+v", r.Mix, r)
		}
		if r.SharedDOT.NDAUtil <= 0 {
			t.Errorf("mix %s: NDA ran but sampled utilization is %v", r.Mix, r.SharedDOT.NDAUtil)
		}
		if want := opt.Sample.TotalCycles(); r.SharedDOT.Cycles != want {
			t.Errorf("mix %s: point covered %d cycles, schedule says %d", r.Mix, r.SharedDOT.Cycles, want)
		}
	}
	again, err := Fig11(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, again) {
		t.Fatalf("sampled figure not deterministic:\n first: %+v\n again: %+v", rows, again)
	}
}

// TestSampledCacheKey pins the cache-key contract: toggling Sampled or
// changing the schedule must miss (different simulated quantity), so a
// sampled run can never replay an exact run's rows or vice versa.
func TestSampledCacheKey(t *testing.T) {
	exact := QuickOptions()
	samp := sampledTestOptions()
	if exact.cacheKey("fig11") == samp.cacheKey("fig11") {
		t.Fatal("cache key ignores Sampled")
	}
	samp2 := samp
	samp2.Sample.FF = 3000
	if samp2.cacheKey("fig11") == samp.cacheKey("fig11") {
		t.Fatal("cache key ignores the sampled schedule")
	}
}

// TestSampledRejectsCycleByCycle pins the mutual exclusion: sampled
// execution cannot honor a cycle-by-cycle reference request.
func TestSampledRejectsCycleByCycle(t *testing.T) {
	opt := sampledTestOptions()
	opt.CycleByCycle = true
	_, err := Fig11(opt)
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("want mutual-exclusion error, got %v", err)
	}
}
