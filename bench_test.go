// Benchmarks regenerating each table and figure of the paper's
// evaluation (Section VII). Each benchmark runs its experiment harness
// on a reduced budget and reports the figure's headline metrics through
// b.ReportMetric, so `go test -bench=.` doubles as a reproduction sweep.
// The full-budget rows live behind `go run ./cmd/chopim <figN>`.
package chopim_test

import (
	"os"
	"strconv"
	"testing"

	"chopim/internal/apps"
	"chopim/internal/atomicio"
	"chopim/internal/dram"
	"chopim/internal/experiments"
	"chopim/internal/ndart"
	"chopim/internal/sim"
	"chopim/internal/stats"
	"chopim/internal/workload"
)

// benchWorkers reads the CHOPIM_BENCH_WORKERS knob (default 1) that
// scripts/bench.sh sweeps to record the parallel-executor trajectory:
// figure benchmarks apply it as point-level sharding
// (Options.Parallel), single-simulation benchmarks as channel-domain
// workers (sim.Config.SimWorkers). Speedup from either layer requires
// free CPUs — on a single-CPU machine both settings measure overhead,
// which the snapshot records honestly.
func benchWorkers() int {
	if v := os.Getenv("CHOPIM_BENCH_WORKERS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 1
}

func benchOptions() experiments.Options {
	opt := experiments.QuickOptions()
	opt.Parallel = benchWorkers()
	return opt
}

// BenchmarkCalibrationSpin is a pure-CPU integer spin with no memory
// traffic: a workload-independent anchor for cross-machine ns/op
// normalization. scripts/bench_check.sh divides every other
// benchmark's fresh/committed ratio by this one's, so a uniform
// machine-speed difference cancels exactly — and a uniform regression
// of the simulator suite no longer hides inside the machine factor.
func BenchmarkCalibrationSpin(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		x := uint64(88172645463325252)
		for j := 0; j < 20_000_000; j++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
		}
		sink += x
	}
	if sink == 0 {
		b.Fatal("spin collapsed")
	}
}

var ndaOnlyOps = []string{"nrm2", "dot", "copy", "axpy"}

// ndaOnlyOptions gives the speed benchmarks a budget long enough that
// per-point setup is negligible against simulated cycles.
func ndaOnlyOptions() experiments.Options {
	return experiments.Options{WarmCycles: 50_000, MeasureCycles: 450_000, Quick: true}
}

// BenchmarkNDAOnlySweepReference is the baseline: the NDA-only sweep on
// one worker with the reference cycle-by-cycle path (every component
// ticked on every DRAM cycle).
func BenchmarkNDAOnlySweepReference(b *testing.B) {
	opt := ndaOnlyOptions()
	opt.Parallel = 1
	opt.CycleByCycle = true
	for i := 0; i < b.N; i++ {
		if _, err := experiments.NDAOnlySweep(opt, ndaOnlyOps); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNDAOnlySweepFastParallel runs the identical sweep with both
// layers of the speed subsystem enabled: idle-cycle fast-forward inside
// each simulation and the sharded runner across them (as `chopim
// -parallel -1` does). Results are bit-identical to the reference;
// wall-clock must be >=2x better (fast-forward alone delivers >2x on
// one CPU for NDA-only points; sharding multiplies on real machines).
func BenchmarkNDAOnlySweepFastParallel(b *testing.B) {
	opt := ndaOnlyOptions()
	opt.Parallel = -1
	for i := 0; i < b.N; i++ {
		if _, err := experiments.NDAOnlySweep(opt, ndaOnlyOps); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMixedHostNDA measures the host-traffic hot path: a mixed
// host+NDA system (mix 1 plus a long-running NDA COPY, the workload
// shape behind every headline figure) advanced through the production
// steady-state loop (RunFast; Run remains the bit-identical reference
// oracle). The cost mixes per-cycle scheduler work — the FR-FCFS
// passes, the DRAM timing checks, the NDA coordination hooks — with the
// wake-driven dispatch that skips blocked cores and undisturbed
// components. Setup and warm-up run off the timer; allocs/op must be
// zero (the steady-state loop is pooled end to end —
// TestTickLoopAllocFree pins the same property).
func BenchmarkMixedHostNDA(b *testing.B) {
	benchMixedHostNDA(b, benchWorkers())
}

// BenchmarkMixedHostNDAWorkers4 is the same workload with the
// sim-internal executor forced to 4 workers regardless of
// CHOPIM_BENCH_WORKERS. It rides in the serial suite so that
// scripts/bench.sh's overhead gate (executor cost on machines without
// free CPUs, <=1.15x serial; see the threshold history there)
// compares two numbers from the same go test invocation, seconds
// apart; comparing the serial run against the separate
// CHOPIM_BENCH_WORKERS=4 invocation minutes later turned the gate
// into a load-era lottery on shared single-CPU containers.
func BenchmarkMixedHostNDAWorkers4(b *testing.B) {
	benchMixedHostNDA(b, 4)
}

func benchMixedHostNDA(b *testing.B, workers int) {
	const measureCycles = 100_000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := sim.Default(1)
		cfg.SimWorkers = workers
		s, err := sim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		// Sized so the op outlives warm-up plus the measured window.
		app, err := apps.NewMicroPlaced(s.RT, "copy", (8<<20)/4, ndart.Private)
		if err != nil {
			b.Fatal(err)
		}
		h, err := app.Iterate()
		if err != nil {
			b.Fatal(err)
		}
		s.RunFast(50_000)
		b.StartTimer()
		s.RunFast(measureCycles)
		b.StopTimer()
		if h.Done() {
			b.Fatal("NDA op finished inside the measured window")
		}
		s.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(measureCycles), "DRAM-cycles/op")
}

// BenchmarkMixedHostNDACheckpointed is BenchmarkMixedHostNDA with the
// durable-checkpoint machinery armed at a production cadence: one full
// durable cut per 100k simulated cycles, through the same shape the
// experiments layer uses — the snapshot (an immutable deep copy) is
// taken on the measurement loop, while encoding and the fsynced atomic
// write proceed on a background writer as simulation continues. The
// measured window spans two cadence intervals so the writer's work
// genuinely overlaps measured simulation instead of draining off the
// timer. scripts/bench.sh normalizes this per-cycle against plain
// MixedHostNDA (which measures half the cycles) and gates the
// checkpoint overhead at <=5%; the writer allocates by design (encode
// + file I/O), so the zero-allocs contract is gated on the
// un-checkpointed benchmark only.
func BenchmarkMixedHostNDACheckpointed(b *testing.B) {
	const (
		measureCycles = 200_000
		ckptEvery     = 100_000
	)
	path := b.TempDir() + "/bench.ckpt"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := sim.Default(1)
		cfg.SimWorkers = benchWorkers()
		s, err := sim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		// Sized so the op outlives warm-up plus the measured window.
		app, err := apps.NewMicroPlaced(s.RT, "copy", (16<<20)/4, ndart.Private)
		if err != nil {
			b.Fatal(err)
		}
		h, err := app.Iterate()
		if err != nil {
			b.Fatal(err)
		}
		s.RunFast(50_000)
		jobs := make(chan *sim.Checkpoint, 1)
		done := make(chan struct{})
		go func() {
			for ck := range jobs {
				if env, err := sim.EncodeCheckpoint(cfg, ck); err == nil {
					_ = atomicio.WriteFile(path, env)
				}
			}
			close(done)
		}()
		b.StartTimer()
		s.RunFast(ckptEvery)
		ck, _, err := s.SnapshotWithRoots([]*ndart.Handle{h})
		if err != nil {
			b.Fatal(err)
		}
		jobs <- ck
		s.RunFast(measureCycles - ckptEvery)
		b.StopTimer()
		close(jobs)
		<-done
		if h.Done() {
			b.Fatal("NDA op finished inside the measured window")
		}
		if _, err := os.Stat(path); err != nil {
			b.Fatal("checkpoint write never landed:", err)
		}
		s.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(measureCycles), "DRAM-cycles/op")
	b.ReportMetric(1, "ckpt-writes/op")
}

// BenchmarkFig14Wide8Ranks measures the widest Figure 14 class
// configuration: 8 ranks per channel — 128 banks per channel against
// the default geometry's 32 — with mix1 host traffic and a long-running
// NDA COPY, through the production RunFast loop. Wide geometries stress
// every per-bank and per-rank structure at 4x the default fan-out: the
// FR-FCFS scan width, the calendar's bank-event population, the NDA
// sleep-bound derivation across 8 rank FSMs per channel. Setup and
// warm-up run off the timer; allocs/op must stay zero like the other
// host-path benchmarks.
func BenchmarkFig14Wide8Ranks(b *testing.B) {
	const measureCycles = 100_000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := sim.Default(1)
		g := dram.DefaultGeometry()
		g.Ranks = 8
		cfg.Geom = g
		cfg.SimWorkers = benchWorkers()
		s, err := sim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		// Sized so the op outlives warm-up plus the measured window even
		// at 4x the per-channel NDA bandwidth of the default geometry.
		app, err := apps.NewMicroPlaced(s.RT, "copy", (32<<20)/4, ndart.Private)
		if err != nil {
			b.Fatal(err)
		}
		h, err := app.Iterate()
		if err != nil {
			b.Fatal(err)
		}
		s.RunFast(50_000)
		b.StartTimer()
		s.RunFast(measureCycles)
		b.StopTimer()
		if h.Done() {
			b.Fatal("NDA op finished inside the measured window")
		}
		s.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(measureCycles), "DRAM-cycles/op")
}

// BenchmarkHostStallHeavy measures the core stall-skipping win in
// isolation: four cores run workload.StallHeavy — serialize-heavy,
// low-MLP random loads whose ROB heads sit blocked on DRAM for most
// cycles — with no NDA traffic, through the production RunFast loop.
// With exact core wake times the scheduler jumps the long fully-blocked
// windows instead of ticking every core on every CPU cycle, so this
// benchmark should improve by more than the mixed workload does.
func BenchmarkHostStallHeavy(b *testing.B) {
	const measureCycles = 100_000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := sim.Default(-1)
		cfg.SimWorkers = benchWorkers()
		p := workload.StallHeavy()
		cfg.HostProfiles = []workload.Profile{p, p, p, p}
		s, err := sim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		// The MSHR machinery (waiter slices, pending map, node pool) is
		// pre-sized to config bounds, so even this slow-warming 64 MiB
		// random footprint reaches the measured window allocation-free;
		// scripts/bench.sh gates allocs/op at zero here just like the
		// mixed benchmark.
		s.RunFast(150_000)
		b.StartTimer()
		s.RunFast(measureCycles)
		b.StopTimer()
		s.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(measureCycles), "DRAM-cycles/op")
}

// BenchmarkHostComputeHeavy measures the serial CPU front-end in
// isolation: four high-IPC cache-resident cores (workload.ComputeHeavy)
// whose issue groups are mostly free of memory instructions, with no NDA
// traffic, through the production RunFast loop. An active core pins
// NextEvent to now, so every DRAM tick executes and the cost is almost
// entirely the CPU-credit loop — the Amdahl term of the channel-domain
// executor. The window-batched retirement path collapses the
// compute-bound issue groups arithmetically; allocs/op must stay zero.
func BenchmarkHostComputeHeavy(b *testing.B) {
	const measureCycles = 100_000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := sim.Default(-1)
		cfg.SimWorkers = benchWorkers()
		p := workload.ComputeHeavy()
		cfg.HostProfiles = []workload.Profile{p, p, p, p}
		s, err := sim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		s.RunFast(50_000)
		b.StartTimer()
		s.RunFast(measureCycles)
		b.StopTimer()
		s.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(measureCycles), "DRAM-cycles/op")
}

// BenchmarkFig02IdleHistogram regenerates Figure 2: rank idle-time
// breakdown across the Table II mixes.
func BenchmarkFig02IdleHistogram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig2(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		// Headline: fraction of idle cycles in sub-250-cycle gaps for
		// the most intensive mix (motivates fine-grain interleaving).
		r := rows[1]
		short := r.Fractions[stats.Idle1To10] + r.Fractions[stats.Idle10To100] + r.Fractions[stats.Idle100To250]
		idle := 1 - r.Fractions[stats.Busy]
		if idle > 0 {
			b.ReportMetric(short/idle, "mix1-short-idle-frac")
		}
	}
}

// BenchmarkFig10CoarseGrain regenerates Figure 10: host IPC and NDA
// bandwidth utilization versus NDA instruction granularity.
func BenchmarkFig10CoarseGrain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig10(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		fine, coarse := rows[0], rows[len(rows)-1]
		if fine.NDAUtil > 0 {
			b.ReportMetric(coarse.NDAUtil/fine.NDAUtil, "coarse-vs-fine-NDA-BW")
		}
	}
}

// BenchmarkFig11BankPartitioning regenerates Figure 11: shared versus
// partitioned banks under DOT and COPY.
func BenchmarkFig11BankPartitioning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig11(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		r := rows[len(rows)-1]
		if r.SharedDOT.NDAUtil > 0 {
			b.ReportMetric(r.PartDOT.NDAUtil/r.SharedDOT.NDAUtil, "partitioning-DOT-gain")
		}
	}
}

// BenchmarkFig11Sampled regenerates Figure 11 in SMARTS-style sampled
// mode with a production-shaped schedule (165k cycles per point: 1k
// detailed prime, then 8 windows of 20k fast-forward, 200 warm-up, 300
// measured — the default schedule's FF length with a trimmed detailed
// fraction). It reports sim-cycles-per-op so scripts/bench.sh can gate
// simulation THROUGHPUT — ns per simulated cycle, the standard sampled-
// simulation speedup metric — against BenchmarkFig11BankPartitioning's
// exact 45k-cycle points at >=10x. A matched-span ns/op ratio would
// understate the win: the whole point of sampling is that long spans
// cost almost nothing beyond their detailed windows, so the benchmark
// covers 3.7x the exact span and still finishes several times sooner.
func BenchmarkFig11Sampled(b *testing.B) {
	opt := benchOptions()
	opt.Sampled = true
	opt.Sample = sim.SampleConfig{Windows: 8, Detail: 300, Warmup: 200, FF: 20000, Prime: 1000}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig11(opt)
		if err != nil {
			b.Fatal(err)
		}
		r := rows[len(rows)-1]
		if r.SharedDOT.NDAUtil > 0 {
			b.ReportMetric(r.PartDOT.NDAUtil/r.SharedDOT.NDAUtil, "partitioning-DOT-gain")
		}
		b.ReportMetric(float64(opt.Sample.TotalCycles()), "sim-cycles")
	}
}

// BenchmarkFig12WriteThrottling regenerates Figure 12: the write-issue
// policy comparison under the write-intensive COPY.
func BenchmarkFig12WriteThrottling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig12(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		var nextRank, ifIdle experiments.Result
		for _, p := range rows[len(rows)-1].Points {
			switch p.Label {
			case "Predict_next_rank":
				nextRank = p.Res
			case "Issue_if_idle":
				ifIdle = p.Res
			}
		}
		if ifIdle.HostIPC > 0 {
			b.ReportMetric(nextRank.HostIPC/ifIdle.HostIPC, "nextrank-host-IPC-gain")
		}
	}
}

// BenchmarkFig12CachedRegen measures regenerating Figure 12 from the
// content-addressed result cache: the first (seeding) run simulates and
// stores off the timer; every measured iteration replays the stored
// rows. scripts/bench.sh records the ratio against the uncached
// BenchmarkFig12WriteThrottling and gates it at >=10x.
func BenchmarkFig12CachedRegen(b *testing.B) {
	opt := benchOptions()
	opt.CacheDir = b.TempDir()
	if _, err := experiments.Fig12(opt); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig12(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig13OpSweep regenerates Figure 13: Table I operations across
// operand sizes and asynchronous launch.
func BenchmarkFig13OpSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig13(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		var small, async float64
		for _, r := range rows {
			if r.Op == "copy" && r.Size == "Small" {
				small = r.NDAUtil
			}
			if r.Op == "copy" && r.Size == "Small+Async" {
				async = r.NDAUtil
			}
		}
		if small > 0 && async > 0 {
			b.ReportMetric(async/small, "async-launch-gain")
		}
	}
}

// BenchmarkFig14Scalability regenerates Figure 14: Chopim versus rank
// partitioning across rank counts and workloads.
func BenchmarkFig14Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig14(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Workload == "dot" && r.RPNDABW > 0 {
				b.ReportMetric(r.ChopimNDABW/r.RPNDABW, "chopim-vs-RP-NDA-BW")
			}
		}
	}
}

// BenchmarkFig15aConvergence regenerates Figure 15a: SVRG convergence
// trajectories under all execution modes.
func BenchmarkFig15aConvergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		curves, optimum, err := experiments.Fig15a(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		_ = optimum
		if len(curves) != 7 {
			b.Fatalf("got %d curves, want 7", len(curves))
		}
	}
}

// BenchmarkFig15bScaling regenerates Figure 15b: time-to-convergence
// speedup versus NDA count.
func BenchmarkFig15bScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig15b(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(last.SpeedupDelayed, "delayed-update-speedup")
	}
}

// BenchmarkAblationLayout isolates the colored-layout contribution
// (DESIGN.md §4 ablations): naive uncolored operands force host copies.
func BenchmarkAblationLayout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationLayout(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if rows[1].NDAUtil > 0 {
			b.ReportMetric(rows[0].NDAUtil/rows[1].NDAUtil, "colored-vs-naive-NDA-BW")
		}
	}
}

// BenchmarkAblationWriteBuffer sweeps PE write-buffer capacity.
func BenchmarkAblationWriteBuffer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationWriteBuffer(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationLaunchModel toggles launch-packet modeling.
func BenchmarkAblationLaunchModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationLaunchModel(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if rows[0].NDAUtil > 0 {
			b.ReportMetric(rows[1].NDAUtil/rows[0].NDAUtil, "free-vs-modeled-launch")
		}
	}
}

// BenchmarkPower regenerates the Section VII memory-power estimates.
func BenchmarkPower(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Power(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].AvgPowerW, "concurrent-power-W")
	}
}
