package experiments

import (
	"chopim/internal/apps"
	"chopim/internal/energy"
	"chopim/internal/sim"
)

// PowerRow summarizes the Section VII memory-power study.
type PowerRow struct {
	Scenario  string
	AvgPowerW float64
	Breakdown energy.Breakdown
}

// Power reproduces the paper's memory-power estimates: host-only power
// under the most intensive mixes, NDA power under the average-gradient
// kernel, and the concurrent total — which stays below the host-only
// theoretical maximum because NDA accesses use low-energy internal paths.
func Power(opt Options) ([]PowerRow, error) { return figCached(opt, "power", powerRows) }

func powerRows(opt Options) ([]PowerRow, error) {
	scenarios := []struct {
		name    string
		mix     int
		withNDA bool
	}{
		{"host-only mix0", 0, false},
		{"host-only mix1", 1, false},
		{"concurrent mix1 + avg-gradient", 1, true},
	}
	return sharded(opt, len(scenarios), func(i int) (PowerRow, error) {
		sc := scenarios[i]
		cfg := sim.Default(sc.mix)
		s, err := opt.newSystem(cfg)
		if err != nil {
			return PowerRow{}, err
		}
		var it launcher
		if sc.withNDA {
			n, d := 2048, 512
			if opt.Quick {
				n = 512
			}
			ag, err := apps.NewAverageGradient(s.RT, apps.AverageGradientConfig{N: n, D: d})
			if err != nil {
				return PowerRow{}, err
			}
			it = ag.Run
		}
		if _, err := measureConcurrent(s, it, opt.withTag("power-"+sc.name)); err != nil {
			return PowerRow{}, err
		}
		// Energy counters accumulate from cycle zero, so use the full
		// run duration for average power.
		sec := sim.Seconds(s.Now())
		st := s.NDA.TotalStats()
		c := energy.FromMem(s.Mem, sec, s.RT.NDACount())
		// PE-side counters: one FMA per pair of floats read and one
		// buffer access per block moved (Fig 9 pipeline).
		c.FMAs = st.BlocksRead * 8
		c.BufAccess = st.BlocksRead + st.BlocksWritten
		b := energy.Compute(c)
		return PowerRow{Scenario: sc.name, AvgPowerW: b.AvgPowerW, Breakdown: b}, nil
	})
}
