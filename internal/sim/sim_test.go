package sim

import (
	"testing"

	"chopim/internal/dram"
	"chopim/internal/ndart"
)

func TestHostOnlyMixProgresses(t *testing.T) {
	cfg := Default(8) // lightest mix
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(20000)
	s.BeginMeasurement()
	s.Run(30000)
	ipc := s.HostIPC()
	if ipc <= 0.1 {
		t.Errorf("mix8 aggregate IPC = %.3f, expected forward progress", ipc)
	}
	if s.Mem.Counts().RD == 0 {
		t.Error("no host reads reached DRAM")
	}
}

func TestMemoryIntensiveMixStressesDRAM(t *testing.T) {
	s, err := New(Default(1))
	if err != nil {
		t.Fatal(err)
	}
	s.Run(30000)
	if s.Mem.Counts().RD < 1000 {
		t.Errorf("mix1 issued only %d DRAM reads in 30k cycles", s.Mem.Counts().RD)
	}
	if s.Mem.Counts().ACT == 0 {
		t.Error("no activations issued")
	}
}

func TestNDACopyCompletes(t *testing.T) {
	cfg := Default(-1) // no host traffic
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 64 * 1024 // 256 KB vector
	x, err := s.RT.NewVector(n, ndart.Shared)
	if err != nil {
		t.Fatal(err)
	}
	y, err := s.RT.NewVector(n, ndart.Shared)
	if err != nil {
		t.Fatal(err)
	}
	h, err := s.RT.Copy(y, x)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Await(5_000_000, h); err != nil {
		t.Fatal(err)
	}
	blocks := int64(n * 4 / dram.BlockBytes)
	st := s.NDA.TotalStats()
	if st.BlocksRead != blocks {
		t.Errorf("COPY read %d blocks, want %d", st.BlocksRead, blocks)
	}
	if st.BlocksWritten != blocks {
		t.Errorf("COPY wrote %d blocks, want %d", st.BlocksWritten, blocks)
	}
}

func TestNDADotIsReadOnly(t *testing.T) {
	s, err := New(Default(-1))
	if err != nil {
		t.Fatal(err)
	}
	const n = 16 * 1024
	x, _ := s.RT.NewVector(n, ndart.Shared)
	y, _ := s.RT.NewVector(n, ndart.Shared)
	h, err := s.RT.Dot(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Await(5_000_000, h); err != nil {
		t.Fatal(err)
	}
	st := s.NDA.TotalStats()
	if st.BlocksWritten != 0 {
		t.Errorf("DOT wrote %d blocks, want 0", st.BlocksWritten)
	}
	want := int64(2 * n * 4 / dram.BlockBytes)
	if st.BlocksRead != want {
		t.Errorf("DOT read %d blocks, want %d", st.BlocksRead, want)
	}
}

func TestConcurrentHostAndNDA(t *testing.T) {
	cfg := Default(1)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	x, err := s.RT.NewVector(256*1024, ndart.Shared)
	if err != nil {
		t.Fatal(err)
	}
	h, err := s.RT.Nrm2(x)
	if err != nil {
		t.Fatal(err)
	}
	s.BeginMeasurement()
	if err := s.Await(10_000_000, h); err != nil {
		t.Fatal(err)
	}
	if s.HostIPC() <= 0 {
		t.Error("host made no progress during concurrent NDA execution")
	}
	if s.NDABlocks() == 0 {
		t.Error("NDA made no progress during concurrent host execution")
	}
}

func TestFSMReplicaStaysInSync(t *testing.T) {
	cfg := Default(1)
	cfg.NDA.VerifyFSM = true // panics on divergence
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := s.RT.NewVector(64*1024, ndart.Shared)
	y, _ := s.RT.NewVector(64*1024, ndart.Shared)
	h, err := s.RT.Copy(y, x)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Await(10_000_000, h); err != nil {
		t.Fatal(err)
	}
}

func TestGranularitySplitting(t *testing.T) {
	cfg := Default(-1)
	cfg.MaxBlocksPerInstr = 16
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := s.RT.NewVector(64*1024, ndart.Shared)
	h, err := s.RT.Nrm2(x)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Await(10_000_000, h); err != nil {
		t.Fatal(err)
	}
	// 64Ki floats = 4096 blocks over 4 ranks = 1024 blocks/rank =
	// 64 instructions per rank at N=16.
	if s.RT.Launches != 64*4 {
		t.Errorf("launches = %d, want 256", s.RT.Launches)
	}
}

func TestAsyncMacroOp(t *testing.T) {
	cfg := Default(-1)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Rank interleaving is coarse: the vector must span the rank-select
	// address bit to reach all four rank NDAs (1 MiB does).
	x, _ := s.RT.NewVector(256*1024, ndart.Shared)
	y, _ := s.RT.NewVector(256*1024, ndart.Shared)
	h, err := s.RT.MacroFor(8, func(i int) ndart.Spec {
		return ndart.AxpySpec(y, x)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Await(20_000_000, h); err != nil {
		t.Fatal(err)
	}
	// One launch packet per rank, not per iteration.
	if want := int64(4); s.RT.Launches != want {
		t.Errorf("macro op used %d launches, want %d", s.RT.Launches, want)
	}
}

// TestProfileDomainsNeutral pins that enabling the phase-span profiler
// changes no observable behavior — counters bit-identical to an
// unprofiled run — while actually recording spans for every executed
// tick's memory phases and front end.
func TestProfileDomainsNeutral(t *testing.T) {
	run := func(profile bool) (*System, string) {
		cfg := Default(1)
		cfg.ProfileDomains = profile
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.RunFast(30_000)
		return s, snapshot(s)
	}
	plain, wantSnap := run(false)
	prof, gotSnap := run(true)
	if wantSnap != gotSnap {
		t.Fatalf("profiling changed behavior:\n off: %s\n on:  %s", wantSnap, gotSnap)
	}
	if plain.PhaseSpans() != nil {
		t.Fatal("unprofiled system reports spans")
	}
	p := prof.PhaseSpans()
	if p == nil || len(p.Domains) != len(prof.MCs) {
		t.Fatalf("profiled system spans missing: %+v", p)
	}
	var mem, front int64
	for _, hist := range p.Domains {
		for _, n := range hist {
			mem += n
		}
	}
	for _, n := range p.Front {
		front += n
	}
	if mem == 0 || front == 0 {
		t.Fatalf("no spans recorded: memory=%d front=%d", mem, front)
	}
}
