package experiments

import (
	"chopim/internal/sim"
	"chopim/internal/stats"
	"chopim/internal/workload"
)

// Fig2Row is one mix's rank idle-time breakdown (fractions of total
// rank-cycles per bucket).
type Fig2Row struct {
	Mix       string
	Fractions [stats.NumIdleBuckets]float64
}

// Fig2 reproduces Figure 2: rank idle-time versus idleness granularity
// for the nine host-only application mixes. It shows that most idle
// periods are shorter than 250 cycles, motivating fine-grain
// interleaving.
func Fig2(opt Options) ([]Fig2Row, error) { return figCached(opt, "fig2", fig2Rows) }

func fig2Rows(opt Options) ([]Fig2Row, error) {
	return sharded(opt, len(workload.Mixes), func(mix int) (Fig2Row, error) {
		s, err := opt.newSystem(sim.Default(mix))
		if err != nil {
			return Fig2Row{}, err
		}
		if _, err := measureConcurrent(s, nil, opt.withTag("fig2-"+workload.MixName(mix))); err != nil {
			return Fig2Row{}, err
		}
		var total [stats.NumIdleBuckets]int64
		var sum int64
		for _, c := range s.MCs {
			for i := range c.IdleHists {
				cyc := c.IdleHists[i].Cycles()
				for b, v := range cyc {
					total[b] += v
					sum += v
				}
			}
		}
		row := Fig2Row{Mix: workload.MixName(mix)}
		if sum > 0 {
			for b, v := range total {
				row.Fractions[b] = float64(v) / float64(sum)
			}
		}
		return row, nil
	})
}
