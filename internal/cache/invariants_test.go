package cache

import (
	"strings"
	"testing"
)

// loadedHier returns a hierarchy with misses in flight across two cores
// (live MSHRs, waiters, and l1Pending accounting to corrupt).
func loadedHier(t *testing.T) (*Hierarchy, *fakeBackend) {
	t.Helper()
	h, b := testHier(2)
	for i := uint64(0); i < 4; i++ {
		h.Access(0, 0x10000+i*0x40000, false, 0, func(int64) {})
		h.Access(1, 0x10000+i*0x40000, false, 0, func(int64) {}) // merges into the same MSHR
	}
	if h.PendingMisses() == 0 {
		t.Fatal("no misses in flight")
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatalf("healthy hierarchy fails its own invariants: %v", err)
	}
	return h, b
}

// TestHierInvariantsHealthy validates through a full miss lifecycle:
// in flight, after fills, and after re-access hits.
func TestHierInvariantsHealthy(t *testing.T) {
	h, b := loadedHier(t)
	b.completeAll(100)
	if err := h.CheckInvariants(); err != nil {
		t.Fatalf("after fills: %v", err)
	}
	if h.PendingMisses() != 0 {
		t.Fatalf("fills left %d misses pending", h.PendingMisses())
	}
	h.Access(0, 0x10000, false, 200, nil)
	if err := h.CheckInvariants(); err != nil {
		t.Fatalf("after re-access: %v", err)
	}
}

func TestHierInvariantsDetectCorruption(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(t *testing.T, h *Hierarchy)
		want    string
	}{
		{"l1-pending-drift", func(t *testing.T, h *Hierarchy) {
			h.l1Pending[0]++ // a leaked L1 MSHR slot
		}, "l1Pending"},
		{"pending-counter", func(t *testing.T, h *Hierarchy) {
			h.pending.n++
		}, "counter says"},
		{"misfiled-mshr", func(t *testing.T, h *Hierarchy) {
			for i, m := range h.pending.vals {
				if m != nil {
					m.block ^= 1 << 40 // entry no longer matches its table key
					_ = i
					return
				}
			}
			t.Skip("no live MSHR")
		}, "filed under"},
		{"waiter-core-range", func(t *testing.T, h *Hierarchy) {
			for _, m := range h.pending.vals {
				if m != nil && len(m.waiters) > 0 {
					m.waiters[0].core = 99
					return
				}
			}
			t.Skip("no waiter to corrupt")
		}, "waiter for core"},
		{"probe-chain-gap", func(t *testing.T, h *Hierarchy) {
			// Empty a slot without bookkeeping: any resident further down
			// the chain that probes across it becomes unreachable.
			tb := h.pending
			for i := range tb.vals {
				if tb.vals[i] == nil {
					continue
				}
				// Only a gap if some other resident's chain crosses i; make
				// one by clearing the home slot of a displaced entry.
				for j := range tb.vals {
					if tb.vals[j] != nil && uint64(j) != tb.home(tb.keys[j]) {
						tb.vals[tb.home(tb.keys[j])] = nil
						return
					}
				}
				t.Skip("no displaced entry to orphan")
			}
			t.Skip("no live entries")
		}, "probe chain"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h, _ := loadedHier(t)
			tc.corrupt(t, h)
			err := h.CheckInvariants()
			if err == nil {
				t.Fatal("corruption not detected")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestHierarchyConfigValidate(t *testing.T) {
	if err := DefaultHierarchyConfig(4).Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*HierarchyConfig){
		func(c *HierarchyConfig) { c.Cores = 0 },
		func(c *HierarchyConfig) { c.PrefetchDegree = -1 },
		func(c *HierarchyConfig) { c.L1.Ways = 0 },
		// One set fewer: still divisible, set count no longer a power of two.
		func(c *HierarchyConfig) { c.LLC.SizeBytes -= c.LLC.Ways * c.LLC.BlockBytes },
	}
	for i, mut := range bad {
		cfg := DefaultHierarchyConfig(4)
		mut(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}
