package cache

// cacheState is a deep copy of one level's mutable state. The MRU
// filter is not captured: it is a pure acceleration of the way scan
// (the filtered path performs identical state updates), so restore
// simply invalidates it.
type cacheState struct {
	lines  []line
	clock  uint64
	hits   int64
	misses int64
}

func (c *Cache) snapshot() cacheState {
	return cacheState{
		lines: append([]line(nil), c.lines...),
		clock: c.clock, hits: c.Hits, misses: c.Misses,
	}
}

func (c *Cache) restore(st cacheState) {
	if len(st.lines) != len(c.lines) {
		panic("cache: restore onto a cache with different geometry")
	}
	copy(c.lines, st.lines)
	c.clock, c.Hits, c.Misses = st.clock, st.hits, st.misses
	c.lastLine = nil // MRU filter revalidates on the next lookup
}

// waiterState identifies one MSHR waiter by (core, ROB slot); restore
// rewires it to the core's pooled completion closure.
type waiterState struct {
	core, slot int
	hasDone    bool
}

// mshrState is one in-flight LLC miss.
type mshrState struct {
	block    uint64
	core     int
	dirty    bool
	prefetch bool
	waiters  []waiterState
}

// HierarchyState is an opaque deep copy of the hierarchy's mutable
// state: every cache level's contents, the in-flight MSHR set with its
// waiters, per-core L1 MSHR occupancy, prefetch stride detectors, and
// counters. Fill callbacks are not serialized — restored MSHRs get
// fresh pool nodes whose closures are equivalent, and controller-queue
// restore reattaches reads to them through FillFor. The deferMiss
// scratch is transient within one CPU sub-cycle and always false at
// the quiescent points snapshots are taken, so it is excluded.
type HierarchyState struct {
	l1, l2     []cacheState
	llc        cacheState
	mshrs      []mshrState
	l1Pending  []int
	prefetch   []strideState
	prefetches int64
	demand     int64
	ver        uint64
}

// Snapshot captures the hierarchy's full mutable state.
func (h *Hierarchy) Snapshot() *HierarchyState {
	st := &HierarchyState{
		llc:        h.llc.snapshot(),
		l1Pending:  append([]int(nil), h.l1Pending...),
		prefetch:   append([]strideState(nil), h.prefetch...),
		prefetches: h.Prefetches,
		demand:     h.Demand,
		ver:        h.ver,
	}
	for i := range h.l1 {
		st.l1 = append(st.l1, h.l1[i].snapshot())
		st.l2 = append(st.l2, h.l2[i].snapshot())
	}
	for i := range h.pending.vals {
		m := h.pending.vals[i]
		if m == nil {
			continue
		}
		ms := mshrState{block: m.block, core: m.core, dirty: m.dirty, prefetch: m.prefetch}
		for _, w := range m.waiters {
			ms.waiters = append(ms.waiters, waiterState{core: w.core, slot: w.slot, hasDone: w.done != nil})
		}
		st.mshrs = append(st.mshrs, ms)
	}
	return st
}

// Restore overwrites the hierarchy's state with the snapshot. The
// hierarchy must have been built with the same config. done resolves a
// waiter's (core, ROB slot) back to its completion closure (the sim
// package passes the cores' DoneFn accessors).
func (h *Hierarchy) Restore(st *HierarchyState, done func(core, slot int) func(int64)) {
	if len(st.l1) != len(h.l1) {
		panic("cache: restore onto a hierarchy with different core count")
	}
	for i := range h.l1 {
		h.l1[i].restore(st.l1[i])
		h.l2[i].restore(st.l2[i])
	}
	h.llc.restore(st.llc)
	// Drop any live MSHRs back to the pool and rebuild the saved set.
	for i := range h.pending.vals {
		if m := h.pending.vals[i]; m != nil {
			h.freeMSHR(m)
			h.pending.keys[i], h.pending.vals[i] = 0, nil
		}
	}
	h.pending.n = 0
	for _, ms := range st.mshrs {
		m := h.allocMSHR(ms.core, ms.block, ms.dirty, ms.prefetch)
		for _, w := range ms.waiters {
			var fn func(int64)
			if w.hasDone && done != nil {
				fn = done(w.core, w.slot)
			}
			m.waiters = append(m.waiters, waiter{core: w.core, slot: w.slot, done: fn})
		}
		h.pending.put(ms.block, m)
	}
	copy(h.l1Pending, st.l1Pending)
	copy(h.prefetch, st.prefetch)
	h.Prefetches, h.Demand, h.ver = st.prefetches, st.demand, st.ver
}

// FillFor returns the fill callback of the in-flight miss covering
// addr. Controller-queue restore uses it to reattach restored read
// requests to their MSHRs (every host read in a controller queue
// belongs to exactly one pending LLC miss).
func (h *Hierarchy) FillFor(addr uint64) func(dramDone int64) {
	m := h.pending.get(h.block(addr))
	if m == nil {
		panic("cache: FillFor with no pending miss for the block")
	}
	return m.fill
}
