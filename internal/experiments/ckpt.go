// Mid-point durable checkpoints and cooperative sweep cancellation.
// Long simulation points periodically persist a fork of their system
// (Options.CheckpointEvery) into the journal directory, keyed by a
// fingerprint of everything the point's state depends on; a resumed
// sweep restores the newest valid checkpoint and continues from its
// cycle instead of recomputing from zero. The file carries a
// CRC-guarded metadata line (progress cursors, the driver handle's
// table index) over the sim package's digest-trailered envelope, so a
// torn or corrupted file — including one a crash left behind —
// degrades to the journal's miss-and-recompute contract, never to a
// half-restored point.
package experiments

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync/atomic"

	"chopim/internal/atomicio"
	"chopim/internal/faults"
	"chopim/internal/ndart"
	"chopim/internal/sim"
)

// Canceler coordinates a sweep's cooperative shutdown from a signal
// handler or peer goroutine. Two escalation levels: CancelAdmission
// stops new points from starting while in-flight ones run to
// completion (drain); CancelPoints additionally raises the cooperative
// stop flag every in-flight system polls, so running points cut at the
// next quiescent boundary, persist a final checkpoint when one is
// configured, and return partial statistics. Both are sticky and safe
// to call from any goroutine, any number of times.
type Canceler struct {
	admit atomic.Bool
	sim   atomic.Bool
}

// CancelAdmission stops the runner from admitting new points.
func (c *Canceler) CancelAdmission() { c.admit.Store(true) }

// CancelPoints stops admission and cancels every in-flight point.
func (c *Canceler) CancelPoints() {
	c.admit.Store(true)
	c.sim.Store(true)
}

// AdmissionStopped reports whether new points may still start.
// Nil-safe: no canceler means admission never stops.
func (c *Canceler) AdmissionStopped() bool { return c != nil && c.admit.Load() }

// simFlag is the cooperative stop flag wired into each point's
// sim.Config.Cancel.
func (c *Canceler) simFlag() *atomic.Bool { return &c.sim }

var (
	statCanceled     atomic.Int64
	statCkptWrites   atomic.Int64
	statCkptRestores atomic.Int64
)

// ckptSyncWrites forces the periodic checkpoint cadence onto the
// measurement loop instead of the background writer. Tests that drive
// cancellation from the CkptWritten fault site set it so the cancel
// lands at a deterministic simulated cycle; production always runs
// asynchronously (the crash harness proves that path end to end).
var ckptSyncWrites bool

// pointCkptKey fingerprints everything a mid-point checkpoint's state
// depends on: the model version, the point's full simulation config
// with the state-free knobs zeroed (as warmPoolKey), the cycle budget,
// and the caller's point tag — the discriminator for sweeps whose
// points share a config but differ in workload (the NDA-only op sweep
// runs eight ops over one config).
func pointCkptKey(cfg sim.Config, opt Options) (string, bool) {
	cfg.SimWorkers = 0
	cfg.ProfileDomains = false
	cfg.CheckInvariants = false
	cfg.WatchdogWindow = 0
	cfg.MaxCycles = 0
	cfg.MaxWallClock = 0
	cfg.Cancel = nil
	b, err := json.Marshal(struct {
		Schema        string
		Cfg           sim.Config
		Warm, Measure int64
		Quick         bool
		CycleByCycle  bool
		Tag           string
	}{cacheSchema, cfg, opt.WarmCycles, opt.MeasureCycles, opt.Quick, opt.CycleByCycle, opt.pointTag})
	if err != nil {
		return "", false
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), true
}

// pointCkptMeta is the driver-level progress state that rides above the
// sim envelope: what the simulator cannot know but the resumed
// measurement loop needs to continue exactly where the original was.
type pointCkptMeta struct {
	Key       string
	Cycle     int64
	Measuring bool  // BeginMeasurement already ran
	Busy0     int64 // host-busy baseline captured at BeginMeasurement
	Blocks0   int64 // NDA-blocks baseline captured at BeginMeasurement
	HandleIdx int   // driver handle's encoder-table index; -1 without a launcher
	C         uint32
}

func (m pointCkptMeta) crc() uint32 {
	m.C = 0
	b, err := json.Marshal(m)
	if err != nil {
		return 0
	}
	return crc32.ChecksumIEEE(b)
}

// pointCkpt is one in-flight point's checkpoint file context.
type pointCkpt struct {
	path  string
	key   string
	every int64
	next  int64 // next cycle at or past which to persist

	// Background writer for the periodic cadence: a Checkpoint shares
	// nothing mutable with its system, so only the snapshot has to run
	// on the measurement loop — encoding and the fsynced atomic write
	// proceed on this worker while simulation continues. The channel
	// holds one pending job; a cut arriving while the worker is still
	// persisting the previous one is dropped (cadence degrades, the
	// next interval retries — same contract as a failed write). nil
	// until the first asynchronous write, nil again after flush.
	jobs    chan ckptJob
	done    chan struct{}
	flushed bool
}

// ckptJob is a snapshot handed to the background writer: everything
// persist needs without touching the live system again.
type ckptJob struct {
	cfg  sim.Config
	ck   *sim.Checkpoint
	meta pointCkptMeta
}

// openPointCkpt arms mid-point checkpointing for one point, or returns
// nil when it is off (no cadence, no journal directory, or a system
// not starting at cycle zero — the budget arithmetic and the key both
// assume the figure-built fresh-system convention).
func openPointCkpt(s *sim.System, opt Options) *pointCkpt {
	if opt.CheckpointEvery <= 0 || opt.JournalDir == "" || s.Now() != 0 {
		return nil
	}
	key, ok := pointCkptKey(s.Cfg, opt)
	if !ok {
		return nil
	}
	return &pointCkpt{
		path:  filepath.Join(opt.JournalDir, "point-"+key[:20]+".ckpt"),
		key:   key,
		every: opt.CheckpointEvery,
		next:  opt.CheckpointEvery,
	}
}

// due reports whether the point has crossed its next persistence cycle.
// Nil-safe: checkpointing off is never due.
func (c *pointCkpt) due(now int64) bool { return c != nil && now >= c.next }

// snap captures the point's current state as a persistable job: the
// deep-copy snapshot plus the driver-level progress metadata. This is
// the only part of a checkpoint write that must run on the measurement
// loop. A refused snapshot (copies in flight) skips this interval and
// retries at the next — checkpoints accelerate resume, they are not
// allowed to fail the sweep.
func (c *pointCkpt) snap(s *sim.System, h *ndart.Handle, measuring bool, busy0, blocks0 int64) (ckptJob, bool) {
	c.next = s.Now()/c.every*c.every + c.every
	var roots []*ndart.Handle
	if h != nil {
		roots = append(roots, h)
	}
	ck, rootIdx, err := s.SnapshotWithRoots(roots)
	if err != nil {
		return ckptJob{}, false
	}
	meta := pointCkptMeta{
		Key: c.key, Cycle: s.Now(), Measuring: measuring,
		Busy0: busy0, Blocks0: blocks0, HandleIdx: -1,
	}
	if len(rootIdx) == 1 {
		meta.HandleIdx = rootIdx[0]
	}
	return ckptJob{cfg: s.Cfg, ck: ck, meta: meta}, true
}

// persist encodes a job and lands it durably: atomic-replace with fsync
// (atomicio). The fault sites let tests and the crash harness tear the
// bytes or SIGKILL the process the instant the file lands. Safe to call
// from the background writer — a job shares nothing with the live
// system.
func (c *pointCkpt) persist(job ckptJob) {
	env, err := sim.EncodeCheckpoint(job.cfg, job.ck)
	if err != nil {
		return
	}
	job.meta.C = job.meta.crc()
	mb, err := json.Marshal(job.meta)
	if err != nil {
		return
	}
	file := make([]byte, 0, len(mb)+1+len(env))
	file = append(append(append(file, mb...), '\n'), env...)
	if faults.Active() {
		file = faults.Mutate(faults.CkptWrite, file)
	}
	if atomicio.WriteFile(c.path, file) != nil {
		return
	}
	n := statCkptWrites.Add(1)
	if faults.Active() {
		faults.Adjust(faults.CkptWritten, n)
	}
}

// write persists the point's current state synchronously: the file is
// on disk (or the attempt abandoned) when it returns. Used for the
// final cut on cancellation, where the process may exit immediately
// after, and by tests that assert on the file. Nil-safe.
func (c *pointCkpt) write(s *sim.System, h *ndart.Handle, measuring bool, busy0, blocks0 int64) {
	if c == nil {
		return
	}
	if job, ok := c.snap(s, h, measuring, busy0, blocks0); ok {
		c.persist(job)
	}
}

// writeAsync persists the point's current state through the background
// writer: only the snapshot runs on the caller; encoding and the
// fsynced write overlap continued simulation. Used for the periodic
// cadence. Nil-safe.
func (c *pointCkpt) writeAsync(s *sim.System, h *ndart.Handle, measuring bool, busy0, blocks0 int64) {
	if c == nil {
		return
	}
	job, ok := c.snap(s, h, measuring, busy0, blocks0)
	if !ok {
		return
	}
	if c.flushed || ckptSyncWrites {
		c.persist(job)
		return
	}
	if c.jobs == nil {
		c.jobs = make(chan ckptJob, 1)
		c.done = make(chan struct{})
		go func() {
			for j := range c.jobs {
				c.persist(j)
			}
			close(c.done)
		}()
	}
	select {
	case c.jobs <- job:
	default:
		// Writer still persisting the previous cut; drop this one.
	}
}

// flush drains the background writer and retires it: when flush
// returns, every accepted asynchronous write has landed (or been
// abandoned) and no write can race a subsequent synchronous cut or
// file removal. Later writes fall back to the synchronous path.
// Idempotent and nil-safe.
func (c *pointCkpt) flush() {
	if c == nil || c.flushed {
		return
	}
	c.flushed = true
	if c.jobs != nil {
		close(c.jobs)
		<-c.done
		c.jobs = nil
	}
}

// load restores the point's newest valid checkpoint into s and returns
// its metadata. Every failure mode — no file, torn metadata, a key from
// different options, a corrupt or mismatched envelope — returns ok
// false and the point recomputes from cycle zero, exactly the journal's
// degradation contract. Nil-safe.
func (c *pointCkpt) load(s *sim.System) (pointCkptMeta, bool) {
	var meta pointCkptMeta
	if c == nil {
		return meta, false
	}
	b, err := os.ReadFile(c.path)
	if err != nil {
		return meta, false
	}
	nl := bytes.IndexByte(b, '\n')
	if nl < 0 {
		return meta, false
	}
	if json.Unmarshal(b[:nl], &meta) != nil ||
		meta.C != meta.crc() || meta.Key != c.key || meta.Cycle <= 0 {
		return pointCkptMeta{}, false
	}
	ck, err := sim.DecodeCheckpoint(s.Cfg, b[nl+1:])
	if err != nil || ck.Cycle() != meta.Cycle {
		return pointCkptMeta{}, false
	}
	s.Restore(ck)
	statCkptRestores.Add(1)
	return meta, true
}

// remove deletes the checkpoint file: the point completed, and its
// result now lives in the journal (and the figure cache). Drains the
// background writer first so a pending cut cannot recreate the file
// after the removal. Nil-safe.
func (c *pointCkpt) remove() {
	if c != nil {
		c.flush()
		os.Remove(c.path)
	}
}
