package experiments

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// corruptions is the shared mutation table: every way a cache entry or
// journal on disk can rot — truncation, garbage, bit flips at every
// position — must read back as a miss (recompute) or a clean partial
// resume, never as wrong rows.
func corruptions(pristine []byte) map[string][]byte {
	muts := map[string][]byte{
		"empty":           {},
		"truncated-half":  pristine[:len(pristine)/2],
		"truncated-tail":  pristine[:len(pristine)-3],
		"garbage":         []byte("!!not json at all\x00\xff"),
		"garbage-prefix":  append([]byte("xx"), pristine...),
		"doubled":         append(append([]byte{}, pristine...), pristine...),
		"wrong-but-valid": []byte(`{"Schema":"chopim-results-v1","Key":"0000","Sum":"00","Rows":[1]}`),
	}
	// Flip one bit at a spread of byte positions (every position for
	// short payloads).
	stride := len(pristine)/64 + 1
	for pos := 0; pos < len(pristine); pos += stride {
		b := append([]byte{}, pristine...)
		b[pos] ^= 0x40
		muts[fmt.Sprintf("bitflip@%d", pos)] = b
	}
	return muts
}

// TestCacheCorruptionRecomputesIdentically writes a cache entry, then
// mutilates the on-disk bytes every way in the table and checks each
// read: the rows handed back are always byte-identical to a clean
// computation, and a detected miss rewrites the entry to exactly its
// pristine bytes.
func TestCacheCorruptionRecomputesIdentically(t *testing.T) {
	dir := t.TempDir()
	opt := Options{CacheDir: dir}
	pristineRows := []int{3, 1, 4, 1, 5, 9, 2, 6}
	var genCalls int
	gen := func(Options) ([]int, error) {
		genCalls++
		return append([]int{}, pristineRows...), nil
	}
	first, err := figCached(opt, "corrfig", gen)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, pristineRows) || genCalls != 1 {
		t.Fatalf("seed run: rows=%v calls=%d", first, genCalls)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "corrfig-*.json"))
	if len(files) != 1 {
		t.Fatalf("cache files = %v, want one", files)
	}
	path := files[0]
	pristineBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Sanity: an untouched entry replays without the generator.
	calls0 := genCalls
	if v, err := figCached(opt, "corrfig", gen); err != nil || !reflect.DeepEqual(v, pristineRows) || genCalls != calls0 {
		t.Fatalf("clean hit: rows=%v err=%v calls=%d (want %d)", v, err, genCalls, calls0)
	}

	for name, mut := range corruptions(pristineBytes) {
		t.Run(name, func(t *testing.T) {
			if err := os.WriteFile(path, mut, 0o644); err != nil {
				t.Fatal(err)
			}
			v, err := figCached(opt, "corrfig", gen)
			if err != nil {
				t.Fatalf("corrupt cache surfaced an error: %v", err)
			}
			if !reflect.DeepEqual(v, pristineRows) {
				t.Fatalf("rows after corruption = %v, want %v", v, pristineRows)
			}
			// A detected miss recomputes and rewrites the entry; the
			// rewrite must be byte-identical to the pristine encoding.
			got, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, pristineBytes) {
				t.Errorf("rewritten entry differs from pristine encoding:\n got:  %q\n want: %q", got, pristineBytes)
			}
		})
	}
}

// TestJournalCorruptionResumesCleanly seeds a complete journal, then for
// every mutation reruns the sweep under -resume: whatever survives the
// checksummed replay is reused, the rest recomputes, and the final
// results are always identical to a clean run.
func TestJournalCorruptionResumesCleanly(t *testing.T) {
	dir := t.TempDir()
	job := func(i int) (int, error) { return i*3 + 1, nil }
	want := []int{1, 4, 7, 10, 13, 16}
	mkOpt := func() Options {
		opt := Options{JournalDir: dir, Resume: true}
		opt.journal = newJournalCtx(opt, "jfig", "feedfacefeedfacefeedface")
		return opt
	}
	if v, err := sharded(mkOpt(), 6, job); err != nil || !reflect.DeepEqual(v, want) {
		t.Fatalf("seed sweep: %v %v", v, err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "jfig-*.journal"))
	if len(files) != 1 {
		t.Fatalf("journal files = %v, want one", files)
	}
	path := files[0]
	pristineBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for name, mut := range corruptions(pristineBytes) {
		t.Run(name, func(t *testing.T) {
			if err := os.WriteFile(path, mut, 0o644); err != nil {
				t.Fatal(err)
			}
			v, err := sharded(mkOpt(), 6, job)
			if err != nil {
				t.Fatalf("resume over corrupt journal errored: %v", err)
			}
			if !reflect.DeepEqual(v, want) {
				t.Fatalf("results after corruption = %v, want %v", v, want)
			}
		})
	}

	// A journal bound to a different sweep width must be discarded
	// outright, not partially replayed.
	if err := os.WriteFile(path, pristineBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	if v, err := sharded(mkOpt(), 4, func(i int) (int, error) { return i, nil }); err != nil ||
		!reflect.DeepEqual(v, []int{0, 1, 2, 3}) {
		t.Fatalf("width-changed sweep: %v %v", v, err)
	}
}
