package sim

import (
	"testing"

	"chopim/internal/apps"
	"chopim/internal/ndart"
)

// TestTickLoopAllocFree pins the allocation-free steady-state contract
// of the tick loop: once a mixed host+NDA system is warmed (pools sized,
// caches filled, write drains established), advancing the clock performs
// zero heap allocations. Every hot-path allocation — controller request
// nodes, LLC MSHRs and their fill callbacks, core completion callbacks,
// the NDA write buffer — comes from a pool or a preallocated ring.
// CI fails on any regression here; the companion BenchmarkMixedHostNDA
// reports the same property as allocs/op.
func TestTickLoopAllocFree(t *testing.T) {
	s, err := New(Default(1))
	if err != nil {
		t.Fatal(err)
	}
	// COPY exercises both the NDA read and write-buffer paths; the
	// operand is sized so one launch outlives warm-up plus measurement.
	app, err := apps.NewMicroPlaced(s.RT, "copy", (4<<20)/4, ndart.Private)
	if err != nil {
		t.Fatal(err)
	}
	h, err := app.Iterate()
	if err != nil {
		t.Fatal(err)
	}
	s.Run(60_000)
	if h.Done() {
		t.Fatal("NDA op finished during warm-up; enlarge the operand")
	}
	allocs := testing.AllocsPerRun(5, func() { s.Run(5_000) })
	if allocs != 0 {
		t.Fatalf("steady-state tick loop allocated %.1f objects per 5k-cycle window, want 0", allocs)
	}
	if h.Done() {
		t.Fatal("NDA op finished during measurement; enlarge the operand")
	}
}
