// On-disk codec for ControllerState. Queue entries serialize as the
// same durable identities the in-memory snapshot records — (write,
// addr, tag) plus timing scalars — so a decoded state reattaches
// completion closures through the identical resolve path.
package mc

import (
	"encoding/json"

	"chopim/internal/dram"
	"chopim/internal/stats"
)

type reqWire struct {
	Addr    uint64
	DAddr   dram.Addr
	Write   bool
	Arrive  int64
	Seq     int64
	Tag     uint64
	HasDone bool
}

type controllerWire struct {
	RQ, WQ   []reqWire
	Overflow []reqWire

	Drain       bool
	SeqGen      int64
	Ver, QVer   uint64
	IssuedRank  int
	IssuedIsCol bool
	Cross       bool

	IdleHists []stats.IdleHist

	ReadsIssued, WritesIssued int64
	ActsIssued, PresIssued    int64
	ReadLatencySum            int64
	Drains, Refreshes         int64
	NextRefresh               int64
}

func reqsToWire(reqs []reqState) []reqWire {
	out := make([]reqWire, len(reqs))
	for i, r := range reqs {
		out[i] = reqWire{
			Addr: r.addr, DAddr: r.daddr, Write: r.write,
			Arrive: r.arrive, Seq: r.seq, Tag: r.tag, HasDone: r.hasDone,
		}
	}
	return out
}

func reqsFromWire(ws []reqWire) []reqState {
	out := make([]reqState, len(ws))
	for i, w := range ws {
		out[i] = reqState{
			addr: w.Addr, daddr: w.DAddr, write: w.Write,
			arrive: w.Arrive, seq: w.Seq, tag: w.Tag, hasDone: w.HasDone,
		}
	}
	return out
}

// MarshalJSON encodes the snapshot for the durable checkpoint file.
func (st *ControllerState) MarshalJSON() ([]byte, error) {
	return json.Marshal(controllerWire{
		RQ: reqsToWire(st.rq), WQ: reqsToWire(st.wq), Overflow: reqsToWire(st.overflow),
		Drain: st.drain, SeqGen: st.seqGen, Ver: st.ver, QVer: st.qver,
		IssuedRank: st.issuedRank, IssuedIsCol: st.issuedIsCol, Cross: st.cross,
		IdleHists:   st.idleHists,
		ReadsIssued: st.readsIssued, WritesIssued: st.writesIssued,
		ActsIssued: st.actsIssued, PresIssued: st.presIssued,
		ReadLatencySum: st.readLatencySum,
		Drains:         st.drains, Refreshes: st.refreshes, NextRefresh: st.nextRefresh,
	})
}

// UnmarshalJSON rebuilds the snapshot written by MarshalJSON.
func (st *ControllerState) UnmarshalJSON(b []byte) error {
	var w controllerWire
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	st.rq, st.wq, st.overflow = reqsFromWire(w.RQ), reqsFromWire(w.WQ), reqsFromWire(w.Overflow)
	st.drain, st.seqGen, st.ver, st.qver = w.Drain, w.SeqGen, w.Ver, w.QVer
	st.issuedRank, st.issuedIsCol, st.cross = w.IssuedRank, w.IssuedIsCol, w.Cross
	st.idleHists = w.IdleHists
	st.readsIssued, st.writesIssued = w.ReadsIssued, w.WritesIssued
	st.actsIssued, st.presIssued = w.ActsIssued, w.PresIssued
	st.readLatencySum = w.ReadLatencySum
	st.drains, st.refreshes, st.nextRefresh = w.Drains, w.Refreshes, w.NextRefresh
	return nil
}
