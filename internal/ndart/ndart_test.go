package ndart

import (
	"testing"

	"chopim/internal/addrmap"
	"chopim/internal/dram"
	"chopim/internal/mc"
	"chopim/internal/nda"
	"chopim/internal/osmem"
)

// harness bundles a runtime over a live memory system with a manual clock.
type harness struct {
	rt  *Runtime
	mem *dram.Mem
	mcs []*mc.Controller
	eng *nda.Engine
	now int64
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	g := dram.DefaultGeometry()
	mem := dram.New(g, dram.DDR42400())
	mapper := addrmap.NewPartitioned(addrmap.NewSkylakeLike(g), 1)
	os, err := osmem.NewOS(mapper)
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{mem: mem}
	for ch := 0; ch < g.Channels; ch++ {
		h.mcs = append(h.mcs, mc.NewController(mc.DefaultConfig(), mem, mapper, ch))
	}
	h.eng = nda.NewEngine(nda.DefaultConfig(), mem, h.mcs)
	h.rt = New(os, h.eng, h.mcs, func() int64 { return h.now })
	return h
}

func (h *harness) run(t *testing.T, hd *Handle, max int64) {
	t.Helper()
	for i := int64(0); i < max; i++ {
		for _, c := range h.mcs {
			c.Tick(h.now)
		}
		h.eng.Tick(h.now)
		h.rt.Tick(h.now)
		h.now++
		if hd.Done() && !h.rt.CopierBusy() {
			return
		}
	}
	t.Fatalf("handle not done after %d cycles", max)
}

func TestVectorAllocationAndShares(t *testing.T) {
	h := newHarness(t)
	v, err := h.rt.NewVector(1<<20, Shared) // 4 MiB: spans all ranks
	if err != nil {
		t.Fatal(err)
	}
	g := dram.DefaultGeometry()
	total := 0
	for ch := 0; ch < g.Channels; ch++ {
		for r := 0; r < g.Ranks; r++ {
			n := len(v.shareBlocks(ch, r))
			if n == 0 {
				t.Errorf("rank (%d,%d) holds no share of a 4 MiB vector", ch, r)
			}
			total += n
		}
	}
	if want := 1 << 20 * 4 / dram.BlockBytes; total != want {
		t.Errorf("share blocks total %d, want %d", total, want)
	}
}

func TestPrivateAllocationGivesFullShares(t *testing.T) {
	h := newHarness(t)
	const n = 64 * 1024 // 256 KiB per NDA
	v, err := h.rt.NewVector(n, Private)
	if err != nil {
		t.Fatal(err)
	}
	g := dram.DefaultGeometry()
	want := n * 4 / dram.BlockBytes
	for ch := 0; ch < g.Channels; ch++ {
		for r := 0; r < g.Ranks; r++ {
			got := len(v.shareBlocks(ch, r))
			if got < want/2 || got > want*2 {
				t.Errorf("private share on (%d,%d) = %d blocks, want ~%d", ch, r, got, want)
			}
		}
	}
}

func TestOperandsShareColor(t *testing.T) {
	h := newHarness(t)
	a, _ := h.rt.NewVector(1<<18, Shared)
	b, _ := h.rt.NewVector(1<<18, Shared)
	if a.Color() != b.Color() {
		t.Errorf("runtime colors differ: %#x vs %#x", uint64(a.Color()), uint64(b.Color()))
	}
}

func TestSpecValidation(t *testing.T) {
	h := newHarness(t)
	x, _ := h.rt.NewVector(1024, Shared)
	y, _ := h.rt.NewVector(2048, Shared)
	if _, err := h.rt.Dot(x, y); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := h.rt.Launch(Spec{Kind: nda.OpDOT, Reads: []*Vector{x}}); err == nil {
		t.Error("wrong operand count accepted")
	}
	if _, err := h.rt.Launch(Spec{Kind: nda.OpCOPY, Reads: []*Vector{x}}); err == nil {
		t.Error("missing result operand accepted")
	}
}

func TestCopyEndToEnd(t *testing.T) {
	h := newHarness(t)
	const n = 128 * 1024
	x, _ := h.rt.NewVector(n, Shared)
	y, _ := h.rt.NewVector(n, Shared)
	hd, err := h.rt.Copy(y, x)
	if err != nil {
		t.Fatal(err)
	}
	h.run(t, hd, 10_000_000)
	if h.mem.Counts().NDARD != int64(n*4/dram.BlockBytes) {
		t.Errorf("NDA reads = %d, want %d", h.mem.Counts().NDARD, n*4/dram.BlockBytes)
	}
}

func TestGranularityLaunchCount(t *testing.T) {
	h := newHarness(t)
	h.rt.MaxBlocksPerInstr = 64
	const n = 256 * 1024 // 1 MiB = 16384 blocks
	x, _ := h.rt.NewVector(n, Shared)
	hd, err := h.rt.Nrm2(x)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(16384 / 64); h.rt.Launches != want {
		t.Errorf("launches = %d, want %d", h.rt.Launches, want)
	}
	h.run(t, hd, 10_000_000)
}

func TestMisalignedOperandsTriggerCopy(t *testing.T) {
	h := newHarness(t)
	x, err := h.rt.NewVector(64*1024, Shared)
	if err != nil {
		t.Fatal(err)
	}
	// Force a different color for y by allocating uncolored until the
	// color differs.
	var y *Vector
	for i := 0; i < 64; i++ {
		y, err = h.rt.NewVectorUncolored(64 * 1024)
		if err != nil {
			t.Fatal(err)
		}
		if y.Color() != x.Color() {
			break
		}
	}
	if y.Color() == x.Color() {
		t.Skip("could not obtain a mismatched color")
	}
	hd, err := h.rt.Dot(x, y)
	if err != nil {
		t.Fatal(err)
	}
	h.run(t, hd, 20_000_000)
	if h.rt.Copies == 0 {
		t.Error("misaligned operand did not trigger a host copy")
	}
	if h.mem.Counts().RD == 0 {
		t.Error("host copy generated no host reads")
	}
}

func TestHostCopyMovesAllBlocks(t *testing.T) {
	h := newHarness(t)
	const n = 16 * 1024
	src, _ := h.rt.NewVector(n, Shared)
	dst, _ := h.rt.NewVector(n, Shared)
	doneCalled := false
	h.rt.HostCopy(dst, src, func() { doneCalled = true })
	hd := &Handle{} // empty: rely on copier-busy condition
	h.run(t, hd, 10_000_000)
	if !doneCalled {
		t.Fatal("HostCopy done callback never fired")
	}
	if want := int64(n * 4 / dram.BlockBytes); h.mem.Counts().RD != want {
		t.Errorf("host reads = %d, want %d", h.mem.Counts().RD, want)
	}
}

func TestRowViewCoversRow(t *testing.T) {
	h := newHarness(t)
	m, err := h.rt.NewMatrix(128, 512, Shared)
	if err != nil {
		t.Fatal(err)
	}
	v := m.RowView(3)
	if v.Len() != 512 {
		t.Errorf("row view length %d", v.Len())
	}
	wantBlocks := 512 * 4 / dram.BlockBytes
	total := 0
	g := dram.DefaultGeometry()
	for ch := 0; ch < g.Channels; ch++ {
		for r := 0; r < g.Ranks; r++ {
			total += len(v.shareBlocks(ch, r))
		}
	}
	if total != wantBlocks {
		t.Errorf("row view covers %d blocks, want %d", total, wantBlocks)
	}
	if v.Color() != m.Color() {
		t.Error("row view color differs from parent")
	}
}

func TestRowViewBounds(t *testing.T) {
	h := newHarness(t)
	m, _ := h.rt.NewMatrix(4, 64, Shared)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range RowView did not panic")
		}
	}()
	m.RowView(4)
}

func TestJoinHandle(t *testing.T) {
	a := &Handle{pending: 1}
	b := &Handle{}
	j := Join(a, b)
	if j.Done() {
		t.Error("join done while child pending")
	}
	a.complete(5)
	if !j.Done() {
		t.Error("join not done after children complete")
	}
}

// TestGuardOpsPassOnLegalTraffic arms NDA-side bounds protection on a
// normal op: every generated access must pass its own launch bounds.
func TestGuardOpsPassOnLegalTraffic(t *testing.T) {
	h := newHarness(t)
	h.rt.GuardOps = true
	x, _ := h.rt.NewVector(64*1024, Shared)
	y, _ := h.rt.NewVector(64*1024, Shared)
	hd, err := h.rt.Copy(y, x)
	if err != nil {
		t.Fatal(err)
	}
	h.run(t, hd, 10_000_000) // panics on any protection fault
}

// TestDecodeCacheSharedAcrossRuntimes exercises the process-global
// decode cache: two runtimes over identical (but distinct) memory
// systems perform the same allocation sequence, so their vectors cover
// the same physical span under the same mapping and must share one
// immutable decoded layout instead of each re-decoding it.
func TestDecodeCacheSharedAcrossRuntimes(t *testing.T) {
	h1 := newHarness(t)
	h2 := newHarness(t)
	v1, err := h1.rt.NewVector(64*1024, Shared)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := h2.rt.NewVector(64*1024, Shared)
	if err != nil {
		t.Fatal(err)
	}
	if v1.base != v2.base || v1.bytes != v2.bytes {
		t.Fatalf("allocation sequences diverged: (%#x,%d) vs (%#x,%d)",
			v1.base, v1.bytes, v2.base, v2.bytes)
	}
	if len(v1.addrs) == 0 || &v1.addrs[0] != &v2.addrs[0] {
		t.Error("identical spans decoded twice: layouts not shared across runtimes")
	}
}

// TestDecodeCacheDistinguishesMappings pins the fingerprint key: the
// same physical span under a different bank reservation decodes
// differently and must not share a layout.
func TestDecodeCacheDistinguishesMappings(t *testing.T) {
	a := addrmap.NewPartitioned(addrmap.NewSkylakeLike(dram.DefaultGeometry()), 1)
	b := addrmap.NewPartitioned(addrmap.NewSkylakeLike(dram.DefaultGeometry()), 2)
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("distinct reservations share a fingerprint")
	}
	if a.Fingerprint() != addrmap.NewPartitioned(addrmap.NewSkylakeLike(dram.DefaultGeometry()), 1).Fingerprint() {
		t.Fatal("equal mappings have unequal fingerprints")
	}
}
