package ndart

import (
	"fmt"

	"chopim/internal/dram"
	"chopim/internal/nda"
)

// Spec describes one NDA API call before splitting into per-rank
// primitive operations.
type Spec struct {
	Kind  nda.OpKind
	Reads []*Vector
	Write *Vector // nil for reductions
}

// validate checks operand counts, lengths, and bounds.
func (s Spec) validate() error {
	if len(s.Reads) != s.Kind.ReadOperands() {
		return fmt.Errorf("ndart: %v expects %d read operands, got %d", s.Kind, s.Kind.ReadOperands(), len(s.Reads))
	}
	if s.Kind.WritesResult() != (s.Write != nil) {
		return fmt.Errorf("ndart: %v result operand mismatch", s.Kind)
	}
	// GEMV's single streamed operand is the matrix; the small x vector
	// is scratchpad-resident and not length-matched.
	if s.Kind == nda.OpGEMV {
		return nil
	}
	n := s.Reads[0].Len()
	for _, v := range s.Reads[1:] {
		if v.Len() != n {
			return fmt.Errorf("ndart: operand length mismatch %d vs %d", v.Len(), n)
		}
	}
	if s.Write != nil && s.Write.Len() != n && s.Write.placement != Private {
		return fmt.Errorf("ndart: result length %d != operand length %d", s.Write.Len(), n)
	}
	return nil
}

// Blocking and asynchronous single-op API (Table I). Each returns a
// Handle; the simulator's Await drives it to completion. Scalars (alpha,
// beta...) do not affect traffic and are omitted.

// Axpy computes y += a*x.
func (rt *Runtime) Axpy(y, x *Vector) (*Handle, error) {
	return rt.Launch(Spec{Kind: nda.OpAXPY, Reads: []*Vector{x, y}, Write: y})
}

// Axpby computes z = a*x + b*y.
func (rt *Runtime) Axpby(z, x, y *Vector) (*Handle, error) {
	return rt.Launch(Spec{Kind: nda.OpAXPBY, Reads: []*Vector{x, y}, Write: z})
}

// Axpbypcz computes w = a*x + b*y + c*z.
func (rt *Runtime) Axpbypcz(w, x, y, z *Vector) (*Handle, error) {
	return rt.Launch(Spec{Kind: nda.OpAXPBYPCZ, Reads: []*Vector{x, y, z}, Write: w})
}

// Copy computes y = x.
func (rt *Runtime) Copy(y, x *Vector) (*Handle, error) {
	return rt.Launch(Spec{Kind: nda.OpCOPY, Reads: []*Vector{x}, Write: y})
}

// Dot computes x . y into per-PE scratchpads (host reduces).
func (rt *Runtime) Dot(x, y *Vector) (*Handle, error) {
	return rt.Launch(Spec{Kind: nda.OpDOT, Reads: []*Vector{x, y}})
}

// Nrm2 computes sqrt(x . x) into per-PE scratchpads.
func (rt *Runtime) Nrm2(x *Vector) (*Handle, error) {
	return rt.Launch(Spec{Kind: nda.OpNRM2, Reads: []*Vector{x}})
}

// Scal computes x = a*x.
func (rt *Runtime) Scal(x *Vector) (*Handle, error) {
	return rt.Launch(Spec{Kind: nda.OpSCAL, Reads: []*Vector{x}, Write: x})
}

// Xmy computes z = x (elementwise*) y.
func (rt *Runtime) Xmy(z, x, y *Vector) (*Handle, error) {
	return rt.Launch(Spec{Kind: nda.OpXMY, Reads: []*Vector{x, y}, Write: z})
}

// Gemv computes y = A*x, streaming A from memory with x resident in the
// PE scratchpads; y writeback is negligible and not modeled.
func (rt *Runtime) Gemv(y *Vector, a *Matrix, x *Vector) (*Handle, error) {
	return rt.Launch(Spec{Kind: nda.OpGEMV, Reads: []*Vector{&a.Vector}})
}

// Spec constructors for use with MacroFor.

// AxpySpec builds the y += a*x spec.
func AxpySpec(y, x *Vector) Spec {
	return Spec{Kind: nda.OpAXPY, Reads: []*Vector{x, y}, Write: y}
}

// CopySpec builds the y = x spec.
func CopySpec(y, x *Vector) Spec {
	return Spec{Kind: nda.OpCOPY, Reads: []*Vector{x}, Write: y}
}

// DotSpec builds the x . y spec.
func DotSpec(x, y *Vector) Spec {
	return Spec{Kind: nda.OpDOT, Reads: []*Vector{x, y}}
}

// Nrm2Spec builds the ||x|| spec.
func Nrm2Spec(x *Vector) Spec {
	return Spec{Kind: nda.OpNRM2, Reads: []*Vector{x}}
}

// GemvSpec builds the y = A*x spec.
func GemvSpec(a *Matrix) Spec {
	return Spec{Kind: nda.OpGEMV, Reads: []*Vector{&a.Vector}}
}

// AxpbySpec builds the z = a*x + b*y spec.
func AxpbySpec(z, x, y *Vector) Spec {
	return Spec{Kind: nda.OpAXPBY, Reads: []*Vector{x, y}, Write: z}
}

// AxpbypczSpec builds the w = a*x + b*y + c*z spec.
func AxpbypczSpec(w, x, y, z *Vector) Spec {
	return Spec{Kind: nda.OpAXPBYPCZ, Reads: []*Vector{x, y, z}, Write: w}
}

// ScalSpec builds the x = a*x spec.
func ScalSpec(x *Vector) Spec {
	return Spec{Kind: nda.OpSCAL, Reads: []*Vector{x}, Write: x}
}

// XmySpec builds the z = x .* y spec.
func XmySpec(z, x, y *Vector) Spec {
	return Spec{Kind: nda.OpXMY, Reads: []*Vector{x, y}, Write: z}
}

// Launch splits one API call into per-rank primitive NDA instructions of
// at most MaxBlocksPerInstr blocks per operand, modeling one
// control-register launch packet per instruction (Section V). Operands
// whose colors mismatch are first copied into aligned scratch space by
// the host (the data-copy cost Chopim's layout avoids).
func (rt *Runtime) Launch(spec Spec) (*Handle, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	h := &Handle{}
	spec, copies := rt.alignOperands(spec)
	if copies != nil {
		// Defer the launch until host-mediated copies complete.
		h.pending++ // hold the handle open
		copies.onDone = func() {
			rt.launchAligned(spec, h)
			h.complete(rt.now())
		}
		return h, nil
	}
	rt.launchAligned(spec, h)
	return h, nil
}

// MacroFor is the asynchronous macro operation of Section V
// (parallel_for): count iterations built by build are launched with a
// single control packet per rank, overlapping iterations and hiding
// per-launch load imbalance.
func (rt *Runtime) MacroFor(count int, build func(i int) Spec) (*Handle, error) {
	h := &Handle{}
	type rankWork struct{ factories []func() *nda.Op }
	g := rt.geom
	work := make([][]rankWork, g.Channels)
	for ch := range work {
		work[ch] = make([]rankWork, g.Ranks)
	}
	var ctrl dram.Addr
	ctrlOK := false
	for i := 0; i < count; i++ {
		spec := build(i)
		if err := spec.validate(); err != nil {
			return nil, err
		}
		if c, ok := rt.alignedOrErr(spec); !ok {
			return nil, c
		}
		for ch := 0; ch < g.Channels; ch++ {
			for r := 0; r < g.Ranks; r++ {
				for _, f := range rt.rankOpFactories(spec, ch, r, h) {
					work[ch][r].factories = append(work[ch][r].factories, f)
				}
			}
		}
		if !ctrlOK {
			if a, ok := spec.Reads[0].controlAddr(0, 0); ok {
				ctrl, ctrlOK = a, true
			}
		}
	}
	for ch := 0; ch < g.Channels; ch++ {
		for r := 0; r < g.Ranks; r++ {
			fs := work[ch][r].factories
			if len(fs) == 0 {
				continue
			}
			rt.sendLaunch(ch, r, ctrl, func() {
				for _, f := range fs {
					rt.eng.Launch(ch, r, f)
				}
			})
		}
	}
	return h, nil
}

// alignedOrErr returns an error if operands are misaligned (MacroFor does
// not auto-copy).
func (rt *Runtime) alignedOrErr(spec Spec) (error, bool) {
	c0 := spec.Reads[0].color
	for _, v := range spec.Reads[1:] {
		if v.color != c0 {
			return fmt.Errorf("ndart: macro op operands misaligned (colors %#x vs %#x)", c0, v.color), false
		}
	}
	if spec.Write != nil && spec.Write.color != c0 {
		return fmt.Errorf("ndart: macro op result misaligned"), false
	}
	return nil, true
}

// alignOperands checks operand colors; mismatched read operands are
// copied into runtime-colored scratch vectors (counted in rt.Copies).
// It returns the possibly-rewritten spec and a pending copy job set.
func (rt *Runtime) alignOperands(spec Spec) (Spec, *copyGroup) {
	c0 := spec.Reads[0].color
	if spec.Write != nil && spec.Write.color != c0 {
		// Result misalignment also forces a copy-out; model the
		// dominant cost: allocate aligned scratch and write there.
		if w, err := rt.NewVector(spec.Write.Len(), spec.Write.placement); err == nil {
			spec.Write = w
		}
	}
	var group *copyGroup
	for i, v := range spec.Reads {
		if v.color == c0 {
			continue
		}
		scratch, err := rt.NewVector(v.Len(), v.placement)
		if err != nil {
			continue // out of aligned space: run misaligned (tests only)
		}
		if group == nil {
			group = &copyGroup{}
		}
		rt.Copies++
		group.pending++
		spec.Reads[i] = scratch
		rt.copier.add(&copyJob{
			src: v, dst: scratch,
			done: func() { group.finish() },
		})
	}
	return spec, group
}

// launchAligned fans an aligned spec out to every rank.
func (rt *Runtime) launchAligned(spec Spec, h *Handle) {
	g := rt.geom
	for ch := 0; ch < g.Channels; ch++ {
		for r := 0; r < g.Ranks; r++ {
			factories := rt.rankOpFactories(spec, ch, r, h)
			ctrl, ok := spec.Reads[0].controlAddr(ch, r)
			for _, f := range factories {
				f := f
				if !ok {
					rt.eng.Launch(ch, r, f)
					continue
				}
				rt.sendLaunch(ch, r, ctrl, func() { rt.eng.Launch(ch, r, f) })
			}
		}
	}
}

// rankOpFactories splits the rank's share into MaxBlocksPerInstr chunks,
// returning one op factory per NDA instruction. The factories increment
// h.pending immediately.
func (rt *Runtime) rankOpFactories(spec Spec, ch, r int, h *Handle) []func() *nda.Op {
	share := len(spec.Reads[0].shareBlocks(ch, r))
	if share == 0 {
		return nil
	}
	chunk := rt.MaxBlocksPerInstr
	if chunk <= 0 {
		chunk = share
	}
	var out []func() *nda.Op
	for from := 0; from < share; from += chunk {
		from := from
		n := chunk
		if from+n > share {
			n = share - from
		}
		h.pending++
		// Exact read count across operands (operand shares can differ
		// in the misaligned fallback), enabling side-effect-free
		// PeekRead during fast-forward.
		total := 0
		for _, v := range spec.Reads {
			c := len(v.shareBlocks(ch, r)) - from
			if c > n {
				c = n
			}
			if c > 0 {
				total += c
			}
		}
		out = append(out, func() *nda.Op {
			var reads []nda.Iter
			for _, v := range spec.Reads {
				reads = append(reads, v.iterFor(ch, r, from, n))
			}
			var writes nda.Iter
			if spec.Write != nil {
				writes = spec.Write.iterFor(ch, r, from, n)
			}
			op := nda.NewOp(spec.Kind, reads, writes, func(cycle int64) { h.complete(cycle) })
			op.TotalReads = total
			if rt.GuardOps {
				op.Guard = rt.buildGuard(spec, ch, r, from, n)
			}
			return op
		})
	}
	return out
}

// buildGuard returns the NDA-side bounds check for one instruction: the
// set of DRAM blocks the launch packet's operand descriptors cover. In
// hardware this is a base/bound comparison per operand; the simulator
// enumerates the chunk's blocks exactly.
func (rt *Runtime) buildGuard(spec Spec, ch, r, from, n int) func(dram.Addr) bool {
	allowed := make(map[uint64]bool, n*(len(spec.Reads)+1))
	pack := func(a dram.Addr) uint64 {
		g := rt.geom
		k := uint64(a.BankGroup)
		k = k*uint64(g.BanksPerGroup) + uint64(a.Bank)
		k = k*uint64(g.Rows) + uint64(a.Row)
		k = k*uint64(g.Cols) + uint64(a.Col)
		return k
	}
	add := func(v *Vector) {
		it := v.iterFor(ch, r, from, n)
		for {
			a, ok := it()
			if !ok {
				return
			}
			allowed[pack(a)] = true
		}
	}
	for _, v := range spec.Reads {
		add(v)
	}
	if spec.Write != nil {
		add(spec.Write)
	}
	return func(a dram.Addr) bool { return allowed[pack(a)] }
}

// sendLaunch models the control-register write for one NDA instruction.
func (rt *Runtime) sendLaunch(ch, r int, ctrl dram.Addr, onIssued func()) {
	rt.Launches++
	if !rt.ModelLaunches {
		onIssued()
		return
	}
	ctrl.Channel = ch
	ctrl.Rank = r
	rt.mcs[ch].EnqueueControl(ctrl, rt.now(), func(int64) { onIssued() })
}

// copyGroup joins several copy jobs before a deferred launch.
type copyGroup struct {
	pending int
	onDone  func()
}

func (g *copyGroup) finish() {
	g.pending--
	if g.pending == 0 && g.onDone != nil {
		g.onDone()
	}
}
