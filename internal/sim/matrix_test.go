package sim

import (
	"fmt"
	"testing"

	"chopim/internal/nda"
	"chopim/internal/ndart"
)

// TestConfigurationMatrix exercises every policy x partitioning x
// geometry combination end to end with concurrent host and NDA traffic,
// with FSM replica verification armed. Any illegal DRAM command, replica
// divergence, or deadlock fails the test.
func TestConfigurationMatrix(t *testing.T) {
	for _, ranks := range []int{2, 4} {
		for _, part := range []bool{false, true} {
			for _, pol := range []nda.Policy{nda.IssueIfIdle, nda.Stochastic, nda.NextRank} {
				name := fmt.Sprintf("ranks=%d/part=%v/%v", ranks, part, pol)
				t.Run(name, func(t *testing.T) {
					cfg := Default(8) // light mix keeps runtime short
					cfg.Geom.Ranks = ranks
					cfg.Partitioned = part
					cfg.NDA.Policy = pol
					cfg.NDA.StochasticProb = 0.25
					cfg.NDA.VerifyFSM = true
					s, err := New(cfg)
					if err != nil {
						t.Fatal(err)
					}
					x, err := s.RT.NewVector(64*1024, ndart.Private)
					if err != nil {
						t.Fatal(err)
					}
					y, err := s.RT.NewVector(64*1024, ndart.Private)
					if err != nil {
						t.Fatal(err)
					}
					h, err := s.RT.Copy(y, x)
					if err != nil {
						t.Fatal(err)
					}
					if err := s.Await(20_000_000, h); err != nil {
						t.Fatal(err)
					}
					if s.NDABlocks() == 0 {
						t.Error("no NDA progress")
					}
					if s.Mem.Counts().RD == 0 {
						t.Error("no host progress")
					}
				})
			}
		}
	}
}

// TestDeterminism: identical configurations produce identical simulation
// outcomes (the replicated-FSM argument requires full determinism).
func TestDeterminism(t *testing.T) {
	run := func() (int64, int64, float64) {
		cfg := Default(7)
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		x, _ := s.RT.NewVector(128*1024, ndart.Shared)
		y, _ := s.RT.NewVector(128*1024, ndart.Shared)
		h, err := s.RT.Copy(y, x)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Await(20_000_000, h); err != nil {
			t.Fatal(err)
		}
		return s.Now(), s.NDABlocks(), s.HostIPC()
	}
	c1, b1, i1 := run()
	c2, b2, i2 := run()
	if c1 != c2 || b1 != b2 || i1 != i2 {
		t.Errorf("nondeterministic: (%d,%d,%f) vs (%d,%d,%f)", c1, b1, i1, c2, b2, i2)
	}
}

// TestRefreshEnabledSystemRuns arms refresh and checks the system still
// makes progress (refresh is off in the paper's configuration).
func TestRefreshEnabledSystemRuns(t *testing.T) {
	cfg := Default(8)
	cfg.Timing.REFI = 9360
	cfg.Timing.RFC = 420
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(50_000)
	if s.Mem.Counts().RD == 0 {
		t.Error("no reads with refresh enabled")
	}
}
