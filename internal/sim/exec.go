package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// domainExec is the phase-barriered work-stealing executor: a pool of
// persistent worker goroutines that, once per round, claim work items
// off a shared counter, with the calling goroutine (the coordinator)
// participating. It runs two kinds of rounds over the same pool:
//
//   - domain rounds (round): one item per channel domain, running
//     System.domainTick — the per-tick memory phase;
//   - core rounds (coreRound): one item per host core, running
//     System.coreSubTick — the core-local part of one CPU sub-cycle of
//     the sharded front-end (DESIGN.md §2.10).
//
// The round ends when every item has completed — the barrier behind
// which the serial commit phase (cross-channel commit, or the
// front-end's sub-cycle commit loop) runs.
//
// Determinism does not depend on the executor at all: domain items
// touch no shared mutable state during the memory phase (dram.Mem, the
// controllers, and the rank NDAs are all channel-sharded, and
// cross-channel completion callbacks divert into per-domain
// mailboxes), and core items touch only the core's own ROB/trace and
// private L1/L2 (shared-path accesses defer to the commit loop), so
// any assignment of items to workers produces bit-identical state. The
// work-stealing claim counter is purely a load-balancing choice; it
// also guarantees progress when workers are descheduled (an
// oversubscribed or single-CPU machine): the coordinator drains
// whatever remains itself.
//
// Every round exposes exactly nClaims claims regardless of its kind —
// claims beyond the round's real item count are no-ops that still
// count toward the barrier. The constant claim space is what keeps
// straggler claims safe now that rounds differ in size: a claim that
// lands after a new round opened is either >= nClaims (a no-op in
// every round) or a valid claim of the NEW round, and the atomic
// increment that claimed it synchronizes with the coordinator's
// release, so reading the round's plain mode/now fields after a valid
// claim is race-free. With per-mode claim bounds instead, a stale
// claim from a small round could alias a live item of a larger one.
//
// Workers spin briefly between rounds (rounds in a hot RunFast loop
// arrive microseconds apart), yield for a while, then park on a
// condition variable; the coordinator wakes sleepers at the start of a
// round. The steady-state handoff is a few atomic operations per round
// and allocates nothing.
type domainExec struct {
	s       *System
	nw      int   // total workers including the coordinator
	nClaims int32 // constant per-round claim space: max(domains, cores)
	singleP bool  // GOMAXPROCS==1 at construction: park the pool (see launch)

	seq     atomic.Uint64 // round number; bumped to release workers
	next    atomic.Int32  // item claim counter for the current round
	pending atomic.Int32  // claims not yet completed this round
	now     int64         // the round's cycle (published before next/seq)
	mode    int32         // the round's kind (published before next/seq)

	sleepers atomic.Int32
	stopped  atomic.Bool
	mu       sync.Mutex
	cond     *sync.Cond
	wg       sync.WaitGroup
}

// Round kinds (domainExec.mode).
const (
	roundDomains = int32(iota)
	roundCores
)

// Spin tuning: hot spins poll the round counter back to back; yield
// spins Gosched between polls (so an oversubscribed coordinator can
// run); past the budget the worker parks.
const (
	execHotSpins   = 256
	execYieldSpins = 4096
)

// newDomainExec starts nw-1 worker goroutines (the caller is the nw-th
// worker). Callers ensure nw >= 2.
func newDomainExec(s *System, nw int) *domainExec {
	e := &domainExec{
		s:       s,
		nw:      nw,
		nClaims: int32(max(len(s.doms), len(s.Cores))),
		singleP: runtime.GOMAXPROCS(0) < 2,
	}
	e.cond = sync.NewCond(&e.mu)
	e.wg.Add(nw - 1)
	for w := 1; w < nw; w++ {
		go e.worker()
	}
	return e
}

// round runs one memory phase: all channel domains, each exactly once,
// fanned across the pool. It returns only after every domain completed.
func (e *domainExec) round(now int64) { e.launch(roundDomains, now) }

// coreRound runs the core-local part of one CPU sub-cycle: every
// core's coreSubTick, each exactly once, fanned across the pool. It
// returns only after every core completed — the sub-cycle commit
// barrier behind which tickDue drains the deferred shared-path work in
// canonical core order.
func (e *domainExec) coreRound(cc int64) { e.launch(roundCores, cc) }

// launch opens one round and participates until its barrier resolves.
func (e *domainExec) launch(mode int32, now int64) {
	// On a single-P runtime parallel claiming cannot overlap the
	// coordinator — any cycle a worker runs is a cycle stolen from it —
	// so the pool stays parked for the executor's whole life (workers
	// park on their first loop pass and are never broadcast a round;
	// see worker) and every round runs inline, with no claim atomics at
	// all. Rounds are work-conserving, so this changes scheduling only,
	// never results; it is what keeps the executor at noise-level
	// overhead on 1-CPU machines now that core rounds open every CPU
	// sub-cycle rather than once per tick. Tests that need the full
	// claim machinery on such machines raise GOMAXPROCS before
	// constructing the system.
	if e.singleP {
		if mode == roundCores {
			for i := range e.s.Cores {
				e.s.coreSubTick(i, now)
			}
		} else {
			for d := range e.s.doms {
				e.s.domainTick(d, now)
			}
		}
		return
	}
	e.now = now
	e.mode = mode
	e.pending.Store(e.nClaims)
	e.next.Store(0) // release-publishes now/mode/pending to claimers
	e.seq.Add(1)
	if e.sleepers.Load() > 0 {
		e.mu.Lock()
		e.cond.Broadcast()
		e.mu.Unlock()
	}
	e.drain()
	// Wait for straggler workers still inside a claimed item. The
	// remaining work is at most nw-1 items, so spin tightly and yield:
	// parking here would cost more than the wait.
	for spins := 0; e.pending.Load() != 0; spins++ {
		if spins > execHotSpins {
			runtime.Gosched()
		}
	}
}

// drain claims and runs items until the current round has none left.
// The claim is a plain atomic increment: a claim that lands after a
// new round opened simply executes one of the new round's items (mode
// and now are re-read after the claim, under the synchronizes-with
// edge the claim itself creates), which is exactly what some goroutine
// had to do anyway — rounds are delimited by pending, not by who
// claims. Claims past the round's real item count burn a slot of the
// constant claim space (see the type comment) and only decrement the
// barrier.
func (e *domainExec) drain() {
	for {
		d := e.next.Add(1) - 1
		if d >= e.nClaims {
			return
		}
		if e.mode == roundCores {
			if int(d) < len(e.s.Cores) {
				e.s.coreSubTick(int(d), e.now)
			}
		} else if int(d) < len(e.s.doms) {
			e.s.domainTick(int(d), e.now)
		}
		e.pending.Add(-1)
	}
}

// worker is the persistent loop of one pool goroutine.
func (e *domainExec) worker() {
	defer e.wg.Done()
	var last uint64
	spins := 0
	for {
		cur := e.seq.Load()
		if cur == last {
			if e.stopped.Load() {
				return
			}
			spins++
			switch {
			case e.singleP:
				// Spinning on a single-P runtime only steals the
				// coordinator's quanta; park immediately. The
				// coordinator never broadcasts rounds here (see
				// launch), so the pool sleeps until stop.
				e.park(last)
				spins = 0
			case spins < execHotSpins:
				// hot poll
			case spins < execYieldSpins:
				runtime.Gosched()
			default:
				e.park(last)
				spins = 0
			}
			continue
		}
		last = cur
		spins = 0
		e.drain()
	}
}

// park blocks the worker until a broadcast (or stop). The handshake is
// deliberately loose: the coordinator reads the sleeper count without
// the mutex, so a worker that checks seq just before a round opens can
// register as a sleeper just after the coordinator saw zero and miss
// that round's broadcast entirely. That is safe ONLY because rounds
// are work-conserving — the coordinator drains every unclaimed item
// itself and the barrier is pending==0, never wait-for-workers — so a
// sleeping worker merely sits out rounds until the next broadcast
// reaches it. Any restructure that makes round completion depend on a
// specific worker waking must first tighten this handshake.
func (e *domainExec) park(last uint64) {
	e.mu.Lock()
	for e.seq.Load() == last && !e.stopped.Load() {
		e.sleepers.Add(1)
		e.cond.Wait()
		e.sleepers.Add(-1)
	}
	e.mu.Unlock()
}

// stop terminates the pool and waits for the workers to exit.
func (e *domainExec) stop() {
	e.stopped.Store(true)
	e.mu.Lock()
	e.cond.Broadcast()
	e.mu.Unlock()
	e.wg.Wait()
}
