package workload

import (
	"testing"
	"testing/quick"
)

func TestMixesMatchTableII(t *testing.T) {
	if len(Mixes) != 9 {
		t.Fatalf("got %d mixes, want 9", len(Mixes))
	}
	if len(Mixes[0]) != 8 {
		t.Errorf("mix0 has %d cores, want 8 (under-provisioned case)", len(Mixes[0]))
	}
	for i := 1; i < 9; i++ {
		if len(Mixes[i]) != 4 {
			t.Errorf("mix%d has %d cores, want 4", i, len(Mixes[i]))
		}
	}
	for i := range Mixes {
		if _, err := MixProfiles(i); err != nil {
			t.Errorf("mix%d: %v", i, err)
		}
	}
}

func TestMixProfilesRange(t *testing.T) {
	if _, err := MixProfiles(-1); err == nil {
		t.Error("negative mix accepted")
	}
	if _, err := MixProfiles(9); err == nil {
		t.Error("out-of-range mix accepted")
	}
}

func TestMixIntensityOrdering(t *testing.T) {
	// mix1 is all-High, mix8 is M:L:L:L per Table II.
	p1, _ := MixProfiles(1)
	for _, p := range p1 {
		if p.Class != High {
			t.Errorf("mix1 contains %s (class %v), want all High", p.Name, p.Class)
		}
	}
	p8, _ := MixProfiles(8)
	lows := 0
	for _, p := range p8 {
		if p.Class == Low {
			lows++
		}
	}
	if lows != 3 {
		t.Errorf("mix8 has %d Low benchmarks, want 3", lows)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	p := Profiles["mcf_r"]
	g1 := NewGenerator(p, 0, 1<<30, 42)
	g2 := NewGenerator(p, 0, 1<<30, 42)
	for i := 0; i < 1000; i++ {
		if g1.Next() != g2.Next() {
			t.Fatalf("generators diverge at instruction %d", i)
		}
	}
}

func TestGeneratorAddressesInRegion(t *testing.T) {
	f := func(seed int64) bool {
		p := Profiles["lbm_r"]
		const base, size = 1 << 24, 1 << 28
		g := NewGenerator(p, base, size, seed)
		for i := 0; i < 500; i++ {
			in := g.Next()
			if in.Mem && (in.Addr < base || in.Addr >= base+size) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestGeneratorMemRatio(t *testing.T) {
	p := Profiles["gemsFDTD"]
	g := NewGenerator(p, 0, 1<<30, 7)
	mem := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if g.Next().Mem {
			mem++
		}
	}
	got := float64(mem) / n
	if got < p.MemRatio-0.03 || got > p.MemRatio+0.03 {
		t.Errorf("memory ratio %.3f, profile says %.3f", got, p.MemRatio)
	}
}

func TestGeneratorStreamsAdvance(t *testing.T) {
	p := Profile{Name: "s", MemRatio: 1, StreamFrac: 1, Streams: 1, Footprint: 1 << 20}
	g := NewGenerator(p, 0, 1<<20, 3)
	prev := g.Next().Addr
	for i := 0; i < 100; i++ {
		cur := g.Next().Addr
		delta := int64(cur) - int64(prev)
		if delta != 8 && delta >= 0 { // 8B stride, allowing wraparound
			t.Fatalf("stream stride %d at step %d, want 8", delta, i)
		}
		prev = cur
	}
}

func TestClassStrings(t *testing.T) {
	if Low.String() != "L" || Medium.String() != "M" || High.String() != "H" {
		t.Error("class letters wrong")
	}
}

func TestZeroRegionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-size region accepted")
		}
	}()
	NewGenerator(Profiles["milc"], 0, 0, 1)
}
