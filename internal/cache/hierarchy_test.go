package cache

import "testing"

// fakeBackend records requests and completes reads on demand.
type fakeBackend struct {
	reads  []uint64
	writes []uint64
	dones  []func(int64)
	full   bool
}

func (f *fakeBackend) EnqueueRead(addr uint64, done func(int64)) bool {
	if f.full {
		return false
	}
	f.reads = append(f.reads, addr)
	f.dones = append(f.dones, done)
	return true
}

func (f *fakeBackend) EnqueueWrite(addr uint64) bool {
	f.writes = append(f.writes, addr)
	return true
}

func (f *fakeBackend) completeAll(at int64) {
	for _, d := range f.dones {
		d(at)
	}
	f.dones = nil
}

type fixedClock struct{}

func (fixedClock) CPUOfDRAM(d int64) int64 { return d * 10 / 3 }

func testHier(cores int) (*Hierarchy, *fakeBackend) {
	b := &fakeBackend{}
	cfg := DefaultHierarchyConfig(cores)
	cfg.PrefetchDegree = 0 // deterministic traffic in unit tests
	return NewHierarchy(cfg, b, fixedClock{}), b
}

func TestMissGoesToMemoryThenHits(t *testing.T) {
	h, b := testHier(1)
	var completed int64 = -1
	res, _ := h.Access(0, 0x1000, false, 0, func(c int64) { completed = c })
	if res != Queued {
		t.Fatalf("first access = %v, want Queued", res)
	}
	if len(b.reads) != 1 {
		t.Fatalf("reads = %d, want 1", len(b.reads))
	}
	b.completeAll(300)
	if completed != 300*10/3+h.cfg.LLC.LatencyCPU {
		t.Errorf("completion cycle = %d", completed)
	}
	res, lat := h.Access(0, 0x1000, false, 0, nil)
	if res != Hit || lat != h.cfg.L1.LatencyCPU {
		t.Errorf("second access = %v/%d, want L1 hit", res, lat)
	}
}

func TestMSHRMerging(t *testing.T) {
	h, b := testHier(2)
	n := 0
	h.Access(0, 0x2000, false, 0, func(int64) { n++ })
	h.Access(1, 0x2000, false, 0, func(int64) { n++ })
	if len(b.reads) != 1 {
		t.Fatalf("same-block misses issued %d memory reads, want 1 (merged)", len(b.reads))
	}
	b.completeAll(100)
	if n != 2 {
		t.Errorf("%d waiters completed, want 2", n)
	}
}

func TestStoreMissAllocatesAndReportsHit(t *testing.T) {
	h, b := testHier(1)
	res, _ := h.Access(0, 0x3000, true, 0, nil)
	if res != Hit {
		t.Fatalf("store miss = %v, want Hit (store buffer hides latency)", res)
	}
	if len(b.reads) != 1 {
		t.Fatalf("write-allocate fetch missing: %d reads", len(b.reads))
	}
	b.completeAll(50)
	// The filled line must be dirty: evicting it forces a writeback.
	blk := uint64(0x3000) / 64
	if d := h.l1[0].Invalidate(blk); !d {
		t.Error("store-allocated line not dirty in L1")
	}
}

func TestL1MSHRLimitStalls(t *testing.T) {
	h, b := testHier(1)
	limit := h.cfg.L1.MSHRs
	for i := 0; i < limit; i++ {
		res, _ := h.Access(0, uint64(0x100000+i*64), false, 0, nil)
		if res != Queued {
			t.Fatalf("access %d = %v, want Queued", i, res)
		}
	}
	res, _ := h.Access(0, 0x900000, false, 0, nil)
	if res != Stall {
		t.Errorf("access beyond L1 MSHR limit = %v, want Stall", res)
	}
	b.completeAll(10)
	res, _ = h.Access(0, 0x900000, false, 0, nil)
	if res != Queued {
		t.Errorf("after fills, access = %v, want Queued", res)
	}
}

func TestBackendFullStalls(t *testing.T) {
	h, b := testHier(1)
	b.full = true
	res, _ := h.Access(0, 0x4000, false, 0, nil)
	if res != Stall {
		t.Errorf("access with full controller queue = %v, want Stall", res)
	}
}

func TestDirtyEvictionReachesMemory(t *testing.T) {
	h, b := testHier(1)
	llcBlocks := uint64(h.cfg.LLC.SizeBytes / h.cfg.LLC.BlockBytes)
	// Dirty one block, then stream enough blocks through to evict it
	// from every level.
	h.Access(0, 0, true, 0, nil)
	b.completeAll(1)
	for i := uint64(1); i <= llcBlocks+llcBlocks/16; i++ {
		h.Access(0, i*64, false, 0, nil)
		b.completeAll(int64(i))
	}
	if len(b.writes) == 0 {
		t.Error("dirty block never written back to memory")
	}
}

func TestPrefetcherIssuesOnStride(t *testing.T) {
	b := &fakeBackend{}
	cfg := DefaultHierarchyConfig(1)
	cfg.PrefetchDegree = 2
	h := NewHierarchy(cfg, b, fixedClock{})
	// Three strided misses establish confidence; further misses prefetch.
	for i := 0; i < 6; i++ {
		h.Access(0, uint64(i)*64*4+0x10000, false, 0, nil)
		b.completeAll(int64(i))
	}
	if h.Prefetches == 0 {
		t.Error("stride prefetcher never fired on a regular stream")
	}
}
