package experiments

import (
	"fmt"
	"math"

	"chopim/internal/apps"
	"chopim/internal/sim"
	"chopim/internal/svrg"
)

// SVRGScale sizes the Fig 15 study. The paper trains on CIFAR-10
// (50000x3072); the default here is a scaled synthetic dataset whose
// matrix still exceeds the LLC, preserving the bandwidth-bound character
// of summarization (see DESIGN.md).
type SVRGScale struct {
	N, D, K int
	Lambda  float64
}

// DefaultSVRGScale returns the scaled study configuration.
func DefaultSVRGScale() SVRGScale { return SVRGScale{N: 4096, D: 768, K: 10, Lambda: 1e-3} }

// quickSVRGScale shrinks the study for tests.
func quickSVRGScale() SVRGScale { return SVRGScale{N: 512, D: 128, K: 10, Lambda: 1e-3} }

// CalibrateTiming measures the SVRG phase times on the simulated machine
// for a system with the given ranks per channel.
func CalibrateTiming(scale SVRGScale, ranksPerChannel int, opt Options) (svrg.Timing, error) {
	var t svrg.Timing

	// NDA summarization: run the Fig 8 kernel once, no host interference
	// (the ACC host blocks during summarization; the delayed-update host
	// traffic is cache-resident).
	cfg := sim.Default(-1)
	cfg.Geom = geomWithRanks(ranksPerChannel)
	s, err := opt.newSystem(cfg)
	if err != nil {
		return t, err
	}
	defer s.Close()
	ag, err := apps.NewAverageGradient(s.RT, apps.AverageGradientConfig{N: scale.N, D: scale.D})
	if err != nil {
		return t, err
	}
	start := s.Now()
	h, err := ag.Run()
	if err != nil {
		return t, err
	}
	if err := s.Await(2_000_000_000, h); err != nil {
		return t, err
	}
	t.SummarizeNDA = sim.Seconds(s.Now() - start)

	// Host summarization: the host streams X twice (GEMV pass plus the
	// per-row AXPY pass) at its achievable stream bandwidth, measured by
	// a single-core streaming calibration run, and additionally pays the
	// gradient arithmetic at the core's FMA rate.
	bw, err := hostStreamBandwidth(opt)
	if err != nil {
		return t, err
	}
	xBytes := float64(scale.N) * float64(scale.D) * 4
	flops := 3 * float64(scale.N) * float64(scale.D) * float64(scale.K)
	const hostFlops = 32e9 // 4 GHz x 8-wide FMA pipeline
	t.SummarizeHost = 2*xBytes/bw + flops/hostFlops

	// Inner iteration: one sampled row streamed plus 3*D*K MACs.
	rowBytes := float64(scale.D) * 4
	t.InnerIter = rowBytes/bw + 3*float64(scale.D)*float64(scale.K)/hostFlops

	// Exchange: s and g (D*K floats each) copied twice with a fence.
	wBytes := float64(scale.D) * float64(scale.K) * 4
	t.Exchange = 4*wBytes/bw + 2e-6
	return t, nil
}

// hostStreamBandwidth measures achievable single-stream host read
// bandwidth (bytes/s) on the baseline system using the lbm-like
// streaming mix running alone.
func hostStreamBandwidth(opt Options) (float64, error) {
	s, err := opt.newSystem(sim.Default(3)) // lbm-led streaming mix
	if err != nil {
		return 0, err
	}
	res, err := measureConcurrent(s, nil, opt.withTag("fig15-hostbw"))
	if err != nil {
		return 0, err
	}
	if res.HostBWGBs <= 0 {
		return 0, fmt.Errorf("fig15: calibration produced zero bandwidth")
	}
	// Per-core share of the measured aggregate bandwidth.
	return res.HostBWGBs * 1e9 / 4, nil
}

// Fig15aCurve is one convergence trajectory.
type Fig15aCurve struct {
	Label  string
	Points []svrg.Point
}

// fig15aResult bundles the figure's two outputs so they cache as one
// entry.
type fig15aResult struct {
	Curves  []Fig15aCurve
	Optimum float64
}

// Fig15a reproduces Figure 15a: training-loss-minus-optimum versus time
// for host-only and accelerated SVRG at epoch lengths N, N/2, N/4, plus
// delayed-update SVRG, with 8 NDAs (2x4).
func Fig15a(opt Options) ([]Fig15aCurve, float64, error) {
	r, err := figCached(opt, "fig15a", fig15aRun)
	if err != nil {
		return nil, 0, err
	}
	return r.Curves, r.Optimum, nil
}

func fig15aRun(opt Options) (fig15aResult, error) {
	scale := DefaultSVRGScale()
	outers := 30
	if opt.Quick {
		scale = quickSVRGScale()
		outers = 8
	}
	ds := svrg.Synthetic(scale.N, scale.D, scale.K, 7)
	timing, err := CalibrateTiming(scale, 4, opt)
	if err != nil {
		return fig15aResult{}, err
	}
	opt15 := svrg.Optimum(ds, scale.Lambda, 11)

	lr := 0.05
	modes := []struct {
		mode  svrg.Mode
		epoch int
		label string
	}{
		{svrg.HostOnly, scale.N, "HO, Epoch (N)"},
		{svrg.HostOnly, scale.N / 2, "HO, Epoch (N/2)"},
		{svrg.HostOnly, scale.N / 4, "HO, Epoch (N/4)"},
		{svrg.Accelerated, scale.N, "ACC, Epoch (N)"},
		{svrg.Accelerated, scale.N / 2, "ACC, Epoch (N/2)"},
		{svrg.Accelerated, scale.N / 4, "ACC, Epoch (N/4)"},
		{svrg.DelayedUpdate, 0, "DelayedUpdate"},
	}
	curves, err := sharded(opt, len(modes), func(i int) (Fig15aCurve, error) {
		m := modes[i]
		pts := svrg.Run(ds, scale.Lambda, svrg.RunConfig{
			Mode: m.mode, Epoch: m.epoch, LR: lr, Momentum: 0.9,
			Outers: outers, Seed: 99, Timing: timing,
		})
		return Fig15aCurve{Label: m.label, Points: pts}, nil
	})
	if err != nil {
		return fig15aResult{}, err
	}
	return fig15aResult{Curves: curves, Optimum: opt15}, nil
}

// Fig15bRow is one NDA-count scaling result.
type Fig15bRow struct {
	NDAs           int
	SpeedupACCBest float64
	SpeedupDelayed float64
}

// Fig15b reproduces Figure 15b: time-to-convergence speedup over
// host-only for the best serialized accelerated configuration and for
// delayed-update SVRG at 4, 8, and 16 NDAs.
func Fig15b(opt Options) ([]Fig15bRow, error) { return figCached(opt, "fig15b", fig15bRows) }

func fig15bRows(opt Options) ([]Fig15bRow, error) {
	scale := DefaultSVRGScale()
	outers := 40
	ndaCounts := []int{4, 8, 16}
	if opt.Quick {
		scale = quickSVRGScale()
		outers = 10
		ndaCounts = []int{4, 8}
	}
	ds := svrg.Synthetic(scale.N, scale.D, scale.K, 7)
	optimum := svrg.Optimum(ds, scale.Lambda, 11)

	// Host-only reference runs. The convergence threshold is adaptive:
	// 1.5x the best final loss gap any host-only run achieves, so every
	// configuration's time-to-reach is well defined at any study scale
	// (the paper uses a fixed 1e-13 on its much longer runs).
	timing0, err := CalibrateTiming(scale, 2, opt)
	if err != nil {
		return nil, err
	}
	var hoRuns [][]svrg.Point
	bestFinalGap := math.Inf(1)
	for _, e := range []int{scale.N, scale.N / 2, scale.N / 4} {
		pts := svrg.Run(ds, scale.Lambda, svrg.RunConfig{
			Mode: svrg.HostOnly, Epoch: e, LR: 0.05, Momentum: 0.9,
			Outers: outers, Seed: 99, Timing: timing0,
		})
		hoRuns = append(hoRuns, pts)
		if gap := pts[len(pts)-1].Loss - optimum; gap < bestFinalGap {
			bestFinalGap = gap
		}
	}
	eps := 1.5 * bestFinalGap
	if eps <= 0 {
		eps = 1e-12
	}
	hoBest := math.Inf(1)
	for _, pts := range hoRuns {
		if tt, ok := svrg.TimeToReach(pts, optimum, eps); ok && tt < hoBest {
			hoBest = tt
		}
	}
	if math.IsInf(hoBest, 1) {
		return nil, fmt.Errorf("fig15b: host-only runs never reached adaptive eps=%g", eps)
	}

	return sharded(opt, len(ndaCounts), func(i int) (Fig15bRow, error) {
		ndas := ndaCounts[i]
		timing, err := CalibrateTiming(scale, ndas/2, opt)
		if err != nil {
			return Fig15bRow{}, err
		}
		accBest := math.Inf(1)
		for _, e := range []int{scale.N, scale.N / 2, scale.N / 4} {
			pts := svrg.Run(ds, scale.Lambda, svrg.RunConfig{
				Mode: svrg.Accelerated, Epoch: e, LR: 0.05, Momentum: 0.9,
				Outers: outers, Seed: 99, Timing: timing,
			})
			if tt, ok := svrg.TimeToReach(pts, optimum, eps); ok && tt < accBest {
				accBest = tt
			}
		}
		// Delayed update's outer iterations are short (summarize +
		// exchange only); give it enough to span the host-only
		// reference wall-clock so time-to-reach is comparable.
		duOuters := int(hoBest/(timing.SummarizeNDA+timing.Exchange)) + 1
		if duOuters > 50*outers {
			duOuters = 50 * outers
		}
		if duOuters < outers {
			duOuters = outers
		}
		delayed := math.Inf(1)
		for _, lr := range []float64{0.03, 0.05} {
			pts := svrg.Run(ds, scale.Lambda, svrg.RunConfig{
				Mode: svrg.DelayedUpdate, LR: lr, Momentum: 0.9,
				Outers: duOuters, Seed: 99, Timing: timing,
			})
			if tt, ok := svrg.TimeToReach(pts, optimum, eps); ok && tt < delayed {
				delayed = tt
			}
		}
		row := Fig15bRow{NDAs: ndas}
		if !math.IsInf(accBest, 1) {
			row.SpeedupACCBest = hoBest / accBest
		}
		if !math.IsInf(delayed, 1) {
			row.SpeedupDelayed = hoBest / delayed
		}
		return row, nil
	})
}
