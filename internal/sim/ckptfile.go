// Durable on-disk codec for Checkpoint. The file is a versioned binary
// envelope around a deterministic JSON payload:
//
//	magic "CHOPIMCK" | version u32 LE | config fingerprint (32 B)
//	| payload length u64 LE | payload | SHA-256 digest (32 B)
//
// and the payload itself is two sections:
//
//	hierarchy length u64 LE | hierarchy JSON | core JSON
//
// The cache hierarchy dominates a checkpoint's bytes (the packed line
// blob alone is megabytes), and encoding/json re-compacts every nested
// MarshalJSON result byte by byte — embedding the hierarchy in the core
// document would re-scan those megabytes on every periodic checkpoint
// write, multiplying the encode cost several-fold. Carrying it as its
// own length-prefixed section keeps the write cheap enough for a live
// checkpoint cadence; the digest trailer still covers both sections.
//
// The payload is the component snapshot states' own wire encodings
// (each State type carries a MarshalJSON that serializes through the
// same durable identities — launch tags, ROB slots, blueprint indices,
// RNG draw counts — the in-memory restore resolves closures from), so a
// decoded checkpoint feeds the ordinary Restore path unchanged and the
// reloaded system continues bit-identically in a fresh process. The
// digest trailer covers every preceding byte: a torn write, a flipped
// bit, or a stale partial file surfaces as ErrCorruptCheckpoint at load
// time, never as a half-restored system. The fingerprint pins the
// simulated configuration (scheduling knobs like SimWorkers excluded,
// exactly the fields Restore tolerates differing); restoring under a
// different config is ErrCheckpointMismatch, a caller bug distinct from
// file damage.
package sim

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"chopim/internal/atomicio"
	"chopim/internal/cache"
	"chopim/internal/cpu"
	"chopim/internal/dram"
	"chopim/internal/mc"
	"chopim/internal/nda"
	"chopim/internal/ndart"
	"chopim/internal/osmem"
	"chopim/internal/workload"
)

// Checkpoint file corruption vs misuse: corruption (truncation, bad
// magic, digest mismatch, undecodable payload) means the file cannot be
// trusted and the caller should recompute; mismatch means the file is
// intact but belongs to a different simulated configuration.
var (
	ErrCorruptCheckpoint  = errors.New("sim: corrupt checkpoint file")
	ErrCheckpointMismatch = errors.New("sim: checkpoint config fingerprint mismatch")
)

var ckptMagic = [8]byte{'C', 'H', 'O', 'P', 'I', 'M', 'C', 'K'}

// ckptVersion is the file format version; bump on any wire change.
const ckptVersion = 1

// ckptHeaderLen is magic + version + fingerprint + payload length.
const ckptHeaderLen = 8 + 4 + sha256.Size + 8

// ckptWire is the core JSON section: every component state except the
// cache hierarchy (which rides as its own payload section, see the
// package comment) plus the clock and measurement scalars Snapshot
// captures.
type ckptWire struct {
	DRAM  *dram.MemState
	OS    *osmem.OSState
	MCs   []*mc.ControllerState
	Cores []*cpu.CoreState
	Gens  []*workload.GenState
	Eng   *nda.EngineState
	RT    *ndart.RuntimeState

	DRAMCycle     int64
	CPUCycle      int64
	Credit        int
	MeasStartDRAM int64
	MeasStartCPU  int64
	RetiredAtMeas []int64
	CoreEpoch     []uint64
}

// ConfigFingerprint hashes the simulated configuration: the full Config
// with the state-free knobs zeroed (worker count, profiling, robustness
// limits, and the cancel flag neither affect simulated state nor
// survive a process anyway — Restore accepts any of them differing).
// Two configs with equal fingerprints produce interchangeable
// checkpoint files.
func ConfigFingerprint(cfg Config) ([sha256.Size]byte, error) {
	cfg.SimWorkers = 0
	cfg.ProfileDomains = false
	cfg.CheckInvariants = false
	cfg.WatchdogWindow = 0
	cfg.MaxCycles = 0
	cfg.MaxWallClock = 0
	cfg.Cancel = nil
	b, err := json.Marshal(cfg)
	if err != nil {
		return [sha256.Size]byte{}, fmt.Errorf("sim: fingerprint config: %w", err)
	}
	return sha256.Sum256(b), nil
}

// EncodeCheckpoint serializes a checkpoint taken under cfg into the
// envelope format. The bytes are self-validating (digest trailer) and
// position-independent — write them anywhere, load them in any process.
func EncodeCheckpoint(cfg Config, ck *Checkpoint) ([]byte, error) {
	fp, err := ConfigFingerprint(cfg)
	if err != nil {
		return nil, err
	}
	var hier []byte
	if ck.hier != nil {
		if hier, err = ck.hier.MarshalJSON(); err != nil {
			return nil, fmt.Errorf("sim: encode checkpoint hierarchy: %w", err)
		}
	}
	core, err := json.Marshal(&ckptWire{
		DRAM: ck.dram, OS: ck.os, MCs: ck.mcs,
		Cores: ck.cores, Gens: ck.gens, Eng: ck.eng, RT: ck.rt,
		DRAMCycle: ck.dramCycle, CPUCycle: ck.cpuCycle, Credit: ck.credit,
		MeasStartDRAM: ck.measStartDRAM, MeasStartCPU: ck.measStartCPU,
		RetiredAtMeas: ck.retiredAtMeas, CoreEpoch: ck.coreEpoch,
	})
	if err != nil {
		return nil, fmt.Errorf("sim: encode checkpoint: %w", err)
	}
	plen := 8 + len(hier) + len(core)
	b := make([]byte, 0, ckptHeaderLen+plen+sha256.Size)
	b = append(b, ckptMagic[:]...)
	b = binary.LittleEndian.AppendUint32(b, ckptVersion)
	b = append(b, fp[:]...)
	b = binary.LittleEndian.AppendUint64(b, uint64(plen))
	b = binary.LittleEndian.AppendUint64(b, uint64(len(hier)))
	b = append(b, hier...)
	b = append(b, core...)
	digest := sha256.Sum256(b)
	b = append(b, digest[:]...)
	return b, nil
}

// DecodeCheckpoint validates and decodes an envelope produced by
// EncodeCheckpoint. Any structural damage — truncation, wrong magic or
// version, digest mismatch, undecodable payload — reports
// ErrCorruptCheckpoint; an intact file for a different configuration
// reports ErrCheckpointMismatch. Validation runs before any state is
// built, so a damaged file can never half-populate a Checkpoint.
func DecodeCheckpoint(cfg Config, b []byte) (*Checkpoint, error) {
	if len(b) < ckptHeaderLen+sha256.Size {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the envelope", ErrCorruptCheckpoint, len(b))
	}
	if !bytes.Equal(b[:8], ckptMagic[:]) {
		return nil, fmt.Errorf("%w: bad magic", ErrCorruptCheckpoint)
	}
	if v := binary.LittleEndian.Uint32(b[8:12]); v != ckptVersion {
		return nil, fmt.Errorf("%w: format version %d (want %d)", ErrCorruptCheckpoint, v, ckptVersion)
	}
	plen := binary.LittleEndian.Uint64(b[ckptHeaderLen-8 : ckptHeaderLen])
	if uint64(len(b)) != uint64(ckptHeaderLen)+plen+sha256.Size {
		return nil, fmt.Errorf("%w: payload length %d does not match file size %d", ErrCorruptCheckpoint, plen, len(b))
	}
	body := b[:len(b)-sha256.Size]
	digest := sha256.Sum256(body)
	if !bytes.Equal(digest[:], b[len(b)-sha256.Size:]) {
		return nil, fmt.Errorf("%w: digest mismatch", ErrCorruptCheckpoint)
	}
	fp, err := ConfigFingerprint(cfg)
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(fp[:], b[12:12+sha256.Size]) {
		return nil, ErrCheckpointMismatch
	}
	payload := b[ckptHeaderLen : len(b)-sha256.Size]
	if len(payload) < 8 {
		return nil, fmt.Errorf("%w: payload shorter than its section header", ErrCorruptCheckpoint)
	}
	hlen := binary.LittleEndian.Uint64(payload[:8])
	if hlen > uint64(len(payload)-8) {
		return nil, fmt.Errorf("%w: hierarchy section length %d exceeds payload", ErrCorruptCheckpoint, hlen)
	}
	var hier *cache.HierarchyState
	if hlen > 0 {
		hier = new(cache.HierarchyState)
		if err := hier.UnmarshalJSON(payload[8 : 8+hlen]); err != nil {
			return nil, fmt.Errorf("%w: hierarchy section: %v", ErrCorruptCheckpoint, err)
		}
	}
	var w ckptWire
	if err := json.Unmarshal(payload[8+hlen:], &w); err != nil {
		return nil, fmt.Errorf("%w: payload: %v", ErrCorruptCheckpoint, err)
	}
	if w.DRAM == nil || w.OS == nil || w.Eng == nil || w.RT == nil {
		return nil, fmt.Errorf("%w: payload missing a required component", ErrCorruptCheckpoint)
	}
	return &Checkpoint{
		dram: w.DRAM, os: w.OS, mcs: w.MCs, hier: hier,
		cores: w.Cores, gens: w.Gens, eng: w.Eng, rt: w.RT,
		dramCycle: w.DRAMCycle, cpuCycle: w.CPUCycle, credit: w.Credit,
		measStartDRAM: w.MeasStartDRAM, measStartCPU: w.MeasStartCPU,
		retiredAtMeas: w.RetiredAtMeas, coreEpoch: w.CoreEpoch,
	}, nil
}

// WriteCheckpoint writes the envelope to w. For files prefer
// SaveCheckpoint, which also gets atomic-replace and fsync discipline.
func WriteCheckpoint(w io.Writer, cfg Config, ck *Checkpoint) error {
	b, err := EncodeCheckpoint(cfg, ck)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// ReadCheckpoint reads and validates one envelope from r.
func ReadCheckpoint(r io.Reader, cfg Config) (*Checkpoint, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return DecodeCheckpoint(cfg, b)
}

// SaveCheckpoint durably persists the checkpoint at path: the envelope
// is written to a temp file, fsynced, and renamed into place, so a
// crash at any instant leaves either the previous file or the complete
// new one — never a torn mixture.
func SaveCheckpoint(path string, cfg Config, ck *Checkpoint) error {
	b, err := EncodeCheckpoint(cfg, ck)
	if err != nil {
		return err
	}
	return atomicio.WriteFile(path, b)
}

// LoadCheckpoint reads and validates the checkpoint at path.
func LoadCheckpoint(path string, cfg Config) (*Checkpoint, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeCheckpoint(cfg, b)
}
