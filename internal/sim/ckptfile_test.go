package sim

import (
	"errors"
	"math/rand"
	"path/filepath"
	"sync/atomic"
	"testing"

	"chopim/internal/ndart"
)

// TestCheckpointFileRoundTrip proves the durable-checkpoint contract:
// a system cut at a randomized mid-flight point, encoded to disk, and
// reloaded through the file codec (no in-memory pointers survive — the
// driver's handle crosses the cut by table index, exactly as a fresh
// process must) continues bit-identically to the original, on the
// reference path and on the fast path at 1, 2, and 4 workers.
func TestCheckpointFileRoundTrip(t *testing.T) {
	const n1, n2 = 10_000, 8_000
	for wi, w := range ckWorkloads() {
		t.Run(w.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(0xD15C + int64(wi)))
			cut := n1 + rng.Int63n(4_000)
			end := cut + n2
			a, err := New(w.cfg())
			if err != nil {
				t.Fatal(err)
			}
			app, err := newCkApp(a, w.op, w.n)
			if err != nil {
				t.Fatal(err)
			}
			drv := &ckDriver{app: app}
			drv.relaunch(t, a)
			ckAdvance(t, a, drv, cut, true)

			var roots []*ndart.Handle
			if drv.h != nil {
				roots = append(roots, drv.h)
			}
			ck, rootIdx, err := a.SnapshotWithRoots(roots)
			if err != nil {
				t.Fatal(err)
			}
			if ck.Cycle() != cut {
				t.Fatalf("checkpoint cycle %d, want %d", ck.Cycle(), cut)
			}
			fpCut := snapshot(a)
			path := filepath.Join(t.TempDir(), "cut.ckpt")
			if err := SaveCheckpoint(path, a.Cfg, ck); err != nil {
				t.Fatal(err)
			}

			// Continue the original on the reference path: the oracle.
			ckAdvance(t, a, drv, end, false)
			want := snapshot(a)

			modes := []struct {
				name    string
				workers int
				fast    bool
			}{
				{"run", 1, false},
				{"fast-w1", 1, true},
				{"fast-w2", 2, true},
				{"fast-w4", 4, true},
			}
			for _, m := range modes {
				t.Run(m.name, func(t *testing.T) {
					cfg := w.cfg()
					cfg.SimWorkers = m.workers
					ck2, err := LoadCheckpoint(path, cfg)
					if err != nil {
						t.Fatal(err)
					}
					b, err := RestoreSystem(cfg, ck2)
					if err != nil {
						t.Fatal(err)
					}
					defer b.Close()
					if got := snapshot(b); got != fpCut {
						t.Fatalf("reloaded state differs at the cut:\n orig: %s\n file: %s", fpCut, got)
					}
					bd := &ckDriver{app: app}
					if len(rootIdx) == 1 {
						bd.h = b.RT.RestoredHandleAt(rootIdx[0])
						if bd.h == nil {
							t.Fatal("root handle index did not survive the file round trip")
						}
					}
					ckAdvance(t, b, bd, end, m.fast)
					if got := snapshot(b); got != want {
						t.Fatalf("reloaded fork diverged after continue:\n orig: %s\n file: %s", want, got)
					}
				})
			}
		})
	}
}

// TestCheckpointFileCorruption fuzzes the envelope's validation: every
// truncation and every bit flip must surface as a structured decode
// error — never a panic, never a half-restored system — and an intact
// file presented under a different configuration must be rejected as a
// mismatch, not corruption.
func TestCheckpointFileCorruption(t *testing.T) {
	w := ckWorkloads()[4] // mixed-mix1-dot: all components populated
	s, err := New(w.cfg())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	app, err := newCkApp(s, w.op, w.n)
	if err != nil {
		t.Fatal(err)
	}
	drv := &ckDriver{app: app}
	drv.relaunch(t, s)
	ckAdvance(t, s, drv, 8_000, true)
	ck, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	good, err := EncodeCheckpoint(s.Cfg, ck)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeCheckpoint(s.Cfg, good); err != nil {
		t.Fatalf("pristine bytes rejected: %v", err)
	}

	decode := func(t *testing.T, b []byte) error {
		t.Helper()
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("decode panicked: %v", r)
			}
		}()
		_, err := DecodeCheckpoint(s.Cfg, b)
		return err
	}

	t.Run("truncations", func(t *testing.T) {
		rng := rand.New(rand.NewSource(0x70A9))
		cuts := []int{0, 1, 7, 8, ckptHeaderLen - 1, ckptHeaderLen, len(good) - 1}
		for i := 0; i < 32; i++ {
			cuts = append(cuts, rng.Intn(len(good)))
		}
		for _, n := range cuts {
			if err := decode(t, good[:n]); !errors.Is(err, ErrCorruptCheckpoint) {
				t.Fatalf("truncation to %d bytes: got %v, want ErrCorruptCheckpoint", n, err)
			}
		}
	})
	t.Run("bit-flips", func(t *testing.T) {
		rng := rand.New(rand.NewSource(0xF11B))
		for i := 0; i < 64; i++ {
			b := append([]byte(nil), good...)
			b[rng.Intn(len(b))] ^= 1 << rng.Intn(8)
			if err := decode(t, b); err == nil {
				t.Fatal("bit-flipped envelope decoded cleanly")
			}
		}
	})
	t.Run("config-mismatch", func(t *testing.T) {
		other := Default(0) // different mix: intact file, wrong fingerprint
		if _, err := DecodeCheckpoint(other, good); !errors.Is(err, ErrCheckpointMismatch) {
			t.Fatalf("got %v, want ErrCheckpointMismatch", err)
		}
	})
}

// TestCancelCooperative proves the cooperative-stop contract: setting
// Config.Cancel makes the fast path return a sticky *CanceledError with
// the system readable at a quiescent boundary, and a checkpoint taken
// there resumes — in a fresh system with the flag cleared — to a state
// bit-identical with a never-canceled run.
func TestCancelCooperative(t *testing.T) {
	w := ckWorkloads()[4] // mixed-mix1-dot
	const horizon = 60_000

	// Reference: the same workload never canceled.
	ref, err := New(w.cfg())
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	refApp, err := newCkApp(ref, w.op, w.n)
	if err != nil {
		t.Fatal(err)
	}
	refDrv := &ckDriver{app: refApp}
	refDrv.relaunch(t, ref)
	ckAdvance(t, ref, refDrv, horizon, true)
	want := snapshot(ref)

	cfg := w.cfg()
	var flag atomic.Bool
	cfg.Cancel = &flag
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	app, err := newCkApp(s, w.op, w.n)
	if err != nil {
		t.Fatal(err)
	}
	drv := &ckDriver{app: app}
	drv.relaunch(t, s)
	if err := s.RunFast(5_000); err != nil {
		t.Fatalf("unset flag perturbed the run: %v", err)
	}
	drv.relaunch(t, s)

	flag.Store(true)
	var canceled *CanceledError
	err = s.RunFast(horizon)
	if !errors.As(err, &canceled) {
		t.Fatalf("canceled run returned %v, want *CanceledError", err)
	}
	if canceled.Cycle != s.Now() || s.Now() <= 0 || s.Now() >= horizon+5_000 {
		t.Fatalf("cancel at cycle %d (err says %d): not a mid-run quiescent cut", s.Now(), canceled.Cycle)
	}
	if again := s.StepFast(s.Now() + 1); !errors.Is(again, err) {
		t.Fatalf("cancel not sticky: second step returned %v", again)
	}

	// The canceled system is checkpointable, and the resumed run lands
	// exactly where the never-canceled reference did.
	var roots []*ndart.Handle
	if drv.h != nil {
		roots = append(roots, drv.h)
	}
	ck, rootIdx, err := s.SnapshotWithRoots(roots)
	if err != nil {
		t.Fatalf("snapshot after cancel: %v", err)
	}
	path := filepath.Join(t.TempDir(), "canceled.ckpt")
	if err := SaveCheckpoint(path, s.Cfg, ck); err != nil {
		t.Fatal(err)
	}
	resumeCfg := w.cfg() // no Cancel flag: a fresh process's config
	ck2, err := LoadCheckpoint(path, resumeCfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RestoreSystem(resumeCfg, ck2)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	bd := &ckDriver{app: app}
	if len(rootIdx) == 1 {
		bd.h = b.RT.RestoredHandleAt(rootIdx[0])
	}
	ckAdvance(t, b, bd, horizon, true)
	if got := snapshot(b); got != want {
		t.Fatalf("cancel+resume diverged from the uninterrupted run:\n want: %s\n  got: %s", want, got)
	}
}
