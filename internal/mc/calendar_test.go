package mc

import (
	"math/rand"
	"testing"

	"chopim/internal/addrmap"
	"chopim/internal/dram"
)

// TestCalendarInvalidationMatchesReference is the calendar-path
// equivalence fuzz: the production (calendar) controller is driven
// wake-to-wake off NextEvent exactly as the system dispatcher drives it
// — skipped cycles execute nothing but the per-cycle issued-rank reset
// (ClearIssued), and the cached wake revalidates against Ver/ChVer like
// sim.mcNext — while the rescan oracle ticks every cycle. On top of the
// host request stream, NDA-style INTERNAL commands issue directly into
// both device models: internal ACT/PRE exercise the RowStamp resync
// (foreign row-state changes re-keying a rank's banks), internal
// columns exercise the lazy timing-staleness path (keys left stale-low
// and revalidated when they come due), and sharing banks with host
// traffic exercises candidate-structure changes the controller itself
// never caused. Any lost wakeup, stale-high key, or decision
// divergence shows up as a state mismatch or an un-drained queue.
func TestCalendarInvalidationMatchesReference(t *testing.T) {
	g := dram.DefaultGeometry()
	tm := dram.DDR42400()
	mapper := addrmap.NewSkylakeLike(g)
	memA := dram.New(g, tm)
	memB := dram.New(g, tm)
	ctlA := NewController(DefaultConfig(), memA, mapper, 0)
	ctlB := NewController(DefaultConfig(), memB, mapper, 0)
	ctlB.SetReferenceScheduler(true)

	rng := rand.New(rand.NewSource(0xCA1))
	hot := make([]uint64, 8)
	for i := range hot {
		hot[i] = uint64(rng.Intn(1<<22) * dram.BlockBytes)
	}
	nextAddr := func() uint64 {
		if rng.Intn(100) < 60 {
			return hot[rng.Intn(len(hot))] + uint64(rng.Intn(64))*dram.BlockBytes
		}
		return uint64(rng.Intn(1<<26)) * dram.BlockBytes
	}

	// NDA-style per-rank streams: each walks ACT -> a few internal
	// columns -> PRE on a row of its own, on banks host traffic also
	// uses (GlobalBank of the hot set), advancing only when the device
	// admits the command — mirroring how a rank NDA interleaves with
	// the host on shared banks.
	type ndaStream struct {
		a     dram.Addr
		phase int // 0: ACT, 1..burst: columns, burst+1: PRE
		burst int
	}
	streams := make([]*ndaStream, g.Ranks)
	for r := range streams {
		streams[r] = &ndaStream{a: dram.Addr{Channel: 0, Rank: r, BankGroup: r % g.BankGroups, Bank: 0, Row: 7000 + r}}
	}

	var doneA, doneB []int64
	wake := int64(0)
	wakeVer, wakeMemVer := uint64(0), uint64(0)
	wakeValid := false
	skipped := 0
	for cyc := int64(0); cyc < 40_000; cyc++ {
		for rng.Intn(100) < 25 {
			addr := nextAddr()
			if mapper.Decode(addr).Channel != 0 {
				continue
			}
			if rng.Intn(100) < 35 {
				ctlA.EnqueueWrite(addr, cyc)
				ctlB.EnqueueWrite(addr, cyc)
			} else {
				okA := ctlA.EnqueueRead(addr, cyc, func(d int64) { doneA = append(doneA, d) })
				okB := ctlB.EnqueueRead(addr, cyc, func(d int64) { doneB = append(doneB, d) })
				if okA != okB {
					t.Fatalf("cycle %d: enqueue accept diverged", cyc)
				}
			}
		}
		// Internal (NDA) commands, identical on both devices.
		for _, s := range streams {
			if rng.Intn(100) >= 40 {
				continue
			}
			var cmd dram.Command
			switch {
			case s.phase == 0:
				cmd = dram.CmdACT
				s.burst = 1 + rng.Intn(4)
			case s.phase <= s.burst:
				cmd = dram.CmdRD
				if rng.Intn(2) == 0 {
					cmd = dram.CmdWR
				}
			default:
				cmd = dram.CmdPRE
			}
			if !memA.CanIssue(cmd, s.a, cyc, true) {
				continue
			}
			if !memB.CanIssue(cmd, s.a, cyc, true) {
				t.Fatalf("cycle %d: internal %v legality diverged", cyc, cmd)
			}
			memA.Issue(cmd, s.a, cyc, true)
			memB.Issue(cmd, s.a, cyc, true)
			if s.phase++; cmd == dram.CmdPRE {
				s.phase = 0
			}
		}
		// Oracle: every cycle. Production: wake-to-wake, revalidating
		// the cached bound exactly like the system's per-controller
		// wake cache.
		ctlB.Tick(cyc)
		if !wakeValid || wakeVer != ctlA.Ver() || wakeMemVer != memA.ChVer(0) {
			wake = ctlA.NextEvent(cyc)
			wakeVer, wakeMemVer = ctlA.Ver(), memA.ChVer(0)
			wakeValid = true
		}
		if wake <= cyc {
			ctlA.Tick(cyc)
			wakeValid = false
		} else {
			ctlA.ClearIssued()
			skipped++
		}
		if a, b := ctrlState(ctlA, memA), ctrlState(ctlB, memB); a != b {
			t.Fatalf("cycle %d: state diverged:\n calendar: %s\n ref:      %s", cyc, a, b)
		}
		if ctlA.HostIssuedRank() != ctlB.HostIssuedRank() {
			t.Fatalf("cycle %d: HostIssuedRank diverged: %d vs %d",
				cyc, ctlA.HostIssuedRank(), ctlB.HostIssuedRank())
		}
		if len(doneA) != len(doneB) {
			t.Fatalf("cycle %d: completion counts diverged", cyc)
		}
	}
	if skipped == 0 {
		t.Fatal("wake-driven path never skipped a cycle; sleep machinery untested")
	}
	// Drain: every queued request must retire without further enqueues
	// (a lost wakeup would leave the calendar controller stuck; keep
	// driving it wake-to-wake).
	for cyc := int64(40_000); ; cyc++ {
		ra, wa := ctlA.QueueOccupancy()
		rb, wb := ctlB.QueueOccupancy()
		if ra == 0 && wa == 0 && rb == 0 && wb == 0 {
			break
		}
		if cyc > 400_000 {
			t.Fatalf("queues failed to drain: calendar %d/%d, ref %d/%d", ra, wa, rb, wb)
		}
		ctlB.Tick(cyc)
		if !wakeValid || wakeVer != ctlA.Ver() || wakeMemVer != memA.ChVer(0) {
			wake = ctlA.NextEvent(cyc)
			wakeVer, wakeMemVer = ctlA.Ver(), memA.ChVer(0)
			wakeValid = true
		}
		if wake <= cyc {
			ctlA.Tick(cyc)
			wakeValid = false
		} else {
			ctlA.ClearIssued()
		}
	}
	for i := range doneA {
		if doneA[i] != doneB[i] {
			t.Fatalf("read completion %d diverged: %d vs %d", i, doneA[i], doneB[i])
		}
	}
	if ctlA.ReadsIssued == 0 || ctlA.WritesIssued == 0 || ctlA.PresIssued == 0 {
		t.Fatalf("degenerate stream: reads=%d writes=%d pres=%d",
			ctlA.ReadsIssued, ctlA.WritesIssued, ctlA.PresIssued)
	}
}

// TestCalendarRowStampRebucket pins the eager-resync half of the
// calendar's invalidation split: an internal (NDA) row command changes
// a bank's candidate structure underneath the controller — something
// the controller's own command stream never caused — and the next
// scheduling decision must re-derive, not serve the stale bucket.
func TestCalendarRowStampRebucket(t *testing.T) {
	g := dram.DefaultGeometry()
	mapper := addrmap.NewSkylakeLike(g)
	mem := dram.New(g, dram.DDR42400())
	c := NewController(DefaultConfig(), mem, mapper, 0)

	// A host read to a closed bank: the bank files under its ACT
	// horizon (pass-2 candidate).
	addr := addrOnChannel0(mapper, 0)
	da := mapper.Decode(addr)
	var done int64 = -1
	if !c.EnqueueRead(addr, 0, func(d int64) { done = d }) {
		t.Fatal("enqueue refused")
	}
	if next := c.NextEvent(0); next > 0 {
		t.Fatalf("ACT candidate ready at 0, NextEvent=%d", next)
	}
	// Before the controller runs, an NDA activates the very row the
	// host wants (legal: the bank is closed and idle). The host's
	// candidate flips from ACT to a row-hit column; the rank's RowStamp
	// moved, so the controller must re-key and issue RD — issuing the
	// stale ACT would panic inside dram.Issue (bank already open).
	if !mem.CanIssue(dram.CmdACT, da, 0, true) {
		t.Fatal("internal ACT should be legal on the idle bank")
	}
	mem.Issue(dram.CmdACT, da, 0, true)
	for cyc := int64(0); cyc < 100 && done < 0; cyc++ {
		c.Tick(cyc)
	}
	if done < 0 {
		t.Fatal("read never completed after NDA opened its row")
	}
	if c.ActsIssued != 0 {
		t.Fatalf("controller issued %d ACTs; the NDA's ACT should have served the row", c.ActsIssued)
	}
	if got := mem.Counts().RD; got != 1 {
		t.Fatalf("RD count = %d, want 1", got)
	}

}

// TestCalendarLazyVsEagerInvalidation pins the invalidation split at
// the bucket level (white box): internal column traffic must NOT
// trigger an eager resync — the staled key is a lower bound that gets
// revalidated when it comes due, and re-files at the exact pushed-out
// cycle — while an internal row command (RowStamp) must revalidate the
// rank's bucketed banks immediately, before any horizon is trusted.
func TestCalendarLazyVsEagerInvalidation(t *testing.T) {
	g := dram.DefaultGeometry()
	mapper := addrmap.NewSkylakeLike(g)
	mem := dram.New(g, dram.DDR42400())
	c := NewController(DefaultConfig(), mem, mapper, 0)

	// Open a row internally and enqueue a host hit against it: the
	// bank's pass-1 candidate is fenced by tRCD, so the first horizon
	// derivation buckets the bank at ACT+tRCD.
	addr := addrOnChannel0(mapper, 0)
	da := mapper.Decode(addr)
	mem.Issue(dram.CmdACT, da, 0, true)
	if !c.EnqueueRead(addr, 0, nil) {
		t.Fatal("enqueue refused")
	}
	rdReady := int64(mem.T.RCD)
	if next := c.NextEvent(0); next != rdReady {
		t.Fatalf("NextEvent(0) = %d, want tRCD = %d", next, rdReady)
	}
	bk := int32(da.Rank*g.BanksPerRank() + da.GlobalBank(g))
	q := &c.rq
	if q.calWhere[bk] != calBucket || q.calKey[bk] != rdReady {
		t.Fatalf("bank filed at where=%d key=%d, want bucketed at %d",
			q.calWhere[bk], q.calKey[bk], rdReady)
	}

	// Lazy path: an internal column on the same rank pushes the rank's
	// column horizons (tCCD) but changes no row state. The bucket key
	// must stay put (no eager resync), and revalidation at the stale
	// key must re-file at the exact pushed-out cycle.
	stamp0 := q.calStamp[da.Rank]
	mem.Issue(dram.CmdRD, da, rdReady, true)
	pushed := rdReady + int64(mem.T.CCDL)
	if q.calKey[bk] != rdReady {
		t.Fatalf("column traffic moved the bucket key to %d; expected lazy staleness", q.calKey[bk])
	}
	if next := c.NextEvent(rdReady); next != pushed {
		t.Fatalf("NextEvent(%d) = %d, want tCCD_L-pushed %d", rdReady, next, pushed)
	}
	if q.calStamp[da.Rank] != stamp0 {
		t.Fatal("internal column bumped the calendar's row-stamp record; resync was not lazy")
	}
	if q.calWhere[bk] != calBucket || q.calKey[bk] != pushed {
		t.Fatalf("stale key revalidated to where=%d key=%d, want bucketed at %d",
			q.calWhere[bk], q.calKey[bk], pushed)
	}

	// Eager path: an internal ACT elsewhere on the rank changes row
	// state (RowStamp). The next derivation must revalidate the
	// bucketed bank immediately — observable as a freshly stamped
	// entry — even though its key has not come due.
	da2 := da
	da2.BankGroup = (da.BankGroup + 1) % g.BankGroups
	da2.Row = 9999
	actAt := pushed - 1
	if !mem.CanIssue(dram.CmdACT, da2, actAt, true) {
		t.Fatalf("internal ACT illegal at %d", actAt)
	}
	mem.Issue(dram.CmdACT, da2, actAt, true)
	if next := c.NextEvent(actAt); next != pushed {
		t.Fatalf("NextEvent(%d) = %d, want %d", actAt, next, pushed)
	}
	if q.calStamp[da.Rank] == stamp0 {
		t.Fatal("row command did not trigger the eager resync")
	}
	if e := &q.sched[q.occPos[bk]]; e.dirty || e.rkStamp != mem.RankStamp(0, da.Rank) {
		t.Fatal("eager resync left the bucketed bank's entry stale")
	}
}
