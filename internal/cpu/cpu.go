// Package cpu models the host processor: simplified out-of-order cores
// with a reorder buffer, load/store queue, and configurable issue/retire
// width (Table II: 4 GHz, fetch/issue width 8, LSQ 64, ROB 224).
//
// Cores are trace-driven. The model captures what the paper's experiments
// depend on: memory-level parallelism bounded by ROB/LSQ/MSHR capacity,
// IPC sensitivity to memory latency and bandwidth, and bursty rank-level
// access patterns. It does not model x86 semantics.
package cpu

import (
	"chopim/internal/cache"
	"chopim/internal/dram"
)

// Instr is one trace instruction. Non-memory instructions execute in one
// cycle; memory instructions access the cache hierarchy. Serialize marks
// the head of a dependency chain: it cannot issue in the same cycle as
// earlier instructions, bounding compute ILP like real dependence chains
// do.
type Instr struct {
	Mem       bool
	Write     bool
	Serialize bool
	Addr      uint64
}

// TraceSource supplies an (endless) instruction stream.
type TraceSource interface {
	Next() Instr
}

// FunctionalSource is an optional TraceSource extension: NextFunctional
// draws the next instruction from the same distribution as Next through
// a cheaper RNG recipe, for sampled-mode fast-forward where millions of
// instructions retire purely to warm microarchitectural state. Sources
// without it fall back to Next.
type FunctionalSource interface {
	NextFunctional() Instr
}

// Config sizes one core.
type Config struct {
	Width   int // issue and retire width
	ROBSize int
	LSQSize int
}

// DefaultConfig returns the paper's core parameters.
func DefaultConfig() Config { return Config{Width: 8, ROBSize: 224, LSQSize: 64} }

// robEntry tracks one in-flight instruction.
type robEntry struct {
	doneAt  int64 // CPU cycle at which the instruction may retire
	pending bool  // completion arrives via callback
	isLoad  bool
	isStore bool
}

// Core is one out-of-order core.
type Core struct {
	ID    int
	cfg   Config
	trace TraceSource
	hier  *cache.Hierarchy

	rob      []robEntry
	doneFns  []func(cpuDone int64) // per-ROB-slot completion callbacks
	head, n  int
	stores   int // stores in flight (LSQ occupancy, with loads)
	loads    int
	stalled  Instr
	hasStall bool

	// Window-batched retirement state (DESIGN.md §2.6). look is a small
	// lookahead holding instructions BatchTick drew from the trace while
	// scanning for the next issue group's boundary; Tick consumes it
	// (through fetch) before drawing fresh instructions, so the trace
	// order every component observes is identical to the unbatched
	// core's. pend counts ROB entries issued by the last batched cycle
	// whose slots were never written: they are all plain one-cycle
	// instructions completing at pendAt, so consecutive batched cycles
	// retire them arithmetically (Retired/head bookkeeping only) and
	// materialize is invoked before any path that reads the slots.
	look   []Instr
	lookH  int // consume position
	lookN  int // fill position
	pend   int
	pendAt int64

	// Blocked-state tracking for the fast-forward machinery. After a
	// Tick that made zero progress (no retire, no issue) the core is
	// provably stuck until either its ROB head becomes retirable (wake,
	// a CPU cycle; Never while the head's miss is outstanding) or — when
	// probeStall is set — some other component mutates hierarchy or
	// controller state, changing the outcome of the stalled access's
	// retry probe. dirty is set by completion callbacks and forces
	// re-evaluation on the next executed cycle.
	blocked    bool
	probeStall bool
	wake       int64
	dirty      bool

	// Deferred-cycle state for the core-sharded front-end (DESIGN.md
	// §2.10). A TickDeferred cycle issues through the hierarchy's
	// core-local path (AccessLocal); when the issue group reaches an
	// access that needs the shared layer, the cycle parks mid-group
	// (deferMode/deferPend are the in-flight flags, defIssued/defR0 the
	// resume state) and FinishTick completes it at the caller's commit
	// barrier. All four fields are transient within one CPU sub-cycle —
	// zero whenever the core is quiescent — so snapshots ignore them.
	deferMode bool
	deferPend bool
	defIssued int
	defR0     int64

	Retired int64
	Cycles  int64
}

// NewCore builds a core over the shared hierarchy. Completion callbacks
// are created once per ROB slot (each captures only its slot index), so
// issuing a memory instruction allocates nothing; a slot cannot be
// reused while its access is outstanding (a pending entry blocks retire).
func NewCore(id int, cfg Config, trace TraceSource, hier *cache.Hierarchy) *Core {
	c := &Core{ID: id, cfg: cfg, trace: trace, hier: hier, rob: make([]robEntry, cfg.ROBSize)}
	c.look = make([]Instr, cfg.Width+1)
	c.doneFns = make([]func(int64), cfg.ROBSize)
	for i := range c.doneFns {
		e := &c.rob[i]
		c.doneFns[i] = func(cpuDone int64) {
			e.pending = false
			e.doneAt = cpuDone
			c.dirty = true
		}
	}
	return c
}

// DoneFn returns the completion callback for one ROB slot, so restored
// MSHR waiters (which record core and slot indices) can be rewired to
// the same pooled closures issue uses.
func (c *Core) DoneFn(slot int) func(int64) { return c.doneFns[slot] }

// IPC returns retired instructions per CPU cycle so far.
func (c *Core) IPC() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.Retired) / float64(c.Cycles)
}

// ResetStats clears retirement counters (end of warm-up).
func (c *Core) ResetStats() { c.Retired, c.Cycles = 0, 0 }

// NextEvent returns the earliest CPU cycle >= now at which the core can
// change state, assuming no external state changes (no completion
// callbacks, no hierarchy or controller mutations) before then. An
// active core's next event is the current cycle. A blocked core cannot
// retire before its ROB head resolves and cannot issue before either
// retirement frees ROB/LSQ space or — for a probeStall — the memory
// system changes underneath it; under the static-externals assumption
// the bound is its head wake cycle. Callers that mutate external state
// (the sim package) must re-dispatch the core when they do: ticking a
// blocked core is always exact, only skipping needs this bound.
func (c *Core) NextEvent(now int64) int64 {
	if !c.blocked || c.dirty {
		return now
	}
	return c.wake
}

// Blocked reports whether the core provably cannot make progress until
// its wake cycle or an external state change (see NextEvent).
func (c *Core) Blocked() bool { return c.blocked && !c.dirty }

// ProbeStalled reports that the blocked core's stalled instruction got
// cache.Stall from the hierarchy: its retry outcome depends on MSHR and
// controller-queue state, so the core must run on every executed cycle
// (any component may have freed the resource it is waiting on).
func (c *Core) ProbeStalled() bool { return c.probeStall }

// WakeCycle returns the blocked core's self-known wake bound: the CPU
// cycle its ROB head becomes retirable, or Never while the head's miss
// is still outstanding (the completion callback will set dirty).
func (c *Core) WakeCycle() int64 { return c.wake }

// SkipCycles accounts k provably idle CPU cycles without executing
// them. Exact only for cycles where the core is Blocked with no
// external state change: such a tick increments Cycles, retires
// nothing, and either retries a side-effect-free probe or cannot issue
// at all — so bulk-adding the cycle count reproduces it bit-exactly.
func (c *Core) SkipCycles(k int64) { c.Cycles += k }

// RetireFunctional retires n instructions at functional fidelity for
// sampled-mode fast-forward (DESIGN.md §2.11). Instructions are drawn
// in exact trace order — through the batch lookahead first, so the
// post-jump stream resumes precisely where detailed execution left it —
// counted into Retired, and memory instructions are handed to warm
// (nil to drop) instead of entering the ROB/LSQ. Cycles do not advance
// here; the caller accounts the jump via SkipCycles. Everything
// in-flight is left frozen: ROB occupancy, outstanding misses (their
// fills complete during the next detailed window), and a parked
// stalled instruction, which retries when detailed execution resumes.
// Returns the number of memory instructions drawn, for warm-traffic
// accounting.
func (c *Core) RetireFunctional(n int64, warm func(addr uint64, write bool)) int64 {
	fs, _ := c.trace.(FunctionalSource)
	var mem int64
	for i := int64(0); i < n; i++ {
		var in Instr
		if c.lookH < c.lookN || fs == nil {
			in = c.fetch()
		} else {
			in = fs.NextFunctional()
		}
		if in.Mem {
			mem++
			if warm != nil {
				warm(in.Addr, in.Write)
			}
		}
	}
	c.Retired += n
	return mem
}

// fetch returns the next trace instruction, consuming the batch
// lookahead (instructions BatchTick already drew) before drawing fresh
// ones, so batched and unbatched execution observe one trace order.
func (c *Core) fetch() Instr {
	if c.lookH < c.lookN {
		in := c.look[c.lookH]
		c.lookH++
		if c.lookH == c.lookN {
			c.lookH, c.lookN = 0, 0
		}
		return in
	}
	return c.trace.Next()
}

// materialize writes the deferred ROB entries of the last batched cycle
// (see pend): plain one-cycle instructions completing at pendAt,
// occupying the newest pend slots of the ROB. It must run before
// anything reads ROB slots — Tick's retire does, so Tick materializes
// on entry; BatchTick materializes on every path that reads real
// entries or hands the cycle to Tick.
func (c *Core) materialize() {
	r := len(c.rob)
	i := c.head + c.n - c.pend
	if i >= r {
		i -= r
	}
	for k := 0; k < c.pend; k++ {
		c.rob[i] = robEntry{doneAt: c.pendAt}
		i++
		if i == r {
			i = 0
		}
	}
	c.pend = 0
}

// BatchTick attempts to execute one CPU cycle in batched mode and
// reports whether it did; on false the caller must run a normal
// Tick(now), which picks up the cycle exactly where the scan left it
// (drawn instructions wait in the lookahead). A batched cycle is
// bit-exact to Tick but touches nothing outside the core — no
// hierarchy access, no completion callbacks — which is also what makes
// it safe to interleave freely with other cores inside one lockstep
// CPU sub-cycle. The cycle batches when:
//
//   - the ROB holds nothing but the previous batched group (pend == n;
//     any real entry — a load on a miss, hit latencies draining —
//     rejects in one compare, BEFORE any scan work, so memory-bound
//     phases pay essentially nothing for the attempt);
//   - no completion callback arrived (dirty) and no stalled memory
//     instruction is waiting to retry;
//   - the whole upcoming issue group — bounded by issue width and by
//     the next Serialize instruction, which reference issue() also
//     stops at — is free of memory instructions;
//   - the group fits the ROB outright (the ROB-wrap bound; reference
//     issue would otherwise split the group across cycles).
//
// The group is then retired/issued arithmetically: Retired, head, and
// Cycles advance (the SkipCycles-style bookkeeping), the slot writes
// are deferred (materialize), and consecutive compute-bound cycles
// never touch ROB memory at all.
func (c *Core) BatchTick(now int64) bool {
	if c.dirty || c.n != c.pend || (c.hasStall && c.stalled.Mem) || len(c.rob) < c.cfg.Width {
		c.materialize()
		return false
	}
	// Compact the lookahead so the scan's appends cannot outgrow it
	// (at most Width+1 instructions are ever buffered ahead).
	if c.lookH > 0 {
		c.lookN = copy(c.look, c.look[c.lookH:c.lookN])
		c.lookH = 0
	}
	// Scan (and extend) the lookahead to this cycle's issue group,
	// before mutating any state: a memory instruction anywhere in the
	// group hands the whole cycle to Tick, which must see the same
	// pre-cycle core.
	g := 0
	if c.hasStall {
		g = 1 // the stalled (non-memory) instruction issues at position 0
	}
	idx := c.lookH
	for g < c.cfg.Width {
		var in Instr
		if idx < c.lookN {
			in = c.look[idx]
		} else {
			in = c.trace.Next()
			c.look[c.lookN] = in
			c.lookN++
		}
		if in.Mem {
			c.materialize()
			return false
		}
		if in.Serialize && g > 0 {
			break // dependency-chain head: first position of the next group
		}
		idx++
		g++
	}
	if c.n+g > len(c.rob) {
		c.materialize()
		return false
	}
	// Retire the previous batched group arithmetically: pend plain
	// one-cycle entries, all completing at pendAt.
	if c.pend > 0 {
		if c.pendAt > now {
			c.materialize()
			return false
		}
		c.Retired += int64(c.pend)
		c.head += c.pend
		if c.head >= len(c.rob) {
			c.head -= len(c.rob)
		}
		c.n = 0
		c.pend = 0
	}
	// Issue the group: g one-cycle instructions, slots deferred.
	c.hasStall = false
	c.lookH = idx
	if c.lookH == c.lookN {
		c.lookH, c.lookN = 0, 0
	}
	c.n += g
	c.pend = g
	c.pendAt = now + 1
	c.Cycles++
	c.blocked, c.dirty, c.probeStall = false, false, false
	return true
}

// Tick advances the core by one CPU cycle.
func (c *Core) Tick(now int64) {
	if c.pend > 0 {
		c.materialize()
	}
	c.Cycles++
	r0 := c.Retired
	c.retire(now)
	c.probeStall = false
	issued, _ := c.issueFrom(0, now)
	c.endCycle(now, r0, issued)
}

// TickDeferred runs one CPU cycle touching only core-local state: the
// issue group goes through cache.AccessLocal, and the first instruction
// that needs the shared LLC/MSHR layer parks the cycle mid-group
// instead. It reports whether the cycle parked; the caller MUST then
// call FinishTick(now) at its commit barrier before the next sub-cycle
// (the blocked-state bookkeeping of the cycle has not run yet). A
// false return means the cycle completed entirely core-locally and is
// bit-identical to Tick(now).
func (c *Core) TickDeferred(now int64) bool {
	if c.pend > 0 {
		c.materialize()
	}
	c.Cycles++
	c.defR0 = c.Retired
	c.retire(now)
	c.probeStall = false
	c.deferMode = true
	issued, parked := c.issueFrom(0, now)
	c.deferMode = false
	if parked {
		c.defIssued = issued
		return true
	}
	c.endCycle(now, c.defR0, issued)
	return false
}

// FinishTick completes a parked TickDeferred cycle: the deferred
// access replays through the full shared path, the issue group
// continues from where it parked, and the cycle's blocked-state
// bookkeeping runs. Called in canonical core order, it lands every
// shared-state effect exactly where the serial interleaving would.
func (c *Core) FinishTick(now int64) {
	c.deferPend = false
	issued, _ := c.issueFrom(c.defIssued, now)
	c.endCycle(now, c.defR0, issued)
}

// endCycle is the zero-progress classification shared by Tick,
// TickDeferred, and FinishTick: a cycle that neither retired nor
// issued leaves the core provably stuck until its wake (or an external
// mutation, for probe stalls).
func (c *Core) endCycle(now, r0 int64, issued int) {
	if issued > 0 || c.Retired != r0 {
		c.blocked, c.dirty = false, false
		return
	}
	c.blocked = true
	c.dirty = false
	c.wake = dram.Never
	if c.n > 0 && !c.rob[c.head].pending {
		c.wake = c.rob[c.head].doneAt
	}
}

func (c *Core) retire(now int64) {
	for retired := 0; retired < c.cfg.Width && c.n > 0; retired++ {
		e := &c.rob[c.head]
		if e.pending || e.doneAt > now {
			return
		}
		if e.isLoad {
			c.loads--
		}
		if e.isStore {
			c.stores--
		}
		c.head++
		if c.head == len(c.rob) {
			c.head = 0
		}
		c.n--
		c.Retired++
	}
}

// issueFrom runs the issue loop with issued instructions already
// placed this cycle (nonzero only when FinishTick resumes a deferred
// group). It returns the total issue count and whether the group
// parked on a deferred shared-path access (deferMode only). The parked
// instruction sits in stalled/hasStall either way — a deferral resumes
// from there exactly like a structural-hazard retry would.
func (c *Core) issueFrom(issued int, now int64) (int, bool) {
	for ; issued < c.cfg.Width && c.n < len(c.rob); issued++ {
		var in Instr
		if c.hasStall {
			in = c.stalled
		} else {
			in = c.fetch()
		}
		if in.Serialize && issued > 0 {
			// Dependency chain head: wait for the next cycle.
			c.stalled = in
			c.hasStall = true
			return issued, false
		}
		if !c.tryIssue(in, now) {
			c.stalled = in
			c.hasStall = true
			if c.deferPend {
				return issued, true
			}
			return issued, false
		}
		c.hasStall = false
	}
	return issued, false
}

// tryIssue places one instruction into the ROB, accessing memory if
// needed. It returns false if a structural hazard requires a retry, or
// — in deferMode, signaled via deferPend — if the access must wait for
// the commit barrier.
func (c *Core) tryIssue(in Instr, now int64) bool {
	slot := c.head + c.n
	if slot >= len(c.rob) {
		slot -= len(c.rob)
	}
	e := &c.rob[slot]
	*e = robEntry{}

	if !in.Mem {
		e.doneAt = now + 1
		c.n++
		return true
	}
	if c.loads+c.stores >= c.cfg.LSQSize {
		return false
	}
	var res cache.Result
	var lat int64
	if c.deferMode {
		res, lat = c.hier.AccessLocal(c.ID, in.Addr, in.Write)
		if res == cache.Defer {
			c.deferPend = true
			return false
		}
	} else {
		// AccessReplay is Access, except that it skips the private-level
		// re-probes when this is the commit of an access AccessLocal just
		// proved misses them (it falls through to Access otherwise, so the
		// plain serial Tick path is unaffected).
		res, lat = c.hier.AccessReplay(c.ID, in.Addr, in.Write, slot, c.doneFns[slot])
	}
	switch res {
	case cache.Stall:
		c.probeStall = true
		return false
	case cache.Hit:
		e.doneAt = now + lat
	case cache.Queued:
		e.pending = true
	}
	if in.Write {
		e.isStore = true
		c.stores++
	} else {
		e.isLoad = true
		c.loads++
	}
	c.n++
	return true
}
