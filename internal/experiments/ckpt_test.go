package experiments

import (
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"syscall"
	"testing"

	"chopim/internal/apps"
	"chopim/internal/faults"
	"chopim/internal/ndart"
	"chopim/internal/sim"
)

// ckptSweepOpts is the shared budget for the checkpoint/cancel tests:
// small enough to run in seconds, long enough that the mid-point
// cadence fires several times per point. The same construction must be
// used by the interrupted run, the resumed run, and the subprocess
// crash child — the checkpoint key fingerprints it.
func ckptSweepOpts(dir string) Options {
	opt := QuickOptions()
	opt.WarmCycles, opt.MeasureCycles = 2_000, 28_000
	opt.Parallel = 1
	if dir != "" {
		opt.JournalDir = dir
		opt.CheckpointEvery = 3_000
	}
	return opt
}

// ckptSweepRows runs the two-point NDA-only sweep the tests interrupt:
// both points share one configuration, so only the point tag keeps
// their checkpoints apart.
func ckptSweepRows(opt Options) ([]NDAOnlyRow, error) {
	return NDAOnlySweep(opt, []string{"copy", "dot"})
}

// canceledSweep reports whether an error is cooperative cancellation in
// either surface form: the drained sweep's sentinel or a point's
// CanceledError (fail-fast surfaces the point error directly).
func canceledSweep(err error) bool {
	if errors.Is(err, ErrSweepCanceled) {
		return true
	}
	var ce *sim.CanceledError
	return errors.As(err, &ce)
}

// TestMidPointCheckpointResume is the in-process half of the tentpole
// claim: cancel a sweep the instant its first mid-point checkpoint
// lands, then resume with a fresh Options and prove the rows are
// bit-identical to a never-interrupted run, with the cut point restored
// from its checkpoint rather than recomputed from zero.
func TestMidPointCheckpointResume(t *testing.T) {
	// Synchronous cadence: the CkptWritten-triggered cancel must land at
	// a deterministic simulated cycle, not whenever the background
	// writer gets scheduled (the async path is proven by the crash
	// harness below).
	ckptSyncWrites = true
	defer func() { ckptSyncWrites = false }()
	ref, err := ckptSweepRows(ckptSweepOpts(""))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	cancel := &Canceler{}
	disarm := faults.ArmAdjust(faults.CkptWritten, func(v int64) int64 {
		cancel.CancelPoints()
		return v
	})
	opt := ckptSweepOpts(dir)
	opt.Cancel = cancel
	_, err = ckptSweepRows(opt)
	disarm()
	if !canceledSweep(err) {
		t.Fatalf("interrupted run returned %v, want cooperative cancellation", err)
	}
	ckpts, _ := filepath.Glob(filepath.Join(dir, "point-*.ckpt"))
	if len(ckpts) == 0 {
		t.Fatal("canceled run left no mid-point checkpoint behind")
	}

	before := ReadRunnerStats()
	ropt := ckptSweepOpts(dir)
	ropt.Resume = true
	rows, err := ckptSweepRows(ropt)
	if err != nil {
		t.Fatalf("resumed run failed: %v", err)
	}
	after := ReadRunnerStats()
	if after.CkptRestores-before.CkptRestores < 1 {
		t.Errorf("resumed run restored %d mid-point checkpoints, want >=1",
			after.CkptRestores-before.CkptRestores)
	}
	if !reflect.DeepEqual(rows, ref) {
		t.Fatalf("cancel+resume rows diverged from the uninterrupted run:\n want: %+v\n  got: %+v", ref, rows)
	}
	// The completed figure owns its results: no checkpoint files remain.
	if left, _ := filepath.Glob(filepath.Join(dir, "point-*.ckpt")); len(left) != 0 {
		t.Errorf("completed sweep left checkpoints behind: %v", left)
	}
}

// TestMidPointCheckpointCorruptionDegrades proves the resume contract
// under a corrupted checkpoint: when the file a crash left behind is
// torn or bit-flipped, the resume reads it as a miss, the point
// recomputes from cycle zero, and the rows still match the
// uninterrupted run exactly.
func TestMidPointCheckpointCorruptionDegrades(t *testing.T) {
	// Synchronous cadence, as in TestMidPointCheckpointResume.
	ckptSyncWrites = true
	defer func() { ckptSyncWrites = false }()
	ref, err := ckptSweepRows(ckptSweepOpts(""))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name    string
		corrupt func(b []byte) []byte
	}{
		{"torn", func(b []byte) []byte { return b[:len(b)/2] }},
		{"bit-flip", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)/2] ^= 0x40
			return c
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			cancel := &Canceler{}
			disarm := faults.ArmAdjust(faults.CkptWritten, func(v int64) int64 {
				cancel.CancelPoints()
				return v
			})
			opt := ckptSweepOpts(dir)
			opt.Cancel = cancel
			_, err := ckptSweepRows(opt)
			disarm()
			if !canceledSweep(err) {
				t.Fatalf("interrupted run returned %v, want cooperative cancellation", err)
			}
			ckpts, _ := filepath.Glob(filepath.Join(dir, "point-*.ckpt"))
			if len(ckpts) == 0 {
				t.Fatal("canceled run left no checkpoint to corrupt")
			}
			for _, p := range ckpts {
				b, err := os.ReadFile(p)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(p, tc.corrupt(b), 0o644); err != nil {
					t.Fatal(err)
				}
			}

			before := ReadRunnerStats()
			ropt := ckptSweepOpts(dir)
			ropt.Resume = true
			rows, err := ckptSweepRows(ropt)
			if err != nil {
				t.Fatalf("resume over a corrupt checkpoint failed: %v", err)
			}
			after := ReadRunnerStats()
			if n := after.CkptRestores - before.CkptRestores; n != 0 {
				t.Errorf("corrupt checkpoint restored %d times, want 0 (miss-and-recompute)", n)
			}
			if !reflect.DeepEqual(rows, ref) {
				t.Fatalf("recomputed rows diverged:\n want: %+v\n  got: %+v", ref, rows)
			}
		})
	}
}

// TestPointCheckpointFileContract unit-tests the point-checkpoint file
// itself: a clean write loads with its metadata and handle identity
// intact, and every mismatch — wrong tag, torn bytes, flipped bit —
// loads as a miss without touching the destination system.
func TestPointCheckpointFileContract(t *testing.T) {
	dir := t.TempDir()
	opt := ckptSweepOpts(dir)
	opt.pointTag = "contract-test"
	cfg := sim.Default(-1)
	s, err := opt.newSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := openPointCkpt(s, opt)
	if c == nil {
		t.Fatal("openPointCkpt returned nil with cadence and journal dir set")
	}
	app, err := apps.NewMicroPlaced(s.RT, "copy", (64<<10)/4, ndart.Private)
	if err != nil {
		t.Fatal(err)
	}
	h, err := app.Iterate()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunFast(3_000); err != nil {
		t.Fatal(err)
	}
	c.write(s, h, true, 11, 22)
	cut := s.Now()

	load := func(t *testing.T, o Options) (pointCkptMeta, bool, *sim.System) {
		t.Helper()
		s2, err := o.newSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s2.Close)
		c2 := openPointCkpt(s2, o)
		if c2 == nil {
			t.Fatal("openPointCkpt returned nil for the loading system")
		}
		meta, ok := c2.load(s2)
		return meta, ok, s2
	}

	t.Run("clean", func(t *testing.T) {
		meta, ok, s2 := load(t, opt)
		if !ok {
			t.Fatal("clean checkpoint did not load")
		}
		if s2.Now() != cut || meta.Cycle != cut {
			t.Fatalf("restored to cycle %d (meta %d), want %d", s2.Now(), meta.Cycle, cut)
		}
		if !meta.Measuring || meta.Busy0 != 11 || meta.Blocks0 != 22 {
			t.Fatalf("metadata did not round-trip: %+v", meta)
		}
		if meta.HandleIdx < 0 || s2.RT.RestoredHandleAt(meta.HandleIdx) == nil {
			t.Fatalf("driver handle lost across the file: idx %d", meta.HandleIdx)
		}
	})
	t.Run("wrong-tag", func(t *testing.T) {
		if _, ok, _ := load(t, opt.withTag("someone-else")); ok {
			t.Fatal("a different point tag loaded this point's checkpoint")
		}
	})
	for _, tc := range []struct {
		name    string
		corrupt func(b []byte) []byte
	}{
		{"torn", func(b []byte) []byte { return b[:len(b)/2] }},
		{"bit-flip", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)/2] ^= 0x40
			return c
		}},
		{"empty", func([]byte) []byte { return nil }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			good, err := os.ReadFile(c.path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(c.path, tc.corrupt(good), 0o644); err != nil {
				t.Fatal(err)
			}
			defer os.WriteFile(c.path, good, 0o644)
			meta, ok, s2 := load(t, opt)
			if ok {
				t.Fatalf("corrupt checkpoint loaded: %+v", meta)
			}
			if s2.Now() != 0 {
				t.Fatalf("failed load advanced the system to cycle %d", s2.Now())
			}
		})
	}

	// The -inject specs must produce files the loader rejects: each arms
	// its corruption for the next write, and the result reads as a miss.
	for _, spec := range []string{"ckpt-torn=1", "ckpt-badsum=1"} {
		t.Run(spec, func(t *testing.T) {
			if err := faults.ArmSpec(spec); err != nil {
				t.Fatal(err)
			}
			defer disarmAll(t)
			c.write(s, h, true, 11, 22)
			if meta, ok, _ := load(t, opt); ok {
				t.Fatalf("checkpoint written under %s loaded: %+v", spec, meta)
			}
		})
	}
}

// TestSweepDrainCancel proves the graceful-drain level: stopping
// admission mid-sweep lets the point in hand finish, fails the sweep
// with ErrSweepCanceled (partial results must never read as complete),
// journals the completed points, and a resumed run replays them and
// computes only the rest.
func TestSweepDrainCancel(t *testing.T) {
	dir := t.TempDir()
	mkOpt := func(c *Canceler) Options {
		opt := Options{Parallel: 1, JournalDir: dir, Resume: true, Cancel: c}
		opt.journal = newJournalCtx(opt, "drainfig", "feedfacefeedfacefeedface")
		return opt
	}
	job := func(i int) (int, error) { return 10*i + 1, nil }

	cancel := &Canceler{}
	disarm := faults.ArmAdjust(faults.RunnerPoint, func(v int64) int64 {
		if v == 1 {
			cancel.CancelAdmission()
		}
		return v
	})
	vals, err := sharded(mkOpt(cancel), 5, job)
	disarm()
	if !errors.Is(err, ErrSweepCanceled) {
		t.Fatalf("drained sweep returned %v, want ErrSweepCanceled", err)
	}
	// The point in hand when the cancel landed still finished.
	if vals[0] != 1 || vals[1] != 11 {
		t.Fatalf("completed points = %v, want points 0 and 1 finished", vals[:2])
	}
	if vals[2] != 0 || vals[3] != 0 || vals[4] != 0 {
		t.Fatalf("points admitted after cancel: %v", vals)
	}

	before := ReadRunnerStats()
	vals, err = sharded(mkOpt(nil), 5, job)
	if err != nil {
		t.Fatalf("resumed sweep failed: %v", err)
	}
	if want := []int{1, 11, 21, 31, 41}; !reflect.DeepEqual(vals, want) {
		t.Fatalf("resumed results = %v, want %v", vals, want)
	}
	after := ReadRunnerStats()
	if n := after.Resumed - before.Resumed; n != 2 {
		t.Errorf("resumed %d points from the journal, want 2", n)
	}

	// A pre-canceled sweep admits nothing, on the parallel path too.
	pre := &Canceler{}
	pre.CancelAdmission()
	opt := Options{Parallel: 4, Cancel: pre}
	if _, err := sharded(opt, 8, job); !errors.Is(err, ErrSweepCanceled) {
		t.Fatalf("pre-canceled parallel sweep returned %v, want ErrSweepCanceled", err)
	}
}

// TestCrashResumeSIGKILL is the crash harness: a subprocess runs the
// sweep with die-after-ckpt=1 armed, so the kernel kills it with
// SIGKILL — no deferred cleanup, no flushes — the instant its first
// mid-point checkpoint lands. The parent asserts the process died by
// signal, then resumes from the survivor directory and proves the rows
// are byte-identical to an uninterrupted run.
func TestCrashResumeSIGKILL(t *testing.T) {
	if dir := os.Getenv("CHOPIM_CRASH_DIR"); dir != "" {
		// Child payload: never returns normally.
		if err := faults.ArmSpec("die-after-ckpt=1"); err != nil {
			os.Exit(97)
		}
		ckptSweepRows(ckptSweepOpts(dir))
		os.Exit(98) // the kill never fired
	}
	if testing.Short() {
		t.Skip("subprocess crash harness skipped in -short")
	}

	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=^TestCrashResumeSIGKILL$")
	cmd.Env = append(os.Environ(), "CHOPIM_CRASH_DIR="+dir)
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("crash child did not die (err %v):\n%s", err, out)
	}
	ws, ok := ee.Sys().(syscall.WaitStatus)
	if !ok || !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
		t.Fatalf("crash child exited with %v, want death by SIGKILL:\n%s", err, out)
	}
	ckpts, _ := filepath.Glob(filepath.Join(dir, "point-*.ckpt"))
	if len(ckpts) == 0 {
		t.Fatal("SIGKILLed run left no durable checkpoint (the write was supposed to land first)")
	}

	ref, err := ckptSweepRows(ckptSweepOpts(""))
	if err != nil {
		t.Fatal(err)
	}
	before := ReadRunnerStats()
	opt := ckptSweepOpts(dir)
	opt.Resume = true
	rows, err := ckptSweepRows(opt)
	if err != nil {
		t.Fatalf("resume after SIGKILL failed: %v", err)
	}
	after := ReadRunnerStats()
	if after.CkptRestores-before.CkptRestores < 1 {
		t.Errorf("resume restored %d mid-point checkpoints, want >=1 (recomputed instead?)",
			after.CkptRestores-before.CkptRestores)
	}
	if !reflect.DeepEqual(rows, ref) {
		t.Fatalf("crash+resume rows diverged from the uninterrupted run:\n want: %+v\n  got: %+v", ref, rows)
	}
}
