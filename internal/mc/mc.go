// Package mc implements the host-side memory controller: one FR-FCFS
// scheduler per channel with separate 32-entry read and write queues,
// watermark-based write draining, and an open-page policy (Table II).
//
// The controller also exposes the coordination hooks Chopim's NDA
// controller needs (Section III): per-cycle host activity per rank, the
// rank targeted by the oldest outstanding read (next-rank prediction),
// and pending-demand checks used to prioritize host row commands.
package mc

import (
	"chopim/internal/addrmap"
	"chopim/internal/dram"
	"chopim/internal/stats"
)

// Request is one block-granularity memory transaction.
type Request struct {
	Addr   uint64
	DAddr  dram.Addr
	Write  bool
	Arrive int64
	Done   func(dramDone int64) // nil for writes and prefetches
}

// Config tunes one channel controller.
type Config struct {
	ReadQueue  int
	WriteQueue int
	// Write drain watermarks (occupancy counts on the write queue).
	DrainHigh int
	DrainLow  int
}

// DefaultConfig returns the paper's controller parameters.
func DefaultConfig() Config {
	return Config{ReadQueue: 32, WriteQueue: 32, DrainHigh: 24, DrainLow: 8}
}

// Controller schedules one channel.
type Controller struct {
	cfg     Config
	mem     *dram.Mem
	mapper  addrmap.Mapper
	channel int

	rq []*Request
	wq []*Request
	// overflow absorbs writebacks beyond the write queue (an unbounded
	// eviction buffer drained into wq as space frees).
	overflow []*Request
	drain    bool

	// issuedRank is the rank the host issued a command to this cycle
	// (-1 if none); refreshed each Tick.
	issuedRank  int
	issuedIsCol bool

	// seen/seenGen implement a per-Tick visited-bank set without
	// per-cycle allocation.
	seen    []int64
	seenGen int64

	// Per-rank idle histograms (Fig 2) and bandwidth accounting.
	IdleHists []stats.IdleHist

	ReadsIssued, WritesIssued int64
	ActsIssued, PresIssued    int64
	ReadLatencySum            int64
	Drains, Refreshes         int64
	nextRefresh               int64
}

// NewController builds a controller for the given channel.
func NewController(cfg Config, mem *dram.Mem, mapper addrmap.Mapper, channel int) *Controller {
	return &Controller{
		cfg: cfg, mem: mem, mapper: mapper, channel: channel,
		issuedRank: -1,
		seen:       make([]int64, mem.Geom.Ranks*mem.Geom.BanksPerRank()),
		IdleHists:  make([]stats.IdleHist, mem.Geom.Ranks),
	}
}

// Channel returns the channel index this controller owns.
func (c *Controller) Channel() int { return c.channel }

// EnqueueRead adds a read; done fires at data-available time.
// It returns false when the read queue is full.
func (c *Controller) EnqueueRead(addr uint64, now int64, done func(int64)) bool {
	if len(c.rq) >= c.cfg.ReadQueue {
		return false
	}
	c.rq = append(c.rq, &Request{Addr: addr, DAddr: c.mapper.Decode(addr), Arrive: now, Done: done})
	return true
}

// EnqueueWrite adds a writeback. Overflow beyond the write queue is
// buffered (never refused) to keep eviction handling simple.
func (c *Controller) EnqueueWrite(addr uint64, now int64) bool {
	r := &Request{Addr: addr, DAddr: c.mapper.Decode(addr), Write: true, Arrive: now}
	if len(c.wq) >= c.cfg.WriteQueue {
		c.overflow = append(c.overflow, r)
		return true
	}
	c.wq = append(c.wq, r)
	return true
}

// EnqueueControl submits an NDA launch packet: a write transaction to the
// rank's control registers that occupies the command/data channel like
// any host write (Section V). done fires when the write issues.
func (c *Controller) EnqueueControl(daddr dram.Addr, now int64, done func(int64)) {
	r := &Request{DAddr: daddr, Write: true, Arrive: now, Done: done}
	if len(c.wq) >= c.cfg.WriteQueue {
		c.overflow = append(c.overflow, r)
		return
	}
	c.wq = append(c.wq, r)
}

// QueueOccupancy returns current read/write queue lengths.
func (c *Controller) QueueOccupancy() (reads, writes int) {
	return len(c.rq), len(c.wq) + len(c.overflow)
}

// HostIssuedRank returns the rank the host issued any command to this
// cycle, or -1. Valid after Tick for the same cycle.
func (c *Controller) HostIssuedRank() int { return c.issuedRank }

// OldestReadRank implements the next-rank predictor input: the rank of
// the oldest outstanding read in this channel's transaction queue.
func (c *Controller) OldestReadRank() (rank int, ok bool) {
	if len(c.rq) == 0 {
		return 0, false
	}
	return c.rq[0].DAddr.Rank, true
}

// HasDemandFor reports whether any queued host request targets the given
// rank and bank (used to give host row commands priority over NDA row
// commands, Section III-B).
func (c *Controller) HasDemandFor(rank, flatBank int) bool {
	for _, r := range c.rq {
		if r.DAddr.Rank == rank && r.DAddr.GlobalBank(c.mem.Geom) == flatBank {
			return true
		}
	}
	for _, r := range c.wq {
		if r.DAddr.Rank == rank && r.DAddr.GlobalBank(c.mem.Geom) == flatBank {
			return true
		}
	}
	return false
}

// HasAnyDemandFor reports whether any queued request targets the rank.
func (c *Controller) HasAnyDemandFor(rank int) bool {
	for _, r := range c.rq {
		if r.DAddr.Rank == rank {
			return true
		}
	}
	for _, r := range c.wq {
		if r.DAddr.Rank == rank {
			return true
		}
	}
	return false
}

// NextEvent returns the earliest DRAM cycle >= now at which the
// controller can change state. With any request queued the controller
// must run every cycle (FR-FCFS re-evaluates the whole queue against
// per-bank timing each cycle); with all queues empty only the refresh
// deadline, when refresh is enabled, can wake it.
func (c *Controller) NextEvent(now int64) int64 {
	if len(c.rq) > 0 || len(c.wq) > 0 || len(c.overflow) > 0 {
		return now
	}
	if c.mem.T.REFI > 0 {
		if c.nextRefresh > now {
			return c.nextRefresh
		}
		return now
	}
	return dram.Never
}

// Tick advances the controller one DRAM cycle, issuing at most one
// command on the channel.
func (c *Controller) Tick(now int64) {
	c.issuedRank = -1
	c.issuedIsCol = false

	// Refresh scheduling (disabled when tREFI is zero, the paper's
	// configuration): every tREFI, close the due rank and issue REF.
	if c.mem.T.REFI > 0 && c.refresh(now) {
		return
	}

	// Refill the write queue from the overflow buffer.
	for len(c.overflow) > 0 && len(c.wq) < c.cfg.WriteQueue {
		c.wq = append(c.wq, c.overflow[0])
		c.overflow = c.overflow[1:]
	}

	// Write-drain mode hysteresis.
	if !c.drain && len(c.wq) >= c.cfg.DrainHigh {
		c.drain = true
		c.Drains++
	}
	if c.drain && len(c.wq) <= c.cfg.DrainLow {
		c.drain = false
	}

	useWrites := c.drain || (len(c.rq) == 0 && len(c.wq) > 0)
	if useWrites {
		if c.schedule(c.wq, now, true) {
			return
		}
		// Fall through: if no write can issue, try reads anyway.
		c.schedule(c.rq, now, false)
		return
	}
	if c.schedule(c.rq, now, false) {
		return
	}
	// Opportunistic writes when no read can make progress.
	c.schedule(c.wq, now, true)
}

// schedule applies FR-FCFS to the given queue: first a ready row-hit
// column command in arrival order, then a row command (ACT or PRE) for
// the oldest request per bank. Returns true if a command issued.
func (c *Controller) schedule(q []*Request, now int64, writes bool) bool {
	// Pass 1: ready column commands (row hits).
	for i, r := range q {
		row, open := c.mem.OpenRow(r.DAddr)
		if !open || row != r.DAddr.Row {
			continue
		}
		cmd := dram.CmdRD
		if writes {
			cmd = dram.CmdWR
		}
		if !c.mem.CanIssue(cmd, r.DAddr, now, false) {
			continue
		}
		c.issueColumn(cmd, r, i, now, writes)
		return true
	}
	// Pass 2: row commands for the oldest request in each conflicting
	// bank, in arrival order.
	c.seenGen++
	for _, r := range q {
		bankKey := r.DAddr.Rank*c.mem.Geom.BanksPerRank() + r.DAddr.GlobalBank(c.mem.Geom)
		if c.seen[bankKey] == c.seenGen {
			continue
		}
		c.seen[bankKey] = c.seenGen
		row, open := c.mem.OpenRow(r.DAddr)
		if open && row == r.DAddr.Row {
			continue // column blocked only by timing; wait
		}
		if open {
			// Conflict: precharge unless an earlier request still
			// wants the open row.
			if c.rowWanted(r.DAddr, row) {
				continue
			}
			if c.mem.CanIssue(dram.CmdPRE, r.DAddr, now, false) {
				c.mem.Issue(dram.CmdPRE, r.DAddr, now, false)
				c.PresIssued++
				c.markRowCmd(r.DAddr, now)
				return true
			}
			continue
		}
		if c.mem.CanIssue(dram.CmdACT, r.DAddr, now, false) {
			c.mem.Issue(dram.CmdACT, r.DAddr, now, false)
			c.ActsIssued++
			c.markRowCmd(r.DAddr, now)
			return true
		}
	}
	return false
}

// rowWanted reports whether any queued request still targets the open row
// of the same bank (open-page policy keeps it open for them).
func (c *Controller) rowWanted(a dram.Addr, openRow int) bool {
	match := func(r *Request) bool {
		return r.DAddr.Rank == a.Rank && r.DAddr.BankGroup == a.BankGroup &&
			r.DAddr.Bank == a.Bank && r.DAddr.Row == openRow
	}
	for _, r := range c.rq {
		if match(r) {
			return true
		}
	}
	for _, r := range c.wq {
		if match(r) {
			return true
		}
	}
	return false
}

func (c *Controller) issueColumn(cmd dram.Command, r *Request, idx int, now int64, write bool) {
	c.mem.Issue(cmd, r.DAddr, now, false)
	c.issuedRank = r.DAddr.Rank
	c.issuedIsCol = true
	var dataStart, dataEnd int64
	if write {
		c.WritesIssued++
		dataStart = now + int64(c.mem.T.CWL)
		dataEnd = now + c.mem.WriteLatency()
		c.wq = append(c.wq[:idx], c.wq[idx+1:]...)
		if r.Done != nil {
			r.Done(dataEnd)
		}
	} else {
		c.ReadsIssued++
		dataStart = now + int64(c.mem.T.CL)
		dataEnd = now + c.mem.ReadLatency()
		c.ReadLatencySum += dataEnd - r.Arrive
		c.rq = append(c.rq[:idx], c.rq[idx+1:]...)
		if r.Done != nil {
			r.Done(dataEnd)
		}
	}
	// The rank counts as host-busy during the data burst; the CAS-wait
	// window remains available to NDA column commands.
	c.IdleHists[r.DAddr.Rank].MarkBusy(dataStart, dataEnd)
}

// markRowCmd records host activity on a rank for a row command.
func (c *Controller) markRowCmd(a dram.Addr, now int64) {
	c.issuedRank = a.Rank
	c.IdleHists[a.Rank].MarkBusy(now, now+1)
}

// refresh issues PREs and REF for ranks whose tREFI deadline passed.
// Returns true if it consumed this cycle's command slot. Note: with
// refresh enabled and NDAs active on the same rank, quiescing can take
// longer because NDA activates race the controller's precharges; the
// paper's configuration (and every experiment here) runs refresh
// disabled, matching Table II.
func (c *Controller) refresh(now int64) bool {
	if now < c.nextRefresh {
		return false
	}
	rank := int(now/int64(c.mem.T.REFI)) % c.mem.Geom.Ranks
	a := dram.Addr{Channel: c.channel, Rank: rank}
	if c.mem.CanIssue(dram.CmdREF, a, now, false) {
		c.mem.Issue(dram.CmdREF, a, now, false)
		c.markRowCmd(a, now)
		c.nextRefresh = now + int64(c.mem.T.REFI)
		c.Refreshes++
		return true
	}
	// Close any open bank in the rank so REF becomes legal.
	for bg := 0; bg < c.mem.Geom.BankGroups; bg++ {
		for bk := 0; bk < c.mem.Geom.BanksPerGroup; bk++ {
			b := dram.Addr{Channel: c.channel, Rank: rank, BankGroup: bg, Bank: bk}
			if _, open := c.mem.OpenRow(b); open && c.mem.CanIssue(dram.CmdPRE, b, now, false) {
				c.mem.Issue(dram.CmdPRE, b, now, false)
				c.PresIssued++
				c.markRowCmd(b, now)
				return true
			}
		}
	}
	return true // hold the slot until the rank quiesces
}

// FinalizeStats closes the idle histograms at simulation end.
func (c *Controller) FinalizeStats(end int64) {
	for i := range c.IdleHists {
		c.IdleHists[i].Finalize(end)
	}
}
