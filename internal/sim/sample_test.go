package sim

import (
	"fmt"
	"math"
	"testing"

	"chopim/internal/ndart"
	"chopim/internal/sample"
)

// sampleSchedule is the test schedule for CI-coverage runs: enough
// windows to average out the per-window IPC fluctuation these short
// synthetic workloads show (32 windows puts the standard error of the
// mean well under 1% for every golden), while still fast-forwarding
// roughly half the ~100k-cycle span. Real sweeps use the default
// schedule (FF 20000), whose detailed fraction is far smaller; the
// tests trade speedup for tight estimates so the 3% bound is
// meaningful at test-sized budgets.
func sampleSchedule() SampleConfig {
	return SampleConfig{Windows: 32, Detail: 1000, Warmup: 600, FF: 1500, Prime: 2000}
}

// exactHostIPC measures host IPC on the exact path over precisely the
// span the sampled schedule estimates — warm scfg.Prime cycles, then
// measure to scfg.TotalCycles() — relaunching NDA work continuously as
// goldenStats does. Matching spans makes the comparison pure: the only
// difference between the two estimates is sampling plus fast-forward
// infidelity, not which phase of the (short, not fully steady) golden
// budget each one averaged over.
func exactHostIPC(t *testing.T, w ffWorkload, scfg SampleConfig) float64 {
	t.Helper()
	scfg = scfg.WithDefaults()
	s, err := New(w.cfg())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var it func() (*ndart.Handle, error)
	if w.app != nil {
		if it, err = w.app(s); err != nil {
			t.Fatal(err)
		}
	}
	var h *ndart.Handle
	relaunch := func() {
		if it == nil {
			return
		}
		if h == nil || h.Done() {
			if h, err = it(); err != nil {
				t.Fatal(err)
			}
		}
	}
	run := func(cycles int64) {
		relaunch()
		end := s.Now() + cycles
		for s.Now() < end {
			s.StepFast(end)
			relaunch()
		}
	}
	run(scfg.Prime)
	s.BeginMeasurement()
	run(scfg.TotalCycles() - scfg.Prime)
	return s.HostIPC()
}

// runSampled builds a fresh system for w and drives one sampled run,
// relaunching NDA work at window boundaries (the only quiescent points
// the sampled schedule exposes).
func runSampled(t *testing.T, w ffWorkload, scfg SampleConfig, muts ...func(*Config)) (*System, *sample.Result) {
	t.Helper()
	cfg := w.cfg()
	for _, mut := range muts {
		mut(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	var it func() (*ndart.Handle, error)
	if w.app != nil {
		if it, err = w.app(s); err != nil {
			t.Fatal(err)
		}
	}
	var h *ndart.Handle
	relaunch := func() error {
		if it == nil {
			return nil
		}
		if h == nil || h.Done() {
			var lerr error
			if h, lerr = it(); lerr != nil {
				return lerr
			}
		}
		return nil
	}
	if err := relaunch(); err != nil {
		t.Fatal(err)
	}
	res, err := s.RunSampledFunc(scfg, func(int) error { return relaunch() })
	if err != nil {
		t.Fatal(err)
	}
	return s, res
}

// TestSampledCICoverage is the validation centerpiece of sampled mode:
// for every golden workload, the exact host IPC must fall inside the
// sampled run's reported confidence interval, with a point-estimate
// relative error of at most 3%.
func TestSampledCICoverage(t *testing.T) {
	for _, w := range ffWorkloads() {
		t.Run(w.name, func(t *testing.T) {
			exact := exactHostIPC(t, w, sampleSchedule())
			_, res := runSampled(t, w, sampleSchedule())
			m := res.HostIPC
			if exact == 0 {
				if m.Mean != 0 {
					t.Errorf("host-idle workload: sampled IPC %v, want 0", m.Mean)
				}
				return
			}
			if !m.Contains(exact) {
				t.Errorf("exact IPC %.6f outside sampled CI %.6f±%.6f", exact, m.Mean, m.CI)
			}
			if re := m.RelErr(exact); re > 0.03 {
				t.Errorf("relative error %.4f > 0.03 (exact %.6f, sampled %.6f)", re, exact, m.Mean)
			}
			t.Logf("exact %.6f  sampled %.6f±%.6f  relerr %.4f  (%d detailed / %d total cycles)",
				exact, m.Mean, m.CI, m.RelErr(exact), res.DetailCycles, res.TotalCycles)
		})
	}
}

// TestSampledWarmStateFidelity compares microarchitectural warm state —
// LLC occupancy, open DRAM banks, retired instructions — after an exact
// run of N cycles against a prime+fast-forward to the same cycle. The
// functional warm path is approximate by design (frozen in-flight
// misses, untrained prefetcher), so the check is a band, not equality:
// it catches a warm path that stops warming, not one that is off by an
// eviction or two.
func TestSampledWarmStateFidelity(t *testing.T) {
	const prime, ff = 2000, 10000
	for _, w := range ffWorkloads() {
		if w.app != nil {
			continue // host-driven warm state only
		}
		t.Run(w.name, func(t *testing.T) {
			exact, err := New(w.cfg())
			if err != nil {
				t.Fatal(err)
			}
			defer exact.Close()
			if err := exact.RunFast(prime + ff); err != nil {
				t.Fatal(err)
			}

			ffd, err := New(w.cfg())
			if err != nil {
				t.Fatal(err)
			}
			defer ffd.Close()
			st := newSampleState(ffd)
			st.beginSegment()
			if err := ffd.RunFast(prime); err != nil {
				t.Fatal(err)
			}
			st.updateRates()
			ffd.jumpFF(ff, st)

			if exact.Now() != ffd.Now() {
				t.Fatalf("clock mismatch: exact %d, ff %d", exact.Now(), ffd.Now())
			}
			within := func(what string, a, b, tol float64) {
				t.Helper()
				if a == 0 && b == 0 {
					return
				}
				if d := math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b)); d > tol {
					t.Errorf("%s diverged: exact %.0f, ff %.0f (rel %.2f > %.2f)", what, a, b, d, tol)
				}
			}
			within("LLC valid lines",
				float64(exact.Hier.LLC().ValidLines()), float64(ffd.Hier.LLC().ValidLines()), 0.30)
			within("open banks",
				float64(exact.Mem.OpenBanks()), float64(ffd.Mem.OpenBanks()), 0.50)
			var exRet, ffRet int64
			for i := range exact.Cores {
				exRet += exact.Cores[i].Retired
				ffRet += ffd.Cores[i].Retired
			}
			within("retired instructions", float64(exRet), float64(ffRet), 0.30)
			if ffd.Hier.LLC().ValidLines() == 0 {
				t.Error("fast-forward warmed no LLC lines at all")
			}
		})
	}
}

// TestRunSampledDeterminism pins the sampled path's determinism claim:
// a fixed-seed config yields byte-identical end states and results
// across repeated runs and across SimWorkers counts. Fast-forward
// consumes no randomness and detailed segments are bit-exact per
// worker count, so nothing may vary.
func TestRunSampledDeterminism(t *testing.T) {
	for _, w := range ffWorkloads() {
		if w.name != "mixed-mix1-dot" && w.name != "host-stall-heavy" && w.name != "mixed-mix3-copy-shared" {
			continue
		}
		t.Run(w.name, func(t *testing.T) {
			var want string
			for _, workers := range []int{1, 1, 2, 4} {
				s, res := runSampled(t, w, sampleSchedule(), func(cfg *Config) { cfg.SimWorkers = workers })
				got := snapshot(s) + "\n" + res.String()
				if want == "" {
					want = got
					continue
				}
				if got != want {
					t.Errorf("workers=%d diverged:\n got:  %s\n want: %s", workers, got, want)
				}
			}
		})
	}
}

// TestRunSampledRejectsVerifyFSM: the host-side replica FSM predicts
// NDA behavior from timing state the functional drain does not advance,
// so sampled mode must refuse such configs instead of tripping the
// replica panic mid-run.
func TestRunSampledRejectsVerifyFSM(t *testing.T) {
	cfg := Default(1)
	cfg.NDA.VerifyFSM = true
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.RunSampled(SampleConfig{}); err == nil {
		t.Fatal("RunSampled accepted a VerifyFSM config")
	}
}

// TestSampledSpeedupShape sanity-checks the accounting the bench gate
// relies on: the default schedule fast-forwards the large majority of
// its span.
func TestSampledSpeedupShape(t *testing.T) {
	c := SampleConfig{}.WithDefaults()
	detail := c.DetailedCycles()
	if ratio := float64(c.TotalCycles()) / float64(detail); ratio < 10 {
		t.Errorf("default schedule covers only %.1fx its detailed cycles, want >= 10x", ratio)
	}
	_, res := runSampled(t, ffWorkload{name: "host", cfg: func() Config { return Default(0) }},
		SampleConfig{Windows: 2, Detail: 200, Warmup: 100, FF: 4000, Prime: 500})
	if got := res.TotalCycles; got != 500+2*(4000+100+200) {
		t.Errorf("TotalCycles = %d", got)
	}
	if got := res.DetailCycles; got != 500+2*300 {
		t.Errorf("DetailCycles = %d", got)
	}
	if got := res.FFCycles; got != 2*4000 {
		t.Errorf("FFCycles = %d", got)
	}
	if fmt.Sprintf("%v", res.HostIPC.PerWindow) == "" {
		t.Error("no per-window observations recorded")
	}
}
