#!/usr/bin/env bash
# bench.sh — run the host-path benchmarks and emit a machine-readable
# snapshot of the perf trajectory (BENCH_PR2.json).
#
# Usage: scripts/bench.sh [benchtime] [output.json]
#   benchtime    go test -benchtime value (default 5x; CI smoke uses 1x)
#   output.json  destination (default BENCH_PR2.json in the repo root)
#
# The script fails if BenchmarkMixedHostNDA reports any steady-state
# allocations in the tick loop (the allocation-free contract also pinned
# by TestTickLoopAllocFree).
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${1:-5x}"
OUT="${2:-BENCH_PR2.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench 'BenchmarkMixedHostNDA$|BenchmarkFig11BankPartitioning$' \
    -benchtime "$BENCHTIME" -count 1 . | tee "$RAW"

awk -v benchtime="$BENCHTIME" -v rev="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" '
/^cpu:/ { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    sub(/^Benchmark/, "", name)
    ns = $3
    allocs = "null"
    for (i = 4; i <= NF; i++) {
        if ($(i) == "allocs/op") allocs = $(i - 1)
    }
    results[name] = "{\"ns_per_op\": " ns ", \"allocs_per_op\": " allocs "}"
    if (name == "MixedHostNDA" && allocs != "null" && allocs + 0 != 0) {
        printf "bench.sh: FAIL: MixedHostNDA steady-state tick loop allocates (%s allocs/op, want 0)\n", allocs > "/dev/stderr"
        bad = 1
    }
    order[n++] = name
}
END {
    if (n == 0) { print "bench.sh: no benchmark results parsed" > "/dev/stderr"; exit 1 }
    printf "{\n"
    printf "  \"pr\": 2,\n"
    printf "  \"description\": \"host-traffic hot path: incremental FR-FCFS + cached DRAM horizons + allocation-free tick loop\",\n"
    printf "  \"git\": \"%s\",\n", rev
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"baseline_main\": {\n"
    printf "    \"note\": \"measured at PR2 on main (c3a05e4), same machine/flags, benchtime 5x\",\n"
    printf "    \"MixedHostNDA\": {\"ns_per_op\": 344651834, \"allocs_per_op\": 1321008},\n"
    printf "    \"Fig11BankPartitioning\": {\"ns_per_op\": 2055239840, \"allocs_per_op\": null}\n"
    printf "  },\n"
    printf "  \"benchmarks\": {\n"
    for (i = 0; i < n; i++) {
        printf "    \"%s\": %s%s\n", order[i], results[order[i]], (i < n - 1 ? "," : "")
    }
    printf "  }\n"
    printf "}\n"
    exit bad
}' "$RAW" > "$OUT"

echo "bench.sh: wrote $OUT"
