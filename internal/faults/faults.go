// Package faults is the fault-injection registry behind the robustness
// tests: named injection sites in the simulator and the experiment
// runner consult it, and tests (or the hidden -inject CLI flag) arm
// hooks that corrupt values, return transient errors, or panic at a
// chosen point. The registry exists so the detectors built in this
// layer — the livelock watchdog, point quarantine, retry-with-backoff —
// are proven to FIRE, not merely to exist.
//
// Disarmed cost is one atomic load per consultation (sites are
// consulted per fast-path wake, not per cycle, and the hot benchmarks
// pin the zero-allocs contract with the registry present); tests arm a
// hook, run, and disarm with the returned closure.
package faults

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"

	"chopim/internal/dram"
)

// Injection sites. A site name couples the arming side (tests, ArmSpec)
// to the consulting side (sim, experiments) without a package
// dependency between them.
const (
	// SimNextEvent adjusts the fast path's next-event wake bound before
	// StepFast consumes it. Returning dram.Never while work is pending
	// simulates the stuck-horizon bug class the livelock detector exists
	// for.
	SimNextEvent = "sim.next-event"
	// RunnerPoint fires with each sweep point's index before the point
	// simulates; a hook that panics simulates a crashing point.
	RunnerPoint = "experiments.point"
	// RunnerPointErr may return an error for a sweep point's index;
	// returning a transient error exercises the retry path.
	RunnerPointErr = "experiments.point-err"
	// CkptWrite mutates a checkpoint file's bytes as they are written;
	// truncating them simulates a torn write, flipping a bit simulates
	// silent media corruption. Both must surface as a clean
	// miss-and-recompute at resume time, never a half-restored system.
	CkptWrite = "experiments.ckpt-write"
	// CkptWritten fires with the count of completed checkpoint writes
	// after each one lands; the die-after-ckpt spec SIGKILLs the process
	// here, the crash-resume harness's injection point.
	CkptWritten = "experiments.ckpt-written"
)

var (
	// armed counts installed hooks: the zero check is the only cost a
	// disarmed consultation pays.
	armed atomic.Int32

	mu      sync.Mutex
	adjusts = map[string]func(int64) int64{}
	errs    = map[string]func(int64) error{}
	mutates = map[string]func([]byte) []byte{}
)

// Active reports whether any hook is armed (one atomic load).
func Active() bool { return armed.Load() != 0 }

// ArmAdjust installs a value-adjusting hook at site and returns its
// disarm closure. The hook may panic (panic-injection sites).
func ArmAdjust(site string, fn func(int64) int64) (disarm func()) {
	mu.Lock()
	adjusts[site] = fn
	mu.Unlock()
	armed.Add(1)
	return func() {
		mu.Lock()
		delete(adjusts, site)
		mu.Unlock()
		armed.Add(-1)
	}
}

// ArmErr installs an error-returning hook at site and returns its
// disarm closure.
func ArmErr(site string, fn func(int64) error) (disarm func()) {
	mu.Lock()
	errs[site] = fn
	mu.Unlock()
	armed.Add(1)
	return func() {
		mu.Lock()
		delete(errs, site)
		mu.Unlock()
		armed.Add(-1)
	}
}

// ArmMutate installs a byte-mutating hook at site and returns its
// disarm closure. The hook receives the bytes about to be written and
// returns what actually lands on disk (truncated, bit-flipped, ...).
func ArmMutate(site string, fn func([]byte) []byte) (disarm func()) {
	mu.Lock()
	mutates[site] = fn
	mu.Unlock()
	armed.Add(1)
	return func() {
		mu.Lock()
		delete(mutates, site)
		mu.Unlock()
		armed.Add(-1)
	}
}

// DisarmAll removes every installed hook. Primarily for tests arming
// hooks through ArmSpec, which returns no individual disarm closures.
func DisarmAll() {
	mu.Lock()
	n := len(adjusts) + len(errs) + len(mutates)
	adjusts = map[string]func(int64) int64{}
	errs = map[string]func(int64) error{}
	mutates = map[string]func([]byte) []byte{}
	mu.Unlock()
	armed.Add(-int32(n))
}

// Adjust passes v through the site's hook, or returns it unchanged when
// none is armed. Callers should guard with Active() to keep the
// disarmed path to a single atomic load.
func Adjust(site string, v int64) int64 {
	if armed.Load() == 0 {
		return v
	}
	mu.Lock()
	fn := adjusts[site]
	mu.Unlock()
	if fn == nil {
		return v
	}
	return fn(v)
}

// FireErr returns the site's injected error for v, or nil.
func FireErr(site string, v int64) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.Lock()
	fn := errs[site]
	mu.Unlock()
	if fn == nil {
		return nil
	}
	return fn(v)
}

// Mutate passes b through the site's hook, or returns it unchanged
// when none is armed. Callers should guard with Active() to keep the
// disarmed path to a single atomic load.
func Mutate(site string, b []byte) []byte {
	if armed.Load() == 0 {
		return b
	}
	mu.Lock()
	fn := mutates[site]
	mu.Unlock()
	if fn == nil {
		return b
	}
	return fn(b)
}

// InjectedError is the error ArmSpec's point-err hook returns. It
// reports Temporary() true, so the runner's transient classification
// retries it.
type InjectedError struct {
	Site  string
	Point int64
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faults: injected transient error at %s (point %d)", e.Site, e.Point)
}

// Temporary marks the injected failure retryable.
func (e *InjectedError) Temporary() bool { return true }

// ArmSpec arms hooks from a comma-separated CLI spec (the chopim
// -inject flag). Supported forms:
//
//	panic-point=K     panic when sweep point K runs
//	point-err=K:N     fail point K with a transient error N times
//	stuck-horizon=C   report Never as the wake bound once the bound
//	                  reaches cycle C (livelock injection)
//	ckpt-torn=K       truncate the Kth checkpoint write (torn write)
//	ckpt-badsum=K     flip a bit in the Kth checkpoint write (silent
//	                  corruption; the digest trailer must catch it)
//	die-after-ckpt=N  SIGKILL this process the moment the Nth
//	                  checkpoint write completes (crash-resume harness)
//
// Hooks armed through ArmSpec stay armed for the process lifetime.
func ArmSpec(spec string) error {
	for _, one := range strings.Split(spec, ",") {
		one = strings.TrimSpace(one)
		if one == "" {
			continue
		}
		name, arg, ok := strings.Cut(one, "=")
		if !ok {
			return fmt.Errorf("faults: spec %q missing '='", one)
		}
		switch name {
		case "panic-point":
			k, err := strconv.ParseInt(arg, 10, 64)
			if err != nil {
				return fmt.Errorf("faults: panic-point: %v", err)
			}
			ArmAdjust(RunnerPoint, func(v int64) int64 {
				if v == k {
					panic(fmt.Sprintf("faults: injected panic at point %d", k))
				}
				return v
			})
		case "point-err":
			ks, ns, ok := strings.Cut(arg, ":")
			if !ok {
				ns = "1"
				ks = arg
			}
			k, err := strconv.ParseInt(ks, 10, 64)
			if err != nil {
				return fmt.Errorf("faults: point-err: %v", err)
			}
			n, err := strconv.ParseInt(ns, 10, 64)
			if err != nil {
				return fmt.Errorf("faults: point-err: %v", err)
			}
			var left atomic.Int64
			left.Store(n)
			ArmErr(RunnerPointErr, func(v int64) error {
				if v == k && left.Add(-1) >= 0 {
					return &InjectedError{Site: RunnerPointErr, Point: v}
				}
				return nil
			})
		case "stuck-horizon":
			c, err := strconv.ParseInt(arg, 10, 64)
			if err != nil {
				return fmt.Errorf("faults: stuck-horizon: %v", err)
			}
			ArmAdjust(SimNextEvent, func(v int64) int64 {
				if v >= c {
					return dram.Never
				}
				return v
			})
		case "ckpt-torn":
			k, err := strconv.ParseInt(arg, 10, 64)
			if err != nil {
				return fmt.Errorf("faults: ckpt-torn: %v", err)
			}
			var seen atomic.Int64
			ArmMutate(CkptWrite, func(b []byte) []byte {
				if seen.Add(1) == k {
					return b[:len(b)/2]
				}
				return b
			})
		case "ckpt-badsum":
			k, err := strconv.ParseInt(arg, 10, 64)
			if err != nil {
				return fmt.Errorf("faults: ckpt-badsum: %v", err)
			}
			var seen atomic.Int64
			ArmMutate(CkptWrite, func(b []byte) []byte {
				if seen.Add(1) == k && len(b) > 0 {
					c := append([]byte(nil), b...)
					c[len(c)/2] ^= 0x40
					return c
				}
				return b
			})
		case "die-after-ckpt":
			n, err := strconv.ParseInt(arg, 10, 64)
			if err != nil {
				return fmt.Errorf("faults: die-after-ckpt: %v", err)
			}
			ArmAdjust(CkptWritten, func(v int64) int64 {
				if v >= n {
					// A real crash, not an exit: no deferred cleanup, no
					// atexit flushes. The checkpoint that just landed is
					// all a resume gets.
					syscall.Kill(os.Getpid(), syscall.SIGKILL)
				}
				return v
			})
		default:
			return fmt.Errorf("faults: unknown injection %q (want panic-point, point-err, stuck-horizon, ckpt-torn, ckpt-badsum, die-after-ckpt)", name)
		}
	}
	return nil
}
