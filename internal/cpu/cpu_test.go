package cpu

import (
	"fmt"
	"math/rand"
	"testing"

	"chopim/internal/cache"
)

// scriptTrace yields a fixed instruction sequence then repeats the last.
type scriptTrace struct {
	instrs []Instr
	i      int
}

func (s *scriptTrace) Next() Instr {
	if s.i < len(s.instrs) {
		in := s.instrs[s.i]
		s.i++
		return in
	}
	return Instr{}
}

type fakeBackend struct {
	dones []func(int64)
	full  bool
}

func (f *fakeBackend) EnqueueRead(addr uint64, done func(int64)) bool {
	if f.full {
		return false
	}
	f.dones = append(f.dones, done)
	return true
}
func (f *fakeBackend) EnqueueWrite(addr uint64) bool { return true }

type fixedClock struct{}

func (fixedClock) CPUOfDRAM(d int64) int64 { return d }

func newCoreWith(trace TraceSource) (*Core, *fakeBackend) {
	b := &fakeBackend{}
	h := cache.NewHierarchy(cache.DefaultHierarchyConfig(1), b, fixedClock{})
	return NewCore(0, DefaultConfig(), trace, h), b
}

func TestComputeIPCBounded(t *testing.T) {
	c, _ := newCoreWith(&scriptTrace{})
	for cyc := int64(0); cyc < 1000; cyc++ {
		c.Tick(cyc)
	}
	ipc := c.IPC()
	if ipc < 1 || ipc > float64(DefaultConfig().Width) {
		t.Errorf("compute-only IPC = %.2f, want within [1, %d]", ipc, DefaultConfig().Width)
	}
}

func TestSerializeLimitsILP(t *testing.T) {
	all := &scriptTrace{}
	c1, _ := newCoreWith(all)
	for cyc := int64(0); cyc < 2000; cyc++ {
		c1.Tick(cyc)
	}
	serial := &serTrace{}
	c2, _ := newCoreWith(serial)
	for cyc := int64(0); cyc < 2000; cyc++ {
		c2.Tick(cyc)
	}
	if c2.IPC() >= c1.IPC() {
		t.Errorf("fully-serialized IPC %.2f not below unconstrained %.2f", c2.IPC(), c1.IPC())
	}
	if c2.IPC() > 1.1 {
		t.Errorf("fully-serialized IPC %.2f, want ~1", c2.IPC())
	}
}

type serTrace struct{}

func (serTrace) Next() Instr { return Instr{Serialize: true} }

func TestLoadMissBlocksRetirement(t *testing.T) {
	tr := &scriptTrace{instrs: []Instr{{Mem: true, Addr: 0x5000}}}
	c, b := newCoreWith(tr)
	for cyc := int64(0); cyc < 50; cyc++ {
		c.Tick(cyc)
	}
	// The load is outstanding; ROB head blocked, but younger compute
	// instructions continue to fill the ROB.
	if len(b.dones) != 1 {
		t.Fatalf("expected 1 outstanding miss, got %d", len(b.dones))
	}
	retiredBefore := c.Retired
	if retiredBefore != 0 {
		t.Errorf("retired %d instructions past an incomplete load at ROB head", retiredBefore)
	}
	b.dones[0](60)
	for cyc := int64(50); cyc < 300; cyc++ {
		c.Tick(cyc)
	}
	if c.Retired == 0 {
		t.Error("no retirement after load completion")
	}
}

func TestMLPMultipleOutstandingLoads(t *testing.T) {
	var instrs []Instr
	for i := 0; i < 8; i++ {
		instrs = append(instrs, Instr{Mem: true, Addr: uint64(0x10000 + i*4096)})
	}
	tr := &scriptTrace{instrs: instrs}
	c, b := newCoreWith(tr)
	for cyc := int64(0); cyc < 10; cyc++ {
		c.Tick(cyc)
	}
	if len(b.dones) < 4 {
		t.Errorf("only %d overlapping misses; OoO core should expose MLP", len(b.dones))
	}
	_ = c
}

func TestResetStats(t *testing.T) {
	c, _ := newCoreWith(&scriptTrace{})
	for cyc := int64(0); cyc < 100; cyc++ {
		c.Tick(cyc)
	}
	c.ResetStats()
	if c.Retired != 0 || c.Cycles != 0 {
		t.Error("ResetStats did not clear counters")
	}
}

func TestIPCZeroBeforeRun(t *testing.T) {
	c, _ := newCoreWith(&scriptTrace{})
	if c.IPC() != 0 {
		t.Error("IPC nonzero before any cycle")
	}
}

// randTrace drives the soundness test with a deterministic pseudo-random
// mix of compute, serialize heads, loads, and stores over a small
// region, shaped to hit every blocking cause (MSHR probe stalls, LSQ
// saturation, ROB fill behind a pending head).
type randTrace struct{ rng *rand.Rand }

func (r *randTrace) Next() Instr {
	in := Instr{Serialize: r.rng.Float64() < 0.4}
	if r.rng.Float64() < 0.7 {
		in.Mem = true
		in.Write = r.rng.Float64() < 0.3
		in.Addr = uint64(r.rng.Intn(1 << 22))
	}
	return in
}

// coreState reduces the observable core state (everything but the cycle
// counter, which blocked ticks are defined to advance).
func coreState(c *Core) string {
	return fmt.Sprintf("ret=%d n=%d head=%d loads=%d stores=%d stall=%v probe=%v",
		c.Retired, c.n, c.head, c.loads, c.stores, c.hasStall, c.probeStall)
}

// TestNextEventNeverOvershoots single-steps a core against a scripted
// backend and asserts the NextEvent soundness contract: whenever
// NextEvent claims the next change lies at wake > now, ticking the core
// at now under unchanged external state must be a no-op (only Cycles
// advances), and the hierarchy must be left untouched (no enqueues, no
// counter movement — the side-effect-free Stall contract). Completions
// are injected at pseudo-random cycles between ticks, exactly where the
// memory system fires them; each one resets the claim via the dirty
// flag.
func TestNextEventNeverOvershoots(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := &fakeBackend{}
	h := cache.NewHierarchy(cache.DefaultHierarchyConfig(1), b, fixedClock{})
	c := NewCore(0, DefaultConfig(), &randTrace{rng: rand.New(rand.NewSource(11))}, h)

	pending := 0 // outstanding dones not yet fired
	for cyc := int64(0); cyc < 200_000; cyc++ {
		// Randomly toggle backend fullness and fire queued completions
		// between ticks. Both are external events: NextEvent's bound is
		// conditioned on external state staying put (the system layer
		// re-dispatches the core when it does not), so a change voids
		// this cycle's claim.
		externalChanged := false
		if full := rng.Float64() < 0.3; full != b.full {
			b.full = full
			externalChanged = true
		}
		for len(b.dones) > pending && rng.Float64() < 0.4 {
			b.dones[pending](cyc + int64(rng.Intn(40)))
			pending++
			externalChanged = true
		}
		w := c.NextEvent(cyc)
		if w < cyc {
			t.Fatalf("cycle %d: NextEvent returned past cycle %d", cyc, w)
		}
		before := coreState(c)
		enq := len(b.dones)
		// LLC misses are the canary for the Stall contract here (every
		// stalling probe misses all three levels; only the shared LLC
		// is reachable from this test's accessors).
		llcMisses := h.LLC().Misses
		c.Tick(cyc)
		if w > cyc && !externalChanged {
			if got := coreState(c); got != before {
				t.Fatalf("cycle %d: NextEvent claimed idle until %d but state changed:\n before: %s\n after:  %s",
					cyc, w, before, got)
			}
			if len(b.dones) != enq {
				t.Fatalf("cycle %d: claimed-idle tick enqueued a memory access", cyc)
			}
			if h.LLC().Misses != llcMisses {
				t.Fatalf("cycle %d: claimed-idle tick moved LLC miss counters (Stall contract violated)", cyc)
			}
		}
	}
	if c.Retired == 0 {
		t.Fatal("trace retired nothing; the soundness run exercised no progress")
	}
}
