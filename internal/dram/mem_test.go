package dram

import (
	"testing"
	"testing/quick"
)

func testMem(t *testing.T) *Mem {
	t.Helper()
	return New(DefaultGeometry(), DDR42400())
}

// issueASAP advances from cycle now until cmd is legal, issues it, and
// returns the issue cycle.
func issueASAP(t *testing.T, m *Mem, cmd Command, a Addr, now int64) int64 {
	t.Helper()
	for !m.CanIssue(cmd, a, now, false) {
		now++
		if now > 1<<20 {
			t.Fatalf("%v to %+v never became legal", cmd, a)
		}
	}
	m.Issue(cmd, a, now, false)
	return now
}

func TestGeometryCapacity(t *testing.T) {
	g := DefaultGeometry()
	if got, want := g.Capacity(), uint64(32)<<30; got != want {
		t.Errorf("Capacity() = %d, want %d", got, want)
	}
	// The paper's 2 MiB system-row example is for a 1 TiB system; the
	// 32 GiB baseline gives 512 KiB (2ch x 2rk x 16 banks x 8 KiB rows).
	if got, want := g.SystemRowBytes(), 512<<10; got != want {
		t.Errorf("SystemRowBytes() = %d, want %d (512KiB)", got, want)
	}
	if got, want := g.RowBytes(), 8<<10; got != want {
		t.Errorf("RowBytes() = %d, want %d", got, want)
	}
}

func TestGeometryValidate(t *testing.T) {
	g := DefaultGeometry()
	if err := g.Validate(); err != nil {
		t.Fatalf("default geometry invalid: %v", err)
	}
	bad := g
	bad.Ranks = 3
	if err := bad.Validate(); err == nil {
		t.Error("Validate() accepted non-power-of-two rank count")
	}
	bad = g
	bad.Channels = 0
	if err := bad.Validate(); err == nil {
		t.Error("Validate() accepted zero channels")
	}
}

func TestTimingValidate(t *testing.T) {
	tm := DDR42400()
	if err := tm.Validate(); err != nil {
		t.Fatalf("Table II timing invalid: %v", err)
	}
	bad := tm
	bad.CCDL = 2 // below CCDS
	if err := bad.Validate(); err == nil {
		t.Error("Validate() accepted tCCD_L < tCCD_S")
	}
	bad = tm
	bad.RC = 10
	if err := bad.Validate(); err == nil {
		t.Error("Validate() accepted tRC < tRAS")
	}
}

func TestActivateThenReadTiming(t *testing.T) {
	m := testMem(t)
	a := Addr{Row: 7, Col: 3}
	if !m.CanIssue(CmdACT, a, 0, false) {
		t.Fatal("ACT to idle bank refused at cycle 0")
	}
	m.Issue(CmdACT, a, 0, false)
	if m.CanIssue(CmdRD, a, int64(m.T.RCD)-1, false) {
		t.Error("RD allowed before tRCD")
	}
	if !m.CanIssue(CmdRD, a, int64(m.T.RCD), false) {
		t.Error("RD refused at exactly tRCD")
	}
	if m.CanIssue(CmdRD, Addr{Row: 8, Col: 0}, int64(m.T.RCD), false) {
		t.Error("RD to a different (closed) row allowed")
	}
}

func TestRowMissNeedsPrecharge(t *testing.T) {
	m := testMem(t)
	a := Addr{Row: 1}
	m.Issue(CmdACT, a, 0, false)
	b := Addr{Row: 2}
	if m.CanIssue(CmdACT, b, 100, false) {
		t.Fatal("ACT allowed while conflicting row open (bank conflict)")
	}
	if m.CanIssue(CmdPRE, a, int64(m.T.RAS)-1, false) {
		t.Error("PRE allowed before tRAS")
	}
	m.Issue(CmdPRE, a, int64(m.T.RAS), false)
	preDone := int64(m.T.RAS + m.T.RP)
	if m.CanIssue(CmdACT, b, preDone-1, false) {
		t.Error("ACT allowed before tRP elapsed")
	}
	if !m.CanIssue(CmdACT, b, preDone, false) {
		t.Error("ACT refused after tRP")
	}
}

func TestColumnToColumnSpacing(t *testing.T) {
	m := testMem(t)
	same := Addr{BankGroup: 0, Bank: 0, Row: 0, Col: 0}
	sameBG := Addr{BankGroup: 0, Bank: 1, Row: 0, Col: 0}
	diffBG := Addr{BankGroup: 1, Bank: 0, Row: 0, Col: 0}
	now := int64(0)
	for _, a := range []Addr{same, sameBG, diffBG} {
		now = issueASAP(t, m, CmdACT, a, now)
	}
	start := now + int64(m.T.RCD+m.T.FAW) // safely past activation constraints
	m.Issue(CmdRD, same, start, false)

	if m.CanIssue(CmdRD, sameBG, start+int64(m.T.CCDL)-1, false) {
		t.Error("same-bank-group RD allowed before tCCD_L")
	}
	if !m.CanIssue(CmdRD, sameBG, start+int64(m.T.CCDL), false) {
		t.Error("same-bank-group RD refused at tCCD_L")
	}
	if m.CanIssue(CmdRD, diffBG, start+int64(m.T.CCDS)-1, false) {
		t.Error("cross-bank-group RD allowed before tCCD_S")
	}
	if !m.CanIssue(CmdRD, diffBG, start+int64(m.T.CCDS), false) {
		t.Error("cross-bank-group RD refused at tCCD_S")
	}
}

func TestWriteToReadTurnaround(t *testing.T) {
	m := testMem(t)
	w := Addr{BankGroup: 0, Row: 0}
	rSame := Addr{BankGroup: 0, Bank: 1, Row: 0}
	rDiff := Addr{BankGroup: 1, Row: 0}
	now := int64(0)
	for _, a := range []Addr{w, rSame, rDiff} {
		now = issueASAP(t, m, CmdACT, a, now)
	}
	start := now + int64(m.T.RCD+m.T.FAW)
	m.Issue(CmdWR, w, start, false)

	long := start + int64(m.T.WriteToReadSameBG())
	short := start + int64(m.T.WriteToReadDiffBG())
	if m.CanIssue(CmdRD, rSame, long-1, false) {
		t.Error("same-BG read allowed inside tWTR_L window")
	}
	if !m.CanIssue(CmdRD, rSame, long, false) {
		t.Error("same-BG read refused after tWTR_L window")
	}
	if m.CanIssue(CmdRD, rDiff, short-1, false) {
		t.Error("cross-BG read allowed inside tWTR_S window")
	}
	if !m.CanIssue(CmdRD, rDiff, short, false) {
		t.Error("cross-BG read refused after tWTR_S window")
	}
}

func TestReadToWriteTurnaround(t *testing.T) {
	m := testMem(t)
	r := Addr{BankGroup: 0, Row: 0}
	w := Addr{BankGroup: 1, Row: 0}
	m.Issue(CmdACT, r, 0, false)
	issueASAP(t, m, CmdACT, w, int64(m.T.RRDS))
	start := int64(m.T.RCD + m.T.FAW)
	m.Issue(CmdRD, r, start, false)
	rtw := start + int64(m.T.ReadToWrite())
	if m.CanIssue(CmdWR, w, rtw-1, false) {
		t.Error("write allowed inside read-to-write turnaround")
	}
	if !m.CanIssue(CmdWR, w, rtw, false) {
		t.Error("write refused after read-to-write turnaround")
	}
}

func TestFourActivationWindow(t *testing.T) {
	m := testMem(t)
	var now int64
	for i := 0; i < 4; i++ {
		a := Addr{BankGroup: i, Row: 0}
		for !m.CanIssue(CmdACT, a, now, false) {
			now++
		}
		m.Issue(CmdACT, a, now, false)
	}
	fifth := Addr{BankGroup: 0, Bank: 1, Row: 0}
	var fifthAt int64
	for fifthAt = now; !m.CanIssue(CmdACT, fifth, fifthAt, false); fifthAt++ {
	}
	// The fifth ACT must wait for tFAW after the first.
	if fifthAt < int64(m.T.FAW) {
		t.Errorf("fifth ACT issued at %d, before tFAW=%d elapsed", fifthAt, m.T.FAW)
	}
}

func TestRankSwitchPenaltyOnChannelBus(t *testing.T) {
	m := testMem(t)
	r0 := Addr{Rank: 0, Row: 0}
	r1 := Addr{Rank: 1, Row: 0}
	m.Issue(CmdACT, r0, 0, false)
	m.Issue(CmdACT, r1, 0, false) // different rank: no tRRD interaction
	start := int64(m.T.RCD + m.T.FAW)
	m.Issue(CmdRD, r0, start, false)

	// Same command spacing cross-rank must respect BL + tRTRS on the bus.
	minGap := int64(m.T.BL + m.T.RTRS)
	if m.CanIssue(CmdRD, r1, start+minGap-1, false) {
		t.Error("cross-rank RD allowed without tRTRS bus gap")
	}
	if !m.CanIssue(CmdRD, r1, start+minGap, false) {
		t.Error("cross-rank RD refused after tRTRS bus gap")
	}
	// An internal (NDA) access to the other rank sees no bus constraint.
	if !m.CanIssue(CmdRD, r1, start+int64(m.T.CCDS), true) {
		t.Error("internal RD to other rank blocked by channel bus")
	}
}

func TestInternalAccessSharesRankState(t *testing.T) {
	m := testMem(t)
	a := Addr{Row: 0}
	b := Addr{BankGroup: 1, Row: 0}
	m.Issue(CmdACT, a, 0, false)
	issueASAP(t, m, CmdACT, b, int64(m.T.RRDS))
	start := int64(m.T.RCD + m.T.FAW)
	// NDA write then host read on the same rank: tWTR applies.
	m.Issue(CmdWR, a, start, true)
	hostRead := start + int64(m.T.WriteToReadDiffBG())
	if m.CanIssue(CmdRD, b, hostRead-1, false) {
		t.Error("host read ignored NDA write-to-read turnaround")
	}
	if !m.CanIssue(CmdRD, b, hostRead, false) {
		t.Error("host read blocked past NDA turnaround window")
	}
	if m.Counts().NDAWR != 1 || m.Counts().WR != 0 {
		t.Errorf("command accounting wrong: NDAWR=%d WR=%d", m.Counts().NDAWR, m.Counts().WR)
	}
}

func TestRefresh(t *testing.T) {
	tm := DDR42400()
	tm.REFI = 9360
	tm.RFC = 420
	m := New(DefaultGeometry(), tm)
	a := Addr{Row: 0}
	if !m.CanIssue(CmdREF, a, 0, false) {
		t.Fatal("REF refused on idle rank")
	}
	m.Issue(CmdREF, a, 0, false)
	if m.CanIssue(CmdACT, a, int64(tm.RFC)-1, false) {
		t.Error("ACT allowed during tRFC")
	}
	if !m.CanIssue(CmdACT, a, int64(tm.RFC), false) {
		t.Error("ACT refused after tRFC")
	}
	m.Issue(CmdACT, a, int64(tm.RFC), false)
	if m.CanIssue(CmdREF, a, int64(tm.RFC)+1, false) {
		t.Error("REF allowed with a bank open")
	}
}

func TestIssueIllegalPanics(t *testing.T) {
	m := testMem(t)
	defer func() {
		if recover() == nil {
			t.Error("Issue of illegal command did not panic")
		}
	}()
	m.Issue(CmdRD, Addr{Row: 0}, 0, false) // bank closed
}

// TestTimingMonotonic property: once CanIssue turns true for a command on
// untouched state, it stays true at later cycles.
func TestTimingMonotonic(t *testing.T) {
	f := func(rowSeed uint8, gap uint8) bool {
		m := testMem(t)
		a := Addr{Row: int(rowSeed)}
		m.Issue(CmdACT, a, 0, false)
		first := int64(-1)
		for c := int64(0); c < 200; c++ {
			ok := m.CanIssue(CmdRD, a, c, false)
			if ok && first < 0 {
				first = c
			}
			if first >= 0 && !ok {
				return false
			}
		}
		return first == int64(m.T.RCD)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
