// SVRG collaboration (Section IV): train logistic regression where the
// host runs the tight inner loop and the NDAs summarize the full dataset
// into the variance-reduction correction term. Compares host-only,
// serialized accelerated, and the paper's delayed-update variant that
// overlaps both — reproducing Fig 15's trade-off on a scaled dataset.
package main

import (
	"fmt"
	"log"

	"chopim/internal/experiments"
	"chopim/internal/svrg"
)

func main() {
	scale := experiments.SVRGScale{N: 2048, D: 512, K: 10, Lambda: 1e-3}
	ds := svrg.Synthetic(scale.N, scale.D, scale.K, 7)
	opt := experiments.QuickOptions()

	// Phase times come from simulating the average-gradient kernel on
	// the 2x4 (8-NDA) machine and the host's measured stream bandwidth.
	timing, err := experiments.CalibrateTiming(scale, 4, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("calibrated on simulator: NDA summarize %.3f ms, host summarize %.3f ms, inner iter %.1f ns\n",
		1e3*timing.SummarizeNDA, 1e3*timing.SummarizeHost, 1e9*timing.InnerIter)

	optimum := svrg.Optimum(ds, scale.Lambda, 11)
	for _, m := range []struct {
		mode  svrg.Mode
		epoch int
		label string
	}{
		{svrg.HostOnly, scale.N, "host-only, epoch N"},
		{svrg.Accelerated, scale.N / 4, "NDA-accelerated, epoch N/4"},
		{svrg.DelayedUpdate, 0, "delayed update (parallel)"},
	} {
		pts := svrg.Run(ds, scale.Lambda, svrg.RunConfig{
			Mode: m.mode, Epoch: m.epoch, LR: 0.05, Momentum: 0.9,
			Outers: 12, Seed: 99, Timing: timing,
		})
		last := pts[len(pts)-1]
		fmt.Printf("%-28s after %6.2f ms: loss gap %.3e\n",
			m.label, 1e3*last.Seconds, last.Loss-optimum)
	}
}
