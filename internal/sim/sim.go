// Package sim composes the full simulated system of the paper's
// methodology section: multi-core host with cache hierarchy, per-channel
// FR-FCFS memory controllers, the DDR4 device model, the NDA engine, and
// the Chopim runtime, all advanced on the 1.2 GHz DRAM bus clock with
// cores credited 10/3 CPU cycles per DRAM cycle (4 GHz / 1.2 GHz).
package sim

import (
	"fmt"

	"chopim/internal/addrmap"
	"chopim/internal/cache"
	"chopim/internal/cpu"
	"chopim/internal/dram"
	"chopim/internal/mc"
	"chopim/internal/nda"
	"chopim/internal/ndart"
	"chopim/internal/osmem"
	"chopim/internal/workload"
)

// CPUCyclesPerDRAM expresses the 4 GHz : 1.2 GHz clock ratio as the
// rational 10/3.
const (
	cpuCredit  = 10
	cpuDivisor = 3
)

// DRAMHz is the DDR4-2400 bus clock.
const DRAMHz = 1.2e9

// Config assembles one system instance.
type Config struct {
	Geom   dram.Geometry
	Timing dram.Timing

	// Partitioned selects the proposed Fig 4b mapping with
	// ReservedBanks banks per rank set aside for the shared region.
	Partitioned   bool
	ReservedBanks int

	// MixIndex selects the Table II host application mix; -1 disables
	// host traffic entirely.
	MixIndex int

	Core cpu.Config
	MC   mc.Config
	NDA  nda.Config

	// MaxBlocksPerInstr is the NDA vector-instruction granularity
	// (cache blocks per operand per instruction; 0 = unlimited).
	MaxBlocksPerInstr int
	// ModelLaunches models control-register launch packets.
	ModelLaunches bool

	Seed int64
}

// Default returns the paper's baseline configuration running the given
// mix with bank partitioning enabled.
func Default(mix int) Config {
	return Config{
		Geom:          dram.DefaultGeometry(),
		Timing:        dram.DDR42400(),
		Partitioned:   true,
		ReservedBanks: 1,
		MixIndex:      mix,
		Core:          cpu.DefaultConfig(),
		MC:            mc.DefaultConfig(),
		NDA:           nda.DefaultConfig(),
		ModelLaunches: true,
		Seed:          1,
	}
}

// System is one composed simulation instance.
type System struct {
	Cfg    Config
	Mem    *dram.Mem
	Mapper addrmap.Mapper
	OS     *osmem.OS
	MCs    []*mc.Controller
	Router *mc.Router
	Hier   *cache.Hierarchy
	Cores  []*cpu.Core
	NDA    *nda.Engine
	RT     *ndart.Runtime

	dramCycle int64
	cpuCycle  int64
	credit    int

	measStartDRAM int64
	measStartCPU  int64
	retiredAtMeas []int64
}

// New builds and wires a system.
func New(cfg Config) (*System, error) {
	base := addrmap.NewSkylakeLike(cfg.Geom)
	var mapper addrmap.Mapper = base
	if cfg.Partitioned {
		rb := cfg.ReservedBanks
		if rb <= 0 {
			rb = 1
		}
		mapper = addrmap.NewPartitioned(base, rb)
	}
	os, err := osmem.NewOS(mapper)
	if err != nil {
		return nil, err
	}
	s := &System{Cfg: cfg, Mem: dram.New(cfg.Geom, cfg.Timing), Mapper: mapper, OS: os}

	for ch := 0; ch < cfg.Geom.Channels; ch++ {
		s.MCs = append(s.MCs, mc.NewController(cfg.MC, s.Mem, mapper, ch))
	}
	s.Router = mc.NewRouter(s.MCs, mapper, func() int64 { return s.dramCycle })

	if cfg.MixIndex >= 0 {
		profs, err := workload.MixProfiles(cfg.MixIndex)
		if err != nil {
			return nil, err
		}
		s.Hier = cache.NewHierarchy(cache.DefaultHierarchyConfig(len(profs)), s.Router, s)
		for i, p := range profs {
			fp := p.Footprint
			region, err := os.AllocHost(fp)
			if err != nil {
				return nil, fmt.Errorf("sim: core %d footprint: %w", i, err)
			}
			gen := workload.NewGenerator(p, region, fp, cfg.Seed+int64(i)*7919)
			s.Cores = append(s.Cores, cpu.NewCore(i, cfg.Core, gen, s.Hier))
		}
	}

	s.NDA = nda.NewEngine(cfg.NDA, s.Mem, s.MCs)
	s.RT = ndart.New(os, s.NDA, s.MCs, func() int64 { return s.dramCycle })
	s.RT.MaxBlocksPerInstr = cfg.MaxBlocksPerInstr
	s.RT.ModelLaunches = cfg.ModelLaunches
	s.retiredAtMeas = make([]int64, len(s.Cores))
	return s, nil
}

// CPUOfDRAM implements cache.Clock.
func (s *System) CPUOfDRAM(d int64) int64 { return d * cpuCredit / cpuDivisor }

// Now returns the current DRAM cycle.
func (s *System) Now() int64 { return s.dramCycle }

// CPUNow returns the current CPU cycle.
func (s *System) CPUNow() int64 { return s.cpuCycle }

// Tick advances the system one DRAM cycle.
func (s *System) Tick() {
	now := s.dramCycle
	for _, c := range s.MCs {
		c.Tick(now)
	}
	s.NDA.Tick(now)
	s.RT.Tick(now)
	s.credit += cpuCredit
	for s.credit >= cpuDivisor {
		s.credit -= cpuDivisor
		for _, core := range s.Cores {
			core.Tick(s.cpuCycle)
		}
		s.cpuCycle++
	}
	s.dramCycle++
}

// Run advances n DRAM cycles one tick at a time (the reference path;
// RunFast must produce bit-identical state).
func (s *System) Run(n int64) {
	for i := int64(0); i < n; i++ {
		s.Tick()
	}
}

// NextEvent returns the earliest DRAM cycle >= Now() at which any
// component can change state. Every cycle in [Now(), NextEvent()) is
// provably idle: executing Tick there would neither issue a command nor
// mutate any observable counter, so the clock may jump over the window.
func (s *System) NextEvent() int64 {
	// Trace-driven cores always have work and force cycle-by-cycle
	// execution (each core's next CPU event is the current CPU cycle).
	for _, core := range s.Cores {
		if core.NextEvent(s.cpuCycle) <= s.cpuCycle {
			return s.dramCycle
		}
	}
	next := dram.Never
	for _, c := range s.MCs {
		if t := c.NextEvent(s.dramCycle); t < next {
			next = t
		}
	}
	if t := s.NDA.NextEvent(s.dramCycle); t < next {
		next = t
	}
	if t := s.RT.NextEvent(s.dramCycle); t < next {
		next = t
	}
	if next < s.dramCycle {
		next = s.dramCycle
	}
	return next
}

// skipIdle advances the clocks over k provably-idle DRAM cycles without
// ticking, reproducing Tick's CPU-credit arithmetic exactly.
func (s *System) skipIdle(k int64) {
	s.dramCycle += k
	total := int64(s.credit) + k*cpuCredit
	s.cpuCycle += total / cpuDivisor
	s.credit = int(total % cpuDivisor)
}

// StepFast advances the system to its next event (clamped to limit) and
// executes one Tick there if the event lies before limit. It always
// makes progress; state after reaching any cycle is bit-identical to
// ticking every cycle.
func (s *System) StepFast(limit int64) {
	s.NDA.SetFastForward(true)
	if next := s.NextEvent(); next > s.dramCycle {
		if next > limit {
			next = limit
		}
		s.skipIdle(next - s.dramCycle)
	}
	if s.dramCycle < limit {
		s.Tick()
	}
}

// RunFast advances n DRAM cycles, jumping the clock over idle windows.
func (s *System) RunFast(n int64) {
	end := s.dramCycle + n
	for s.dramCycle < end {
		s.StepFast(end)
	}
}

// Await runs until every handle completes, up to maxCycles additional
// cycles, fast-forwarding over idle windows (handles and the copier can
// only change state on a tick, so checking after each executed tick is
// exact). It returns an error on timeout.
func (s *System) Await(maxCycles int64, hs ...*ndart.Handle) error {
	deadline := s.dramCycle + maxCycles
	for s.dramCycle < deadline {
		done := true
		for _, h := range hs {
			if !h.Done() {
				done = false
				break
			}
		}
		if done && !s.RT.CopierBusy() {
			return nil
		}
		s.StepFast(deadline)
	}
	return fmt.Errorf("sim: Await timed out after %d cycles", maxCycles)
}

// BeginMeasurement snapshots counters at the end of warm-up.
func (s *System) BeginMeasurement() {
	s.measStartDRAM = s.dramCycle
	s.measStartCPU = s.cpuCycle
	for i, c := range s.Cores {
		s.retiredAtMeas[i] = c.Retired
	}
}

// HostIPC returns the aggregate (summed) host IPC since measurement
// began, matching the paper's per-figure host-performance metric.
func (s *System) HostIPC() float64 {
	cycles := s.cpuCycle - s.measStartCPU
	if cycles <= 0 {
		return 0
	}
	var retired int64
	for i, c := range s.Cores {
		retired += c.Retired - s.retiredAtMeas[i]
	}
	return float64(retired) / float64(cycles)
}

// MeasuredCycles returns DRAM cycles since measurement began.
func (s *System) MeasuredCycles() int64 { return s.dramCycle - s.measStartDRAM }

// Seconds converts DRAM cycles to seconds.
func Seconds(cycles int64) float64 { return float64(cycles) / DRAMHz }

// NDABandwidthGBs returns achieved NDA bandwidth in GB/s over the
// measurement window. Callers should snapshot engine bytes at
// BeginMeasurement time if NDAs ran during warm-up.
func (s *System) NDABandwidthGBs(bytes int64) float64 {
	sec := Seconds(s.MeasuredCycles())
	if sec <= 0 {
		return 0
	}
	return float64(bytes) / sec / 1e9
}

// NDAUtilization returns the fraction of host-idle rank bandwidth the
// NDAs captured during the measurement window: NDA data-bus cycles
// divided by cycles where ranks were not serving host traffic. busyHost
// and ndaBlocks are deltas over the window.
func (s *System) NDAUtilization(hostBusyCycles, ndaBlocks int64) float64 {
	ranks := int64(s.Cfg.Geom.Channels * s.Cfg.Geom.Ranks)
	idle := s.MeasuredCycles()*ranks - hostBusyCycles
	if idle <= 0 {
		return 0
	}
	used := ndaBlocks * int64(s.Cfg.Timing.BL)
	u := float64(used) / float64(idle)
	if u > 1 {
		u = 1
	}
	return u
}

// HostBusyCycles sums rank busy cycles across all controllers.
func (s *System) HostBusyCycles() int64 {
	var total int64
	for _, c := range s.MCs {
		for i := range c.IdleHists {
			total += c.IdleHists[i].BusyCycles()
		}
	}
	return total
}

// NDABlocks returns total NDA column accesses (read+write blocks).
func (s *System) NDABlocks() int64 {
	st := s.NDA.TotalStats()
	return st.BlocksRead + st.BlocksWritten
}
