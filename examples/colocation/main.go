// Colocation: the Fig 11 scenario. A host-only task mix shares memory
// devices with an NDA-accelerated task, with and without Chopim's bank
// partitioning. Partitioning confines interference to the shared banks
// and roughly doubles NDA throughput for read-intensive work.
package main

import (
	"fmt"
	"log"

	"chopim"
	"chopim/internal/apps"
)

func run(partitioned bool) (hostIPC, ndaUtil float64) {
	cfg := chopim.DefaultConfig(1)
	cfg.Partitioned = partitioned
	sys, err := chopim.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// Read-intensive NDA microbenchmark: DOT over 512 KiB per rank.
	app, err := apps.NewMicroPlaced(sys.RT, "dot", 128*1024, chopim.Private)
	if err != nil {
		log.Fatal(err)
	}
	h, err := app.Iterate()
	if err != nil {
		log.Fatal(err)
	}
	// Warm up, then measure with continuous relaunch; StepFast jumps
	// provably-idle cycles with identical counters to Tick.
	warmEnd := sys.Now() + 150_000
	for sys.Now() < warmEnd {
		sys.StepFast(warmEnd)
		if h.Done() {
			if h, err = app.Iterate(); err != nil {
				log.Fatal(err)
			}
		}
	}
	sys.BeginMeasurement()
	busy0, blocks0 := sys.HostBusyCycles(), sys.NDABlocks()
	measEnd := sys.Now() + 300_000
	for sys.Now() < measEnd {
		sys.StepFast(measEnd)
		if h.Done() {
			if h, err = app.Iterate(); err != nil {
				log.Fatal(err)
			}
		}
	}
	return sys.HostIPC(), sys.NDAUtilization(sys.HostBusyCycles()-busy0, sys.NDABlocks()-blocks0)
}

func main() {
	sharedIPC, sharedUtil := run(false)
	partIPC, partUtil := run(true)
	fmt.Println("colocated host mix1 + NDA DOT (read-intensive):")
	fmt.Printf("  shared banks:      host IPC %.2f, NDA uses %.0f%% of idle rank BW\n",
		sharedIPC, 100*sharedUtil)
	fmt.Printf("  partitioned banks: host IPC %.2f, NDA uses %.0f%% of idle rank BW\n",
		partIPC, 100*partUtil)
	fmt.Printf("  partitioning gain: %.2fx NDA bandwidth\n", partUtil/sharedUtil)
}
