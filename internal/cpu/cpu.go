// Package cpu models the host processor: simplified out-of-order cores
// with a reorder buffer, load/store queue, and configurable issue/retire
// width (Table II: 4 GHz, fetch/issue width 8, LSQ 64, ROB 224).
//
// Cores are trace-driven. The model captures what the paper's experiments
// depend on: memory-level parallelism bounded by ROB/LSQ/MSHR capacity,
// IPC sensitivity to memory latency and bandwidth, and bursty rank-level
// access patterns. It does not model x86 semantics.
package cpu

import (
	"chopim/internal/cache"
	"chopim/internal/dram"
)

// Instr is one trace instruction. Non-memory instructions execute in one
// cycle; memory instructions access the cache hierarchy. Serialize marks
// the head of a dependency chain: it cannot issue in the same cycle as
// earlier instructions, bounding compute ILP like real dependence chains
// do.
type Instr struct {
	Mem       bool
	Write     bool
	Serialize bool
	Addr      uint64
}

// TraceSource supplies an (endless) instruction stream.
type TraceSource interface {
	Next() Instr
}

// Config sizes one core.
type Config struct {
	Width   int // issue and retire width
	ROBSize int
	LSQSize int
}

// DefaultConfig returns the paper's core parameters.
func DefaultConfig() Config { return Config{Width: 8, ROBSize: 224, LSQSize: 64} }

// robEntry tracks one in-flight instruction.
type robEntry struct {
	doneAt  int64 // CPU cycle at which the instruction may retire
	pending bool  // completion arrives via callback
	isLoad  bool
	isStore bool
}

// Core is one out-of-order core.
type Core struct {
	ID    int
	cfg   Config
	trace TraceSource
	hier  *cache.Hierarchy

	rob      []robEntry
	doneFns  []func(cpuDone int64) // per-ROB-slot completion callbacks
	head, n  int
	stores   int // stores in flight (LSQ occupancy, with loads)
	loads    int
	stalled  Instr
	hasStall bool

	// Blocked-state tracking for the fast-forward machinery. After a
	// Tick that made zero progress (no retire, no issue) the core is
	// provably stuck until either its ROB head becomes retirable (wake,
	// a CPU cycle; Never while the head's miss is outstanding) or — when
	// probeStall is set — some other component mutates hierarchy or
	// controller state, changing the outcome of the stalled access's
	// retry probe. dirty is set by completion callbacks and forces
	// re-evaluation on the next executed cycle.
	blocked    bool
	probeStall bool
	wake       int64
	dirty      bool

	Retired int64
	Cycles  int64
}

// NewCore builds a core over the shared hierarchy. Completion callbacks
// are created once per ROB slot (each captures only its slot index), so
// issuing a memory instruction allocates nothing; a slot cannot be
// reused while its access is outstanding (a pending entry blocks retire).
func NewCore(id int, cfg Config, trace TraceSource, hier *cache.Hierarchy) *Core {
	c := &Core{ID: id, cfg: cfg, trace: trace, hier: hier, rob: make([]robEntry, cfg.ROBSize)}
	c.doneFns = make([]func(int64), cfg.ROBSize)
	for i := range c.doneFns {
		e := &c.rob[i]
		c.doneFns[i] = func(cpuDone int64) {
			e.pending = false
			e.doneAt = cpuDone
			c.dirty = true
		}
	}
	return c
}

// IPC returns retired instructions per CPU cycle so far.
func (c *Core) IPC() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.Retired) / float64(c.Cycles)
}

// ResetStats clears retirement counters (end of warm-up).
func (c *Core) ResetStats() { c.Retired, c.Cycles = 0, 0 }

// NextEvent returns the earliest CPU cycle >= now at which the core can
// change state, assuming no external state changes (no completion
// callbacks, no hierarchy or controller mutations) before then. An
// active core's next event is the current cycle. A blocked core cannot
// retire before its ROB head resolves and cannot issue before either
// retirement frees ROB/LSQ space or — for a probeStall — the memory
// system changes underneath it; under the static-externals assumption
// the bound is its head wake cycle. Callers that mutate external state
// (the sim package) must re-dispatch the core when they do: ticking a
// blocked core is always exact, only skipping needs this bound.
func (c *Core) NextEvent(now int64) int64 {
	if !c.blocked || c.dirty {
		return now
	}
	return c.wake
}

// Blocked reports whether the core provably cannot make progress until
// its wake cycle or an external state change (see NextEvent).
func (c *Core) Blocked() bool { return c.blocked && !c.dirty }

// ProbeStalled reports that the blocked core's stalled instruction got
// cache.Stall from the hierarchy: its retry outcome depends on MSHR and
// controller-queue state, so the core must run on every executed cycle
// (any component may have freed the resource it is waiting on).
func (c *Core) ProbeStalled() bool { return c.probeStall }

// WakeCycle returns the blocked core's self-known wake bound: the CPU
// cycle its ROB head becomes retirable, or Never while the head's miss
// is still outstanding (the completion callback will set dirty).
func (c *Core) WakeCycle() int64 { return c.wake }

// SkipCycles accounts k provably idle CPU cycles without executing
// them. Exact only for cycles where the core is Blocked with no
// external state change: such a tick increments Cycles, retires
// nothing, and either retries a side-effect-free probe or cannot issue
// at all — so bulk-adding the cycle count reproduces it bit-exactly.
func (c *Core) SkipCycles(k int64) { c.Cycles += k }

// Tick advances the core by one CPU cycle.
func (c *Core) Tick(now int64) {
	c.Cycles++
	r0 := c.Retired
	c.retire(now)
	issued := c.issue(now)
	if issued || c.Retired != r0 {
		c.blocked, c.dirty = false, false
		return
	}
	// Zero progress: record why, and the earliest self-known wake.
	c.blocked = true
	c.dirty = false
	c.wake = dram.Never
	if c.n > 0 && !c.rob[c.head].pending {
		c.wake = c.rob[c.head].doneAt
	}
}

func (c *Core) retire(now int64) {
	for retired := 0; retired < c.cfg.Width && c.n > 0; retired++ {
		e := &c.rob[c.head]
		if e.pending || e.doneAt > now {
			return
		}
		if e.isLoad {
			c.loads--
		}
		if e.isStore {
			c.stores--
		}
		c.head = (c.head + 1) % len(c.rob)
		c.n--
		c.Retired++
	}
}

func (c *Core) issue(now int64) bool {
	c.probeStall = false
	issued := 0
	for ; issued < c.cfg.Width && c.n < len(c.rob); issued++ {
		var in Instr
		if c.hasStall {
			in = c.stalled
		} else {
			in = c.trace.Next()
		}
		if in.Serialize && issued > 0 {
			// Dependency chain head: wait for the next cycle.
			c.stalled = in
			c.hasStall = true
			return true
		}
		if !c.tryIssue(in, now) {
			c.stalled = in
			c.hasStall = true
			return issued > 0
		}
		c.hasStall = false
	}
	return issued > 0
}

// tryIssue places one instruction into the ROB, accessing memory if
// needed. It returns false if a structural hazard requires a retry.
func (c *Core) tryIssue(in Instr, now int64) bool {
	slot := (c.head + c.n) % len(c.rob)
	e := &c.rob[slot]
	*e = robEntry{}

	if !in.Mem {
		e.doneAt = now + 1
		c.n++
		return true
	}
	if c.loads+c.stores >= c.cfg.LSQSize {
		return false
	}
	res, lat := c.hier.Access(c.ID, in.Addr, in.Write, c.doneFns[slot])
	switch res {
	case cache.Stall:
		c.probeStall = true
		return false
	case cache.Hit:
		e.doneAt = now + lat
	case cache.Queued:
		e.pending = true
	}
	if in.Write {
		e.isStore = true
		c.stores++
	} else {
		e.isLoad = true
		c.loads++
	}
	c.n++
	return true
}
