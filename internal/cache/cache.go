// Package cache implements the host cache hierarchy: set-associative
// write-back caches with LRU replacement and MSHR-limited non-blocking
// misses, composed into per-core L1/L2 levels under a shared LLC with a
// stride prefetcher (Table II configuration).
//
// The hierarchy is a latency/filter model: lookups resolve immediately
// with a hit latency, LLC misses are forwarded to a memory backend and
// complete through callbacks. Cache levels operate in CPU cycles; the
// backend operates in DRAM cycles and reports completion through the
// clock-converting callback installed by the hierarchy.
package cache

import "fmt"

// Config sizes one cache level.
type Config struct {
	SizeBytes  int
	Ways       int
	BlockBytes int
	LatencyCPU int64 // hit latency in CPU cycles
	MSHRs      int
}

// Sets returns the number of sets implied by the configuration.
func (c Config) Sets() int { return c.SizeBytes / (c.Ways * c.BlockBytes) }

// Validate reports an error for impossible configurations.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.BlockBytes <= 0 {
		return fmt.Errorf("cache: non-positive size field in %+v", c)
	}
	if c.SizeBytes%(c.Ways*c.BlockBytes) != 0 {
		return fmt.Errorf("cache: size %d not divisible into %d ways of %dB blocks",
			c.SizeBytes, c.Ways, c.BlockBytes)
	}
	s := c.Sets()
	if s&(s-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", s)
	}
	return nil
}

// line is one cache line's tag state.
type line struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64 // last-touch counter
}

// Cache is a single set-associative level. Lines live in one flat
// array (set-major) — the per-access way scan is the hottest loop in
// the whole simulator, and the flat layout spares it an indirection.
type Cache struct {
	cfg   Config
	lines []line
	nsets uint64
	ways  int
	clock uint64

	// One-entry MRU filter: the last block that hit and the line that
	// held it. Streaming cores touch the same 64-byte block for several
	// consecutive accesses, and the repeat hits skip the way scan. The
	// filter is validated against the line's live tag (a replacement
	// that reuses the slot fails the check), and the filtered path
	// performs exactly the state updates the scan would — clock, LRU,
	// dirty, Hits — so behavior is bit-identical.
	lastBlock uint64
	lastTag   uint64
	lastLine  *line

	Hits, Misses int64
}

// New builds a cache level. It panics on invalid configuration.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Cache{
		cfg:   cfg,
		lines: make([]line, cfg.Sets()*cfg.Ways),
		nsets: uint64(cfg.Sets()),
		ways:  cfg.Ways,
	}
}

// Config returns the level's configuration.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) index(block uint64) (set int, tag uint64) {
	return int(block % c.nsets), block / c.nsets
}

// set returns the set's ways as a subslice of the flat line array.
func (c *Cache) set(set int) []line {
	return c.lines[set*c.ways : set*c.ways+c.ways]
}

// Lookup probes for the block (address divided by block size), updating
// LRU and hit/miss counters. If write, a hit marks the line dirty.
func (c *Cache) Lookup(block uint64, write bool) bool {
	if block == c.lastBlock {
		if l := c.lastLine; l != nil && l.valid && l.tag == c.lastTag {
			c.clock++
			l.lru = c.clock
			if write {
				l.dirty = true
			}
			c.Hits++
			return true
		}
	}
	set, tag := c.index(block)
	c.clock++
	ways := c.set(set)
	for i := range ways {
		l := &ways[i]
		if l.valid && l.tag == tag {
			l.lru = c.clock
			if write {
				l.dirty = true
			}
			c.Hits++
			c.lastBlock, c.lastTag, c.lastLine = block, tag, l
			return true
		}
	}
	c.Misses++
	return false
}

// unMiss reverses the counter effects of an immediately preceding Lookup
// that missed (one Misses increment and one clock advance; a missed
// Lookup touches no line, so nothing else changed). The hierarchy uses it
// to keep stalled accesses side-effect-free: an Access that returns Stall
// is retried every cycle by a blocked core, and those retry probes must
// leave the caches in exactly the state they found them for the
// fast-forward machinery to skip the retries.
func (c *Cache) unMiss() {
	c.Misses--
	c.clock--
}

// Contains probes without side effects.
func (c *Cache) Contains(block uint64) bool {
	set, tag := c.index(block)
	ways := c.set(set)
	for i := range ways {
		l := &ways[i]
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// Insert fills the block, returning any evicted dirty victim.
func (c *Cache) Insert(block uint64, dirty bool) (victim uint64, victimDirty bool) {
	set, tag := c.index(block)
	c.clock++
	ways := c.set(set)
	// Reuse an existing or invalid way first.
	vi := 0
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].dirty = ways[i].dirty || dirty
			ways[i].lru = c.clock
			return 0, false
		}
		if !ways[i].valid {
			vi = i
		} else if ways[vi].valid && ways[i].lru < ways[vi].lru {
			vi = i
		}
	}
	v := ways[vi]
	ways[vi] = line{tag: tag, valid: true, dirty: dirty, lru: c.clock}
	if v.valid && v.dirty {
		return v.tag*c.nsets + uint64(set), true
	}
	return 0, false
}

// Invalidate drops the block if present, reporting whether it was dirty.
func (c *Cache) Invalidate(block uint64) (wasDirty bool) {
	set, tag := c.index(block)
	ways := c.set(set)
	for i := range ways {
		l := &ways[i]
		if l.valid && l.tag == tag {
			d := l.dirty
			*l = line{}
			return d
		}
	}
	return false
}
