package sim

import (
	"fmt"
	"testing"

	"chopim/internal/ndart"
)

// goldenBudget is deliberately short: long enough for every subsystem
// (caches, write drains, NDA batches, launch packets) to reach steady
// activity, short enough to run on every test invocation.
const (
	goldenWarm    = 5_000
	goldenMeasure = 20_000
)

// goldenStats reduces one fixed-seed run to the headline counters the
// figures are built from. All arithmetic is integer or a single IEEE
// division, so the values are bit-stable across platforms. fast selects
// the drive path; both must produce the same string. Optional config
// mutators let variant suites (invariant checking, worker counts) pin
// the same goldens under observation-only knobs.
func goldenStats(t *testing.T, w ffWorkload, fast bool, muts ...func(*Config)) string {
	t.Helper()
	cfg := w.cfg()
	for _, mut := range muts {
		mut(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var it func() (*ndart.Handle, error)
	if w.app != nil {
		if it, err = w.app(s); err != nil {
			t.Fatal(err)
		}
	}
	var h *ndart.Handle
	relaunch := func() {
		if it == nil {
			return
		}
		if h == nil || h.Done() {
			if h, err = it(); err != nil {
				t.Fatal(err)
			}
		}
	}
	run := func(cycles int64) {
		relaunch()
		end := s.Now() + cycles
		for s.Now() < end {
			if fast {
				s.StepFast(end)
			} else {
				s.Tick()
			}
			relaunch()
		}
	}
	run(goldenWarm)
	s.BeginMeasurement()
	busy0, blocks0 := s.HostBusyCycles(), s.NDABlocks()
	run(goldenMeasure)
	return fmt.Sprintf("ipc=%v blocks=%d busy=%d rd=%d wr=%d ndard=%d ndawr=%d",
		s.HostIPC(), s.NDABlocks()-blocks0, s.HostBusyCycles()-busy0,
		s.Mem.Counts().RD, s.Mem.Counts().WR, s.Mem.Counts().NDARD, s.Mem.Counts().NDAWR)
}

// goldenWant pins exact simulator behavior for the fixed seeds and
// budgets above. Any change to scheduling, timing, or fast-forward
// semantics that alters observable counters fails TestGoldenStats;
// regenerate with `go test ./internal/sim -run TestGoldenStats -v` and
// copy the logged values only when the behavior change is intended.
var goldenWant = map[string]string{
	"host-only":                "ipc=1.2531687341563291 blocks=0 busy=41190 rd=11519 wr=0 ndard=0 ndawr=0",
	"nda-only-nrm2":            "ipc=0 blocks=12748 busy=0 rd=0 wr=4 ndard=15914 ndawr=0",
	"nda-only-copy-stochastic": "ipc=0 blocks=10179 busy=0 rd=0 wr=4 ndard=6639 ndawr=6169",
	"mixed-mix1-dot":           "ipc=1.0024599877000615 blocks=6130 busy=39062 rd=11002 wr=4 ndard=7551 ndawr=0",
	"mixed-mix3-copy-shared":   "ipc=1.1588942055289724 blocks=2262 busy=38213 rd=10644 wr=4 ndard=1664 ndawr=1361",
	// Stall-window stress shapes for the PR 3 core-skip machinery,
	// pinned from the reference cycle-by-cycle path (unchanged since the
	// seed): the wake-driven scheduler must reproduce these exactly.
	"host-stall-heavy":       "ipc=0.16807415962920186 blocks=0 busy=40473 rd=11366 wr=0 ndard=0 ndawr=0",
	"host-store-heavy":       "ipc=0.6050669746651267 blocks=0 busy=39835 rd=11195 wr=0 ndard=0 ndawr=0",
	"host-lsq-saturating":    "ipc=0.4121079394603027 blocks=0 busy=40267 rd=11277 wr=0 ndard=0 ndawr=0",
	"mixed-stall-heavy-copy": "ipc=0.14947425262873687 blocks=4345 busy=36885 rd=10233 wr=4 ndard=2775 ndawr=2617",
	// Compute-heavy shapes for the PR 5 window-batched retirement path,
	// pinned from the pre-refactor instruction-at-a-time tree: the
	// batched path must reproduce these bits exactly on both drive paths.
	"host-compute-heavy": "ipc=4.083684581577092 blocks=0 busy=15519 rd=4741 wr=0 ndard=0 ndawr=0",
	"mixed-compute-copy": "ipc=4.06200968995155 blocks=6421 busy=15440 rd=4744 wr=4 ndard=4260 ndawr=3981",
}

// TestGoldenStats asserts exact HostIPC / NDABlocks / HostBusyCycles
// (and the DRAM command counters) on short deterministic runs of
// host-only, NDA-only, and mixed workloads, via both drive paths.
func TestGoldenStats(t *testing.T) {
	for _, w := range ffWorkloads() {
		for _, fast := range []bool{false, true} {
			name := w.name + "/slow"
			if fast {
				name = w.name + "/fast"
			}
			t.Run(name, func(t *testing.T) {
				got := goldenStats(t, w, fast)
				want, ok := goldenWant[w.name]
				if !ok {
					t.Fatalf("no golden value recorded; add:\n%q: %q,", w.name, got)
				}
				if got != want {
					t.Errorf("golden mismatch:\n got:  %s\n want: %s", got, want)
				}
			})
		}
	}
}

// TestGoldenStatsInvariantChecked re-pins every golden workload with the
// cross-layer invariant checker armed, on the reference path and the
// fast path at 1 and 4 domain workers. Two properties at once: checking
// is observation-only (the counters are byte-identical to the unchecked
// goldens), and eleven diverse workloads crossing every commit barrier
// with the checker armed never trip it.
func TestGoldenStatsInvariantChecked(t *testing.T) {
	arm := func(workers int) func(*Config) {
		return func(cfg *Config) {
			cfg.CheckInvariants = true
			cfg.SimWorkers = workers
		}
	}
	variants := []struct {
		name    string
		fast    bool
		workers int
	}{
		{"slow", false, 1},
		{"fast-w1", true, 1},
		{"fast-w2", true, 2},
		{"fast-w4", true, 4},
	}
	for _, w := range ffWorkloads() {
		for _, v := range variants {
			t.Run(w.name+"/"+v.name, func(t *testing.T) {
				got := goldenStats(t, w, v.fast, arm(v.workers))
				if want := goldenWant[w.name]; got != want {
					t.Errorf("invariant-checked golden mismatch:\n got:  %s\n want: %s", got, want)
				}
			})
		}
	}
}
